package connquery

import (
	"context"
	"math"
	"sync"
)

// Watch support: the paper's queries are *continuous* along a segment; a
// watch makes them continuous along the time axis too. Every committed
// mutation notifies the registered watchers, each of which re-resolves its
// Request against the freshly published MVCC version and delivers the
// revised Answer together with the delta against the previous one. Because
// a watcher re-reads the current version when it wakes, bursts of mutations
// coalesce: under write load a watcher skips intermediate epochs instead of
// queueing stale work, and delivered epochs are strictly increasing.
//
// Re-resolution goes through the answer cache (watchLoop executes via
// db.execAt, the same path Exec takes): a mutation whose change box missed
// the watched answer's impact region promoted the cache entry to the new
// epoch, so the watcher delivers the promoted answer — correct at the new
// epoch, with Delta.Changed false — without re-executing the engine. Only
// watchers whose answers a mutation could actually have changed pay for
// re-execution, turning Watch from re-exec-per-commit into incremental
// answer maintenance (cf. answering FO+MOD queries under updates by
// maintenance rather than recomputation).

// Update is one delivery of a watched request: the answer re-computed at
// Epoch, and how it differs from the previously delivered answer.
type Update struct {
	// Epoch is the MVCC version the answer was computed against. Across the
	// updates of one watch, epochs are strictly increasing (intermediate
	// epochs may be skipped under write bursts).
	Epoch uint64
	// Answer is the re-executed request's answer.
	Answer *Answer
	// Delta describes the change against the previous update (for the first
	// update, against nothing: Changed is true).
	Delta Delta
	// Err is non-nil when re-execution failed; the channel closes after an
	// errored update. Context cancellation closes the channel without one.
	Err error
}

// Delta summarizes how a watched answer changed between two epochs.
type Delta struct {
	// Changed reports whether the answer payload differs at all.
	Changed bool
	// ChangedSpans lists, for continuous answers (CONN/CNN/COkNN), the
	// sub-intervals of the query segment whose owner (set) changed. Nil for
	// non-continuous payloads; for those, Changed is the whole delta.
	ChangedSpans []Span
}

// watchSet is a DB's registry of live watch subscriptions.
type watchSet struct {
	mu   sync.Mutex
	subs map[uint64]chan struct{}
	seq  uint64
}

// notifyAll wakes every watcher. Sends are non-blocking: each watcher's
// wake channel has capacity one, so a watcher that is already flagged (or
// mid-execution) simply coalesces this publish into its next wake-up.
func (ws *watchSet) notifyAll() {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for _, ch := range ws.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

func (ws *watchSet) add() (id uint64, wake chan struct{}) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.subs == nil {
		ws.subs = make(map[uint64]chan struct{})
	}
	ws.seq++
	id = ws.seq
	wake = make(chan struct{}, 1)
	ws.subs[id] = wake
	return id, wake
}

func (ws *watchSet) remove(id uint64) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	delete(ws.subs, id)
}

// Watch subscribes req to the database's version chain and returns a
// channel of revised answers. The first Update carries the answer at the
// version current when Watch is called; each subsequent one is delivered
// after a mutation commits, re-executed against the then-freshest version.
// The channel is unbuffered from the caller's perspective: a slow consumer
// exerts backpressure and intermediate epochs coalesce rather than queue.
//
// The watch runs until ctx is cancelled (the channel is then closed) or an
// execution fails (one errored Update, then close). WithQueryTuning and
// WithWorkers apply to every re-execution; pinning options
// (AtVersion/AtSnapshot) are rejected with ErrPinnedWatch, since a watch
// follows the live chain by definition.
func (db *DB) Watch(ctx context.Context, req Request, opts ...QueryOption) (<-chan Update, error) {
	if req == nil {
		return nil, ErrNilRequest
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var xo execOptions
	for _, o := range opts {
		o(&xo)
	}
	if xo.pinned() {
		return nil, ErrPinnedWatch
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	out := make(chan Update)
	id, wake := db.watch.add()
	go db.watchLoop(ctx, req, &xo, out, wake, id)
	return out, nil
}

// watchLoop is the per-subscription goroutine: execute at the current
// version, deliver, sleep until the next publish (or ctx), repeat.
func (db *DB) watchLoop(ctx context.Context, req Request, xo *execOptions, out chan<- Update, wake <-chan struct{}, id uint64) {
	defer close(out)
	defer db.watch.remove(id)
	var prev *Answer
	for {
		v := db.current()
		if prev == nil || v.epoch > prev.epoch {
			ans, err := db.execAt(ctx, req, v, xo)
			if err != nil {
				if ctx.Err() != nil {
					return // cancelled mid-execution: close without an errored update
				}
				select {
				case out <- Update{Epoch: v.epoch, Err: err}:
				case <-ctx.Done():
				}
				return
			}
			select {
			case out <- Update{Epoch: v.epoch, Answer: ans, Delta: answerDelta(prev, ans)}:
			case <-ctx.Done():
				return
			}
			prev = ans
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return
		}
	}
}

// answerDelta computes the change between two consecutive answers of the
// same request.
func answerDelta(prev, cur *Answer) Delta {
	if prev == nil {
		return Delta{Changed: true, ChangedSpans: changedSpans(nil, cur)}
	}
	if spans := changedSpans(prev, cur); spans != nil || isContinuous(cur.value) {
		return Delta{Changed: len(spans) > 0, ChangedSpans: spans}
	}
	return Delta{Changed: !answersEqual(prev.value, cur.value)}
}

func isContinuous(v any) bool {
	switch v.(type) {
	case *Result, *KResult:
		return true
	}
	return false
}

// changedSpans returns the merged sub-intervals of [0,1] where the owner
// (set) of a continuous answer differs between prev and cur. A nil prev
// means everything changed. Non-continuous payloads return nil.
func changedSpans(prev, cur *Answer) []Span {
	switch c := cur.value.(type) {
	case *Result:
		if prev == nil {
			return []Span{{Lo: 0, Hi: 1}}
		}
		p, _ := prev.value.(*Result)
		if p == nil {
			return []Span{{Lo: 0, Hi: 1}}
		}
		return diffPartition(len(p.Tuples), len(c.Tuples),
			func(i int) Span { return p.Tuples[i].Span },
			func(j int) Span { return c.Tuples[j].Span },
			func(i, j int) bool { return p.Tuples[i].PID == c.Tuples[j].PID })
	case *KResult:
		if prev == nil {
			return []Span{{Lo: 0, Hi: 1}}
		}
		p, _ := prev.value.(*KResult)
		if p == nil {
			return []Span{{Lo: 0, Hi: 1}}
		}
		return diffPartition(len(p.Tuples), len(c.Tuples),
			func(i int) Span { return p.Tuples[i].Span },
			func(j int) Span { return c.Tuples[j].Span },
			func(i, j int) bool { return sameOwnerIDs(p.Tuples[i].Owners, c.Tuples[j].Owners) })
	}
	return nil
}

// diffPartition walks two partitions of [0,1] in lockstep and collects the
// cells where same reports a differing owner, merging adjacent cells.
func diffPartition(n, m int, spanA, spanB func(int) Span, same func(i, j int) bool) []Span {
	var out []Span
	i, j := 0, 0
	lo := 0.0
	for i < n && j < m {
		hi := math.Min(spanA(i).Hi, spanB(j).Hi)
		if !same(i, j) && hi > lo {
			if k := len(out); k > 0 && out[k-1].Hi >= lo {
				out[k-1].Hi = hi
			} else {
				out = append(out, Span{Lo: lo, Hi: hi})
			}
		}
		lo = hi
		if spanA(i).Hi <= hi {
			i++
		}
		if spanB(j).Hi <= hi {
			j++
		}
	}
	return out
}

func sameOwnerIDs(a, b []Owner) bool {
	if len(a) != len(b) {
		return false
	}
	// Owner lists are sorted by distance at the span midpoint; treat them as
	// sets for delta purposes.
	for _, oa := range a {
		found := false
		for _, ob := range b {
			if oa.PID == ob.PID {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// answersEqual reports exact (bit-identical) equality for every answer
// payload kind.
func answersEqual(a, b any) bool {
	switch x := a.(type) {
	case *Result:
		y, ok := b.(*Result)
		return ok && resultsEqual(x, y)
	case *KResult:
		y, ok := b.(*KResult)
		if !ok || x.K != y.K || len(x.Tuples) != len(y.Tuples) {
			return false
		}
		for i := range x.Tuples {
			if x.Tuples[i].Span != y.Tuples[i].Span || len(x.Tuples[i].Owners) != len(y.Tuples[i].Owners) {
				return false
			}
			for o := range x.Tuples[i].Owners {
				if x.Tuples[i].Owners[o].PID != y.Tuples[i].Owners[o].PID ||
					x.Tuples[i].Owners[o].P != y.Tuples[i].Owners[o].P {
					return false
				}
			}
		}
		return true
	case []Neighbor:
		y, ok := b.([]Neighbor)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case []JoinPair:
		y, ok := b.([]JoinPair)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case JoinPair:
		y, ok := b.(JoinPair)
		return ok && x == y
	case *TrajectoryResult:
		y, ok := b.(*TrajectoryResult)
		if !ok || len(x.Legs) != len(y.Legs) {
			return false
		}
		for i := range x.Legs {
			if !resultsEqual(x.Legs[i], y.Legs[i]) {
				return false
			}
		}
		return true
	case []*Result:
		y, ok := b.([]*Result)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !resultsEqual(x[i], y[i]) {
				return false
			}
		}
		return true
	case float64:
		y, ok := b.(float64)
		return ok && (x == y || (math.IsInf(x, 1) && math.IsInf(y, 1)))
	}
	return false
}

func resultsEqual(a, b *Result) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Tuples) != len(b.Tuples) {
		return false
	}
	for i := range a.Tuples {
		if a.Tuples[i] != b.Tuples[i] {
			return false
		}
	}
	return true
}
