package connquery

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"connquery/internal/anscache"
	"connquery/internal/geom"
)

// Watch support: the paper's queries are *continuous* along a segment; a
// watch makes them continuous along the time axis too. A committed mutation
// notifies the registered watchers whose answer it could have changed, each
// of which re-resolves its Request against the freshly published MVCC
// version and delivers the revised Answer together with the delta against
// the previous one. Because a watcher re-reads the current version when it
// wakes, bursts of mutations coalesce: under write load a watcher skips
// intermediate epochs instead of queueing stale work, and delivered epochs
// are strictly increasing.
//
// Wake-ups are filtered by impact region, exactly as in the sharded tier
// (shardwatch.go shares these types): a commit wakes a watcher only when
// its change box intersects the watcher's last answer's widened impact
// region — the same region proven sufficient for cache invalidation — so a
// mutation far from the watched geometry provably leaves the answer
// bit-identical and the skipped wake-up is unobservable except as fewer
// redundant deliveries. Until the first delivery installs a region, every
// commit wakes the watcher. After each delivery the loop re-checks the
// live epoch directly (the region-shift liveness re-check): while a
// re-execution ran, notify filtered commits against the *previous* region,
// so a commit hitting only the new region queued no wake.
//
// Re-resolution goes through the answer cache (watchLoop executes via
// db.execAt, the same path Exec takes): a woken watcher whose entry
// survived invalidation delivers the promoted answer without re-executing
// the engine. On top of that, answers carrying a validity horizon
// (Answer.ValidUntil, stamped from declared object speeds — see motion.go)
// skip re-execution entirely while the horizon holds and every commit
// since the last delivery was a motion-bounded tick. Together these turn
// Watch from re-exec-per-commit into incremental answer maintenance (cf.
// answering FO+MOD queries under updates by maintenance rather than
// recomputation).

// Update is one delivery of a watched request: the answer re-computed at
// Epoch, and how it differs from the previously delivered answer.
type Update struct {
	// Epoch is the MVCC version the answer was computed against. Across the
	// updates of one watch, epochs are strictly increasing (intermediate
	// epochs may be skipped under write bursts).
	Epoch uint64
	// Answer is the re-executed request's answer.
	Answer *Answer
	// Delta describes the change against the previous update (for the first
	// update, against nothing: Changed is true).
	Delta Delta
	// Err is non-nil when re-execution failed; the channel closes after an
	// errored update. Context cancellation closes the channel without one.
	Err error
}

// Delta summarizes how a watched answer changed between two epochs.
type Delta struct {
	// Changed reports whether the answer payload differs at all.
	Changed bool
	// ChangedSpans lists, for continuous answers (CONN/CNN/COkNN), the
	// sub-intervals of the query segment whose owner (set) changed. Nil for
	// non-continuous payloads; for those, Changed is the whole delta.
	ChangedSpans []Span
}

// watcher is one live watch subscription, shared by the single-node DB and
// the sharded router: a capacity-one wake channel plus the impact region of
// the last delivered answer, against which committed change boxes are
// filtered.
type watcher struct {
	wake chan struct{}

	mu        sync.Mutex
	region    anscache.Region
	hasRegion bool // false until the first delivery: wake on everything
}

func (w *watcher) setRegion(rg anscache.Region) {
	w.mu.Lock()
	w.region, w.hasRegion = rg, true
	w.mu.Unlock()
}

// wakes reports whether a committed change box must wake this watcher.
func (w *watcher) wakes(change geom.Rect, isPoint bool) bool {
	w.mu.Lock()
	rg, has := w.region, w.hasRegion
	w.mu.Unlock()
	if !has {
		return true
	}
	if isPoint {
		if !rg.Points {
			return false
		}
	} else if !rg.Obstacles {
		return false
	}
	return rg.Rect.Intersects(change)
}

// WatchStats counts watch wake-up activity, the observability handle on the
// impact-region filter: Skipped > 0 under a mutation load proves the filter
// is not vacuous, and HorizonSkips counts re-executions avoided because a
// delivered answer's validity horizon still held.
type WatchStats struct {
	// Woken counts wake signals delivered to watchers; Skipped counts
	// commit×watcher pairs suppressed because the change box provably could
	// not alter the watcher's answer.
	Woken   int64
	Skipped int64
	// HorizonSkips counts watcher wake-ups that skipped re-execution because
	// the previous answer's ValidUntil horizon covered every commit since.
	HorizonSkips int64
}

// watchSet is a registry of live watch subscriptions (one per DB, one per
// ShardedDB router).
type watchSet struct {
	mu   sync.Mutex
	subs map[*watcher]struct{}

	woken        atomic.Int64
	skipped      atomic.Int64
	horizonSkips atomic.Int64
}

// notify wakes the watchers a committed mutation could affect. Sends are
// non-blocking: each watcher's wake channel has capacity one, so a watcher
// that is already flagged (or mid-execution) simply coalesces this publish
// into its next wake-up.
func (ws *watchSet) notify(change geom.Rect, isPoint bool) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for w := range ws.subs {
		if !w.wakes(change, isPoint) {
			ws.skipped.Add(1)
			continue
		}
		ws.woken.Add(1)
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

func (ws *watchSet) add() *watcher {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.subs == nil {
		ws.subs = make(map[*watcher]struct{})
	}
	w := &watcher{wake: make(chan struct{}, 1)}
	ws.subs[w] = struct{}{}
	return w
}

func (ws *watchSet) remove(w *watcher) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	delete(ws.subs, w)
}

func (ws *watchSet) stats() WatchStats {
	return WatchStats{
		Woken:        ws.woken.Load(),
		Skipped:      ws.skipped.Load(),
		HorizonSkips: ws.horizonSkips.Load(),
	}
}

// WatchStats returns the wake-filter counters for this handle's watchers.
func (db *DB) WatchStats() WatchStats { return db.watch.stats() }

// Watch subscribes req to the database's version chain and returns a
// channel of revised answers. The first Update carries the answer at the
// version current when Watch is called; each subsequent one is delivered
// after a mutation commits, re-executed against the then-freshest version.
// The channel is unbuffered from the caller's perspective: a slow consumer
// exerts backpressure and intermediate epochs coalesce rather than queue.
//
// The watch runs until ctx is cancelled (the channel is then closed) or an
// execution fails (one errored Update, then close). WithQueryTuning and
// WithWorkers apply to every re-execution; pinning options
// (AtVersion/AtSnapshot) are rejected with ErrPinnedWatch, since a watch
// follows the live chain by definition.
func (db *DB) Watch(ctx context.Context, req Request, opts ...QueryOption) (<-chan Update, error) {
	if req == nil {
		return nil, ErrNilRequest
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var xo execOptions
	for _, o := range opts {
		o(&xo)
	}
	if xo.pinned() {
		return nil, ErrPinnedWatch
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	out := make(chan Update)
	w := db.watch.add()
	go db.watchLoop(ctx, req, &xo, out, w)
	return out, nil
}

// watchLoop is the per-subscription goroutine: execute at the current
// version, deliver, install the answer's impact region as the wake filter,
// sleep until the next region-hitting publish (or ctx), repeat.
func (db *DB) watchLoop(ctx context.Context, req Request, xo *execOptions, out chan<- Update, w *watcher) {
	defer close(out)
	defer db.watch.remove(w)
	var prev *Answer
	for {
		v := db.current()
		if prev == nil || v.epoch > prev.epoch {
			if prev != nil && db.horizonHolds(prev) {
				// Every commit since the delivered answer was a motion-bounded
				// tick and the answer's validity horizon still holds: no tracked
				// object can have entered the impact region yet, so the answer
				// is provably unchanged and re-execution would be wasted.
				db.watch.horizonSkips.Add(1)
			} else {
				ans, err := db.execAt(ctx, req, v, xo)
				if err != nil {
					if ctx.Err() != nil {
						return // cancelled mid-execution: close without an errored update
					}
					select {
					case out <- Update{Epoch: v.epoch, Err: err}:
					case <-ctx.Done():
					}
					return
				}
				select {
				case out <- Update{Epoch: v.epoch, Answer: ans, Delta: answerDelta(prev, ans)}:
				case <-ctx.Done():
					return
				}
				prev = ans
				w.setRegion(widenRegion(impactRegion(req, ans.value), req, ans.metrics.Reach))
				// Close the missed-wake race: while this re-execution ran,
				// notify filtered commits against the *previous* answer's
				// region, so a mutation intersecting only the new region queued
				// no wake. The new region is installed now; re-check the epoch
				// directly instead of trusting the wake channel, and go around
				// again if anything committed meanwhile. Commits landing after
				// this check are filtered against the region just installed, so
				// their wakes (the channel holds one token) cannot be lost.
				if db.current().epoch > prev.epoch {
					continue
				}
			}
		}
		select {
		case <-w.wake:
		case <-ctx.Done():
			return
		}
	}
}

// answerDelta computes the change between two consecutive answers of the
// same request.
func answerDelta(prev, cur *Answer) Delta {
	if prev == nil {
		return Delta{Changed: true, ChangedSpans: changedSpans(nil, cur)}
	}
	if spans := changedSpans(prev, cur); spans != nil || isContinuous(cur.value) {
		return Delta{Changed: len(spans) > 0, ChangedSpans: spans}
	}
	return Delta{Changed: !answersEqual(prev.value, cur.value)}
}

func isContinuous(v any) bool {
	switch v.(type) {
	case *Result, *KResult:
		return true
	}
	return false
}

// changedSpans returns the merged sub-intervals of [0,1] where the owner
// (set) of a continuous answer differs between prev and cur. A nil prev
// means everything changed. Non-continuous payloads return nil.
func changedSpans(prev, cur *Answer) []Span {
	switch c := cur.value.(type) {
	case *Result:
		if prev == nil {
			return []Span{{Lo: 0, Hi: 1}}
		}
		p, _ := prev.value.(*Result)
		if p == nil {
			return []Span{{Lo: 0, Hi: 1}}
		}
		return diffPartition(len(p.Tuples), len(c.Tuples),
			func(i int) Span { return p.Tuples[i].Span },
			func(j int) Span { return c.Tuples[j].Span },
			func(i, j int) bool { return p.Tuples[i].PID == c.Tuples[j].PID })
	case *KResult:
		if prev == nil {
			return []Span{{Lo: 0, Hi: 1}}
		}
		p, _ := prev.value.(*KResult)
		if p == nil {
			return []Span{{Lo: 0, Hi: 1}}
		}
		return diffPartition(len(p.Tuples), len(c.Tuples),
			func(i int) Span { return p.Tuples[i].Span },
			func(j int) Span { return c.Tuples[j].Span },
			func(i, j int) bool { return sameOwnerIDs(p.Tuples[i].Owners, c.Tuples[j].Owners) })
	}
	return nil
}

// diffPartition walks two partitions of [0,1] in lockstep and collects the
// cells where same reports a differing owner, merging adjacent cells.
func diffPartition(n, m int, spanA, spanB func(int) Span, same func(i, j int) bool) []Span {
	var out []Span
	i, j := 0, 0
	lo := 0.0
	for i < n && j < m {
		hi := math.Min(spanA(i).Hi, spanB(j).Hi)
		if !same(i, j) && hi > lo {
			if k := len(out); k > 0 && out[k-1].Hi >= lo {
				out[k-1].Hi = hi
			} else {
				out = append(out, Span{Lo: lo, Hi: hi})
			}
		}
		lo = hi
		if spanA(i).Hi <= hi {
			i++
		}
		if spanB(j).Hi <= hi {
			j++
		}
	}
	return out
}

func sameOwnerIDs(a, b []Owner) bool {
	if len(a) != len(b) {
		return false
	}
	// Owner lists are sorted by distance at the span midpoint; treat them as
	// sets for delta purposes.
	for _, oa := range a {
		found := false
		for _, ob := range b {
			if oa.PID == ob.PID {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// answersEqual reports exact (bit-identical) equality for every answer
// payload kind.
func answersEqual(a, b any) bool {
	switch x := a.(type) {
	case *Result:
		y, ok := b.(*Result)
		return ok && resultsEqual(x, y)
	case *KResult:
		y, ok := b.(*KResult)
		if !ok || x.K != y.K || len(x.Tuples) != len(y.Tuples) {
			return false
		}
		for i := range x.Tuples {
			if x.Tuples[i].Span != y.Tuples[i].Span || len(x.Tuples[i].Owners) != len(y.Tuples[i].Owners) {
				return false
			}
			for o := range x.Tuples[i].Owners {
				if x.Tuples[i].Owners[o].PID != y.Tuples[i].Owners[o].PID ||
					x.Tuples[i].Owners[o].P != y.Tuples[i].Owners[o].P {
					return false
				}
			}
		}
		return true
	case []Neighbor:
		y, ok := b.([]Neighbor)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case []JoinPair:
		y, ok := b.([]JoinPair)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case JoinPair:
		y, ok := b.(JoinPair)
		return ok && x == y
	case *TrajectoryResult:
		y, ok := b.(*TrajectoryResult)
		if !ok || len(x.Legs) != len(y.Legs) {
			return false
		}
		for i := range x.Legs {
			if !resultsEqual(x.Legs[i], y.Legs[i]) {
				return false
			}
		}
		return true
	case []*Result:
		y, ok := b.([]*Result)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !resultsEqual(x[i], y[i]) {
				return false
			}
		}
		return true
	case float64:
		y, ok := b.(float64)
		return ok && (x == y || (math.IsInf(x, 1) && math.IsInf(y, 1)))
	}
	return false
}

func resultsEqual(a, b *Result) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Tuples) != len(b.Tuples) {
		return false
	}
	for i := range a.Tuples {
		if a.Tuples[i] != b.Tuples[i] {
			return false
		}
	}
	return true
}
