package connquery

// The crash-recovery differential harness: a durable instance (single-node
// or sharded) and an in-memory twin receive the identical randomized
// mutation stream with interleaved query comparisons; the durable instance
// is then hard-stopped — the handle is abandoned without Close, exactly a
// kill -9 — and reopened from its directory. The recovered instance must be
// at the twin's version and answer every request bit-identically: payload,
// epoch, and the machine-independent NPE/NOE/|SVG|/Reach metrics. Torn-tail
// variants physically truncate the newest log segment (the only tail a real
// crash can tear) and prove the recovered instance equals an in-memory
// replay of the exact mutation prefix it reports.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// recMut is one recorded mutation, replayable onto a fresh instance.
type recMut struct {
	op uint8 // recInsPt..recDelObs
	p  Point
	r  Rect
	id int32 // assigned (inserts) or targeted (deletes) global ID
}

const (
	recInsPt uint8 = iota + 1
	recDelPt
	recInsObs
	recDelObs
)

// durableWorld draws the same seeded initial dataset newDiffWorkload uses,
// without opening a DB (the durable constructors own that).
func durableWorld(seed int64) (*diffWorkload, []Point, []Rect) {
	w := &diffWorkload{rng: rand.New(rand.NewSource(seed))}
	points := make([]Point, 16)
	for i := range points {
		points[i] = w.pt()
	}
	var obstacles []Rect
	for len(obstacles) < 8 {
		lo := w.pt()
		r := R(lo.X, lo.Y, lo.X+0.5+w.rng.Float64()*6, lo.Y+0.5+w.rng.Float64()*6)
		keep := true
		for _, p := range points {
			if r.ContainsOpen(p) {
				keep = false
				break
			}
		}
		if keep {
			obstacles = append(obstacles, r)
		}
	}
	return w, points, obstacles
}

// durableTwin drives a durable instance and its in-memory twin in lockstep,
// recording every successful mutation for prefix replay.
type durableTwin struct {
	gen      *diffWorkload
	dur      Database
	mem      Database
	muts     []recMut
	alivePts []int32
	aliveObs []int32
}

// mutate applies one identical random mutation to both instances, asserts
// the outcomes agree, and records it.
func (dt *durableTwin) mutate(t *testing.T) {
	t.Helper()
	w := dt.gen
	switch w.rng.Intn(4) {
	case 0:
		p := w.pt()
		id1, err1 := dt.mem.InsertPoint(p)
		id2, err2 := dt.dur.InsertPoint(p)
		if (err1 == nil) != (err2 == nil) || (err1 == nil && id1 != id2) {
			t.Fatalf("InsertPoint(%v): mem (%d,%v) vs durable (%d,%v)", p, id1, err1, id2, err2)
		}
		if err1 == nil {
			dt.alivePts = append(dt.alivePts, id1)
			dt.muts = append(dt.muts, recMut{op: recInsPt, p: p, id: id1})
		}
	case 1:
		lo := w.pt()
		r := R(lo.X, lo.Y, lo.X+0.5+w.rng.Float64()*6, lo.Y+0.5+w.rng.Float64()*6)
		id1, err1 := dt.mem.InsertObstacle(r)
		id2, err2 := dt.dur.InsertObstacle(r)
		if (err1 == nil) != (err2 == nil) || (err1 == nil && id1 != id2) {
			t.Fatalf("InsertObstacle(%v): mem (%d,%v) vs durable (%d,%v)", r, id1, err1, id2, err2)
		}
		if err1 == nil {
			dt.aliveObs = append(dt.aliveObs, id1)
			dt.muts = append(dt.muts, recMut{op: recInsObs, r: r, id: id1})
		}
	case 2:
		if len(dt.alivePts) > 1 {
			i := w.rng.Intn(len(dt.alivePts))
			pid := dt.alivePts[i]
			ok1 := dt.mem.DeletePoint(pid)
			ok2 := dt.dur.DeletePoint(pid)
			if !ok1 || !ok2 {
				t.Fatalf("DeletePoint(%d): mem %v, durable %v", pid, ok1, ok2)
			}
			dt.alivePts = append(dt.alivePts[:i], dt.alivePts[i+1:]...)
			dt.muts = append(dt.muts, recMut{op: recDelPt, id: pid})
		}
	default:
		if len(dt.aliveObs) > 0 {
			i := w.rng.Intn(len(dt.aliveObs))
			oid := dt.aliveObs[i]
			ok1 := dt.mem.DeleteObstacle(oid)
			ok2 := dt.dur.DeleteObstacle(oid)
			if !ok1 || !ok2 {
				t.Fatalf("DeleteObstacle(%d): mem %v, durable %v", oid, ok1, ok2)
			}
			dt.aliveObs = append(dt.aliveObs[:i], dt.aliveObs[i+1:]...)
			dt.muts = append(dt.muts, recMut{op: recDelObs, id: oid})
		}
	}
	if v1, v2 := dt.mem.Version(), dt.dur.Version(); v1 != v2 {
		t.Fatalf("version skew after mutation: mem %d, durable %d", v1, v2)
	}
}

// compareBattery executes n fresh random requests on both instances and
// requires bit-identical answers (or identical refusal).
func compareBattery(t *testing.T, got, want Database, seed int64, n int) {
	t.Helper()
	if v1, v2 := got.Version(), want.Version(); v1 != v2 {
		t.Fatalf("version skew: got %d, want %d", v1, v2)
	}
	if n1, n2 := got.NumPoints(), want.NumPoints(); n1 != n2 {
		t.Fatalf("point count skew: got %d, want %d", n1, n2)
	}
	if n1, n2 := got.NumObstacles(), want.NumObstacles(); n1 != n2 {
		t.Fatalf("obstacle count skew: got %d, want %d", n1, n2)
	}
	w := &diffWorkload{rng: rand.New(rand.NewSource(seed))}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		req := w.newRequest()
		a1, err1 := want.Exec(ctx, req)
		a2, err2 := got.Exec(ctx, req)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: want err=%v, got err=%v", req.Kind(), err1, err2)
		}
		if err1 != nil {
			continue
		}
		checkTwinAnswers(t, req, a2, a1)
	}
}

// replayPrefix rebuilds an in-memory single-node reference at the state
// reached by the first k recorded mutations.
func replayPrefix(t *testing.T, points []Point, obstacles []Rect, muts []recMut, k int) *DB {
	t.Helper()
	db, err := Open(points, obstacles, WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		m := muts[i]
		switch m.op {
		case recInsPt:
			id, err := db.InsertPoint(m.p)
			if err != nil || id != m.id {
				t.Fatalf("replay mut %d: InsertPoint gave (%d,%v), recorded %d", i, id, err, m.id)
			}
		case recDelPt:
			if !db.DeletePoint(m.id) {
				t.Fatalf("replay mut %d: DeletePoint(%d) failed", i, m.id)
			}
		case recInsObs:
			id, err := db.InsertObstacle(m.r)
			if err != nil || id != m.id {
				t.Fatalf("replay mut %d: InsertObstacle gave (%d,%v), recorded %d", i, id, err, m.id)
			}
		case recDelObs:
			if !db.DeleteObstacle(m.id) {
				t.Fatalf("replay mut %d: DeleteObstacle(%d) failed", i, m.id)
			}
		}
	}
	return db
}

// runDurablePhase interleaves mutations and durable-vs-twin query
// comparisons, returning after ops steps.
func runDurablePhase(t *testing.T, dt *durableTwin, ops int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < ops; i++ {
		if dt.gen.rng.Float64() < 0.5 {
			dt.mutate(t)
			continue
		}
		req := dt.gen.request()
		a1, err1 := dt.mem.Exec(ctx, req)
		a2, err2 := dt.dur.Exec(ctx, req)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: mem err=%v, durable err=%v", req.Kind(), err1, err2)
		}
		if err1 == nil {
			checkTwinAnswers(t, req, a2, a1)
		}
	}
}

// chopNewestSegment truncates the newest WAL segment in dir by n bytes,
// simulating the torn tail a crash mid-write leaves behind.
func chopNewestSegment(t *testing.T, dir string, n int64) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s (err=%v)", dir, err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= n {
		t.Fatalf("newest segment %s has only %d bytes, cannot chop %d", last, fi.Size(), n)
	}
	if err := os.Truncate(last, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCrashRecoverySingle is the single-node hard-stop differential:
// strict WAL mode with automatic checkpoints, abandon without Close, reopen,
// and the recovered instance must be the twin — then keep mutating both and
// stay the twin.
func TestDurableCrashRecoverySingle(t *testing.T) {
	dir := t.TempDir()
	gen, pts, obs := durableWorld(21)
	dur, err := OpenDurable(dir, WithBootstrapData(pts, obs), WithCheckpointEvery(7), WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Open(pts, obs, WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	dt := &durableTwin{gen: gen, dur: dur, mem: mem}
	for i := range pts {
		dt.alivePts = append(dt.alivePts, int32(i))
	}
	for i := range obs {
		dt.aliveObs = append(dt.aliveObs, int32(i))
	}
	runDurablePhase(t, dt, 300)

	// Hard stop: no Close, no checkpoint — the strict WAL alone must carry
	// the recovered instance to the exact pre-crash epoch.
	if !HasDurableState(dir) {
		t.Fatal("HasDurableState is false on a populated directory")
	}
	re, err := OpenDurable(dir, WithCheckpointEvery(7), WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	rs := re.RecoveryStats()
	if rs.Epoch != mem.Version() {
		t.Fatalf("recovered to epoch %d, twin is at %d", rs.Epoch, mem.Version())
	}
	if rs.CheckpointBytes == 0 {
		t.Fatal("recovery reports zero checkpoint bytes")
	}
	t.Logf("recovery stats: %+v", rs)
	compareBattery(t, re, mem, 500, 60)

	// The recovered instance must keep assigning the same IDs and answering
	// identically under further mutations.
	dt.dur = re
	runDurablePhase(t, dt, 120)
	compareBattery(t, re, mem, 501, 40)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen after the clean close too.
	re2, err := OpenDurable(dir, WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	if rs := re2.RecoveryStats(); rs.WALRecords != 0 {
		t.Fatalf("clean close should leave an empty log, replayed %d records", rs.WALRecords)
	}
	compareBattery(t, re2, mem, 502, 40)
	re2.Close()
}

// TestDurableCrashRecoveryTornTailSingle tears the newest WAL segment after
// the hard stop: recovery must land on the exact mutation prefix the
// surviving log encodes, proven by differential comparison against an
// in-memory replay of that prefix.
func TestDurableCrashRecoveryTornTailSingle(t *testing.T) {
	dir := t.TempDir()
	gen, pts, obs := durableWorld(22)
	dur, err := OpenDurable(dir, WithBootstrapData(pts, obs), WithCheckpointEvery(-1), WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Open(pts, obs, WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	dt := &durableTwin{gen: gen, dur: dur, mem: mem}
	for i := range pts {
		dt.alivePts = append(dt.alivePts, int32(i))
	}
	for i := range obs {
		dt.aliveObs = append(dt.aliveObs, int32(i))
	}
	for i := 0; i < 80; i++ {
		dt.mutate(t)
	}

	chopNewestSegment(t, dir, 100)
	re, err := OpenDurable(dir, WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	e := re.Version()
	if e >= mem.Version() || e < 1 {
		t.Fatalf("torn recovery at epoch %d, twin at %d", e, mem.Version())
	}
	// Epoch e = 1 (the opened world) + the first e-1 recorded mutations.
	ref := replayPrefix(t, pts, obs, dt.muts, int(e)-1)
	compareBattery(t, re, ref, 510, 60)
	t.Logf("torn recovery stats: %+v (twin at %d)", re.RecoveryStats(), mem.Version())
	re.Close()
}

// TestDurableCrashRecoverySharded is the sharded hard-stop differential on a
// 2x2 grid with automatic router checkpoints: the recovered ShardedDB must
// be bit-identical to an in-memory single-node twin — the strongest
// equivalence the repo states, across both the sharding and the durability
// layers at once.
func TestDurableCrashRecoverySharded(t *testing.T) {
	dir := t.TempDir()
	gen, pts, obs := durableWorld(23)
	dur, err := OpenDurableSharded(dir, 4, WithBootstrapData(pts, obs), WithCheckpointEvery(7), WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Open(pts, obs, WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	dt := &durableTwin{gen: gen, dur: dur, mem: mem}
	for i := range pts {
		dt.alivePts = append(dt.alivePts, int32(i))
	}
	for i := range obs {
		dt.aliveObs = append(dt.aliveObs, int32(i))
	}
	runDurablePhase(t, dt, 300)

	if !HasDurableState(dir) {
		t.Fatal("HasDurableState is false on a populated sharded directory")
	}
	re, err := OpenDurableSharded(dir, 4, WithCheckpointEvery(7), WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	rs := re.RecoveryStats()
	if rs.Epoch != mem.Version() {
		t.Fatalf("recovered to revision %d, twin is at %d", rs.Epoch, mem.Version())
	}
	t.Logf("sharded recovery stats: %+v", rs)
	compareBattery(t, re, mem, 520, 60)

	dt.dur = re
	runDurablePhase(t, dt, 120)
	compareBattery(t, re, mem, 521, 40)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	re2, err := OpenDurableSharded(dir, 4, WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	if rs := re2.RecoveryStats(); rs.WALRecords != 0 {
		t.Fatalf("clean close should leave empty logs, replayed %d records", rs.WALRecords)
	}
	compareBattery(t, re2, mem, 522, 40)
	re2.Close()
}

// TestDurableCrashRecoveryShardedTornSeq tears the sequencer log: the shard
// logs run ahead of the surviving sequencer prefix, and the consistent-cut
// walk must drop the unsequenced shard records on every shard at once.
func TestDurableCrashRecoveryShardedTornSeq(t *testing.T) {
	dir := t.TempDir()
	gen, pts, obs := durableWorld(24)
	dur, err := OpenDurableSharded(dir, 4, WithBootstrapData(pts, obs), WithCheckpointEvery(-1), WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Open(pts, obs, WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	dt := &durableTwin{gen: gen, dur: dur, mem: mem}
	for i := range pts {
		dt.alivePts = append(dt.alivePts, int32(i))
	}
	for i := range obs {
		dt.aliveObs = append(dt.aliveObs, int32(i))
	}
	for i := 0; i < 80; i++ {
		dt.mutate(t)
	}

	chopNewestSegment(t, filepath.Join(dir, seqDirName), 100)
	re, err := OpenDurableSharded(dir, 4, WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	r := re.Version()
	if r >= mem.Version() || r < 1 {
		t.Fatalf("torn recovery at revision %d, twin at %d", r, mem.Version())
	}
	ref := replayPrefix(t, pts, obs, dt.muts, int(r)-1)
	compareBattery(t, re, ref, 530, 60)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// The close rewrote every log to the recovered cut; a further reopen must
	// land on the identical state.
	re2, err := OpenDurableSharded(dir, 4, WithAnswerCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	compareBattery(t, re2, ref, 531, 30)
	re2.Close()
}

// TestOpenDurableErrors pins the constructor misuse cases.
func TestOpenDurableErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenDurable(dir); err == nil {
		t.Fatal("OpenDurable on an empty directory without bootstrap data succeeded")
	}
	_, pts, obs := durableWorld(25)
	db, err := OpenDurable(dir, WithBootstrapData(pts, obs))
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if _, err := OpenDurable(dir, WithBootstrapData(pts, obs)); err == nil {
		t.Fatal("OpenDurable with bootstrap data on a populated directory succeeded")
	}

	sdir := t.TempDir()
	if _, err := OpenDurableSharded(sdir, 4); err == nil {
		t.Fatal("OpenDurableSharded on an empty directory without bootstrap data succeeded")
	}
	sdb, err := OpenDurableSharded(sdir, 4, WithBootstrapData(pts, obs))
	if err != nil {
		t.Fatal(err)
	}
	sdb.Close()
	if _, err := OpenDurableSharded(sdir, 2); err == nil {
		t.Fatal("reopening a 4-shard store with 2 shards succeeded")
	}
	if _, err := OpenDurableSharded(sdir, 4, WithBootstrapData(pts, obs)); err == nil {
		t.Fatal("OpenDurableSharded with bootstrap data on a populated directory succeeded")
	}
}

// TestDurableStickyFailure proves fail-stop: after a WAL failure the failed
// mutation does not publish, later mutations refuse, and reads keep
// serving the last published version.
func TestDurableStickyFailure(t *testing.T) {
	dir := t.TempDir()
	_, pts, obs := durableWorld(26)
	db, err := OpenDurable(dir, WithBootstrapData(pts, obs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertPoint(Pt(1, 1)); err != nil {
		t.Fatal(err)
	}
	v := db.Version()
	db.dur.w.Close() // sever the log out from under the handle
	if _, err := db.InsertPoint(Pt(2, 2)); err == nil {
		t.Fatal("insert after WAL failure succeeded")
	}
	if db.Version() != v {
		t.Fatalf("failed mutation published: version %d -> %d", v, db.Version())
	}
	if db.DeletePoint(0) {
		t.Fatal("delete after WAL failure succeeded")
	}
	if err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint after WAL failure succeeded")
	}
	if _, err := db.Exec(context.Background(), RangeRequest{Center: Pt(1, 1), Radius: 5}); err != nil {
		t.Fatalf("read after WAL failure refused: %v", err)
	}

	// Sharded: the sequencer cannot be rolled back (shards applied first),
	// so the failing mutation itself commits in memory, then the latch
	// refuses everything after it.
	sdir := t.TempDir()
	sdb, err := OpenDurableSharded(sdir, 2, WithBootstrapData(pts, obs))
	if err != nil {
		t.Fatal(err)
	}
	sdb.dur.seq.Close()
	if _, err := sdb.InsertPoint(Pt(3, 3)); err != nil {
		t.Fatalf("the latching mutation itself should commit in memory: %v", err)
	}
	if _, err := sdb.InsertPoint(Pt(4, 4)); err == nil {
		t.Fatal("insert after sequencer failure succeeded")
	}
	if sdb.DeletePoint(0) {
		t.Fatal("delete after sequencer failure succeeded")
	}
	if err := sdb.Checkpoint(); err == nil {
		t.Fatal("checkpoint after sequencer failure succeeded")
	}
}

// TestDurableGroupCommit exercises the windowed sync path end to end: the
// background syncer must land every record, and Close must flush the tail.
func TestDurableGroupCommit(t *testing.T) {
	dir := t.TempDir()
	gen, pts, obs := durableWorld(27)
	db, err := OpenDurable(dir, WithBootstrapData(pts, obs), WithGroupCommit(2*time.Millisecond), WithCheckpointEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Open(pts, obs)
	if err != nil {
		t.Fatal(err)
	}
	dt := &durableTwin{gen: gen, dur: db, mem: mem}
	for i := range pts {
		dt.alivePts = append(dt.alivePts, int32(i))
	}
	for i := range obs {
		dt.aliveObs = append(dt.aliveObs, int32(i))
	}
	for i := 0; i < 60; i++ {
		dt.mutate(t)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	compareBattery(t, re, mem, 540, 40)
	re.Close()
}

// TestCheckpointCodecRoundTrip pins the single-node checkpoint format: a
// live version round-trips exactly, and any single corrupted byte is
// detected by the CRC.
func TestCheckpointCodecRoundTrip(t *testing.T) {
	_, pts, obs := durableWorld(28)
	db, err := Open(pts, obs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertPoint(Pt(50, 50)); err != nil {
		t.Fatal(err)
	}
	if !db.DeletePoint(3) || !db.DeleteObstacle(2) {
		t.Fatal("setup deletes failed")
	}
	v := db.current()
	var buf bytes.Buffer
	if err := writeCheckpoint(&buf, v); err != nil {
		t.Fatal(err)
	}
	c, err := parseCheckpoint(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if c.epoch != v.epoch || len(c.points) != len(v.points) || len(c.obstacles) != len(v.obstacles) {
		t.Fatalf("round trip lost shape: %+v vs epoch %d, %d pts, %d obs", c, v.epoch, len(v.points), len(v.obstacles))
	}
	for i, p := range v.points {
		if c.points[i] != p {
			t.Fatalf("point %d: %v != %v", i, c.points[i], p)
		}
	}
	for i, o := range v.obstacles {
		if c.obstacles[i] != o {
			t.Fatalf("obstacle %d: %v != %v", i, c.obstacles[i], o)
		}
	}
	if !c.deadPts[3] || !c.deadObs[2] || len(c.deadPts) != 1 || len(c.deadObs) != 1 {
		t.Fatalf("tombstones lost: %v / %v", c.deadPts, c.deadObs)
	}
	for off := 0; off < buf.Len(); off += 37 {
		bad := append([]byte(nil), buf.Bytes()...)
		bad[off] ^= 0x40
		if _, err := parseCheckpoint(bad); err == nil {
			t.Fatalf("corruption at byte %d went undetected", off)
		}
	}
	if _, err := parseCheckpoint(buf.Bytes()[:buf.Len()-5]); err == nil {
		t.Fatal("truncated checkpoint went undetected")
	}
}

// TestRouterCkptCodecRoundTrip pins the router checkpoint format the same
// way.
func TestRouterCkptCodecRoundTrip(t *testing.T) {
	rc := &routerCkpt{
		rev:    17,
		cols:   2,
		rows:   2,
		world:  R(0, 0, 100, 50),
		dummy:  Pt(101, 51),
		epochs: []uint64{3, 1, 9, 2},
		l2gP:   [][]int32{{0, 2}, {-1}, {1, 3, 4}, {-1, 5}},
		l2gO:   [][]int32{{0}, {0, 1}, {1}, {}},
		lenP2S: 6,
		lenO2S: 2,
	}
	var buf bytes.Buffer
	if err := writeRouterCkpt(&buf, rc); err != nil {
		t.Fatal(err)
	}
	got, err := parseRouterCkpt(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.rev != rc.rev || got.cols != rc.cols || got.rows != rc.rows ||
		got.world != rc.world || got.dummy != rc.dummy ||
		got.lenP2S != rc.lenP2S || got.lenO2S != rc.lenO2S {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, rc)
	}
	for i := range rc.epochs {
		if got.epochs[i] != rc.epochs[i] {
			t.Fatalf("shard %d epoch %d != %d", i, got.epochs[i], rc.epochs[i])
		}
		if len(got.l2gP[i]) != len(rc.l2gP[i]) || len(got.l2gO[i]) != len(rc.l2gO[i]) {
			t.Fatalf("shard %d table lengths differ", i)
		}
		for j := range rc.l2gP[i] {
			if got.l2gP[i][j] != rc.l2gP[i][j] {
				t.Fatalf("shard %d l2gP[%d] %d != %d", i, j, got.l2gP[i][j], rc.l2gP[i][j])
			}
		}
		for j := range rc.l2gO[i] {
			if got.l2gO[i][j] != rc.l2gO[i][j] {
				t.Fatalf("shard %d l2gO[%d] %d != %d", i, j, got.l2gO[i][j], rc.l2gO[i][j])
			}
		}
	}
	for off := 0; off < buf.Len(); off += 7 {
		bad := append([]byte(nil), buf.Bytes()...)
		bad[off] ^= 0x20
		if _, err := parseRouterCkpt(bad); err == nil {
			t.Fatalf("corruption at byte %d went undetected", off)
		}
	}
}

// TestSaveFileAtomic is the regression test for the SaveFile crash-safety
// fix: the write goes through a temp file and rename, so a failing write
// leaves the previous file intact and no temp litter behind.
func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	_, pts, obs := durableWorld(29)
	db, err := Open(pts, obs)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	old, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}

	// A write that fails partway must leave the old bytes and clean up its
	// temp file.
	boom := errors.New("boom")
	err = atomicWriteFile(path, func(w io.Writer) error {
		w.Write([]byte("partial garbage that must never reach the real file"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("expected the writer's error, got %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, old) {
		t.Fatal("failed save clobbered the previous snapshot")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("temp litter left behind: %s", e.Name())
		}
	}

	// And a successful overwrite replaces the snapshot completely.
	if _, err := db.InsertPoint(Pt(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	re, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.NumPoints() != db.NumPoints() {
		t.Fatalf("reloaded %d points, want %d", re.NumPoints(), db.NumPoints())
	}
}

// TestDurableManualCheckpoint proves Checkpoint truncates the log: a crash
// right after it replays zero records.
func TestDurableManualCheckpoint(t *testing.T) {
	dir := t.TempDir()
	gen, pts, obs := durableWorld(30)
	db, err := OpenDurable(dir, WithBootstrapData(pts, obs), WithCheckpointEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	w := gen
	for i := 0; i < 25; i++ {
		if _, err := db.InsertPoint(w.pt()); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	v := db.Version()
	re, err := OpenDurable(dir) // hard stop: no Close
	if err != nil {
		t.Fatal(err)
	}
	rs := re.RecoveryStats()
	if rs.WALRecords != 0 {
		t.Fatalf("post-checkpoint recovery replayed %d records", rs.WALRecords)
	}
	if rs.Epoch != v {
		t.Fatalf("recovered to %d, want %d", rs.Epoch, v)
	}
	re.Close()
}
