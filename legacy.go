package connquery

import "context"

// Legacy query surface. Every method in this file is a thin shim over the
// request-based path (DB.Exec / Run with a concrete Request value) and is
// kept for source compatibility: the shims execute with a background
// context against the current version, exactly as the pre-request API did.
// New code should build a Request and call Exec (or the typed Run helper),
// which additionally offers context cancellation, version pinning
// (AtVersion/AtSnapshot), per-call tuning and worker pooling.
//
// Deprecation policy for this file:
//
//   - Every shim carries a "Deprecated:" marker naming the exact
//     replacement request type and, where options are involved, the exact
//     QueryOption. Tooling (gopls, staticcheck) surfaces the marker at
//     call sites; the README's migration table mirrors it.
//   - A shim is one statement: build the request, call Run/Exec. Behavior
//     changes happen in the request's run method, never here, so a shim's
//     documented semantics cannot drift from Exec's (the doc comments
//     below describe the request's behavior and are corrected whenever
//     the request changes).
//   - Shims whose legacy signature cannot report an error (ClosestPair,
//     DistanceSemiJoin, ObstructedDist) panic on one; with a background
//     context and valid inputs no error path is reachable, so a panic
//     there is programmer misuse, not an operational failure.
//   - Shims are never removed within a module major version; newly
//     deprecated surface moves to this file with the same treatment
//     (COKNN, the pre-rename spelling, is the template).

// CONN answers a continuous obstructed nearest neighbor query over q: the
// returned tuples partition q and each names the data point that is the
// obstructed NN of every position in its interval.
//
// Deprecated: use Run(ctx, db, CONNRequest{Seg: q}) or DB.Exec.
func (db *DB) CONN(q Segment) (*Result, Metrics, error) {
	return Run(context.Background(), db, CONNRequest{Seg: q})
}

// CONNBatch answers a slice of CONN queries concurrently on a bounded
// worker pool and returns results and metrics in input order. The snapshot
// current when the call starts is pinned for the whole batch. workers <= 0
// selects GOMAXPROCS.
//
// Deprecated: use DB.Exec with CONNBatchRequest and WithWorkers(workers);
// per-query metrics are available via Answer.ItemMetrics.
func (db *DB) CONNBatch(queries []Segment, workers int) ([]*Result, []Metrics, error) {
	ans, err := db.Exec(context.Background(), CONNBatchRequest{Segs: queries}, WithWorkers(workers))
	if err != nil {
		return nil, nil, err
	}
	return ans.Results(), ans.ItemMetrics(), nil
}

// COkNN answers a continuous obstructed k-nearest-neighbor query (k >= 1).
//
// Deprecated: use Run(ctx, db, COkNNRequest{Seg: q, K: k}) or DB.Exec.
func (db *DB) COkNN(q Segment, k int) (*KResult, Metrics, error) {
	return Run(context.Background(), db, COkNNRequest{Seg: q, K: k})
}

// COKNN answers a continuous obstructed k-nearest-neighbor query (k >= 1).
//
// Deprecated: the query is spelled COkNN in the paper; use DB.COkNN, or
// better, Run(ctx, db, COkNNRequest{Seg: q, K: k}).
func (db *DB) COKNN(q Segment, k int) (*KResult, Metrics, error) {
	return db.COkNN(q, k)
}

// ONN answers a snapshot obstructed k-nearest-neighbor query at a point
// (k >= 1). Only reachable data points are returned, so fewer than k
// neighbors may come back.
//
// Deprecated: use Run(ctx, db, ONNRequest{P: p, K: k}) or DB.Exec.
func (db *DB) ONN(p Point, k int) ([]Neighbor, Metrics, error) {
	return Run(context.Background(), db, ONNRequest{P: p, K: k})
}

// CNN answers a classical Euclidean continuous nearest neighbor query,
// ignoring obstacles — the baseline the paper contrasts in Figure 1.
//
// Deprecated: use Run(ctx, db, CNNRequest{Seg: q}) or DB.Exec.
func (db *DB) CNN(q Segment) (*Result, Metrics, error) {
	return Run(context.Background(), db, CNNRequest{Seg: q})
}

// NaiveCONN answers CONN by sampling: an ONN query at samples+1 evenly
// spaced positions. Approximate and slow by design; it is the baseline the
// paper's introduction rules out.
//
// Deprecated: use Run(ctx, db, NaiveCONNRequest{Seg: q, Samples: samples})
// or DB.Exec.
func (db *DB) NaiveCONN(q Segment, samples int) (*Result, Metrics, error) {
	return Run(context.Background(), db, NaiveCONNRequest{Seg: q, Samples: samples})
}

// EDistanceJoin returns every (query point, data point) pair whose
// obstructed distance is at most e (the obstructed e-distance join of
// Zhang et al., EDBT 2004), sorted by (query index, distance).
//
// Deprecated: use Run(ctx, db, EDistanceJoinRequest{Queries: queries, E: e})
// or DB.Exec.
func (db *DB) EDistanceJoin(queries []Point, e float64) ([]JoinPair, Metrics, error) {
	return Run(context.Background(), db, EDistanceJoinRequest{Queries: queries, E: e})
}

// ClosestPair returns the (query point, data point) pair with the smallest
// obstructed distance. With no query points the returned pair has
// QIdx == -1 and infinite distance.
//
// Deprecated: use Run(ctx, db, ClosestPairRequest{Queries: queries}) or
// DB.Exec.
func (db *DB) ClosestPair(queries []Point) (JoinPair, Metrics) {
	pair, m, err := Run(context.Background(), db, ClosestPairRequest{Queries: queries})
	if err != nil {
		// The request has no validation and the context cannot fire, so any
		// error is programmer misuse; the legacy signature cannot report it,
		// and returning a zero pair would read as a real answer.
		panic(err)
	}
	return pair, m
}

// DistanceSemiJoin returns, for each query point, its obstructed nearest
// data point, sorted ascending by distance. A query point with no
// reachable data point yields a pair with PID == NoOwner and infinite
// distance.
//
// Deprecated: use Run(ctx, db, DistanceSemiJoinRequest{Queries: queries})
// or DB.Exec.
func (db *DB) DistanceSemiJoin(queries []Point) ([]JoinPair, Metrics) {
	pairs, m, err := Run(context.Background(), db, DistanceSemiJoinRequest{Queries: queries})
	if err != nil {
		panic(err) // see ClosestPair: unreportable and otherwise silent
	}
	return pairs, m
}

// VisibleKNN returns the k nearest data points (Euclidean, k >= 1) among
// those visible from p — obstacles occlude rather than detour (the VkNN
// query of Nutanong et al., DASFAA 2007).
//
// Deprecated: use Run(ctx, db, VisibleKNNRequest{P: p, K: k}) or DB.Exec.
func (db *DB) VisibleKNN(p Point, k int) ([]Neighbor, Metrics, error) {
	return Run(context.Background(), db, VisibleKNNRequest{P: p, K: k})
}

// TrajectoryCONN answers a CONN query over a polyline trajectory (the
// paper's §6 trajectory extension): the obstructed NN of every point on
// every leg. Degenerate legs are skipped; it is an error when fewer than
// two waypoints are given or every leg is degenerate.
//
// Deprecated: use Run(ctx, db, TrajectoryRequest{Waypoints: waypoints}) or
// DB.Exec.
func (db *DB) TrajectoryCONN(waypoints []Point) (*TrajectoryResult, Metrics, error) {
	return Run(context.Background(), db, TrajectoryRequest{Waypoints: waypoints})
}

// ObstructedRange returns every data point whose obstructed distance to
// center is at most radius, sorted ascending (the obstructed range query
// of Zhang et al., EDBT 2004).
//
// Deprecated: use Run(ctx, db, RangeRequest{Center: center, Radius: radius})
// or DB.Exec.
func (db *DB) ObstructedRange(center Point, radius float64) ([]Neighbor, Metrics, error) {
	return Run(context.Background(), db, RangeRequest{Center: center, Radius: radius})
}

// ObstructedDist returns the exact obstructed distance between two free
// points under the DB's obstacle set, +Inf when no path exists. It uses
// the same incremental obstacle retrieval as the queries, so only
// obstacles near the pair are examined.
//
// Deprecated: use Run(ctx, db, DistanceRequest{A: a, B: b}) or DB.Exec.
func (db *DB) ObstructedDist(a, b Point) float64 {
	d, _, err := Run(context.Background(), db, DistanceRequest{A: a, B: b})
	if err != nil {
		panic(err) // see ClosestPair: a silent 0 would read as "reachable"
	}
	return d
}
