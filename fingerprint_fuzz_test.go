package connquery

// Fuzzing the request fingerprint canonicalizer. The cache's safety rests
// on two properties of requestFingerprint:
//
//  1. Semantically equal requests collide: value-identical parameters in
//     fresh backing arrays, -0.0 vs +0.0 coordinates, and the symmetric
//     DistanceRequest endpoint order all map to one key, so equal requests
//     share one cache entry.
//  2. Anything that can select a different execution separates: a different
//     request kind, any parameter change, and the per-call tuning/worker
//     options must all produce distinct keys — two requests that may answer
//     differently must never serve each other's cached answers.
//
// The fuzzer derives a request of every kind from raw numeric input, builds
// a semantically equal twin and a family of perturbed variants, and checks
// both properties for arbitrary (including non-finite) float inputs.

import (
	"math"
	"testing"

	"connquery/internal/core"
)

// fuzzRequests derives one request of each kind from the raw inputs.
func fuzzRequests(kind uint8, x1, y1, x2, y2, s float64, k int16) Request {
	a, b := Pt(x1, y1), Pt(x2, y2)
	seg := Seg(a, b)
	kk := int(k)
	return []Request{
		CONNRequest{Seg: seg},
		COkNNRequest{Seg: seg, K: kk},
		ONNRequest{P: a, K: kk},
		CNNRequest{Seg: seg},
		NaiveCONNRequest{Seg: seg, Samples: kk},
		RangeRequest{Center: a, Radius: s},
		VisibleKNNRequest{P: b, K: kk},
		DistanceRequest{A: a, B: b},
		TrajectoryRequest{Waypoints: []Point{a, b, Pt(s, y1)}},
		CONNBatchRequest{Segs: []Segment{seg, Seg(b, Pt(s, s))}},
		EDistanceJoinRequest{Queries: []Point{a, b}, E: s},
		DistanceSemiJoinRequest{Queries: []Point{b, a}},
		ClosestPairRequest{Queries: []Point{a}},
	}[int(kind)%13]
}

// equalTwin builds a semantically equal copy of req: identical values in
// fresh backing arrays, every zero coordinate's sign flipped, and the
// DistanceRequest endpoints swapped (obstructed distance is symmetric).
func equalTwin(req Request) Request {
	flip := func(v float64) float64 {
		if v == 0 {
			return -v // +0 <-> -0: same value, different bits
		}
		return v
	}
	fp := func(p Point) Point { return Pt(flip(p.X), flip(p.Y)) }
	fs := func(s Segment) Segment { return Seg(fp(s.A), fp(s.B)) }
	fps := func(ps []Point) []Point {
		out := make([]Point, len(ps))
		for i, p := range ps {
			out[i] = fp(p)
		}
		return out
	}
	switch r := req.(type) {
	case CONNRequest:
		return CONNRequest{Seg: fs(r.Seg)}
	case COkNNRequest:
		return COkNNRequest{Seg: fs(r.Seg), K: r.K}
	case ONNRequest:
		return ONNRequest{P: fp(r.P), K: r.K}
	case CNNRequest:
		return CNNRequest{Seg: fs(r.Seg)}
	case NaiveCONNRequest:
		return NaiveCONNRequest{Seg: fs(r.Seg), Samples: r.Samples}
	case RangeRequest:
		return RangeRequest{Center: fp(r.Center), Radius: flip(r.Radius)}
	case VisibleKNNRequest:
		return VisibleKNNRequest{P: fp(r.P), K: r.K}
	case DistanceRequest:
		return DistanceRequest{A: fp(r.B), B: fp(r.A)} // symmetric
	case TrajectoryRequest:
		return TrajectoryRequest{Waypoints: fps(r.Waypoints)}
	case CONNBatchRequest:
		segs := make([]Segment, len(r.Segs))
		for i, s := range r.Segs {
			segs[i] = fs(s)
		}
		return CONNBatchRequest{Segs: segs}
	case EDistanceJoinRequest:
		return EDistanceJoinRequest{Queries: fps(r.Queries), E: flip(r.E)}
	case DistanceSemiJoinRequest:
		return DistanceSemiJoinRequest{Queries: fps(r.Queries)}
	case ClosestPairRequest:
		return ClosestPairRequest{Queries: fps(r.Queries)}
	}
	return req
}

func FuzzRequestFingerprint(f *testing.F) {
	// Seed corpus: every request kind, plus the canonicalizer's edge cases —
	// signed zeros, infinities, NaN, swapped distance endpoints, clamped
	// NaiveCONN sample counts.
	for kind := uint8(0); kind < 13; kind++ {
		f.Add(kind, 1.5, 2.5, 3.5, 4.5, 10.0, int16(3))
	}
	f.Add(uint8(7), 5.0, 6.0, 1.0, 2.0, 0.0, int16(1))                  // distance, endpoints out of order
	f.Add(uint8(0), math.Copysign(0, -1), 0.0, 1.0, 1.0, 2.0, int16(1)) // -0.0 vs +0.0
	f.Add(uint8(2), math.Inf(1), 0.0, 0.0, math.Inf(-1), 1.0, int16(2)) // infinities are canonical
	f.Add(uint8(1), math.NaN(), 0.0, 1.0, 1.0, 1.0, int16(2))           // NaN: not cacheable
	f.Add(uint8(4), 0.0, 0.0, 1.0, 1.0, 1.0, int16(-7))                 // samples clamp to 2
	f.Add(uint8(12), 0.0, 0.0, 0.0, 0.0, 0.0, int16(0))                 // duplicate coordinates

	f.Fuzz(func(t *testing.T, kind uint8, x1, y1, x2, y2, s float64, k int16) {
		req := fuzzRequests(kind, x1, y1, x2, y2, s, k)
		fp, ok := requestFingerprint(req, core.Options{}, 0, false)
		hasNaN := math.IsNaN(x1) || math.IsNaN(y1) || math.IsNaN(x2) || math.IsNaN(y2) || math.IsNaN(s)
		if !ok {
			if !hasNaN {
				t.Fatalf("%s: not fingerprintable without NaN input", req.Kind())
			}
			return // NaN parameters are legitimately uncacheable
		}

		// Property 1: semantically equal requests collide.
		twin := equalTwin(req)
		tfp, tok := requestFingerprint(twin, core.Options{}, 0, false)
		if !tok || tfp != fp {
			t.Fatalf("%s: semantically equal requests fingerprint differently\n req:  %#v\n twin: %#v", req.Kind(), req, twin)
		}

		// Property 2a: a different kind with the same raw inputs separates.
		other := fuzzRequests(kind+1, x1, y1, x2, y2, s, k)
		if ofp, ook := requestFingerprint(other, core.Options{}, 0, false); ook && ofp == fp {
			t.Fatalf("%s and %s collide", req.Kind(), other.Kind())
		}

		// Property 2b: tuning options separate.
		for _, tuning := range []core.Options{
			{DisableLemma1: true}, {DisableLemma6: true}, {DisableLemma7: true},
			{DisableVGReuse: true}, {UseBisectionSolver: true},
		} {
			if tfp, tok := requestFingerprint(req, tuning, 0, false); !tok || tfp == fp {
				t.Fatalf("%s: tuning %+v does not separate", req.Kind(), tuning)
			}
		}

		// Property 2c: worker options separate — from the optionless request
		// and from each other.
		w2, _ := requestFingerprint(req, core.Options{}, 2, true)
		w3, _ := requestFingerprint(req, core.Options{}, 3, true)
		if w2 == fp || w3 == fp || w2 == w3 {
			t.Fatalf("%s: worker options do not separate (%q %q %q)", req.Kind(), fp, w2, w3)
		}

		// Determinism: recomputation is stable.
		if again, _ := requestFingerprint(req, core.Options{}, 0, false); again != fp {
			t.Fatalf("%s: fingerprint not deterministic", req.Kind())
		}
	})
}
