package connquery

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"connquery/internal/anscache"
)

// Validity horizons for continuous motion. Objects updated through DB.Apply
// may declare a maximum speed (Mutation.Speed, world units per second); the
// DB tracks each declared object's last committed position and declaration
// time in a small registry. From the registry, Exec stamps every Answer with
// a ValidUntil horizon: the earliest wall-clock instant at which any tracked
// object could first touch the answer's widened impact region, assuming it
// honors its declared speed. Until that instant, speed-compliant moves
// provably cannot change the answer — the object stays strictly outside
// everything the execution consulted — so a Watch subscription holding a
// live horizon skips re-execution entirely (WatchStats.HorizonSkips).
//
// The guarantee is gated, not assumed: DB.Apply checks every move against
// the registered declaration, and any commit that is not a fully compliant
// batch of tracked moves — a plain mutation, a new tracked insert, an
// over-speed or untracked move, a delete riding in the tick — publishes its
// epoch through DB.lastUnbounded first. horizonHolds accepts a horizon only
// while lastUnbounded is at or below the answer's epoch, so a single
// non-compliant commit instantly re-arms every watcher.
//
// The registry is keyed at the epoch of the commit that last rewrote it,
// and a horizon is stamped only onto answers at or past that epoch. The
// stamp runs after execution, outside DB.mu, so a tick can commit between
// an answer's snapshot and its stamp; reading the post-tick registry for a
// pre-tick answer would be unsound — a compliant move can carry a tracked
// object OUT of the answer's impact region, and the post-move position
// (safely outside) would certify a horizon for an answer the tick already
// changed. Commits serialize under DB.mu with strictly increasing epochs,
// so ver <= answer epoch proves the table read is exactly the registry as
// of that epoch; otherwise the stamp degrades to no horizon.
//
// The registry is runtime-advisory state: it is not persisted in the WAL,
// so a recovered durable handle starts with an empty table (answers simply
// carry no horizon until speeds are re-declared). The sharded tier does not
// stamp horizons; its Apply delegates to the per-shard public ops.

// motionEntry is one tracked object: its last committed position and the
// speed bound declared for it, timestamped at the commit that set it.
type motionEntry struct {
	pos   Point
	speed float64 // world units per second, > 0 for a live entry
	at    time.Time
}

// motionTable is the declared-speed object registry. Mutations update it
// under DB.mu; Exec reads it lock-free through the counter fast path and
// under its own mutex otherwise, so horizon stamping never contends with
// queries that track no motion at all.
type motionTable struct {
	mu   sync.Mutex
	objs map[int32]motionEntry
	n    atomic.Int32

	// ver is the epoch of the last commit that rewrote the registry
	// (applyAt/forgetAt). horizon refuses to stamp an answer whose epoch is
	// below ver: the table would be newer than the answer (see the file
	// header for why that is unsound).
	ver uint64

	// memo caches horizon results per impact region for the current table
	// contents; any edit clears it. A horizon is a pure function of
	// (registry state, region), so a hit replays the scan's exact result —
	// watch- and cache-hit-heavy workloads stamp the same few regions over
	// and over between ticks, and the memo keeps that path O(1) instead of
	// O(tracked objects) under mt.mu.
	memo map[anscache.Region]time.Time
}

// horizonMemoCap bounds the memo; past it the map is simply reset (the
// region population between two ticks is tiny in practice).
const horizonMemoCap = 256

// empty reports whether no object is tracked, without taking the lock.
func (mt *motionTable) empty() bool { return mt.n.Load() == 0 }

// set registers (or re-registers) a tracked object.
func (mt *motionTable) set(pid int32, e motionEntry) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.setLocked(pid, e)
}

func (mt *motionTable) setLocked(pid int32, e motionEntry) {
	if mt.objs == nil {
		mt.objs = make(map[int32]motionEntry)
	}
	if _, ok := mt.objs[pid]; !ok {
		mt.n.Add(1)
	}
	mt.objs[pid] = e
	mt.memo = nil
}

// forget drops a tracked object (no-op when untracked). Deletions only ever
// lengthen horizons, so outstanding stamped answers stay sound.
func (mt *motionTable) forget(pid int32) {
	if mt.empty() {
		return
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.forgetLocked(pid)
}

func (mt *motionTable) forgetLocked(pid int32) bool {
	if _, ok := mt.objs[pid]; !ok {
		return false
	}
	delete(mt.objs, pid)
	mt.n.Add(-1)
	mt.memo = nil
	return true
}

// applyAt applies one committed batch's registry edits and re-keys the
// table at the committing epoch, atomically with respect to horizon reads.
// The caller (commit, under DB.mu) invokes it before publishing the epoch,
// so a stamp at the new epoch always sees the post-tick table.
func (mt *motionTable) applyAt(updates []motionUpdate, epoch uint64) {
	if len(updates) == 0 {
		return
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	for _, u := range updates {
		if u.forget {
			mt.forgetLocked(u.pid)
		} else {
			mt.setLocked(u.pid, u.entry)
		}
	}
	mt.ver = epoch
}

// forgetAt drops a tracked object at the deleting commit's epoch (no-op
// when untracked).
func (mt *motionTable) forgetAt(pid int32, epoch uint64) {
	if mt.empty() {
		return
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	if mt.forgetLocked(pid) {
		mt.ver = epoch
	}
}

// lookup returns the registered entry for pid.
func (mt *motionTable) lookup(pid int32) (motionEntry, bool) {
	if mt.empty() {
		return motionEntry{}, false
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	e, ok := mt.objs[pid]
	return e, ok
}

// maxHorizon caps a stamped horizon. Horizons beyond it carry no extra
// information (the guard re-checks wall clock on every wake) and the cap
// keeps the duration arithmetic far from overflow for near-zero speeds.
const maxHorizon = 365 * 24 * time.Hour

func horizonDuration(seconds float64) time.Duration {
	if seconds >= maxHorizon.Seconds() {
		return maxHorizon
	}
	return time.Duration(seconds * float64(time.Second))
}

// rectDist is the Euclidean distance from p to the closed rectangle r
// (zero when p lies inside or on the boundary, and for infinite rects).
func rectDist(p Point, r Rect) float64 {
	dx := math.Max(math.Max(r.MinX-p.X, 0), p.X-r.MaxX)
	dy := math.Max(math.Max(r.MinY-p.Y, 0), p.Y-r.MaxY)
	return math.Hypot(dx, dy)
}

// horizon computes the validity horizon of an answer at the given epoch
// with the given widened impact region: the minimum over tracked objects of
// the object's earliest possible first touch of the region rect, e.at +
// dist(e.pos, rect)/e.speed. A compliant move committed at time t satisfies
// dist(e.pos, new) <= e.speed*(t-e.at), so before the horizon the object —
// and therefore its delete+insert change boxes — stays strictly outside the
// rect: the answer is bit-identical and the wake filter would skip the
// commit too. Re-keying the entry at the move only pushes its bound later
// (triangle inequality), so horizons stamped from older entries remain
// valid. The zero time means no horizon: region insensitive to points,
// empty table, an object already inside (or possibly inside) the rect, a
// non-positive declared speed — or a registry rewritten at an epoch past
// the answer's, whose positions may hide that an object sat inside the
// region at the answer's epoch and has since moved out.
func (mt *motionTable) horizon(rg anscache.Region, epoch uint64) time.Time {
	if !rg.Points {
		// Tracked motion is point motion; a point-insensitive answer cannot
		// be affected by it, and the wake filter already skips point commits
		// for it, so a horizon would add nothing.
		return time.Time{}
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	if mt.ver > epoch {
		return time.Time{}
	}
	if h, ok := mt.memo[rg]; ok {
		return h
	}
	h := mt.scanLocked(rg)
	if mt.memo == nil {
		mt.memo = make(map[anscache.Region]time.Time)
	} else if len(mt.memo) >= horizonMemoCap {
		clear(mt.memo)
	}
	mt.memo[rg] = h
	return h
}

func (mt *motionTable) scanLocked(rg anscache.Region) time.Time {
	var h time.Time
	for _, e := range mt.objs {
		if e.speed <= 0 {
			return time.Time{}
		}
		d := rectDist(e.pos, rg.Rect)
		if d <= 0 {
			return time.Time{}
		}
		t := e.at.Add(horizonDuration(d / e.speed))
		if h.IsZero() || t.Before(h) {
			h = t
		}
	}
	return h
}

// stampHorizon attaches a validity horizon to a freshly built Answer. Both
// execAt paths (cache hit and fresh execution) allocate the Answer wrapper
// per call, so the stamp never mutates shared state. The empty-table fast
// path keeps motion-free deployments at zero overhead; the epoch argument
// keeps the stamp consistent with the answer — a registry rewritten by a
// commit past a.epoch (including a tick racing this very stamp) yields no
// horizon rather than an unsound one.
func (db *DB) stampHorizon(a *Answer) {
	if db.motion.empty() {
		return
	}
	rg := widenRegion(impactRegion(a.req, a.value), a.req, a.metrics.Reach)
	a.validUntil = db.motion.horizon(rg, a.epoch)
}

// horizonHolds reports whether prev's validity horizon still covers the
// present instant: a horizon was stamped, no unbounded commit has published
// since prev's epoch, and the wall clock has not reached the horizon. While
// it holds, every epoch published after prev.epoch was a compliant
// motion-bounded tick, which provably cannot have changed prev's answer.
func (db *DB) horizonHolds(prev *Answer) bool {
	return !prev.validUntil.IsZero() &&
		db.lastUnbounded.Load() <= prev.epoch &&
		time.Now().Before(prev.validUntil)
}
