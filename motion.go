package connquery

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"connquery/internal/anscache"
)

// Validity horizons for continuous motion. Objects updated through DB.Apply
// may declare a maximum speed (Mutation.Speed, world units per second); the
// DB tracks each declared object's last committed position and declaration
// time in a small registry. From the registry, Exec stamps every Answer with
// a ValidUntil horizon: the earliest wall-clock instant at which any tracked
// object could first touch the answer's widened impact region, assuming it
// honors its declared speed. Until that instant, speed-compliant moves
// provably cannot change the answer — the object stays strictly outside
// everything the execution consulted — so a Watch subscription holding a
// live horizon skips re-execution entirely (WatchStats.HorizonSkips).
//
// The guarantee is gated, not assumed: DB.Apply checks every move against
// the registered declaration, and any commit that is not a fully compliant
// batch of tracked moves — a plain mutation, a new tracked insert, an
// over-speed or untracked move, a delete riding in the tick — publishes its
// epoch through DB.lastUnbounded first. horizonHolds accepts a horizon only
// while lastUnbounded is at or below the answer's epoch, so a single
// non-compliant commit instantly re-arms every watcher.
//
// The registry is runtime-advisory state: it is not persisted in the WAL,
// so a recovered durable handle starts with an empty table (answers simply
// carry no horizon until speeds are re-declared). The sharded tier does not
// stamp horizons; its Apply delegates to the per-shard public ops.

// motionEntry is one tracked object: its last committed position and the
// speed bound declared for it, timestamped at the commit that set it.
type motionEntry struct {
	pos   Point
	speed float64 // world units per second, > 0 for a live entry
	at    time.Time
}

// motionTable is the declared-speed object registry. Mutations update it
// under DB.mu; Exec reads it lock-free through the counter fast path and
// under its own mutex otherwise, so horizon stamping never contends with
// queries that track no motion at all.
type motionTable struct {
	mu   sync.Mutex
	objs map[int32]motionEntry
	n    atomic.Int32
}

// empty reports whether no object is tracked, without taking the lock.
func (mt *motionTable) empty() bool { return mt.n.Load() == 0 }

// set registers (or re-registers) a tracked object.
func (mt *motionTable) set(pid int32, e motionEntry) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	if mt.objs == nil {
		mt.objs = make(map[int32]motionEntry)
	}
	if _, ok := mt.objs[pid]; !ok {
		mt.n.Add(1)
	}
	mt.objs[pid] = e
}

// forget drops a tracked object (no-op when untracked). Deletions only ever
// lengthen horizons, so outstanding stamped answers stay sound.
func (mt *motionTable) forget(pid int32) {
	if mt.empty() {
		return
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	if _, ok := mt.objs[pid]; ok {
		delete(mt.objs, pid)
		mt.n.Add(-1)
	}
}

// lookup returns the registered entry for pid.
func (mt *motionTable) lookup(pid int32) (motionEntry, bool) {
	if mt.empty() {
		return motionEntry{}, false
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	e, ok := mt.objs[pid]
	return e, ok
}

// maxHorizon caps a stamped horizon. Horizons beyond it carry no extra
// information (the guard re-checks wall clock on every wake) and the cap
// keeps the duration arithmetic far from overflow for near-zero speeds.
const maxHorizon = 365 * 24 * time.Hour

func horizonDuration(seconds float64) time.Duration {
	if seconds >= maxHorizon.Seconds() {
		return maxHorizon
	}
	return time.Duration(seconds * float64(time.Second))
}

// rectDist is the Euclidean distance from p to the closed rectangle r
// (zero when p lies inside or on the boundary, and for infinite rects).
func rectDist(p Point, r Rect) float64 {
	dx := math.Max(math.Max(r.MinX-p.X, 0), p.X-r.MaxX)
	dy := math.Max(math.Max(r.MinY-p.Y, 0), p.Y-r.MaxY)
	return math.Hypot(dx, dy)
}

// horizon computes the validity horizon of an answer with the given widened
// impact region: the minimum over tracked objects of the object's earliest
// possible first touch of the region rect, e.at + dist(e.pos, rect)/e.speed.
// A compliant move committed at time t satisfies dist(e.pos, new) <=
// e.speed*(t-e.at), so before the horizon the object — and therefore its
// delete+insert change boxes — stays strictly outside the rect: the answer
// is bit-identical and the wake filter would skip the commit too. Re-keying
// the entry at the move only pushes its bound later (triangle inequality),
// so horizons stamped from older entries remain valid. The zero time means
// no horizon: region insensitive to points, empty table, an object already
// inside (or possibly inside) the rect, or a non-positive declared speed.
func (mt *motionTable) horizon(rg anscache.Region) time.Time {
	if !rg.Points {
		// Tracked motion is point motion; a point-insensitive answer cannot
		// be affected by it, and the wake filter already skips point commits
		// for it, so a horizon would add nothing.
		return time.Time{}
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	var h time.Time
	for _, e := range mt.objs {
		if e.speed <= 0 {
			return time.Time{}
		}
		d := rectDist(e.pos, rg.Rect)
		if d <= 0 {
			return time.Time{}
		}
		t := e.at.Add(horizonDuration(d / e.speed))
		if h.IsZero() || t.Before(h) {
			h = t
		}
	}
	return h
}

// stampHorizon attaches a validity horizon to a freshly built Answer. Both
// execAt paths (cache hit and fresh execution) allocate the Answer wrapper
// per call, so the stamp never mutates shared state. The empty-table fast
// path keeps motion-free deployments at zero overhead.
func (db *DB) stampHorizon(a *Answer) {
	if db.motion.empty() {
		return
	}
	rg := widenRegion(impactRegion(a.req, a.value), a.req, a.metrics.Reach)
	a.validUntil = db.motion.horizon(rg)
}

// horizonHolds reports whether prev's validity horizon still covers the
// present instant: a horizon was stamped, no unbounded commit has published
// since prev's epoch, and the wall clock has not reached the horizon. While
// it holds, every epoch published after prev.epoch was a compliant
// motion-bounded tick, which provably cannot have changed prev's answer.
func (db *DB) horizonHolds(prev *Answer) bool {
	return !prev.validUntil.IsZero() &&
		db.lastUnbounded.Load() <= prev.epoch &&
		time.Now().Before(prev.validUntil)
}
