package connquery

import (
	"fmt"
	"math"

	"connquery/internal/geom"
)

// The shard map: a uniform cols x rows grid over the bounding rectangle of
// the initial dataset. Interior cell boundaries follow the half-open
// convention (a coordinate exactly on a boundary belongs to the cell on the
// right/top), and the outermost cells extend to infinity, so the cell
// regions tile the whole plane: every point has exactly one owning cell and
// any rectangle intersects a contiguous block of cells.

// shardMap assigns locations to grid cells. Immutable after creation.
type shardMap struct {
	cols, rows int
	world      geom.Rect // finite grid extent; edge cells own everything beyond
	cw, ch     float64   // cell width/height (always > 0)
}

// gridFor builds the near-square factorization of n shards over world:
// rows is the largest divisor of n that is at most sqrt(n).
func gridFor(n int, world geom.Rect) *shardMap {
	rows := 1
	for r := int(math.Sqrt(float64(n))); r >= 1; r-- {
		if n%r == 0 {
			rows = r
			break
		}
	}
	return newShardMap(n/rows, rows, world)
}

func newShardMap(cols, rows int, world geom.Rect) *shardMap {
	m := &shardMap{cols: cols, rows: rows, world: world}
	m.cw = world.Width() / float64(cols)
	m.ch = world.Height() / float64(rows)
	// Degenerate extents (all initial data collinear) collapse every
	// interior boundary; any positive pitch keeps cellOf well-defined, with
	// the outer cells absorbing the plane as usual.
	if !(m.cw > 0) {
		m.cw = 1
	}
	if !(m.ch > 0) {
		m.ch = 1
	}
	return m
}

func (m *shardMap) numShards() int { return m.cols * m.rows }

// cellOf returns the owning cell index of p: floor division clamped into
// the grid, so boundary coordinates go right/up and everything beyond the
// world rectangle lands in the nearest edge cell.
func (m *shardMap) cellOf(p Point) int {
	c := clampCell(int(math.Floor((p.X-m.world.MinX)/m.cw)), m.cols)
	r := clampCell(int(math.Floor((p.Y-m.world.MinY)/m.ch)), m.rows)
	return r*m.cols + c
}

func clampCell(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// cellRegion returns the region owned by cell i, with edge cells extended
// to infinity. Regions of adjacent cells share their boundary line; the
// half-open ownership convention of cellOf lives in cellOf, while regions
// stay closed — the overlap is deliberate slack in the obstacle replication
// predicate, never a correctness risk.
func (m *shardMap) cellRegion(i int) geom.Rect {
	c, r := i%m.cols, i/m.cols
	return m.spanRect(cellSpan{c, r, c, r})
}

// cellSpan is a contiguous rectangular block of grid cells, the only shape
// a scatter set ever takes: the cells intersecting any rectangle form such
// a block, and the union of two blocks is their bounding block.
type cellSpan struct{ c0, r0, c1, r1 int }

func (s cellSpan) size() int    { return (s.c1 - s.c0 + 1) * (s.r1 - s.r0 + 1) }
func (s cellSpan) single() bool { return s.c0 == s.c1 && s.r0 == s.r1 }
func (s cellSpan) contains(c, r int) bool {
	return c >= s.c0 && c <= s.c1 && r >= s.r0 && r <= s.r1
}

func (s cellSpan) union(o cellSpan) cellSpan {
	if o.c0 < s.c0 {
		s.c0 = o.c0
	}
	if o.r0 < s.r0 {
		s.r0 = o.r0
	}
	if o.c1 > s.c1 {
		s.c1 = o.c1
	}
	if o.r1 > s.r1 {
		s.r1 = o.r1
	}
	return s
}

// cells invokes fn with every cell index of the span, in ascending order.
func (s cellSpan) cells(m *shardMap, fn func(i int)) {
	for r := s.r0; r <= s.r1; r++ {
		for c := s.c0; c <= s.c1; c++ {
			fn(r*m.cols + c)
		}
	}
}

func (s cellSpan) String() string {
	return fmt.Sprintf("cells[%d,%d..%d,%d]", s.c0, s.r0, s.c1, s.r1)
}

// fullSpan covers the whole grid.
func (m *shardMap) fullSpan() cellSpan {
	return cellSpan{0, 0, m.cols - 1, m.rows - 1}
}

// spanFor returns the block of cells whose regions cover box. An empty box
// maps to the origin cell (a canonical single-shard seed for requests with
// no geometry); an infinite box maps to the full grid.
func (m *shardMap) spanFor(box geom.Rect) cellSpan {
	if box.Empty() {
		return cellSpan{0, 0, 0, 0}
	}
	return cellSpan{
		c0: cellIdx(box.MinX, m.world.MinX, m.cw, m.cols),
		r0: cellIdx(box.MinY, m.world.MinY, m.ch, m.rows),
		c1: cellIdx(box.MaxX, m.world.MinX, m.cw, m.cols),
		r1: cellIdx(box.MaxY, m.world.MinY, m.ch, m.rows),
	}
}

// cellIdx maps a coordinate to its clamped grid index on one axis. The
// infinities need explicit cases: converting a non-finite float to int is
// implementation-defined in Go, and +Inf must land on the far edge cell.
func cellIdx(x, origin, pitch float64, n int) int {
	if math.IsInf(x, 1) {
		return n - 1
	}
	if math.IsInf(x, -1) {
		return 0
	}
	return clampCell(int(math.Floor((x-origin)/pitch)), n)
}

// spanRect returns the plane region covered by a span's cell regions: the
// bounding rectangle with edge rows/columns extended to infinity.
func (m *shardMap) spanRect(s cellSpan) geom.Rect {
	out := geom.Rect{
		MinX: m.world.MinX + float64(s.c0)*m.cw,
		MinY: m.world.MinY + float64(s.r0)*m.ch,
		MaxX: m.world.MinX + float64(s.c1+1)*m.cw,
		MaxY: m.world.MinY + float64(s.r1+1)*m.ch,
	}
	if s.c0 == 0 {
		out.MinX = math.Inf(-1)
	}
	if s.r0 == 0 {
		out.MinY = math.Inf(-1)
	}
	if s.c1 == m.cols-1 {
		out.MaxX = math.Inf(1)
	}
	if s.r1 == m.rows-1 {
		out.MaxY = math.Inf(1)
	}
	return out
}

// shardGuard pads the acceptance test of the scatter-gather expansion loop:
// an answer computed on the union world of a cell span is accepted only
// when its retrieval footprint, inflated by this guard, still resolves to
// the same span. The pad absorbs the geometry package's Eps-slack
// intersection tests and the boundary-ownership convention, so an object
// grazing a cell boundary can never be consulted by the union execution yet
// live outside it.
const shardGuard = geom.Eps * 1024
