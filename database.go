package connquery

import "context"

// Pin is a released-once handle on a pinned MVCC cut: DB.Snapshot pins one
// version of a single-node database, ShardedDB.Snapshot pins one consistent
// cut across every shard. At returns the QueryOption that routes an Exec to
// the pinned cut.
type Pin interface {
	// Epoch returns the epoch (single-node) or router revision (sharded) the
	// pin holds.
	Epoch() uint64
	// Released reports whether Release has been called.
	Released() bool
	// Release unpins the cut. Idempotent.
	Release()
	// At returns the option pinning a query to this cut.
	At() QueryOption
}

// Database is the query/mutation surface shared by the single-node DB and
// the sharded router (ShardedDB): everything the HTTP service and the
// tooling need. Both implementations answer every request kind with
// identical payloads and identical machine-independent metrics
// (NPE/NOE/|SVG|/Reach) — the sharded differential harness proves the
// bit-for-bit equivalence.
type Database interface {
	Exec(ctx context.Context, req Request, opts ...QueryOption) (*Answer, error)
	Watch(ctx context.Context, req Request, opts ...QueryOption) (<-chan Update, error)
	InsertPoint(p Point) (int32, error)
	DeletePoint(pid int32) bool
	InsertObstacle(r Rect) (int32, error)
	DeleteObstacle(oid int32) bool
	Apply(batch []Mutation) (ApplyResult, error)
	WatchStats() WatchStats
	NumPoints() int
	NumObstacles() int
	Version() uint64
	CacheStats() CacheStats
	PlannerStats() PlannerStats
	Pin() Pin
}

var (
	_ Database = (*DB)(nil)
	_ Database = (*ShardedDB)(nil)
	_ Pin      = (*Snapshot)(nil)
	_ Pin      = (*ShardedSnapshot)(nil)
)

// At returns the QueryOption pinning a query to this snapshot, the
// interface-friendly spelling of AtSnapshot(s).
func (s *Snapshot) At() QueryOption { return AtSnapshot(s) }

// Pin pins the current version and returns it behind the Pin interface; it
// is DB.Snapshot for callers generic over Database.
func (db *DB) Pin() Pin { return db.Snapshot() }
