package connquery

// Validity-horizon tests: the motion-table math, the horizonHolds gate, the
// ValidUntil stamp on executed answers, and the end-to-end Watch behavior —
// a horizon-holding wake skips re-execution (HorizonSkips counts it, nothing
// is delivered) and a single unbounded commit re-arms the subscription.

import (
	"context"
	"math"
	"testing"
	"time"

	"connquery/internal/anscache"
)

func TestRectDist(t *testing.T) {
	r := R(10, 0, 20, 10)
	cases := []struct {
		p Point
		d float64
	}{
		{Pt(15, 5), 0},  // inside
		{Pt(10, 0), 0},  // corner, boundary counts as distance zero
		{Pt(0, 5), 10},  // straight left
		{Pt(25, 5), 5},  // straight right
		{Pt(15, 14), 4}, // straight above
		{Pt(7, -4), 5},  // 3-4-5 corner
		{Pt(23, 14), 5}, // opposite 3-4-5 corner
	}
	for _, c := range cases {
		if got := rectDist(c.p, r); math.Abs(got-c.d) > 1e-12 {
			t.Errorf("rectDist(%v, %v) = %v, want %v", c.p, r, got, c.d)
		}
	}
	if got := rectDist(Pt(3, 3), anscache.InfiniteRect()); got != 0 {
		t.Errorf("rectDist to the infinite rect = %v, want 0", got)
	}
}

func TestMotionHorizonMath(t *testing.T) {
	mt := &motionTable{}
	rg := anscache.Region{Rect: R(10, 0, 20, 10), Points: true}
	if h := mt.horizon(rg, 1); !h.IsZero() {
		t.Fatalf("empty table produced horizon %v", h)
	}
	base := time.Now()

	// One tracked object 10 units left of the rect at 2 u/s: first touch at
	// base+5s, anchored at the declaration time, not at stamping time.
	mt.set(1, motionEntry{pos: Pt(0, 5), speed: 2, at: base})
	want := base.Add(5 * time.Second)
	if h := mt.horizon(rg, 1); !h.Equal(want) {
		t.Fatalf("single-entry horizon %v, want %v", h, want)
	}

	// The nearest-in-time object bounds the answer: 2 units away at 4 u/s
	// touches first.
	mt.set(2, motionEntry{pos: Pt(8, 5), speed: 4, at: base})
	want = base.Add(500 * time.Millisecond)
	if h := mt.horizon(rg, 1); !h.Equal(want) {
		t.Fatalf("min-entry horizon %v, want %v", h, want)
	}

	// An object already inside the rect voids the horizon entirely.
	mt.set(3, motionEntry{pos: Pt(15, 5), speed: 1, at: base})
	if h := mt.horizon(rg, 1); !h.IsZero() {
		t.Fatalf("inside-the-rect entry left horizon %v", h)
	}
	mt.forget(3)
	if h := mt.horizon(rg, 1); !h.Equal(want) {
		t.Fatalf("horizon after forget %v, want %v", h, want)
	}

	// A non-positive declared speed is an unbounded object: no horizon.
	mt.set(4, motionEntry{pos: Pt(0, 50), speed: 0, at: base})
	if h := mt.horizon(rg, 1); !h.IsZero() {
		t.Fatalf("zero-speed entry left horizon %v", h)
	}
	mt.forget(4)

	// Point motion cannot affect a point-insensitive region.
	if h := mt.horizon(anscache.Region{Rect: R(10, 0, 20, 10), Obstacles: true}, 1); !h.IsZero() {
		t.Fatalf("point-insensitive region got horizon %v", h)
	}

	// Crawling speeds clamp at maxHorizon instead of overflowing.
	mt2 := &motionTable{}
	mt2.set(1, motionEntry{pos: Pt(0, 5), speed: 1e-300, at: base})
	if h := mt2.horizon(rg, 1); !h.Equal(base.Add(maxHorizon)) {
		t.Fatalf("near-zero speed horizon %v, want the %v clamp", h, maxHorizon)
	}
}

// TestMotionRegistryEpochGate pins the stamp-consistency rule: commit-path
// edits (applyAt, forgetAt) re-key the registry at the committing epoch, and
// horizon refuses to stamp any answer older than that key — the table could
// hide that an object sat inside the answer's region before the rewrite.
func TestMotionRegistryEpochGate(t *testing.T) {
	rg := anscache.Region{Rect: R(10, 0, 20, 10), Points: true}
	base := time.Now()
	want := base.Add(5 * time.Second)

	mt := &motionTable{}
	mt.applyAt([]motionUpdate{{pid: 1, entry: motionEntry{pos: Pt(0, 5), speed: 2, at: base}}}, 7)
	if h := mt.horizon(rg, 6); !h.IsZero() {
		t.Fatalf("epoch-6 answer stamped %v from a registry rewritten at epoch 7", h)
	}
	if h := mt.horizon(rg, 7); !h.Equal(want) {
		t.Fatalf("epoch-7 answer horizon %v, want %v", h, want)
	}
	// The memo replays, never goes stale: a second stamp of the same region
	// hits it, and the next rewrite drops it.
	if h := mt.horizon(rg, 9); !h.Equal(want) {
		t.Fatalf("memoized horizon %v, want %v", h, want)
	}
	mt.applyAt([]motionUpdate{{pid: 2, entry: motionEntry{pos: Pt(6, 5), speed: 8, at: base}}}, 8)
	if h := mt.horizon(rg, 7); !h.IsZero() {
		t.Fatalf("epoch-7 answer stamped %v after an epoch-8 rewrite", h)
	}
	if h := mt.horizon(rg, 8); !h.Equal(base.Add(500 * time.Millisecond)) {
		t.Fatalf("post-rewrite horizon %v, want %v", h, base.Add(500*time.Millisecond))
	}
	// A sequential-path delete re-keys too.
	mt.forgetAt(2, 9)
	if h := mt.horizon(rg, 8); !h.IsZero() {
		t.Fatalf("epoch-8 answer stamped %v after an epoch-9 deletion", h)
	}
	if h := mt.horizon(rg, 9); !h.Equal(want) {
		t.Fatalf("post-deletion horizon %v, want %v", h, want)
	}
	// Forgetting an untracked object neither edits nor re-keys.
	mt.forgetAt(42, 11)
	if h := mt.horizon(rg, 9); !h.Equal(want) {
		t.Fatalf("no-op forget re-keyed the registry: %v", h)
	}
}

// TestHorizonHoldsGate pins the three-way guard: a horizon must exist, no
// unbounded commit may have published since the answer's epoch, and the wall
// clock must not have reached it.
func TestHorizonHoldsGate(t *testing.T) {
	db, err := Open([]Point{Pt(1, 1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := &Answer{epoch: 5, validUntil: time.Now().Add(time.Hour)}
	db.lastUnbounded.Store(5)
	if !db.horizonHolds(prev) {
		t.Fatal("horizon with a live bound and no later unbounded commit must hold")
	}
	db.lastUnbounded.Store(6)
	if db.horizonHolds(prev) {
		t.Fatal("an unbounded commit after the answer's epoch must void the horizon")
	}
	db.lastUnbounded.Store(3)
	prev.validUntil = time.Now().Add(-time.Second)
	if db.horizonHolds(prev) {
		t.Fatal("an elapsed horizon must not hold")
	}
	prev.validUntil = time.Time{}
	if db.horizonHolds(prev) {
		t.Fatal("the zero time means no horizon")
	}
}

// TestAnswerValidUntil pins the stamp on executed answers: zero with no
// tracked objects, a future instant once a speed-declared object exists far
// from the query, and always zero on the sharded tier (which tracks no
// motion).
func TestAnswerValidUntil(t *testing.T) {
	pts := []Point{Pt(10, 10), Pt(11, 10), Pt(10, 11), Pt(11, 11)}
	req := CONNRequest{Seg: Seg(Pt(10, 10), Pt(11, 11))}
	ctx := context.Background()

	db, err := Open(pts, nil, WithAnswerCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	a, err := db.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !a.ValidUntil().IsZero() {
		t.Fatalf("answer with no tracked motion carries horizon %v", a.ValidUntil())
	}
	if _, err := db.Apply([]Mutation{{Op: MutInsertPoint, P: Pt(95, 95), Speed: 5}}); err != nil {
		t.Fatal(err)
	}
	a, err = db.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if a.ValidUntil().IsZero() || !a.ValidUntil().After(time.Now()) {
		t.Fatalf("far slow tracked object stamped horizon %v", a.ValidUntil())
	}
	if a.ValidUntil().After(time.Now().Add(maxHorizon + time.Hour)) {
		t.Fatalf("horizon %v exceeds the clamp", a.ValidUntil())
	}

	// The cache-hit path stamps a fresh horizon per call too.
	b, err := db.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if b.ValidUntil().IsZero() {
		t.Fatal("cache-hit answer lost its horizon")
	}

	sdb, err := OpenSharded(pts, nil, 4, WithAnswerCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sdb.Apply([]Mutation{{Op: MutInsertPoint, P: Pt(95, 95), Speed: 5}}); err != nil {
		t.Fatal(err)
	}
	sa, err := sdb.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !sa.ValidUntil().IsZero() {
		t.Fatalf("sharded answer carries horizon %v", sa.ValidUntil())
	}
}

// TestWatchHorizonSkip drives the end-to-end skip: a watcher blocked mid-
// delivery while a compliant motion-bounded tick commits wakes into the
// region-shift liveness re-check, sees the epoch advanced but the horizon
// holding, counts a HorizonSkip, and delivers nothing — until a plain
// (unbounded) commit instantly re-arms it.
func TestWatchHorizonSkip(t *testing.T) {
	pts := []Point{Pt(10, 10), Pt(11, 10), Pt(10, 11), Pt(11, 11)}
	db, err := Open(pts, nil, WithAnswerCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Apply([]Mutation{{Op: MutInsertPoint, P: Pt(95, 95), Speed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	farPID := res.Results[0].ID

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := db.Watch(ctx, CONNRequest{Seg: Seg(Pt(10, 10), Pt(11, 11))})
	if err != nil {
		t.Fatal(err)
	}
	u1 := <-ch
	if u1.Err != nil {
		t.Fatal(u1.Err)
	}
	if u1.Answer.ValidUntil().IsZero() || !u1.Answer.ValidUntil().After(time.Now()) {
		t.Fatalf("watched answer with a far tracked object stamped horizon %v", u1.Answer.ValidUntil())
	}

	// Each round: an in-region insert wakes the watcher, which re-executes
	// and blocks on the unbuffered delivery send; a compliant move of the far
	// object then commits a motion-bounded tick behind its back. Receiving
	// the delivery releases the watcher into the liveness re-check, where the
	// held horizon must short-circuit the re-execution. The timing window is
	// generous but scheduling-dependent, hence the retry rounds.
	skipped := false
	for round := 0; round < 10 && !skipped; round++ {
		before := db.WatchStats().HorizonSkips
		if _, err := db.InsertPoint(Pt(10.2+0.05*float64(round), 10.4)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(100 * time.Millisecond)
		mv, err := db.Apply([]Mutation{{Op: MutMovePoint, ID: farPID, P: Pt(95+0.01*float64(round+1), 95)}})
		if err != nil {
			t.Fatal(err)
		}
		if r := mv.Results[0]; r.Err != nil || !r.Deleted {
			t.Fatalf("round %d: compliant move failed: %+v", round, r)
		} else {
			farPID = r.ID
		}
		select {
		case u := <-ch:
			if u.Err != nil {
				t.Fatal(u.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("no delivery for the in-region insert")
		}
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if db.WatchStats().HorizonSkips > before {
				skipped = true
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if !skipped {
		t.Fatal("watcher never skipped re-execution on a horizon-holding wake")
	}

	// The skipped wake is unobservable as a delivery.
	select {
	case u := <-ch:
		t.Fatalf("unexpected delivery at epoch %d after a motion-bounded tick", u.Epoch)
	case <-time.After(50 * time.Millisecond):
	}

	// A plain commit is unbounded: the horizon voids and the watcher delivers
	// at the live epoch.
	if _, err := db.InsertPoint(Pt(10.5, 10.6)); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-ch:
		if u.Err != nil {
			t.Fatal(u.Err)
		}
		if u.Epoch != db.Version() {
			t.Fatalf("re-armed delivery at epoch %d, live version is %d", u.Epoch, db.Version())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no delivery after an unbounded commit")
	}
}

// TestHorizonStampRegistrySkew is the regression test for the horizon-
// stamping race: stampHorizon runs outside db.mu, so a motion tick can
// commit between an answer's snapshot and its stamp, and reading the
// post-tick registry would certify a horizon for an answer the tick may
// already have changed. The race window is reproduced deterministically by
// pinning the pre-tick epoch: executing at the pin after the tick stamps
// from a registry newer than the answer, which must yield no horizon, while
// a live execution at the tick's own epoch keeps its horizon.
func TestHorizonStampRegistrySkew(t *testing.T) {
	pts := []Point{Pt(10, 10), Pt(11, 10), Pt(10, 11), Pt(11, 11)}
	db, err := Open(pts, nil, WithAnswerCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	req := CONNRequest{Seg: Seg(Pt(10, 10), Pt(11, 11))}
	ctx := context.Background()

	res, err := db.Apply([]Mutation{{Op: MutInsertPoint, P: Pt(95, 95), Speed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	pid := res.Results[0].ID
	snap := db.Snapshot()
	defer snap.Release()

	// A compliant move commits a motion-bounded tick that rewrites the
	// registry (the sleep keeps the 0.01-unit displacement within the 5 u/s
	// declaration, as in TestWatchHorizonSkip).
	time.Sleep(50 * time.Millisecond)
	mv, err := db.Apply([]Mutation{{Op: MutMovePoint, ID: pid, P: Pt(95.01, 95)}})
	if err != nil {
		t.Fatal(err)
	}
	if r := mv.Results[0]; r.Err != nil || !r.Deleted {
		t.Fatalf("compliant move failed: %+v", r)
	}

	a, err := db.Exec(ctx, req, AtSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	if !a.ValidUntil().IsZero() {
		t.Fatalf("answer at pre-tick epoch %d stamped horizon %v from the post-tick registry",
			snap.Epoch(), a.ValidUntil())
	}

	b, err := db.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if b.ValidUntil().IsZero() || !b.ValidUntil().After(time.Now()) {
		t.Fatalf("live answer at the tick's epoch lost its horizon: %v", b.ValidUntil())
	}
}
