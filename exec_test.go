package connquery

import (
	"context"
	"errors"
	"testing"
	"time"

	"connquery/internal/bench"
	"connquery/internal/dataset"
)

// TestExecMatchesLegacyShims pins the shim contract: every legacy method
// must produce exactly the Exec answer (it IS an Exec underneath).
func TestExecMatchesLegacyShims(t *testing.T) {
	db := smallDB(t)
	ctx := context.Background()
	q := Seg(Pt(0, 0), Pt(100, 0))

	want, wantM, err := db.CONN(q)
	if err != nil {
		t.Fatal(err)
	}
	got, m, err := Run(ctx, db, CONNRequest{Seg: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("Exec CONN: %d tuples vs legacy %d", len(got.Tuples), len(want.Tuples))
	}
	for i := range got.Tuples {
		if got.Tuples[i] != want.Tuples[i] {
			t.Fatalf("tuple %d: %+v vs %+v", i, got.Tuples[i], want.Tuples[i])
		}
	}
	if m.NPE != wantM.NPE || m.NOE != wantM.NOE || m.SVG != wantM.SVG {
		t.Fatalf("metrics: %+v vs %+v", m, wantM)
	}

	// The deprecated COKNN alias and the paper-spelled COkNN agree.
	a, _, err1 := db.COKNN(q, 2)
	b, _, err2 := db.COkNN(q, 2)
	if err1 != nil || err2 != nil || len(a.Tuples) != len(b.Tuples) {
		t.Fatalf("COKNN alias drifted: %v %v %d vs %d", err1, err2, len(a.Tuples), len(b.Tuples))
	}
}

// TestExecAnswerMetadata checks the Answer envelope: epoch, request echo,
// payload accessors.
func TestExecAnswerMetadata(t *testing.T) {
	db := smallDB(t)
	req := CONNRequest{Seg: Seg(Pt(0, 0), Pt(100, 0))}
	ans, err := db.Exec(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Epoch() != db.Version() {
		t.Fatalf("epoch %d, want %d", ans.Epoch(), db.Version())
	}
	if ans.Request() != Request(req) {
		t.Fatalf("request echo mismatch: %+v", ans.Request())
	}
	if ans.Result() == nil || ans.KResult() != nil || ans.Neighbors() != nil {
		t.Fatalf("payload accessors confused: %+v", ans.Value())
	}
	if _, err := db.Exec(context.Background(), nil); !errors.Is(err, ErrNilRequest) {
		t.Fatalf("nil request: %v", err)
	}
}

// TestExecValidation mirrors the legacy validation behavior through the new
// path.
func TestExecValidation(t *testing.T) {
	db := smallDB(t)
	ctx := context.Background()
	cases := []Request{
		CONNRequest{Seg: Seg(Pt(1, 1), Pt(1, 1))},
		COkNNRequest{Seg: Seg(Pt(0, 0), Pt(1, 0)), K: 0},
		ONNRequest{P: Pt(0, 0), K: 0},
		RangeRequest{Center: Pt(0, 0), Radius: -1},
		EDistanceJoinRequest{Queries: []Point{Pt(0, 0)}, E: -1},
		TrajectoryRequest{Waypoints: []Point{Pt(0, 0)}},
		CONNBatchRequest{Segs: []Segment{Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(2, 2), Pt(2, 2))}},
	}
	for _, req := range cases {
		if _, err := db.Exec(ctx, req); err == nil {
			t.Errorf("%s: invalid request accepted: %+v", req.Kind(), req)
		}
	}
}

// TestWithQueryTuning: a per-call override must apply to that call only and
// leave the handle's defaults untouched, while producing the same answers
// (tuning toggles are result-invariant by construction).
func TestWithQueryTuning(t *testing.T) {
	db := smallDB(t)
	ctx := context.Background()
	q := Seg(Pt(0, 0), Pt(100, 0))
	want, wantM, err := Run(ctx, db, CONNRequest{Seg: q})
	if err != nil {
		t.Fatal(err)
	}
	got, gotM, err := Run(ctx, db, CONNRequest{Seg: q}, WithQueryTuning(Tuning{DisableLemma7: true}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("tuning changed the answer: %d vs %d tuples", len(got.Tuples), len(want.Tuples))
	}
	// Disabling Lemma 7 must evaluate at least as many graph nodes; with
	// this fixture it visibly changes nothing else.
	if gotM.NPE < wantM.NPE {
		t.Fatalf("NPE shrank under a disabled optimization: %d vs %d", gotM.NPE, wantM.NPE)
	}
	// And the next default call is unaffected.
	_, m2, err := Run(ctx, db, CONNRequest{Seg: q})
	if err != nil {
		t.Fatal(err)
	}
	if m2.NPE != wantM.NPE || m2.NOE != wantM.NOE || m2.SVG != wantM.SVG {
		t.Fatalf("per-call tuning leaked into the handle: %+v vs %+v", m2, wantM)
	}
}

// TestSnapshotPinning covers AtSnapshot/AtVersion against live mutations
// and the Release lifecycle.
func TestSnapshotPinning(t *testing.T) {
	db := smallDB(t)
	ctx := context.Background()
	q := Seg(Pt(0, 0), Pt(100, 0))

	snap := db.Snapshot()
	before, _, err := Run(ctx, db, CONNRequest{Seg: q})
	if err != nil {
		t.Fatal(err)
	}

	// Mutate: a new point takes over the middle of q.
	pid, err := db.InsertPoint(Pt(50, 2))
	if err != nil {
		t.Fatal(err)
	}
	after, _, err := Run(ctx, db, CONNRequest{Seg: q})
	if err != nil {
		t.Fatal(err)
	}
	if mid, _ := after.OwnerAt(0.5); mid.PID != pid {
		t.Fatalf("live answer did not change: %+v", after.Tuples)
	}

	// The pinned snapshot still answers pre-mutation, via both options.
	for _, opt := range []QueryOption{AtSnapshot(snap), AtVersion(snap.Epoch())} {
		res, _, err := Run(ctx, db, CONNRequest{Seg: q}, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != len(before.Tuples) {
			t.Fatalf("pinned answer drifted: %d vs %d tuples", len(res.Tuples), len(before.Tuples))
		}
		for i := range res.Tuples {
			if res.Tuples[i] != before.Tuples[i] {
				t.Fatalf("pinned tuple %d: %+v vs %+v", i, res.Tuples[i], before.Tuples[i])
			}
		}
	}

	// AtVersion of the current epoch needs no pin.
	if _, _, err := Run(ctx, db, CONNRequest{Seg: q}, AtVersion(db.Version())); err != nil {
		t.Fatalf("AtVersion(current): %v", err)
	}
	// An unpinned historical epoch fails.
	if _, err := db.Exec(ctx, CONNRequest{Seg: q}, AtVersion(999)); !errors.Is(err, ErrVersionNotPinned) {
		t.Fatalf("unpinned epoch: %v", err)
	}

	// Release: idempotent, and the epoch becomes unreachable.
	ep := snap.Epoch()
	snap.Release()
	snap.Release()
	if !snap.Released() {
		t.Fatal("Released() false after Release")
	}
	if _, err := db.Exec(ctx, CONNRequest{Seg: q}, AtSnapshot(snap)); !errors.Is(err, ErrSnapshotReleased) {
		t.Fatalf("released snapshot: %v", err)
	}
	if _, err := db.Exec(ctx, CONNRequest{Seg: q}, AtVersion(ep)); !errors.Is(err, ErrVersionNotPinned) {
		t.Fatalf("released epoch: %v", err)
	}

	// Two pins on one epoch: the epoch stays alive until the last Release.
	s1, s2 := db.Snapshot(), db.Snapshot()
	if _, err := db.InsertPoint(Pt(1, 99)); err != nil {
		t.Fatal(err)
	}
	s1.Release()
	if _, _, err := Run(ctx, db, CONNRequest{Seg: q}, AtVersion(s2.Epoch())); err != nil {
		t.Fatalf("epoch died with one pin still held: %v", err)
	}
	s2.Release()

	// Foreign snapshots are rejected.
	other := smallDB(t)
	if _, err := other.Exec(ctx, CONNRequest{Seg: q}, AtSnapshot(db.Snapshot())); !errors.Is(err, ErrForeignSnapshot) {
		t.Fatalf("foreign snapshot: %v", err)
	}
}

// TestWithWorkersMatchesSequential: the pooled path of every multi-item
// request must agree exactly with the sequential path.
func TestWithWorkersMatchesSequential(t *testing.T) {
	db, queries := batchFixture(t, 6)
	ctx := context.Background()

	var pts []Point
	for _, q := range queries {
		pts = append(pts, q.A)
	}

	t.Run("EDistanceJoin", func(t *testing.T) {
		seq, _, err := Run(ctx, db, EDistanceJoinRequest{Queries: pts, E: 300})
		if err != nil {
			t.Fatal(err)
		}
		par, _, err := Run(ctx, db, EDistanceJoinRequest{Queries: pts, E: 300}, WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(par) {
			t.Fatalf("pairs: %d vs %d", len(par), len(seq))
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("pair %d: %+v vs %+v", i, par[i], seq[i])
			}
		}
	})

	t.Run("DistanceSemiJoin", func(t *testing.T) {
		seq, _, err := Run(ctx, db, DistanceSemiJoinRequest{Queries: pts})
		if err != nil {
			t.Fatal(err)
		}
		par, _, err := Run(ctx, db, DistanceSemiJoinRequest{Queries: pts}, WithWorkers(3))
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(par) {
			t.Fatalf("pairs: %d vs %d", len(par), len(seq))
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("pair %d: %+v vs %+v", i, par[i], seq[i])
			}
		}
	})

	t.Run("Trajectory", func(t *testing.T) {
		way := []Point{Pt(100, 100), Pt(1200, 150), Pt(1300, 900), Pt(400, 800)}
		seq, _, err := Run(ctx, db, TrajectoryRequest{Waypoints: way})
		if err != nil {
			t.Fatal(err)
		}
		par, _, err := Run(ctx, db, TrajectoryRequest{Waypoints: way}, WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Legs) != len(par.Legs) {
			t.Fatalf("legs: %d vs %d", len(par.Legs), len(seq.Legs))
		}
		for l := range seq.Legs {
			if len(seq.Legs[l].Tuples) != len(par.Legs[l].Tuples) {
				t.Fatalf("leg %d tuples: %d vs %d", l, len(par.Legs[l].Tuples), len(seq.Legs[l].Tuples))
			}
			for i := range seq.Legs[l].Tuples {
				if seq.Legs[l].Tuples[i] != par.Legs[l].Tuples[i] {
					t.Fatalf("leg %d tuple %d differs", l, i)
				}
			}
		}
	})
}

// adversarialDB builds a large workload whose long CONN queries run for
// hundreds of milliseconds — long enough to be cancelled mid-flight.
func adversarialDB(t testing.TB) (*DB, Segment) {
	t.Helper()
	w := bench.BuildWorkload("CL", 0.05, 1, 2009)
	db, err := Open(w.Points, w.Obstacles)
	if err != nil {
		t.Fatal(err)
	}
	// A query spanning a third of the space: the settle loops chew through
	// thousands of graph nodes per evaluated point.
	q := Seg(Pt(dataset.Side*0.3, dataset.Side*0.45), Pt(dataset.Side*0.65, dataset.Side*0.55))
	return db, q
}

// TestExecContextCancellation: cancelling mid-Dijkstra must abort within a
// bounded time and surface exactly ctx.Err(). This is the satellite
// guarantee: a stuck or adversarial query cannot hold a serving goroutine
// hostage.
func TestExecContextCancellation(t *testing.T) {
	db, q := adversarialDB(t)

	// Pre-cancelled context: rejected before any work.
	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := db.Exec(pre, CONNRequest{Seg: q}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx: %v", err)
	}

	// Cancel mid-query. DisableLemma7 makes the candidate scan settle far
	// more of the graph, so the query reliably outlives the cancel point.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type outcome struct {
		err     error
		latency time.Duration
	}
	done := make(chan outcome, 1)
	var cancelAt time.Time
	go func() {
		_, err := db.Exec(ctx, CONNRequest{Seg: q}, WithQueryTuning(Tuning{DisableLemma7: true}))
		done <- outcome{err: err, latency: time.Since(cancelAt)}
	}()
	time.Sleep(20 * time.Millisecond) // let the query get deep into the scan
	cancelAt = time.Now()
	cancel()

	select {
	case out := <-done:
		if !errors.Is(out.err, context.Canceled) {
			t.Fatalf("cancelled query returned %v, want context.Canceled", out.err)
		}
		// Bounded abort: polls run every 64 settled nodes, so even on a
		// slow CI container the unwind is far under a second.
		if out.latency > 2*time.Second {
			t.Fatalf("abort took %v after cancel", out.latency)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled query never returned")
	}

	// A deadline aborts the same way, with DeadlineExceeded.
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer dcancel()
	if _, err := db.Exec(dctx, CONNRequest{Seg: q}, WithQueryTuning(Tuning{DisableLemma7: true})); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline query returned %v, want context.DeadlineExceeded", err)
	}

	// The handle (and its pooled query state) survives aborts: a fresh
	// (short) query on the same handle completes normally.
	short := Seg(q.A, q.At(0.02))
	res, _, err := Run(context.Background(), db, CONNRequest{Seg: short})
	if err != nil || len(res.Tuples) == 0 {
		t.Fatalf("post-abort query: %v %v", res, err)
	}
}

// TestExecBatchCancellation: the pooled batch path propagates cancellation
// from every worker.
func TestExecBatchCancellation(t *testing.T) {
	db, q := adversarialDB(t)
	segs := []Segment{q, q, q, q}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := db.Exec(ctx, CONNBatchRequest{Segs: segs}, WithWorkers(2), WithQueryTuning(Tuning{DisableLemma7: true}))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled batch returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled batch never returned")
	}
}

// TestPinEdgeCases covers the review-hardened corners: AtSnapshot(nil) must
// fail loudly (not silently run live), and the DisableVGReuse+one-tree
// misconfiguration is rejected at Open time.
func TestPinEdgeCases(t *testing.T) {
	db := smallDB(t)
	q := Seg(Pt(0, 0), Pt(100, 0))
	if _, err := db.Exec(context.Background(), CONNRequest{Seg: q}, AtSnapshot(nil)); err == nil {
		t.Fatal("AtSnapshot(nil) silently executed against the live version")
	}
	if _, err := db.Watch(context.Background(), CONNRequest{Seg: q}, AtSnapshot(nil)); !errors.Is(err, ErrPinnedWatch) {
		t.Fatalf("Watch with AtSnapshot(nil): %v", err)
	}
	points := []Point{Pt(1, 1), Pt(2, 2)}
	if _, err := Open(points, nil, WithOneTree(), WithTuning(Tuning{DisableVGReuse: true})); err == nil {
		t.Fatal("Open accepted DisableVGReuse with WithOneTree")
	}
	// The per-call override on a one-tree handle is still rejected per Exec.
	one, err := Open(points, nil, WithOneTree())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := one.Exec(context.Background(), CONNRequest{Seg: q}, WithQueryTuning(Tuning{DisableVGReuse: true})); err == nil {
		t.Fatal("per-call DisableVGReuse accepted on a one-tree handle")
	}
}

// TestItemMetricsMultiItem: every pooled multi-item request exposes
// per-item metrics.
func TestItemMetricsMultiItem(t *testing.T) {
	db, queries := batchFixture(t, 4)
	ctx := context.Background()
	var pts []Point
	for _, q := range queries {
		pts = append(pts, q.A)
	}
	ans, err := db.Exec(ctx, CONNBatchRequest{Segs: queries}, WithWorkers(2))
	if err != nil || len(ans.ItemMetrics()) != len(queries) {
		t.Fatalf("batch items: %d (%v)", len(ans.ItemMetrics()), err)
	}
	ans, err = db.Exec(ctx, TrajectoryRequest{Waypoints: []Point{Pt(0, 0), Pt(100, 0), Pt(100, 100)}}, WithWorkers(2))
	if err != nil || len(ans.ItemMetrics()) != 2 {
		t.Fatalf("trajectory items: %d (%v)", len(ans.ItemMetrics()), err)
	}
	ans, err = db.Exec(ctx, EDistanceJoinRequest{Queries: pts, E: 200}, WithWorkers(2))
	if err != nil || len(ans.ItemMetrics()) != len(pts) {
		t.Fatalf("join items: %d (%v)", len(ans.ItemMetrics()), err)
	}
	ans, err = db.Exec(ctx, DistanceSemiJoinRequest{Queries: pts}, WithWorkers(2))
	if err != nil || len(ans.ItemMetrics()) != len(pts) {
		t.Fatalf("semi-join items: %d (%v)", len(ans.ItemMetrics()), err)
	}
}
