package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"connquery"
)

// handleStream serves POST /v1/stream: a long-lived NDJSON mutation ingest
// that batches the incoming lines into ticks and commits each tick with one
// DB.Apply call — one copy-on-write pass, one WAL fsync group, one published
// epoch, one watcher wake per tick, however many lines arrived inside it.
// This is the server face of the library's batched-commit path; a motion
// feed at thousands of position updates per second costs per-tick, not
// per-update, commit work.
//
// Request body: one JSON mutation per line,
//
//	{"op":"insert-point","p":{"x":1,"y":2},"speed":3}
//	{"op":"move-point","id":17,"p":{"x":4,"y":5}}
//	{"op":"delete-point","id":17}
//	{"op":"insert-obstacle","rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1}}
//	{"op":"delete-obstacle","id":4}
//
// Query parameters: tick_ms sets the batching window (default 25, max
// 10000) — lines arriving within one window commit as one tick; max_batch
// caps the lines per tick (default 256, max 4096) — a full batch commits
// immediately without waiting out the window.
//
// Response: NDJSON, one line per committed tick carrying the published
// epoch and the per-member outcomes in input order. A malformed FIRST line
// is a plain 400 (the stream never starts); a malformed line later is
// reported as an in-stream {"error": ...} line and skipped — the stream
// and the lines around it are unaffected, matching how a failed Apply
// member doesn't abort its batch. An Apply-level failure (unwritable
// handle, latched durable tier) is different: it is fail-stop for every
// later tick too, so the stream emits one final error line and ends
// instead of re-failing per tick. When the client disconnects mid-tick,
// the lines already received still commit: each line was accepted when it
// was read, so it is applied even if the acknowledgment can no longer be
// delivered.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	defer s.track()()

	tickWindow, maxBatch, err := streamParams(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}

	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 4096), maxStreamLineBytes)

	// The first line decides between 400 and a started stream: parse it
	// before committing to a 200 status line. Blank lines don't count.
	var pending []connquery.Mutation
	firstLine := 0
	for sc.Scan() {
		firstLine++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		m, err := decodeStreamLine(sc.Bytes())
		if err != nil {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("stream line %d: %w", firstLine, err))
			return
		}
		pending = append(pending, m)
		break
	}
	if len(pending) == 0 {
		if err := sc.Err(); err != nil {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("stream line %d: %w", firstLine+1, err))
			return
		}
	}

	// The handler interleaves request-body reads with response writes; for
	// HTTP/1.1 the server would otherwise drain the remaining body before
	// the first write. Errors (an already-hijacked connection) are moot —
	// HTTP/2 is always full-duplex.
	_ = http.NewResponseController(w).EnableFullDuplex()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	s.stats.streamsOpen.Add(1)
	defer s.stats.streamsOpen.Add(-1)

	// The scanner blocks in Read, so a goroutine feeds parsed lines to the
	// tick loop. Line numbers are 1-based over the whole request body.
	type lineMsg struct {
		mut  connquery.Mutation
		err  error
		line int
	}
	lines := make(chan lineMsg)
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer close(lines)
		n := firstLine // lines up to here were consumed synchronously above
		for sc.Scan() {
			n++
			if len(bytes.TrimSpace(sc.Bytes())) == 0 {
				continue
			}
			m, err := decodeStreamLine(sc.Bytes())
			select {
			case lines <- lineMsg{mut: m, err: err, line: n}:
			case <-done:
				return
			}
		}
		if err := sc.Err(); err != nil {
			select {
			case lines <- lineMsg{err: fmt.Errorf("read: %w", err), line: n + 1}:
			case <-done:
			}
		}
	}()

	// commit flushes the pending lines as one tick and writes its ack line,
	// reporting whether the ingest may continue. A dead connection doesn't
	// stop the commit (the lines were accepted, only the ack is lost), but a
	// failed Apply does: the handle is unwritable or its durable tier has
	// latched fail-stop, so every further tick would fail identically.
	alive := true
	commit := func() bool {
		if len(pending) == 0 {
			return true
		}
		batch := pending
		pending = nil
		res, err := s.db.Apply(batch)
		if err != nil {
			// Unwritable handle / failed durable append: fail-stop, nothing
			// published. Surface it in-stream and end the ingest.
			s.stats.streamRejected.Add(int64(len(batch)))
			if alive {
				alive = s.writeStreamLine(w, flusher, StreamTick{Error: err.Error()})
			}
			return false
		}
		s.stats.streamTicks.Add(1)
		s.stats.streamLines.Add(int64(len(batch)))
		s.stats.mutations.Add(int64(res.Applied))
		if !alive {
			return true
		}
		tick := StreamTick{Epoch: res.Epoch, Applied: res.Applied,
			Results: make([]StreamResult, len(res.Results))}
		for i, mr := range res.Results {
			sr := StreamResult{ID: mr.ID, Deleted: mr.Deleted}
			if mr.Err != nil {
				sr.Error = mr.Err.Error()
			}
			tick.Results[i] = sr
		}
		alive = s.writeStreamLine(w, flusher, tick)
		return true
	}

	// A max_batch of 1 commits the synchronously-read first line before the
	// loop even starts.
	if len(pending) >= maxBatch {
		if !commit() {
			return
		}
	}

	// The tick timer runs only while a tick is open: it arms when the first
	// line of a tick arrives and fires one commit per window.
	timer := time.NewTimer(tickWindow)
	defer timer.Stop()
	if len(pending) == 0 {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	for {
		select {
		case msg, ok := <-lines:
			if !ok {
				commit() // EOF: flush the open tick
				return
			}
			if msg.err != nil {
				s.stats.streamRejected.Add(1)
				if alive {
					alive = s.writeStreamLine(w, flusher, StreamTick{
						Error: fmt.Sprintf("stream line %d: %v", msg.line, msg.err)})
				}
				continue
			}
			if len(pending) == 0 {
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(tickWindow)
			}
			pending = append(pending, msg.mut)
			if len(pending) >= maxBatch {
				if !commit() {
					return
				}
			}
		case <-timer.C:
			if !commit() {
				return
			}
		case <-s.closed:
			commit() // server shutdown: accepted lines still commit
			return
		}
	}
}

// maxStreamLineBytes bounds one NDJSON mutation line; a single mutation is
// a few hundred bytes, so this is generous while keeping one line from
// buffering the server into the ground. The stream's total length is
// unbounded by design — it is an ingest feed, not a request body.
const maxStreamLineBytes = 1 << 16

// streamParams parses and bounds the tick_ms and max_batch parameters.
func streamParams(r *http.Request) (time.Duration, int, error) {
	tickMS := 25
	if raw := r.URL.Query().Get("tick_ms"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 || v > 10000 {
			return 0, 0, fmt.Errorf("tick_ms must be an integer in [1, 10000], got %q", raw)
		}
		tickMS = v
	}
	maxBatch := 256
	if raw := r.URL.Query().Get("max_batch"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 || v > 4096 {
			return 0, 0, fmt.Errorf("max_batch must be an integer in [1, 4096], got %q", raw)
		}
		maxBatch = v
	}
	return time.Duration(tickMS) * time.Millisecond, maxBatch, nil
}

// decodeStreamLine parses one NDJSON mutation line into the library form.
// Field presence is validated here; value validation (speed domain, dead
// IDs, containment) is Apply's job, so the stream rejects exactly what the
// library rejects.
func decodeStreamLine(b []byte) (connquery.Mutation, error) {
	var line StreamMutation
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&line); err != nil {
		return connquery.Mutation{}, err
	}
	var m connquery.Mutation
	switch line.Op {
	case "insert-point":
		if line.P == nil {
			return m, need("insert-point", "p")
		}
		m = connquery.Mutation{Op: connquery.MutInsertPoint, P: line.P.lib(), Speed: line.Speed}
	case "delete-point":
		if line.ID == nil {
			return m, need("delete-point", "id")
		}
		m = connquery.Mutation{Op: connquery.MutDeletePoint, ID: *line.ID}
	case "insert-obstacle":
		if line.Rect == nil {
			return m, need("insert-obstacle", "rect")
		}
		m = connquery.Mutation{Op: connquery.MutInsertObstacle, R: line.Rect.lib()}
	case "delete-obstacle":
		if line.ID == nil {
			return m, need("delete-obstacle", "id")
		}
		m = connquery.Mutation{Op: connquery.MutDeleteObstacle, ID: *line.ID}
	case "move-point":
		if line.ID == nil {
			return m, need("move-point", "id")
		}
		if line.P == nil {
			return m, need("move-point", "p")
		}
		m = connquery.Mutation{Op: connquery.MutMovePoint, ID: *line.ID, P: line.P.lib(), Speed: line.Speed}
	case "":
		return m, fmt.Errorf("missing op")
	default:
		return m, fmt.Errorf("unknown op %q", line.Op)
	}
	return m, nil
}

// writeStreamLine emits one NDJSON frame; false means the connection is
// dead (the ingest continues — accepted lines still apply, only the acks
// are lost).
func (s *Server) writeStreamLine(w http.ResponseWriter, flusher http.Flusher, v any) bool {
	line, err := json.Marshal(v)
	if err != nil {
		s.logf("stream: marshal: %v", err)
		return false
	}
	if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
		return false
	}
	if flusher != nil {
		flusher.Flush()
	}
	return true
}
