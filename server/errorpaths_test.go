package server_test

// Error-path coverage the happy-path e2e suite does not reach: malformed
// /v1/watch envelopes, request bodies over the size cap (413), double
// release of a server snapshot pin (404 the second time), the no_cache
// envelope option, and the cache counters surfaced by /v1/stats.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"connquery/server"
)

func getStats(t *testing.T, base string) server.StatsResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestWatchMalformedParams covers every way the watch envelope can be
// defective: broken JSON, unknown fields, a missing envelope, an unknown
// kind, missing kind parameters, and pinning options on a watch.
func TestWatchMalformedParams(t *testing.T) {
	_, base := newTestServer(t, testDB(t), server.Config{})

	get := func(raw string) *http.Response {
		t.Helper()
		resp, err := http.Get(base + "/v1/watch?request=" + url.QueryEscape(raw))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	cases := []struct {
		name string
		raw  string
	}{
		{"broken JSON", `{"kind":"CONN"`},
		{"unknown field", `{"kind":"CONN","bogus":1}`},
		{"unknown kind", `{"kind":"NOPE"}`},
		{"missing kind", `{}`},
		{"missing parameter", `{"kind":"CONN"}`},
		{"pinned watch", `{"kind":"CONN","seg":{"a":{"x":0,"y":0},"b":{"x":1,"y":0}},"at_version":1}`},
		{"pinned watch via snapshot", `{"kind":"CONN","seg":{"a":{"x":0,"y":0},"b":{"x":1,"y":0}},"snapshot":7}`},
	}
	for _, tc := range cases {
		resp := get(tc.raw)
		body := struct {
			Error string `json:"error"`
		}{}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: decoding error body: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if body.Error == "" {
			t.Errorf("%s: empty error body", tc.name)
		}
	}

	// No envelope at all: neither a request parameter nor a body.
	resp, err := http.Get(base + "/v1/watch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing envelope: status %d, want 400", resp.StatusCode)
	}
}

// TestOversizedRequestBodies proves the 8 MiB body cap maps to 413 on the
// exec, watch and mutation endpoints rather than buffering the server into
// the ground.
func TestOversizedRequestBodies(t *testing.T) {
	_, base := newTestServer(t, testDB(t), server.Config{})

	// A syntactically valid envelope over the cap: one giant batch request.
	var b bytes.Buffer
	b.WriteString(`{"kind":"CONNBatch","segs":[`)
	seg := `{"a":{"x":1,"y":2},"b":{"x":3,"y":4}},`
	for b.Len() < 9<<20 {
		b.WriteString(seg)
	}
	b.WriteString(`{"a":{"x":1,"y":2},"b":{"x":3,"y":4}}]}`)
	huge := b.Bytes()

	for _, ep := range []string{"/v1/exec", "/v1/watch", "/v1/points", "/v1/obstacles"} {
		resp, err := http.Post(base+ep, "application/json", bytes.NewReader(huge))
		if err != nil {
			t.Fatalf("%s: %v", ep, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413", ep, resp.StatusCode)
		}
	}

	// A body just under the cap still works.
	ok, err := http.Post(base+"/v1/exec", "application/json",
		strings.NewReader(`{"kind":"ONN","p":{"x":0,"y":0},"k":1}`))
	if err != nil {
		t.Fatal(err)
	}
	ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("small body after oversized ones: status %d", ok.StatusCode)
	}
}

// TestSnapshotDoubleDelete pins a version, releases it twice: the first
// DELETE succeeds, the second is 404 — and an exec naming the dropped pin
// is 410 Gone.
func TestSnapshotDoubleDelete(t *testing.T) {
	_, base := newTestServer(t, testDB(t), server.Config{})

	resp, err := http.Post(base+"/v1/snapshots", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var snap server.SnapshotResponse
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	del := func() *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/snapshots/%d", base, snap.ID), nil)
		if err != nil {
			t.Fatal(err)
		}
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		return r
	}
	if r := del(); r.StatusCode != http.StatusOK {
		t.Fatalf("first DELETE: status %d", r.StatusCode)
	}
	if r := del(); r.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE: status %d, want 404", r.StatusCode)
	}

	// The dropped pin is gone for queries too.
	body := fmt.Sprintf(`{"kind":"ONN","p":{"x":0,"y":0},"k":1,"snapshot":%d}`, snap.ID)
	r, err := http.Post(base+"/v1/exec", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusGone {
		t.Fatalf("exec on dropped pin: status %d, want 410", r.StatusCode)
	}
}

// TestStatsExposeCacheCounters drives one request three ways — cold,
// repeated (hit), and with no_cache — and checks the counters /v1/stats
// reports: hits/misses move as the cache serves, no_cache bypasses, and the
// NPE total only grows on real executions.
func TestStatsExposeCacheCounters(t *testing.T) {
	_, base := newTestServer(t, testDB(t), server.Config{})
	exec := func(body string) {
		t.Helper()
		resp, err := http.Post(base+"/v1/exec", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("exec: status %d", resp.StatusCode)
		}
	}
	req := `{"kind":"CONN","seg":{"a":{"x":5,"y":42},"b":{"x":95,"y":42}}}`

	exec(req) // cold: miss + insert
	st := getStats(t, base)
	if st.Cache.Misses == 0 || st.Cache.Entries == 0 {
		t.Fatalf("after cold exec: %+v", st.Cache)
	}
	npeAfterCold := st.NPETotal

	exec(req) // hit
	st = getStats(t, base)
	if st.Cache.Hits == 0 {
		t.Fatalf("repeat exec did not hit: %+v", st.Cache)
	}
	if st.NPETotal != npeAfterCold {
		t.Fatalf("a cache hit must not grow the NPE total: %d -> %d", npeAfterCold, st.NPETotal)
	}

	misses := st.Cache.Misses
	exec(`{"kind":"CONN","seg":{"a":{"x":5,"y":42},"b":{"x":95,"y":42}},"no_cache":true}`)
	st = getStats(t, base)
	if st.Cache.Misses != misses {
		t.Fatalf("no_cache must bypass the cache, not miss through it: %+v", st.Cache)
	}
	if st.NPETotal <= npeAfterCold {
		t.Fatalf("a bypassed exec is a real execution; NPE must grow: %d", st.NPETotal)
	}
	if st.Execs != 3 {
		t.Fatalf("execs = %d, want 3", st.Execs)
	}
}
