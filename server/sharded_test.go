package server_test

// End-to-end tests of the HTTP service over a sharded backend: the same
// handlers serve a *connquery.ShardedDB through the Database interface, and
// every wire answer must be byte-identical both to an in-process sharded
// Exec and to a single-node twin's answer over the same data — the serving
// tier's restatement of the library's sharding contract.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"connquery"
	"connquery/server"
)

// shardedTwin builds a 2x2 ShardedDB and a single-node twin over a world
// with points and obstacles in every quadrant and a straddling obstacle on
// the interior border.
func shardedTwin(t *testing.T) (*connquery.ShardedDB, *connquery.DB) {
	t.Helper()
	points := []connquery.Point{
		connquery.Pt(0, 0), connquery.Pt(100, 100), connquery.Pt(100, 0), connquery.Pt(0, 100),
		connquery.Pt(10, 40), connquery.Pt(90, 40), connquery.Pt(50, 85), connquery.Pt(30, 70),
	}
	obstacles := []connquery.Rect{
		connquery.R(45, 10, 55, 70), // straddles the x=50 border
		connquery.R(20, 60, 30, 68),
	}
	sdb, err := connquery.OpenSharded(points, obstacles, 4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := connquery.Open(points, obstacles)
	if err != nil {
		t.Fatal(err)
	}
	return sdb, db
}

// TestShardedBackendEndToEnd drives border-crossing requests through a
// server backed by a ShardedDB and checks each HTTP answer byte-identical
// to the single-node twin's wire encoding.
func TestShardedBackendEndToEnd(t *testing.T) {
	sdb, twin := shardedTwin(t)
	_, base := newTestServer(t, sdb, server.Config{})

	cases := []server.ExecRequest{
		{Kind: "conn", Seg: seg(10, 40, 90, 40)},
		{Kind: "coknn", Seg: seg(30, 30, 70, 70), K: 2},
		{Kind: "onn", P: pt(49, 40), K: 3},
		{Kind: "distance", A: pt(40, 40), B: pt(60, 40)},
		{Kind: "range", Center: pt(50, 50), Radius: 45},
		{Kind: "closestpair", Queries: []server.Point{{X: 48, Y: 40}, {X: 52, Y: 40}}},
	}
	for _, env := range cases {
		resp, body := postJSON(t, base+"/v1/exec", env)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: HTTP %d: %s", env.Kind, resp.StatusCode, body)
		}
		var got server.ExecResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("%s: %v", env.Kind, err)
		}
		req, err := env.ToRequest()
		if err != nil {
			t.Fatal(err)
		}
		// Bit-identical to the sharded in-process exec...
		assertBitIdentical(t, sdb, req, &got)
		// ...and to the single-node twin over the same data.
		want, err := twin.Exec(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		g, w := canonical(t, &got), canonical(t, server.EncodeAnswer(want))
		if !bytes.Equal(g, w) {
			t.Fatalf("%s: sharded HTTP answer differs from single-node twin\n sharded: %s\n single:  %s", env.Kind, g, w)
		}
	}
}

// TestShardedBackendSnapshotsAndStats exercises the server-held pin
// endpoints over a sharded backend (Pin() yields a consistent cross-shard
// cut) and checks /v1/stats carries the router's shard section.
func TestShardedBackendSnapshotsAndStats(t *testing.T) {
	sdb, twin := shardedTwin(t)
	_, base := newTestServer(t, sdb, server.Config{})

	// Pin the current cut over HTTP.
	resp, body := postJSON(t, base+"/v1/snapshots", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create snapshot: HTTP %d: %s", resp.StatusCode, body)
	}
	var snap server.SnapshotResponse
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}

	// Mutate both twins identically past the pin.
	p := connquery.Pt(49.5, 75)
	if _, err := sdb.InsertPoint(p); err != nil {
		t.Fatal(err)
	}
	if _, err := twin.InsertPoint(p); err != nil {
		t.Fatal(err)
	}

	// A pinned exec answers at the old cut, identical to the twin at the
	// same epoch.
	env := server.ExecRequest{Kind: "onn", P: pt(49, 40), K: 3, Snapshot: &snap.ID}
	resp, body = postJSON(t, base+"/v1/exec", env)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinned exec: HTTP %d: %s", resp.StatusCode, body)
	}
	var got server.ExecResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Epoch != snap.Epoch {
		t.Fatalf("pinned exec answered epoch %d, pin holds %d", got.Epoch, snap.Epoch)
	}
	req, _ := env.ToRequest()
	want, err := twin.Exec(context.Background(), req, connquery.AtVersion(snap.Epoch))
	if err == nil {
		g, w := canonical(t, &got), canonical(t, server.EncodeAnswer(want))
		if !bytes.Equal(g, w) {
			t.Fatalf("pinned sharded answer differs from twin\n sharded: %s\n single:  %s", g, w)
		}
	}

	// Stats must expose the per-shard section with live router counters.
	statsResp, statsBody := postGet(t, base+"/v1/stats")
	if statsResp.StatusCode != http.StatusOK {
		t.Fatalf("stats: HTTP %d", statsResp.StatusCode)
	}
	var stats server.StatsResponse
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Shards == nil {
		t.Fatal("stats over a sharded backend omitted the shards section")
	}
	if stats.Shards.Shards != 4 || len(stats.Shards.PerShard) != 4 {
		t.Fatalf("bad shard stats: %+v", stats.Shards)
	}
	if stats.Shards.RouterExecs == 0 || stats.Shards.ShardExecs == 0 {
		t.Fatalf("router counters did not advance: %+v", stats.Shards)
	}

	// The pin releases cleanly over HTTP.
	delReq, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/snapshots/%d", base, snap.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot delete: HTTP %d", delResp.StatusCode)
	}
}

func postGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}
