package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"connquery"
)

// handleWatch serves GET and POST /v1/watch: it subscribes the decoded
// request to the database's MVCC version chain and streams one WatchUpdate
// per delivered answer — the first at the version current when the watch
// starts, then one whenever a mutation commits (write bursts coalesce;
// epochs are strictly increasing).
//
// The envelope arrives either as the request body or, for GET (curl -G
// --data-urlencode), as the "request" query parameter. Two envelope fields
// are watch-specific: limit closes the stream after that many updates, and
// timeout_ms bounds the total stream lifetime (the server's RequestTimeout
// does not apply — a watch is long-lived by design). Pinning options are
// rejected: a watch follows the live chain by definition.
//
// Framing is NDJSON (application/x-ndjson, one update per line) unless the
// client sends Accept: text/event-stream, which selects SSE ("data: "
// prefixed events). Either way the stream ends when the client disconnects
// (cancelling any in-flight re-execution), the limit or deadline is
// reached, a re-execution fails (one final update carrying error), or the
// server closes.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	env, err := watchEnvelope(w, r)
	if err != nil {
		s.writeErr(w, statusOf(err), err) // 413 for an over-cap body, else 400
		return
	}
	req, err := env.ToRequest()
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	opts, err := env.watchOptions()
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}

	ctx := r.Context()
	if env.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(env.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	updates, err := s.db.Watch(ctx, req, opts...)
	if err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}

	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	s.stats.watchesOpen.Add(1)
	defer s.stats.watchesOpen.Add(-1)

	sent := 0
	for {
		select {
		case u, ok := <-updates:
			if !ok {
				return // ctx cancelled (client gone / deadline) — library closed the stream
			}
			if !s.writeUpdate(w, flusher, sse, u) {
				return
			}
			if u.Err != nil {
				return // errored update is terminal, mirroring DB.Watch
			}
			s.stats.watchUpdates.Add(1)
			if sent++; env.Limit > 0 && sent >= env.Limit {
				return
			}
		case <-s.closed:
			return // server shutdown: release the connection so Shutdown drains
		}
	}
}

// writeUpdate emits one frame; false means the connection is dead.
func (s *Server) writeUpdate(w http.ResponseWriter, flusher http.Flusher, sse bool, u connquery.Update) bool {
	wu := WatchUpdate{Epoch: u.Epoch, Changed: u.Delta.Changed}
	if u.Err != nil {
		wu.Error = u.Err.Error()
	} else {
		wu.Answer = EncodeAnswer(u.Answer)
		if n := len(u.Delta.ChangedSpans); n > 0 {
			wu.ChangedSpans = make([]Span, n)
			for i, sp := range u.Delta.ChangedSpans {
				wu.ChangedSpans[i] = wireSpan(sp)
			}
		}
	}
	line, err := json.Marshal(wu)
	if err != nil {
		s.logf("watch: marshal: %v", err)
		return false
	}
	if sse {
		_, err = fmt.Fprintf(w, "data: %s\n\n", line)
	} else {
		_, err = fmt.Fprintf(w, "%s\n", line)
	}
	if err != nil {
		return false
	}
	if flusher != nil {
		flusher.Flush()
	}
	return true
}

// watchEnvelope extracts the ExecRequest envelope from a watch request:
// the "request" query parameter when present, else the JSON body.
func watchEnvelope(w http.ResponseWriter, r *http.Request) (*ExecRequest, error) {
	var env ExecRequest
	if raw := r.URL.Query().Get("request"); raw != "" {
		dec := json.NewDecoder(strings.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&env); err != nil {
			return nil, fmt.Errorf("request parameter: %w", err)
		}
		return &env, nil
	}
	if r.Body == nil || r.ContentLength == 0 {
		return nil, fmt.Errorf("missing watch request (body or ?request= JSON envelope)")
	}
	if err := decodeBody(w, r, &env); err != nil {
		return nil, err
	}
	return &env, nil
}
