package server

import (
	"context"
	"net/http"

	"connquery"
)

// handleExec serves POST /v1/exec: decode the envelope, build the typed
// Request and its options, execute against one MVCC snapshot, encode the
// Answer. The request context is the HTTP request's — a dropped connection
// cancels the query inside the engine's hot loops — optionally tightened
// by timeout_ms and the server's RequestTimeout cap.
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	defer s.track()()
	var env ExecRequest
	if err := decodeBody(w, r, &env); err != nil {
		s.stats.execErrors.Add(1)
		s.writeErr(w, statusOf(err), err) // 413 for an over-cap body, else 400
		return
	}
	req, err := env.ToRequest()
	if err != nil {
		s.stats.execErrors.Add(1)
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	opts, release, err := s.execOptions(&env)
	if err != nil {
		s.stats.execErrors.Add(1)
		s.writeErr(w, statusOf(err), err)
		return
	}
	defer release()

	ctx := r.Context()
	if t := env.timeout(s.cfg.RequestTimeout); t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	ans, err := s.db.Exec(ctx, req, opts...)
	if err != nil {
		s.stats.execErrors.Add(1)
		if r.Context().Err() != nil {
			// The client is gone; nobody reads an error body.
			return
		}
		s.writeErr(w, statusOf(err), err)
		return
	}
	s.stats.record(req.Kind(), ans.Metrics(), ans.Cached())
	writeJSON(w, http.StatusOK, EncodeAnswer(ans))
}

// execOptions translates the envelope's option fields into QueryOptions.
// When the envelope names a server-held snapshot, its pin is leased for
// the duration of the call: the returned release func (always non-nil)
// ends the lease, and the lease also slides the pin's TTL deadline.
func (s *Server) execOptions(env *ExecRequest) (opts []connquery.QueryOption, release func(), err error) {
	release = func() {}
	if env.Snapshot != nil {
		snap, done, err := s.snaps.lease(*env.Snapshot)
		if err != nil {
			return nil, release, err
		}
		release = done
		opts = append(opts, snap.At())
	} else if env.AtVersion != nil {
		opts = append(opts, connquery.AtVersion(*env.AtVersion))
	}
	if env.Tuning != nil {
		opts = append(opts, connquery.WithQueryTuning(env.Tuning.lib()))
	}
	if env.Workers != nil {
		opts = append(opts, connquery.WithWorkers(*env.Workers))
	}
	if env.NoCache {
		opts = append(opts, connquery.WithNoCache())
	}
	return opts, release, nil
}

// watchOptions is execOptions for a watch: pinning fields are rejected up
// front (Watch would reject them anyway; failing here gives the client a
// clear 400 before the stream starts), tuning and workers pass through.
func (env *ExecRequest) watchOptions() ([]connquery.QueryOption, error) {
	if env.Snapshot != nil || env.AtVersion != nil {
		return nil, connquery.ErrPinnedWatch
	}
	var opts []connquery.QueryOption
	if env.Tuning != nil {
		opts = append(opts, connquery.WithQueryTuning(env.Tuning.lib()))
	}
	if env.Workers != nil {
		opts = append(opts, connquery.WithWorkers(*env.Workers))
	}
	if env.NoCache {
		opts = append(opts, connquery.WithNoCache())
	}
	return opts, nil
}
