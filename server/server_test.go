package server_test

// End-to-end tests: a real HTTP listener (httptest.NewServer wraps a TCP
// socket) in front of server.Handler, exercised for every request kind,
// for watch streams under mutation, and for the snapshot TTL machinery.
// The central invariant: what arrives over the wire is bit-identical —
// payload, machine-independent metrics, epoch — to an in-process Exec
// pinned at the same MVCC epoch, proven by encoding the in-process Answer
// through the exact wire codec the handlers use and comparing bytes (only
// wall-clock CPU fields are zeroed; they cannot reproduce).

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"connquery"
	"connquery/internal/bench"
	"connquery/server"
)

// testDB builds a small deterministic database with obstacles that make
// obstructed and Euclidean answers differ.
func testDB(t *testing.T) *connquery.DB {
	t.Helper()
	points := []connquery.Point{
		connquery.Pt(10, 40), connquery.Pt(90, 40), connquery.Pt(50, 85),
	}
	obstacles := []connquery.Rect{
		connquery.R(45, 10, 55, 70),
		connquery.R(20, 60, 30, 70),
	}
	db, err := connquery.Open(points, obstacles)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// newTestServer wires db behind a real TCP listener and registers cleanup.
func newTestServer(t *testing.T, db connquery.Database, cfg server.Config) (*server.Server, string) {
	t.Helper()
	cfg.DB = db
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Close() // ends watch streams first so ts.Close can drain
		ts.Close()
	})
	return s, ts.URL
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// canonical renders a wire answer with its irreproducible wall-clock CPU
// fields zeroed, for byte comparison.
func canonical(t *testing.T, r *server.ExecResponse) []byte {
	t.Helper()
	cp := *r
	cp.Metrics.CPUNs = 0
	if cp.ItemMetrics != nil {
		items := make([]server.Metrics, len(cp.ItemMetrics))
		copy(items, cp.ItemMetrics)
		for i := range items {
			items[i].CPUNs = 0
		}
		cp.ItemMetrics = items
	}
	out, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// assertBitIdentical runs req in-process pinned at the HTTP answer's epoch
// and compares wire encodings byte for byte.
func assertBitIdentical(t *testing.T, db connquery.Database, req connquery.Request, got *server.ExecResponse, opts ...connquery.QueryOption) {
	t.Helper()
	opts = append(opts, connquery.AtVersion(got.Epoch))
	ans, err := db.Exec(context.Background(), req, opts...)
	if err != nil {
		t.Fatalf("in-process %s at epoch %d: %v", req.Kind(), got.Epoch, err)
	}
	want := server.EncodeAnswer(ans)
	g, w := canonical(t, got), canonical(t, want)
	if !bytes.Equal(g, w) {
		t.Fatalf("%s: HTTP answer differs from in-process Exec at epoch %d\n http: %s\n exec: %s",
			req.Kind(), got.Epoch, g, w)
	}
}

func seg(ax, ay, bx, by float64) *server.Segment {
	return &server.Segment{A: server.Point{X: ax, Y: ay}, B: server.Point{X: bx, Y: by}}
}

func pt(x, y float64) *server.Point { return &server.Point{X: x, Y: y} }

// TestExecAllKinds drives every request kind through POST /v1/exec and
// checks each wire answer bit-identical to the in-process execution.
func TestExecAllKinds(t *testing.T) {
	db := testDB(t)
	_, base := newTestServer(t, db, server.Config{})
	q := seg(0, 0, 100, 0)
	qseg := connquery.Seg(connquery.Pt(0, 0), connquery.Pt(100, 0))
	two := 2
	cases := []struct {
		env ExecEnv
		req connquery.Request
	}{
		{ExecEnv{Kind: "CONN", Seg: q}, connquery.CONNRequest{Seg: qseg}},
		{ExecEnv{Kind: "CNN", Seg: q}, connquery.CNNRequest{Seg: qseg}},
		{ExecEnv{Kind: "COkNN", Seg: q, K: 2}, connquery.COkNNRequest{Seg: qseg, K: 2}},
		{ExecEnv{Kind: "NaiveCONN", Seg: q, Samples: 16}, connquery.NaiveCONNRequest{Seg: qseg, Samples: 16}},
		{ExecEnv{Kind: "ONN", P: pt(0, 0), K: 2}, connquery.ONNRequest{P: connquery.Pt(0, 0), K: 2}},
		{ExecEnv{Kind: "VisibleKNN", P: pt(0, 0), K: 2}, connquery.VisibleKNNRequest{P: connquery.Pt(0, 0), K: 2}},
		{ExecEnv{Kind: "ObstructedRange", Center: pt(0, 0), Radius: 70},
			connquery.RangeRequest{Center: connquery.Pt(0, 0), Radius: 70}},
		{ExecEnv{Kind: "ObstructedDist", A: pt(0, 0), B: pt(60, 40)},
			connquery.DistanceRequest{A: connquery.Pt(0, 0), B: connquery.Pt(60, 40)}},
		{ExecEnv{Kind: "TrajectoryCONN", Waypoints: []server.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 100, Y: 50}}},
			connquery.TrajectoryRequest{Waypoints: []connquery.Point{
				connquery.Pt(0, 0), connquery.Pt(100, 0), connquery.Pt(100, 50)}}},
		{ExecEnv{Kind: "CONNBatch", Segs: []server.Segment{*q, *seg(0, 20, 100, 20)}, Workers: &two},
			connquery.CONNBatchRequest{Segs: []connquery.Segment{
				qseg, connquery.Seg(connquery.Pt(0, 20), connquery.Pt(100, 20))}}},
		{ExecEnv{Kind: "EDistanceJoin", Queries: []server.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, E: 60},
			connquery.EDistanceJoinRequest{Queries: []connquery.Point{
				connquery.Pt(0, 0), connquery.Pt(100, 0)}, E: 60}},
		{ExecEnv{Kind: "DistanceSemiJoin", Queries: []server.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}},
			connquery.DistanceSemiJoinRequest{Queries: []connquery.Point{
				connquery.Pt(0, 0), connquery.Pt(100, 0)}}},
		{ExecEnv{Kind: "ClosestPair", Queries: []server.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}},
			connquery.ClosestPairRequest{Queries: []connquery.Point{
				connquery.Pt(0, 0), connquery.Pt(100, 0)}}},
	}
	for _, tc := range cases {
		t.Run(tc.req.Kind(), func(t *testing.T) {
			resp, body := postJSON(t, base+"/v1/exec", tc.env)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var got server.ExecResponse
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatalf("decode: %v\n%s", err, body)
			}
			if got.Kind != tc.req.Kind() {
				t.Fatalf("kind %q, want %q", got.Kind, tc.req.Kind())
			}
			if got.Epoch != db.Version() {
				t.Fatalf("epoch %d, want current %d", got.Epoch, db.Version())
			}
			var opts []connquery.QueryOption
			if tc.env.Workers != nil {
				opts = append(opts, connquery.WithWorkers(*tc.env.Workers))
			}
			assertBitIdentical(t, db, tc.req, &got, opts...)
		})
	}
}

// ExecEnv mirrors server.ExecRequest for building test payloads (same
// field set; kept separate so the test exercises real JSON decoding).
type ExecEnv = server.ExecRequest

// TestWatchStreamsBitIdenticalUnderMutation opens an HTTP watch, commits
// mutations through the HTTP API while the stream is live, and checks
// every streamed answer bit-identical to an in-process Exec pinned at the
// streamed epoch, with the owner-change delta reported.
func TestWatchStreamsBitIdenticalUnderMutation(t *testing.T) {
	db := testDB(t)
	_, base := newTestServer(t, db, server.Config{})
	qseg := connquery.Seg(connquery.Pt(0, 0), connquery.Pt(100, 0))
	env := ExecEnv{Kind: "CONN", Seg: seg(0, 0, 100, 0)}
	raw, _ := json.Marshal(env)

	req, err := http.NewRequest("GET", base+"/v1/watch?"+url.Values{"request": {string(raw)}}.Encode(), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	next := func() server.WatchUpdate {
		t.Helper()
		if !scanner.Scan() {
			t.Fatalf("watch stream ended early: %v", scanner.Err())
		}
		var u server.WatchUpdate
		if err := json.Unmarshal(scanner.Bytes(), &u); err != nil {
			t.Fatalf("decode update: %v\n%s", err, scanner.Bytes())
		}
		if u.Error != "" {
			t.Fatalf("watch error update: %s", u.Error)
		}
		return u
	}

	u := next()
	if !u.Changed {
		t.Fatal("first update must report Changed")
	}
	assertBitIdentical(t, db, connquery.CONNRequest{Seg: qseg}, u.Answer)
	prevEpoch := u.Epoch

	// Mutations chosen to flip ownership along the watched segment: a new
	// point right under its left half wins a prefix, deleting it flips back.
	var sawDelta bool
	mutations := []func() (*http.Response, []byte){
		func() (*http.Response, []byte) {
			return postJSON(t, base+"/v1/points", map[string]any{"p": map[string]float64{"x": 15, "y": 5}})
		},
		func() (*http.Response, []byte) {
			return postJSON(t, base+"/v1/obstacles", map[string]any{
				"rect": map[string]float64{"min_x": 60, "min_y": 2, "max_x": 70, "max_y": 30}})
		},
		func() (*http.Response, []byte) {
			req, err := http.NewRequest("DELETE", base+"/v1/points/3", nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			return resp, buf.Bytes()
		},
	}
	for i, mutate := range mutations {
		resp, body := mutate()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mutation %d: status %d: %s", i, resp.StatusCode, body)
		}
		var mr server.MutateResponse
		if err := json.Unmarshal(body, &mr); err != nil {
			t.Fatal(err)
		}
		u := next()
		if u.Epoch <= prevEpoch {
			t.Fatalf("epochs not increasing: %d after %d", u.Epoch, prevEpoch)
		}
		if u.Epoch != mr.Epoch || u.Epoch != db.Version() {
			t.Fatalf("update epoch %d, mutation epoch %d, current %d", u.Epoch, mr.Epoch, db.Version())
		}
		if u.Changed && len(u.ChangedSpans) > 0 {
			sawDelta = true
		}
		assertBitIdentical(t, db, connquery.CONNRequest{Seg: qseg}, u.Answer)
		prevEpoch = u.Epoch
	}
	if !sawDelta {
		t.Fatal("no mutation produced an owner-change delta on the watched segment")
	}
}

// TestWatchLimitAndSSE checks the limit field closes the stream and the
// SSE framing variant.
func TestWatchLimitAndSSE(t *testing.T) {
	db := testDB(t)
	_, base := newTestServer(t, db, server.Config{})
	env := ExecEnv{Kind: "CONN", Seg: seg(0, 0, 100, 0), Limit: 1}
	raw, _ := json.Marshal(env)
	req, _ := http.NewRequest("POST", base+"/v1/watch", bytes.NewReader(raw))
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil { // limit:1 → stream must end on its own
		t.Fatal(err)
	}
	body := buf.String()
	if !strings.HasPrefix(body, "data: ") || strings.Count(body, "data: ") != 1 {
		t.Fatalf("want exactly one SSE event, got %q", body)
	}
}

// TestSnapshotEndpoints pins a version over HTTP, mutates past it, and
// checks pinned execs keep answering from the frozen epoch until release.
func TestSnapshotEndpoints(t *testing.T) {
	db := testDB(t)
	_, base := newTestServer(t, db, server.Config{})

	resp, body := postJSON(t, base+"/v1/snapshots", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create snapshot: %d %s", resp.StatusCode, body)
	}
	var snap server.SnapshotResponse
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != db.Version() {
		t.Fatalf("snapshot epoch %d, want %d", snap.Epoch, db.Version())
	}

	if _, err := db.InsertPoint(connquery.Pt(15, 5)); err != nil {
		t.Fatal(err)
	}
	if db.Version() == snap.Epoch {
		t.Fatal("mutation did not advance the epoch")
	}

	qseg := connquery.Seg(connquery.Pt(0, 0), connquery.Pt(100, 0))
	env := ExecEnv{Kind: "CONN", Seg: seg(0, 0, 100, 0), Snapshot: &snap.ID}
	resp, body = postJSON(t, base+"/v1/exec", env)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinned exec: %d %s", resp.StatusCode, body)
	}
	var got server.ExecResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Epoch != snap.Epoch {
		t.Fatalf("pinned exec epoch %d, want pinned %d", got.Epoch, snap.Epoch)
	}
	assertBitIdentical(t, db, connquery.CONNRequest{Seg: qseg}, &got)

	// Listing shows the pin; releasing it kills pinned execs with 410.
	resp, body = func() (*http.Response, []byte) {
		r, err := http.Get(base + "/v1/snapshots")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		return r, buf.Bytes()
	}()
	var listed []server.SnapshotResponse
	if err := json.Unmarshal(body, &listed); err != nil {
		t.Fatal(err)
	}
	if len(listed) != 1 || listed[0].ID != snap.ID {
		t.Fatalf("snapshot list %s, want the one pin", body)
	}

	delReq, _ := http.NewRequest("DELETE", fmt.Sprintf("%s/v1/snapshots/%d", base, snap.ID), nil)
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("release: %d", delResp.StatusCode)
	}
	resp, body = postJSON(t, base+"/v1/exec", env)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("exec after release: status %d (%s), want 410", resp.StatusCode, body)
	}
}

// TestSnapshotTTLExpiry checks the janitor releases abandoned pins.
func TestSnapshotTTLExpiry(t *testing.T) {
	db := testDB(t)
	_, base := newTestServer(t, db, server.Config{SnapshotTTL: 30 * time.Millisecond})
	_, body := postJSON(t, base+"/v1/snapshots", struct{}{})
	var snap server.SnapshotResponse
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	// Poll the (non-touching) list endpoint: every *use* of a pin slides its
	// TTL deadline, so an exec poll would keep it alive forever by design.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(base + "/v1/snapshots")
		if err != nil {
			t.Fatal(err)
		}
		var listed []server.SnapshotResponse
		if err := json.NewDecoder(r.Body).Decode(&listed); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if len(listed) == 0 {
			break // janitor reclaimed the abandoned pin
		}
		if time.Now().After(deadline) {
			t.Fatalf("pin still alive long after TTL: %+v", listed)
		}
		time.Sleep(20 * time.Millisecond)
	}
	env := ExecEnv{Kind: "CONN", Seg: seg(0, 0, 100, 0), Snapshot: &snap.ID}
	resp, body := postJSON(t, base+"/v1/exec", env)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("exec on expired pin: status %d (%s), want 410", resp.StatusCode, body)
	}
}

// TestExecErrors checks the error → status mapping.
func TestExecErrors(t *testing.T) {
	db := testDB(t)
	_, base := newTestServer(t, db, server.Config{})
	bad := uint64(999)
	cases := []struct {
		name string
		body any
		want int
	}{
		{"unknown kind", ExecEnv{Kind: "Nope"}, http.StatusBadRequest},
		{"missing field", ExecEnv{Kind: "CONN"}, http.StatusBadRequest},
		{"degenerate segment", ExecEnv{Kind: "CONN", Seg: seg(5, 5, 5, 5)}, http.StatusBadRequest},
		{"bad k", ExecEnv{Kind: "COkNN", Seg: seg(0, 0, 100, 0), K: 0}, http.StatusBadRequest},
		{"unpinned version", ExecEnv{Kind: "CONN", Seg: seg(0, 0, 100, 0), AtVersion: &bad}, http.StatusGone},
		{"unknown snapshot", ExecEnv{Kind: "CONN", Seg: seg(0, 0, 100, 0), Snapshot: &bad}, http.StatusGone},
		{"unknown envelope field", map[string]any{"kind": "CONN", "sge": 1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, base+"/v1/exec", tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d (%s), want %d", resp.StatusCode, body, tc.want)
			}
			var er server.ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				t.Fatalf("error envelope missing: %s", body)
			}
		})
	}
}

// TestExecTimeout checks a tight timeout_ms aborts a heavy query with 504.
func TestExecTimeout(t *testing.T) {
	w := bench.BuildWorkload("CL", 0.02, 1, 2009)
	db, err := connquery.Open(w.Points, w.Obstacles)
	if err != nil {
		t.Fatal(err)
	}
	_, base := newTestServer(t, db, server.Config{})
	env := ExecEnv{Kind: "COkNN", Seg: seg(100, 100, 9900, 9900), K: 16, TimeoutMS: 1}
	resp, body := postJSON(t, base+"/v1/exec", env)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
}

// TestStatsEndpoint checks the counters move.
func TestStatsEndpoint(t *testing.T) {
	db := testDB(t)
	_, base := newTestServer(t, db, server.Config{})
	postJSON(t, base+"/v1/exec", ExecEnv{Kind: "CONN", Seg: seg(0, 0, 100, 0)})
	postJSON(t, base+"/v1/exec", ExecEnv{Kind: "CONN"}) // error
	postJSON(t, base+"/v1/points", map[string]any{"p": map[string]float64{"x": 1, "y": 1}})

	r, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var st server.StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Execs != 1 || st.ExecErrors != 1 || st.Mutations != 1 {
		t.Fatalf("counters: %+v", st)
	}
	if st.ExecsByKind["CONN"] != 1 {
		t.Fatalf("by-kind: %+v", st.ExecsByKind)
	}
	if st.Points != 4 || st.Obstacles != 2 || st.Epoch != db.Version() {
		t.Fatalf("shape: %+v", st)
	}
	if st.NPETotal == 0 || st.SVGPeak == 0 {
		t.Fatalf("paper metrics not surfaced: %+v", st)
	}
}

// TestCloseEndsWatchStreams checks Server.Close terminates live streams so
// a surrounding http.Server.Shutdown can complete.
func TestCloseEndsWatchStreams(t *testing.T) {
	db := testDB(t)
	s, base := newTestServer(t, db, server.Config{})
	env := ExecEnv{Kind: "CONN", Seg: seg(0, 0, 100, 0)}
	raw, _ := json.Marshal(env)
	resp, err := http.Post(base+"/v1/watch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil { // first update arrived; stream is live
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	if _, err := br.ReadBytes('\n'); err == nil {
		t.Fatal("stream still delivering after Close")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}
}
