package server_test

// End-to-end tests for POST /v1/stream: the NDJSON mutation ingest that
// batches incoming lines into ticks, each tick one DB.Apply commit — one
// published epoch however many lines it carried. Tick boundaries are forced
// deterministically with max_batch (never with wall-clock timing), epochs
// are checked against the library's one-epoch-per-tick contract, malformed
// lines must surface in-stream without ending the ingest, and a client that
// disconnects mid-tick must still get its accepted lines committed.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"connquery"
	"connquery/server"
)

// postStream sends body to POST /v1/stream with the given query string and
// decodes every NDJSON response line.
func postStream(t *testing.T, base, query, body string) (*http.Response, []server.StreamTick) {
	t.Helper()
	resp, err := http.Post(base+"/v1/stream"+query, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ticks []server.StreamTick
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var tk server.StreamTick
		if err := json.Unmarshal(sc.Bytes(), &tk); err != nil {
			t.Fatalf("bad stream response line %q: %v", sc.Text(), err)
		}
		ticks = append(ticks, tk)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, ticks
}

// insLine renders one insert-point NDJSON line.
func insLine(x, y float64) string {
	return fmt.Sprintf(`{"op":"insert-point","p":{"x":%g,"y":%g}}`, x, y)
}

// TestStreamTickBatchingAndEpochs drives ten inserts through max_batch=4
// (the tick window is far too long to fire): the ingest must commit exactly
// three ticks of 4, 4, and 2 lines — per-tick epochs advancing by exactly
// the tick's applied count from the pre-stream version, the final epoch
// being the database's live version, and every line acked with its assigned
// PID in input order.
func TestStreamTickBatchingAndEpochs(t *testing.T) {
	db := testDB(t)
	_, base := newTestServer(t, db, server.Config{})
	v0 := db.Version()
	n0 := db.NumPoints()

	var lines []string
	for i := 0; i < 10; i++ {
		lines = append(lines, insLine(60+float64(i), 5))
	}
	resp, ticks := postStream(t, base, "?tick_ms=10000&max_batch=4", strings.Join(lines, "\n")+"\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3: %+v", len(ticks), ticks)
	}
	wantSizes := []int{4, 4, 2}
	epoch := v0
	seen := 0
	for i, tk := range ticks {
		if tk.Error != "" {
			t.Fatalf("tick %d carries error %q", i, tk.Error)
		}
		if tk.Applied != wantSizes[i] || len(tk.Results) != wantSizes[i] {
			t.Fatalf("tick %d applied %d with %d results, want %d", i, tk.Applied, len(tk.Results), wantSizes[i])
		}
		epoch += uint64(tk.Applied)
		if tk.Epoch != epoch {
			t.Fatalf("tick %d published epoch %d, want %d (one epoch per tick, intermediates unpublished)", i, tk.Epoch, epoch)
		}
		for j, r := range tk.Results {
			if r.Error != "" {
				t.Fatalf("tick %d line %d failed: %s", i, j, r.Error)
			}
			if r.ID < 0 {
				t.Fatalf("tick %d line %d got no PID", i, j)
			}
			seen++
		}
	}
	if got := db.Version(); got != epoch {
		t.Fatalf("live version %d, want the last tick's epoch %d", got, epoch)
	}
	if got := db.NumPoints(); got != n0+10 {
		t.Fatalf("NumPoints %d, want %d", got, n0+10)
	}
	if seen != 10 {
		t.Fatalf("acked %d lines, want 10", seen)
	}
}

// TestStreamMalformedFirstLine pins the 400 contract: a stream whose first
// line does not parse never starts (plain error response, no ticks, no
// mutations), covering bad JSON, an unknown op, and a missing required
// field.
func TestStreamMalformedFirstLine(t *testing.T) {
	db := testDB(t)
	_, base := newTestServer(t, db, server.Config{})
	v0 := db.Version()

	for _, body := range []string{
		"not json at all\n",
		`{"op":"explode"}` + "\n",
		`{"op":"insert-point"}` + "\n",                             // requires p
		`{"op":"insert-point","p":{"x":1,"y":2},"bogus":3}` + "\n", // unknown field
	} {
		resp, err := http.Post(base+"/v1/stream", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400 (%s)", body, resp.StatusCode, raw)
		}
		var e server.ErrorResponse
		if err := json.Unmarshal(raw, &e); err != nil || !strings.Contains(e.Error, "stream line 1") {
			t.Fatalf("body %q: error envelope %q does not name stream line 1", body, raw)
		}
	}
	if db.Version() != v0 {
		t.Fatalf("rejected streams mutated the database: %d -> %d", v0, db.Version())
	}
}

// TestStreamMalformedMidStream feeds good and bad lines through max_batch=1
// so every good line is its own tick: the two bad lines must come back as
// in-stream error lines naming their 1-based line numbers, the good lines
// on either side of them must commit, and the stream counters must report
// the split.
func TestStreamMalformedMidStream(t *testing.T) {
	db := testDB(t)
	_, base := newTestServer(t, db, server.Config{})
	n0 := db.NumPoints()

	body := strings.Join([]string{
		insLine(61, 5),
		`{"op":"insert-point"}`, // missing p
		`}garbage{`,
		insLine(62, 5),
	}, "\n") + "\n"
	resp, ticks := postStream(t, base, "?tick_ms=10000&max_batch=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if len(ticks) != 4 {
		t.Fatalf("got %d response lines, want 4: %+v", len(ticks), ticks)
	}
	if ticks[0].Error != "" || ticks[0].Applied != 1 {
		t.Fatalf("first good line did not commit: %+v", ticks[0])
	}
	if !strings.Contains(ticks[1].Error, "stream line 2") {
		t.Fatalf("second response line %+v does not report stream line 2", ticks[1])
	}
	if !strings.Contains(ticks[2].Error, "stream line 3") {
		t.Fatalf("third response line %+v does not report stream line 3", ticks[2])
	}
	if ticks[3].Error != "" || ticks[3].Applied != 1 {
		t.Fatalf("good line after the malformed ones did not commit: %+v", ticks[3])
	}
	if got := db.NumPoints(); got != n0+2 {
		t.Fatalf("NumPoints %d, want %d", got, n0+2)
	}

	stats := getStats(t, base)
	if stats.Stream.Ticks != 2 || stats.Stream.Lines != 2 || stats.Stream.Rejected != 2 {
		t.Fatalf("stream stats %+v, want 2 ticks / 2 lines / 2 rejected", stats.Stream)
	}
	if stats.Stream.Open != 0 {
		t.Fatalf("stream still counted open: %+v", stats.Stream)
	}
}

// TestStreamAllOpsAndMemberFailure drives every op through one stream —
// insert with a declared speed, move (fresh PID, delete half acked), both
// obstacle ops, plain delete — plus an in-tick member failure (deleting a
// dead PID), which must ack with an error while the rest of its tick
// commits, exactly like DB.Apply.
func TestStreamAllOpsAndMemberFailure(t *testing.T) {
	db := testDB(t)
	_, base := newTestServer(t, db, server.Config{})

	// Tick 1: a tracked insert and an obstacle, committed together.
	_, ticks := postStream(t, base, "?tick_ms=10000&max_batch=2", strings.Join([]string{
		`{"op":"insert-point","p":{"x":70,"y":5},"speed":3}`,
		`{"op":"insert-obstacle","rect":{"min_x":60,"min_y":20,"max_x":62,"max_y":22}}`,
	}, "\n")+"\n")
	if len(ticks) != 1 || ticks[0].Applied != 2 {
		t.Fatalf("setup tick: %+v", ticks)
	}
	pid, oid := ticks[0].Results[0].ID, ticks[0].Results[1].ID

	// Tick 2: move the tracked point, delete the obstacle, fail a member on
	// a dead PID — three lines, one commit, the failure contained.
	_, ticks = postStream(t, base, "?tick_ms=10000&max_batch=3", strings.Join([]string{
		fmt.Sprintf(`{"op":"move-point","id":%d,"p":{"x":71,"y":6}}`, pid),
		fmt.Sprintf(`{"op":"delete-obstacle","id":%d}`, oid),
		`{"op":"delete-point","id":9999}`,
	}, "\n")+"\n")
	if len(ticks) != 1 {
		t.Fatalf("got %d ticks, want 1: %+v", len(ticks), ticks)
	}
	tk := ticks[0]
	// The move contributes two primitives, the obstacle delete one; the dead
	// delete contributes nothing but still gets its result slot.
	if tk.Applied != 3 || len(tk.Results) != 3 {
		t.Fatalf("mixed tick applied %d with %d results, want 3 and 3: %+v", tk.Applied, len(tk.Results), tk)
	}
	mv := tk.Results[0]
	if mv.Error != "" || !mv.Deleted || mv.ID == pid {
		t.Fatalf("move result %+v: want deleted=true and a fresh PID (old %d)", mv, pid)
	}
	if del := tk.Results[1]; del.Error != "" || !del.Deleted {
		t.Fatalf("obstacle delete result %+v", del)
	}
	if dead := tk.Results[2]; dead.Error == "" || dead.Deleted {
		t.Fatalf("dead-PID delete result %+v: want a contained member error", dead)
	}
	if tk.Epoch != db.Version() {
		t.Fatalf("tick epoch %d, live version %d", tk.Epoch, db.Version())
	}

	// Tick 3: delete the moved point by its fresh PID.
	_, ticks = postStream(t, base, "?tick_ms=10000&max_batch=1",
		fmt.Sprintf(`{"op":"delete-point","id":%d}`, mv.ID)+"\n")
	if len(ticks) != 1 || !ticks[0].Results[0].Deleted {
		t.Fatalf("delete by fresh PID: %+v", ticks)
	}
}

// TestStreamShardedBackend runs the ingest against a sharded database: the
// stream surface is backend-agnostic (ShardedDB.Apply commits members
// sequentially, so per-tick epochs advance by the applied count there too).
func TestStreamShardedBackend(t *testing.T) {
	sdb, err := connquery.OpenSharded(
		[]connquery.Point{connquery.Pt(10, 40), connquery.Pt(90, 40)},
		[]connquery.Rect{connquery.R(45, 10, 55, 70)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, base := newTestServer(t, sdb, server.Config{})
	v0 := sdb.Version()

	var lines []string
	for i := 0; i < 6; i++ {
		lines = append(lines, insLine(5+float64(i*15), 80))
	}
	_, ticks := postStream(t, base, "?tick_ms=10000&max_batch=3", strings.Join(lines, "\n")+"\n")
	if len(ticks) != 2 {
		t.Fatalf("got %d ticks, want 2: %+v", len(ticks), ticks)
	}
	epoch := v0
	for i, tk := range ticks {
		if tk.Error != "" || tk.Applied != 3 {
			t.Fatalf("sharded tick %d: %+v", i, tk)
		}
		epoch += 3
		if tk.Epoch != epoch {
			t.Fatalf("sharded tick %d epoch %d, want %d", i, tk.Epoch, epoch)
		}
	}
	if sdb.NumPoints() != 8 {
		t.Fatalf("sharded NumPoints %d, want 8", sdb.NumPoints())
	}
}

// TestStreamDisconnectMidTick opens a raw chunked-encoding connection,
// sends two lines into a wide-open tick window, and drops the connection
// without terminating the body: the lines were accepted when read, so the
// server must commit them anyway.
func TestStreamDisconnectMidTick(t *testing.T) {
	db := testDB(t)
	_, base := newTestServer(t, db, server.Config{})
	n0 := db.NumPoints()

	u, err := url.Parse(base)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatal(err)
	}
	chunk := func(s string) string { return fmt.Sprintf("%x\r\n%s\r\n", len(s), s) }
	_, err = io.WriteString(conn,
		"POST /v1/stream?tick_ms=10000 HTTP/1.1\r\n"+
			"Host: "+u.Host+"\r\n"+
			"Content-Type: application/x-ndjson\r\n"+
			"Transfer-Encoding: chunked\r\n"+
			"\r\n"+
			chunk(insLine(63, 5)+"\n")+
			chunk(insLine(64, 5)+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	// Half-close: FIN after the data, never the terminal chunk. The server's
	// chunked reader consumes both lines and then fails with an unexpected
	// EOF — the client is gone mid-tick, and the accepted lines must commit.
	// (A full Close could RST the buffered response out from under the
	// not-yet-read lines; CloseWrite delivers them reliably.)
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for db.NumPoints() != n0+2 {
		if time.Now().After(deadline) {
			t.Fatalf("lines accepted before the disconnect were not committed: NumPoints %d, want %d",
				db.NumPoints(), n0+2)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if db.NumPoints() != n0+2 {
		t.Fatalf("NumPoints %d, want %d", db.NumPoints(), n0+2)
	}
}

// TestStreamWithConcurrentWatchers runs the ingest while two watch streams
// (one whose region the inserts hit, one far away) are live: the in-region
// watcher must observe a committed tick's epoch, and the whole arrangement
// runs under -race in CI. The far watcher exercises the wake filter and the
// /v1/stats watch counters concurrently with stream commits.
func TestStreamWithConcurrentWatchers(t *testing.T) {
	db := testDB(t)
	_, base := newTestServer(t, db, server.Config{})

	openWatch := func(envSeg *server.Segment) (*bufio.Scanner, func()) {
		t.Helper()
		raw, _ := json.Marshal(ExecEnv{Kind: "CONN", Seg: envSeg})
		req, err := http.NewRequest("GET", base+"/v1/watch?"+url.Values{"request": {string(raw)}}.Encode(), nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("watch status %d", resp.StatusCode)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		return sc, func() { resp.Body.Close() }
	}
	next := func(sc *bufio.Scanner) server.WatchUpdate {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("watch stream ended early: %v", sc.Err())
		}
		var u server.WatchUpdate
		if err := json.Unmarshal(sc.Bytes(), &u); err != nil {
			t.Fatal(err)
		}
		if u.Error != "" {
			t.Fatalf("watch error: %s", u.Error)
		}
		return u
	}

	nearSC, nearClose := openWatch(seg(0, 0, 100, 0)) // inserts at y=5 influence this
	defer nearClose()
	farSC, farClose := openWatch(seg(0, 95, 5, 95)) // nothing near it changes
	defer farClose()
	next(nearSC) // initial deliveries: both streams are live
	next(farSC)

	var lines []string
	for i := 0; i < 8; i++ {
		lines = append(lines, insLine(20+float64(i*8), 5))
	}
	_, ticks := postStream(t, base, "?tick_ms=10000&max_batch=8", strings.Join(lines, "\n")+"\n")
	if len(ticks) != 1 || ticks[0].Applied != 8 {
		t.Fatalf("ingest under watchers: %+v", ticks)
	}

	// The near watcher sees the tick (write bursts coalesce, so any update
	// at or past the tick's epoch proves delivery ordering held).
	u := next(nearSC)
	if u.Epoch < ticks[0].Epoch {
		t.Fatalf("near watcher delivered epoch %d, tick published %d", u.Epoch, ticks[0].Epoch)
	}

	stats := getStats(t, base)
	if stats.Watch.Woken == 0 {
		t.Fatalf("watch counters not surfaced: %+v", stats.Watch)
	}
	if stats.Stream.Ticks == 0 || stats.Stream.Lines != 8 {
		t.Fatalf("stream counters %+v, want 8 lines", stats.Stream)
	}
}

// TestStreamApplyFailureEndsIngest pins the fail-stop contract for
// Apply-level errors (as opposed to per-member or per-line failures): once
// the handle's durable tier refuses writes, every later tick would fail the
// same way, so the stream must emit exactly one terminal error line and end
// — not one error line per tick window for the rest of the feed.
func TestStreamApplyFailureEndsIngest(t *testing.T) {
	db, err := connquery.OpenDurable(t.TempDir(),
		connquery.WithBootstrapData([]connquery.Point{connquery.Pt(10, 40)}, nil))
	if err != nil {
		t.Fatal(err)
	}
	_, base := newTestServer(t, db, server.Config{})

	u, err := url.Parse(base)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	chunk := func(s string) string { return fmt.Sprintf("%x\r\n%s\r\n", len(s), s) }
	_, err = io.WriteString(conn,
		"POST /v1/stream?tick_ms=10000&max_batch=1 HTTP/1.1\r\n"+
			"Host: "+u.Host+"\r\n"+
			"Content-Type: application/x-ndjson\r\n"+
			"Transfer-Encoding: chunked\r\n"+
			"\r\n"+
			chunk(insLine(63, 5)+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no ack for the first tick: %v", sc.Err())
	}
	var first server.StreamTick
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if first.Error != "" || first.Applied != 1 {
		t.Fatalf("first tick did not commit: %+v", first)
	}

	// Latch the handle under the live stream, then feed two more lines. The
	// first fails its Apply and must end the ingest; the second must never
	// produce a response line.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(conn,
		chunk(insLine(64, 5)+"\n")+chunk(insLine(65, 5)+"\n")+"0\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	var tail []server.StreamTick
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var tk server.StreamTick
		if err := json.Unmarshal(sc.Bytes(), &tk); err != nil {
			t.Fatalf("bad stream response line %q: %v", sc.Text(), err)
		}
		tail = append(tail, tk)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || tail[0].Error == "" {
		t.Fatalf("want exactly one terminal error line after the handle latched, got %+v", tail)
	}
}
