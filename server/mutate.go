package server

import (
	"fmt"
	"net/http"
	"strconv"
)

// Mutation endpoints. Each call serializes through the library's MVCC
// writer: it publishes a new immutable version, wakes every watch, and
// returns the epoch observed right after the commit. Object IDs are never
// reused, so a PID/OID stays valid across any later mutations.

// insertPointBody is the body of POST /v1/points.
type insertPointBody struct {
	P Point `json:"p"`
}

// insertObstacleBody is the body of POST /v1/obstacles.
type insertObstacleBody struct {
	Rect Rect `json:"rect"`
}

// handleInsertPoint serves POST /v1/points.
func (s *Server) handleInsertPoint(w http.ResponseWriter, r *http.Request) {
	defer s.track()()
	var body insertPointBody
	if err := decodeBody(w, r, &body); err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	pid, err := s.db.InsertPoint(body.P.lib())
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.stats.mutations.Add(1)
	writeJSON(w, http.StatusOK, MutateResponse{PID: &pid, Epoch: s.db.Version()})
}

// handleInsertObstacle serves POST /v1/obstacles.
func (s *Server) handleInsertObstacle(w http.ResponseWriter, r *http.Request) {
	defer s.track()()
	var body insertObstacleBody
	if err := decodeBody(w, r, &body); err != nil {
		s.writeErr(w, statusOf(err), err)
		return
	}
	oid, err := s.db.InsertObstacle(body.Rect.lib())
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.stats.mutations.Add(1)
	writeJSON(w, http.StatusOK, MutateResponse{OID: &oid, Epoch: s.db.Version()})
}

// pathID parses the {id} path segment as an object ID.
func pathID(r *http.Request) (int32, error) {
	raw := r.PathValue("id")
	id, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad id %q: %w", raw, err)
	}
	return int32(id), nil
}

// handleDeletePoint serves DELETE /v1/points/{id}. Deleting an unknown or
// already-deleted PID is 404; the body reports deleted: false.
func (s *Server) handleDeletePoint(w http.ResponseWriter, r *http.Request) {
	defer s.track()()
	pid, err := pathID(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	deleted := s.db.DeletePoint(pid)
	status := http.StatusOK
	if deleted {
		s.stats.mutations.Add(1)
	} else {
		status = http.StatusNotFound
	}
	writeJSON(w, status, MutateResponse{Deleted: &deleted, Epoch: s.db.Version()})
}

// handleDeleteObstacle serves DELETE /v1/obstacles/{id}.
func (s *Server) handleDeleteObstacle(w http.ResponseWriter, r *http.Request) {
	defer s.track()()
	oid, err := pathID(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	deleted := s.db.DeleteObstacle(oid)
	status := http.StatusOK
	if deleted {
		s.stats.mutations.Add(1)
	} else {
		status = http.StatusNotFound
	}
	writeJSON(w, status, MutateResponse{Deleted: &deleted, Epoch: s.db.Version()})
}
