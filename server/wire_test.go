package server

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"connquery"
)

// TestFloatInfRoundTrip: the one non-finite value the engine produces must
// survive JSON in both directions.
func TestFloatInfRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, math.Inf(1), math.Inf(-1), 0.1 + 0.2} {
		b, err := json.Marshal(Float(v))
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Float
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if float64(back) != v {
			t.Fatalf("round trip %v -> %s -> %v", v, b, float64(back))
		}
	}
}

// TestDistanceInfOverWire: an unreachable pair's +Inf distance encodes and
// decodes through the full answer envelope.
func TestDistanceInfOverWire(t *testing.T) {
	// A point sealed in a box of overlapping obstacles is unreachable from
	// outside (overlap matters: boundary travel through touching corners is
	// legal in the paper's model).
	db, err := connquery.Open(
		[]connquery.Point{connquery.Pt(50, 50)},
		[]connquery.Rect{
			connquery.R(40, 40, 60, 43), connquery.R(40, 57, 60, 60),
			connquery.R(40, 40, 43, 60), connquery.R(57, 40, 60, 60),
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := db.Exec(context.Background(),
		connquery.DistanceRequest{A: connquery.Pt(0, 0), B: connquery.Pt(50, 50)})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(ans.Distance(), 1) {
		t.Fatalf("sealed point should be unreachable, got %v", ans.Distance())
	}
	b, err := json.Marshal(EncodeAnswer(ans))
	if err != nil {
		t.Fatalf("marshal answer with +Inf: %v", err)
	}
	var back ExecResponse
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Distance == nil || !math.IsInf(float64(*back.Distance), 1) {
		t.Fatalf("distance did not survive the wire: %s", b)
	}
}

// TestToRequestValidation: missing or unknown fields fail with clear errors.
func TestToRequestValidation(t *testing.T) {
	cases := []ExecRequest{
		{},
		{Kind: "bogus"},
		{Kind: "CONN"},                        // missing seg
		{Kind: "ONN"},                         // missing p
		{Kind: "ObstructedDist", A: &Point{}}, // missing b
		{Kind: "CONNBatch"},                   // missing segs
		{Kind: "EDistanceJoin", E: 1},         // missing queries
		{Kind: "TrajectoryCONN"},              // missing waypoints
		{Kind: "ObstructedRange", Radius: 1},  // missing center
	}
	for _, env := range cases {
		if _, err := env.ToRequest(); err == nil {
			t.Errorf("ToRequest(%+v) accepted an invalid envelope", env)
		}
	}
	// Kind matching is case-insensitive and every library kind string maps.
	ok := []ExecRequest{
		{Kind: "conn", Seg: &Segment{B: Point{X: 1}}},
		{Kind: "COkNN", Seg: &Segment{B: Point{X: 1}}, K: 1},
		{Kind: "ClosestPair"}, // queries may legitimately be empty
	}
	for _, env := range ok {
		if _, err := env.ToRequest(); err != nil {
			t.Errorf("ToRequest(%+v): %v", env, err)
		}
	}
}

// TestMaxDistReachRoundTrip: the RLMAX bound on CONN/COkNN payloads and the
// retrieval-footprint radius in Metrics ride the wire exactly, including
// the +Inf cases (an unreachable interval makes both unbounded).
func TestMaxDistReachRoundTrip(t *testing.T) {
	db, err := connquery.Open(
		[]connquery.Point{connquery.Pt(10, 40), connquery.Pt(90, 40)},
		[]connquery.Rect{connquery.R(45, 10, 55, 70)},
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for _, req := range []connquery.Request{
		connquery.CONNRequest{Seg: connquery.Seg(connquery.Pt(20, 40), connquery.Pt(80, 40))},
		connquery.COkNNRequest{Seg: connquery.Seg(connquery.Pt(20, 40), connquery.Pt(80, 40)), K: 2},
	} {
		ans, err := db.Exec(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(EncodeAnswer(ans))
		if err != nil {
			t.Fatal(err)
		}
		var back ExecResponse
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		var gotMax float64
		switch {
		case back.Result != nil:
			gotMax = float64(back.Result.MaxDist)
			if want := ans.Result().MaxDist; gotMax != want {
				t.Fatalf("%s: max_dist %v != %v", req.Kind(), gotMax, want)
			}
		case back.KResult != nil:
			gotMax = float64(back.KResult.MaxDist)
			if want := ans.KResult().MaxDist; gotMax != want {
				t.Fatalf("%s: max_dist %v != %v", req.Kind(), gotMax, want)
			}
		default:
			t.Fatalf("%s: no payload on the wire: %s", req.Kind(), b)
		}
		if gotMax <= 0 {
			t.Fatalf("%s: max_dist not populated: %s", req.Kind(), b)
		}
		if got, want := float64(back.Metrics.Reach), ans.Metrics().Reach; got != want {
			t.Fatalf("%s: reach %v != %v", req.Kind(), got, want)
		}
		if back.Metrics.Reach <= 0 {
			t.Fatalf("%s: reach not populated: %s", req.Kind(), b)
		}
	}

	// The +Inf path: a sealed world makes MaxDist and Reach unbounded, and
	// both must survive as the "+Inf" string encoding.
	sealed, err := connquery.Open(
		[]connquery.Point{connquery.Pt(50, 50)},
		[]connquery.Rect{
			connquery.R(40, 40, 60, 43), connquery.R(40, 57, 60, 60),
			connquery.R(40, 40, 43, 60), connquery.R(57, 40, 60, 60),
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := sealed.Exec(ctx, connquery.CONNRequest{Seg: connquery.Seg(connquery.Pt(0, 0), connquery.Pt(10, 0))})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(ans.Result().MaxDist, 1) {
		t.Fatalf("sealed world should have unbounded MaxDist, got %v", ans.Result().MaxDist)
	}
	b, err := json.Marshal(EncodeAnswer(ans))
	if err != nil {
		t.Fatal(err)
	}
	var back ExecResponse
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(back.Result.MaxDist), 1) {
		t.Fatalf("+Inf max_dist did not survive the wire: %s", b)
	}
}
