package server

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"connquery"
)

// TestFloatInfRoundTrip: the one non-finite value the engine produces must
// survive JSON in both directions.
func TestFloatInfRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, math.Inf(1), math.Inf(-1), 0.1 + 0.2} {
		b, err := json.Marshal(Float(v))
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Float
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if float64(back) != v {
			t.Fatalf("round trip %v -> %s -> %v", v, b, float64(back))
		}
	}
}

// TestDistanceInfOverWire: an unreachable pair's +Inf distance encodes and
// decodes through the full answer envelope.
func TestDistanceInfOverWire(t *testing.T) {
	// A point sealed in a box of overlapping obstacles is unreachable from
	// outside (overlap matters: boundary travel through touching corners is
	// legal in the paper's model).
	db, err := connquery.Open(
		[]connquery.Point{connquery.Pt(50, 50)},
		[]connquery.Rect{
			connquery.R(40, 40, 60, 43), connquery.R(40, 57, 60, 60),
			connquery.R(40, 40, 43, 60), connquery.R(57, 40, 60, 60),
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := db.Exec(context.Background(),
		connquery.DistanceRequest{A: connquery.Pt(0, 0), B: connquery.Pt(50, 50)})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(ans.Distance(), 1) {
		t.Fatalf("sealed point should be unreachable, got %v", ans.Distance())
	}
	b, err := json.Marshal(EncodeAnswer(ans))
	if err != nil {
		t.Fatalf("marshal answer with +Inf: %v", err)
	}
	var back ExecResponse
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Distance == nil || !math.IsInf(float64(*back.Distance), 1) {
		t.Fatalf("distance did not survive the wire: %s", b)
	}
}

// TestToRequestValidation: missing or unknown fields fail with clear errors.
func TestToRequestValidation(t *testing.T) {
	cases := []ExecRequest{
		{},
		{Kind: "bogus"},
		{Kind: "CONN"},                        // missing seg
		{Kind: "ONN"},                         // missing p
		{Kind: "ObstructedDist", A: &Point{}}, // missing b
		{Kind: "CONNBatch"},                   // missing segs
		{Kind: "EDistanceJoin", E: 1},         // missing queries
		{Kind: "TrajectoryCONN"},              // missing waypoints
		{Kind: "ObstructedRange", Radius: 1},  // missing center
	}
	for _, env := range cases {
		if _, err := env.ToRequest(); err == nil {
			t.Errorf("ToRequest(%+v) accepted an invalid envelope", env)
		}
	}
	// Kind matching is case-insensitive and every library kind string maps.
	ok := []ExecRequest{
		{Kind: "conn", Seg: &Segment{B: Point{X: 1}}},
		{Kind: "COkNN", Seg: &Segment{B: Point{X: 1}}, K: 1},
		{Kind: "ClosestPair"}, // queries may legitimately be empty
	}
	for _, env := range ok {
		if _, err := env.ToRequest(); err != nil {
			t.Errorf("ToRequest(%+v): %v", env, err)
		}
	}
}
