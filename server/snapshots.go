package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"connquery"
)

// Server-held MVCC pins. POST /v1/snapshots pins the current version with
// DB.Snapshot and hands back an opaque id; exec requests reference it via
// the envelope's snapshot field to query that frozen version no matter how
// far the live chain advances. Because an HTTP client can vanish without
// releasing, every pin carries a sliding TTL deadline (touched by every
// use) and a janitor goroutine releases expired pins — an abandoned client
// can delay garbage of one version by at most the TTL, never forever.

// serverSnap is one registered pin. The Pin interface covers both backing
// databases: a *connquery.Snapshot from a DB, a *connquery.ShardedSnapshot
// (one consistent cross-shard cut) from a ShardedDB.
type serverSnap struct {
	id       uint64
	snap     connquery.Pin
	ttl      time.Duration
	deadline time.Time
	leases   int  // in-flight execs using the pin
	doomed   bool // released as soon as the last lease drops
}

// snapRegistry owns the pins and the janitor.
type snapRegistry struct {
	mu   sync.Mutex
	byID map[uint64]*serverSnap
	seq  uint64
	ttl  time.Duration
	quit chan struct{}
	done chan struct{}
}

// start initializes the registry from the server config and launches the
// janitor.
func (sr *snapRegistry) start(s *Server) {
	sr.byID = make(map[uint64]*serverSnap)
	sr.ttl = s.cfg.SnapshotTTL
	sr.quit = make(chan struct{})
	sr.done = make(chan struct{})
	interval := sr.ttl / 4
	if interval > time.Second {
		interval = time.Second
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	go func() {
		defer close(sr.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				sr.sweep(time.Now())
			case <-sr.quit:
				return
			}
		}
	}()
}

// stop terminates the janitor and releases every remaining pin. Releasing
// under in-flight queries is safe: a query that already resolved its
// version keeps it; one that has not yet resolved gets a clean
// ErrSnapshotReleased.
func (sr *snapRegistry) stop() {
	close(sr.quit)
	<-sr.done
	sr.mu.Lock()
	defer sr.mu.Unlock()
	for id, e := range sr.byID {
		e.snap.Release()
		delete(sr.byID, id)
	}
}

// sweep releases pins whose deadline passed. Leased pins are skipped — the
// lease slid their deadline anyway — so a pin is never yanked out from
// under an exec that is about to resolve it.
func (sr *snapRegistry) sweep(now time.Time) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	for id, e := range sr.byID {
		if e.leases == 0 && now.After(e.deadline) {
			e.snap.Release()
			delete(sr.byID, id)
		}
	}
}

// create pins the current version (cross-shard cut for a sharded backend).
func (sr *snapRegistry) create(db connquery.Database) *serverSnap {
	snap := db.Pin()
	sr.mu.Lock()
	defer sr.mu.Unlock()
	sr.seq++
	e := &serverSnap{id: sr.seq, snap: snap, ttl: sr.ttl, deadline: time.Now().Add(sr.ttl)}
	sr.byID[e.id] = e
	return e
}

// lease hands the pin to one exec call: the TTL deadline slides, and the
// janitor and DELETE leave the pin alive until the returned func runs.
func (sr *snapRegistry) lease(id uint64) (connquery.Pin, func(), error) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	e, ok := sr.byID[id]
	if !ok {
		return nil, nil, fmt.Errorf("%w: unknown or expired server snapshot %d", connquery.ErrSnapshotReleased, id)
	}
	e.leases++
	e.deadline = time.Now().Add(e.ttl)
	release := func() {
		sr.mu.Lock()
		defer sr.mu.Unlock()
		e.leases--
		e.deadline = time.Now().Add(e.ttl)
		if e.doomed && e.leases == 0 {
			e.snap.Release()
			delete(sr.byID, e.id)
		}
	}
	return e.snap, release, nil
}

// drop releases the pin with the given id (deferred past in-flight
// leases). It reports whether the id existed.
func (sr *snapRegistry) drop(id uint64) bool {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	e, ok := sr.byID[id]
	if !ok {
		return false
	}
	if e.leases > 0 {
		e.doomed = true
		return true
	}
	e.snap.Release()
	delete(sr.byID, id)
	return true
}

// count returns the number of live pins.
func (sr *snapRegistry) count() int {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return len(sr.byID)
}

// list snapshots for GET /v1/snapshots, ordered by id.
func (sr *snapRegistry) list() []SnapshotResponse {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	out := make([]SnapshotResponse, 0, len(sr.byID))
	for _, e := range sr.byID {
		out = append(out, snapshotResponse(e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func snapshotResponse(e *serverSnap) SnapshotResponse {
	return SnapshotResponse{
		ID:        e.id,
		Epoch:     e.snap.Epoch(),
		ExpiresAt: e.deadline.UTC().Format(time.RFC3339Nano),
	}
}

// handleCreateSnapshot serves POST /v1/snapshots.
func (s *Server) handleCreateSnapshot(w http.ResponseWriter, r *http.Request) {
	defer s.track()()
	e := s.snaps.create(s.db)
	s.snaps.mu.Lock()
	resp := snapshotResponse(e)
	s.snaps.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleListSnapshots serves GET /v1/snapshots.
func (s *Server) handleListSnapshots(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.snaps.list())
}

// handleDeleteSnapshot serves DELETE /v1/snapshots/{id}.
func (s *Server) handleDeleteSnapshot(w http.ResponseWriter, r *http.Request) {
	defer s.track()()
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad snapshot id %q: %w", r.PathValue("id"), err))
		return
	}
	if !s.snaps.drop(id) {
		s.writeErr(w, http.StatusNotFound, fmt.Errorf("unknown server snapshot %d", id))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Released bool `json:"released"`
	}{true})
}
