package server

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"

	"connquery"
)

// The wire format. Every type in this file mirrors one public connquery
// type with stable lowercase JSON names, so the HTTP surface is decoupled
// from Go identifier renames and usable from any language. Conversions are
// exact: float64 coordinates survive a JSON round-trip bit-for-bit (Go
// marshals the shortest representation that parses back to the same value),
// and the one non-finite value the engine produces — the +Inf obstructed
// distance of an unreachable pair — is carried as the JSON string "+Inf"
// via the Float type. The server and the e2e tests share these encoders,
// which is how the tests prove HTTP answers bit-identical to in-process
// ones.

// Float is a float64 whose JSON encoding survives infinities:
// encoding/json rejects non-finite values, but obstructed distances are
// +Inf when every path is blocked. Infinite values encode as the strings
// "+Inf" / "-Inf"; finite ones as plain JSON numbers.
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *Float) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"+Inf"`, `"Inf"`:
		*f = Float(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = Float(math.Inf(-1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

// Point is the wire form of connquery.Point.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Rect is the wire form of connquery.Rect.
type Rect struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

// Segment is the wire form of connquery.Segment.
type Segment struct {
	A Point `json:"a"`
	B Point `json:"b"`
}

// Span is the wire form of connquery.Span: a parametric sub-interval of
// [0, 1] along the query segment.
type Span struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Tuple is one ⟨point, interval⟩ element of a CONN answer. A pid of -1
// marks an interval with no reachable data point (p is then meaningless).
type Tuple struct {
	PID  int32 `json:"pid"`
	P    Point `json:"p"`
	Span Span  `json:"span"`
}

// Result is the wire form of a CONN-family answer (*connquery.Result).
// max_dist is the answer's RLMAX bound (the paper's Lemma 2): the maximum
// obstructed distance from any position on the segment to its nearest
// neighbor — an upper bound on how far any influencing object can be.
// "+Inf" when some interval has no reachable point.
type Result struct {
	Seg     Segment `json:"seg"`
	Tuples  []Tuple `json:"tuples"`
	MaxDist Float   `json:"max_dist"`
}

// Owner is one member of a COkNN answer set.
type Owner struct {
	PID int32 `json:"pid"`
	P   Point `json:"p"`
}

// KTuple is one ⟨owner set, interval⟩ element of a COkNN answer; owners are
// sorted by obstructed distance at the span midpoint.
type KTuple struct {
	Span   Span    `json:"span"`
	Owners []Owner `json:"owners"`
}

// KResult is the wire form of a COkNN answer (*connquery.KResult).
// max_dist is the k-th-neighbor RLMAX bound (the paper's Lemma 7).
type KResult struct {
	Seg     Segment  `json:"seg"`
	K       int      `json:"k"`
	Tuples  []KTuple `json:"tuples"`
	MaxDist Float    `json:"max_dist"`
}

// Neighbor is one answer of a point query (ONN, ObstructedRange,
// VisibleKNN).
type Neighbor struct {
	PID  int32 `json:"pid"`
	P    Point `json:"p"`
	Dist Float `json:"dist"`
}

// JoinPair is one result of an obstructed join query. For
// DistanceSemiJoin, a pid of -1 with an infinite dist marks a query point
// with no reachable data point.
type JoinPair struct {
	QIdx int   `json:"q_idx"`
	PID  int32 `json:"pid"`
	P    Point `json:"p"`
	Dist Float `json:"dist"`
}

// Trajectory is the wire form of *connquery.TrajectoryResult: one CONN
// Result per non-degenerate leg of the waypoint polyline.
type Trajectory struct {
	Waypoints []Point   `json:"waypoints"`
	Legs      []*Result `json:"legs"`
}

// Metrics is the wire form of connquery.Metrics, the paper's per-query
// cost profile. reach is the execution's retrieval footprint radius: the
// maximum distance from the query geometry at which the engine consulted
// its index streams ("+Inf" when a stream was exhausted under an unbounded
// threshold, e.g. for an unreachable interval).
type Metrics struct {
	FaultsData int64 `json:"faults_data"`
	FaultsObst int64 `json:"faults_obst"`
	NPE        int   `json:"npe"`
	NOE        int   `json:"noe"`
	SVG        int   `json:"svg"`
	CPUNs      int64 `json:"cpu_ns"`
	Reach      Float `json:"reach"`
}

// Tuning is the wire form of connquery.Tuning, the per-call ablation
// switches.
type Tuning struct {
	DisableLemma1      bool `json:"disable_lemma1,omitempty"`
	DisableLemma6      bool `json:"disable_lemma6,omitempty"`
	DisableLemma7      bool `json:"disable_lemma7,omitempty"`
	DisableVGReuse     bool `json:"disable_vg_reuse,omitempty"`
	UseBisectionSolver bool `json:"use_bisection_solver,omitempty"`
}

// ExecRequest is the envelope decoded by POST /v1/exec and GET/POST
// /v1/watch. Kind selects the query family; the parameter fields that
// family needs must be set (the others are ignored). The option fields map
// onto the library's QueryOptions: at_version/snapshot pin an MVCC version
// (exec only — a watch follows the live chain by definition), workers pools
// a multi-item request, tuning overrides the ablation switches for this
// call, no_cache bypasses the answer cache (a bypassed exec always runs
// the engine and reports a fresh cost profile), and timeout_ms bounds the
// execution (capped by the server's configured maximum). limit applies to
// watches only: the stream closes after that many updates (0 = until
// disconnect).
type ExecRequest struct {
	Kind string `json:"kind"`

	// Query parameters, by kind:
	//   CONN, CNN          — seg
	//   COkNN              — seg, k
	//   NaiveCONN          — seg, samples
	//   ONN, VisibleKNN    — p, k
	//   ObstructedRange    — center, radius
	//   ObstructedDist     — a, b
	//   TrajectoryCONN     — waypoints
	//   CONNBatch          — segs
	//   EDistanceJoin      — queries, e
	//   DistanceSemiJoin   — queries
	//   ClosestPair        — queries
	Seg       *Segment  `json:"seg,omitempty"`
	Segs      []Segment `json:"segs,omitempty"`
	P         *Point    `json:"p,omitempty"`
	A         *Point    `json:"a,omitempty"`
	B         *Point    `json:"b,omitempty"`
	Center    *Point    `json:"center,omitempty"`
	K         int       `json:"k,omitempty"`
	Samples   int       `json:"samples,omitempty"`
	Radius    float64   `json:"radius,omitempty"`
	E         float64   `json:"e,omitempty"`
	Waypoints []Point   `json:"waypoints,omitempty"`
	Queries   []Point   `json:"queries,omitempty"`

	// Per-call options.
	AtVersion *uint64 `json:"at_version,omitempty"`
	Snapshot  *uint64 `json:"snapshot,omitempty"`
	Workers   *int    `json:"workers,omitempty"`
	Tuning    *Tuning `json:"tuning,omitempty"`
	NoCache   bool    `json:"no_cache,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
	Limit     int     `json:"limit,omitempty"`
}

// ExecResponse is the answer envelope of POST /v1/exec and of each watch
// update. Exactly one payload field is set, matching the request kind;
// epoch is the MVCC version the query executed against.
type ExecResponse struct {
	Kind        string    `json:"kind"`
	Epoch       uint64    `json:"epoch"`
	Metrics     Metrics   `json:"metrics"`
	ItemMetrics []Metrics `json:"item_metrics,omitempty"`

	Result     *Result     `json:"result,omitempty"`
	KResult    *KResult    `json:"kresult,omitempty"`
	Neighbors  []Neighbor  `json:"neighbors,omitempty"`
	Pairs      []JoinPair  `json:"pairs,omitempty"`
	Pair       *JoinPair   `json:"pair,omitempty"`
	Trajectory *Trajectory `json:"trajectory,omitempty"`
	Results    []*Result   `json:"results,omitempty"`
	Distance   *Float      `json:"distance,omitempty"`
}

// WatchUpdate is one streamed element of GET /v1/watch: the re-executed
// answer at epoch plus the delta against the previous update. A non-empty
// error ends the stream.
type WatchUpdate struct {
	Epoch        uint64        `json:"epoch"`
	Changed      bool          `json:"changed"`
	ChangedSpans []Span        `json:"changed_spans,omitempty"`
	Answer       *ExecResponse `json:"answer,omitempty"`
	Error        string        `json:"error,omitempty"`
}

// StreamMutation is one NDJSON line of the POST /v1/stream ingest body.
// op selects the operation and decides which other fields are required:
//
//	insert-point     — p (speed optional: declares a motion bound)
//	delete-point     — id
//	insert-obstacle  — rect
//	delete-obstacle  — id
//	move-point       — id, p (speed optional: re-declares the bound)
type StreamMutation struct {
	Op    string  `json:"op"`
	ID    *int32  `json:"id,omitempty"`
	P     *Point  `json:"p,omitempty"`
	Rect  *Rect   `json:"rect,omitempty"`
	Speed float64 `json:"speed,omitempty"`
}

// StreamResult is the outcome of one stream line within its tick, in input
// order: the assigned ID for inserts (the fresh PID for a completed move),
// whether a delete removed an existing object, and the member's validation
// error when it failed (a failed member never aborts its tick).
type StreamResult struct {
	ID      int32  `json:"id"`
	Deleted bool   `json:"deleted,omitempty"`
	Error   string `json:"error,omitempty"`
}

// StreamTick is one response line of POST /v1/stream: the epoch the tick
// published, the count of committed primitive mutations (a completed move
// contributes two), and the per-line outcomes. A line carrying only error
// reports a malformed input line (skipped; the stream continues) or, for a
// durable-tier failure, the fail-stop end of the ingest.
type StreamTick struct {
	Epoch   uint64         `json:"epoch,omitempty"`
	Applied int            `json:"applied,omitempty"`
	Results []StreamResult `json:"results,omitempty"`
	Error   string         `json:"error,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// MutateResponse is the body of the mutation endpoints. Epoch is the
// database version observed right after the mutation (it includes the
// mutation; with concurrent writers it may include later ones too).
type MutateResponse struct {
	PID     *int32 `json:"pid,omitempty"`
	OID     *int32 `json:"oid,omitempty"`
	Deleted *bool  `json:"deleted,omitempty"`
	Epoch   uint64 `json:"epoch"`
}

// SnapshotResponse describes one server-held MVCC pin.
type SnapshotResponse struct {
	ID        uint64 `json:"id"`
	Epoch     uint64 `json:"epoch"`
	ExpiresAt string `json:"expires_at"` // RFC 3339, sliding: touched on use
}

// CacheStats is the wire form of connquery.CacheStats: the answer cache's
// hit/miss/promotion counters and current contents. hits counts execs
// served without engine work (promoted_hits is the subset served from
// entries that survived at least one mutation); promotions counts entry
// validity extensions across mutations, invalidations the entries a
// mutation's impact region actually touched, evictions the size-bound
// removals, and sweeps the entries dropped for falling behind the
// invalidation frontier (cached for a pinned old epoch after the chain
// moved on). NPE/NOE totals in StatsResponse only grow on real
// executions, so (execs - hits) relates them to engine work done.
type CacheStats struct {
	Hits          int64 `json:"hits"`
	PromotedHits  int64 `json:"promoted_hits"`
	Misses        int64 `json:"misses"`
	Promotions    int64 `json:"promotions"`
	Invalidations int64 `json:"invalidations"`
	Evictions     int64 `json:"evictions"`
	Sweeps        int64 `json:"sweeps"`
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
}

// PlannerStats is the wire form of connquery.PlannerStats: the execution
// planner's cumulative counters. groups_formed counts shared sight-line
// certificate tables built (one per admission group with real concurrency),
// adoptions the executions that reused another execution's table, fallbacks
// the executions that consulted the planner but ran the private path, and
// build_ns/saved_ns the wall time spent building tables vs. the build work
// adoptions avoided. All zero when the planner is disabled (-no-planner).
type PlannerStats struct {
	GroupsFormed uint64 `json:"groups_formed"`
	Adoptions    uint64 `json:"adoptions"`
	Fallbacks    uint64 `json:"fallbacks"`
	BuildNs      int64  `json:"build_ns"`
	SavedNs      int64  `json:"saved_ns"`
}

// WatchDBStats is the wire form of connquery.WatchStats: the library's
// wake-filter counters. woken counts wake signals delivered to watchers;
// skipped counts commit×watcher pairs suppressed because the commit's
// impact region provably could not alter the watcher's answer;
// horizon_skips counts woken watchers that skipped re-execution because
// their delivered answer's validity horizon still covered every commit
// since.
type WatchDBStats struct {
	Woken        int64 `json:"woken"`
	Skipped      int64 `json:"skipped"`
	HorizonSkips int64 `json:"horizon_skips"`
}

// StreamStats aggregates the POST /v1/stream ingest counters: open streams,
// committed ticks, mutation lines committed through them, and malformed
// lines rejected in-stream.
type StreamStats struct {
	Open     int64 `json:"open"`
	Ticks    int64 `json:"ticks"`
	Lines    int64 `json:"lines"`
	Rejected int64 `json:"rejected"`
}

// StatsResponse is the body of GET /v1/stats: the live dataset shape plus
// cumulative serving counters, including the paper's NPE/NOE/|SVG| cost
// metrics summed (peak for SVG) over every query this process executed
// (answer-cache hits replay stored metrics and are excluded from the
// NPE/NOE totals), and the answer cache's counters.
type StatsResponse struct {
	Epoch         uint64           `json:"epoch"`
	Points        int              `json:"points"`
	Obstacles     int              `json:"obstacles"`
	UptimeMS      int64            `json:"uptime_ms"`
	Execs         int64            `json:"execs"`
	ExecErrors    int64            `json:"exec_errors"`
	ExecsByKind   map[string]int64 `json:"execs_by_kind"`
	ExecsInFlight int64            `json:"execs_in_flight"`
	WatchesOpen   int64            `json:"watches_open"`
	WatchUpdates  int64            `json:"watch_updates"`
	Mutations     int64            `json:"mutations"`
	SnapshotsOpen int              `json:"snapshots_open"`
	NPETotal      int64            `json:"npe_total"`
	NOETotal      int64            `json:"noe_total"`
	SVGPeak       int64            `json:"svg_peak"`
	Cache         CacheStats       `json:"cache"`
	Planner       PlannerStats     `json:"planner"`
	Watch         WatchDBStats     `json:"watch"`
	Stream        StreamStats      `json:"stream"`
	// Shards carries the scatter-gather router's counters when the served
	// database is sharded; omitted for a single-node backend.
	Shards *connquery.ShardStats `json:"shards,omitempty"`
}

// ---------------------------------------------------------------------------
// Wire ↔ library conversions

func wirePoint(p connquery.Point) Point { return Point{X: p.X, Y: p.Y} }
func (p Point) lib() connquery.Point    { return connquery.Pt(p.X, p.Y) }
func wireSegment(s connquery.Segment) Segment {
	return Segment{A: wirePoint(s.A), B: wirePoint(s.B)}
}
func (s Segment) lib() connquery.Segment { return connquery.Seg(s.A.lib(), s.B.lib()) }
func (r Rect) lib() connquery.Rect       { return connquery.R(r.MinX, r.MinY, r.MaxX, r.MaxY) }
func wireSpan(s connquery.Span) Span     { return Span{Lo: s.Lo, Hi: s.Hi} }

func wirePoints(ps []Point) []connquery.Point {
	out := make([]connquery.Point, len(ps))
	for i, p := range ps {
		out[i] = p.lib()
	}
	return out
}

func wireSegs(ss []Segment) []connquery.Segment {
	out := make([]connquery.Segment, len(ss))
	for i, s := range ss {
		out[i] = s.lib()
	}
	return out
}

func wireMetrics(m connquery.Metrics) Metrics {
	return Metrics{
		FaultsData: m.FaultsData,
		FaultsObst: m.FaultsObst,
		NPE:        m.NPE,
		NOE:        m.NOE,
		SVG:        m.SVG,
		CPUNs:      int64(m.CPU),
		Reach:      Float(m.Reach),
	}
}

func wireResult(r *connquery.Result) *Result {
	if r == nil {
		return nil
	}
	out := &Result{Seg: wireSegment(r.Q), Tuples: make([]Tuple, len(r.Tuples)), MaxDist: Float(r.MaxDist)}
	for i, t := range r.Tuples {
		out.Tuples[i] = Tuple{PID: t.PID, P: wirePoint(t.P), Span: wireSpan(t.Span)}
	}
	return out
}

func wireKResult(r *connquery.KResult) *KResult {
	if r == nil {
		return nil
	}
	out := &KResult{Seg: wireSegment(r.Q), K: r.K, Tuples: make([]KTuple, len(r.Tuples)), MaxDist: Float(r.MaxDist)}
	for i, t := range r.Tuples {
		kt := KTuple{Span: wireSpan(t.Span), Owners: make([]Owner, len(t.Owners))}
		for j, o := range t.Owners {
			kt.Owners[j] = Owner{PID: o.PID, P: wirePoint(o.P)}
		}
		out.Tuples[i] = kt
	}
	return out
}

func wireNeighbors(ns []connquery.Neighbor) []Neighbor {
	out := make([]Neighbor, len(ns))
	for i, n := range ns {
		out[i] = Neighbor{PID: n.PID, P: wirePoint(n.P), Dist: Float(n.Dist)}
	}
	return out
}

func wirePair(p connquery.JoinPair) JoinPair {
	return JoinPair{QIdx: p.QIdx, PID: p.PID, P: wirePoint(p.P), Dist: Float(p.Dist)}
}

func wirePairs(ps []connquery.JoinPair) []JoinPair {
	out := make([]JoinPair, len(ps))
	for i, p := range ps {
		out[i] = wirePair(p)
	}
	return out
}

// EncodeAnswer converts an executed Answer into its wire envelope. It is
// exported so tests (and embedding callers) can encode in-process answers
// with exactly the encoder the HTTP handlers use.
func EncodeAnswer(ans *connquery.Answer) *ExecResponse {
	resp := &ExecResponse{
		Kind:    ans.Request().Kind(),
		Epoch:   ans.Epoch(),
		Metrics: wireMetrics(ans.Metrics()),
	}
	if items := ans.ItemMetrics(); items != nil {
		resp.ItemMetrics = make([]Metrics, len(items))
		for i, m := range items {
			resp.ItemMetrics[i] = wireMetrics(m)
		}
	}
	switch ans.Request().(type) {
	case connquery.CONNRequest, connquery.CNNRequest, connquery.NaiveCONNRequest:
		resp.Result = wireResult(ans.Result())
	case connquery.COkNNRequest:
		resp.KResult = wireKResult(ans.KResult())
	case connquery.ONNRequest, connquery.RangeRequest, connquery.VisibleKNNRequest:
		resp.Neighbors = wireNeighbors(ans.Neighbors())
	case connquery.EDistanceJoinRequest, connquery.DistanceSemiJoinRequest:
		resp.Pairs = wirePairs(ans.Pairs())
	case connquery.ClosestPairRequest:
		p := wirePair(ans.Pair())
		resp.Pair = &p
	case connquery.TrajectoryRequest:
		t := ans.Trajectory()
		wt := &Trajectory{Waypoints: make([]Point, len(t.Waypoints)), Legs: make([]*Result, len(t.Legs))}
		for i, p := range t.Waypoints {
			wt.Waypoints[i] = wirePoint(p)
		}
		for i, leg := range t.Legs {
			wt.Legs[i] = wireResult(leg)
		}
		resp.Trajectory = wt
	case connquery.CONNBatchRequest:
		rs := ans.Results()
		resp.Results = make([]*Result, len(rs))
		for i, r := range rs {
			resp.Results[i] = wireResult(r)
		}
	case connquery.DistanceRequest:
		d := Float(ans.Distance())
		resp.Distance = &d
	}
	return resp
}

// need reports a missing required field for the request kind.
func need(kind, field string) error {
	return fmt.Errorf("%s requires %q", kind, field)
}

// ToRequest converts the envelope into the library's typed Request value.
// Field presence is validated here; value validation (degenerate segments,
// k < 1, negative radii, ...) is left to the library so the HTTP surface
// rejects exactly what Exec rejects.
func (e *ExecRequest) ToRequest() (connquery.Request, error) {
	kind := strings.ToLower(strings.TrimSpace(e.Kind))
	switch kind {
	case "conn":
		if e.Seg == nil {
			return nil, need("CONN", "seg")
		}
		return connquery.CONNRequest{Seg: e.Seg.lib()}, nil
	case "cnn":
		if e.Seg == nil {
			return nil, need("CNN", "seg")
		}
		return connquery.CNNRequest{Seg: e.Seg.lib()}, nil
	case "coknn":
		if e.Seg == nil {
			return nil, need("COkNN", "seg")
		}
		return connquery.COkNNRequest{Seg: e.Seg.lib(), K: e.K}, nil
	case "naiveconn":
		if e.Seg == nil {
			return nil, need("NaiveCONN", "seg")
		}
		return connquery.NaiveCONNRequest{Seg: e.Seg.lib(), Samples: e.Samples}, nil
	case "onn":
		if e.P == nil {
			return nil, need("ONN", "p")
		}
		return connquery.ONNRequest{P: e.P.lib(), K: e.K}, nil
	case "visibleknn":
		if e.P == nil {
			return nil, need("VisibleKNN", "p")
		}
		return connquery.VisibleKNNRequest{P: e.P.lib(), K: e.K}, nil
	case "obstructedrange", "range":
		if e.Center == nil {
			return nil, need("ObstructedRange", "center")
		}
		return connquery.RangeRequest{Center: e.Center.lib(), Radius: e.Radius}, nil
	case "obstructeddist", "distance":
		if e.A == nil || e.B == nil {
			return nil, need("ObstructedDist", "a and b")
		}
		return connquery.DistanceRequest{A: e.A.lib(), B: e.B.lib()}, nil
	case "trajectoryconn", "trajectory":
		if len(e.Waypoints) == 0 {
			return nil, need("TrajectoryCONN", "waypoints")
		}
		return connquery.TrajectoryRequest{Waypoints: wirePoints(e.Waypoints)}, nil
	case "connbatch":
		if len(e.Segs) == 0 {
			return nil, need("CONNBatch", "segs")
		}
		return connquery.CONNBatchRequest{Segs: wireSegs(e.Segs)}, nil
	case "edistancejoin":
		if len(e.Queries) == 0 {
			return nil, need("EDistanceJoin", "queries")
		}
		return connquery.EDistanceJoinRequest{Queries: wirePoints(e.Queries), E: e.E}, nil
	case "distancesemijoin":
		if len(e.Queries) == 0 {
			return nil, need("DistanceSemiJoin", "queries")
		}
		return connquery.DistanceSemiJoinRequest{Queries: wirePoints(e.Queries)}, nil
	case "closestpair":
		return connquery.ClosestPairRequest{Queries: wirePoints(e.Queries)}, nil
	case "":
		return nil, fmt.Errorf("missing request kind")
	}
	return nil, fmt.Errorf("unknown request kind %q", e.Kind)
}

func (t *Tuning) lib() connquery.Tuning {
	return connquery.Tuning{
		DisableLemma1:      t.DisableLemma1,
		DisableLemma6:      t.DisableLemma6,
		DisableLemma7:      t.DisableLemma7,
		DisableVGReuse:     t.DisableVGReuse,
		UseBisectionSolver: t.UseBisectionSolver,
	}
}

// timeout returns the effective execution deadline for this request: the
// requested timeout_ms, capped by the server maximum; with no request
// timeout the cap itself applies (0 = unbounded).
func (e *ExecRequest) timeout(maxT time.Duration) time.Duration {
	req := time.Duration(e.TimeoutMS) * time.Millisecond
	if req <= 0 {
		return maxT
	}
	if maxT > 0 && req > maxT {
		return maxT
	}
	return req
}
