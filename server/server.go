// Package server exposes a connquery database over HTTP/JSON: the full
// typed-request surface through one generic POST /v1/exec endpoint, live
// continuous queries as NDJSON/SSE streams on GET /v1/watch, the MVCC
// mutation and snapshot-pinning API, and a /v1/stats counters endpoint.
//
// The package is a thin, faithful shell over the library's single
// execution path: every HTTP query decodes into the same Request values
// DB.Exec takes, runs against one consistent MVCC snapshot, and encodes
// the Answer (payload + the paper's cost metrics + epoch) with a shared,
// exactly-round-tripping wire codec. Client disconnects propagate as
// context cancellation into the query hot loops, so an abandoned request
// stops consuming CPU promptly.
//
// Routes:
//
//	POST   /v1/exec            execute one request (ExecRequest → ExecResponse)
//	GET    /v1/watch           stream re-executed answers on every commit
//	POST   /v1/watch           same, request envelope in the body
//	POST   /v1/points          insert a data point
//	DELETE /v1/points/{id}     delete a data point
//	POST   /v1/obstacles       insert an obstacle
//	DELETE /v1/obstacles/{id}  delete an obstacle
//	POST   /v1/stream          NDJSON mutation ingest, batched into ticks
//	POST   /v1/snapshots       pin the current MVCC version (TTL-guarded)
//	GET    /v1/snapshots       list live pins
//	DELETE /v1/snapshots/{id}  release a pin
//	GET    /v1/stats           dataset shape + serving counters
//
// Construct a Server with New, mount Handler on any http.Server, and Close
// the Server on shutdown: Close releases every server-held snapshot pin,
// terminates the watch streams (so http.Server.Shutdown can finish), and
// waits for in-flight execs to drain.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"connquery"
)

// Config parameterizes New.
type Config struct {
	// DB is the database to serve: a single-node *connquery.DB or a
	// sharded *connquery.ShardedDB — the API surface is identical either
	// way (payloads and the machine-independent metrics are bit-identical
	// between the two by the library's sharding contract). Required.
	DB connquery.Database

	// RequestTimeout caps the execution time of every /v1/exec call; a
	// request's timeout_ms may only tighten it. 0 means no server-side
	// cap. Watch streams are exempt — they are long-lived by design, and
	// their envelope's timeout_ms bounds the whole stream instead.
	RequestTimeout time.Duration

	// SnapshotTTL bounds how long an idle POST /v1/snapshots pin survives:
	// the deadline slides on every use, and the janitor releases expired
	// pins so an abandoned client cannot pin an MVCC version forever.
	// 0 selects the default of 5 minutes.
	SnapshotTTL time.Duration

	// Logf, when set, receives one line per served error (decode failures,
	// failed execs). nil disables logging.
	Logf func(format string, args ...any)
}

// DefaultSnapshotTTL is the pin lifetime used when Config.SnapshotTTL is 0.
const DefaultSnapshotTTL = 5 * time.Minute

// Server serves one connquery.Database over HTTP. Create it with New; it
// is safe for concurrent use by any number of connections.
type Server struct {
	db  connquery.Database
	cfg Config
	mux *http.ServeMux

	start time.Time
	stats counters
	snaps snapRegistry

	closed    chan struct{} // closed by Close: ends watch streams
	closeOnce sync.Once
	inflight  sync.WaitGroup
}

// counters aggregates the serving statistics surfaced by /v1/stats.
type counters struct {
	execs        atomic.Int64
	execErrors   atomic.Int64
	watchesOpen  atomic.Int64
	watchUpdates atomic.Int64
	mutations    atomic.Int64
	inflight     atomic.Int64

	streamsOpen    atomic.Int64
	streamTicks    atomic.Int64
	streamLines    atomic.Int64
	streamRejected atomic.Int64

	npe     atomic.Int64
	noe     atomic.Int64
	svgPeak atomic.Int64

	mu     sync.Mutex
	byKind map[string]int64
}

// record folds one successful execution into the counters. Answer-cache
// hits count as served execs but replay stored metrics, so their NPE/NOE
// would double-count engine work the process never repeated — the cost
// totals only grow on real executions.
func (c *counters) record(kind string, m connquery.Metrics, cached bool) {
	c.execs.Add(1)
	if !cached {
		c.npe.Add(int64(m.NPE))
		c.noe.Add(int64(m.NOE))
		for {
			cur := c.svgPeak.Load()
			if int64(m.SVG) <= cur || c.svgPeak.CompareAndSwap(cur, int64(m.SVG)) {
				break
			}
		}
	}
	c.mu.Lock()
	if c.byKind == nil {
		c.byKind = make(map[string]int64)
	}
	c.byKind[kind]++
	c.mu.Unlock()
}

// New builds a Server over cfg.DB and starts the snapshot janitor.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	if cfg.SnapshotTTL <= 0 {
		cfg.SnapshotTTL = DefaultSnapshotTTL
	}
	s := &Server{
		db:     cfg.DB,
		cfg:    cfg,
		mux:    http.NewServeMux(),
		start:  time.Now(),
		closed: make(chan struct{}),
	}
	s.mux.HandleFunc("POST /v1/exec", s.handleExec)
	s.mux.HandleFunc("GET /v1/watch", s.handleWatch)
	s.mux.HandleFunc("POST /v1/watch", s.handleWatch)
	s.mux.HandleFunc("POST /v1/points", s.handleInsertPoint)
	s.mux.HandleFunc("DELETE /v1/points/{id}", s.handleDeletePoint)
	s.mux.HandleFunc("POST /v1/obstacles", s.handleInsertObstacle)
	s.mux.HandleFunc("DELETE /v1/obstacles/{id}", s.handleDeleteObstacle)
	s.mux.HandleFunc("POST /v1/stream", s.handleStream)
	s.mux.HandleFunc("POST /v1/snapshots", s.handleCreateSnapshot)
	s.mux.HandleFunc("GET /v1/snapshots", s.handleListSnapshots)
	s.mux.HandleFunc("DELETE /v1/snapshots/{id}", s.handleDeleteSnapshot)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.snaps.start(s)
	return s, nil
}

// Handler returns the HTTP handler serving the /v1 API.
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts the server side of the API down: the snapshot janitor stops
// and every server-held pin is released, open watch streams terminate (so
// a surrounding http.Server.Shutdown is not wedged by them), and Close
// blocks until in-flight exec and mutation handlers have drained.
// The Server must not serve new requests after Close.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.snaps.stop()
	})
	s.inflight.Wait()
}

// logf logs one line through cfg.Logf when configured.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// track registers one in-flight request handler for Close draining and
// the stats gauge. The returned func must be deferred.
func (s *Server) track() func() {
	s.inflight.Add(1)
	s.stats.inflight.Add(1)
	return func() {
		s.stats.inflight.Add(-1)
		s.inflight.Done()
	}
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the connection is the only failure mode here
}

// writeErr writes the error envelope and logs it.
func (s *Server) writeErr(w http.ResponseWriter, status int, err error) {
	s.logf("http %d: %v", status, err)
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// statusOf maps an Exec/Watch error onto an HTTP status: expired or
// foreign MVCC pins are 410 Gone, an exceeded per-request deadline is 504,
// a body over the maxBodyBytes cap is 413, and everything else Exec
// reports is a request defect (validation), 400.
func statusOf(err error) int {
	var tooLarge *http.MaxBytesError
	switch {
	case errors.Is(err, connquery.ErrSnapshotReleased),
		errors.Is(err, connquery.ErrVersionNotPinned),
		errors.Is(err, connquery.ErrForeignSnapshot):
		return http.StatusGone
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.As(err, &tooLarge):
		return http.StatusRequestEntityTooLarge
	default:
		return http.StatusBadRequest
	}
}

// maxBodyBytes bounds every JSON request body: large enough for any sane
// batch or join request, small enough that one connection cannot buffer
// the server into the ground.
const maxBodyBytes = 8 << 20

// decodeBody strictly decodes a JSON request body into v, capped at
// maxBodyBytes.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	byKind := make(map[string]int64)
	s.stats.mu.Lock()
	for k, v := range s.stats.byKind {
		byKind[k] = v
	}
	s.stats.mu.Unlock()
	cs := s.db.CacheStats()
	ps := s.db.PlannerStats()
	ws := s.db.WatchStats()
	// A sharded database additionally reports its router/per-shard counters.
	var shardStats *connquery.ShardStats
	if sdb, ok := s.db.(interface{ ShardStats() connquery.ShardStats }); ok {
		st := sdb.ShardStats()
		shardStats = &st
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Epoch:         s.db.Version(),
		Points:        s.db.NumPoints(),
		Obstacles:     s.db.NumObstacles(),
		UptimeMS:      time.Since(s.start).Milliseconds(),
		Execs:         s.stats.execs.Load(),
		ExecErrors:    s.stats.execErrors.Load(),
		ExecsByKind:   byKind,
		ExecsInFlight: s.stats.inflight.Load(),
		WatchesOpen:   s.stats.watchesOpen.Load(),
		WatchUpdates:  s.stats.watchUpdates.Load(),
		Mutations:     s.stats.mutations.Load(),
		SnapshotsOpen: s.snaps.count(),
		NPETotal:      s.stats.npe.Load(),
		NOETotal:      s.stats.noe.Load(),
		SVGPeak:       s.stats.svgPeak.Load(),
		Cache: CacheStats{
			Hits:          cs.Hits,
			PromotedHits:  cs.PromotedHits,
			Misses:        cs.Misses,
			Promotions:    cs.Promotions,
			Invalidations: cs.Invalidations,
			Evictions:     cs.Evictions,
			Sweeps:        cs.Sweeps,
			Entries:       cs.Entries,
			Bytes:         cs.Bytes,
		},
		Planner: PlannerStats{
			GroupsFormed: ps.GroupsFormed,
			Adoptions:    ps.Adoptions,
			Fallbacks:    ps.Fallbacks,
			BuildNs:      ps.BuildNs,
			SavedNs:      ps.SavedNs,
		},
		Watch: WatchDBStats{
			Woken:        ws.Woken,
			Skipped:      ws.Skipped,
			HorizonSkips: ws.HorizonSkips,
		},
		Stream: StreamStats{
			Open:     s.stats.streamsOpen.Load(),
			Ticks:    s.stats.streamTicks.Load(),
			Lines:    s.stats.streamLines.Load(),
			Rejected: s.stats.streamRejected.Load(),
		},
		Shards: shardStats,
	})
}
