package connquery

import (
	"math"
	"testing"
)

// TestLegacyShims exercises every deprecated method once: each is a thin
// wrapper over Exec, so this pins that the old surface keeps working (and
// keeps compiling) while call sites migrate.
func TestLegacyShims(t *testing.T) {
	db := smallDB(t)
	q := Seg(Pt(0, 0), Pt(100, 0))

	if res, m, err := db.CONN(q); err != nil || len(res.Tuples) == 0 || m.NPE == 0 {
		t.Fatalf("CONN shim: %v %v", res, err)
	}
	if res, _, err := db.COkNN(q, 2); err != nil || len(res.Tuples) == 0 {
		t.Fatalf("COkNN shim: %v %v", res, err)
	}
	if res, _, err := db.COKNN(q, 2); err != nil || len(res.Tuples) == 0 {
		t.Fatalf("COKNN alias shim: %v %v", res, err)
	}
	if nbrs, _, err := db.ONN(Pt(50, 0), 2); err != nil || len(nbrs) != 2 {
		t.Fatalf("ONN shim: %v %v", nbrs, err)
	}
	if res, _, err := db.CNN(q); err != nil || len(res.Tuples) == 0 {
		t.Fatalf("CNN shim: %v %v", res, err)
	}
	if res, _, err := db.NaiveCONN(q, 16); err != nil || len(res.Tuples) == 0 {
		t.Fatalf("NaiveCONN shim: %v %v", res, err)
	}
	results, ms, err := db.CONNBatch([]Segment{q, q}, 2)
	if err != nil || len(results) != 2 || len(ms) != 2 {
		t.Fatalf("CONNBatch shim: %v %v %v", results, ms, err)
	}
	if pairs, _, err := db.EDistanceJoin([]Point{Pt(12, 12)}, 5); err != nil || len(pairs) != 1 {
		t.Fatalf("EDistanceJoin shim: %v %v", pairs, err)
	}
	if pair, _ := db.ClosestPair([]Point{Pt(11, 11)}); pair.PID != 0 {
		t.Fatalf("ClosestPair shim: %+v", pair)
	}
	if pairs, _ := db.DistanceSemiJoin([]Point{Pt(11, 11)}); len(pairs) != 1 {
		t.Fatalf("DistanceSemiJoin shim: %v", pairs)
	}
	if nbrs, _, err := db.VisibleKNN(Pt(50, 60), 1); err != nil || len(nbrs) != 1 {
		t.Fatalf("VisibleKNN shim: %v %v", nbrs, err)
	}
	if tr, _, err := db.TrajectoryCONN([]Point{Pt(0, 0), Pt(100, 0), Pt(100, 100)}); err != nil || len(tr.Legs) != 2 {
		t.Fatalf("TrajectoryCONN shim: %v %v", tr, err)
	}
	if nbrs, _, err := db.ObstructedRange(Pt(10, 0), 15); err != nil || len(nbrs) != 1 {
		t.Fatalf("ObstructedRange shim: %v %v", nbrs, err)
	}
	if d := db.ObstructedDist(Pt(0, 0), Pt(3, 4)); math.Abs(d-5) > 1e-9 {
		t.Fatalf("ObstructedDist shim: %v", d)
	}
}
