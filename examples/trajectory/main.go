// Command trajectory demonstrates the paper's §6 future-work extension: a
// CONN query over a multi-leg trajectory (a patrol route with several
// turns), plus obstructed range queries at chosen stops. A security patrol
// walks a polygonal route through a campus; for every stretch of the walk
// we report the nearest emergency phone by actual walking distance, and at
// each waypoint we list every phone within a 150 m walk.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"connquery"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Campus buildings.
	var buildings []connquery.Rect
	blocks := []connquery.Rect{
		connquery.R(100, 100, 260, 220),
		connquery.R(340, 80, 520, 200),
		connquery.R(600, 120, 760, 260),
		connquery.R(150, 320, 320, 470),
		connquery.R(420, 300, 560, 480),
		connquery.R(640, 340, 820, 460),
		connquery.R(120, 560, 300, 700),
		connquery.R(380, 540, 540, 720),
		connquery.R(620, 560, 800, 680),
	}
	buildings = append(buildings, blocks...)

	// Emergency phones along walkways.
	var phones []connquery.Point
	for len(phones) < 14 {
		p := connquery.Pt(80+rng.Float64()*760, 60+rng.Float64()*680)
		free := true
		for _, b := range buildings {
			if b.ContainsOpen(p) {
				free = false
				break
			}
		}
		if free {
			phones = append(phones, p)
		}
	}

	db, err := connquery.Open(phones, buildings)
	if err != nil {
		log.Fatalf("open: %v", err)
	}

	// The patrol route: four legs with three turns, kept on walkways.
	route := []connquery.Point{
		connquery.Pt(60, 60),
		connquery.Pt(60, 740),
		connquery.Pt(860, 740),
		connquery.Pt(860, 60),
		connquery.Pt(60, 60),
	}

	// The multi-leg trajectory is one request; WithWorkers answers the
	// legs concurrently on a bounded pool pinned to one snapshot.
	ctx := context.Background()
	tr, m, err := connquery.Run(ctx, db, connquery.TrajectoryRequest{Waypoints: route}, connquery.WithWorkers(2))
	if err != nil {
		log.Fatalf("trajectory: %v", err)
	}
	fmt.Println("Patrol route: nearest emergency phone per stretch")
	for li, leg := range tr.Legs {
		fmt.Printf("leg %d: %v -> %v\n", li+1, leg.Q.A, leg.Q.B)
		for _, tup := range leg.Tuples {
			if tup.PID == connquery.NoOwner {
				fmt.Printf("    [%.2f, %.2f]: no phone reachable\n", tup.Span.Lo, tup.Span.Hi)
				continue
			}
			fmt.Printf("    [%.2f, %.2f]: phone %d at %v\n", tup.Span.Lo, tup.Span.Hi, tup.PID, tup.P)
		}
	}
	fmt.Printf("total: %d points evaluated, %d obstacles, cost %v\n\n", m.NPE, m.NOE, m.TotalCost())

	fmt.Println("Phones within a 150 m walk of each waypoint:")
	for i, w := range route[:len(route)-1] {
		nbrs, _, err := connquery.Run(ctx, db, connquery.RangeRequest{Center: w, Radius: 150})
		if err != nil {
			log.Fatalf("range: %v", err)
		}
		fmt.Printf("  waypoint %d %v:", i+1, w)
		if len(nbrs) == 0 {
			fmt.Print(" none")
		}
		for _, n := range nbrs {
			fmt.Printf(" phone%d(%.0fm)", n.PID, n.Dist)
		}
		fmt.Println()
	}
}
