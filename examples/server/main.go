// Command server demonstrates the HTTP service end to end, in-process: it
// mounts connquery/server on a loopback listener and then speaks to it the
// way any non-Go client would — JSON over HTTP. The walkthrough executes a
// CONN request, pins a snapshot, opens a live watch stream, commits a
// mutation, and shows the watch delivering the revised answer with its
// owner-change delta while the pinned snapshot keeps answering from the
// frozen epoch. `go run ./examples/server` needs no flags and exits by
// itself; cmd/connserve is the production binary with the same wire
// surface.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/url"

	"connquery"
	"connquery/server"
)

func main() {
	log.SetFlags(0)

	// An ambulance-dispatch scene: two stations, a hospital campus wall
	// between them, and a watched stretch of road.
	db, err := connquery.Open(
		[]connquery.Point{connquery.Pt(10, 40), connquery.Pt(90, 40)},
		[]connquery.Rect{connquery.R(45, 10, 55, 70)},
	)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(server.Config{DB: db})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// 1. Execute a CONN request over the wire.
	conn := `{"kind":"CONN","seg":{"a":{"x":0,"y":0},"b":{"x":100,"y":0}}}`
	var ans server.ExecResponse
	post(base+"/v1/exec", conn, &ans)
	fmt.Printf("\nCONN at epoch %d (NPE=%d NOE=%d |SVG|=%d):\n",
		ans.Epoch, ans.Metrics.NPE, ans.Metrics.NOE, ans.Metrics.SVG)
	printTuples(ans.Result)

	// 2. Pin the current version server-side: the pin survives any number
	// of later mutations (until released or its TTL lapses).
	var snap server.SnapshotResponse
	post(base+"/v1/snapshots", `{}`, &snap)
	fmt.Printf("\npinned snapshot %d at epoch %d\n", snap.ID, snap.Epoch)

	// 3. Open a watch stream (NDJSON; limit:2 = first answer + one delta).
	watchURL := base + "/v1/watch?" + url.Values{"request": {
		`{"kind":"CONN","seg":{"a":{"x":0,"y":0},"b":{"x":100,"y":0}},"limit":2}`,
	}}.Encode()
	resp, err := http.Get(watchURL)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	scanner := bufio.NewScanner(resp.Body)
	readUpdate := func() server.WatchUpdate {
		if !scanner.Scan() {
			log.Fatal("watch stream ended early:", scanner.Err())
		}
		var u server.WatchUpdate
		if err := json.Unmarshal(scanner.Bytes(), &u); err != nil {
			log.Fatal(err)
		}
		return u
	}
	first := readUpdate()
	fmt.Printf("\nwatch: first answer at epoch %d\n", first.Epoch)

	// 4. Commit a mutation: a new station right under the road's left half.
	var mut server.MutateResponse
	post(base+"/v1/points", `{"p":{"x":20,"y":5}}`, &mut)
	fmt.Printf("inserted station pid=%d → epoch %d\n", *mut.PID, mut.Epoch)

	// 5. The watch delivers the revised answer with the changed sub-spans.
	u := readUpdate()
	fmt.Printf("watch: epoch %d, owner changed on %v\n", u.Epoch, u.ChangedSpans)
	printTuples(u.Answer.Result)

	// 6. The pinned snapshot still answers from the frozen epoch.
	var old server.ExecResponse
	post(base+"/v1/exec", fmt.Sprintf(
		`{"kind":"CONN","seg":{"a":{"x":0,"y":0},"b":{"x":100,"y":0}},"snapshot":%d}`, snap.ID), &old)
	fmt.Printf("\npinned exec still sees epoch %d (%d tuples); live is epoch %d\n",
		old.Epoch, len(old.Result.Tuples), mut.Epoch)
}

// post sends a JSON body and decodes the JSON answer, failing loudly.
func post(url, body string, out any) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, buf.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func printTuples(r *server.Result) {
	for _, tup := range r.Tuples {
		fmt.Printf("  t in [%.3f, %.3f] → station %d\n", tup.Span.Lo, tup.Span.Hi, tup.PID)
	}
}
