// Command rescue reproduces the paper's motivating scenario (§1): after a
// disaster, robots have located survivors inside a partially collapsed site
// and mapped the rubble as rectangular obstacles. Emergency personnel plan
// an excavation route and ask, for every position along the route, which
// survivor is nearest by actual travel distance — the obstructed distance —
// so digging teams can be staged where they are closest to someone.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"connquery"
)

func main() {
	rng := rand.New(rand.NewSource(2009))

	// Rubble field: 60 collapsed slabs scattered over a 500 x 500 m site.
	var rubble []connquery.Rect
	for len(rubble) < 60 {
		x, y := rng.Float64()*500, rng.Float64()*500
		w, h := 10+rng.Float64()*50, 10+rng.Float64()*50
		r := connquery.R(x, y, x+w, y+h)
		// Keep a corridor clear for the planned route along y = 250.
		if r.MinY < 265 && r.MaxY > 235 {
			continue
		}
		rubble = append(rubble, r)
	}

	// Survivors detected by the robots (kept out of slab interiors).
	var survivors []connquery.Point
	for len(survivors) < 12 {
		p := connquery.Pt(rng.Float64()*500, rng.Float64()*500)
		inside := false
		for _, r := range rubble {
			if r.ContainsOpen(p) {
				inside = true
				break
			}
		}
		if !inside {
			survivors = append(survivors, p)
		}
	}

	db, err := connquery.Open(survivors, rubble)
	if err != nil {
		log.Fatalf("open: %v", err)
	}

	// The excavation route crosses the site through the cleared corridor.
	route := connquery.Seg(connquery.Pt(0, 250), connquery.Pt(500, 250))

	ctx := context.Background()
	res, m, err := connquery.Run(ctx, db, connquery.CONNRequest{Seg: route})
	if err != nil {
		log.Fatalf("conn: %v", err)
	}

	fmt.Println("Excavation plan: nearest survivor for each stretch of the route")
	for _, tup := range res.Tuples {
		from, to := route.At(tup.Span.Lo), route.At(tup.Span.Hi)
		if tup.PID == connquery.NoOwner {
			fmt.Printf("  %6.1f m .. %6.1f m: no survivor reachable\n",
				tup.Span.Lo*route.Length(), tup.Span.Hi*route.Length())
			continue
		}
		dm, _, _ := connquery.Run(ctx, db, connquery.DistanceRequest{A: route.At(tup.Span.Mid()), B: tup.P})
		fmt.Printf("  %6.1f m .. %6.1f m: survivor %2d at %v (≈%.0f m around rubble from %v..%v)\n",
			tup.Span.Lo*route.Length(), tup.Span.Hi*route.Length(), tup.PID, tup.P, dm, from, to)
	}

	// Staging decision: the three nearest survivors per stretch lets teams
	// pre-position supplies — a COkNN query.
	k3, _, err := connquery.Run(ctx, db, connquery.COkNNRequest{Seg: route, K: 3})
	if err != nil {
		log.Fatalf("coknn: %v", err)
	}
	fmt.Println("\nStaging (3 nearest survivors per stretch):")
	for _, tup := range k3.Tuples {
		ids := make([]int32, len(tup.Owners))
		for i, o := range tup.Owners {
			ids[i] = o.PID
		}
		fmt.Printf("  %6.1f m .. %6.1f m: survivors %v\n",
			tup.Span.Lo*route.Length(), tup.Span.Hi*route.Length(), ids)
	}

	fmt.Printf("\nquery cost %v, evaluated %d survivors and %d rubble slabs (|SVG|=%d)\n",
		m.TotalCost(), m.NPE, m.NOE, m.SVG)
}
