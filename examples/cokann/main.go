// Command cokann demonstrates the COkNN generalization (paper §4.5) on a
// delivery-planning workload: a courier rides a fixed street segment through
// a warehouse district and, to tolerate pickup failures, wants the three
// nearest depots — by travel distance around the buildings — for every point
// of the ride. The example also shows how the k answer sets shrink and the
// query cost grows as k increases (the paper's Figure 10 effect, in
// miniature).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"connquery"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Warehouse district: a loose grid of buildings.
	var buildings []connquery.Rect
	for row := 0; row < 6; row++ {
		for col := 0; col < 6; col++ {
			x := 60 + float64(col)*140 + rng.Float64()*20
			y := 60 + float64(row)*140 + rng.Float64()*20
			w := 60 + rng.Float64()*40
			h := 60 + rng.Float64()*40
			b := connquery.R(x, y, x+w, y+h)
			// Keep the courier's street clear.
			if b.MinY < 420 && b.MaxY > 380 {
				continue
			}
			buildings = append(buildings, b)
		}
	}

	// Depots scattered between the buildings.
	var depots []connquery.Point
	for len(depots) < 20 {
		p := connquery.Pt(rng.Float64()*900, rng.Float64()*900)
		free := true
		for _, b := range buildings {
			if b.ContainsOpen(p) {
				free = false
				break
			}
		}
		if free {
			depots = append(depots, p)
		}
	}

	db, err := connquery.Open(depots, buildings)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	street := connquery.Seg(connquery.Pt(0, 400), connquery.Pt(900, 400))

	ctx := context.Background()
	res, m, err := connquery.Run(ctx, db, connquery.COkNNRequest{Seg: street, K: 3})
	if err != nil {
		log.Fatalf("coknn: %v", err)
	}
	fmt.Println("3 nearest depots (by travel distance) along the street:")
	for _, tup := range res.Tuples {
		ids := make([]int32, len(tup.Owners))
		for i, o := range tup.Owners {
			ids[i] = o.PID
		}
		fmt.Printf("  %5.0f m .. %5.0f m: depots %v\n",
			tup.Span.Lo*street.Length(), tup.Span.Hi*street.Length(), ids)
	}
	fmt.Printf("cost %v  NPE=%d NOE=%d |SVG|=%d\n\n", m.TotalCost(), m.NPE, m.NOE, m.SVG)

	fmt.Println("Scaling with k (the Figure 10 effect):")
	fmt.Println("   k  intervals  NPE  NOE  |SVG|       CPU")
	for _, k := range []int{1, 3, 5, 7, 9} {
		res, m, err := connquery.Run(ctx, db, connquery.COkNNRequest{Seg: street, K: k})
		if err != nil {
			log.Fatalf("coknn k=%d: %v", k, err)
		}
		fmt.Printf("  %2d  %9d  %3d  %3d  %5d  %9v\n",
			k, len(res.Tuples), m.NPE, m.NOE, m.SVG, m.CPU)
	}
}
