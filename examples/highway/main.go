// Command highway recreates the paper's Figure 1: a client drives along a
// stretch of highway and wants the nearest gas station for every point of
// the trip. In Euclidean terms (Figure 1a / the classical CNN query) one set
// of stations wins; once the obstacles between the highway and the stations
// are taken into account (Figure 1b / the CONN query), both the answer
// stations and the split points change.
package main

import (
	"context"
	"fmt"
	"log"

	"connquery"
)

func main() {
	// Six gas stations a..g as in Figure 1 (letters mapped to PIDs).
	names := []string{"a", "b", "c", "d", "f", "g"}
	stations := []connquery.Point{
		connquery.Pt(8, 62),  // a: north-west of the start
		connquery.Pt(30, 45), // b: north, mid-route
		connquery.Pt(92, 48), // c: near the end
		connquery.Pt(14, 20), // d: south-west, Euclidean-closest to the start
		connquery.Pt(48, 85), // f: far north
		connquery.Pt(62, 38), // g: north, past the middle
	}
	// Obstacles o1..o4: buildings/terrain between the highway and stations.
	obstacles := []connquery.Rect{
		connquery.R(6, 24, 24, 29),  // o3: wall shielding d from the highway
		connquery.R(38, 40, 52, 52), // o1
		connquery.R(55, 42, 68, 50), // o2: between g and the road
		connquery.R(70, 52, 84, 62), // o4
	}

	db, err := connquery.Open(stations, obstacles)
	if err != nil {
		log.Fatalf("open: %v", err)
	}

	// The I-95 stretch from S to E.
	ctx := context.Background()
	q := connquery.Seg(connquery.Pt(2, 32), connquery.Pt(98, 34))

	cnn, _, err := connquery.Run(ctx, db, connquery.CNNRequest{Seg: q})
	if err != nil {
		log.Fatalf("cnn: %v", err)
	}
	fmt.Println("CNN (straight-line distances, Figure 1a):")
	printTuples(cnn, names, q)

	conn, m, err := connquery.Run(ctx, db, connquery.CONNRequest{Seg: q})
	if err != nil {
		log.Fatalf("conn: %v", err)
	}
	fmt.Println("\nCONN (travel distances around obstacles, Figure 1b):")
	printTuples(conn, names, q)

	fmt.Printf("\nThe obstructed answer evaluated %d stations and %d obstacles in %v.\n",
		m.NPE, m.NOE, m.CPU)
	fmt.Println("Note how the wall in front of station d shrinks its interval and")
	fmt.Println("moves the split points — exactly the Figure 1 effect.")
}

func printTuples(res *connquery.Result, names []string, q connquery.Segment) {
	for _, tup := range res.Tuples {
		name := "-"
		if tup.PID != connquery.NoOwner {
			name = names[tup.PID]
		}
		fmt.Printf("  station %s serves the stretch from %v to %v (t ∈ [%.3f, %.3f])\n",
			name, q.At(tup.Span.Lo), q.At(tup.Span.Hi), tup.Span.Lo, tup.Span.Hi)
	}
}
