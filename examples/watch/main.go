// Command watch demonstrates the live side of the paper's continuous
// queries: a dispatcher watches "nearest ambulance for every point of the
// highway" while the fleet and the road situation keep changing. DB.Watch
// subscribes a CONNRequest to the database's MVCC version chain — every
// committed mutation re-executes the query against the freshly published
// snapshot and delivers the revised answer, its epoch, and exactly which
// stretches of the highway changed hands.
package main

import (
	"context"
	"fmt"
	"log"

	"connquery"
)

func main() {
	// Three ambulances on call and one hospital campus in the way.
	ambulances := []connquery.Point{
		connquery.Pt(10, 70), // 0: north-west
		connquery.Pt(50, 15), // 1: south, mid-route
		connquery.Pt(90, 65), // 2: north-east
	}
	campus := []connquery.Rect{connquery.R(40, 45, 60, 70)}
	db, err := connquery.Open(ambulances, campus)
	if err != nil {
		log.Fatalf("open: %v", err)
	}

	// The watched route: the highway along y = 40.
	highway := connquery.Seg(connquery.Pt(0, 40), connquery.Pt(100, 40))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	updates, err := db.Watch(ctx, connquery.CONNRequest{Seg: highway})
	if err != nil {
		log.Fatalf("watch: %v", err)
	}

	// The fleet evolves: a new ambulance comes on call near the middle,
	// a road closure appears, and the north-west unit goes off duty.
	mutate := []func() string{
		func() string {
			pid, err := db.InsertPoint(connquery.Pt(52, 38))
			if err != nil {
				log.Fatalf("insert: %v", err)
			}
			return fmt.Sprintf("ambulance %d comes on call at (52, 38)", pid)
		},
		func() string {
			if _, err := db.InsertObstacle(connquery.R(20, 35, 30, 60)); err != nil {
				log.Fatalf("insert obstacle: %v", err)
			}
			return "road closure between the highway and the north-west unit"
		},
		func() string {
			db.DeletePoint(0)
			return "ambulance 0 goes off duty"
		},
	}

	// Drain one update per mutation. Reading the channel between mutations
	// makes the demo deterministic; under bursty writers, intermediate
	// epochs coalesce and only the freshest answer is delivered.
	report := func(what string) {
		u := <-updates
		if u.Err != nil {
			log.Fatalf("watch update: %v", u.Err)
		}
		fmt.Printf("— %s (epoch %d)\n", what, u.Epoch)
		for _, tup := range u.Answer.Result().Tuples {
			owner := "unreachable"
			if tup.PID != connquery.NoOwner {
				owner = fmt.Sprintf("ambulance %d", tup.PID)
			}
			fmt.Printf("    %5.1f .. %5.1f: %s\n",
				tup.Span.Lo*highway.Length(), tup.Span.Hi*highway.Length(), owner)
		}
		if len(u.Delta.ChangedSpans) == 0 {
			fmt.Println("    (assignment unchanged)")
			return
		}
		for _, sp := range u.Delta.ChangedSpans {
			fmt.Printf("    changed hands: %5.1f .. %5.1f\n",
				sp.Lo*highway.Length(), sp.Hi*highway.Length())
		}
	}

	report("initial assignment")
	for _, m := range mutate {
		report(m())
	}
}
