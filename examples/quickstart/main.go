// Command quickstart is the minimal end-to-end CONN example: a handful of
// points, one obstacle, one query segment, and a printout of the answer
// intervals with their split points.
package main

import (
	"context"
	"fmt"
	"log"

	"connquery"
)

func main() {
	// Five facilities and one rectangular building between them.
	points := []connquery.Point{
		connquery.Pt(10, 40), // 0
		connquery.Pt(35, 75), // 1
		connquery.Pt(55, 20), // 2
		connquery.Pt(80, 70), // 3
		connquery.Pt(95, 30), // 4
	}
	obstacles := []connquery.Rect{
		connquery.R(45, 25, 65, 45), // a building between the route and point 2
	}

	db, err := connquery.Open(points, obstacles)
	if err != nil {
		log.Fatalf("open: %v", err)
	}

	// The client moves left to right along y = 50. Every query is a
	// request value answered by Exec (Run is its statically typed helper).
	ctx := context.Background()
	q := connquery.Seg(connquery.Pt(0, 50), connquery.Pt(100, 50))
	res, metrics, err := connquery.Run(ctx, db, connquery.CONNRequest{Seg: q})
	if err != nil {
		log.Fatalf("query: %v", err)
	}

	fmt.Println("CONN result along", q)
	for _, tup := range res.Tuples {
		from, to := q.At(tup.Span.Lo), q.At(tup.Span.Hi)
		if tup.PID == connquery.NoOwner {
			fmt.Printf("  %v .. %v: unreachable\n", from, to)
			continue
		}
		fmt.Printf("  %v .. %v: nearest is point %d at %v\n", from, to, tup.PID, tup.P)
	}
	fmt.Println("split points at t =", res.SplitPoints())
	fmt.Printf("cost: %v (NPE=%d NOE=%d |SVG|=%d)\n",
		metrics.TotalCost(), metrics.NPE, metrics.NOE, metrics.SVG)

	// A terminal sketch of the scene: '#' building, digits are points,
	// 'S---|---E' is the route with its split points.
	fmt.Println()
	fmt.Print(db.RenderScene(q, res, 64, 18))

	// Contrast with the Euclidean answer: the building changes the winner
	// in the middle of the route.
	cnn, _, err := connquery.Run(ctx, db, connquery.CNNRequest{Seg: q})
	if err != nil {
		log.Fatalf("cnn: %v", err)
	}
	fmt.Println("\nEuclidean CNN (obstacles ignored) for comparison:")
	for _, tup := range cnn.Tuples {
		fmt.Printf("  t in [%.3f, %.3f]: point %d\n", tup.Span.Lo, tup.Span.Hi, tup.PID)
	}
}
