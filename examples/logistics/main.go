// Command logistics exercises the obstructed join family (Zhang et al.,
// EDBT 2004 — the query toolbox the paper's §2.3 builds on) on a
// warehouse-assignment workload: trucks parked around a fenced industrial
// estate must be matched to loading docks by actual driving distance around
// the fenced lots, not by straight-line proximity.
package main

import (
	"context"
	"fmt"
	"log"

	"connquery"
)

func main() {
	// Loading docks (the data set P).
	docks := []connquery.Point{
		connquery.Pt(150, 140), // 0
		connquery.Pt(420, 120), // 1
		connquery.Pt(690, 160), // 2
		connquery.Pt(180, 420), // 3
		connquery.Pt(460, 450), // 4
		connquery.Pt(720, 430), // 5
	}
	// Fenced lots (obstacles) between the access roads and the docks.
	lots := []connquery.Rect{
		connquery.R(100, 180, 260, 380),
		connquery.R(360, 170, 520, 400),
		connquery.R(620, 200, 790, 390),
	}
	db, err := connquery.Open(docks, lots)
	if err != nil {
		log.Fatalf("open: %v", err)
	}

	// Trucks waiting on the perimeter road.
	trucks := []connquery.Point{
		connquery.Pt(80, 280),  // west side, fenced off from dock 3
		connquery.Pt(310, 280), // in the corridor between two lots
		connquery.Pt(800, 280), // east side
	}

	ctx := context.Background()
	fmt.Println("Truck-to-dock assignment (obstructed distance semi-join):")
	pairs, _, err := connquery.Run(ctx, db, connquery.DistanceSemiJoinRequest{Queries: trucks})
	if err != nil {
		log.Fatalf("semi-join: %v", err)
	}
	for _, pr := range pairs {
		fmt.Printf("  truck %d -> dock %d, %.0f m of driving\n", pr.QIdx, pr.PID, pr.Dist)
	}

	best, _, err := connquery.Run(ctx, db, connquery.ClosestPairRequest{Queries: trucks})
	if err != nil {
		log.Fatalf("closest pair: %v", err)
	}
	fmt.Printf("\nFastest single dispatch: truck %d to dock %d (%.0f m)\n",
		best.QIdx, best.PID, best.Dist)

	fmt.Println("\nDocks within 400 m of driving per truck (e-distance join):")
	joined, _, err := connquery.Run(ctx, db, connquery.EDistanceJoinRequest{Queries: trucks, E: 400})
	if err != nil {
		log.Fatalf("join: %v", err)
	}
	for _, pr := range joined {
		fmt.Printf("  truck %d can reach dock %d in %.0f m\n", pr.QIdx, pr.PID, pr.Dist)
	}

	// Line-of-sight check: which docks can the dispatcher at the gate
	// actually see (obstacles occlude rather than detour)?
	gate := connquery.Pt(440, 30)
	visible, _, err := connquery.Run(ctx, db, connquery.VisibleKNNRequest{P: gate, K: 3})
	if err != nil {
		log.Fatalf("vknn: %v", err)
	}
	fmt.Printf("\nDocks visible from the gate %v, nearest first:\n", gate)
	for _, n := range visible {
		fmt.Printf("  dock %d at %v (%.0f m line of sight)\n", n.PID, n.P, n.Dist)
	}
}
