package connquery

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"connquery/internal/anscache"
	"connquery/internal/geom"
)

// The router read path. Every request seeds on the cells its own geometry
// touches and executes on the smallest world that provably contains
// everything the global execution would consult; the proof obligation is
// discharged a posteriori through Metrics.Reach, the engine's retrieval
// footprint radius. See sharded.go for the architecture overview and
// ARCHITECTURE.md for the acceptance-soundness sketch.

// seedBox returns the initial footprint guess for routing: the request's
// base box inflated by any radius the request itself declares. Purely a
// round-count optimization — the acceptance loop is what guarantees
// correctness.
func seedBox(req Request) geom.Rect {
	bb := requestBaseBox(req)
	if bb.Empty() {
		return bb
	}
	switch r := req.(type) {
	case RangeRequest:
		bb = bb.Buffer(r.Radius)
	case EDistanceJoinRequest:
		if r.E > 0 {
			bb = bb.Buffer(r.E)
		}
	}
	return bb
}

// Exec executes a Request against one consistent cross-shard cut and
// returns its Answer, bit-identical — payload, epoch and the
// machine-independent NPE/NOE/|SVG|/Reach metrics — to DB.Exec over the
// same data and mutation history. The cut is the live revision unless
// AtVersion or a ShardedSnapshot's At pins another; plain AtSnapshot
// handles belong to a DB and are rejected with ErrForeignSnapshot.
func (s *ShardedDB) Exec(ctx context.Context, req Request, opts ...QueryOption) (*Answer, error) {
	if req == nil {
		return nil, ErrNilRequest
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var xo execOptions
	for _, o := range opts {
		o(&xo)
	}
	cut, err := s.resolveCut(&xo)
	if err != nil {
		return nil, err
	}
	ans, _, err := s.execRouted(ctx, req, &xo, cut)
	if err != nil {
		return nil, err
	}
	if xo.byEpoch && ans.Epoch() != xo.epoch {
		// AtVersion resolved to the live cut, but a commit overtook the
		// requested revision before the shard state could be captured; with
		// no pin holding the older state, the verdict is the same one cutAt
		// gives for any other unpinned revision.
		return nil, fmt.Errorf("%w: epoch %d (current %d; pin versions with ShardedDB.Snapshot)", ErrVersionNotPinned, xo.epoch, ans.Epoch())
	}
	return ans, nil
}

// resolveCut picks the router cut the query runs against, mirroring
// DB.resolveVersion's error cases.
func (s *ShardedDB) resolveCut(xo *execOptions) (routerCut, error) {
	switch {
	case xo.bySnap:
		if xo.snap == nil {
			return routerCut{}, errors.New("connquery: AtSnapshot(nil)")
		}
		return routerCut{}, ErrForeignSnapshot
	case xo.bySSnap:
		sp := xo.ssnap
		if sp == nil {
			return routerCut{}, errors.New("connquery: AtSnapshot(nil)")
		}
		if sp.s != s {
			return routerCut{}, ErrForeignSnapshot
		}
		if sp.Released() {
			return routerCut{}, ErrSnapshotReleased
		}
		return routerCut{rev: sp.rev, logLen: sp.logLen, pin: sp}, nil
	case xo.byEpoch:
		return s.cutAt(xo.epoch)
	default:
		return s.liveCut(), nil
	}
}

// cutAt resolves an explicit revision: the live one, or one held by an
// unreleased ShardedSnapshot.
func (s *ShardedDB) cutAt(epoch uint64) (routerCut, error) {
	cut := s.liveCut()
	if epoch == cut.rev {
		return cut, nil
	}
	s.pinMu.Lock()
	var sp *ShardedSnapshot
	for p := range s.pins[epoch] {
		sp = p
		break
	}
	s.pinMu.Unlock()
	if sp == nil {
		return routerCut{}, fmt.Errorf("%w: epoch %d (current %d; pin versions with ShardedDB.Snapshot)", ErrVersionNotPinned, epoch, cut.rev)
	}
	return routerCut{rev: sp.rev, logLen: sp.logLen, pin: sp}, nil
}

// execRouted runs the scatter-gather loop at a cut and returns the
// translated answer plus its wake region (the retrieval footprint with the
// request's mutation-kind sensitivity), which the sharded watch uses to
// skip wakeups that provably cannot change the answer. Pinned and
// mirror-backed reads run exactly at the given cut; a live single-shard
// read may slide the cut forward when a commit on the target shard
// overtook it (spanWorld), so the answer's stamped epoch — which always
// matches the data it reflects — can exceed the requested cut.rev.
func (s *ShardedDB) execRouted(ctx context.Context, req Request, xo *execOptions, cut routerCut) (*Answer, anscache.Region, error) {
	span := s.m.spanFor(seedBox(req))
	base := requestBaseBox(req)
	s.routerExecs.Add(1)
	s.broadcastCost.Add(int64(s.m.numShards()))
	// The inner options forward tuning/workers/cache choices but never the
	// pin: the executing world's version is supplied explicitly.
	inner := &execOptions{tuning: xo.tuning, workers: xo.workers, hasWork: xo.hasWork, noCache: xo.noCache}
	for {
		s.shardExecs.Add(int64(span.size()))
		if span.single() {
			s.directExecs.Add(1)
		}
		if span.size() == s.m.numShards() {
			s.fullFanouts.Add(1)
		}
		var db *DB
		var v *version
		var l2g []int32
		var err error
		db, v, l2g, cut, err = s.spanWorld(cut, span)
		if err != nil {
			return nil, anscache.Region{}, err
		}
		ans, err := db.execAt(ctx, req, v, inner)
		if err != nil {
			return nil, anscache.Region{}, err
		}
		// The acceptance test: inflate the base box by the reach this
		// execution reports and check the result still resolves to the same
		// cell block. On acceptance the block's union world contains every
		// object within reach of the query geometry — exactly the set the
		// global execution can consult (the coverage bound behind the answer
		// cache's widened impact regions) — so the trace is the global trace.
		needBox := base
		if !needBox.Empty() {
			if reach := ans.Metrics().Reach; math.IsInf(reach, 1) {
				needBox = anscache.InfiniteRect()
			} else {
				needBox = needBox.Buffer(reach + shardGuard)
			}
		}
		next := span
		if !needBox.Empty() {
			next = span.union(s.m.spanFor(needBox))
		}
		if next == span {
			// The wake region for sharded watches: the same widened impact
			// region the answer cache proves sufficient for invalidation, so
			// a mutation outside it cannot change this answer.
			region := widenRegion(impactRegion(req, ans.value), req, ans.metrics.Reach)
			return translatedAnswer(ans, req, l2g, cut.rev), region, nil
		}
		span = next
		s.expansions.Add(1)
	}
}

// spanWorld returns the executable world of a cell block at a cut: a DB
// whose current/pinned version holds exactly the block's sub-world, plus
// the local-to-global PID table for answer translation, plus the cut the
// world actually sits at. Pinned and mirror-backed worlds sit exactly at
// the given cut. A live single-shard read captures the shard's committed
// head, which a concurrent writer may have pushed past the cut; in that
// case the returned cut slides forward to the captured position so the
// stamped revision and the executed data always agree.
func (s *ShardedDB) spanWorld(cut routerCut, span cellSpan) (*DB, *version, []int32, routerCut, error) {
	if span.single() {
		idx := span.r0*s.m.cols + span.c0
		sh := s.shards[idx]
		sh.execs.Add(1)
		if cut.pin != nil {
			return sh.db, cut.pin.snaps[idx].v, s.shardL2GP(sh), cut, nil
		}
		// Live read: capture the shard's committed state together with the
		// router position it belongs to. The writer applies to the shard DB
		// before its sequencer section, so the DB head can briefly be ahead
		// of the last commit (and of the l2g table); a head whose epoch
		// disagrees with the shard's committed epoch is mid-commit — retry
		// until apply and commit agree. On agreement the captured version is
		// the shard's exact state for every router revision in
		// [committedRev, rev], and the l2g table covers it.
		for {
			s.seqMu.RLock()
			ce, cr := sh.committedEpoch, sh.committedRev
			l2g := sh.l2gP
			rev, logLen := s.rev.Load(), len(s.log)
			s.seqMu.RUnlock()
			v := sh.db.current()
			if v.epoch != ce {
				runtime.Gosched()
				continue
			}
			if cut.rev >= cr {
				// The cut falls inside [cr, rev]: v is the shard's state at
				// cut.rev exactly, so the original stamp stands.
				return sh.db, v, l2g, cut, nil
			}
			// A commit on this shard overtook the cut before the capture and
			// the older state holds no pin; slide the cut to the consistent
			// position read above.
			return sh.db, v, l2g, routerCut{rev: rev, logLen: logLen}, nil
		}
	}
	if cut.pin != nil {
		db, v, l2g, err := cut.pin.unionWorld(span)
		return db, v, l2g, cut, err
	}
	db, v, l2g, err := s.mirrorWorld(cut, span)
	return db, v, l2g, cut, err
}

// shardL2GP snapshots a shard's local-to-global point table.
func (s *ShardedDB) shardL2GP(sh *shardUnit) []int32 {
	s.seqMu.RLock()
	defer s.seqMu.RUnlock()
	return sh.l2gP
}

// ---------------------------------------------------------------------------
// Union mirrors

// unionMirror is the live union world of a multi-cell block: a DB over the
// block's points and obstacles, maintained by replaying the router log
// (filtered to the block) on demand. Because replay order is global ID
// order, the mirror's local IDs are order-isomorphic to global IDs, which
// keeps the engine's (distance, kind, ID) tie-breaks — and therefore the
// full retrieval trace — identical to the single node's.
type unionMirror struct {
	mu      sync.Mutex
	span    cellSpan
	rect    geom.Rect
	db      *DB // nil until first use
	nextLog int
	g2lP    map[int32]int32
	g2lO    map[int32]int32
	l2gP    []int32

	lastUse uint64 // registry LRU clock (guarded by ShardedDB.mirMu)
	retired bool   // LRU-evicted; counters already folded into retiredCache (guarded by mu)
}

// mirrorFor returns (creating if needed) the mirror registry entry of a
// block; the expensive build happens lazily under the mirror's own lock.
// The registry is LRU-bounded (mirCap): each mirror carries a full copy of
// its block's data plus an answer cache, and the possible spans are
// quadratic in the grid size, so admitting a new span may evict the
// longest-idle one. Eviction loses only work — the span's next query
// rebuilds the mirror from the log — never answers.
func (s *ShardedDB) mirrorFor(span cellSpan) *unionMirror {
	s.mirMu.Lock()
	defer s.mirMu.Unlock()
	m, ok := s.mirrors[span]
	if !ok {
		m = &unionMirror{span: span, rect: s.m.spanRect(span)}
		s.mirrors[span] = m
		s.evictMirrors(m)
	}
	s.mirSeq++
	m.lastUse = s.mirSeq
	return m
}

// evictMirrors drops least-recently-used mirrors until the registry fits
// mirCap again, sparing keep and any mirror whose lock is contended (a
// held lock means a build or catch-up is in flight — de facto hot, and
// folding its counters would block behind it). Counters of the evicted
// accumulate in retiredCache so CacheStats stays cumulative. Caller holds
// mirMu.
func (s *ShardedDB) evictMirrors(keep *unionMirror) {
	if len(s.mirrors) <= s.mirCap {
		return
	}
	type cand struct {
		span cellSpan
		m    *unionMirror
	}
	cands := make([]cand, 0, len(s.mirrors))
	for span, m := range s.mirrors {
		if m != keep {
			cands = append(cands, cand{span, m})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].m.lastUse < cands[j].m.lastUse })
	for _, c := range cands {
		if len(s.mirrors) <= s.mirCap {
			return
		}
		if !c.m.mu.TryLock() {
			continue
		}
		if c.m.db != nil {
			addCacheStats(&s.retiredCache, c.m.db.CacheStats())
			addPlannerStats(&s.retiredPlanner, c.m.db.PlannerStats())
		}
		c.m.retired = true
		c.m.mu.Unlock()
		delete(s.mirrors, c.span)
		s.mirEvictions.Add(1)
	}
}

// mirrorWorld builds/catches up the block's mirror to the cut and captures
// an executable (version, l2g) pair under the mirror lock.
func (s *ShardedDB) mirrorWorld(cut routerCut, span cellSpan) (*DB, *version, []int32, error) {
	m := s.mirrorFor(span)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.db == nil {
		if err := s.buildMirror(m); err != nil {
			return nil, nil, nil, err
		}
	}
	if err := s.catchUpMirror(m, cut.logLen); err != nil {
		return nil, nil, nil, err
	}
	return m.db, m.db.current(), m.l2gP, nil
}

// buildMirror opens the mirror DB over the block's slice of the *initial*
// dataset (global IDs 0..nInit-1 in order); catchUpMirror replays the rest.
func (s *ShardedDB) buildMirror(m *unionMirror) error {
	s.seqMu.RLock()
	initPts := s.p2s[:s.nInitPts]
	initObs := s.o2s[:s.nInitObs]
	s.seqMu.RUnlock()

	m.g2lP = make(map[int32]int32)
	m.g2lO = make(map[int32]int32)
	var pts []Point
	var l2gP []int32
	for gid := range initPts {
		// Initial-range objects dead at a recovered checkpoint never appear
		// in the replay log; including them here would resurrect them (and a
		// dead point may even sit inside a younger obstacle, which Open
		// rejects).
		if s.initDeadPts[int32(gid)] {
			continue
		}
		p := initPts[gid].p
		if c, r := s.m.cellCoords(p); m.span.contains(c, r) {
			m.g2lP[int32(gid)] = int32(len(pts))
			l2gP = append(l2gP, int32(gid))
			pts = append(pts, p)
		}
	}
	var obs []Rect
	for gid := range initObs {
		if s.initDeadObs[int32(gid)] {
			continue
		}
		if o := initObs[gid].r; o.Intersects(m.rect) {
			m.g2lO[int32(gid)] = int32(len(obs))
			obs = append(obs, o)
		}
	}
	db, err := openSubWorld(pts, obs, s.dummy, s.opts)
	if err != nil {
		return err
	}
	if len(pts) == 0 {
		l2gP = append([]int32{-1}, l2gP...)
	}
	m.db = db
	m.l2gP = l2gP
	return nil
}

// catchUpMirror replays router log entries [nextLog, upTo) filtered to the
// mirror's block. Replayed mutations cannot fail: the global commit already
// validated them on worlds that contain the mirror's.
func (s *ShardedDB) catchUpMirror(m *unionMirror, upTo int) error {
	if m.nextLog >= upTo {
		return nil
	}
	s.seqMu.RLock()
	log := s.log
	s.seqMu.RUnlock()
	if upTo > len(log) {
		upTo = len(log)
	}
	for m.nextLog < upTo {
		e := log[m.nextLog]
		m.nextLog++
		switch e.op {
		case opInsPt:
			if c, r := s.m.cellCoords(e.p); m.span.contains(c, r) {
				lid, err := m.db.InsertPoint(e.p)
				if err != nil {
					return errors.New("connquery: internal: mirror point replay diverged: " + err.Error())
				}
				m.g2lP[e.gid] = lid
				m.l2gP = append(m.l2gP, e.gid)
			}
		case opDelPt:
			if lid, ok := m.g2lP[e.gid]; ok {
				m.db.DeletePoint(lid)
			}
		case opInsObs:
			if e.r.Intersects(m.rect) {
				lid, err := m.db.InsertObstacle(e.r)
				if err != nil {
					return errors.New("connquery: internal: mirror obstacle replay diverged: " + err.Error())
				}
				m.g2lO[e.gid] = lid
			}
		case opDelObs:
			if lid, ok := m.g2lO[e.gid]; ok {
				m.db.DeleteObstacle(lid)
			}
		}
	}
	return nil
}

// cellCoords returns the grid coordinates of p's owning cell.
func (m *shardMap) cellCoords(p Point) (c, r int) {
	i := m.cellOf(p)
	return i % m.cols, i / m.cols
}

// ---------------------------------------------------------------------------
// Answer translation

// translatedAnswer rebuilds an executed answer with local payload PIDs
// mapped to global ones and the epoch restamped to the router revision.
// Payloads are freshly allocated — the originals may live in a shard or
// mirror answer cache and must stay untouched. Metrics pass through
// unchanged: the union world's trace is the global trace.
func translatedAnswer(ans *Answer, req Request, l2g []int32, rev uint64) *Answer {
	return &Answer{
		req:     req,
		epoch:   rev,
		value:   translateValue(ans.value, l2g),
		metrics: ans.metrics,
		items:   ans.items,
		cached:  ans.cached,
	}
}

func mapPID(pid int32, l2g []int32) int32 {
	if pid < 0 {
		return pid // NoOwner
	}
	return l2g[pid]
}

func translateResult(r *Result, l2g []int32) *Result {
	if r == nil {
		return nil
	}
	out := &Result{Q: r.Q, MaxDist: r.MaxDist, Tuples: make([]Tuple, len(r.Tuples))}
	for i, t := range r.Tuples {
		t.PID = mapPID(t.PID, l2g)
		out.Tuples[i] = t
	}
	return out
}

// translateValue maps every PID in a payload through l2g, building new
// values throughout. Obstacle IDs never appear in payloads, so point
// translation is the whole job.
func translateValue(v any, l2g []int32) any {
	switch x := v.(type) {
	case *Result:
		return translateResult(x, l2g)
	case *KResult:
		out := &KResult{Q: x.Q, K: x.K, MaxDist: x.MaxDist, Tuples: make([]KTuple, len(x.Tuples))}
		for i, t := range x.Tuples {
			owners := make([]Owner, len(t.Owners))
			for j, o := range t.Owners {
				o.PID = mapPID(o.PID, l2g)
				owners[j] = o
			}
			out.Tuples[i] = KTuple{Span: t.Span, Owners: owners}
		}
		return out
	case []Neighbor:
		out := make([]Neighbor, len(x))
		for i, n := range x {
			n.PID = mapPID(n.PID, l2g)
			out[i] = n
		}
		return out
	case []JoinPair:
		out := make([]JoinPair, len(x))
		for i, p := range x {
			p.PID = mapPID(p.PID, l2g)
			out[i] = p
		}
		return out
	case JoinPair:
		x.PID = mapPID(x.PID, l2g)
		return x
	case *TrajectoryResult:
		out := &TrajectoryResult{Waypoints: x.Waypoints, Legs: make([]*Result, len(x.Legs))}
		for i, leg := range x.Legs {
			out.Legs[i] = translateResult(leg, l2g)
		}
		return out
	case []*Result:
		out := make([]*Result, len(x))
		for i, r := range x {
			out[i] = translateResult(r, l2g)
		}
		return out
	}
	return v // float64 (DistanceRequest): no PIDs
}
