package connquery

// Benchmarks regenerating the paper's evaluation, one per table/figure.
// Each benchmark iteration executes one full COkNN query (or the figure's
// specific variant) over the paper's workload at a reduced dataset scale so
// `go test -bench=.` completes on a laptop; `cmd/connbench` runs the same
// sweeps at arbitrary scale with tabular output, and its -json mode tracks
// the hot path's trajectory in BENCH_*.json (BENCH_baseline.json pins the
// pre-optimization numbers — see README.md).

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"connquery/internal/bench"
	"connquery/internal/core"
	"connquery/internal/dataset"
	"connquery/internal/geom"
)

// benchScale keeps `go test -bench` runs tractable. connbench defaults to
// 0.1 and supports 1.0 (the paper's cardinalities).
const benchScale = 0.02

var workloadCache = map[string]bench.Workload{}

func workload(name string, ratio float64) bench.Workload {
	key := fmt.Sprintf("%s/%g", name, ratio)
	w, ok := workloadCache[key]
	if !ok {
		w = bench.BuildWorkload(name, benchScale, ratio, 2009)
		workloadCache[key] = w
	}
	return w
}

func runQueries(b *testing.B, w bench.Workload, cfg bench.RunConfig) {
	b.Helper()
	cfg.Queries = 1
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		bench.Run(w, cfg)
	}
}

// BenchmarkTable2Defaults runs the paper's default parameter cell
// (CL, k = 5, ql = 4.5%, |P|/|O| = 1, no buffer) — Table 2's bold entries.
func BenchmarkTable2Defaults(b *testing.B) {
	runQueries(b, workload("CL", 1), bench.RunConfig{QL: 0.045, K: 5})
}

// BenchmarkFig09_QueryLength sweeps ql on CL with k = 5 (Figure 9a/9b).
func BenchmarkFig09_QueryLength(b *testing.B) {
	for _, ql := range bench.QLGrid {
		b.Run(fmt.Sprintf("ql=%.1f%%", ql*100), func(b *testing.B) {
			runQueries(b, workload("CL", 1), bench.RunConfig{QL: ql, K: 5})
		})
	}
}

// BenchmarkFig10_K sweeps k on CL with ql = 4.5% (Figure 10a/10b).
func BenchmarkFig10_K(b *testing.B) {
	for _, k := range bench.KGrid {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			runQueries(b, workload("CL", 1), bench.RunConfig{QL: 0.045, K: k})
		})
	}
}

// BenchmarkFig11_Ratio sweeps |P|/|O| on UL and ZL (Figure 11a-d).
func BenchmarkFig11_Ratio(b *testing.B) {
	for _, name := range []string{"UL", "ZL"} {
		for _, ratio := range bench.RatioGrid {
			b.Run(fmt.Sprintf("%s/ratio=%g", name, ratio), func(b *testing.B) {
				runQueries(b, workload(name, ratio), bench.RunConfig{QL: 0.045, K: 5})
			})
		}
	}
}

// BenchmarkFig12_Buffer sweeps the LRU buffer size on CL and UL
// (Figure 12a-d).
func BenchmarkFig12_Buffer(b *testing.B) {
	for _, name := range []string{"CL", "UL"} {
		for _, bs := range append([]float64{0}, bench.BufferGrid...) {
			b.Run(fmt.Sprintf("%s/bs=%.0f%%", name, bs*100), func(b *testing.B) {
				runQueries(b, workload(name, 1), bench.RunConfig{QL: 0.045, K: 5, BufferFrac: bs, WarmUp: 2})
			})
		}
	}
}

// BenchmarkFig13_OneVsTwoTrees compares the unified-tree variant with the
// default two-tree configuration (Figure 13a-f).
func BenchmarkFig13_OneVsTwoTrees(b *testing.B) {
	for _, mode := range []struct {
		name    string
		oneTree bool
	}{{"2T", false}, {"1T", true}} {
		for _, name := range []string{"CL", "UL"} {
			b.Run(fmt.Sprintf("%s/%s", mode.name, name), func(b *testing.B) {
				runQueries(b, workload(name, 1), bench.RunConfig{QL: 0.045, K: 5, OneTree: mode.oneTree})
			})
		}
	}
}

// Ablation benches (DESIGN.md §7): each design choice against its disabled
// variant on the default cell.
func benchAblation(b *testing.B, tuning core.Options) {
	runQueries(b, workload("CL", 1), bench.RunConfig{QL: 0.045, K: 5, Tuning: tuning})
}

func BenchmarkAblationLemma1(b *testing.B) {
	b.Run("on", func(b *testing.B) { benchAblation(b, core.Options{}) })
	b.Run("off", func(b *testing.B) { benchAblation(b, core.Options{DisableLemma1: true}) })
}

func BenchmarkAblationLemma7(b *testing.B) {
	b.Run("on", func(b *testing.B) { benchAblation(b, core.Options{}) })
	b.Run("off", func(b *testing.B) { benchAblation(b, core.Options{DisableLemma7: true}) })
}

func BenchmarkAblationVGReuse(b *testing.B) {
	b.Run("on", func(b *testing.B) { benchAblation(b, core.Options{}) })
	b.Run("off", func(b *testing.B) { benchAblation(b, core.Options{DisableVGReuse: true}) })
}

func BenchmarkAblationSolver(b *testing.B) {
	b.Run("quadratic", func(b *testing.B) { benchAblation(b, core.Options{}) })
	b.Run("bisection", func(b *testing.B) { benchAblation(b, core.Options{UseBisectionSolver: true}) })
}

// BenchmarkPublicAPI_CONN measures a single CONN query end to end through
// the public API on a mid-size database.
func BenchmarkPublicAPI_CONN(b *testing.B) {
	w := workload("CL", 1)
	db, err := Open(w.Points, w.Obstacles, WithAnswerCache(0)) // measure the execution path, not cache hits
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	queries := make([]Segment, 64)
	for i := range queries {
		queries[i] = dataset.QuerySegment(rng, 0.045, w.Obstacles)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(ctx, db, CONNRequest{Seg: queries[i%len(queries)]}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCONNBatch measures the parallel batch API at several worker
// counts over a fixed query set; near-linear scaling to 4 workers is the
// target on the Table 2 default workload.
func BenchmarkCONNBatch(b *testing.B) {
	w := workload("CL", 1)
	db, err := Open(w.Points, w.Obstacles, WithAnswerCache(0)) // measure the execution path, not cache hits
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	queries := make([]Segment, 32)
	for i := range queries {
		queries[i] = dataset.QuerySegment(rng, 0.045, w.Obstacles)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				if _, err := db.Exec(ctx, CONNBatchRequest{Segs: queries}, WithWorkers(workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestDefaultCellQueryAllocBudget is the allocation guardrail for the query
// hot path: a warm default-cell CONN query must stay within budget. The
// steady state with the flat-geometry kernel is ~850 allocations (down from
// ~1.4k pre-kernel); the budget leaves slack for workload drift while still
// catching a regression to either earlier profile.
func TestDefaultCellQueryAllocBudget(t *testing.T) {
	const budget = 1000
	w := workload("CL", 1)
	db, err := Open(w.Points, w.Obstacles, WithAnswerCache(0)) // measure the execution path, not cache hits
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	queries := make([]Segment, 8)
	for i := range queries {
		queries[i] = dataset.QuerySegment(rng, 0.045, w.Obstacles)
	}
	ctx := context.Background()
	for _, q := range queries { // warm the engine's pooled query state
		if _, _, err := Run(ctx, db, CONNRequest{Seg: q}); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(20, func() {
		db.Exec(ctx, CONNRequest{Seg: queries[i%len(queries)]})
		i++
	})
	t.Logf("warm default-cell CONN query: %.0f allocs (budget %d)", avg, budget)
	if avg > budget {
		t.Errorf("warm default-cell CONN query: %.0f allocs, budget %d", avg, budget)
	}
}

// BenchmarkObstructedDist measures pairwise obstructed-distance computation
// via incremental obstacle retrieval.
func BenchmarkObstructedDist(b *testing.B) {
	w := workload("CL", 1)
	db, err := Open(w.Points, w.Obstacles, WithAnswerCache(0)) // measure the execution path, not cache hits
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	pairs := make([][2]geom.Point, 64)
	for i := range pairs {
		pairs[i] = [2]geom.Point{
			geom.Pt(rng.Float64()*dataset.Side, rng.Float64()*dataset.Side),
			geom.Pt(rng.Float64()*dataset.Side, rng.Float64()*dataset.Side),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		runDist(db, p[0], p[1])
	}
}

// BenchmarkNaiveVsCONN contrasts the exact single-pass CONN algorithm with
// the §1 naive sampling baseline at equal answer quality (the baseline needs
// many ONN probes to even approximate the split points).
func BenchmarkNaiveVsCONN(b *testing.B) {
	w := workload("CL", 1)
	db, err := Open(w.Points, w.Obstacles, WithAnswerCache(0)) // measure the execution path, not cache hits
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	q := dataset.QuerySegment(rng, 0.015, w.Obstacles)
	ctx := context.Background()
	b.Run("CONN", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Run(ctx, db, CONNRequest{Seg: q}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Naive64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Run(ctx, db, NaiveCONNRequest{Seg: q, Samples: 64}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMutateUnderLoad measures the MVCC write path — one op is one
// mutation (rotating insert-point / insert-obstacle / delete-point /
// delete-obstacle), i.e. one copy-on-write R*-tree path copy plus an atomic
// version publication — while two background readers continuously answer
// CONN queries on live snapshots. After the timed loop the result is
// written to BENCH_mutation.json through the internal/bench machinery, so
// the mutation path's trajectory is tracked alongside the query path's.
func BenchmarkMutateUnderLoad(b *testing.B) {
	w := workload("CL", 1)
	db, err := Open(w.Points, w.Obstacles)
	if err != nil {
		b.Fatal(err)
	}
	rq := rand.New(rand.NewSource(41))
	queries := make([]geom.Segment, 8)
	for i := range queries {
		queries[i] = dataset.QuerySegment(rq, 0.045, w.Obstacles)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := g; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := Run(context.Background(), db, CONNRequest{Seg: queries[i%len(queries)]}); err != nil {
					b.Error(err)
					return
				}
			}
		}(g)
	}

	side := dataset.Side
	mr := rand.New(rand.NewSource(42))
	nextPID := int32(len(w.Points))
	nextOID := int32(len(w.Obstacles))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch i % 4 {
		case 0:
			if _, err := db.InsertPoint(Pt(mr.Float64()*side, mr.Float64()*side)); err == nil {
				nextPID++
			}
		case 1:
			lo := Pt(mr.Float64()*side*0.95, mr.Float64()*side*0.95)
			if _, err := db.InsertObstacle(R(lo.X, lo.Y, lo.X+5+mr.Float64()*40, lo.Y+4+mr.Float64()*25)); err == nil {
				nextOID++
			}
		case 2:
			db.DeletePoint(int32(mr.Intn(int(nextPID))))
		case 3:
			db.DeleteObstacle(int32(mr.Intn(int(nextOID))))
		}
	}
	b.StopTimer()
	close(stop)
	readers.Wait()

	res := bench.BenchResult{
		Name:      "mutation",
		Tool:      "go test -bench BenchmarkMutateUnderLoad (one op = one mutation with 2 concurrent CONN readers)",
		Scale:     benchScale,
		Queries:   len(queries),
		K:         1,
		QL:        0.045,
		NsPerOp:   float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	if _, err := bench.WriteJSON(".", res); err != nil {
		b.Fatalf("writing BENCH_mutation.json: %v", err)
	}
}
