// Command connserve serves a connquery database over HTTP/JSON: the full
// typed-request surface on POST /v1/exec, live continuous queries as
// NDJSON/SSE streams on GET /v1/watch, MVCC mutations and snapshot pins,
// and a /v1/stats counters endpoint (see the server package for the wire
// contract and ARCHITECTURE.md for how the service sits on the engine).
//
// The dataset comes from one of three sources, checked in this order: a
// binary snapshot written by DB.Save (-load), a CSV pair (-points-csv +
// -obstacles-csv, the conngen format), or a generated paper workload
// (-workload/-scale/-ratio/-seed, the default).
//
// With -data-dir the database is durable: every mutation is written to a
// write-ahead log before it is acknowledged, checkpoints bound the log, and
// a restart — graceful or kill -9 — recovers the exact last acknowledged
// epoch. An empty directory is bootstrapped from the configured dataset
// source; a populated one is recovered and the dataset flags are ignored.
// -group-commit trades the per-mutation fsync for a windowed one (add
// -sync-ack to keep acknowledgments durable on top of the batched writes);
// -checkpoint-every tunes how often the log is folded into a checkpoint.
// Works with -shards: each shard keeps its own WAL plus a global sequencer
// log, and recovery rebuilds the identical sharded twin.
//
//	connserve -addr :8080 -workload CL -scale 0.02
//	connserve -load city.snap -request-timeout 5s -snapshot-ttl 2m
//	connserve -data-dir /var/lib/connquery -workload CL -scale 0.02 -group-commit 2ms
//
// Then, for example:
//
//	curl -s localhost:8080/v1/exec -d '{"kind":"CONN","seg":{"a":{"x":100,"y":100},"b":{"x":9000,"y":100}}}'
//	curl -sN -G localhost:8080/v1/watch --data-urlencode 'request={"kind":"CONN","seg":{"a":{"x":100,"y":100},"b":{"x":9000,"y":100}}}'
//
// On SIGINT/SIGTERM the process shuts down gracefully: the listener stops
// accepting, watch streams are terminated, and in-flight execs drain
// (bounded by -shutdown-grace) before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // profiling endpoints, served only on -pprof-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"connquery"
	"connquery/internal/bench"
	"connquery/internal/dataset"
	"connquery/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("connserve: ")

	addr := flag.String("addr", ":8080", "listen address")
	load := flag.String("load", "", "boot from a binary snapshot written by DB.Save")
	pointsCSV := flag.String("points-csv", "", "load data points from a CSV file (x,y rows)")
	obstaclesCSV := flag.String("obstacles-csv", "", "load obstacles from a CSV file (minx,miny,maxx,maxy rows)")
	workload := flag.String("workload", "CL", "generated dataset combination: CL, UL or ZL")
	scale := flag.Float64("scale", 0.02, "generated dataset cardinality scale (1 = the paper's sizes)")
	ratio := flag.Float64("ratio", 1, "|P|/|O| ratio for UL/ZL")
	seed := flag.Int64("seed", 2009, "workload seed")
	shards := flag.Int("shards", 1, "serve a spatially sharded database with this many shard units (1 = single-node; answers are bit-identical either way)")
	dataDir := flag.String("data-dir", "", "durable storage directory (WAL + checkpoints): recovers existing state on boot — the dataset flags are ignored then — or bootstraps the directory from the configured dataset source")
	groupCommit := flag.Duration("group-commit", 0, "with -data-dir: sync the WAL on this window instead of per mutation (0 = strict fsync before every commit)")
	syncAck := flag.Bool("sync-ack", false, "with -data-dir and -group-commit: fsync the WAL before acknowledging each commit — durable acks with the batched write path (no effect in strict mode, which always syncs)")
	ckptEvery := flag.Int("checkpoint-every", 0, "with -data-dir: checkpoint after this many logged records (0 = library default, negative = manual/shutdown only)")
	oneTree := flag.Bool("onetree", false, "index points and obstacles in one R-tree")
	buffer := flag.Int("buffer", 0, "LRU buffer pages per tree")
	cacheBytes := flag.Int64("cache-bytes", connquery.DefaultAnswerCacheBytes,
		"answer cache budget in bytes (0 disables; hits/promotions surface in /v1/stats)")
	noPlanner := flag.Bool("no-planner", false, "disable the shared-subcomputation execution planner (planner counters surface in /v1/stats)")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-exec execution cap (0 = none)")
	snapTTL := flag.Duration("snapshot-ttl", server.DefaultSnapshotTTL, "idle lifetime of server-held snapshot pins")
	grace := flag.Duration("shutdown-grace", 10*time.Second, "drain window for in-flight requests on shutdown")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this extra address (e.g. localhost:6060); off when empty")
	flag.Parse()

	var opts []connquery.Option
	if *oneTree {
		opts = append(opts, connquery.WithOneTree())
	}
	if *buffer > 0 {
		opts = append(opts, connquery.WithBufferPages(*buffer))
	}
	opts = append(opts, connquery.WithAnswerCache(*cacheBytes))
	if *noPlanner {
		opts = append(opts, connquery.WithNoPlanner())
	}

	db, source, err := openDB(*load, *pointsCSV, *obstaclesCSV, *workload, *scale, *ratio, *seed,
		*shards, *dataDir, *groupCommit, *syncAck, *ckptEvery, opts)
	if err != nil {
		log.Fatal(err)
	}
	if sdb, ok := db.(*connquery.ShardedDB); ok {
		st := sdb.ShardStats()
		log.Printf("loaded %s: %d points, %d obstacles (epoch %d), sharded %dx%d",
			source, db.NumPoints(), db.NumObstacles(), db.Version(), st.Cols, st.Rows)
	} else {
		log.Printf("loaded %s: %d points, %d obstacles (epoch %d)", source, db.NumPoints(), db.NumObstacles(), db.Version())
	}

	srv, err := server.New(server.Config{
		DB:             db,
		RequestTimeout: *reqTimeout,
		SnapshotTTL:    *snapTTL,
		Logf:           log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	log.Printf("listening on http://%s", ln.Addr())

	// The profiling endpoints live on their own listener (http.DefaultServeMux,
	// which the blank net/http/pprof import populates) so the query API's
	// address never exposes them; the flag is off by default.
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			log.Printf("pprof server: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		log.Printf("received %v, draining (grace %v)", sig, *grace)
	case err := <-serveErr:
		log.Fatal(err)
	}

	// Graceful shutdown: stop accepting, end the watch streams (srv.Close
	// closes their server-side gate and waits for in-flight execs), and let
	// Shutdown drain the remaining connections within the grace window.
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	<-done
	// With -data-dir this drains the WAL into a final checkpoint, so the next
	// boot recovers instantly with nothing to replay; without it Close is a
	// no-op.
	if c, ok := db.(interface{ Close() error }); ok {
		if err := c.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}
	log.Printf("bye")
}

// openDB resolves the configured dataset source and opens it single-node or
// sharded (shards > 1). For a binary snapshot the objects are extracted and
// re-partitioned, since the snapshot format is single-node. With dataDir
// set, the database is durable: an existing store is recovered (the dataset
// flags are then ignored — the directory IS the dataset), an empty one is
// bootstrapped from the resolved source.
func openDB(load, pointsCSV, obstaclesCSV, workload string, scale, ratio float64, seed int64,
	shards int, dataDir string, groupCommit time.Duration, syncAck bool, ckptEvery int, opts []connquery.Option) (connquery.Database, string, error) {
	if dataDir != "" {
		dopts := append([]connquery.Option(nil), opts...)
		if groupCommit > 0 {
			dopts = append(dopts, connquery.WithGroupCommit(groupCommit))
		}
		if syncAck {
			dopts = append(dopts, connquery.WithSyncAck())
		}
		if ckptEvery != 0 {
			dopts = append(dopts, connquery.WithCheckpointEvery(ckptEvery))
		}
		if !connquery.HasDurableState(dataDir) {
			pts, obs, source, err := resolveDataset(load, pointsCSV, obstaclesCSV, workload, scale, ratio, seed, nil)
			if err != nil {
				return nil, "", err
			}
			dopts = append(dopts, connquery.WithBootstrapData(pts, obs))
			db, err := openDurable(dataDir, shards, dopts)
			if err != nil {
				return nil, "", err
			}
			return db, fmt.Sprintf("%s, bootstrapped into %s", source, dataDir), nil
		}
		db, err := openDurable(dataDir, shards, dopts)
		if err != nil {
			return nil, "", err
		}
		rs := db.(interface {
			RecoveryStats() connquery.RecoveryStats
		}).RecoveryStats()
		return db, fmt.Sprintf("durable store %s (recovered epoch %d: %d checkpoint bytes, %d WAL records replayed)",
			dataDir, rs.Epoch, rs.CheckpointBytes, rs.WALRecords), nil
	}

	// In-memory: a snapshot keeps its single-node handle (cheapest), anything
	// else opens over the resolved object arrays.
	if load != "" && shards == 1 {
		db, err := connquery.LoadFile(load, opts...)
		if err != nil {
			return nil, "", err
		}
		return db, fmt.Sprintf("snapshot %s", load), nil
	}
	pts, obs, source, err := resolveDataset(load, pointsCSV, obstaclesCSV, workload, scale, ratio, seed, opts)
	if err != nil {
		return nil, "", err
	}
	if shards > 1 {
		db, err := connquery.OpenSharded(pts, obs, shards, opts...)
		return db, source, err
	}
	db, err := connquery.Open(pts, obs, opts...)
	return db, source, err
}

// openDurable dispatches to the durable constructor for the topology.
func openDurable(dir string, shards int, opts []connquery.Option) (connquery.Database, error) {
	if shards > 1 {
		return connquery.OpenDurableSharded(dir, shards, opts...)
	}
	return connquery.OpenDurable(dir, opts...)
}

// resolveDataset materializes the configured source as object arrays.
func resolveDataset(load, pointsCSV, obstaclesCSV, workload string, scale, ratio float64, seed int64,
	opts []connquery.Option) ([]connquery.Point, []connquery.Rect, string, error) {
	switch {
	case load != "":
		db, err := connquery.LoadFile(load, opts...)
		if err != nil {
			return nil, nil, "", err
		}
		return db.Points(), db.Obstacles(), fmt.Sprintf("snapshot %s", load), nil
	case pointsCSV != "" || obstaclesCSV != "":
		if pointsCSV == "" || obstaclesCSV == "" {
			return nil, nil, "", errors.New("-points-csv and -obstacles-csv must be given together")
		}
		pts, err := readCSV(pointsCSV, dataset.ReadPointsCSV)
		if err != nil {
			return nil, nil, "", err
		}
		obs, err := readCSV(obstaclesCSV, dataset.ReadRectsCSV)
		if err != nil {
			return nil, nil, "", err
		}
		return dataset.FilterPoints(pts, obs), obs, fmt.Sprintf("csv %s + %s", pointsCSV, obstaclesCSV), nil
	default:
		w := bench.BuildWorkload(strings.ToUpper(workload), scale, ratio, seed)
		return w.Points, w.Obstacles, fmt.Sprintf("workload %s scale %g", w.Name, scale), nil
	}
}

func readCSV[T any](path string, read func(r io.Reader) ([]T, error)) ([]T, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return read(f)
}
