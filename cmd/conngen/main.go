// Command conngen generates the paper's experimental datasets (§5.1) as CSV
// files: the CA and LA surrogates, Uniform and Zipf(0.8) point sets, all
// normalized to the [0, 10000]^2 search space.
//
// Usage:
//
//	conngen -out data -scale 0.1 -seed 2009
//
// writes data/ca_points.csv, data/la_obstacles.csv, data/uniform_points.csv
// and data/zipf_points.csv. Points are "x,y" rows; obstacles are
// "minx,miny,maxx,maxy" rows.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"connquery/internal/dataset"
	"connquery/internal/geom"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("conngen: ")

	out := flag.String("out", "data", "output directory")
	scale := flag.Float64("scale", 0.1, "dataset cardinality scale (1 = the paper's sizes)")
	ratio := flag.Float64("ratio", 1, "|P|/|O| ratio for the Uniform and Zipf sets")
	seed := flag.Int64("seed", 2009, "generator seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	nObs := int(float64(dataset.LASize) * *scale)
	nCA := int(float64(dataset.CASize) * *scale)
	nSyn := int(float64(nObs) * *ratio)

	la := dataset.Streets(nObs, *seed)
	write(*out, "la_obstacles.csv", func(f *os.File) error {
		return dataset.WriteRectsCSV(f, la)
	})
	writePoints(*out, "ca_points.csv", dataset.FilterPoints(
		dataset.Clustered(nCA, 24, dataset.Side*0.035, 0.15, *seed+1), la))
	writePoints(*out, "uniform_points.csv", dataset.FilterPoints(
		dataset.Uniform(nSyn, *seed+2), la))
	writePoints(*out, "zipf_points.csv", dataset.FilterPoints(
		dataset.Zipf(nSyn, 0.8, *seed+3), la))

	fmt.Printf("wrote %d obstacles and point sets (CA %d, Uniform/Zipf ~%d) to %s/\n",
		nObs, nCA, nSyn, *out)
}

func writePoints(dir, name string, pts []geom.Point) {
	write(dir, name, func(f *os.File) error {
		return dataset.WritePointsCSV(f, pts)
	})
}

func write(dir, name string, fn func(*os.File) error) {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := fn(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
