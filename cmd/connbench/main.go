// Command connbench regenerates the paper's evaluation figures (Gao &
// Zheng, SIGMOD 2009, §5) as printed tables.
//
// Usage:
//
//	connbench [-fig all|9|10|11|12|13|ablations] [-scale 0.1] [-queries 100] [-seed 2009]
//
// -scale 1 reproduces the paper's full dataset cardinalities (|CA| = 60,344
// points, |LA| = 131,461 obstacles); the default 0.1 runs the whole suite in
// minutes while preserving every curve's shape. See EXPERIMENTS.md for the
// recorded outputs and the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"connquery/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: all, 9, 10, 11, 12, 13, ablations")
	scale := flag.Float64("scale", 0.1, "dataset cardinality scale (1 = the paper's sizes)")
	queries := flag.Int("queries", 100, "queries per experiment cell")
	seed := flag.Int64("seed", 2009, "workload seed")
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Queries: *queries, Seed: *seed}
	out := os.Stdout

	runners := map[string]func(){
		"9":         func() { bench.Fig9(out, cfg) },
		"10":        func() { bench.Fig10(out, cfg) },
		"11":        func() { bench.Fig11(out, cfg) },
		"12":        func() { bench.Fig12(out, cfg) },
		"13":        func() { bench.Fig13(out, cfg) },
		"ablations": func() { bench.Ablations(out, cfg) },
	}
	order := []string{"9", "10", "11", "12", "13", "ablations"}

	start := time.Now()
	switch strings.ToLower(*fig) {
	case "all":
		for _, k := range order {
			runners[k]()
		}
	default:
		r, ok := runners[strings.TrimPrefix(strings.ToLower(*fig), "fig")]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q (want all, 9, 10, 11, 12, 13 or ablations)\n", *fig)
			os.Exit(2)
		}
		r()
	}
	fmt.Fprintf(out, "completed in %v\n", time.Since(start).Round(time.Millisecond))
}
