// Command connbench regenerates the paper's evaluation figures (Gao &
// Zheng, SIGMOD 2009, §5) as printed tables, and measures the query hot
// path into machine-readable BENCH_*.json records.
//
// Usage:
//
//	connbench [-fig all|9|10|11|12|13|ablations] [-scale 0.1] [-queries 100] [-seed 2009]
//	connbench -json <dir> [-scale 0.1] [-queries 100] [-seed 2009]
//
// -scale 1 reproduces the paper's full dataset cardinalities (|CA| = 60,344
// points, |LA| = 131,461 obstacles); the default 0.1 runs the whole suite in
// minutes while preserving every curve's shape.
//
// -json runs the Table 2 default cell (CL, k = 5, ql = 4.5%) and writes
// BENCH_table2_defaults.json (ns/op, bytes/op, allocs/op, NPE, NOE, |SVG|)
// into the given directory instead of printing figures; the repository's
// BENCH_baseline.json pins the pre-optimization numbers in the same schema
// (see README.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"connquery/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: all, 9, 10, 11, 12, 13, ablations")
	scale := flag.Float64("scale", 0.1, "dataset cardinality scale (1 = the paper's sizes)")
	queries := flag.Int("queries", 100, "queries per experiment cell")
	seed := flag.Int64("seed", 2009, "workload seed")
	jsonDir := flag.String("json", "", "measure the Table 2 default cell and write BENCH_*.json into this directory instead of printing figures")
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Queries: *queries, Seed: *seed}
	out := os.Stdout

	if *jsonDir != "" {
		res := bench.MeasureTable2Defaults(cfg)
		path, err := bench.WriteJSON(*jsonDir, res)
		if err != nil {
			fmt.Fprintln(os.Stderr, "connbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "%s: %.2f ms/op, %.0f allocs/op, NPE %.1f, NOE %.1f, |SVG| %.1f\n",
			path, res.NsPerOp/1e6, res.AllocsPerOp, res.NPE, res.NOE, res.SVG)
		return
	}

	runners := map[string]func(){
		"9":         func() { bench.Fig9(out, cfg) },
		"10":        func() { bench.Fig10(out, cfg) },
		"11":        func() { bench.Fig11(out, cfg) },
		"12":        func() { bench.Fig12(out, cfg) },
		"13":        func() { bench.Fig13(out, cfg) },
		"ablations": func() { bench.Ablations(out, cfg) },
	}
	order := []string{"9", "10", "11", "12", "13", "ablations"}

	start := time.Now()
	switch strings.ToLower(*fig) {
	case "all":
		for _, k := range order {
			runners[k]()
		}
	default:
		r, ok := runners[strings.TrimPrefix(strings.ToLower(*fig), "fig")]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q (want all, 9, 10, 11, 12, 13 or ablations)\n", *fig)
			os.Exit(2)
		}
		r()
	}
	fmt.Fprintf(out, "completed in %v\n", time.Since(start).Round(time.Millisecond))
}
