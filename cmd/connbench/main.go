// Command connbench regenerates the paper's evaluation figures (Gao &
// Zheng, SIGMOD 2009, §5) as printed tables, and measures the query hot
// path into machine-readable BENCH_*.json records.
//
// Usage:
//
//	connbench [-fig all|9|10|11|12|13|ablations] [-scale 0.1] [-queries 100] [-seed 2009]
//	connbench -json <dir> [-baseline BENCH_table2_defaults.json] [-max-regress 0.10] [-workers 1]
//	connbench -json <dir> -workers 0 -kernel-baseline BENCH_kernel_baseline.json [-min-speedup 4]
//	connbench -cache-json <dir> [-cache-baseline BENCH_cache.json] [-max-regress 0.50]
//	connbench -wal <dir> [-mutation-baseline BENCH_mutation.json] [-max-wal-factor 3]
//	connbench -stream <dir> [-stream-baseline BENCH_mutation.json] [-stream-batch 64] [-max-stream-factor 0.25]
//	connbench -storm <dir> [-storm-baseline BENCH_planner.json] [-storm-readers 16] [-storm-ops 40]
//
// -scale 1 reproduces the paper's full dataset cardinalities (|CA| = 60,344
// points, |LA| = 131,461 obstacles); the default 0.1 runs the whole suite in
// minutes while preserving every curve's shape.
//
// -json runs the Table 2 default cell (CL, k = 5, ql = 4.5%) through the
// public request API — one op is one COkNNRequest answered by DB.Exec on a
// prebuilt database — and writes BENCH_table2_defaults.json (ns/op,
// bytes/op, allocs/op, NPE, NOE, |SVG|) into the given directory instead of
// printing figures. With -baseline the fresh measurement is compared
// against a pinned record: the run fails (exit 1) when ns/op regresses by
// more than -max-regress, or when the machine-independent NPE/NOE/|SVG|
// metrics deviate at all — the CI regression gate. -workers fans each
// query's inner sight-line batches across that many lanes via WithWorkers
// (0 = GOMAXPROCS; the answer is bit-identical, only ns/op changes). With
// -kernel-baseline the run is additionally gated against the pinned
// pre-kernel record: it must be at least -min-speedup times faster with
// exactly matching NPE/NOE/|SVG| — the geometry-kernel speedup gate.
//
// -cache-json measures answer-cache effectiveness on the same cell: the
// query stream once with the cache bypassed (uncached ns/op) and once
// answered entirely from the warm cache (warm ns/op, hit rate), written as
// BENCH_cache.json. The gate always enforces the bench.MinCacheSpeedup
// warm-speedup floor and a full warm hit rate; with -cache-baseline the
// warm ns/op additionally obeys -max-regress against the pinned record
// (the warm path is sub-microsecond, so CI uses a looser tolerance than
// the uncached gate) and the hit rate may never drop.
//
// -storm measures what the shared-subcomputation execution planner buys
// under real concurrency: -storm-readers goroutines each answer the same
// precomputed streams of overlapping hot-region obstructed-distance
// queries (the SVG-construction-bound request kind), once on a
// planner-enabled handle and once on a WithNoPlanner twin (answer caches
// disabled on both, so every op is a real execution), written as
// BENCH_planner.json. The gate always enforces the bench.MinStormSpeedup
// floor on planner-on vs planner-off; with -storm-baseline the planner-on
// ns/op additionally obeys -max-regress against the pinned record and the
// recorded speedup may not fall below the floor.
//
// -wal measures what durability costs per mutation: one seeded
// insert/delete stream applied to an in-memory database, a durable one
// under a -wal-window group-commit window, and a durable one in strict
// fsync-per-mutation mode, written as BENCH_wal.json. With
// -mutation-baseline the group-commit cost is gated at -max-wal-factor
// times the pinned in-memory mutation record's ns/op — the durability-cost
// regression gate.
//
// -stream measures what batched ingest buys per mutation: one seeded
// insert/delete stream committed one public call per mutation versus the
// identical stream batched through DB.Apply at -stream-batch mutations
// per tick (one COW pass, one cache invalidation, one published epoch per
// tick), written as BENCH_stream.json. With -stream-baseline one
// mutation's share of a batched tick is gated at -max-stream-factor times
// the pinned per-mutation record's ns/op — the batching-amortization
// regression gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"connquery"
	"connquery/internal/bench"
	"connquery/internal/dataset"
	"connquery/internal/geom"
	"connquery/internal/stats"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: all, 9, 10, 11, 12, 13, ablations")
	scale := flag.Float64("scale", 0.1, "dataset cardinality scale (1 = the paper's sizes)")
	queries := flag.Int("queries", 100, "queries per experiment cell")
	seed := flag.Int64("seed", 2009, "workload seed")
	jsonDir := flag.String("json", "", "measure the Table 2 default cell via the public Exec API and write BENCH_*.json into this directory instead of printing figures")
	baseline := flag.String("baseline", "", "with -json: compare against this pinned BENCH_*.json record and fail on regression")
	maxRegress := flag.Float64("max-regress", 0.10, "with -baseline/-cache-baseline: maximum tolerated ns/op regression (0.10 = 10%)")
	cacheDir := flag.String("cache-json", "", "measure answer-cache effectiveness on the Table 2 cell (uncached vs warm-cache ns/op, hit rate) and write BENCH_cache.json into this directory")
	cacheBaseline := flag.String("cache-baseline", "", "with -cache-json: compare against this pinned BENCH_cache.json record and fail on regression")
	workers := flag.Int("workers", 1, "with -json: fan each query's inner work across this many lanes via WithWorkers (1 = sequential, 0 = GOMAXPROCS)")
	shards := flag.Int("shards", 1, "with -json: answer the measured stream through a spatially sharded database with this many shard units (writes BENCH_shard.json; answers are bit-identical to single-node)")
	metricsBaseline := flag.String("metrics-baseline", "", "with -json: require NPE/NOE/|SVG| to match this pinned BENCH_*.json record exactly, with no ns/op gate — the sharded bit-identity gate (ns ratios across backends are not comparable)")
	kernelBaseline := flag.String("kernel-baseline", "", "with -json: compare against this pinned pre-kernel BENCH_*.json record and fail unless the measured run is at least -min-speedup times faster with exactly matching NPE/NOE/|SVG|")
	minSpeedup := flag.Float64("min-speedup", 4.0, "with -kernel-baseline: minimum required speedup over the pinned pre-kernel record")
	stormDir := flag.String("storm", "", "measure the execution planner under a concurrent overlapping storm (planner on vs WithNoPlanner on identical streams) and write BENCH_planner.json into this directory")
	stormBaseline := flag.String("storm-baseline", "", "with -storm: compare against this pinned BENCH_planner.json record and fail on regression")
	stormReaders := flag.Int("storm-readers", 16, "with -storm: concurrent reader goroutines")
	stormOps := flag.Int("storm-ops", 40, "with -storm: queries per reader per measured mode")
	walDir := flag.String("wal", "", "measure durability cost (ns/mutation in-memory vs group-commit vs strict fsync on the same stream) and write BENCH_wal.json into this directory")
	walOps := flag.Int("wal-ops", 2000, "with -wal: mutations per measured mode")
	walWindow := flag.Duration("wal-window", 2*time.Millisecond, "with -wal: group-commit sync window")
	mutationBaseline := flag.String("mutation-baseline", "", "with -wal: gate group-commit ns/mutation against this pinned in-memory mutation record (BENCH_mutation.json)")
	maxWALFactor := flag.Float64("max-wal-factor", bench.MaxGroupCommitFactor, "with -mutation-baseline: maximum tolerated group-commit cost as a multiple of the pinned in-memory ns/op")
	streamDir := flag.String("stream", "", "measure batched-ingest cost (ns/mutation one-call-per-mutation vs DB.Apply ticks on the identical stream) and write BENCH_stream.json into this directory")
	streamOps := flag.Int("stream-ops", 4096, "with -stream: mutations per measured mode")
	streamBatch := flag.Int("stream-batch", 64, "with -stream: mutations per Apply tick in the batched mode")
	streamBaseline := flag.String("stream-baseline", "", "with -stream: gate batched ns/mutation against this pinned per-mutation record (BENCH_mutation.json)")
	maxStreamFactor := flag.Float64("max-stream-factor", bench.MaxStreamFactor, "with -stream-baseline: maximum tolerated batched cost as a fraction of the pinned per-mutation ns/op")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file when the run finishes")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "connbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "connbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		// The profile is written on the way out, after any measurement or
		// figure sweep, so it reflects the whole run's allocation profile.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "connbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "connbench:", err)
				os.Exit(1)
			}
		}()
	}

	cfg := bench.Config{Scale: *scale, Queries: *queries, Seed: *seed}
	out := os.Stdout

	if *jsonDir != "" {
		res := measureTable2Exec(cfg, *workers, *shards)
		path, err := bench.WriteJSON(*jsonDir, res)
		if err != nil {
			fmt.Fprintln(os.Stderr, "connbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "%s: %.2f ms/op, %.0f allocs/op, NPE %.1f, NOE %.1f, |SVG| %.1f\n",
			path, res.NsPerOp/1e6, res.AllocsPerOp, res.NPE, res.NOE, res.SVG)
		if *baseline != "" {
			if err := compareBaseline(out, res, *baseline, *maxRegress); err != nil {
				fmt.Fprintln(os.Stderr, "connbench:", err)
				os.Exit(1)
			}
		}
		if *metricsBaseline != "" {
			if err := gateMetrics(out, res, *metricsBaseline); err != nil {
				fmt.Fprintln(os.Stderr, "connbench:", err)
				os.Exit(1)
			}
		}
		if *kernelBaseline != "" {
			if err := gateKernel(out, res, *kernelBaseline, *minSpeedup); err != nil {
				fmt.Fprintln(os.Stderr, "connbench:", err)
				os.Exit(1)
			}
		}
		return
	}

	if *walDir != "" {
		res, err := measureWALExec(cfg, *walOps, *walWindow)
		if err != nil {
			fmt.Fprintln(os.Stderr, "connbench:", err)
			os.Exit(1)
		}
		path, err := bench.WriteWALJSON(*walDir, res)
		if err != nil {
			fmt.Fprintln(os.Stderr, "connbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "%s: mem %.1f us/mut, group-commit %.1f us/mut (window %v), fsync %.1f us/mut\n",
			path, res.MemNsPerOp/1e3, res.GroupNsPerOp/1e3, *walWindow, res.FsyncNsPerOp/1e3)
		if *mutationBaseline != "" {
			if err := gateWAL(out, res, *mutationBaseline, *maxWALFactor); err != nil {
				fmt.Fprintln(os.Stderr, "connbench:", err)
				os.Exit(1)
			}
		}
		return
	}

	if *streamDir != "" {
		res, err := measureStreamExec(cfg, *streamOps, *streamBatch)
		if err != nil {
			fmt.Fprintln(os.Stderr, "connbench:", err)
			os.Exit(1)
		}
		path, err := bench.WriteStreamJSON(*streamDir, res)
		if err != nil {
			fmt.Fprintln(os.Stderr, "connbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "%s: per-call %.1f us/mut, batched %.2f us/mut at batch=%d (%.1fx)\n",
			path, res.SeqNsPerOp/1e3, res.BatchNsPerOp/1e3, res.Batch, res.Speedup)
		if *streamBaseline != "" {
			if err := gateStream(out, res, *streamBaseline, *maxStreamFactor); err != nil {
				fmt.Fprintln(os.Stderr, "connbench:", err)
				os.Exit(1)
			}
		}
		return
	}

	if *stormDir != "" {
		res := measureStormExec(cfg, *stormReaders, *stormOps)
		path, err := bench.WriteStormJSON(*stormDir, res)
		if err != nil {
			fmt.Fprintln(os.Stderr, "connbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "%s: planner %.2f ms/op, no-planner %.2f ms/op, speedup %.2fx (groups %d, adoptions %d, fallbacks %d)\n",
			path, res.PlannerNsPerOp/1e6, res.NoPlannerNsPerOp/1e6, res.Speedup,
			res.GroupsFormed, res.Adoptions, res.Fallbacks)
		if err := gateStorm(out, res, *stormBaseline, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "connbench:", err)
			os.Exit(1)
		}
		return
	}

	if *cacheDir != "" {
		res := measureCacheExec(cfg)
		path, err := bench.WriteCacheJSON(*cacheDir, res)
		if err != nil {
			fmt.Fprintln(os.Stderr, "connbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "%s: uncached %.2f ms/op, warm %.4f ms/op, speedup %.0fx, hit rate %.3f\n",
			path, res.UncachedNsPerOp/1e6, res.WarmNsPerOp/1e6, res.Speedup, res.HitRate)
		if err := gateCache(out, res, *cacheBaseline, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "connbench:", err)
			os.Exit(1)
		}
		return
	}

	runners := map[string]func(){
		"9":         func() { bench.Fig9(out, cfg) },
		"10":        func() { bench.Fig10(out, cfg) },
		"11":        func() { bench.Fig11(out, cfg) },
		"12":        func() { bench.Fig12(out, cfg) },
		"13":        func() { bench.Fig13(out, cfg) },
		"ablations": func() { bench.Ablations(out, cfg) },
	}
	order := []string{"9", "10", "11", "12", "13", "ablations"}

	start := time.Now()
	switch strings.ToLower(*fig) {
	case "all":
		for _, k := range order {
			runners[k]()
		}
	default:
		r, ok := runners[strings.TrimPrefix(strings.ToLower(*fig), "fig")]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q (want all, 9, 10, 11, 12, 13 or ablations)\n", *fig)
			os.Exit(2)
		}
		r()
	}
	fmt.Fprintf(out, "completed in %v\n", time.Since(start).Round(time.Millisecond))
}

// measureTable2Exec measures the Table 2 default cell end to end through
// the public request API: the same workload, query stream and accounting as
// the engine-level measurement, with DB.Exec answering one COkNNRequest per
// op. Keeping the two paths comparable in one schema is what lets the
// baseline gate catch a regression introduced anywhere between the public
// surface and the engine. workers plumbs WithWorkers onto every measured
// request: 1 omits the option (the default sequential path), anything else
// fans the intra-query sight-line batches across that many lanes (0 =
// GOMAXPROCS) — the answer is bit-identical either way, so the pinned
// NPE/NOE/|SVG| gates apply unchanged. shards > 1 answers the same stream
// through a spatially sharded router (the record is named "shard" so it
// never overwrites the single-node baseline): the scatter-gather tier is
// also bit-identical, so NPE/NOE/|SVG| must still match the single-node
// pinned record exactly — that is the -metrics-baseline gate.
func measureTable2Exec(cfg bench.Config, workers, shards int) bench.BenchResult {
	ctx := context.Background()
	tool := "connbench -json (one op = one COkNNRequest via DB.Exec on the flat-geometry kernel, index build excluded)"
	if workers != 1 {
		tool += fmt.Sprintf("; workers=%d", workers)
	}
	if shards > 1 {
		tool += fmt.Sprintf("; sharded scatter-gather router, shards=%d", shards)
	}
	res := bench.MeasureTable2With(cfg, tool,
		func(w bench.Workload) func(q geom.Segment) stats.QueryMetrics {
			// The answer cache is disabled so this record keeps measuring the
			// execution path the pinned baseline pinned; the cached path has
			// its own record (BENCH_cache.json, -cache-json).
			var db connquery.Database
			var err error
			if shards > 1 {
				db, err = connquery.OpenSharded(w.Points, w.Obstacles, shards, connquery.WithAnswerCache(0))
			} else {
				db, err = connquery.Open(w.Points, w.Obstacles, connquery.WithAnswerCache(0))
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "connbench:", err)
				os.Exit(1)
			}
			var opts []connquery.QueryOption
			if workers != 1 {
				opts = append(opts, connquery.WithWorkers(workers))
			}
			return func(q geom.Segment) stats.QueryMetrics {
				ans, err := db.Exec(ctx, connquery.COkNNRequest{Seg: q, K: bench.DefaultK}, opts...)
				if err != nil {
					fmt.Fprintln(os.Stderr, "connbench:", err)
					os.Exit(1)
				}
				return ans.Metrics()
			}
		})
	if shards > 1 {
		res.Name = "shard"
	}
	return res
}

// measureCacheExec measures answer-cache effectiveness on the Table 2
// default cell: the same workload and query stream as the -json record,
// first with the cache bypassed per call (uncached ns/op), then answered
// entirely from the warm cache (warm ns/op, averaged over enough rounds
// that the sub-microsecond hit path is measured stably). The warm pass's
// hit rate comes from the library's own cache counters.
func measureCacheExec(cfg bench.Config) bench.CacheBenchResult {
	ctx := context.Background()
	// The shared stream builder guarantees this record measures exactly the
	// query stream of the BENCH_table2_defaults.json record.
	w, queries, ncfg := bench.Table2Stream(cfg)
	cfg = ncfg
	db, err := connquery.Open(w.Points, w.Obstacles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "connbench:", err)
		os.Exit(1)
	}
	run := func(q geom.Segment, opts ...connquery.QueryOption) {
		if _, err := db.Exec(ctx, connquery.COkNNRequest{Seg: q, K: bench.DefaultK}, opts...); err != nil {
			fmt.Fprintln(os.Stderr, "connbench:", err)
			os.Exit(1)
		}
	}

	// Uncached pass: every op executes the engine (warm pooled query state,
	// same accounting as the -json record).
	run(queries[0], connquery.WithNoCache())
	start := time.Now()
	for _, q := range queries {
		run(q, connquery.WithNoCache())
	}
	uncachedNs := float64(time.Since(start).Nanoseconds()) / float64(len(queries))

	// Populate, then measure the warm pass over enough rounds for a stable
	// per-hit number.
	for _, q := range queries {
		run(q)
	}
	rounds := 5000 / len(queries)
	if rounds < 1 {
		rounds = 1
	}
	before := db.CacheStats()
	start = time.Now()
	for r := 0; r < rounds; r++ {
		for _, q := range queries {
			run(q)
		}
	}
	warmNs := float64(time.Since(start).Nanoseconds()) / float64(rounds*len(queries))
	after := db.CacheStats()
	lookups := float64(after.Hits - before.Hits + after.Misses - before.Misses)
	hitRate := 0.0
	if lookups > 0 {
		hitRate = float64(after.Hits-before.Hits) / lookups
	}

	return bench.CacheBenchResult{
		Name:            "cache",
		Tool:            "connbench -cache-json (one op = one COkNNRequest via DB.Exec; uncached = WithNoCache, warm = repeated over a populated cache)",
		Scale:           cfg.Scale,
		Queries:         cfg.Queries,
		Seed:            cfg.Seed,
		K:               bench.DefaultK,
		QL:              bench.DefaultQL,
		UncachedNsPerOp: uncachedNs,
		WarmNsPerOp:     warmNs,
		Speedup:         uncachedNs / warmNs,
		HitRate:         hitRate,
		WarmRounds:      rounds,
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
	}
}

// measureStormExec measures the execution planner under the workload it was
// built for: readers goroutines concurrently answer overlapping
// obstructed-distance queries concentrated in a hot sub-square of a dense
// world — dense enough that the kernel's full corner-pair table is gated
// off, which is the only regime where the planner engages. Obstructed
// distance is the SVG-construction-bound kind: nearly all of an op is
// corner-pair sight-line work, the exact subcomputation the shared table
// serves (COkNN storms spend most of each op in top-k retrieval and
// shortest-path settling, which no amount of sharing can touch). Each
// reader gets its own precomputed seeded stream, and the identical streams
// run once against a WithNoPlanner handle and once against a
// planner-enabled one, answer caches disabled on both so every op is a real
// execution. Under the storm the planner groups in-flight requests by
// quantized region, builds one shared region-scoped sight-line certificate
// table per group, and members answer covered visibility pairs from table
// lookups instead of private BVH walks — the measured speedup is exactly
// that sharing, on answers the plandiff storm proves bit-identical.
func measureStormExec(cfg bench.Config, readers, ops int) bench.StormBenchResult {
	ctx := context.Background()
	w := bench.BuildWorkload("CL", cfg.Scale, bench.DefaultRatio, cfg.Seed)
	// The hot sub-square sits on the densest point cell of the clustered CL
	// workload — where a real query hotspot would be, and where COkNN stays
	// local (a hot box over a point desert degenerates into whole-world
	// retrievals). At 4% of the world side it spans only a few quantized
	// planner cells, so the concurrent streams collide on group keys.
	const hotFrac = 0.005
	hotSide := dataset.Side * hotFrac
	lox, loy := densestCell(w.Points, hotSide)
	hotRegion := geom.Rect{MinX: lox, MinY: loy, MaxX: lox + hotSide, MaxY: loy + hotSide}
	streams := make([][]connquery.DistanceRequest, readers)
	for r := range streams {
		rng := rand.New(rand.NewSource(cfg.Seed + 100 + int64(r)))
		reqs := make([]connquery.DistanceRequest, ops)
		for i := range reqs {
			// The endpoint pairs are travelable-segment endpoints (the
			// paper's QuerySegment rejection rule): both free points, ql
			// apart, with open space between them — a pair walled into a
			// different obstacle pocket degenerates into a whole-world
			// search.
			s := dataset.QuerySegmentIn(rng, bench.DefaultQL, w.Obstacles, hotRegion)
			reqs[i] = connquery.DistanceRequest{A: s.A, B: s.B}
		}
		streams[r] = reqs
	}

	run := func(opts ...connquery.Option) (float64, connquery.PlannerStats) {
		db, err := connquery.Open(w.Points, w.Obstacles,
			append([]connquery.Option{connquery.WithAnswerCache(0)}, opts...)...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "connbench:", err)
			os.Exit(1)
		}
		storm := func() {
			var wg sync.WaitGroup
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for _, q := range streams[r] {
						if _, err := db.Exec(ctx, q); err != nil {
							fmt.Fprintln(os.Stderr, "connbench:", err)
							os.Exit(1)
						}
					}
				}(r)
			}
			wg.Wait()
		}
		// Warmup: repeat full storm rounds until the planner's group set
		// stops growing (group formation needs two requests in flight on one
		// key, which the scheduler may withhold on any single round but not
		// round after round). The measured pass is then the steady state a
		// sustained storm reaches — hot groups built, every op adopting —
		// with no build time on the clock. Planner-off runs see no groups
		// and settle after two rounds, warming the same pooled state.
		prev := ^uint64(0)
		for round := 0; round < 8; round++ {
			storm()
			if ps := db.PlannerStats(); ps.GroupsFormed == prev {
				break
			} else {
				prev = ps.GroupsFormed
			}
		}
		start := time.Now()
		storm()
		return float64(time.Since(start).Nanoseconds()) / float64(readers*ops), db.PlannerStats()
	}

	offNs, _ := run(connquery.WithNoPlanner())
	onNs, ps := run()

	return bench.StormBenchResult{
		Name:             "planner",
		Tool:             "connbench -storm (one op = one DistanceRequest via DB.Exec under N concurrent readers on overlapping hot-region streams; planner on vs WithNoPlanner, answer caches off)",
		Kind:             connquery.DistanceRequest{}.Kind(),
		Scale:            cfg.Scale,
		Readers:          readers,
		OpsPerReader:     ops,
		Seed:             cfg.Seed,
		QL:               bench.DefaultQL,
		HotFrac:          hotFrac,
		PlannerNsPerOp:   onNs,
		NoPlannerNsPerOp: offNs,
		Speedup:          offNs / onNs,
		GroupsFormed:     ps.GroupsFormed,
		Adoptions:        ps.Adoptions,
		Fallbacks:        ps.Fallbacks,
		Timestamp:        time.Now().UTC().Format(time.RFC3339),
	}
}

// densestCell grids the world at the hot box's side and returns the
// lower-left corner of the cell holding the most points (ties to the lowest
// cell index, so the choice is a pure deterministic function of the
// workload).
func densestCell(pts []geom.Point, side float64) (lox, loy float64) {
	n := int(dataset.Side / side)
	if n < 1 {
		n = 1
	}
	counts := make([]int, n*n)
	for _, p := range pts {
		i, j := int(p.X/side), int(p.Y/side)
		if i < 0 || i >= n || j < 0 || j >= n {
			continue
		}
		counts[j*n+i]++
	}
	best := 0
	for c := range counts {
		if counts[c] > counts[best] {
			best = c
		}
	}
	return float64(best%n) * side, float64(best/n) * side
}

// gateStorm enforces the planner-effectiveness gate: the hard
// MinStormSpeedup floor always applies, and the planner-on run must have
// actually formed and shared groups (a speedup without adoptions would be
// noise, not the planner). With a pinned baseline, parameters must match
// and the planner-on ns/op may not regress by more than maxRegress (the
// storm is concurrency-scheduled, so CI passes a looser tolerance than the
// single-query gate).
func gateStorm(out *os.File, cur bench.StormBenchResult, baselinePath string, maxRegress float64) error {
	if cur.GroupsFormed == 0 || cur.Adoptions == 0 {
		return fmt.Errorf("planner never engaged under the storm (groups %d, adoptions %d): the measurement is vacuous",
			cur.GroupsFormed, cur.Adoptions)
	}
	if cur.Speedup < bench.MinStormSpeedup {
		return fmt.Errorf("planner storm speedup %.2fx is below the %.1fx floor (planner %.2f ms/op, no-planner %.2f ms/op)",
			cur.Speedup, bench.MinStormSpeedup, cur.PlannerNsPerOp/1e6, cur.NoPlannerNsPerOp/1e6)
	}
	if baselinePath == "" {
		return nil
	}
	base, err := bench.ReadStormJSON(baselinePath)
	if err != nil {
		return fmt.Errorf("storm baseline %s: %w", baselinePath, err)
	}
	ratio := cur.PlannerNsPerOp / base.PlannerNsPerOp
	fmt.Fprintf(out, "storm baseline %s: planner %.2f ms/op -> %.2f ms/op (%+.1f%%), speedup %.2fx -> %.2fx\n",
		baselinePath, base.PlannerNsPerOp/1e6, cur.PlannerNsPerOp/1e6, (ratio-1)*100, base.Speedup, cur.Speedup)
	if cur.Scale != base.Scale || cur.Readers != base.Readers || cur.OpsPerReader != base.OpsPerReader ||
		cur.Seed != base.Seed || cur.Kind != base.Kind || cur.QL != base.QL || cur.HotFrac != base.HotFrac {
		return fmt.Errorf("storm parameters do not match the baseline (scale %g vs %g, readers %d vs %d, ops %d vs %d, seed %d vs %d): re-pin the record or align the flags",
			cur.Scale, base.Scale, cur.Readers, base.Readers, cur.OpsPerReader, base.OpsPerReader, cur.Seed, base.Seed)
	}
	if ratio > 1+maxRegress {
		return fmt.Errorf("planner-on ns/op regressed %.1f%% (limit %.0f%%): %.2f ms/op vs baseline %.2f ms/op",
			(ratio-1)*100, maxRegress*100, cur.PlannerNsPerOp/1e6, base.PlannerNsPerOp/1e6)
	}
	return nil
}

// measureWALExec measures what durability costs per mutation: one seeded
// insert/delete stream applied to an in-memory handle, a durable handle
// under a group-commit window, and a durable handle in strict
// fsync-per-mutation mode. The streams are identical (same rng seed, same
// engine semantics), so any ns difference is the logging itself. Automatic
// checkpointing is disabled in the durable modes so the numbers measure the
// steady-state append path, not a checkpoint that happens to fire mid-run.
func measureWALExec(cfg bench.Config, ops int, window time.Duration) (bench.WALBenchResult, error) {
	w := bench.BuildWorkload("CL", cfg.Scale, bench.DefaultRatio, cfg.Seed)

	runStream := func(db connquery.Database) (float64, error) {
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		var live []int32
		start := time.Now()
		for n := 0; n < ops; n++ {
			if len(live) > 0 && rng.Float64() < 0.4 {
				i := rng.Intn(len(live))
				if !db.DeletePoint(live[i]) {
					return 0, fmt.Errorf("wal bench: DeletePoint(%d) failed", live[i])
				}
				live = append(live[:i], live[i+1:]...)
				continue
			}
			p := geom.Point{X: rng.Float64() * dataset.Side, Y: rng.Float64() * dataset.Side}
			id, err := db.InsertPoint(p)
			if err != nil {
				// The draw landed inside an obstacle; the rejection is part of
				// the stream (identical across modes) and costs a validation
				// pass, not a log append.
				continue
			}
			live = append(live, id)
		}
		return float64(time.Since(start).Nanoseconds()) / float64(ops), nil
	}

	mem, err := connquery.Open(w.Points, w.Obstacles)
	if err != nil {
		return bench.WALBenchResult{}, err
	}
	memNs, err := runStream(mem)
	if err != nil {
		return bench.WALBenchResult{}, err
	}

	durableStream := func(opts ...connquery.Option) (float64, error) {
		dir, err := os.MkdirTemp("", "connbench-wal-")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		opts = append(opts, connquery.WithBootstrapData(w.Points, w.Obstacles), connquery.WithCheckpointEvery(-1))
		db, err := connquery.OpenDurable(dir, opts...)
		if err != nil {
			return 0, err
		}
		defer db.Close()
		return runStream(db)
	}
	groupNs, err := durableStream(connquery.WithGroupCommit(window))
	if err != nil {
		return bench.WALBenchResult{}, err
	}
	fsyncNs, err := durableStream()
	if err != nil {
		return bench.WALBenchResult{}, err
	}

	return bench.WALBenchResult{
		Name:          "wal",
		Tool:          "connbench -wal (one op = one point insert/delete on the CL workload; in-memory vs OpenDurable group-commit vs OpenDurable strict fsync)",
		Scale:         cfg.Scale,
		Ops:           ops,
		Seed:          cfg.Seed,
		MemNsPerOp:    memNs,
		GroupNsPerOp:  groupNs,
		FsyncNsPerOp:  fsyncNs,
		GroupWindowMs: float64(window.Nanoseconds()) / 1e6,
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
	}, nil
}

// gateWAL enforces the durability-cost gate: group-commit logging may cost
// at most maxFactor times the pinned in-memory mutation baseline
// (BENCH_mutation.json). Like every ns gate in this repo the comparison is
// machine-dependent — re-pin the baseline when the reference hardware
// changes. Strict-fsync cost is informational: it is the device's sync
// latency, not this code's overhead.
func gateWAL(out *os.File, cur bench.WALBenchResult, baselinePath string, maxFactor float64) error {
	base, err := bench.ReadJSON(baselinePath)
	if err != nil {
		return fmt.Errorf("mutation baseline %s: %w", baselinePath, err)
	}
	factor := cur.GroupNsPerOp / base.NsPerOp
	fmt.Fprintf(out, "mutation baseline %s: in-memory %.1f us/mut, group-commit %.1f us/mut (%.2fx, ceiling %.1fx)\n",
		baselinePath, base.NsPerOp/1e3, cur.GroupNsPerOp/1e3, factor, maxFactor)
	if factor > maxFactor {
		return fmt.Errorf("group-commit mutation cost %.1f us is %.2fx the pinned in-memory baseline %.1f us (ceiling %.1fx)",
			cur.GroupNsPerOp/1e3, factor, base.NsPerOp/1e3, maxFactor)
	}
	return nil
}

// measureStreamExec measures what batched ingest buys per mutation: one
// precomputed seeded insert/delete stream, committed against one handle
// with a public call per mutation (one COW clone, one cache invalidation,
// one published epoch each) and against a fresh identical handle through
// DB.Apply in batch-sized ticks (the commit overhead amortized across the
// tick). The mutation list is generated once — insert PIDs are predicted
// from the library's sequential ID assignment, so both modes commit the
// byte-identical stream and any ns difference is the batching itself.
func measureStreamExec(cfg bench.Config, ops, batch int) (bench.StreamBenchResult, error) {
	if batch < 1 {
		return bench.StreamBenchResult{}, fmt.Errorf("stream batch must be >= 1, got %d", batch)
	}
	w := bench.BuildWorkload("CL", cfg.Scale, bench.DefaultRatio, cfg.Seed)

	// Insert positions are drawn outside every obstacle so each insert
	// succeeds and the predicted PID sequence matches the engine's.
	inside := func(p geom.Point) bool {
		for _, r := range w.Obstacles {
			if p.X > r.MinX && p.X < r.MaxX && p.Y > r.MinY && p.Y < r.MaxY {
				return true
			}
		}
		return false
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	nextPID := int32(len(w.Points))
	var live []int32
	muts := make([]connquery.Mutation, 0, ops)
	for len(muts) < ops {
		if len(live) > 0 && rng.Float64() < 0.4 {
			i := rng.Intn(len(live))
			muts = append(muts, connquery.Mutation{Op: connquery.MutDeletePoint, ID: live[i]})
			live = append(live[:i], live[i+1:]...)
			continue
		}
		p := geom.Point{X: rng.Float64() * dataset.Side, Y: rng.Float64() * dataset.Side}
		if inside(p) {
			continue // rejected draws stay identical across modes: same rng
		}
		muts = append(muts, connquery.Mutation{Op: connquery.MutInsertPoint, P: p})
		live = append(live, nextPID)
		nextPID++
	}

	seqDB, err := connquery.Open(w.Points, w.Obstacles)
	if err != nil {
		return bench.StreamBenchResult{}, err
	}
	start := time.Now()
	for _, m := range muts {
		switch m.Op {
		case connquery.MutInsertPoint:
			if _, err := seqDB.InsertPoint(m.P); err != nil {
				return bench.StreamBenchResult{}, fmt.Errorf("stream bench: InsertPoint: %w", err)
			}
		case connquery.MutDeletePoint:
			if !seqDB.DeletePoint(m.ID) {
				return bench.StreamBenchResult{}, fmt.Errorf("stream bench: DeletePoint(%d) failed", m.ID)
			}
		}
	}
	seqNs := float64(time.Since(start).Nanoseconds()) / float64(ops)

	batchDB, err := connquery.Open(w.Points, w.Obstacles)
	if err != nil {
		return bench.StreamBenchResult{}, err
	}
	start = time.Now()
	for lo := 0; lo < len(muts); lo += batch {
		hi := min(lo+batch, len(muts))
		res, err := batchDB.Apply(muts[lo:hi])
		if err != nil {
			return bench.StreamBenchResult{}, fmt.Errorf("stream bench: Apply: %w", err)
		}
		if res.Applied != hi-lo {
			return bench.StreamBenchResult{}, fmt.Errorf("stream bench: tick applied %d of %d members", res.Applied, hi-lo)
		}
	}
	batchNs := float64(time.Since(start).Nanoseconds()) / float64(ops)

	// The two handles must agree exactly — the batched stream is the same
	// stream.
	if batchDB.Version() != seqDB.Version() || batchDB.NumPoints() != seqDB.NumPoints() {
		return bench.StreamBenchResult{}, fmt.Errorf("stream bench: modes diverged (epoch %d vs %d, points %d vs %d)",
			batchDB.Version(), seqDB.Version(), batchDB.NumPoints(), seqDB.NumPoints())
	}

	return bench.StreamBenchResult{
		Name:         "stream",
		Tool:         "connbench -stream (one op = one point insert/delete on the CL workload; one public call per mutation vs DB.Apply ticks)",
		Scale:        cfg.Scale,
		Ops:          ops,
		Batch:        batch,
		Seed:         cfg.Seed,
		SeqNsPerOp:   seqNs,
		BatchNsPerOp: batchNs,
		Speedup:      seqNs / batchNs,
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
	}, nil
}

// gateStream enforces the batching-amortization gate: one mutation's share
// of a batched tick may cost at most maxFactor times the pinned
// per-mutation baseline (BENCH_mutation.json). Like every ns gate in this
// repo the comparison is machine-dependent — re-pin the baseline when the
// reference hardware changes.
func gateStream(out *os.File, cur bench.StreamBenchResult, baselinePath string, maxFactor float64) error {
	base, err := bench.ReadJSON(baselinePath)
	if err != nil {
		return fmt.Errorf("stream baseline %s: %w", baselinePath, err)
	}
	factor := cur.BatchNsPerOp / base.NsPerOp
	fmt.Fprintf(out, "mutation baseline %s: per-call %.1f us/mut, batched %.2f us/mut (%.3fx, ceiling %.2fx)\n",
		baselinePath, base.NsPerOp/1e3, cur.BatchNsPerOp/1e3, factor, maxFactor)
	if factor > maxFactor {
		return fmt.Errorf("batched mutation cost %.2f us is %.3fx the pinned per-mutation baseline %.1f us (ceiling %.2fx)",
			cur.BatchNsPerOp/1e3, factor, base.NsPerOp/1e3, maxFactor)
	}
	return nil
}

// gateCache enforces the cache-effectiveness gate: the hard
// MinCacheSpeedup floor and full warm hit rate always apply; with a pinned
// baseline, parameters must match, the hit rate may not drop, and the warm
// ns/op may not regress by more than maxRegress.
func gateCache(out *os.File, cur bench.CacheBenchResult, baselinePath string, maxRegress float64) error {
	if cur.Speedup < bench.MinCacheSpeedup {
		return fmt.Errorf("warm-cache speedup %.1fx is below the %.0fx floor (uncached %.2f ms/op, warm %.4f ms/op)",
			cur.Speedup, bench.MinCacheSpeedup, cur.UncachedNsPerOp/1e6, cur.WarmNsPerOp/1e6)
	}
	if cur.HitRate < 1 {
		return fmt.Errorf("warm pass hit rate %.3f < 1: repeated requests failed to hit", cur.HitRate)
	}
	if baselinePath == "" {
		return nil
	}
	base, err := bench.ReadCacheJSON(baselinePath)
	if err != nil {
		return fmt.Errorf("cache baseline %s: %w", baselinePath, err)
	}
	ratio := cur.WarmNsPerOp / base.WarmNsPerOp
	fmt.Fprintf(out, "cache baseline %s: warm %.4f ms/op -> %.4f ms/op (%+.1f%%), speedup %.0fx -> %.0fx\n",
		baselinePath, base.WarmNsPerOp/1e6, cur.WarmNsPerOp/1e6, (ratio-1)*100, base.Speedup, cur.Speedup)
	if cur.Scale != base.Scale || cur.Queries != base.Queries || cur.Seed != base.Seed || cur.K != base.K || cur.QL != base.QL {
		return fmt.Errorf("workload parameters do not match the cache baseline (scale %g vs %g, queries %d vs %d, seed %d vs %d): re-pin the record or align the flags",
			cur.Scale, base.Scale, cur.Queries, base.Queries, cur.Seed, base.Seed)
	}
	if cur.HitRate < base.HitRate {
		return fmt.Errorf("hit rate dropped: %.3f vs baseline %.3f", cur.HitRate, base.HitRate)
	}
	if ratio > 1+maxRegress {
		return fmt.Errorf("warm ns/op regressed %.1f%% (limit %.0f%%): %.4f ms/op vs baseline %.4f ms/op",
			(ratio-1)*100, maxRegress*100, cur.WarmNsPerOp/1e6, base.WarmNsPerOp/1e6)
	}
	return nil
}

// compareBaseline enforces the regression gate against a pinned record.
func compareBaseline(out *os.File, cur bench.BenchResult, path string, maxRegress float64) error {
	base, err := bench.ReadJSON(path)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	ratio := cur.NsPerOp / base.NsPerOp
	fmt.Fprintf(out, "baseline %s: %.2f ms/op -> %.2f ms/op (%+.1f%%)\n",
		path, base.NsPerOp/1e6, cur.NsPerOp/1e6, (ratio-1)*100)
	// Comparing runs of different workloads is meaningless in both halves
	// of the gate, so a parameter mismatch is an error, not a silent skip.
	if cur.Scale != base.Scale || cur.Queries != base.Queries || cur.Seed != base.Seed || cur.K != base.K || cur.QL != base.QL {
		return fmt.Errorf("workload parameters do not match the baseline (scale %g vs %g, queries %d vs %d, seed %d vs %d): re-pin the record or align the flags",
			cur.Scale, base.Scale, cur.Queries, base.Queries, cur.Seed, base.Seed)
	}
	// The workload metrics are machine-independent: with matching
	// parameters, any deviation is an algorithmic change, not noise. The
	// ns/op half of the gate IS machine-dependent — re-pin the record when
	// the reference hardware changes.
	const tol = 1e-9
	if math.Abs(cur.NPE-base.NPE) > tol || math.Abs(cur.NOE-base.NOE) > tol || math.Abs(cur.SVG-base.SVG) > tol {
		return fmt.Errorf("workload metrics deviate from baseline: NPE %.2f vs %.2f, NOE %.2f vs %.2f, |SVG| %.2f vs %.2f",
			cur.NPE, base.NPE, cur.NOE, base.NOE, cur.SVG, base.SVG)
	}
	if ratio > 1+maxRegress {
		return fmt.Errorf("ns/op regressed %.1f%% (limit %.0f%%): %.2f ms/op vs baseline %.2f ms/op",
			(ratio-1)*100, maxRegress*100, cur.NsPerOp/1e6, base.NsPerOp/1e6)
	}
	return nil
}

// gateMetrics enforces the metrics-only bit-identity gate: on a matching
// workload, the machine-independent NPE/NOE/|SVG| metrics must equal the
// pinned record's exactly, with no ns/op comparison at all. This is the
// sharded-router gate: a sharded run answers the same query stream through
// scatter-gather, so its per-query ns/op is not comparable to the
// single-node record (different execution structure), but its metrics must
// be — the router's contract is bit-identical answers AND traces.
func gateMetrics(out *os.File, cur bench.BenchResult, path string) error {
	base, err := bench.ReadJSON(path)
	if err != nil {
		return fmt.Errorf("metrics baseline %s: %w", path, err)
	}
	if cur.Scale != base.Scale || cur.Queries != base.Queries || cur.Seed != base.Seed || cur.K != base.K || cur.QL != base.QL {
		return fmt.Errorf("workload parameters do not match the metrics baseline (scale %g vs %g, queries %d vs %d, seed %d vs %d): re-pin the record or align the flags",
			cur.Scale, base.Scale, cur.Queries, base.Queries, cur.Seed, base.Seed)
	}
	const tol = 1e-9
	if math.Abs(cur.NPE-base.NPE) > tol || math.Abs(cur.NOE-base.NOE) > tol || math.Abs(cur.SVG-base.SVG) > tol {
		return fmt.Errorf("workload metrics deviate from %s: NPE %.2f vs %.2f, NOE %.2f vs %.2f, |SVG| %.2f vs %.2f — the sharded trace is not bit-identical",
			path, cur.NPE, base.NPE, cur.NOE, base.NOE, cur.SVG, base.SVG)
	}
	fmt.Fprintf(out, "metrics baseline %s: NPE %.2f, NOE %.2f, |SVG| %.2f — exact match\n",
		path, cur.NPE, cur.NOE, cur.SVG)
	return nil
}

// gateKernel enforces the geometry-kernel speedup gate against the pinned
// pre-kernel record (BENCH_kernel_baseline.json): on a matching workload the
// measured run must be at least minSpeedup times faster, and the
// machine-independent NPE/NOE/|SVG| metrics must match the record exactly —
// the kernel is a pure execution-strategy change, so any metric deviation
// means it altered what the algorithm computed, not just how fast. The ns
// half is machine-dependent like every ns gate in this repo: when the
// reference hardware changes, re-pin the record rather than loosening the
// floor.
func gateKernel(out *os.File, cur bench.BenchResult, path string, minSpeedup float64) error {
	base, err := bench.ReadJSON(path)
	if err != nil {
		return fmt.Errorf("kernel baseline %s: %w", path, err)
	}
	if cur.Scale != base.Scale || cur.Queries != base.Queries || cur.Seed != base.Seed || cur.K != base.K || cur.QL != base.QL {
		return fmt.Errorf("workload parameters do not match the kernel baseline (scale %g vs %g, queries %d vs %d, seed %d vs %d): re-pin the record or align the flags",
			cur.Scale, base.Scale, cur.Queries, base.Queries, cur.Seed, base.Seed)
	}
	const tol = 1e-9
	if math.Abs(cur.NPE-base.NPE) > tol || math.Abs(cur.NOE-base.NOE) > tol || math.Abs(cur.SVG-base.SVG) > tol {
		return fmt.Errorf("workload metrics deviate from the kernel baseline: NPE %.2f vs %.2f, NOE %.2f vs %.2f, |SVG| %.2f vs %.2f",
			cur.NPE, base.NPE, cur.NOE, base.NOE, cur.SVG, base.SVG)
	}
	speedup := base.NsPerOp / cur.NsPerOp
	fmt.Fprintf(out, "kernel baseline %s: %.2f ms/op -> %.2f ms/op (%.2fx, floor %.1fx)\n",
		path, base.NsPerOp/1e6, cur.NsPerOp/1e6, speedup, minSpeedup)
	if speedup < minSpeedup {
		return fmt.Errorf("kernel speedup %.2fx is below the %.1fx floor: %.2f ms/op vs pre-kernel %.2f ms/op",
			speedup, minSpeedup, cur.NsPerOp/1e6, base.NsPerOp/1e6)
	}
	return nil
}
