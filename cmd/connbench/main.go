// Command connbench regenerates the paper's evaluation figures (Gao &
// Zheng, SIGMOD 2009, §5) as printed tables, and measures the query hot
// path into machine-readable BENCH_*.json records.
//
// Usage:
//
//	connbench [-fig all|9|10|11|12|13|ablations] [-scale 0.1] [-queries 100] [-seed 2009]
//	connbench -json <dir> [-baseline BENCH_table2_defaults.json] [-max-regress 0.10]
//
// -scale 1 reproduces the paper's full dataset cardinalities (|CA| = 60,344
// points, |LA| = 131,461 obstacles); the default 0.1 runs the whole suite in
// minutes while preserving every curve's shape.
//
// -json runs the Table 2 default cell (CL, k = 5, ql = 4.5%) through the
// public request API — one op is one COkNNRequest answered by DB.Exec on a
// prebuilt database — and writes BENCH_table2_defaults.json (ns/op,
// bytes/op, allocs/op, NPE, NOE, |SVG|) into the given directory instead of
// printing figures. With -baseline the fresh measurement is compared
// against a pinned record: the run fails (exit 1) when ns/op regresses by
// more than -max-regress, or when the machine-independent NPE/NOE/|SVG|
// metrics deviate at all — the CI regression gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"connquery"
	"connquery/internal/bench"
	"connquery/internal/geom"
	"connquery/internal/stats"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: all, 9, 10, 11, 12, 13, ablations")
	scale := flag.Float64("scale", 0.1, "dataset cardinality scale (1 = the paper's sizes)")
	queries := flag.Int("queries", 100, "queries per experiment cell")
	seed := flag.Int64("seed", 2009, "workload seed")
	jsonDir := flag.String("json", "", "measure the Table 2 default cell via the public Exec API and write BENCH_*.json into this directory instead of printing figures")
	baseline := flag.String("baseline", "", "with -json: compare against this pinned BENCH_*.json record and fail on regression")
	maxRegress := flag.Float64("max-regress", 0.10, "with -baseline: maximum tolerated ns/op regression (0.10 = 10%)")
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Queries: *queries, Seed: *seed}
	out := os.Stdout

	if *jsonDir != "" {
		res := measureTable2Exec(cfg)
		path, err := bench.WriteJSON(*jsonDir, res)
		if err != nil {
			fmt.Fprintln(os.Stderr, "connbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "%s: %.2f ms/op, %.0f allocs/op, NPE %.1f, NOE %.1f, |SVG| %.1f\n",
			path, res.NsPerOp/1e6, res.AllocsPerOp, res.NPE, res.NOE, res.SVG)
		if *baseline != "" {
			if err := compareBaseline(out, res, *baseline, *maxRegress); err != nil {
				fmt.Fprintln(os.Stderr, "connbench:", err)
				os.Exit(1)
			}
		}
		return
	}

	runners := map[string]func(){
		"9":         func() { bench.Fig9(out, cfg) },
		"10":        func() { bench.Fig10(out, cfg) },
		"11":        func() { bench.Fig11(out, cfg) },
		"12":        func() { bench.Fig12(out, cfg) },
		"13":        func() { bench.Fig13(out, cfg) },
		"ablations": func() { bench.Ablations(out, cfg) },
	}
	order := []string{"9", "10", "11", "12", "13", "ablations"}

	start := time.Now()
	switch strings.ToLower(*fig) {
	case "all":
		for _, k := range order {
			runners[k]()
		}
	default:
		r, ok := runners[strings.TrimPrefix(strings.ToLower(*fig), "fig")]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q (want all, 9, 10, 11, 12, 13 or ablations)\n", *fig)
			os.Exit(2)
		}
		r()
	}
	fmt.Fprintf(out, "completed in %v\n", time.Since(start).Round(time.Millisecond))
}

// measureTable2Exec measures the Table 2 default cell end to end through
// the public request API: the same workload, query stream and accounting as
// the engine-level measurement, with DB.Exec answering one COkNNRequest per
// op. Keeping the two paths comparable in one schema is what lets the
// baseline gate catch a regression introduced anywhere between the public
// surface and the engine.
func measureTable2Exec(cfg bench.Config) bench.BenchResult {
	ctx := context.Background()
	return bench.MeasureTable2With(cfg,
		"connbench -json (one op = one COkNNRequest via DB.Exec, index build excluded)",
		func(w bench.Workload) func(q geom.Segment) stats.QueryMetrics {
			db, err := connquery.Open(w.Points, w.Obstacles)
			if err != nil {
				fmt.Fprintln(os.Stderr, "connbench:", err)
				os.Exit(1)
			}
			return func(q geom.Segment) stats.QueryMetrics {
				ans, err := db.Exec(ctx, connquery.COkNNRequest{Seg: q, K: bench.DefaultK})
				if err != nil {
					fmt.Fprintln(os.Stderr, "connbench:", err)
					os.Exit(1)
				}
				return ans.Metrics()
			}
		})
}

// compareBaseline enforces the regression gate against a pinned record.
func compareBaseline(out *os.File, cur bench.BenchResult, path string, maxRegress float64) error {
	base, err := bench.ReadJSON(path)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	ratio := cur.NsPerOp / base.NsPerOp
	fmt.Fprintf(out, "baseline %s: %.2f ms/op -> %.2f ms/op (%+.1f%%)\n",
		path, base.NsPerOp/1e6, cur.NsPerOp/1e6, (ratio-1)*100)
	// Comparing runs of different workloads is meaningless in both halves
	// of the gate, so a parameter mismatch is an error, not a silent skip.
	if cur.Scale != base.Scale || cur.Queries != base.Queries || cur.Seed != base.Seed || cur.K != base.K || cur.QL != base.QL {
		return fmt.Errorf("workload parameters do not match the baseline (scale %g vs %g, queries %d vs %d, seed %d vs %d): re-pin the record or align the flags",
			cur.Scale, base.Scale, cur.Queries, base.Queries, cur.Seed, base.Seed)
	}
	// The workload metrics are machine-independent: with matching
	// parameters, any deviation is an algorithmic change, not noise. The
	// ns/op half of the gate IS machine-dependent — re-pin the record when
	// the reference hardware changes.
	const tol = 1e-9
	if math.Abs(cur.NPE-base.NPE) > tol || math.Abs(cur.NOE-base.NOE) > tol || math.Abs(cur.SVG-base.SVG) > tol {
		return fmt.Errorf("workload metrics deviate from baseline: NPE %.2f vs %.2f, NOE %.2f vs %.2f, |SVG| %.2f vs %.2f",
			cur.NPE, base.NPE, cur.NOE, base.NOE, cur.SVG, base.SVG)
	}
	if ratio > 1+maxRegress {
		return fmt.Errorf("ns/op regressed %.1f%% (limit %.0f%%): %.2f ms/op vs baseline %.2f ms/op",
			(ratio-1)*100, maxRegress*100, cur.NsPerOp/1e6, base.NsPerOp/1e6)
	}
	return nil
}
