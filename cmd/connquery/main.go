// Command connquery is a small CLI for running CONN-family queries over
// generated workloads, useful for exploring the system without writing code.
//
// Examples:
//
//	connquery -workload CL -scale 0.05 -query "1000,1000:1450,1000"
//	connquery -workload UL -ratio 2 -k 3 -query "500,500:950,500"
//	connquery -workload ZL -algo cnn -query "100,100:550,100"
//	connquery -workload CL -algo onn -k 5 -point "5000,5000"
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"connquery"
	"connquery/internal/bench"
	"connquery/internal/dataset"
	"connquery/internal/geom"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("connquery: ")

	workload := flag.String("workload", "CL", "dataset combination: CL, UL or ZL")
	scale := flag.Float64("scale", 0.05, "dataset cardinality scale (1 = the paper's sizes)")
	ratio := flag.Float64("ratio", 1, "|P|/|O| ratio for UL/ZL")
	seed := flag.Int64("seed", 2009, "workload seed")
	algo := flag.String("algo", "conn", "algorithm: conn, coknn, cnn, naive, onn")
	k := flag.Int("k", 5, "k for coknn/onn")
	samples := flag.Int("samples", 128, "sample count for the naive baseline")
	queryFlag := flag.String("query", "", "query segment as x1,y1:x2,y2 (space is [0,10000]^2)")
	pointFlag := flag.String("point", "", "query point as x,y (for -algo onn)")
	oneTree := flag.Bool("onetree", false, "index points and obstacles in one R-tree")
	buffer := flag.Int("buffer", 0, "LRU buffer pages per tree")
	timeout := flag.Duration("timeout", 0, "abort the query after this duration (0 = no deadline)")
	pointsCSV := flag.String("points-csv", "", "load data points from a CSV file (x,y rows) instead of generating them")
	obstaclesCSV := flag.String("obstacles-csv", "", "load obstacles from a CSV file (minx,miny,maxx,maxy rows)")
	flag.Parse()

	var w bench.Workload
	if *pointsCSV != "" || *obstaclesCSV != "" {
		if *pointsCSV == "" || *obstaclesCSV == "" {
			log.Fatal("-points-csv and -obstacles-csv must be given together")
		}
		pts, err := readPointsFile(*pointsCSV)
		if err != nil {
			log.Fatal(err)
		}
		obs, err := readRectsFile(*obstaclesCSV)
		if err != nil {
			log.Fatal(err)
		}
		w = bench.Workload{Name: "CSV", Points: dataset.FilterPoints(pts, obs), Obstacles: obs}
	} else {
		w = bench.BuildWorkload(strings.ToUpper(*workload), *scale, *ratio, *seed)
	}
	fmt.Printf("workload %s: %d points, %d obstacles\n", w.Name, len(w.Points), len(w.Obstacles))

	var opts []connquery.Option
	if *oneTree {
		opts = append(opts, connquery.WithOneTree())
	}
	if *buffer > 0 {
		opts = append(opts, connquery.WithBufferPages(*buffer))
	}
	db, err := connquery.Open(w.Points, w.Obstacles, opts...)
	if err != nil {
		log.Fatal(err)
	}

	// One execution path for every algorithm: build the Request, Exec it.
	// Ctrl-C (or -timeout) aborts mid-query via context cancellation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var req connquery.Request
	switch strings.ToLower(*algo) {
	case "onn":
		p, err := parsePoint(*pointFlag)
		if err != nil {
			log.Fatalf("-point: %v", err)
		}
		req = connquery.ONNRequest{P: p, K: *k}
	case "conn", "cnn", "naive", "coknn":
		q, err := parseSegment(*queryFlag)
		if err != nil {
			log.Fatalf("-query: %v", err)
		}
		switch strings.ToLower(*algo) {
		case "conn":
			req = connquery.CONNRequest{Seg: q}
		case "cnn":
			req = connquery.CNNRequest{Seg: q}
		case "naive":
			req = connquery.NaiveCONNRequest{Seg: q, Samples: *samples}
		default:
			req = connquery.COkNNRequest{Seg: q, K: *k}
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -algo %q\n", *algo)
		os.Exit(2)
	}

	ans, err := db.Exec(ctx, req)
	if err != nil {
		log.Fatalf("%s: %v", req.Kind(), err)
	}
	// Dispatch on the request, not the payload: an empty []Neighbor answer
	// is nil and must not fall through to the *Result branch.
	switch req.(type) {
	case connquery.ONNRequest:
		if len(ans.Neighbors()) == 0 {
			fmt.Println("no reachable data point")
		}
		for i, n := range ans.Neighbors() {
			fmt.Printf("%d. point %d at %v, obstructed distance %.2f\n", i+1, n.PID, n.P, n.Dist)
		}
	case connquery.COkNNRequest:
		res := ans.KResult()
		for _, tup := range res.Tuples {
			ids := make([]int32, len(tup.Owners))
			for i, o := range tup.Owners {
				ids[i] = o.PID
			}
			fmt.Printf("t [%.4f, %.4f]: points %v\n", tup.Span.Lo, tup.Span.Hi, ids)
		}
		fmt.Printf("%d tuples\n", len(res.Tuples))
	default:
		res := ans.Result()
		for _, tup := range res.Tuples {
			if tup.PID == connquery.NoOwner {
				fmt.Printf("t [%.4f, %.4f]: unreachable\n", tup.Span.Lo, tup.Span.Hi)
				continue
			}
			fmt.Printf("t [%.4f, %.4f]: point %d at %v\n", tup.Span.Lo, tup.Span.Hi, tup.PID, tup.P)
		}
		fmt.Printf("%d tuples, %d split points\n", len(res.Tuples), len(res.SplitPoints()))
	}
	fmt.Printf("metrics: %v\n", ans.Metrics())
}

func parsePoint(s string) (connquery.Point, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return connquery.Point{}, fmt.Errorf("want x,y, got %q", s)
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return connquery.Point{}, err
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return connquery.Point{}, err
	}
	return connquery.Pt(x, y), nil
}

func parseSegment(s string) (connquery.Segment, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return connquery.Segment{}, fmt.Errorf("want x1,y1:x2,y2, got %q", s)
	}
	a, err := parsePoint(parts[0])
	if err != nil {
		return connquery.Segment{}, err
	}
	b, err := parsePoint(parts[1])
	if err != nil {
		return connquery.Segment{}, err
	}
	return connquery.Seg(a, b), nil
}

func readPointsFile(path string) ([]geom.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadPointsCSV(f)
}

func readRectsFile(path string) ([]geom.Rect, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadRectsCSV(f)
}
