package main

import "testing"

func TestParsePoint(t *testing.T) {
	p, err := parsePoint("3.5, -2")
	if err != nil || p.X != 3.5 || p.Y != -2 {
		t.Fatalf("parsePoint: %v %v", p, err)
	}
	for _, bad := range []string{"", "1", "1,2,3", "a,b"} {
		if _, err := parsePoint(bad); err == nil {
			t.Fatalf("parsePoint(%q) succeeded", bad)
		}
	}
}

func TestParseSegment(t *testing.T) {
	s, err := parseSegment("0,0:10,5")
	if err != nil || s.A.X != 0 || s.B.Y != 5 {
		t.Fatalf("parseSegment: %v %v", s, err)
	}
	for _, bad := range []string{"", "1,2", "1,2:3", "1,2:3,4:5,6", "x,y:1,2"} {
		if _, err := parseSegment(bad); err == nil {
			t.Fatalf("parseSegment(%q) succeeded", bad)
		}
	}
}

func TestReadFilesMissing(t *testing.T) {
	if _, err := readPointsFile("/nonexistent/points.csv"); err == nil {
		t.Fatal("missing points file accepted")
	}
	if _, err := readRectsFile("/nonexistent/rects.csv"); err == nil {
		t.Fatal("missing rects file accepted")
	}
}
