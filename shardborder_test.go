package connquery

// Deterministic shard-border geometry: the cases where naive spatial
// partitioning breaks and the reach-bounded scatter-gather must not. Each
// scenario is differentially checked against a single-node twin over the
// same data.

import (
	"context"
	"testing"
)

// borderTwin opens a 2x2 sharded world and its single-node twin over a
// 100x100 world whose interior shard borders run at x=50 and y=50.
func borderTwin(t *testing.T, pts []Point, obs []Rect) (*DB, *ShardedDB) {
	t.Helper()
	// Pin the grid extent with corner points so the borders land at 50.
	single, err := Open(pts, obs)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := OpenSharded(pts, obs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.m.cols != 2 || sharded.m.rows != 2 {
		t.Fatalf("want 2x2 grid, got %dx%d", sharded.m.cols, sharded.m.rows)
	}
	return single, sharded
}

func checkBorderReq(t *testing.T, single *DB, sharded *ShardedDB, req Request) {
	t.Helper()
	ctx := context.Background()
	want, err := single.Exec(ctx, req)
	if err != nil {
		t.Fatalf("%s: single: %v", req.Kind(), err)
	}
	got, err := sharded.Exec(ctx, req)
	if err != nil {
		t.Fatalf("%s: sharded: %v", req.Kind(), err)
	}
	checkTwinAnswers(t, req, got, want)
}

// TestShardBorderStraddlingObstacle routes queries around an obstacle that
// straddles the vertical shard border: its replicas must behave as one
// obstacle, never double-count (NOE), and detours crossing the border must
// resolve exactly.
func TestShardBorderStraddlingObstacle(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(100, 100), Pt(100, 0), Pt(0, 100), // grid-pinning corners
		Pt(30, 50), Pt(70, 50), // NN candidates on both sides of the border
		Pt(48, 70), Pt(53, 30),
	}
	obs := []Rect{
		R(45, 40, 55, 60), // straddles x=50
	}
	single, sharded := borderTwin(t, pts, obs)

	// A query segment crossing the border right through the obstacle's
	// blocked corridor.
	checkBorderReq(t, single, sharded, CONNRequest{Seg: Seg(Pt(40, 50), Pt(60, 50))})
	checkBorderReq(t, single, sharded, COkNNRequest{Seg: Seg(Pt(40, 45), Pt(60, 55)), K: 3})
	checkBorderReq(t, single, sharded, ONNRequest{P: Pt(49.5, 50), K: 4})
	checkBorderReq(t, single, sharded, DistanceRequest{A: Pt(44, 50), B: Pt(56, 50)})
	checkBorderReq(t, single, sharded, VisibleKNNRequest{P: Pt(50, 38), K: 3})

	// The obstacle is one logical object: counted once, deletable once.
	if n1, n2 := single.NumObstacles(), sharded.NumObstacles(); n1 != n2 {
		t.Fatalf("obstacle counts differ: %d vs %d", n1, n2)
	}
	if !sharded.DeleteObstacle(0) || !single.DeleteObstacle(0) {
		t.Fatal("straddling obstacle delete failed")
	}
	if sharded.DeleteObstacle(0) {
		t.Fatal("double delete of straddling obstacle succeeded")
	}
	checkBorderReq(t, single, sharded, CONNRequest{Seg: Seg(Pt(40, 50), Pt(60, 50))})
}

// TestShardSpanningQuery runs a query whose segment spans three of the four
// cells, forcing a genuine union-mirror execution, and verifies the router
// recorded the multi-cell rounds while still pruning below broadcast.
func TestShardSpanningQuery(t *testing.T) {
	var pts []Point
	pts = append(pts, Pt(0, 0), Pt(100, 100), Pt(100, 0), Pt(0, 100))
	for i := 0; i < 20; i++ {
		f := float64(i)
		pts = append(pts, Pt(2+f*4.8, 25), Pt(2+f*4.8, 75))
	}
	obs := []Rect{R(20, 30, 30, 40), R(60, 60, 70, 70), R(40, 45, 60, 55)}
	single, sharded := borderTwin(t, pts, obs)

	// Diagonal through cells (0,0) → (1,0)/(0,1) → (1,1); long enough that
	// the seed span alone covers ≥3 cells.
	checkBorderReq(t, single, sharded, CONNRequest{Seg: Seg(Pt(10, 40), Pt(90, 60))})
	checkBorderReq(t, single, sharded, TrajectoryRequest{Waypoints: []Point{Pt(10, 25), Pt(50, 25), Pt(90, 75)}})
	checkBorderReq(t, single, sharded, CONNBatchRequest{Segs: []Segment{
		Seg(Pt(5, 25), Pt(95, 25)),
		Seg(Pt(48, 20), Pt(52, 80)),
	}})
	checkBorderReq(t, single, sharded, RangeRequest{Center: Pt(50, 50), Radius: 40})
	checkBorderReq(t, single, sharded, EDistanceJoinRequest{Queries: []Point{Pt(25, 25), Pt(75, 75)}, E: 30})

	// Cell-local queries ride the direct path; with them in the mix the
	// router must come in strictly under broadcast cost.
	checkBorderReq(t, single, sharded, ONNRequest{P: Pt(25, 24), K: 2})
	checkBorderReq(t, single, sharded, ONNRequest{P: Pt(75, 76), K: 2})
	checkBorderReq(t, single, sharded, RangeRequest{Center: Pt(20, 25), Radius: 5})

	st := sharded.ShardStats()
	if st.DirectExecs == 0 {
		t.Fatalf("no cell-local query took the direct path: %+v", st)
	}
	if st.ShardExecs <= st.RouterExecs {
		t.Fatalf("no multi-cell round was recorded: %+v", st)
	}
	if st.ShardExecs >= st.BroadcastCost {
		t.Fatalf("router did not prune below broadcast: shard execs %d >= broadcast %d", st.ShardExecs, st.BroadcastCost)
	}
}

// TestShardUnreachableFullFanout makes an answer provably world-dependent: a
// query point sealed inside a blanket of obstacles has unreachable targets,
// the engine exhausts its streams under an unbounded threshold, Reach goes
// +Inf, and the router must expand to the full grid before accepting — the
// only world that reproduces the trace.
func TestShardUnreachableFullFanout(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(100, 100), Pt(100, 0), Pt(0, 100),
		Pt(25, 25), // the sealed query-side world
		Pt(75, 75), // a target it can never reach
	}
	// A closed box of four wall obstacles around (25,25), none containing a
	// point, plus slack so the walls don't touch the sealed point.
	obs := []Rect{
		R(20, 20, 30, 21), R(20, 29, 30, 30), // bottom, top
		R(20, 20, 21, 30), R(29, 20, 30, 30), // left, right
	}
	single, sharded := borderTwin(t, pts, obs)

	req := ONNRequest{P: Pt(25, 25), K: 3}
	ctx := context.Background()
	want, err := single.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	checkTwinAnswers(t, req, got, want)

	st := sharded.ShardStats()
	if st.FullFanouts == 0 {
		t.Fatalf("unreachable answer accepted without full fan-out: %+v", st)
	}
	if st.Expansions == 0 {
		t.Fatalf("router never expanded: %+v", st)
	}

	// CONN through the sealed region: unreachable intervals report NoOwner
	// identically.
	checkBorderReq(t, single, sharded, CONNRequest{Seg: Seg(Pt(23, 25), Pt(27, 25))})
}

// TestShardBoundaryPointOwnership pins the half-open ownership convention: a
// point exactly on an interior border belongs to the right/upper cell, and
// queries around it stay exact.
func TestShardBoundaryPointOwnership(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(100, 100), Pt(100, 0), Pt(0, 100),
		Pt(50, 50), // exactly on both interior borders
		Pt(50, 25), Pt(25, 50),
	}
	single, sharded := borderTwin(t, pts, nil)
	checkBorderReq(t, single, sharded, ONNRequest{P: Pt(49.9, 49.9), K: 3})
	checkBorderReq(t, single, sharded, ONNRequest{P: Pt(50.1, 50.1), K: 3})
	checkBorderReq(t, single, sharded, CONNRequest{Seg: Seg(Pt(49, 49), Pt(51, 51))})

	// The border point must be deletable through the router and the twins
	// must agree afterwards.
	if !sharded.DeletePoint(4) || !single.DeletePoint(4) {
		t.Fatal("border point delete failed")
	}
	checkBorderReq(t, single, sharded, ONNRequest{P: Pt(50, 50), K: 2})
}

// TestShardMirrorRegistryBounded drives more distinct multi-cell spans than
// the mirror registry admits (a 3x3 grid has 36 spans, the cap is 2*9=18)
// and checks the LRU holds: the live mirror count stays within the cap,
// evictions are recorded, re-queried spans rebuild from the log with
// bit-identical answers, and the aggregated cache counters survive the
// evictions instead of dropping.
func TestShardMirrorRegistryBounded(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(90, 90), Pt(90, 0), Pt(0, 90)} // borders at 30/60
	for x := 5; x < 90; x += 8 {
		for y := 5; y < 90; y += 8 {
			pts = append(pts, Pt(float64(x), float64(y)))
		}
	}
	// Obstacle interiors sit in the gaps of the 8-pitch lattice (x,y ≡ 5 mod 8).
	obs := []Rect{R(14, 38, 20, 44), R(46, 14, 52, 20), R(62, 70, 68, 76)}
	single, err := Open(pts, obs)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := OpenSharded(pts, obs, 9)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.m.cols != 3 || sharded.m.rows != 3 {
		t.Fatalf("want 3x3 grid, got %dx%d", sharded.m.cols, sharded.m.rows)
	}

	// One CONN segment per multi-cell span of the grid, kept well inside the
	// span so the seed resolves exactly there.
	var reqs []Request
	for c0 := 0; c0 < 3; c0++ {
		for c1 := c0; c1 < 3; c1++ {
			for r0 := 0; r0 < 3; r0++ {
				for r1 := r0; r1 < 3; r1++ {
					if c0 == c1 && r0 == r1 {
						continue
					}
					reqs = append(reqs, CONNRequest{Seg: Seg(
						Pt(float64(c0*30+7), float64(r0*30+7)),
						Pt(float64(c1*30+23), float64(r1*30+23)))})
				}
			}
		}
	}
	for _, req := range reqs {
		checkBorderReq(t, single, sharded, req)
	}
	st := sharded.ShardStats()
	if st.Mirrors > sharded.mirCap {
		t.Fatalf("mirror registry exceeded its cap: %d live > %d", st.Mirrors, sharded.mirCap)
	}
	if st.MirrorEvicts == 0 {
		t.Fatalf("%d spans queried but nothing was evicted: %+v", len(reqs), st)
	}

	// Mutate, then re-query every span: evicted mirrors must rebuild from
	// the log and stay differentially exact.
	if _, err := sharded.InsertPoint(Pt(33, 33)); err != nil {
		t.Fatal(err)
	}
	if _, err := single.InsertPoint(Pt(33, 33)); err != nil {
		t.Fatal(err)
	}
	cs := sharded.CacheStats()
	for _, req := range reqs {
		checkBorderReq(t, single, sharded, req)
	}
	if after := sharded.CacheStats(); after.Misses < cs.Misses || after.Hits < cs.Hits {
		t.Fatalf("cache counters went backwards across evictions: %+v -> %+v", cs, after)
	}
}
