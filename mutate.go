package connquery

import (
	"fmt"
	"math"

	"connquery/internal/core"
	"connquery/internal/rtree"
	"connquery/internal/wal"
)

// Mutation support with snapshot isolation. Every mutation serializes on the
// DB's writer lock, builds a new immutable version from the current one —
// copy-on-write R*-tree (only the nodes on the touched root-to-leaf paths
// are duplicated), shared point/obstacle storage, copy-on-write tombstone
// maps — and publishes it with a single atomic pointer swap. Queries load
// the version pointer once at their start, so they always see one
// consistent snapshot: mutations may run concurrently with any number of
// queries on this DB or its clones, and clones pinned to older versions
// keep answering from exactly the state they captured.
//
// PIDs and OIDs are never reused: storage is append-only along a version
// chain and deletions only set tombstones, so result PIDs from any version
// remain meaningful.

func validCoord(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func validPoint(p Point) bool { return validCoord(p.X) && validCoord(p.Y) }

// validRect accepts only well-formed, non-degenerate obstacles: both sides
// must have strictly positive extent. Zero-area rectangles have an empty
// open interior, so they could never block anything, yet their coincident
// edges and corners violate the occlusion code's assumption that edge
// endpoints are distinct. Open and InsertObstacle share this predicate, so
// they accept exactly the same obstacle set.
func validRect(r Rect) bool {
	return validCoord(r.MinX) && validCoord(r.MinY) &&
		validCoord(r.MaxX) && validCoord(r.MaxY) &&
		r.MinX < r.MaxX && r.MinY < r.MaxY
}

// grownCopy returns a copy of s with spare capacity for future appends.
func grownCopy[T any](s []T) []T {
	c := 2 * len(s)
	if c < 8 {
		c = 8
	}
	out := make([]T, len(s), c)
	copy(out, s)
	return out
}

// cloneTombs copies a tombstone map and adds one entry. The published map is
// never modified in place: versions share it until the next deletion. The
// full copy makes each delete O(total deletions); acceptable while
// deletions are rare relative to queries — a per-version overlay chain (or
// compaction once tombstones dominate) is the upgrade path if delete-heavy
// workloads appear.
func cloneTombs(m map[int32]bool, add int32) map[int32]bool {
	nm := make(map[int32]bool, len(m)+1)
	for k := range m {
		nm[k] = true
	}
	nm[add] = true
	return nm
}

// beginVersion starts a successor of v sharing all of its structure. The
// caller overwrites the fields it changes and must publish via db.publish.
func beginVersion(v *version) *version {
	return &version{
		epoch:      v.epoch + 1,
		points:     v.points,
		obstacles:  v.obstacles,
		deletedPts: v.deletedPts,
		deletedObs: v.deletedObs,
	}
}

// publish makes nv the DB's current version and wakes the Watch
// subscriptions whose answer the committing change box could have altered
// (watchSet.notify filters against each watcher's impact region). Callers
// hold db.mu, so publishes (and therefore watcher wake-ups) are ordered;
// wake-ups are non-blocking and coalesce per watcher.
func (db *DB) publish(nv *version, change Rect, points bool) {
	db.cur.Store(nv)
	db.watch.notify(change, points)
}

// commit applies one mutation's impact to the answer cache, then publishes.
// change is the mutation's change box (the inserted/deleted object's own
// bounds) and points reports whether it touched the point set (vs the
// obstacle set). Instead of a blanket epoch bump, only cache entries whose
// conservative impact region intersects the change box are invalidated;
// every other live entry is promoted to nv's epoch, so hot requests — and
// Watch subscriptions, which re-resolve through the cache — keep hitting
// across unrelated writes. Invalidation runs before the version swap (both
// under db.mu, so mutations apply to the cache in commit order); the
// ordering is not load-bearing for correctness, because a lookup only hits
// an entry whose validity range covers the queried epoch, but it means a
// watcher woken by this publish finds its promoted entry already in place.
//
// On a durable handle the mutation's WAL record is appended — and, in
// strict mode or under WithSyncAck, fsynced — before any of that: an error
// means nothing was published and the caller must discard nv (the orphaned
// array append is harmless; the next insert at this epoch overwrites the
// same slot).
func (db *DB) commit(v, nv *version, change Rect, points bool, rec wal.Record) error {
	if db.dur != nil {
		if err := db.dur.logRecord(nv.epoch, rec); err != nil {
			return err
		}
		if db.cfg.syncAck {
			if err := db.dur.syncLocked(); err != nil {
				return err
			}
		}
	}
	db.cache.Invalidate(v.epoch, nv.epoch, change, points)
	// A plain mutation is never a motion-bounded tick (only DB.Apply can
	// prove speed compliance), so it bounds every outstanding validity
	// horizon. Store before the version swap: a watcher that observes the
	// new epoch must also observe the bound.
	db.lastUnbounded.Store(nv.epoch)
	db.publish(nv, change, points)
	if db.dur != nil {
		db.maybeCheckpointLocked(nv)
	}
	return nil
}

// pointBox is the change box of a point mutation.
func pointBox(p Point) Rect {
	return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
}

// mutateTree builds nv's engine from v's: the tree holding items of the
// given kind is copy-on-write cloned and mutated by fn, the other tree
// handle is shared untouched. I/O accounting is detached while fn runs —
// structural page writes are not part of the paper's query cost model, and
// skipping the recorder keeps the writer off the (unsynchronized) LRU
// buffer while readers use it. Counters, options and the shared query-state
// pool carry over so metrics and warm scratch survive across versions.
// mutateTree returns fn's verdict; on false the caller must discard nv.
func (db *DB) mutateTree(v, nv *version, kind rtree.Kind, fn func(*rtree.Tree) bool) bool {
	old := v.eng
	eng := &core.Engine{
		Obstacles: nv.obstacles,
		// The kernel is shared when the obstacle slice did not grow (point
		// mutations, deletions — tombstoned obstacles stay in the kernel
		// harmlessly, queries never mark them) and extended otherwise;
		// Extend itself shares the BVH until the appended tail outgrows it.
		Kernel:      old.Kernel.Extend(nv.obstacles),
		Opts:        db.cfg.tuning,
		Epoch:       nv.epoch,
		States:      db.states,
		DataCounter: old.DataCounter,
		ObstCounter: old.ObstCounter,
	}
	cow := func(t *rtree.Tree, rec rtree.AccessRecorder) (*rtree.Tree, bool) {
		nt := t.CloneCOW()
		nt.SetAccessRecorder(nil)
		ok := fn(nt)
		nt.SetAccessRecorder(rec)
		return nt, ok
	}
	var ok bool
	switch {
	case old.OneTree():
		eng.Unified, ok = cow(old.Unified, old.DataCounter)
	case kind == rtree.KindPoint:
		eng.Data, ok = cow(old.Data, old.DataCounter)
		eng.Obst = old.Obst
	default:
		eng.Obst, ok = cow(old.Obst, old.ObstCounter)
		eng.Data = old.Data
	}
	nv.eng = eng
	return ok
}

// InsertPoint adds a data point and returns its PID. The point must not lie
// strictly inside any obstacle. The insertion becomes visible to queries
// that start after InsertPoint returns; in-flight queries and existing
// clones keep their snapshot.
func (db *DB) InsertPoint(p Point) (int32, error) {
	if !validPoint(p) {
		return 0, fmt.Errorf("connquery: invalid point %v", p)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writableLocked(); err != nil {
		return 0, err
	}
	v := db.current()
	for _, o := range v.obstaclesNear(p) {
		if o.ContainsOpen(p) {
			return 0, fmt.Errorf("connquery: point %v lies strictly inside obstacle %v", p, o)
		}
	}
	pid := int32(len(v.points))
	nv := beginVersion(v)
	if !db.ownPts {
		nv.points = grownCopy(v.points)
		db.ownPts = true
	}
	// Appending in place is safe even while older versions are being read:
	// they only ever index their own shorter prefix of the shared array.
	nv.points = append(nv.points, p)
	db.mutateTree(v, nv, rtree.KindPoint, func(t *rtree.Tree) bool {
		t.Insert(rtree.PointItem(pid, p))
		return true
	})
	rec := wal.Record{Op: wal.OpInsertPoint, ID: pid, Coords: [4]float64{p.X, p.Y}}
	if err := db.commit(v, nv, pointBox(p), true, rec); err != nil {
		return 0, err
	}
	return pid, nil
}

// DeletePoint removes the point with the given PID. It reports whether the
// point existed (deleting twice returns false).
func (db *DB) DeletePoint(pid int32) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.writableLocked() != nil {
		return false
	}
	v := db.current()
	if pid < 0 || int(pid) >= len(v.points) || v.deletedPts[pid] {
		return false
	}
	nv := beginVersion(v)
	nv.deletedPts = cloneTombs(v.deletedPts, pid)
	if !db.mutateTree(v, nv, rtree.KindPoint, func(t *rtree.Tree) bool {
		return t.Delete(rtree.PointItem(pid, v.points[pid]))
	}) {
		return false
	}
	p := v.points[pid]
	rec := wal.Record{Op: wal.OpDeletePoint, ID: pid, Coords: [4]float64{p.X, p.Y}}
	if db.commit(v, nv, pointBox(p), true, rec) != nil {
		return false
	}
	db.motion.forgetAt(pid, nv.epoch)
	return true
}

// InsertObstacle adds an obstacle and returns its ID. The rectangle must
// have strictly positive width and height (the same rule Open enforces) and
// no existing data point may lie strictly inside it.
func (db *DB) InsertObstacle(r Rect) (int32, error) {
	if !validRect(r) {
		return 0, fmt.Errorf("connquery: invalid obstacle %v (must be finite with positive width and height)", r)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writableLocked(); err != nil {
		return 0, err
	}
	v := db.current()
	var blocked *int32
	v.pointTree().View(nil).Search(r, func(it rtree.Item) bool {
		if it.Kind == rtree.KindPoint && r.ContainsOpen(it.Point()) {
			id := it.ID
			blocked = &id
			return false
		}
		return true
	})
	if blocked != nil {
		return 0, fmt.Errorf("connquery: obstacle %v would swallow point %d", r, *blocked)
	}
	oid := int32(len(v.obstacles))
	nv := beginVersion(v)
	if !db.ownObs {
		nv.obstacles = grownCopy(v.obstacles)
		db.ownObs = true
	}
	nv.obstacles = append(nv.obstacles, r)
	db.mutateTree(v, nv, rtree.KindObstacle, func(t *rtree.Tree) bool {
		t.Insert(rtree.ObstacleItem(oid, r))
		return true
	})
	rec := wal.Record{Op: wal.OpInsertObstacle, ID: oid, Coords: [4]float64{r.MinX, r.MinY, r.MaxX, r.MaxY}}
	if err := db.commit(v, nv, r, false, rec); err != nil {
		return 0, err
	}
	return oid, nil
}

// DeleteObstacle removes the obstacle with the given ID. It reports whether
// the obstacle existed.
func (db *DB) DeleteObstacle(oid int32) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.writableLocked() != nil {
		return false
	}
	v := db.current()
	if oid < 0 || int(oid) >= len(v.obstacles) || v.deletedObs[oid] {
		return false
	}
	nv := beginVersion(v)
	nv.deletedObs = cloneTombs(v.deletedObs, oid)
	if !db.mutateTree(v, nv, rtree.KindObstacle, func(t *rtree.Tree) bool {
		return t.Delete(rtree.ObstacleItem(oid, v.obstacles[oid]))
	}) {
		return false
	}
	o := v.obstacles[oid]
	rec := wal.Record{Op: wal.OpDeleteObstacle, ID: oid, Coords: [4]float64{o.MinX, o.MinY, o.MaxX, o.MaxY}}
	return db.commit(v, nv, o, false, rec) == nil
}
