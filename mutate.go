package connquery

import (
	"fmt"
	"math"

	"connquery/internal/rtree"
)

// Mutation support. The R*-tree handles inserts and deletes natively; the
// DB layers ID management and the point/obstacle validity rules on top.
// Mutations must not run concurrently with queries or other mutations
// (same rule as any single-writer index); clones see mutations because the
// R-tree nodes are shared, so re-Clone after mutating.

func validCoord(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func validPoint(p Point) bool { return validCoord(p.X) && validCoord(p.Y) }

func validRect(r Rect) bool {
	return validCoord(r.MinX) && validCoord(r.MinY) &&
		validCoord(r.MaxX) && validCoord(r.MaxY) && r.Valid()
}

// InsertPoint adds a data point and returns its PID. The point must not lie
// strictly inside any obstacle.
func (db *DB) InsertPoint(p Point) (int32, error) {
	if !validPoint(p) {
		return 0, fmt.Errorf("connquery: invalid point %v", p)
	}
	for _, o := range db.obstaclesNear(p) {
		if o.ContainsOpen(p) {
			return 0, fmt.Errorf("connquery: point %v lies strictly inside obstacle %v", p, o)
		}
	}
	pid := int32(len(db.points))
	db.points = append(db.points, p)
	db.tree(rtree.KindPoint).Insert(rtree.PointItem(pid, p))
	return pid, nil
}

// DeletePoint removes the point with the given PID. It reports whether the
// point existed (deleting twice returns false).
func (db *DB) DeletePoint(pid int32) bool {
	if pid < 0 || int(pid) >= len(db.points) || db.deletedPts[pid] {
		return false
	}
	if !db.tree(rtree.KindPoint).Delete(rtree.PointItem(pid, db.points[pid])) {
		return false
	}
	if db.deletedPts == nil {
		db.deletedPts = make(map[int32]bool)
	}
	db.deletedPts[pid] = true
	return true
}

// InsertObstacle adds an obstacle and returns its ID. No existing data
// point may lie strictly inside it.
func (db *DB) InsertObstacle(r Rect) (int32, error) {
	if !validRect(r) {
		return 0, fmt.Errorf("connquery: invalid obstacle %v", r)
	}
	var blocked *int32
	db.tree(rtree.KindPoint).Search(r, func(it rtree.Item) bool {
		if it.Kind == rtree.KindPoint && r.ContainsOpen(it.Point()) {
			id := it.ID
			blocked = &id
			return false
		}
		return true
	})
	if blocked != nil {
		return 0, fmt.Errorf("connquery: obstacle %v would swallow point %d", r, *blocked)
	}
	oid := int32(len(db.obstacles))
	db.obstacles = append(db.obstacles, r)
	db.eng.Obstacles = db.obstacles
	db.tree(rtree.KindObstacle).Insert(rtree.ObstacleItem(oid, r))
	return oid, nil
}

// DeleteObstacle removes the obstacle with the given ID. It reports whether
// the obstacle existed.
func (db *DB) DeleteObstacle(oid int32) bool {
	if oid < 0 || int(oid) >= len(db.obstacles) || db.deletedObs[oid] {
		return false
	}
	if !db.tree(rtree.KindObstacle).Delete(rtree.ObstacleItem(oid, db.obstacles[oid])) {
		return false
	}
	if db.deletedObs == nil {
		db.deletedObs = make(map[int32]bool)
	}
	db.deletedObs[oid] = true
	return true
}

// tree returns the index holding items of the given kind.
func (db *DB) tree(kind rtree.Kind) *rtree.Tree {
	if db.eng.OneTree() {
		return db.eng.Unified
	}
	if kind == rtree.KindPoint {
		return db.eng.Data
	}
	return db.eng.Obst
}
