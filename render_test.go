package connquery

import (
	"context"
	"strings"
	"testing"
)

func TestRenderSceneBasics(t *testing.T) {
	db := smallDB(t)
	q := Seg(Pt(0, 0), Pt(100, 0))
	res, _, err := Run(context.Background(), db, CONNRequest{Seg: q})
	if err != nil {
		t.Fatal(err)
	}
	out := db.RenderScene(q, res, 60, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 20 {
		t.Fatalf("rendered %d lines, want 20", len(lines))
	}
	for i, l := range lines {
		if len(l) != 60 {
			t.Fatalf("line %d has width %d, want 60", i, len(l))
		}
	}
	for _, want := range []string{"S", "E", "#", "-", "|"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered scene missing %q:\n%s", want, out)
		}
	}
	// All four point digits appear.
	for _, d := range []string{"0", "1", "2", "3"} {
		if !strings.Contains(out, d) {
			t.Fatalf("point digit %s missing:\n%s", d, out)
		}
	}
}

func TestRenderSceneWithoutResult(t *testing.T) {
	db := smallDB(t)
	out := db.RenderScene(Seg(Pt(0, 0), Pt(100, 100)), nil, 40, 10)
	if strings.Contains(out, "|") {
		t.Fatal("split markers rendered without a result")
	}
	if !strings.Contains(out, "S") || !strings.Contains(out, "E") {
		t.Fatal("endpoints missing")
	}
}

func TestRenderSceneTinyDimensionsClamped(t *testing.T) {
	db := smallDB(t)
	out := db.RenderScene(Seg(Pt(0, 0), Pt(1, 1)), nil, 1, 1)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 || len(lines[0]) != 8 {
		t.Fatalf("minimum dimensions not enforced: %dx%d", len(lines[0]), len(lines))
	}
}
