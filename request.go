package connquery

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"connquery/internal/core"
	"connquery/internal/flatgeom"
)

// This file is the request-based query surface: every query the database
// answers is a first-class Request value executed by one path —
// DB.Exec(ctx, req, opts...) — that handles validation, version resolution
// (AtVersion / AtSnapshot), per-query tuning, worker pooling and context
// cancellation uniformly. The legacy per-query methods (CONN, COkNN, ONN,
// ...) survive as thin deprecated shims in legacy.go; DB.Watch (watch.go)
// re-executes a Request against every freshly published MVCC version.

// Typed errors returned by Exec and the snapshot machinery. Wrap-aware:
// test with errors.Is.
var (
	// ErrNilRequest is returned by Exec and Watch for a nil Request.
	ErrNilRequest = errors.New("connquery: nil request")
	// ErrSnapshotReleased is returned when a query pins a Snapshot whose
	// Release has already run.
	ErrSnapshotReleased = errors.New("connquery: snapshot already released")
	// ErrForeignSnapshot is returned when a query pins a Snapshot taken from
	// a different DB handle.
	ErrForeignSnapshot = errors.New("connquery: snapshot belongs to a different DB handle")
	// ErrVersionNotPinned is returned by AtVersion when the requested epoch
	// is neither the current version nor kept alive by an unreleased
	// Snapshot of this handle.
	ErrVersionNotPinned = errors.New("connquery: version not pinned")
	// ErrPinnedWatch is returned by Watch when the options pin a fixed
	// version: a watch follows the live version chain by definition.
	ErrPinnedWatch = errors.New("connquery: Watch cannot pin a fixed version")
)

// Request is one executable query. The concrete request types in this
// package (CONNRequest, COkNNRequest, ONNRequest, ...) are the only
// implementations: a Request carries the query's parameters and nothing
// else, so values are serializable by the caller and reusable across Exec,
// Watch and different DB handles. Single-item requests are plain comparable
// structs; the multi-item ones (CONNBatchRequest, TrajectoryRequest, the
// join requests) carry slices and must not be compared with ==.
type Request interface {
	// Kind names the query family ("CONN", "COkNN", ...), for logs and
	// error messages.
	Kind() string

	// validate rejects malformed parameters before any work starts.
	validate() error
	// run executes the request on the prepared execution context. It may
	// panic with core.Aborted when cancellation fires; Exec recovers that.
	run(x *execution) (any, Metrics, error)
}

// TypedRequest is a Request whose answer payload has static type A. Every
// concrete request implements it for exactly one A (CONNRequest for
// *Result, COkNNRequest for *KResult, ...), which lets the generic Run
// helper return statically typed answers without assertions at call sites.
type TypedRequest[A any] interface {
	Request
	// answer is a phantom method: it is never called, it only pins A so
	// type inference can recover the payload type from the request type.
	answer() A
}

// Run executes req on db and returns the answer payload with its static
// type, inferred from the request: Run(ctx, db, CONNRequest{Seg: q})
// returns (*Result, Metrics, error). It is Exec plus the type assertion.
func Run[A any](ctx context.Context, db *DB, req TypedRequest[A], opts ...QueryOption) (A, Metrics, error) {
	ans, err := db.Exec(ctx, req, opts...)
	if err != nil {
		var zero A
		return zero, Metrics{}, err
	}
	return ans.value.(A), ans.metrics, nil
}

// ---------------------------------------------------------------------------
// Query options

// QueryOption configures one Exec or Watch call. Options compose; later
// options win on conflict.
type QueryOption func(*execOptions)

type execOptions struct {
	snap    *Snapshot
	bySnap  bool
	ssnap   *ShardedSnapshot
	bySSnap bool
	epoch   uint64
	byEpoch bool
	tuning  *Tuning
	workers int
	hasWork bool
	noCache bool
}

// pinned reports whether the options pin a fixed version.
func (o *execOptions) pinned() bool { return o.bySnap || o.byEpoch || o.bySSnap }

// AtSnapshot pins the query to the version held by an unreleased Snapshot
// of the same DB handle, regardless of how far the live version has
// advanced since. A nil Snapshot is rejected at Exec time (it is NOT
// silently the live version).
func AtSnapshot(s *Snapshot) QueryOption {
	return func(o *execOptions) {
		o.snap = s
		o.bySnap = true
		o.byEpoch = false
		o.ssnap, o.bySSnap = nil, false
	}
}

// AtVersion pins the query to the MVCC version with the given epoch. The
// epoch must be alive: either the current version or one kept pinned by an
// unreleased Snapshot of this handle — otherwise Exec returns
// ErrVersionNotPinned.
func AtVersion(epoch uint64) QueryOption {
	return func(o *execOptions) {
		o.epoch = epoch
		o.byEpoch = true
		o.snap, o.bySnap = nil, false
		o.ssnap, o.bySSnap = nil, false
	}
}

// WithQueryTuning overrides the DB's ablation switches for this call only,
// so one handle can serve both the full algorithm and ablated variants
// concurrently.
func WithQueryTuning(t Tuning) QueryOption {
	return func(o *execOptions) { o.tuning = &t }
}

// WithNoCache bypasses the answer cache for this call: the request executes
// on the engine unconditionally and its answer is not inserted. Use it when
// a fresh cost profile (Metrics) matters — cache hits replay the metrics of
// the execution that populated the entry — or to benchmark the uncached
// path.
func WithNoCache() QueryOption {
	return func(o *execOptions) { o.noCache = true }
}

// WithWorkers runs a multi-item request (CONNBatchRequest,
// EDistanceJoinRequest, DistanceSemiJoinRequest, TrajectoryRequest) on a
// bounded pool of n workers, each with its own engine view — shared
// immutable indexes, private page counters, private (optional) LRU buffer
// and private warm query state. For single-item requests it instead engages
// intra-query parallelism: the candidate sight-line batches of obstacle
// insertion and CPLC's per-candidate visible-region computation fan across
// a pool of n lanes inside the one execution, with the answer — payload and
// NPE/NOE/|SVG| metrics — bit-identical to the sequential path. n <= 0
// selects GOMAXPROCS, so on a single-CPU machine the option resolves to the
// sequential path; absent the option, execution is always sequential.
func WithWorkers(n int) QueryOption {
	return func(o *execOptions) { o.workers = n; o.hasWork = true }
}

// ---------------------------------------------------------------------------
// Answers

// Answer is the outcome of one executed Request: the payload, the metrics
// the paper reports for every query, and the MVCC epoch the query ran
// against. Payload accessors return the zero value when the answer holds a
// different kind; Value gives the untyped payload, and the generic Run
// helper returns it statically typed.
type Answer struct {
	req        Request
	epoch      uint64
	value      any
	metrics    Metrics
	items      []Metrics
	cached     bool
	validUntil time.Time
}

// Request returns the request this answer was produced for.
func (a *Answer) Request() Request { return a.req }

// Epoch returns the snapshot epoch the query executed against.
func (a *Answer) Epoch() uint64 { return a.epoch }

// ValidUntil returns the answer's validity horizon: the earliest wall-clock
// instant at which any speed-declared object (DB.Apply with Mutation.Speed)
// could first reach the answer's impact region. Until then, ticks made
// entirely of speed-compliant moves provably leave the answer bit-identical,
// and Watch subscriptions skip re-execution (motion.go). The zero time means
// no horizon: nothing is tracked, a tracked object is too close, or the
// answer's region is unbounded. The horizon is advisory for plain mutations —
// any non-compliant commit re-arms watchers regardless of it.
func (a *Answer) ValidUntil() time.Time { return a.validUntil }

// Cached reports whether the answer was served from the answer cache
// without executing the engine. A cached answer's payload is bit-identical
// to what a fresh execution at Epoch would produce; its Metrics (and
// ItemMetrics) are those of the execution that populated the entry, since a
// hit performs no engine work of its own.
func (a *Answer) Cached() bool { return a.cached }

// Metrics returns the query's cost profile. For multi-item requests it is
// the aggregate (summed faults/NPE/NOE, peak SVG, wall-clock CPU).
func (a *Answer) Metrics() Metrics { return a.metrics }

// Value returns the untyped answer payload.
func (a *Answer) Value() any { return a.value }

// Result returns the CONN-family payload (CONNRequest, CNNRequest,
// NaiveCONNRequest), or nil for other requests.
func (a *Answer) Result() *Result { r, _ := a.value.(*Result); return r }

// KResult returns the COkNN payload, or nil.
func (a *Answer) KResult() *KResult { r, _ := a.value.(*KResult); return r }

// Neighbors returns the payload of ONNRequest, RangeRequest and
// VisibleKNNRequest, or nil.
func (a *Answer) Neighbors() []Neighbor { r, _ := a.value.([]Neighbor); return r }

// Pairs returns the payload of EDistanceJoinRequest and
// DistanceSemiJoinRequest, or nil.
func (a *Answer) Pairs() []JoinPair { r, _ := a.value.([]JoinPair); return r }

// Pair returns the ClosestPairRequest payload.
func (a *Answer) Pair() JoinPair { r, _ := a.value.(JoinPair); return r }

// Trajectory returns the TrajectoryRequest payload, or nil.
func (a *Answer) Trajectory() *TrajectoryResult { r, _ := a.value.(*TrajectoryResult); return r }

// Results returns the CONNBatchRequest payload, or nil.
func (a *Answer) Results() []*Result { r, _ := a.value.([]*Result); return r }

// Distance returns the DistanceRequest payload (+Inf when unreachable).
func (a *Answer) Distance() float64 { r, _ := a.value.(float64); return r }

// ItemMetrics returns per-item metrics for multi-item requests executed on
// the pooled path: one entry per batch segment (CONNBatchRequest, any
// worker count), per non-degenerate leg (TrajectoryRequest) or per query
// point (the join requests) when WithWorkers engaged the pool. Nil for
// single-item requests and for multi-item requests run sequentially.
func (a *Answer) ItemMetrics() []Metrics { return a.items }

// ---------------------------------------------------------------------------
// Execution

// execution carries everything one Exec call needs: the pinned version, the
// prepared engine, and the resolved options.
type execution struct {
	ctx    context.Context
	db     *DB
	v      *version
	eng    *core.Engine
	cancel func() error
	opts   core.Options
	xo     *execOptions
	items  []Metrics
}

// Exec executes a Request against one consistent MVCC snapshot and returns
// its Answer. The snapshot is the current version unless AtVersion or
// AtSnapshot pins another pinned-alive one. ctx cancellation and deadline
// are polled inside the query hot loops (the Dijkstra settle loop, IOR
// growth, the CPLC candidate scan), so even a single stuck query aborts
// promptly with ctx.Err().
//
// Repeats of a request at an unchanged (or promotion-covered) epoch are
// served from the answer cache without executing the engine; see
// WithAnswerCache for the contract and WithNoCache for per-call bypass.
// Answer payloads — cached or not — are shared, immutable values: treat
// them as read-only.
func (db *DB) Exec(ctx context.Context, req Request, opts ...QueryOption) (*Answer, error) {
	if req == nil {
		return nil, ErrNilRequest
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var xo execOptions
	for _, o := range opts {
		o(&xo)
	}
	v, err := db.resolveVersion(&xo)
	if err != nil {
		return nil, err
	}
	return db.execAt(ctx, req, v, &xo)
}

// resolveVersion picks the MVCC version the query runs against.
func (db *DB) resolveVersion(xo *execOptions) (*version, error) {
	switch {
	case xo.bySnap:
		return xo.snap.pinned(db)
	case xo.bySSnap:
		// A ShardedSnapshot pins shard versions of a ShardedDB, never of a
		// standalone DB handle.
		return nil, ErrForeignSnapshot
	case xo.byEpoch:
		return db.versionAt(xo.epoch)
	default:
		return db.current(), nil
	}
}

// execAt runs req against the fixed version v. Watch calls it directly with
// each freshly published version.
func (db *DB) execAt(ctx context.Context, req Request, v *version, xo *execOptions) (*Answer, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	tuning := db.cfg.tuning
	if xo.tuning != nil {
		tuning = xo.tuning.toCore()
	}
	// WithWorkers on a single-item request engages the intra-query pool via
	// the engine options; multi-item requests run their own inter-query pool
	// instead, and their worker engines zero this field (workerEngine).
	if xo.hasWork {
		if n := xo.workers; n > 0 {
			tuning.Workers = n
		} else {
			tuning.Workers = runtime.GOMAXPROCS(0)
		}
	}
	if tuning.DisableVGReuse && v.eng.OneTree() {
		return nil, errors.New("connquery: DisableVGReuse is incompatible with WithOneTree")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Consult the answer cache: a hit at this epoch — original or promoted
	// across mutations whose impact regions missed it — skips the engine
	// entirely and replays the stored payload and metrics.
	var fp string
	useCache := db.cache != nil && !xo.noCache
	if useCache {
		var ok bool
		if fp, ok = requestFingerprint(req, tuning, xo.workers, xo.hasWork); !ok {
			useCache = false
		} else if rec, hit := db.cache.Get(fp, v.epoch); hit {
			ca := rec.(*cachedAnswer)
			ans := &Answer{req: req, epoch: v.epoch, value: ca.value, metrics: ca.metrics, items: ca.items, cached: true}
			db.stampHorizon(ans)
			return ans, nil
		}
	}
	var cancel func() error
	if ctx.Done() != nil {
		cancel = ctx.Err
	}
	// Execution planner: admit this request into its (epoch, quantized
	// region) group. With a concurrent partner on the same group the call
	// receives a shared region-scoped certificate table to run against;
	// alone (or ungroupable) it gets nil and runs the private path. Either
	// way the answer is bit-identical — the table only changes how
	// sight-line verdicts are computed, never what they are.
	var shared *flatgeom.CornerTable
	if tk := db.admitPlanner(req, v); tk != nil {
		defer tk.Done()
		shared = tk.Table(ctx, plannerBuild(v))
	}
	// The fast path executes on the version's own engine. A per-call engine
	// view — same trees, same page counters, so accounting is unchanged — is
	// built only when this call needs private Opts, a cancellation hook or a
	// planner-shared table.
	eng := v.eng
	if cancel != nil || xo.tuning != nil || tuning.Workers > 1 || shared != nil {
		eng = &core.Engine{
			Data:        v.eng.Data,
			Obst:        v.eng.Obst,
			Unified:     v.eng.Unified,
			Obstacles:   v.eng.Obstacles,
			Kernel:      v.eng.Kernel,
			Shared:      shared,
			Opts:        tuning,
			Epoch:       v.epoch,
			States:      v.eng.States,
			DataCounter: v.eng.DataCounter,
			ObstCounter: v.eng.ObstCounter,
			Cancel:      cancel,
		}
	}
	x := &execution{ctx: ctx, db: db, v: v, eng: eng, cancel: cancel, opts: tuning, xo: xo}
	value, m, err := x.guarded(req)
	if err != nil {
		return nil, err
	}
	if useCache {
		db.cache.Put(fp, v.epoch, &cachedAnswer{value: value, metrics: m, items: x.items},
			widenRegion(impactRegion(req, value), req, m.Reach), answerFootprint(value, x.items))
	}
	ans := &Answer{req: req, epoch: v.epoch, value: value, metrics: m, items: x.items}
	db.stampHorizon(ans)
	return ans, nil
}

// guarded invokes req.run, translating a cancellation panic (core.Aborted)
// into the error it carries. Any other panic propagates.
func (x *execution) guarded(req Request) (value any, m Metrics, err error) {
	defer func() {
		if r := recover(); r != nil {
			a, ok := r.(core.Aborted)
			if !ok {
				panic(r)
			}
			value, m, err = nil, Metrics{}, a.Err
		}
	}()
	return req.run(x)
}

// workerEngine builds one batch worker's private engine view: shared
// immutable indexes, fresh page counters, a fresh optional LRU buffer and a
// private query-state pool, plus this call's tuning and cancellation hook.
func (x *execution) workerEngine() *core.Engine {
	cfg := x.db.cfg
	cfg.tuning = x.opts
	cfg.tuning.Workers = 0 // the pool parallelizes across items already
	eng, _, _ := viewEngine(x.v, cfg, nil)
	eng.Cancel = x.cancel
	// Workers of a multi-item request share the call's planner table: the
	// per-item executions are exactly the members the group was formed for.
	eng.Shared = x.eng.Shared
	return eng
}

// workers resolves WithWorkers for a multi-item request. seqDefault is the
// worker count used when the option is absent (1 = sequential legacy
// behavior; 0 = GOMAXPROCS).
func (x *execution) workers(seqDefault int) int {
	n := seqDefault
	if x.xo.hasWork {
		n = x.xo.workers
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return n
}

// pool runs n independent items on a bounded pool of worker engine views,
// handing items out by an atomic cursor so workers stay busy regardless of
// per-item cost skew. A cancellation abort in any worker is captured and
// returned after the pool drains (sibling workers observe the same expired
// context through their own hooks and stop promptly).
func (x *execution) pool(n, workers int, item func(eng *core.Engine, i int)) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		abortMu  sync.Mutex
		abortErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					a, ok := r.(core.Aborted)
					if !ok {
						panic(r)
					}
					abortMu.Lock()
					if abortErr == nil {
						abortErr = a.Err
					}
					abortMu.Unlock()
				}
			}()
			eng := x.workerEngine()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				item(eng, i)
			}
		}()
	}
	wg.Wait()
	return abortErr
}

// ---------------------------------------------------------------------------
// Concrete requests

func validateSegment(q Segment) error {
	if q.Degenerate() {
		return errors.New("connquery: query segment is degenerate (use ONNRequest for point queries)")
	}
	return nil
}

func validateK(kind string, k int) error {
	if k < 1 {
		return fmt.Errorf("connquery: %s: k must be >= 1, got %d", kind, k)
	}
	return nil
}

// CONNRequest is a continuous obstructed nearest neighbor query over the
// segment Seg (the paper's Algorithm 4). Answer payload: *Result.
type CONNRequest struct{ Seg Segment }

// Kind implements Request.
func (CONNRequest) Kind() string      { return "CONN" }
func (CONNRequest) answer() *Result   { return nil }
func (r CONNRequest) validate() error { return validateSegment(r.Seg) }
func (r CONNRequest) run(x *execution) (any, Metrics, error) {
	res, m := x.eng.CONN(r.Seg)
	return res, m, nil
}

// COkNNRequest is a continuous obstructed k-nearest-neighbor query (§4.5).
// Answer payload: *KResult.
type COkNNRequest struct {
	Seg Segment
	K   int
}

// Kind implements Request.
func (COkNNRequest) Kind() string     { return "COkNN" }
func (COkNNRequest) answer() *KResult { return nil }
func (r COkNNRequest) validate() error {
	if err := validateSegment(r.Seg); err != nil {
		return err
	}
	return validateK("COkNN", r.K)
}
func (r COkNNRequest) run(x *execution) (any, Metrics, error) {
	res, m := x.eng.COkNN(r.Seg, r.K)
	return res, m, nil
}

// ONNRequest is a snapshot obstructed k-nearest-neighbor query at point P.
// Answer payload: []Neighbor.
type ONNRequest struct {
	P Point
	K int
}

// Kind implements Request.
func (ONNRequest) Kind() string       { return "ONN" }
func (ONNRequest) answer() []Neighbor { return nil }
func (r ONNRequest) validate() error  { return validateK("ONN", r.K) }
func (r ONNRequest) run(x *execution) (any, Metrics, error) {
	nbrs, m := x.eng.ONN(r.P, r.K)
	return nbrs, m, nil
}

// CNNRequest is the classical Euclidean continuous nearest neighbor query,
// ignoring obstacles (the Figure 1 baseline). Answer payload: *Result.
type CNNRequest struct{ Seg Segment }

// Kind implements Request.
func (CNNRequest) Kind() string      { return "CNN" }
func (CNNRequest) answer() *Result   { return nil }
func (r CNNRequest) validate() error { return validateSegment(r.Seg) }
func (r CNNRequest) run(x *execution) (any, Metrics, error) {
	res, m := x.eng.CNN(r.Seg)
	return res, m, nil
}

// NaiveCONNRequest is the §1 sampling baseline: an ONN query at Samples+1
// evenly spaced positions. Approximate and slow by design. Answer payload:
// *Result.
type NaiveCONNRequest struct {
	Seg     Segment
	Samples int
}

// Kind implements Request.
func (NaiveCONNRequest) Kind() string      { return "NaiveCONN" }
func (NaiveCONNRequest) answer() *Result   { return nil }
func (r NaiveCONNRequest) validate() error { return validateSegment(r.Seg) }
func (r NaiveCONNRequest) run(x *execution) (any, Metrics, error) {
	res, m := x.eng.NaiveCONN(r.Seg, r.Samples)
	return res, m, nil
}

// RangeRequest is an obstructed range query: every data point whose
// obstructed distance to Center is at most Radius, sorted ascending (Zhang
// et al., EDBT 2004). Answer payload: []Neighbor.
type RangeRequest struct {
	Center Point
	Radius float64
}

// Kind implements Request.
func (RangeRequest) Kind() string       { return "ObstructedRange" }
func (RangeRequest) answer() []Neighbor { return nil }
func (r RangeRequest) validate() error {
	if r.Radius < 0 {
		return fmt.Errorf("connquery: negative radius %v", r.Radius)
	}
	return nil
}
func (r RangeRequest) run(x *execution) (any, Metrics, error) {
	nbrs, m := x.eng.ObstructedRange(r.Center, r.Radius)
	return nbrs, m, nil
}

// VisibleKNNRequest is a visible k-nearest-neighbor query: the k
// Euclidean-nearest data points visible from P, with obstacles occluding
// rather than detouring (Nutanong et al., DASFAA 2007). Answer payload:
// []Neighbor.
type VisibleKNNRequest struct {
	P Point
	K int
}

// Kind implements Request.
func (VisibleKNNRequest) Kind() string       { return "VisibleKNN" }
func (VisibleKNNRequest) answer() []Neighbor { return nil }
func (r VisibleKNNRequest) validate() error  { return validateK("VisibleKNN", r.K) }
func (r VisibleKNNRequest) run(x *execution) (any, Metrics, error) {
	nbrs, m := x.eng.VisibleKNN(r.P, r.K)
	return nbrs, m, nil
}

// DistanceRequest computes the exact obstructed distance between two free
// points (+Inf when no path exists). Answer payload: float64.
type DistanceRequest struct{ A, B Point }

// Kind implements Request.
func (DistanceRequest) Kind() string    { return "ObstructedDist" }
func (DistanceRequest) answer() float64 { return 0 }
func (DistanceRequest) validate() error { return nil }
func (r DistanceRequest) run(x *execution) (any, Metrics, error) {
	start := time.Now()
	d, reach := x.eng.ObstructedDistance(r.A, r.B)
	return d, Metrics{CPU: time.Since(start), Reach: reach}, nil
}

// TrajectoryRequest is a CONN query over a polyline trajectory (the paper's
// §6 extension): the obstructed NN of every point on every leg. Degenerate
// legs are skipped. With WithWorkers, legs run concurrently on the pooled
// path. Answer payload: *TrajectoryResult.
type TrajectoryRequest struct{ Waypoints []Point }

// Kind implements Request.
func (TrajectoryRequest) Kind() string              { return "TrajectoryCONN" }
func (TrajectoryRequest) answer() *TrajectoryResult { return nil }
func (r TrajectoryRequest) validate() error {
	if len(r.Waypoints) < 2 {
		return errors.New("connquery: trajectory needs at least two waypoints")
	}
	return nil
}
func (r TrajectoryRequest) run(x *execution) (any, Metrics, error) {
	workers := x.workers(1)
	if workers <= 1 {
		res, m := x.eng.TrajectoryCONN(r.Waypoints)
		if len(res.Legs) == 0 {
			return nil, Metrics{}, errors.New("connquery: all trajectory legs are degenerate")
		}
		return res, m, nil
	}
	var legs []Segment
	for i := 1; i < len(r.Waypoints); i++ {
		leg := Seg(r.Waypoints[i-1], r.Waypoints[i])
		if !leg.Degenerate() {
			legs = append(legs, leg)
		}
	}
	if len(legs) == 0 {
		return nil, Metrics{}, errors.New("connquery: all trajectory legs are degenerate")
	}
	start := time.Now()
	results := make([]*Result, len(legs))
	metrics := make([]Metrics, len(legs))
	err := x.pool(len(legs), workers, func(eng *core.Engine, i int) {
		results[i], metrics[i] = eng.CONN(legs[i])
	})
	if err != nil {
		return nil, Metrics{}, err
	}
	res := &TrajectoryResult{Waypoints: append([]Point(nil), r.Waypoints...), Legs: results}
	x.items = metrics // per-leg metrics, one entry per non-degenerate leg
	agg := aggregateItems(metrics, true)
	agg.CPU = time.Since(start)
	return res, agg, nil
}

// CONNBatchRequest answers many CONN queries as one request. Without
// WithWorkers the pool size defaults to GOMAXPROCS; every worker owns an
// engine view and warm query state reused across the queries it processes,
// and the whole batch runs against one pinned snapshot. Answer payload:
// []*Result (per-query metrics via Answer.ItemMetrics).
type CONNBatchRequest struct{ Segs []Segment }

// Kind implements Request.
func (CONNBatchRequest) Kind() string      { return "CONNBatch" }
func (CONNBatchRequest) answer() []*Result { return nil }
func (r CONNBatchRequest) validate() error {
	for i, q := range r.Segs {
		if err := validateSegment(q); err != nil {
			return fmt.Errorf("connquery: batch query %d: %w", i, err)
		}
	}
	return nil
}
func (r CONNBatchRequest) run(x *execution) (any, Metrics, error) {
	start := time.Now()
	results := make([]*Result, len(r.Segs))
	items := make([]Metrics, len(r.Segs))
	err := x.pool(len(r.Segs), x.workers(0), func(eng *core.Engine, i int) {
		results[i], items[i] = eng.CONN(r.Segs[i])
	})
	if err != nil {
		return nil, Metrics{}, err
	}
	x.items = items
	agg := aggregateItems(items, true)
	agg.CPU = time.Since(start)
	return results, agg, nil
}

// EDistanceJoinRequest is the obstructed e-distance join: every
// (query point, data point) pair with obstructed distance at most E (Zhang
// et al., EDBT 2004). With WithWorkers the per-query-point range scans run
// concurrently. Answer payload: []JoinPair.
type EDistanceJoinRequest struct {
	Queries []Point
	E       float64
}

// Kind implements Request.
func (EDistanceJoinRequest) Kind() string       { return "EDistanceJoin" }
func (EDistanceJoinRequest) answer() []JoinPair { return nil }
func (r EDistanceJoinRequest) validate() error {
	if r.E < 0 {
		return fmt.Errorf("connquery: negative join distance %v", r.E)
	}
	return nil
}
func (r EDistanceJoinRequest) run(x *execution) (any, Metrics, error) {
	workers := x.workers(1)
	if workers <= 1 {
		pairs, m := x.eng.EDistanceJoin(r.Queries, r.E)
		return pairs, m, nil
	}
	start := time.Now()
	perQ := make([][]Neighbor, len(r.Queries))
	metrics := make([]Metrics, len(r.Queries))
	err := x.pool(len(r.Queries), workers, func(eng *core.Engine, i int) {
		perQ[i], metrics[i] = eng.ObstructedRange(r.Queries[i], r.E)
	})
	if err != nil {
		return nil, Metrics{}, err
	}
	var out []JoinPair
	for qi, nbrs := range perQ {
		for _, n := range nbrs {
			out = append(out, JoinPair{QIdx: qi, PID: n.PID, P: n.P, Dist: n.Dist})
		}
	}
	x.items = metrics // per-query-point metrics, in input order
	agg := aggregateItems(metrics, false)
	agg.CPU = time.Since(start)
	return out, agg, nil
}

// DistanceSemiJoinRequest returns, for each query point, its obstructed
// nearest data point, sorted ascending by distance. With WithWorkers the
// per-query-point ONN probes run concurrently. Answer payload: []JoinPair.
type DistanceSemiJoinRequest struct{ Queries []Point }

// Kind implements Request.
func (DistanceSemiJoinRequest) Kind() string       { return "DistanceSemiJoin" }
func (DistanceSemiJoinRequest) answer() []JoinPair { return nil }
func (DistanceSemiJoinRequest) validate() error    { return nil }
func (r DistanceSemiJoinRequest) run(x *execution) (any, Metrics, error) {
	workers := x.workers(1)
	if workers <= 1 {
		pairs, m := x.eng.DistanceSemiJoin(r.Queries)
		return pairs, m, nil
	}
	start := time.Now()
	out := make([]JoinPair, len(r.Queries))
	metrics := make([]Metrics, len(r.Queries))
	err := x.pool(len(r.Queries), workers, func(eng *core.Engine, i int) {
		nbrs, m := eng.ONN(r.Queries[i], 1)
		metrics[i] = m
		if len(nbrs) > 0 {
			out[i] = JoinPair{QIdx: i, PID: nbrs[0].PID, P: nbrs[0].P, Dist: nbrs[0].Dist}
		} else {
			out[i] = JoinPair{QIdx: i, PID: NoOwner, Dist: inf()}
		}
	})
	if err != nil {
		return nil, Metrics{}, err
	}
	sortPairsByDist(out)
	x.items = metrics // per-query-point metrics, in input order
	agg := aggregateItems(metrics, false)
	agg.CPU = time.Since(start)
	return out, agg, nil
}

// ClosestPairRequest returns the (query point, data point) pair with the
// smallest obstructed distance; with no query points the pair has
// QIdx == -1 and infinite distance. Answer payload: JoinPair.
type ClosestPairRequest struct{ Queries []Point }

// Kind implements Request.
func (ClosestPairRequest) Kind() string     { return "ClosestPair" }
func (ClosestPairRequest) answer() JoinPair { return JoinPair{} }
func (ClosestPairRequest) validate() error  { return nil }
func (r ClosestPairRequest) run(x *execution) (any, Metrics, error) {
	pair, m := x.eng.ClosestPair(r.Queries)
	return pair, m, nil
}

func inf() float64 { return math.Inf(1) }

// aggregateItems merges per-item metrics into one multi-item answer
// profile: summed NPE/NOE (and, when the per-item runs carry page
// accounting, faults), peak SVG. The caller stamps CPU with the op's wall
// clock. withFaults mirrors the sequential engine paths: CONN-per-item
// requests report faults, the join family does not.
func aggregateItems(items []Metrics, withFaults bool) Metrics {
	var agg Metrics
	for _, m := range items {
		if withFaults {
			agg.FaultsData += m.FaultsData
			agg.FaultsObst += m.FaultsObst
		}
		agg.NPE += m.NPE
		agg.NOE += m.NOE
		if m.SVG > agg.SVG {
			agg.SVG = m.SVG
		}
		if m.Reach > agg.Reach {
			agg.Reach = m.Reach
		}
	}
	return agg
}

func sortPairsByDist(ps []JoinPair) {
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].Dist < ps[j].Dist })
}
