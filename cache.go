package connquery

import (
	"encoding/binary"
	"math"

	"connquery/internal/anscache"
	"connquery/internal/core"
	"connquery/internal/geom"
)

// The answer cache. Exec keys every cacheable execution by a canonical
// request fingerprint and serves repeats of the same request at the same
// MVCC epoch — or at any epoch the entry has been promoted across — without
// touching the engine. Mutations invalidate surgically: each one computes
// its change box, and only entries whose conservative impact region
// intersects it are dropped (mutate.go calls anscache.Cache.Invalidate
// before publishing); every other entry is promoted to the new epoch, which
// is also what lets Watch deliver maintained answers without re-executing.
//
// The impact region is derived from the answer itself: the bounding box of
// the query span inflated by the maximum relevant obstructed distance
// (core stamps Result.MaxDist / KResult.MaxDist for the continuous kinds;
// the point kinds carry their distances in the payload). A shortest path of
// length d starting on the query span stays within Euclidean distance d of
// it, so a mutation outside the inflated box can neither block nor open any
// path short enough to alter the answer — insertion-side candidates are
// covered too, because a point or detour beyond the box has Euclidean (and
// therefore obstructed) distance strictly greater than every answered
// distance. Unreachable intervals make the region unbounded, degrading to
// blanket invalidation for that entry.

// DefaultAnswerCacheBytes is the answer cache budget used when Open is not
// given WithAnswerCache.
const DefaultAnswerCacheBytes = 32 << 20

// CacheStats is a snapshot of the answer cache counters; see DB.CacheStats.
type CacheStats = anscache.Stats

// CacheStats returns the answer cache counters: hits and misses, entries
// promoted across mutations (and hits served from promoted entries),
// surgical invalidations, evictions, and the current contents. Zero when
// the cache is disabled.
func (db *DB) CacheStats() CacheStats { return db.cache.Stats() }

// cachedAnswer is the payload stored per cache entry: everything needed to
// rebuild an Answer except the request (the caller's) and the epoch (the
// queried one). Metrics are the original execution's — a cache hit performs
// no engine work, so it has no fresh cost profile to report.
type cachedAnswer struct {
	value   any
	metrics Metrics
	items   []Metrics
}

// ---------------------------------------------------------------------------
// Request fingerprinting

// Fingerprint layout: one schema byte, one request-kind tag, the request's
// parameters as little-endian normalized float64 bits (lengths prefix every
// slice), then the per-call options (resolved tuning bitmask, workers).
// The full canonical byte string is the cache key — no hashing, so distinct
// requests can never collide and serve each other's answers.
const fpSchema byte = 1

const (
	fpCONN byte = iota + 1
	fpCOkNN
	fpONN
	fpCNN
	fpNaiveCONN
	fpRange
	fpVisibleKNN
	fpDistance
	fpTrajectory
	fpCONNBatch
	fpEDistanceJoin
	fpDistanceSemiJoin
	fpClosestPair
)

// fpWriter accumulates the canonical encoding. ok flips to false when a
// parameter has no canonical form (NaN coordinates: the engine's behavior
// on them is unspecified, so such requests are simply not cached).
type fpWriter struct {
	buf []byte
	ok  bool
}

// normF64 maps both float zeros onto +0 so semantically equal coordinates
// (-0.0 == 0.0) fingerprint identically.
func normF64(v float64) float64 {
	if v == 0 {
		return 0
	}
	return v
}

func (w *fpWriter) f64(v float64) {
	if math.IsNaN(v) {
		w.ok = false
		return
	}
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(normF64(v)))
}

func (w *fpWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *fpWriter) byte(b byte)  { w.buf = append(w.buf, b) }

func (w *fpWriter) point(p Point) { w.f64(p.X); w.f64(p.Y) }
func (w *fpWriter) seg(s Segment) { w.point(s.A); w.point(s.B) }
func (w *fpWriter) points(ps []Point) {
	w.u64(uint64(len(ps)))
	for _, p := range ps {
		w.point(p)
	}
}

// pointLess orders two NaN-free points by (X, Y) after zero normalization.
func pointLess(a, b Point) bool {
	ax, bx := normF64(a.X), normF64(b.X)
	if ax != bx {
		return ax < bx
	}
	return normF64(a.Y) < normF64(b.Y)
}

// requestFingerprint returns the canonical cache key for req executed with
// the resolved tuning and worker options, and whether the request is
// cacheable at all. Two requests that must produce the same answer at the
// same version map to the same key (value-identical parameters, -0.0
// normalized to +0.0, the symmetric DistanceRequest endpoint order
// canonicalized); any difference in parameters, tuning or worker options
// yields a different key.
func requestFingerprint(req Request, tuning core.Options, workers int, hasWorkers bool) (string, bool) {
	w := fpWriter{buf: make([]byte, 0, 64), ok: true}
	w.byte(fpSchema)
	switch r := req.(type) {
	case CONNRequest:
		w.byte(fpCONN)
		w.seg(r.Seg)
	case COkNNRequest:
		w.byte(fpCOkNN)
		w.seg(r.Seg)
		w.u64(uint64(int64(r.K)))
	case ONNRequest:
		w.byte(fpONN)
		w.point(r.P)
		w.u64(uint64(int64(r.K)))
	case CNNRequest:
		w.byte(fpCNN)
		w.seg(r.Seg)
	case NaiveCONNRequest:
		w.byte(fpNaiveCONN)
		w.seg(r.Seg)
		// The engine clamps samples < 2 to 2; fingerprint the effective value.
		s := r.Samples
		if s < 2 {
			s = 2
		}
		w.u64(uint64(int64(s)))
	case RangeRequest:
		w.byte(fpRange)
		w.point(r.Center)
		w.f64(r.Radius)
	case VisibleKNNRequest:
		w.byte(fpVisibleKNN)
		w.point(r.P)
		w.u64(uint64(int64(r.K)))
	case DistanceRequest:
		w.byte(fpDistance)
		// Obstructed distance is symmetric: canonicalize the endpoint order
		// so DistanceRequest{A, B} and DistanceRequest{B, A} share an entry.
		a, b := r.A, r.B
		if math.IsNaN(a.X) || math.IsNaN(a.Y) || math.IsNaN(b.X) || math.IsNaN(b.Y) {
			return "", false
		}
		if pointLess(b, a) {
			a, b = b, a
		}
		w.point(a)
		w.point(b)
	case TrajectoryRequest:
		w.byte(fpTrajectory)
		w.points(r.Waypoints)
	case CONNBatchRequest:
		w.byte(fpCONNBatch)
		w.u64(uint64(len(r.Segs)))
		for _, s := range r.Segs {
			w.seg(s)
		}
	case EDistanceJoinRequest:
		w.byte(fpEDistanceJoin)
		w.points(r.Queries)
		w.f64(r.E)
	case DistanceSemiJoinRequest:
		w.byte(fpDistanceSemiJoin)
		w.points(r.Queries)
	case ClosestPairRequest:
		w.byte(fpClosestPair)
		w.points(r.Queries)
	default:
		return "", false // unknown request implementation: never cache
	}

	// Per-call options that select a different execution (tuning changes the
	// cost profile the answer carries; workers change ItemMetrics) keep
	// separate entries.
	var tbits byte
	if tuning.DisableLemma1 {
		tbits |= 1 << 0
	}
	if tuning.DisableLemma6 {
		tbits |= 1 << 1
	}
	if tuning.DisableLemma7 {
		tbits |= 1 << 2
	}
	if tuning.DisableVGReuse {
		tbits |= 1 << 3
	}
	if tuning.UseBisectionSolver {
		tbits |= 1 << 4
	}
	w.byte(tbits)
	if hasWorkers {
		w.byte(1)
		w.u64(uint64(int64(workers)))
	} else {
		w.byte(0)
	}
	if !w.ok {
		return "", false
	}
	return string(w.buf), true
}

// ---------------------------------------------------------------------------
// Impact regions

// segBox returns the bounding box of a segment.
func segBox(s Segment) geom.Rect { return geom.RectFromPoints(s.A, s.B) }

// regionAround builds the both-sensitive region: rect inflated by maxd.
func regionAround(rect geom.Rect, maxd float64) anscache.Region {
	if math.IsInf(maxd, 1) {
		return anscache.Everywhere()
	}
	return anscache.Region{Rect: rect.Buffer(maxd), Points: true, Obstacles: true}
}

// impactRegion computes the conservative impact region of one answer: a
// mutation of a kind the region is sensitive to, whose change box
// intersects it, may change the answer; any other mutation provably leaves
// the answer bit-identical. value is the executed payload for req.
func impactRegion(req Request, value any) anscache.Region {
	switch r := req.(type) {
	case CONNRequest:
		return regionAround(segBox(r.Seg), value.(*Result).MaxDist)
	case NaiveCONNRequest:
		return regionAround(segBox(r.Seg), value.(*Result).MaxDist)
	case COkNNRequest:
		return regionAround(segBox(r.Seg), value.(*KResult).MaxDist)
	case CNNRequest:
		// Euclidean: obstacles never enter the answer.
		res := value.(*Result)
		if math.IsInf(res.MaxDist, 1) {
			return anscache.Region{Rect: anscache.InfiniteRect(), Points: true}
		}
		return anscache.Region{Rect: segBox(r.Seg).Buffer(res.MaxDist), Points: true}
	case ONNRequest:
		return regionAround(geom.RectFromPoints(r.P), knnRadius(value.([]Neighbor), r.K))
	case VisibleKNNRequest:
		return regionAround(geom.RectFromPoints(r.P), knnRadius(value.([]Neighbor), r.K))
	case RangeRequest:
		return regionAround(geom.RectFromPoints(r.Center), r.Radius)
	case DistanceRequest:
		// Data points never enter an obstructed-distance computation.
		d := value.(float64)
		if math.IsInf(d, 1) {
			return anscache.Region{Rect: anscache.InfiniteRect(), Obstacles: true}
		}
		return anscache.Region{Rect: geom.RectFromPoints(r.A, r.B).Buffer(d), Obstacles: true}
	case TrajectoryRequest:
		tr := value.(*TrajectoryResult)
		if len(tr.Legs) == 0 {
			return anscache.Everywhere() // unreachable: validation rejects all-degenerate
		}
		rect := segBox(tr.Legs[0].Q)
		maxd := 0.0
		for _, leg := range tr.Legs {
			rect = rect.Union(segBox(leg.Q))
			maxd = math.Max(maxd, leg.MaxDist)
		}
		return regionAround(rect, maxd)
	case CONNBatchRequest:
		results := value.([]*Result)
		if len(results) == 0 {
			return anscache.Nothing() // an empty batch is constant forever
		}
		rect := segBox(results[0].Q)
		maxd := 0.0
		for _, res := range results {
			rect = rect.Union(segBox(res.Q))
			maxd = math.Max(maxd, res.MaxDist)
		}
		return regionAround(rect, maxd)
	case EDistanceJoinRequest:
		if len(r.Queries) == 0 {
			return anscache.Nothing()
		}
		return regionAround(geom.RectFromPoints(r.Queries...), r.E)
	case DistanceSemiJoinRequest:
		if len(r.Queries) == 0 {
			return anscache.Nothing()
		}
		pairs := value.([]JoinPair)
		maxd := math.Inf(1)
		if len(pairs) > 0 {
			maxd = pairs[len(pairs)-1].Dist // sorted ascending: the last is the max
		}
		return regionAround(geom.RectFromPoints(r.Queries...), maxd)
	case ClosestPairRequest:
		if len(r.Queries) == 0 {
			return anscache.Nothing()
		}
		return regionAround(geom.RectFromPoints(r.Queries...), value.(JoinPair).Dist)
	}
	return anscache.Everywhere() // unknown payload: only blanket safety remains
}

// requestBaseBox returns the bounding box of a request's own query geometry
// (segments, centers, waypoints), independent of the answer. It is the seed
// of the retrieval footprint: every object an execution consults lies within
// Metrics.Reach of this box. Empty (inverted) for zero-query requests.
func requestBaseBox(req Request) geom.Rect {
	switch r := req.(type) {
	case CONNRequest:
		return segBox(r.Seg)
	case COkNNRequest:
		return segBox(r.Seg)
	case CNNRequest:
		return segBox(r.Seg)
	case NaiveCONNRequest:
		return segBox(r.Seg)
	case ONNRequest:
		return geom.RectFromPoints(r.P)
	case VisibleKNNRequest:
		return geom.RectFromPoints(r.P)
	case RangeRequest:
		return geom.RectFromPoints(r.Center)
	case DistanceRequest:
		return geom.RectFromPoints(r.A, r.B)
	case TrajectoryRequest:
		return geom.RectFromPoints(r.Waypoints...)
	case CONNBatchRequest:
		box := geom.RectFromPoints()
		for _, s := range r.Segs {
			box = box.Union(segBox(s))
		}
		return box
	case EDistanceJoinRequest:
		return geom.RectFromPoints(r.Queries...)
	case DistanceSemiJoinRequest:
		return geom.RectFromPoints(r.Queries...)
	case ClosestPairRequest:
		return geom.RectFromPoints(r.Queries...)
	}
	return anscache.InfiniteRect() // unknown request: no footprint bound
}

// widenRegion unions an answer's impact region with its retrieval footprint
// (the request's base box inflated by the execution's reach), making cache
// entries trace-exact: a mutation that survives invalidation lies outside
// everything the execution consulted, so a fresh run at the promoted epoch
// retrieves the same object sequence and reproduces not just the payload
// but the NPE/NOE/|SVG|/Reach metrics bit for bit. The sharded tier's
// differential guarantee rests on this: cached and freshly executed answers
// are indistinguishable, wherever (single node, shard, or shard-union
// mirror) they were produced.
func widenRegion(rg anscache.Region, req Request, reach float64) anscache.Region {
	if !rg.Points && !rg.Obstacles {
		return rg // Nothing: zero-query answers consult no objects
	}
	if math.IsInf(reach, 1) {
		rg.Rect = anscache.InfiniteRect()
		return rg
	}
	if bb := requestBaseBox(req); !bb.Empty() {
		rg.Rect = rg.Rect.Union(bb.Buffer(reach))
	}
	return rg
}

// knnRadius is the invalidation radius of a k-nearest answer: the k-th
// distance, or +Inf while fewer than k neighbors are reachable (then any
// insertion or unblocking anywhere could extend the answer). The engine
// clamps k < 1 to 1.
func knnRadius(nbrs []Neighbor, k int) float64 {
	if k < 1 {
		k = 1
	}
	if len(nbrs) < k {
		return math.Inf(1)
	}
	return nbrs[len(nbrs)-1].Dist
}

// ---------------------------------------------------------------------------
// Size accounting

// answerFootprint estimates the retained bytes of one cached answer, for
// the cache's size bound. Estimates err high-ish on purpose: the bound
// protects memory, not accounting precision.
func answerFootprint(value any, items []Metrics) int64 {
	size := int64(64 + 56*len(items))
	switch v := value.(type) {
	case *Result:
		size += resultFootprint(v)
	case *KResult:
		size += 64
		for _, t := range v.Tuples {
			size += 48 + 56*int64(len(t.Owners))
		}
	case []Neighbor:
		size += 24 + 40*int64(len(v))
	case []JoinPair:
		size += 24 + 56*int64(len(v))
	case JoinPair:
		size += 56
	case *TrajectoryResult:
		size += 24 + 16*int64(len(v.Waypoints))
		for _, leg := range v.Legs {
			size += resultFootprint(leg)
		}
	case []*Result:
		size += 24
		for _, res := range v {
			size += resultFootprint(res)
		}
	case float64:
		size += 8
	default:
		size += 256
	}
	return size
}

func resultFootprint(r *Result) int64 {
	if r == nil {
		return 8
	}
	return 64 + 48*int64(len(r.Tuples))
}
