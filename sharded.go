package connquery

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"connquery/internal/geom"
	"connquery/internal/rtree"
)

// The sharded tier: N independent single-writer shard units behind a
// scatter-gather router that is bit-identical — payloads AND the
// machine-independent NPE/NOE/|SVG|/Reach metrics — to one DB over the same
// data.
//
// Layout. A uniform grid over the initial data's bounding rectangle
// (shardMap) assigns every data point to exactly one shard by location;
// obstacles are replicated onto every shard whose cell region their
// rectangle intersects. Replication makes shard-local mutation validation
// sufficient (the obstacles that could contain a point live on the point's
// shard; the points an obstacle could swallow live on its target shards)
// and makes the union of any contiguous block of shards a faithful
// sub-world: it holds exactly the points and obstacles falling in the
// block's region.
//
// Reads. A request seeds on the cells its own geometry touches. A
// single-cell request executes directly on that shard's DB — its own
// MVCC chain, its own answer cache. A spanning request executes on a lazily
// maintained union mirror of the block. Either way the executed answer
// reports Metrics.Reach, the retrieval footprint radius instrumented in the
// engine: if the footprint (base box inflated by reach) escapes the block,
// the answer is discarded and the block grows to cover it — the RLMAX-style
// pruning bound of the paper's Lemma 2/7 generalized to shard borders. The
// loop terminates in at most N rounds (the block only grows), and on
// acceptance the union world provably contains every object the global
// execution would consult, so the trace — and with it the payload and every
// machine-independent metric — is identical. Local point IDs translate back
// to global IDs through append-only tables whose order matches global
// insertion order, which keeps even tie-breaks identical (the engine orders
// equal-distance retrievals by (kind, ID)).
//
// Writes. Each mutation locks only its target shards (one for points, the
// replica set for obstacles), validates and applies there, then assigns the
// global ID and revision in a short append-only commit sequencer — the
// WAL-append analogue: heavy copy-on-write index work runs concurrently on
// distinct shards; only the ID/revision stamp serializes. The router
// revision `rev` advances by one per successful mutation, mirroring the
// single-node epoch exactly.

// changeEntry op kinds, in the router's replay log.
const (
	opInsPt uint8 = iota + 1
	opDelPt
	opInsObs
	opDelObs
)

// changeEntry is one committed mutation in the router log. Replaying the
// log in order (filtered to a cell block) reconstructs any union mirror.
// The opened world is revision 1, so entry i (0-based) produced revision
// i+2; a cut at revision r covers exactly the first r-1 entries.
type changeEntry struct {
	op  uint8
	gid int32
	p   Point // opInsPt / opDelPt
	r   Rect  // opInsObs / opDelObs
}

// pointLoc records where a global point lives. Append-only, indexed by
// global PID; the stored point also serves mirror replay and watch wakeups.
type pointLoc struct {
	shard int32
	lid   int32
	p     Point
}

// obsRep is one shard replica of an obstacle.
type obsRep struct {
	shard int32
	lid   int32
}

// obsLoc records an obstacle's rectangle and replica set, indexed by global
// OID.
type obsLoc struct {
	r    Rect
	reps []obsRep
}

// shardUnit is one shard: a full single-node DB over the shard's sub-world
// plus the router-side writer lock and ID translation tables.
type shardUnit struct {
	// mu is the router's writer lock for this shard: mutations targeting
	// the shard hold it across validate-apply-commit, and Snapshot holds
	// all of them to cut a consistent cross-shard pin. Readers never take it.
	mu     sync.Mutex
	db     *DB
	region geom.Rect

	// l2gP/l2gO map shard-local IDs to global IDs, append-only in local ID
	// order (appends happen inside the commit sequencer, so local order ==
	// global order; a leading -1 marks the bootstrap dummy of an initially
	// empty shard). Reads take ShardedDB.seqMu.RLock.
	l2gP []int32
	l2gO []int32

	// committedEpoch/committedRev are the shard DB's MVCC epoch as of this
	// shard's last sequencer-committed mutation and the router revision that
	// commit produced (guarded by ShardedDB.seqMu, like the l2g tables).
	// Writers apply to the shard DB before entering the sequencer, so the
	// DB head alone can briefly run ahead of the router log; the live read
	// path compares the head's epoch against committedEpoch to capture a
	// version and a router revision that provably agree.
	committedEpoch uint64
	committedRev   uint64

	execs atomic.Int64 // engine executions routed to this shard
}

// ShardedDB is the spatially sharded database: the same Exec/Watch/
// mutation/snapshot surface as DB (both implement Database), answered by N
// shard units behind a scatter-gather router. Answers are bit-identical to
// a single DB over the same data — including cache-hit and snapshot-pinned
// paths — which the differential harness in sharddiff_test.go proves.
type ShardedDB struct {
	m      *shardMap
	opts   []Option
	cfg    config
	shards []*shardUnit

	// rev is the router revision: 1 for the opened world, +1 per successful
	// mutation — the exact mirror of the single-node epoch.
	rev atomic.Uint64

	// seqMu guards the commit sequencer state: the replay log, the global
	// ID registries and the shard l2g tables. Writers hold their shard
	// locks across their short seqMu section, so per-shard application
	// order, global ID order and revision order all agree.
	seqMu    sync.RWMutex
	log      []changeEntry
	p2s      []pointLoc
	o2s      []obsLoc
	nInitPts int
	nInitObs int

	nPts atomic.Int64
	nObs atomic.Int64

	// dummy is a point strictly outside the initial world and every initial
	// obstacle, used to bootstrap Open for empty shards and mirrors (Open
	// requires a non-empty point set; the dummy is deleted immediately).
	dummy Point

	// The union-mirror registry is LRU-bounded by mirCap: a cols x rows grid
	// admits O((cols*rows)^2) distinct spans, so an unbounded registry would
	// grow without limit on long-running servers with varied query geometry.
	// mirSeq is the LRU clock and retiredCache accumulates the cache
	// counters of evicted mirrors so CacheStats stays cumulative; all three
	// are guarded by mirMu.
	mirMu          sync.Mutex
	mirrors        map[cellSpan]*unionMirror
	mirSeq         uint64
	mirCap         int
	retiredCache   CacheStats
	retiredPlanner PlannerStats
	mirEvictions   atomic.Int64

	pinMu sync.Mutex
	pins  map[uint64]map[*ShardedSnapshot]struct{}

	watch watchSet

	// dur is the durable attachment (nil for in-memory routers); its mutable
	// fields are guarded by seqMu. initDeadPts/initDeadObs are set only by
	// recovery: initial-range objects already deleted at the recovered router
	// checkpoint, whose deletions live in no log — mirror builds must skip
	// them. Immutable after open.
	dur         *shardedDurable
	initDeadPts map[int32]bool
	initDeadObs map[int32]bool

	// Router counters, surfaced by ShardStats.
	routerExecs   atomic.Int64
	shardExecs    atomic.Int64
	broadcastCost atomic.Int64
	expansions    atomic.Int64
	fullFanouts   atomic.Int64
	directExecs   atomic.Int64
}

// OpenSharded builds a sharded database over the given points and obstacles,
// partitioned across `shards` shard units by a near-square grid over the
// data's bounding rectangle. The same validation rules as Open apply.
// OpenSharded(points, obstacles, 1, opts...) behaves exactly like
// Open(points, obstacles, opts...) down to IDs, epochs and metrics.
func OpenSharded(points []Point, obstacles []Rect, shards int, opts ...Option) (*ShardedDB, error) {
	if shards < 1 {
		return nil, fmt.Errorf("connquery: OpenSharded needs at least 1 shard, got %d", shards)
	}
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	// Mirror Open's up-front validation (same messages, same order) so the
	// router rejects exactly what the single node rejects.
	if len(points) == 0 {
		return nil, errors.New("connquery: no data points")
	}
	if cfg.tuning.DisableVGReuse && cfg.oneTree {
		return nil, errors.New("connquery: DisableVGReuse is incompatible with WithOneTree")
	}
	for i, p := range points {
		if !validPoint(p) {
			return nil, fmt.Errorf("connquery: point %d has a non-finite coordinate: %v", i, p)
		}
	}
	for i, o := range obstacles {
		if !validRect(o) {
			return nil, fmt.Errorf("connquery: obstacle %d is malformed: %v (must be finite with positive width and height)", i, o)
		}
	}

	world := geom.RectFromPoints(points...)
	for _, o := range obstacles {
		world = world.Union(o)
	}
	s := &ShardedDB{
		m:        gridFor(shards, geom.RectFromPoints(points...)),
		opts:     append([]Option(nil), opts...),
		cfg:      cfg,
		mirrors:  make(map[cellSpan]*unionMirror),
		pins:     make(map[uint64]map[*ShardedSnapshot]struct{}),
		dummy:    Pt(world.MaxX+1, world.MaxY+1),
		nInitPts: len(points),
		nInitObs: len(obstacles),
	}
	s.rev.Store(1)
	s.nPts.Store(int64(len(points)))
	s.nObs.Store(int64(len(obstacles)))
	s.mirCap = 2 * s.m.numShards()
	if s.mirCap < 8 {
		s.mirCap = 8
	}

	// Global registries: initial objects take gids 0..n-1 in input order,
	// exactly the PIDs/OIDs Open would assign.
	n := s.m.numShards()
	s.shards = make([]*shardUnit, n)
	s.p2s = make([]pointLoc, len(points))
	s.o2s = make([]obsLoc, len(obstacles))

	for i := 0; i < n; i++ {
		s.shards[i] = &shardUnit{region: s.m.cellRegion(i)}
	}
	for gid, p := range points {
		si := s.m.cellOf(p)
		sh := s.shards[si]
		s.p2s[gid] = pointLoc{shard: int32(si), lid: int32(len(sh.l2gP)), p: p}
		sh.l2gP = append(sh.l2gP, int32(gid))
	}
	for gid, o := range obstacles {
		loc := obsLoc{r: o}
		for i := 0; i < n; i++ {
			sh := s.shards[i]
			if o.Intersects(sh.region) {
				loc.reps = append(loc.reps, obsRep{shard: int32(i), lid: int32(len(sh.l2gO))})
				sh.l2gO = append(sh.l2gO, int32(gid))
			}
		}
		s.o2s[gid] = loc
	}

	// Build each shard's DB over its sub-world. Shard-level Open repeats
	// the point-inside-obstacle validation on exactly the obstacles that
	// could contain each point (they intersect its cell), so the verdict
	// matches the single node's; only the index named in the error is
	// shard-local.
	for i := 0; i < n; i++ {
		sh := s.shards[i]
		shPts := make([]Point, 0, len(sh.l2gP))
		for _, gid := range sh.l2gP {
			shPts = append(shPts, points[gid])
		}
		shObs := make([]Rect, 0, len(sh.l2gO))
		for _, gid := range sh.l2gO {
			shObs = append(shObs, obstacles[gid])
		}
		db, err := openSubWorld(shPts, shObs, s.dummy, s.opts)
		if err != nil {
			return nil, err
		}
		if len(shPts) == 0 {
			// The bootstrap dummy holds local PID 0; keep local and global
			// numbering aligned with a tombstone slot.
			sh.l2gP = append([]int32{-1}, sh.l2gP...)
		}
		sh.db = db
		sh.committedEpoch = db.Version()
		sh.committedRev = 1
	}
	return s, nil
}

// openSubWorld opens a DB over a (possibly empty) point subset: Open
// rejects empty point sets, so an empty shard bootstraps with the dummy
// point, deleted before the handle is used.
func openSubWorld(points []Point, obstacles []Rect, dummy Point, opts []Option) (*DB, error) {
	if len(points) > 0 {
		return Open(points, obstacles, opts...)
	}
	db, err := Open([]Point{dummy}, obstacles, opts...)
	if err != nil {
		return nil, err
	}
	if !db.DeletePoint(0) {
		return nil, errors.New("connquery: internal: bootstrap dummy vanished")
	}
	return db, nil
}

// cut is one consistent read position of the router: the revision and the
// number of log entries committed at or before it.
type routerCut struct {
	rev    uint64
	logLen int
	pin    *ShardedSnapshot // non-nil for snapshot-pinned reads
}

// liveCut reads the current revision and log length consistently.
func (s *ShardedDB) liveCut() routerCut {
	s.seqMu.RLock()
	defer s.seqMu.RUnlock()
	return routerCut{rev: s.rev.Load(), logLen: len(s.log)}
}

// commit runs the sequencer section of one mutation: stamp assigns the
// global ID and registry/l2g rows and returns the finished log entry, which
// is appended before the revision advances — all under seqMu, while the
// caller still holds the target shard locks. That nesting is what keeps
// per-shard application order, global ID order and revision order aligned.
// targets are the shards the caller applied the mutation to; their
// committed-position markers advance with the revision, which is what lets
// live reads pair a shard version with the router revision it belongs to.
// On a durable router the sequencer record is appended — and in strict mode
// fsynced — before the revision advances, so the on-disk sequencer log is
// always a prefix of the revision stream. The target shards already applied
// (and shard-logged) the mutation, so a sequencer failure cannot be rolled
// back: the entry still commits in memory and the error latches, refusing
// every later mutation; recovery after the inevitable restart cuts before
// the unsequenced mutation on every shard at once.
func (s *ShardedDB) commit(stamp func() changeEntry, targets ...*shardUnit) uint64 {
	s.seqMu.Lock()
	e := stamp()
	rev := s.rev.Load() + 1
	if d := s.dur; d != nil && d.err == nil && !d.closed {
		if err := d.seq.Append(entryRecord(e, rev)); err != nil {
			d.err = fmt.Errorf("connquery: durable: sequencer: %w", err)
		} else {
			d.since++
		}
	}
	s.log = append(s.log, e)
	s.rev.Store(rev)
	for _, sh := range targets {
		sh.committedEpoch = sh.db.Version()
		sh.committedRev = rev
	}
	s.seqMu.Unlock()
	return rev
}

// InsertPoint adds a data point to its owning shard and returns its global
// PID. Same contract and error cases as DB.InsertPoint.
func (s *ShardedDB) InsertPoint(p Point) (int32, error) {
	if !validPoint(p) {
		return 0, fmt.Errorf("connquery: invalid point %v", p)
	}
	if err := s.durWritable(); err != nil {
		return 0, err
	}
	s.maybeCheckpointDurable()
	si := s.m.cellOf(p)
	sh := s.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	lid, err := sh.db.InsertPoint(p)
	if err != nil {
		// The shard holds every obstacle intersecting p's cell, hence every
		// obstacle that could contain p: the verdict equals the single
		// node's, and no global ID is consumed on failure. Remap the
		// message's obstacle reference? The message embeds the rectangle,
		// not an ID, so it passes through unchanged.
		return 0, err
	}
	var gid int32
	s.commit(func() changeEntry {
		gid = int32(len(s.p2s))
		s.p2s = append(s.p2s, pointLoc{shard: int32(si), lid: lid, p: p})
		sh.l2gP = append(sh.l2gP, gid)
		return changeEntry{op: opInsPt, gid: gid, p: p}
	}, sh)
	s.nPts.Add(1)
	s.watch.notify(pointBox(p), true)
	return gid, nil
}

// DeletePoint tombstones a global PID. Same contract as DB.DeletePoint:
// false for unknown or already-deleted IDs.
func (s *ShardedDB) DeletePoint(gid int32) bool {
	if s.durWritable() != nil {
		return false
	}
	s.maybeCheckpointDurable()
	s.seqMu.RLock()
	if gid < 0 || int(gid) >= len(s.p2s) {
		s.seqMu.RUnlock()
		return false
	}
	loc := s.p2s[gid]
	s.seqMu.RUnlock()
	sh := s.shards[loc.shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.db.DeletePoint(loc.lid) {
		return false
	}
	s.commit(func() changeEntry { return changeEntry{op: opDelPt, gid: gid, p: loc.p} }, sh)
	s.nPts.Add(-1)
	s.watch.notify(pointBox(loc.p), true)
	return true
}

// InsertObstacle adds an obstacle, replicated onto every shard whose region
// it intersects, and returns its global OID. Same contract and error cases
// as DB.InsertObstacle; the swallow check runs on the replica shards, which
// hold exactly the points the obstacle could swallow.
func (s *ShardedDB) InsertObstacle(r Rect) (int32, error) {
	if !validRect(r) {
		return 0, fmt.Errorf("connquery: invalid obstacle %v (must be finite with positive width and height)", r)
	}
	if err := s.durWritable(); err != nil {
		return 0, err
	}
	s.maybeCheckpointDurable()
	var targets []*shardUnit
	var tids []int32
	for i, sh := range s.shards { // ascending index: the global lock order
		if r.Intersects(sh.region) {
			targets = append(targets, sh)
			tids = append(tids, int32(i))
		}
	}
	for _, sh := range targets {
		sh.mu.Lock()
	}
	defer func() {
		for i := len(targets) - 1; i >= 0; i-- {
			targets[i].mu.Unlock()
		}
	}()
	// Validate on every replica before applying to any: a swallow hit on
	// shard 3 must not leave the obstacle half-inserted on shards 1-2.
	for _, sh := range targets {
		if pid, swallowed := sh.swallowedPoint(r); swallowed {
			s.seqMu.RLock()
			gpid := sh.l2gP[pid]
			s.seqMu.RUnlock()
			return 0, fmt.Errorf("connquery: obstacle %v would swallow point %d", r, gpid)
		}
	}
	lids := make([]int32, len(targets))
	for i, sh := range targets {
		lid, err := sh.db.InsertObstacle(r)
		if err != nil {
			return 0, fmt.Errorf("connquery: internal: replica insert diverged after validation: %w", err)
		}
		lids[i] = lid
	}
	var gid int32
	s.commit(func() changeEntry {
		gid = int32(len(s.o2s))
		loc := obsLoc{r: r}
		for i, sh := range targets {
			loc.reps = append(loc.reps, obsRep{shard: tids[i], lid: lids[i]})
			sh.l2gO = append(sh.l2gO, gid)
		}
		s.o2s = append(s.o2s, loc)
		return changeEntry{op: opInsObs, gid: gid, r: r}
	}, targets...)
	s.nObs.Add(1)
	s.watch.notify(r, false)
	return gid, nil
}

// swallowedPoint reports whether inserting r on this shard would strictly
// contain a live point, and that point's local PID — the same check
// DB.InsertObstacle performs, run separately so the router can validate all
// replicas before mutating any.
func (sh *shardUnit) swallowedPoint(r Rect) (int32, bool) {
	v := sh.db.current()
	blocked := int32(-1)
	v.pointTree().View(nil).Search(r, func(it rtree.Item) bool {
		if it.Kind == rtree.KindPoint && !v.deletedPts[it.ID] && r.ContainsOpen(v.points[it.ID]) {
			blocked = it.ID
			return false
		}
		return true
	})
	return blocked, blocked >= 0
}

// DeleteObstacle tombstones a global OID on every replica shard. Same
// contract as DB.DeleteObstacle.
func (s *ShardedDB) DeleteObstacle(gid int32) bool {
	if s.durWritable() != nil {
		return false
	}
	s.maybeCheckpointDurable()
	s.seqMu.RLock()
	if gid < 0 || int(gid) >= len(s.o2s) {
		s.seqMu.RUnlock()
		return false
	}
	loc := s.o2s[gid]
	s.seqMu.RUnlock()
	var targets []*shardUnit
	for _, rep := range loc.reps {
		targets = append(targets, s.shards[rep.shard])
	}
	for _, sh := range targets {
		sh.mu.Lock()
	}
	defer func() {
		for i := len(targets) - 1; i >= 0; i-- {
			targets[i].mu.Unlock()
		}
	}()
	// Replicas tombstone in lockstep (they were created together and only
	// this method deletes them, under all replica locks), so the first
	// replica's verdict is the obstacle's.
	for i, rep := range loc.reps {
		if !targets[i].db.DeleteObstacle(rep.lid) {
			return false
		}
	}
	s.commit(func() changeEntry { return changeEntry{op: opDelObs, gid: gid, r: loc.r} }, targets...)
	s.nObs.Add(-1)
	s.watch.notify(loc.r, false)
	return true
}

// NumPoints returns the live data point count across all shards.
func (s *ShardedDB) NumPoints() int { return int(s.nPts.Load()) }

// NumObstacles returns the live obstacle count (each replicated obstacle
// counted once).
func (s *ShardedDB) NumObstacles() int { return int(s.nObs.Load()) }

// Version returns the router revision: 1 for the opened world, +1 per
// successful mutation — the exact mirror of DB.Version over the same
// mutation history.
func (s *ShardedDB) Version() uint64 { return s.rev.Load() }

// addCacheStats folds one cache's counters into an aggregate.
func addCacheStats(agg *CacheStats, st CacheStats) {
	agg.Hits += st.Hits
	agg.Misses += st.Misses
	agg.Promotions += st.Promotions
	agg.PromotedHits += st.PromotedHits
	agg.Invalidations += st.Invalidations
	agg.Evictions += st.Evictions
	agg.Entries += st.Entries
	agg.Bytes += st.Bytes
}

// CacheStats aggregates the answer-cache counters of every shard and every
// live union mirror, plus the final counters of mirrors the registry has
// LRU-evicted (so the hit/miss totals stay cumulative across evictions).
func (s *ShardedDB) CacheStats() CacheStats {
	var agg CacheStats
	for _, sh := range s.shards {
		addCacheStats(&agg, sh.db.CacheStats())
	}
	s.mirMu.Lock()
	mirrors := make([]*unionMirror, 0, len(s.mirrors))
	for _, m := range s.mirrors {
		mirrors = append(mirrors, m)
	}
	addCacheStats(&agg, s.retiredCache)
	s.mirMu.Unlock()
	for _, m := range mirrors {
		m.mu.Lock()
		// A mirror evicted after the registry snapshot above already folded
		// its counters into retiredCache; counting it again would double.
		if m.db != nil && !m.retired {
			addCacheStats(&agg, m.db.CacheStats())
		}
		m.mu.Unlock()
	}
	return agg
}

// PlannerStats aggregates the execution-planner counters of every world the
// router executes on: the shard units, the live union mirrors, and the
// pinned union sub-worlds of unreleased snapshots — plus the final counters
// of LRU-evicted mirrors and released pins (retiredPlanner), the same
// cumulative-across-evictions contract as CacheStats.
func (s *ShardedDB) PlannerStats() PlannerStats {
	var agg PlannerStats
	for _, sh := range s.shards {
		addPlannerStats(&agg, sh.db.PlannerStats())
	}
	s.pinMu.Lock()
	var pins []*ShardedSnapshot
	for _, set := range s.pins {
		for sp := range set {
			pins = append(pins, sp)
		}
	}
	s.pinMu.Unlock()
	for _, sp := range pins {
		sp.mu.Lock()
		// A pin released after the registry snapshot above already folded its
		// unions into retiredPlanner; counting them again would double.
		if !sp.plannerFolded {
			for _, u := range sp.unions {
				addPlannerStats(&agg, u.db.PlannerStats())
			}
		}
		sp.mu.Unlock()
	}
	s.mirMu.Lock()
	mirrors := make([]*unionMirror, 0, len(s.mirrors))
	for _, m := range s.mirrors {
		mirrors = append(mirrors, m)
	}
	addPlannerStats(&agg, s.retiredPlanner)
	s.mirMu.Unlock()
	for _, m := range mirrors {
		m.mu.Lock()
		// Same double-count guard as CacheStats: a mirror evicted after the
		// registry snapshot already folded into retiredPlanner.
		if m.db != nil && !m.retired {
			addPlannerStats(&agg, m.db.PlannerStats())
		}
		m.mu.Unlock()
	}
	return agg
}

// ShardStat is one shard's row in ShardStats.
type ShardStat struct {
	Points    int    `json:"points"`
	Obstacles int    `json:"obstacles"` // replicas resident on this shard
	Epoch     uint64 `json:"epoch"`     // the shard DB's own MVCC epoch
	Execs     int64  `json:"execs"`
}

// ShardStats is a snapshot of the router's scatter-gather counters.
// ShardExecs versus BroadcastCost is the pruning observable: a broadcast
// router would run every request on every shard (BroadcastCost); the
// reach-bounded router runs DirectExecs single-shard requests on one and
// spans only as far as retrieval footprints require.
type ShardStats struct {
	Shards        int         `json:"shards"`
	Cols          int         `json:"cols"`
	Rows          int         `json:"rows"`
	RouterExecs   int64       `json:"router_execs"`
	ShardExecs    int64       `json:"shard_execs"`      // sum of |cells| over all exec rounds
	BroadcastCost int64       `json:"broadcast_cost"`   // router_execs * shards
	Expansions    int64       `json:"expansions"`       // rounds rerun after a footprint escape
	FullFanouts   int64       `json:"full_fanouts"`     // rounds spanning every shard
	DirectExecs   int64       `json:"direct_execs"`     // rounds on exactly one shard
	Mirrors       int         `json:"mirrors"`          // live union mirrors (LRU-bounded)
	MirrorEvicts  int64       `json:"mirror_evictions"` // mirrors dropped by the registry LRU
	PerShard      []ShardStat `json:"per_shard"`
}

// ShardStats returns the current router counters and per-shard sizes.
func (s *ShardedDB) ShardStats() ShardStats {
	st := ShardStats{
		Shards:        s.m.numShards(),
		Cols:          s.m.cols,
		Rows:          s.m.rows,
		RouterExecs:   s.routerExecs.Load(),
		ShardExecs:    s.shardExecs.Load(),
		BroadcastCost: s.broadcastCost.Load(),
		Expansions:    s.expansions.Load(),
		FullFanouts:   s.fullFanouts.Load(),
		DirectExecs:   s.directExecs.Load(),
		MirrorEvicts:  s.mirEvictions.Load(),
	}
	s.mirMu.Lock()
	st.Mirrors = len(s.mirrors)
	s.mirMu.Unlock()
	for _, sh := range s.shards {
		st.PerShard = append(st.PerShard, ShardStat{
			Points:    sh.db.NumPoints(),
			Obstacles: sh.db.NumObstacles(),
			Epoch:     sh.db.Version(),
			Execs:     sh.execs.Load(),
		})
	}
	return st
}
