package connquery

import (
	"bytes"
	"context"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(801))
	points := make([]Point, 500)
	for i := range points {
		points[i] = Pt(r.Float64()*10000, r.Float64()*10000)
	}
	obstacles := make([]Rect, 80)
	for i := range obstacles {
		lo := Pt(r.Float64()*10000, r.Float64()*10000)
		obstacles[i] = R(lo.X, lo.Y, lo.X+30, lo.Y+20)
	}
	pts := points[:0]
	for _, p := range points {
		free := true
		for _, o := range obstacles {
			if o.ContainsOpen(p) {
				free = false
			}
		}
		if free {
			pts = append(pts, p)
		}
	}
	db, err := Open(pts, obstacles)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if db2.NumPoints() != db.NumPoints() || db2.NumObstacles() != db.NumObstacles() {
		t.Fatalf("sizes changed: %d/%d vs %d/%d",
			db2.NumPoints(), db2.NumObstacles(), db.NumPoints(), db.NumObstacles())
	}

	// Same answers before and after the round trip.
	q := Seg(Pt(1000, 5000), Pt(1450, 5000))
	a, _, err := Run(context.Background(), db, CONNRequest{Seg: q})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run(context.Background(), db2, CONNRequest{Seg: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tuples) != len(b.Tuples) {
		t.Fatalf("tuples changed: %d vs %d", len(a.Tuples), len(b.Tuples))
	}
	for i := range a.Tuples {
		if a.Tuples[i].PID != b.Tuples[i].PID {
			t.Fatalf("tuple %d owner changed: %d vs %d", i, a.Tuples[i].PID, b.Tuples[i].PID)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := smallDB(t)
	path := filepath.Join(t.TempDir(), "snap.connq")
	if err := db.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	db2, err := LoadFile(path, WithOneTree())
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if db2.NumPoints() != db.NumPoints() {
		t.Fatal("point count changed")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC________________"),
		append([]byte("CONNQv1\n"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff), // huge count
	}
	for i, c := range cases {
		if _, err := Load(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
	// Truncated body: valid magic + count but missing coordinates.
	var buf bytes.Buffer
	buf.WriteString("CONNQv1\n")
	buf.Write([]byte{2, 0, 0, 0, 0, 0, 0, 0}) // 2 points, no data
	if _, err := Load(&buf); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestLoadRejectsNonFinite(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("CONNQv1\n")
	buf.Write([]byte{1, 0, 0, 0, 0, 0, 0, 0})
	// NaN bits for x.
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xf8, 0x7f})
	buf.Write(make([]byte, 8))
	buf.Write(make([]byte, 8)) // obstacle count 0
	if _, err := Load(&buf); err == nil {
		t.Fatal("NaN coordinate accepted")
	}
}
