module connquery

go 1.24
