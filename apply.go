package connquery

import (
	"fmt"
	"time"

	"connquery/internal/core"
	"connquery/internal/flatgeom"
	"connquery/internal/rtree"
	"connquery/internal/wal"
)

// Batched commit. DB.Apply takes one tick's worth of mutations and commits
// them as a single publish: the touched R*-trees are copy-on-write cloned
// once for the whole batch (not once per member), the durable tier appends
// the batch's WAL records in one write (one fsync under strict or sync-ack
// durability), the answer cache is invalidated once against the batch's
// union change boxes, and exactly one MVCC version — at epoch base+k for k
// applied primitives — becomes visible. The intermediate epochs base+1 ..
// base+k-1 exist only as WAL records (recovery replays them one by one);
// they are never published and never pinnable.
//
// Order equivalence: members apply in slice order against a working state
// that mirrors the sequential ops exactly — same validation predicates
// against the working trees, same ID assignment (PIDs/OIDs are the working
// slice lengths), same tombstone rules — so Apply(batch) publishes the same
// final state, bit for bit, as applying the members one by one through the
// public ops, including pathological orders like insert → delete → reinsert
// of the same object within one tick. A member that fails validation is
// reported in its MutationResult and skipped; the rest of the batch still
// applies, exactly as the sequential calls would have behaved.

// MutationOp identifies the operation of one DB.Apply batch member.
type MutationOp uint8

const (
	// MutInsertPoint inserts data point P (optionally declaring Speed).
	MutInsertPoint MutationOp = iota + 1
	// MutDeletePoint deletes the data point with PID ID.
	MutDeletePoint
	// MutInsertObstacle inserts obstacle R.
	MutInsertObstacle
	// MutDeleteObstacle deletes the obstacle with OID ID.
	MutDeleteObstacle
	// MutMovePoint moves the data point with PID ID to P: a delete of ID
	// followed by an insert at P, committed in the same tick. The moved
	// object receives a fresh PID (IDs are never reused).
	MutMovePoint
)

// String names the operation for logs and errors.
func (op MutationOp) String() string {
	switch op {
	case MutInsertPoint:
		return "insert-point"
	case MutDeletePoint:
		return "delete-point"
	case MutInsertObstacle:
		return "insert-obstacle"
	case MutDeleteObstacle:
		return "delete-obstacle"
	case MutMovePoint:
		return "move-point"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Mutation is one member of a DB.Apply batch.
type Mutation struct {
	// Op selects the operation; the fields it reads are listed per constant.
	Op MutationOp
	// ID is the target PID (MutDeletePoint, MutMovePoint) or OID
	// (MutDeleteObstacle).
	ID int32
	// P is the inserted or destination position (MutInsertPoint,
	// MutMovePoint).
	P Point
	// R is the inserted obstacle (MutInsertObstacle).
	R Rect
	// Speed optionally declares the object's maximum speed in world units
	// per second (MutInsertPoint, MutMovePoint), registering it for
	// validity-horizon tracking (motion.go). Zero on a move keeps the
	// target's existing declaration; zero on an insert leaves the object
	// untracked. Negative or non-finite speeds fail the member.
	Speed float64
}

// MutationResult reports the outcome of one batch member.
type MutationResult struct {
	// ID is the assigned ID for inserts, the fresh PID for a completed
	// move, and otherwise the target ID of the member.
	ID int32
	// Deleted reports whether a delete (or the delete half of a move)
	// removed an existing object.
	Deleted bool
	// Err is the member's validation failure, nil on success. A move whose
	// delete succeeded but whose insert failed reports Deleted true with
	// the insert's error: the delete stands, exactly as sequential
	// DeletePoint + InsertPoint would have left the database.
	Err error
}

// ApplyResult reports the outcome of one DB.Apply call.
type ApplyResult struct {
	// Epoch is the epoch the batch published — the database's (unchanged)
	// current epoch when no member applied.
	Epoch uint64
	// Applied counts the committed primitive mutations; a completed move
	// contributes two (its delete and its insert).
	Applied int
	// Results holds one entry per batch member, in input order.
	Results []MutationResult
}

// Apply commits a batch of mutations as one tick: one writer-lock
// acquisition, one copy-on-write pass over the touched trees, one WAL
// append (one fsync in strict or sync-ack mode), one cache invalidation
// against the union change boxes, one published version, one watcher
// notification per touched kind. Failed members are reported per entry and
// do not abort the batch. The call returns an error only when the handle is
// unwritable or the durable tier fails (fail-stop: nothing was published).
//
// A batch of compliant tracked moves — every member a MutMovePoint whose
// target is registered and whose displacement respects its declared speed —
// commits as a motion-bounded tick that preserves outstanding validity
// horizons; any other batch bounds them (see motion.go).
func (db *DB) Apply(batch []Mutation) (ApplyResult, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writableLocked(); err != nil {
		return ApplyResult{}, err
	}
	v := db.current()
	now := time.Now()
	b := db.beginBatch(v)
	results := make([]MutationResult, len(batch))
	for i, m := range batch {
		results[i] = b.member(m, now)
	}
	if b.applied == 0 {
		return ApplyResult{Epoch: v.epoch, Results: results}, nil
	}
	if err := b.commit(); err != nil {
		return ApplyResult{}, err
	}
	return ApplyResult{Epoch: b.nv.epoch, Applied: b.applied, Results: results}, nil
}

// Apply applies the batch through the router's public ops, member by
// member in slice order — trivially order-equivalent to the sequential
// calls, with every per-shard commit already wake-filtered. The sharded
// tier amortizes differently than the single-node path (commits group per
// shard under the router's change log), so members publish individually:
// Epoch reports the router revision after the last applied member. The
// sharded tier does not track motion, so Mutation.Speed is accepted but
// ignored and no sharded tick is ever motion-bounded; answers carry no
// validity horizon.
func (s *ShardedDB) Apply(batch []Mutation) (ApplyResult, error) {
	results := make([]MutationResult, len(batch))
	applied := 0
	for i, m := range batch {
		switch m.Op {
		case MutInsertPoint:
			if err := validSpeed(m.Speed); err != nil {
				results[i] = MutationResult{Err: err}
				continue
			}
			pid, err := s.InsertPoint(m.P)
			if err != nil {
				results[i] = MutationResult{Err: err}
				continue
			}
			applied++
			results[i] = MutationResult{ID: pid}
		case MutDeletePoint:
			if !s.DeletePoint(m.ID) {
				results[i] = MutationResult{ID: m.ID, Err: fmt.Errorf("connquery: no live point %d", m.ID)}
				continue
			}
			applied++
			results[i] = MutationResult{ID: m.ID, Deleted: true}
		case MutInsertObstacle:
			oid, err := s.InsertObstacle(m.R)
			if err != nil {
				results[i] = MutationResult{Err: err}
				continue
			}
			applied++
			results[i] = MutationResult{ID: oid}
		case MutDeleteObstacle:
			if !s.DeleteObstacle(m.ID) {
				results[i] = MutationResult{ID: m.ID, Err: fmt.Errorf("connquery: no live obstacle %d", m.ID)}
				continue
			}
			applied++
			results[i] = MutationResult{ID: m.ID, Deleted: true}
		case MutMovePoint:
			if err := validSpeed(m.Speed); err != nil {
				results[i] = MutationResult{ID: m.ID, Err: err}
				continue
			}
			if !s.DeletePoint(m.ID) {
				results[i] = MutationResult{ID: m.ID, Err: fmt.Errorf("connquery: no live point %d", m.ID)}
				continue
			}
			applied++
			pid, err := s.InsertPoint(m.P)
			if err != nil {
				// The delete stands, as in the single-node semantics.
				results[i] = MutationResult{ID: m.ID, Deleted: true, Err: err}
				continue
			}
			applied++
			results[i] = MutationResult{ID: pid, Deleted: true}
		default:
			results[i] = MutationResult{Err: fmt.Errorf("connquery: unknown mutation %s", m.Op)}
		}
	}
	return ApplyResult{Epoch: s.Version(), Applied: applied, Results: results}, nil
}

// motionUpdate is one deferred motion-registry edit, applied only when the
// batch commits (a WAL failure must leave the registry untouched).
type motionUpdate struct {
	pid    int32
	entry  motionEntry
	forget bool
}

// batchState is the working state of one Apply call: a successor version
// under construction whose slices, tombstone maps, trees and kernel advance
// member by member with exactly the sequential ops' rules, plus the WAL
// records, union change boxes and motion bookkeeping the commit needs.
type batchState struct {
	db *DB
	v  *version // base version
	nv *version // working successor; epoch finalized per primitive

	kern *flatgeom.Kernel // working kernel, chained Extend per primitive

	// Cloned working trees, nil until the first mutation of the kind. The
	// single clone is mutated in place by later members: R*-tree insertion
	// and deletion decisions depend only on node contents, so one clone
	// receiving k operations is structurally identical to a chain of k
	// clones receiving one each.
	data, obst, uni *rtree.Tree

	ownTombPts, ownTombObs bool // working tombstone maps are private copies

	applied int
	recs    []wal.Record

	ptBox, obsBox Rect
	hasPt, hasObs bool

	// bounded stays true while every member is a fully completed compliant
	// move of a tracked object — the only ticks that preserve validity
	// horizons. Failed members leave no trace and do not affect it.
	bounded bool
	motions []motionUpdate
}

func (db *DB) beginBatch(v *version) *batchState {
	return &batchState{db: db, v: v, nv: beginVersion(v), kern: v.eng.Kernel, bounded: true}
}

// member applies one batch member to the working state.
func (b *batchState) member(m Mutation, now time.Time) MutationResult {
	switch m.Op {
	case MutInsertPoint:
		if err := validSpeed(m.Speed); err != nil {
			b.bounded = false
			return MutationResult{Err: err}
		}
		pid, err := b.insertPoint(m.P)
		if err != nil {
			return MutationResult{Err: err}
		}
		b.bounded = false // new object: outstanding horizons never saw it
		if m.Speed > 0 {
			b.motions = append(b.motions, motionUpdate{pid: pid, entry: motionEntry{pos: m.P, speed: m.Speed, at: now}})
		}
		return MutationResult{ID: pid}
	case MutDeletePoint:
		if err := b.deletePoint(m.ID); err != nil {
			return MutationResult{ID: m.ID, Err: err}
		}
		b.bounded = false
		b.motions = append(b.motions, motionUpdate{pid: m.ID, forget: true})
		return MutationResult{ID: m.ID, Deleted: true}
	case MutInsertObstacle:
		oid, err := b.insertObstacle(m.R)
		if err != nil {
			return MutationResult{Err: err}
		}
		b.bounded = false
		return MutationResult{ID: oid}
	case MutDeleteObstacle:
		if err := b.deleteObstacle(m.ID); err != nil {
			return MutationResult{ID: m.ID, Err: err}
		}
		b.bounded = false
		return MutationResult{ID: m.ID, Deleted: true}
	case MutMovePoint:
		return b.movePoint(m, now)
	}
	b.bounded = false
	return MutationResult{Err: fmt.Errorf("connquery: unknown mutation %s", m.Op)}
}

// movePoint is delete(ID) + insert(P) in one member. Compliance with the
// target's registered speed declaration decides whether the member keeps
// the tick motion-bounded; the database state transition is identical
// either way.
func (b *batchState) movePoint(m Mutation, now time.Time) MutationResult {
	if err := validSpeed(m.Speed); err != nil {
		b.bounded = false
		return MutationResult{ID: m.ID, Err: err}
	}
	reg, tracked := b.db.motion.lookup(m.ID)
	if err := b.deletePoint(m.ID); err != nil {
		b.bounded = false
		return MutationResult{ID: m.ID, Err: err}
	}
	pid, err := b.insertPoint(m.P)
	if err != nil {
		// The delete stands — order equivalence with sequential
		// DeletePoint + InsertPoint. A vanished tracked object only
		// lengthens horizons, but the half-applied member is not a
		// compliant move, so the tick is bounded anyway.
		b.bounded = false
		b.motions = append(b.motions, motionUpdate{pid: m.ID, forget: true})
		return MutationResult{ID: m.ID, Deleted: true, Err: err}
	}
	// Compliant iff the object was tracked and its displacement since the
	// declaration fits the declared speed. Horizons were computed from the
	// registered entry, so compliance is judged against it — not against
	// any newer position the caller believes in.
	compliant := tracked && reg.speed > 0 &&
		dist(reg.pos, m.P) <= reg.speed*now.Sub(reg.at).Seconds()
	if !compliant {
		b.bounded = false
	}
	speed := m.Speed
	if speed == 0 && tracked {
		speed = reg.speed
	}
	b.motions = append(b.motions, motionUpdate{pid: m.ID, forget: true})
	if speed > 0 {
		b.motions = append(b.motions, motionUpdate{pid: pid, entry: motionEntry{pos: m.P, speed: speed, at: now}})
	}
	return MutationResult{ID: pid, Deleted: true}
}

func validSpeed(s float64) error {
	if s < 0 || !validCoord(s) {
		return fmt.Errorf("connquery: invalid speed %v (must be finite and non-negative)", s)
	}
	return nil
}

func dist(a, b Point) float64 {
	return rectDist(a, Rect{MinX: b.X, MinY: b.Y, MaxX: b.X, MaxY: b.Y})
}

// ---------------------------------------------------------------------------
// Working-state primitives: each mirrors its mutate.go twin against the
// batch's working version instead of the published one.

// pointTreeR returns the tree to read point items from: the working clone
// when one exists, the base tree otherwise.
func (b *batchState) pointTreeR() *rtree.Tree {
	if b.v.eng.OneTree() {
		if b.uni != nil {
			return b.uni
		}
		return b.v.eng.Unified
	}
	if b.data != nil {
		return b.data
	}
	return b.v.eng.Data
}

// obstTreeR returns the tree to read obstacle items from.
func (b *batchState) obstTreeR() *rtree.Tree {
	if b.v.eng.OneTree() {
		if b.uni != nil {
			return b.uni
		}
		return b.v.eng.Unified
	}
	if b.obst != nil {
		return b.obst
	}
	return b.v.eng.Obst
}

// pointTreeW returns the working tree for point mutations, cloning the base
// tree copy-on-write on first use (accounting detached, as in mutateTree).
func (b *batchState) pointTreeW() *rtree.Tree {
	if b.v.eng.OneTree() {
		if b.uni == nil {
			b.uni = b.v.eng.Unified.CloneCOW()
			b.uni.SetAccessRecorder(nil)
		}
		return b.uni
	}
	if b.data == nil {
		b.data = b.v.eng.Data.CloneCOW()
		b.data.SetAccessRecorder(nil)
	}
	return b.data
}

// obstTreeW returns the working tree for obstacle mutations.
func (b *batchState) obstTreeW() *rtree.Tree {
	if b.v.eng.OneTree() {
		return b.pointTreeW() // one unified working clone serves both kinds
	}
	if b.obst == nil {
		b.obst = b.v.eng.Obst.CloneCOW()
		b.obst.SetAccessRecorder(nil)
	}
	return b.obst
}

// applied bumps the primitive count and returns the primitive's epoch.
func (b *batchState) nextEpoch() uint64 {
	b.applied++
	return b.v.epoch + uint64(b.applied)
}

func (b *batchState) growPtBox(r Rect) {
	if b.hasPt {
		b.ptBox = b.ptBox.Union(r)
	} else {
		b.ptBox, b.hasPt = r, true
	}
}

func (b *batchState) growObsBox(r Rect) {
	if b.hasObs {
		b.obsBox = b.obsBox.Union(r)
	} else {
		b.obsBox, b.hasObs = r, true
	}
}

func (b *batchState) insertPoint(p Point) (int32, error) {
	if !validPoint(p) {
		return 0, fmt.Errorf("connquery: invalid point %v", p)
	}
	nv := b.nv
	var inside *Rect
	w := Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
	b.obstTreeR().View(nil).Search(w, func(it rtree.Item) bool {
		if it.Kind == rtree.KindObstacle && nv.obstacles[it.ID].ContainsOpen(p) {
			o := nv.obstacles[it.ID]
			inside = &o
			return false
		}
		return true
	})
	if inside != nil {
		return 0, fmt.Errorf("connquery: point %v lies strictly inside obstacle %v", p, *inside)
	}
	pid := int32(len(nv.points))
	if !b.db.ownPts {
		nv.points = grownCopy(nv.points)
		b.db.ownPts = true
	}
	nv.points = append(nv.points, p)
	b.pointTreeW().Insert(rtree.PointItem(pid, p))
	b.kern = b.kern.Extend(nv.obstacles)
	b.recs = append(b.recs, wal.Record{
		Epoch: b.nextEpoch(), Op: wal.OpInsertPoint, ID: pid, Coords: [4]float64{p.X, p.Y},
	})
	b.growPtBox(pointBox(p))
	return pid, nil
}

func (b *batchState) deletePoint(pid int32) error {
	nv := b.nv
	if pid < 0 || int(pid) >= len(nv.points) || nv.deletedPts[pid] {
		return fmt.Errorf("connquery: no live point %d", pid)
	}
	p := nv.points[pid]
	if !b.pointTreeW().Delete(rtree.PointItem(pid, p)) {
		return fmt.Errorf("connquery: no live point %d", pid)
	}
	if !b.ownTombPts {
		nv.deletedPts = cloneTombs(nv.deletedPts, pid)
		b.ownTombPts = true
	} else {
		nv.deletedPts[pid] = true
	}
	b.kern = b.kern.Extend(nv.obstacles)
	b.recs = append(b.recs, wal.Record{
		Epoch: b.nextEpoch(), Op: wal.OpDeletePoint, ID: pid, Coords: [4]float64{p.X, p.Y},
	})
	b.growPtBox(pointBox(p))
	return nil
}

func (b *batchState) insertObstacle(r Rect) (int32, error) {
	if !validRect(r) {
		return 0, fmt.Errorf("connquery: invalid obstacle %v (must be finite with positive width and height)", r)
	}
	var blocked *int32
	b.pointTreeR().View(nil).Search(r, func(it rtree.Item) bool {
		if it.Kind == rtree.KindPoint && r.ContainsOpen(it.Point()) {
			id := it.ID
			blocked = &id
			return false
		}
		return true
	})
	if blocked != nil {
		return 0, fmt.Errorf("connquery: obstacle %v would swallow point %d", r, *blocked)
	}
	nv := b.nv
	oid := int32(len(nv.obstacles))
	if !b.db.ownObs {
		nv.obstacles = grownCopy(nv.obstacles)
		b.db.ownObs = true
	}
	nv.obstacles = append(nv.obstacles, r)
	b.obstTreeW().Insert(rtree.ObstacleItem(oid, r))
	b.kern = b.kern.Extend(nv.obstacles)
	b.recs = append(b.recs, wal.Record{
		Epoch: b.nextEpoch(), Op: wal.OpInsertObstacle, ID: oid, Coords: [4]float64{r.MinX, r.MinY, r.MaxX, r.MaxY},
	})
	b.growObsBox(r)
	return oid, nil
}

func (b *batchState) deleteObstacle(oid int32) error {
	nv := b.nv
	if oid < 0 || int(oid) >= len(nv.obstacles) || nv.deletedObs[oid] {
		return fmt.Errorf("connquery: no live obstacle %d", oid)
	}
	o := nv.obstacles[oid]
	if !b.obstTreeW().Delete(rtree.ObstacleItem(oid, o)) {
		return fmt.Errorf("connquery: no live obstacle %d", oid)
	}
	if !b.ownTombObs {
		nv.deletedObs = cloneTombs(nv.deletedObs, oid)
		b.ownTombObs = true
	} else {
		nv.deletedObs[oid] = true
	}
	b.kern = b.kern.Extend(nv.obstacles)
	b.recs = append(b.recs, wal.Record{
		Epoch: b.nextEpoch(), Op: wal.OpDeleteObstacle, ID: oid, Coords: [4]float64{o.MinX, o.MinY, o.MaxX, o.MaxY},
	})
	b.growObsBox(o)
	return nil
}

// ---------------------------------------------------------------------------
// Commit

// finishEngine assembles the working version's engine: working clones get
// their accounting reattached (mutateTree's rule), untouched tree handles
// are shared from the base, and the kernel is the per-primitive Extend
// chain — the identical chain the sequential ops would have built.
func (b *batchState) finishEngine() {
	old := b.v.eng
	eng := &core.Engine{
		Obstacles:   b.nv.obstacles,
		Kernel:      b.kern,
		Opts:        b.db.cfg.tuning,
		Epoch:       b.nv.epoch,
		States:      b.db.states,
		DataCounter: old.DataCounter,
		ObstCounter: old.ObstCounter,
	}
	if old.OneTree() {
		eng.Unified = old.Unified
		if b.uni != nil {
			b.uni.SetAccessRecorder(old.DataCounter)
			eng.Unified = b.uni
		}
	} else {
		eng.Data, eng.Obst = old.Data, old.Obst
		if b.data != nil {
			b.data.SetAccessRecorder(old.DataCounter)
			eng.Data = b.data
		}
		if b.obst != nil {
			b.obst.SetAccessRecorder(old.ObstCounter)
			eng.Obst = b.obst
		}
	}
	b.nv.eng = eng
}

// commit publishes the batch: WAL append (fsynced under sync-ack), one
// union-box cache invalidation, motion bookkeeping, one version swap, one
// watcher notification per touched kind. On a durable error nothing is
// published and the handle latches fail-stop, exactly like mutate.go's
// commit.
func (b *batchState) commit() error {
	db := b.db
	b.nv.epoch = b.v.epoch + uint64(b.applied)
	b.finishEngine()
	if db.dur != nil {
		if err := db.dur.logBatch(b.recs); err != nil {
			return err
		}
		if db.cfg.syncAck {
			if err := db.dur.syncLocked(); err != nil {
				return err
			}
		}
	}
	db.cache.InvalidateBatch(b.v.epoch, b.nv.epoch, b.ptBox, b.obsBox, b.hasPt, b.hasObs)
	if !b.bounded {
		// Store before the version swap: a watcher observing the new epoch
		// must also observe the horizon bound (see mutate.go commit).
		db.lastUnbounded.Store(b.nv.epoch)
	}
	// Registry updates land before the version swap and re-key the table at
	// the batch's epoch: a stamp at the new epoch sees the post-tick table,
	// while an in-flight stamp for an older answer sees ver advance and
	// refuses (motion.go) instead of certifying a horizon from positions the
	// answer never observed.
	db.motion.applyAt(b.motions, b.nv.epoch)
	db.cur.Store(b.nv)
	if b.hasPt {
		db.watch.notify(b.ptBox, true)
	}
	if b.hasObs {
		db.watch.notify(b.obsBox, false)
	}
	if db.dur != nil {
		db.maybeCheckpointLocked(b.nv)
	}
	return nil
}
