package connquery

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Snapshot format: a little-endian binary encoding of the point and
// obstacle sets. The indexes are rebuilt on load (bulk loading 100k+
// objects takes well under a second, so persisting tree pages would buy
// little and cost format stability).
//
//	magic   [8]byte  "CONNQv1\n"
//	nPoints uint64
//	points  nPoints * (x, y float64)
//	nObs    uint64
//	obs     nObs * (minX, minY, maxX, maxY float64)

var snapshotMagic = [8]byte{'C', 'O', 'N', 'N', 'Q', 'v', '1', '\n'}

// Save writes the database's point and obstacle sets to w in the snapshot
// format. The version current when Save starts is pinned for the whole
// write, so a snapshot taken under concurrent mutation is still internally
// consistent. Construction options (page size, buffers, one-tree) are
// runtime configuration and are not persisted; pass them to Load.
func (db *DB) Save(w io.Writer) error {
	v := db.current()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("connquery: save: %w", err)
	}
	writeU64 := func(v uint64) error { return binary.Write(bw, binary.LittleEndian, v) }
	writeF64 := func(v float64) error {
		return binary.Write(bw, binary.LittleEndian, math.Float64bits(v))
	}
	// Deleted objects are dropped from the snapshot; PIDs are therefore
	// compacted on load.
	if err := writeU64(uint64(len(v.points) - len(v.deletedPts))); err != nil {
		return fmt.Errorf("connquery: save: %w", err)
	}
	for pid, p := range v.points {
		if v.deletedPts[int32(pid)] {
			continue
		}
		if err := writeF64(p.X); err != nil {
			return fmt.Errorf("connquery: save: %w", err)
		}
		if err := writeF64(p.Y); err != nil {
			return fmt.Errorf("connquery: save: %w", err)
		}
	}
	if err := writeU64(uint64(len(v.obstacles) - len(v.deletedObs))); err != nil {
		return fmt.Errorf("connquery: save: %w", err)
	}
	for oid, o := range v.obstacles {
		if v.deletedObs[int32(oid)] {
			continue
		}
		for _, v := range [4]float64{o.MinX, o.MinY, o.MaxX, o.MaxY} {
			if err := writeF64(v); err != nil {
				return fmt.Errorf("connquery: save: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("connquery: save: %w", err)
	}
	return nil
}

// Load reads a snapshot written by Save and rebuilds the database with the
// given options.
func Load(r io.Reader, opts ...Option) (*DB, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("connquery: load: %w", err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("connquery: load: bad magic %q (not a connquery snapshot?)", magic)
	}
	readU64 := func() (uint64, error) {
		var v uint64
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	readF64 := func() (float64, error) {
		var bits uint64
		if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
			return 0, err
		}
		v := math.Float64frombits(bits)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("non-finite coordinate")
		}
		return v, nil
	}

	n, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("connquery: load: point count: %w", err)
	}
	const maxObjects = 1 << 28 // sanity bound against corrupt headers
	if n > maxObjects {
		return nil, fmt.Errorf("connquery: load: implausible point count %d", n)
	}
	points := make([]Point, n)
	for i := range points {
		if points[i].X, err = readF64(); err != nil {
			return nil, fmt.Errorf("connquery: load: point %d: %w", i, err)
		}
		if points[i].Y, err = readF64(); err != nil {
			return nil, fmt.Errorf("connquery: load: point %d: %w", i, err)
		}
	}
	m, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("connquery: load: obstacle count: %w", err)
	}
	if m > maxObjects {
		return nil, fmt.Errorf("connquery: load: implausible obstacle count %d", m)
	}
	obstacles := make([]Rect, m)
	for i := range obstacles {
		var vals [4]float64
		for j := range vals {
			if vals[j], err = readF64(); err != nil {
				return nil, fmt.Errorf("connquery: load: obstacle %d: %w", i, err)
			}
		}
		obstacles[i] = Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
	}
	return Open(points, obstacles, opts...)
}

// SaveFile writes the snapshot to a file atomically: the bytes go to a
// temp file in the same directory, are fsynced, and replace path with a
// rename, so a crash mid-save leaves either the previous snapshot or the
// complete new one — never a truncated file that Load rejects.
func (db *DB) SaveFile(path string) error {
	if err := atomicWriteFile(path, db.Save); err != nil {
		return fmt.Errorf("connquery: save: %w", err)
	}
	return nil
}

// LoadFile reads a snapshot from a file.
func LoadFile(path string, opts ...Option) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("connquery: load: %w", err)
	}
	defer f.Close()
	return Load(f, opts...)
}
