package connquery

import (
	"bytes"
	"math"
	"testing"
)

func TestInsertPointChangesAnswers(t *testing.T) {
	db := smallDB(t)
	q := Seg(Pt(0, 0), Pt(100, 0))
	before, _, _ := db.CONN(q)

	pid, err := db.InsertPoint(Pt(50, 2))
	if err != nil {
		t.Fatalf("InsertPoint: %v", err)
	}
	after, _, _ := db.CONN(q)
	mid, _ := after.OwnerAt(0.5)
	if mid.PID != pid {
		t.Fatalf("new point does not own the middle: %+v", after.Tuples)
	}
	if len(after.Tuples) <= len(before.Tuples) {
		t.Fatalf("answer unchanged after insert: %d vs %d tuples", len(after.Tuples), len(before.Tuples))
	}
	if db.NumPoints() != 5 {
		t.Fatalf("NumPoints = %d", db.NumPoints())
	}
}

func TestDeletePointRemovesFromAnswers(t *testing.T) {
	db := smallDB(t)
	q := Seg(Pt(0, 0), Pt(100, 0))
	if !db.DeletePoint(0) {
		t.Fatal("DeletePoint(0) failed")
	}
	if db.DeletePoint(0) {
		t.Fatal("double delete succeeded")
	}
	if db.DeletePoint(99) {
		t.Fatal("deleting unknown PID succeeded")
	}
	res, _, _ := db.CONN(q)
	for _, tup := range res.Tuples {
		if tup.PID == 0 {
			t.Fatalf("deleted point still in answer: %+v", res.Tuples)
		}
	}
	if _, ok := db.PointByID(0); ok {
		t.Fatal("PointByID returned a deleted point")
	}
	if db.NumPoints() != 3 {
		t.Fatalf("NumPoints = %d", db.NumPoints())
	}
}

func TestInsertPointValidation(t *testing.T) {
	db := smallDB(t)
	if _, err := db.InsertPoint(Pt(50, 30)); err == nil {
		t.Fatal("point inside obstacle accepted")
	}
	if _, err := db.InsertPoint(Pt(math.NaN(), 0)); err == nil {
		t.Fatal("NaN point accepted")
	}
	// Boundary is fine.
	if _, err := db.InsertPoint(Pt(40, 30)); err != nil {
		t.Fatalf("boundary point rejected: %v", err)
	}
}

func TestInsertObstacleChangesDistances(t *testing.T) {
	db := smallDB(t)
	a, b := Pt(20, 60), Pt(80, 60)
	before := db.ObstructedDist(a, b)
	oid, err := db.InsertObstacle(R(45, 50, 55, 70))
	if err != nil {
		t.Fatalf("InsertObstacle: %v", err)
	}
	after := db.ObstructedDist(a, b)
	if after <= before {
		t.Fatalf("new wall did not lengthen the path: %v vs %v", after, before)
	}
	if !db.DeleteObstacle(oid) {
		t.Fatal("DeleteObstacle failed")
	}
	if db.DeleteObstacle(oid) {
		t.Fatal("double obstacle delete succeeded")
	}
	restored := db.ObstructedDist(a, b)
	if math.Abs(restored-before) > 1e-9 {
		t.Fatalf("distance not restored after delete: %v vs %v", restored, before)
	}
}

func TestInsertObstacleValidation(t *testing.T) {
	db := smallDB(t)
	// Would swallow point 1 at (50,50).
	if _, err := db.InsertObstacle(R(45, 45, 55, 55)); err == nil {
		t.Fatal("obstacle swallowing a point accepted")
	}
	if _, err := db.InsertObstacle(Rect{MinX: 5, MinY: 5, MaxX: 1, MaxY: 1}); err == nil {
		t.Fatal("inverted obstacle accepted")
	}
	if db.NumObstacles() != 1 {
		t.Fatalf("NumObstacles = %d after rejected inserts", db.NumObstacles())
	}
}

func TestOpenRejectsNonFinite(t *testing.T) {
	if _, err := Open([]Point{Pt(math.Inf(1), 0)}, nil); err == nil {
		t.Fatal("infinite coordinate accepted")
	}
	if _, err := Open([]Point{Pt(0, 0)}, []Rect{{MinX: math.NaN(), MaxX: 1, MaxY: 1}}); err == nil {
		t.Fatal("NaN obstacle accepted")
	}
}

func TestSaveSkipsDeleted(t *testing.T) {
	db := smallDB(t)
	db.DeletePoint(1)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.NumPoints() != 3 || db2.NumObstacles() != 1 {
		t.Fatalf("reloaded sizes: %d points, %d obstacles", db2.NumPoints(), db2.NumObstacles())
	}
	// The deleted (50,50) point must be gone.
	for pid := int32(0); int(pid) < 3; pid++ {
		if p, _ := db2.PointByID(pid); p == Pt(50, 50) {
			t.Fatal("deleted point survived the snapshot")
		}
	}
}

func TestMutationOneTreeMode(t *testing.T) {
	db := smallDB(t, WithOneTree())
	pid, err := db.InsertPoint(Pt(50, 2))
	if err != nil {
		t.Fatalf("InsertPoint: %v", err)
	}
	res, _, _ := db.CONN(Seg(Pt(0, 0), Pt(100, 0)))
	mid, _ := res.OwnerAt(0.5)
	if mid.PID != pid {
		t.Fatalf("one-tree insert ignored: %+v", res.Tuples)
	}
	if !db.DeletePoint(pid) {
		t.Fatal("one-tree delete failed")
	}
}
