package connquery

import (
	"bytes"
	"context"
	"math"
	"testing"
)

func TestInsertPointChangesAnswers(t *testing.T) {
	db := smallDB(t)
	q := Seg(Pt(0, 0), Pt(100, 0))
	before, _, _ := Run(context.Background(), db, CONNRequest{Seg: q})

	pid, err := db.InsertPoint(Pt(50, 2))
	if err != nil {
		t.Fatalf("InsertPoint: %v", err)
	}
	after, _, _ := Run(context.Background(), db, CONNRequest{Seg: q})
	mid, _ := after.OwnerAt(0.5)
	if mid.PID != pid {
		t.Fatalf("new point does not own the middle: %+v", after.Tuples)
	}
	if len(after.Tuples) <= len(before.Tuples) {
		t.Fatalf("answer unchanged after insert: %d vs %d tuples", len(after.Tuples), len(before.Tuples))
	}
	if db.NumPoints() != 5 {
		t.Fatalf("NumPoints = %d", db.NumPoints())
	}
}

func TestDeletePointRemovesFromAnswers(t *testing.T) {
	db := smallDB(t)
	q := Seg(Pt(0, 0), Pt(100, 0))
	if !db.DeletePoint(0) {
		t.Fatal("DeletePoint(0) failed")
	}
	if db.DeletePoint(0) {
		t.Fatal("double delete succeeded")
	}
	if db.DeletePoint(99) {
		t.Fatal("deleting unknown PID succeeded")
	}
	res, _, _ := Run(context.Background(), db, CONNRequest{Seg: q})
	for _, tup := range res.Tuples {
		if tup.PID == 0 {
			t.Fatalf("deleted point still in answer: %+v", res.Tuples)
		}
	}
	if _, ok := db.PointByID(0); ok {
		t.Fatal("PointByID returned a deleted point")
	}
	if db.NumPoints() != 3 {
		t.Fatalf("NumPoints = %d", db.NumPoints())
	}
}

func TestInsertPointValidation(t *testing.T) {
	db := smallDB(t)
	if _, err := db.InsertPoint(Pt(50, 30)); err == nil {
		t.Fatal("point inside obstacle accepted")
	}
	if _, err := db.InsertPoint(Pt(math.NaN(), 0)); err == nil {
		t.Fatal("NaN point accepted")
	}
	// Boundary is fine.
	if _, err := db.InsertPoint(Pt(40, 30)); err != nil {
		t.Fatalf("boundary point rejected: %v", err)
	}
}

func TestInsertObstacleChangesDistances(t *testing.T) {
	db := smallDB(t)
	a, b := Pt(20, 60), Pt(80, 60)
	before := runDist(db, a, b)
	oid, err := db.InsertObstacle(R(45, 50, 55, 70))
	if err != nil {
		t.Fatalf("InsertObstacle: %v", err)
	}
	after := runDist(db, a, b)
	if after <= before {
		t.Fatalf("new wall did not lengthen the path: %v vs %v", after, before)
	}
	if !db.DeleteObstacle(oid) {
		t.Fatal("DeleteObstacle failed")
	}
	if db.DeleteObstacle(oid) {
		t.Fatal("double obstacle delete succeeded")
	}
	restored := runDist(db, a, b)
	if math.Abs(restored-before) > 1e-9 {
		t.Fatalf("distance not restored after delete: %v vs %v", restored, before)
	}
}

func TestInsertObstacleValidation(t *testing.T) {
	db := smallDB(t)
	// Would swallow point 1 at (50,50).
	if _, err := db.InsertObstacle(R(45, 45, 55, 55)); err == nil {
		t.Fatal("obstacle swallowing a point accepted")
	}
	if _, err := db.InsertObstacle(Rect{MinX: 5, MinY: 5, MaxX: 1, MaxY: 1}); err == nil {
		t.Fatal("inverted obstacle accepted")
	}
	if db.NumObstacles() != 1 {
		t.Fatalf("NumObstacles = %d after rejected inserts", db.NumObstacles())
	}
}

func TestOpenRejectsNonFinite(t *testing.T) {
	if _, err := Open([]Point{Pt(math.Inf(1), 0)}, nil); err == nil {
		t.Fatal("infinite coordinate accepted")
	}
	if _, err := Open([]Point{Pt(0, 0)}, []Rect{{MinX: math.NaN(), MaxX: 1, MaxY: 1}}); err == nil {
		t.Fatal("NaN obstacle accepted")
	}
}

func TestSaveSkipsDeleted(t *testing.T) {
	db := smallDB(t)
	db.DeletePoint(1)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.NumPoints() != 3 || db2.NumObstacles() != 1 {
		t.Fatalf("reloaded sizes: %d points, %d obstacles", db2.NumPoints(), db2.NumObstacles())
	}
	// The deleted (50,50) point must be gone.
	for pid := int32(0); int(pid) < 3; pid++ {
		if p, _ := db2.PointByID(pid); p == Pt(50, 50) {
			t.Fatal("deleted point survived the snapshot")
		}
	}
}

func TestMutationOneTreeMode(t *testing.T) {
	db := smallDB(t, WithOneTree())
	pid, err := db.InsertPoint(Pt(50, 2))
	if err != nil {
		t.Fatalf("InsertPoint: %v", err)
	}
	res, _, _ := Run(context.Background(), db, CONNRequest{Seg: Seg(Pt(0, 0), Pt(100, 0))})
	mid, _ := res.OwnerAt(0.5)
	if mid.PID != pid {
		t.Fatalf("one-tree insert ignored: %+v", res.Tuples)
	}
	if !db.DeletePoint(pid) {
		t.Fatal("one-tree delete failed")
	}
}

// --- MVCC / snapshot-isolation regression tests -------------------------

// TestCloneSharesTombstones: Clone used to drop deletedPts/deletedObs,
// resurrecting deleted objects in PointByID, NumPoints and NumObstacles.
func TestCloneSharesTombstones(t *testing.T) {
	db := smallDB(t)
	if !db.DeletePoint(1) {
		t.Fatal("DeletePoint(1) failed")
	}
	oid, err := db.InsertObstacle(R(70, 70, 80, 80))
	if err != nil {
		t.Fatal(err)
	}
	if !db.DeleteObstacle(oid) {
		t.Fatal("DeleteObstacle failed")
	}
	clone := db.Clone()
	if _, ok := clone.PointByID(1); ok {
		t.Fatal("clone resurrected a deleted point")
	}
	if clone.NumPoints() != db.NumPoints() {
		t.Fatalf("clone NumPoints %d, parent %d", clone.NumPoints(), db.NumPoints())
	}
	if clone.NumObstacles() != db.NumObstacles() {
		t.Fatalf("clone NumObstacles %d, parent %d", clone.NumObstacles(), db.NumObstacles())
	}
	if got, want := len(clone.Points()), db.NumPoints(); got != want {
		t.Fatalf("clone Points() has %d entries, want %d", got, want)
	}
}

// TestCloneSnapshotIsolation: mutating the parent after Clone used to leave
// the clone's engine with a stale obstacle slice while the shared R-tree
// nodes carried the new OID — an index-out-of-range (or silently wrong
// visibility) when the clone next queried. Under MVCC the clone stays
// pinned to its version.
func TestCloneSnapshotIsolation(t *testing.T) {
	db := smallDB(t)
	q := Seg(Pt(0, 0), Pt(100, 0))
	before, _, err := Run(context.Background(), db, CONNRequest{Seg: q})
	if err != nil {
		t.Fatal(err)
	}
	clone := db.Clone()
	cloneVersion := clone.Version()

	// Parent mutates: new obstacle over the query, new point, a deletion.
	if _, err := db.InsertObstacle(R(30, -10, 35, 5)); err != nil {
		t.Fatalf("InsertObstacle: %v", err)
	}
	if _, err := db.InsertPoint(Pt(60, 1)); err != nil {
		t.Fatalf("InsertPoint: %v", err)
	}
	if !db.DeletePoint(0) {
		t.Fatal("DeletePoint failed")
	}

	// The clone must answer exactly as before the mutations — previously
	// this panicked with an out-of-range obstacle ID.
	after, _, err := Run(context.Background(), clone, CONNRequest{Seg: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Tuples) != len(before.Tuples) {
		t.Fatalf("clone answer changed: %d tuples vs %d", len(after.Tuples), len(before.Tuples))
	}
	for i := range after.Tuples {
		if after.Tuples[i].PID != before.Tuples[i].PID || after.Tuples[i].Span != before.Tuples[i].Span {
			t.Fatalf("clone tuple %d drifted: %+v vs %+v", i, after.Tuples[i], before.Tuples[i])
		}
	}
	if clone.Version() != cloneVersion {
		t.Fatalf("clone version advanced from %d to %d", cloneVersion, clone.Version())
	}
	if clone.NumPoints() != 4 || clone.NumObstacles() != 1 {
		t.Fatalf("clone sizes drifted: %d points, %d obstacles", clone.NumPoints(), clone.NumObstacles())
	}
	// And the parent must see all three mutations.
	if db.NumPoints() != 4 || db.NumObstacles() != 2 {
		t.Fatalf("parent sizes: %d points, %d obstacles", db.NumPoints(), db.NumObstacles())
	}
	parentRes, _, err := Run(context.Background(), db, CONNRequest{Seg: q})
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range parentRes.Tuples {
		if tu.PID == 0 {
			t.Fatal("parent answer still contains the deleted point")
		}
	}
}

// TestMutatedCloneForksHistory: a clone may itself be mutated; the fork is
// invisible to the parent and vice versa.
func TestMutatedCloneForksHistory(t *testing.T) {
	db := smallDB(t)
	clone := db.Clone()
	if _, err := clone.InsertPoint(Pt(10, 90)); err != nil {
		t.Fatalf("clone InsertPoint: %v", err)
	}
	if _, err := db.InsertObstacle(R(70, 15, 80, 25)); err != nil {
		t.Fatalf("parent InsertObstacle: %v", err)
	}
	if db.NumPoints() != 4 {
		t.Fatalf("parent saw the clone's insert: %d points", db.NumPoints())
	}
	if clone.NumObstacles() != 1 {
		t.Fatalf("clone saw the parent's insert: %d obstacles", clone.NumObstacles())
	}
	if clone.NumPoints() != 5 {
		t.Fatalf("clone lost its own insert: %d points", clone.NumPoints())
	}
}

// TestVersionAdvancesPerMutation: the epoch moves only on successful
// mutations.
func TestVersionAdvancesPerMutation(t *testing.T) {
	db := smallDB(t)
	v0 := db.Version()
	if _, err := db.InsertPoint(Pt(1, 1)); err != nil {
		t.Fatal(err)
	}
	if db.Version() != v0+1 {
		t.Fatalf("version %d after insert, want %d", db.Version(), v0+1)
	}
	if db.DeletePoint(99) {
		t.Fatal("deleting unknown PID succeeded")
	}
	if _, err := db.InsertObstacle(R(9, 9, 9, 12)); err == nil {
		t.Fatal("degenerate obstacle accepted")
	}
	if db.Version() != v0+1 {
		t.Fatalf("failed mutations advanced the version to %d", db.Version())
	}
}

// TestDegenerateObstaclesRejectedEverywhere: zero-width/height rectangles
// have no open interior but their coincident edges break occlusion-code
// assumptions; Open and InsertObstacle must reject them identically.
func TestDegenerateObstaclesRejectedEverywhere(t *testing.T) {
	cases := []struct {
		r  Rect
		ok bool
	}{
		{R(0, 0, 10, 10), true},
		{R(0, 0, 0, 10), false},                           // zero width
		{R(0, 0, 10, 0), false},                           // zero height
		{R(5, 5, 5, 5), false},                            // point
		{Rect{MinX: 5, MinY: 5, MaxX: 1, MaxY: 1}, false}, // inverted
		{R(0, 0, 1e-12, 10), true},                        // tiny but positive is legal
	}
	for _, tc := range cases {
		_, openErr := Open([]Point{Pt(-5, -5)}, []Rect{tc.r})
		db := smallDB(t)
		_, insErr := db.InsertObstacle(tc.r)
		if (openErr == nil) != tc.ok {
			t.Errorf("Open(%v): err=%v, want ok=%v", tc.r, openErr, tc.ok)
		}
		if (openErr == nil) != (insErr == nil) {
			t.Errorf("Open and InsertObstacle disagree on %v: %v vs %v", tc.r, openErr, insErr)
		}
	}
}
