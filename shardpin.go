package connquery

import (
	"sort"
	"sync"
	"sync/atomic"
)

// ShardedSnapshot pins one consistent cross-shard cut of a ShardedDB: the
// router revision plus a Snapshot of every shard's MVCC version taken under
// all shard writer locks, so the per-shard versions agree with the router
// log exactly at that revision. While unreleased, the cut stays queryable
// through At() and through AtVersion(rev) on the router.
//
// Like Snapshot, a ShardedSnapshot is cheap (nothing is copied up front;
// union sub-worlds for spanning queries are built lazily and cached per
// cell block), safe for concurrent use, and Release is idempotent.
type ShardedSnapshot struct {
	s        *ShardedDB
	rev      uint64
	logLen   int
	snaps    []*Snapshot // per shard, indexed like s.shards
	released atomic.Bool

	mu            sync.Mutex
	unions        map[cellSpan]*pinnedUnion
	plannerFolded bool // Release folded the unions' planner counters (guarded by mu)
}

// pinnedUnion is a lazily built immutable union world of one cell block at
// the pinned cut, with its local-to-global PID table.
type pinnedUnion struct {
	db   *DB
	l2gP []int32
}

// Snapshot pins the current cross-shard cut and returns its handle. It
// briefly takes every shard's writer lock (in index order, the same order
// writers use), which is what makes the per-shard pins and the router
// revision one consistent cut even under concurrent writers.
func (s *ShardedDB) Snapshot() *ShardedSnapshot {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	s.seqMu.RLock()
	rev := s.rev.Load()
	logLen := len(s.log)
	s.seqMu.RUnlock()
	sp := &ShardedSnapshot{
		s:      s,
		rev:    rev,
		logLen: logLen,
		snaps:  make([]*Snapshot, len(s.shards)),
		unions: make(map[cellSpan]*pinnedUnion),
	}
	for i, sh := range s.shards {
		sp.snaps[i] = sh.db.Snapshot()
	}
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
	s.pinMu.Lock()
	set := s.pins[rev]
	if set == nil {
		set = make(map[*ShardedSnapshot]struct{})
		s.pins[rev] = set
	}
	set[sp] = struct{}{}
	s.pinMu.Unlock()
	return sp
}

// Pin pins the current cut and returns it behind the Pin interface; it is
// ShardedDB.Snapshot for callers generic over Database.
func (s *ShardedDB) Pin() Pin { return s.Snapshot() }

// Epoch returns the pinned router revision.
func (sp *ShardedSnapshot) Epoch() uint64 { return sp.rev }

// Released reports whether Release has run.
func (sp *ShardedSnapshot) Released() bool { return sp.released.Load() }

// Release drops the pin: the per-shard snapshots are released and
// AtVersion(rev) on the router stops resolving through this handle.
// Idempotent; queries already running against the cut are unaffected.
func (sp *ShardedSnapshot) Release() {
	if sp.released.Swap(true) {
		return
	}
	for _, snap := range sp.snaps {
		snap.Release()
	}
	s := sp.s
	// Fold the pinned union worlds' planner counters into the router's
	// retired accumulator so ShardedDB.PlannerStats stays cumulative after
	// the pin (and its lazily built sub-worlds) is gone.
	sp.mu.Lock()
	var ps PlannerStats
	for _, u := range sp.unions {
		addPlannerStats(&ps, u.db.PlannerStats())
	}
	sp.plannerFolded = true // a concurrent PlannerStats must not count them again
	sp.mu.Unlock()
	if ps != (PlannerStats{}) {
		s.mirMu.Lock()
		addPlannerStats(&s.retiredPlanner, ps)
		s.mirMu.Unlock()
	}
	s.pinMu.Lock()
	if set, ok := s.pins[sp.rev]; ok {
		delete(set, sp)
		if len(set) == 0 {
			delete(s.pins, sp.rev)
		}
	}
	s.pinMu.Unlock()
}

// At returns the QueryOption pinning a query to this cut, the sharded
// counterpart of AtSnapshot.
func (sp *ShardedSnapshot) At() QueryOption {
	return func(o *execOptions) {
		o.snap, o.bySnap = nil, false
		o.epoch, o.byEpoch = 0, false
		o.ssnap, o.bySSnap = sp, true
	}
}

// unionWorld returns (building and caching on first use) the executable
// union world of a cell block at the pinned cut.
func (sp *ShardedSnapshot) unionWorld(span cellSpan) (*DB, *version, []int32, error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	u, ok := sp.unions[span]
	if !ok {
		var err error
		u, err = sp.buildUnion(span)
		if err != nil {
			return nil, nil, nil, err
		}
		sp.unions[span] = u
	}
	return u.db, u.db.current(), u.l2gP, nil
}

// buildUnion bulk-opens the block's union world from the member shards'
// pinned versions: live points keyed by global PID, obstacle replicas
// deduplicated by global OID, both sorted by global ID before the bulk Open
// so local ID order is order-isomorphic to global ID order — the property
// that keeps the engine's (distance, kind, ID) tie-breaks, and with them the
// whole retrieval trace, identical to the single node's.
func (sp *ShardedSnapshot) buildUnion(span cellSpan) (*pinnedUnion, error) {
	s := sp.s
	type gidPt struct {
		gid int32
		p   Point
	}
	var pts []gidPt
	obsByGid := make(map[int32]Rect)
	span.cells(s.m, func(i int) {
		v := sp.snaps[i].v
		s.seqMu.RLock()
		l2gP := s.shards[i].l2gP
		l2gO := s.shards[i].l2gO
		s.seqMu.RUnlock()
		// The l2g prefixes covering the pinned version are immutable
		// (append-only tables, aligned with the shard's append-only object
		// storage), so indexing within len(v.points)/len(v.obstacles) is
		// race-free even as the tables grow past the cut.
		for lid := 0; lid < len(v.points); lid++ {
			gid := l2gP[lid]
			if gid < 0 || v.deletedPts[int32(lid)] {
				continue // bootstrap dummy or tombstoned
			}
			pts = append(pts, gidPt{gid: gid, p: v.points[lid]})
		}
		for lid := 0; lid < len(v.obstacles); lid++ {
			if v.deletedObs[int32(lid)] {
				continue
			}
			obsByGid[l2gO[lid]] = v.obstacles[lid]
		}
	})
	sort.Slice(pts, func(a, b int) bool { return pts[a].gid < pts[b].gid })
	points := make([]Point, len(pts))
	l2g := make([]int32, len(pts))
	for i, gp := range pts {
		points[i] = gp.p
		l2g[i] = gp.gid
	}
	ogids := make([]int32, 0, len(obsByGid))
	for gid := range obsByGid {
		ogids = append(ogids, gid)
	}
	sort.Slice(ogids, func(a, b int) bool { return ogids[a] < ogids[b] })
	obstacles := make([]Rect, len(ogids))
	for i, gid := range ogids {
		obstacles[i] = obsByGid[gid]
	}
	db, err := openSubWorld(points, obstacles, s.dummy, s.opts)
	if err != nil {
		return nil, err
	}
	if len(points) == 0 {
		l2g = append([]int32{-1}, l2g...)
	}
	return &pinnedUnion{db: db, l2gP: l2g}, nil
}
