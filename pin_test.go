package connquery

// Regression coverage for the Snapshot.Release / Exec race: once Release
// has returned, any Exec that starts afterwards — from any goroutine — must
// deterministically fail with ErrSnapshotReleased, while executions already
// past version resolution keep their (immutable) version and complete
// normally. The determinism hangs on Snapshot.released being a
// sequentially-consistent atomic: the Release side swaps it before
// returning, so a later pinned() load can never miss it. These tests hammer
// that edge under the race detector; TestSnapshotReleaseDuringExec also
// covers the answer-cache path, where a hit must never resurrect a
// released pin (version resolution runs before the cache lookup).

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestSnapshotReleaseThenExecDeterministic sequences Release strictly
// before Exec across goroutines, many times: the Exec side must observe the
// release every single time.
func TestSnapshotReleaseThenExecDeterministic(t *testing.T) {
	db := cacheTestDB(t)
	ctx := context.Background()
	req := CONNRequest{Seg: Seg(Pt(12, 12), Pt(28, 12))}

	for round := 0; round < 200; round++ {
		snap := db.Snapshot()
		released := make(chan struct{})
		done := make(chan error, 2)
		for g := 0; g < 2; g++ {
			go func() {
				<-released // strict happens-after Release's return
				_, err := db.Exec(ctx, req, AtSnapshot(snap))
				done <- err
			}()
		}
		snap.Release()
		close(released)
		for g := 0; g < 2; g++ {
			if err := <-done; !errors.Is(err, ErrSnapshotReleased) {
				t.Fatalf("round %d: Exec after Release returned %v, want ErrSnapshotReleased", round, err)
			}
		}
	}
}

// TestSnapshotReleaseDuringExec races Release against in-flight Execs: each
// call must either complete against the pinned epoch (it resolved the
// version before the release) or fail with ErrSnapshotReleased — never
// anything else, and never an answer from a different version. Runs with
// the cache both hot and bypassed so a hit cannot serve a released pin.
func TestSnapshotReleaseDuringExec(t *testing.T) {
	db := cacheTestDB(t)
	ctx := context.Background()
	req := COkNNRequest{Seg: Seg(Pt(12, 12), Pt(28, 12)), K: 2}
	if _, err := db.Exec(ctx, req); err != nil { // warm the cache
		t.Fatal(err)
	}

	for round := 0; round < 100; round++ {
		snap := db.Snapshot()
		epoch := snap.Epoch()
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				opts := []QueryOption{AtSnapshot(snap)}
				if g%2 == 1 {
					opts = append(opts, WithNoCache())
				}
				ans, err := db.Exec(ctx, req, opts...)
				switch {
				case err == nil:
					if ans.Epoch() != epoch {
						t.Errorf("answer at epoch %d, pinned %d", ans.Epoch(), epoch)
					}
				case errors.Is(err, ErrSnapshotReleased):
					// The only acceptable failure.
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			snap.Release()
		}()
		close(start)
		wg.Wait()

		// Determinism after the dust settles: the release has returned, so a
		// fresh Exec must fail — cached entry or not.
		if _, err := db.Exec(ctx, req, AtSnapshot(snap)); !errors.Is(err, ErrSnapshotReleased) {
			t.Fatalf("round %d: post-release Exec returned %v", round, err)
		}
	}
}

// TestVersionUnpinnedAfterRelease covers the AtVersion flavor: once the
// last Snapshot of an old epoch is released, AtVersion for it must fail
// with ErrVersionNotPinned even when a cached answer for that epoch is
// still resident.
func TestVersionUnpinnedAfterRelease(t *testing.T) {
	db := cacheTestDB(t)
	ctx := context.Background()
	req := CONNRequest{Seg: Seg(Pt(12, 12), Pt(28, 12))}

	snap := db.Snapshot()
	old := snap.Epoch()
	if _, err := db.Exec(ctx, req, AtSnapshot(snap)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertPoint(Pt(900, 900)); err != nil { // move the chain on
		t.Fatal(err)
	}
	if ans, err := db.Exec(ctx, req, AtVersion(old)); err != nil || ans.Epoch() != old {
		t.Fatalf("pinned AtVersion: %v (epoch %v)", err, ans)
	}
	snap.Release()
	if _, err := db.Exec(ctx, req, AtVersion(old)); !errors.Is(err, ErrVersionNotPinned) {
		t.Fatalf("unpinned AtVersion returned %v, want ErrVersionNotPinned", err)
	}
}
