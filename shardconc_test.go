package connquery

// Concurrency hygiene of the sharded tier, meant to run under -race:
// writers on distinct shards commit in parallel (they contend only inside
// the short commit sequencer, never on each other's shard writer lock or on
// a global writer mutex), while cross-shard readers, snapshot-pinned
// readers and a live watch race them. Asserts per-shard epochs advance
// independently by exactly each shard's own mutation count, the router
// revision totals all commits, and watch deliveries stay strictly monotone.

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestShardedConcurrentWriters(t *testing.T) {
	// Corner points pin a 2x2 grid with interior borders at x=50, y=50.
	pts := []Point{
		Pt(0, 0), Pt(100, 100), Pt(100, 0), Pt(0, 100),
		Pt(25, 25), Pt(75, 25), Pt(25, 75), Pt(75, 75),
	}
	sdb, err := OpenSharded(pts, nil, 4, WithAnswerCache(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	baseEpochs := make([]uint64, 4)
	for i, st := range sdb.ShardStats().PerShard {
		baseEpochs[i] = st.Epoch
	}

	const writerOps = 120
	// Quadrant centers, one writer per shard. Writers stay strictly inside
	// their own cell, so no two writers ever touch the same shard lock.
	centers := []Point{Pt(25, 25), Pt(75, 25), Pt(25, 75), Pt(75, 75)}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Live watch across the whole world, collecting deliveries concurrently.
	watchReq := CONNRequest{Seg: Seg(Pt(20, 20), Pt(80, 80))}
	ch, err := sdb.Watch(ctx, watchReq)
	if err != nil {
		t.Fatal(err)
	}
	watchDone := make(chan struct{})
	var deliveries int
	go func() {
		defer close(watchDone)
		var prev uint64
		for u := range ch {
			if u.Err != nil {
				t.Errorf("watch error: %v", u.Err)
				return
			}
			if u.Epoch <= prev && prev != 0 {
				t.Errorf("watch revs not monotone: %d after %d", u.Epoch, prev)
				return
			}
			prev = u.Epoch
			deliveries++
		}
	}()

	var wg sync.WaitGroup
	for wi := 0; wi < 4; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wi)))
			c := centers[wi]
			var mine []int32
			for i := 0; i < writerOps; i++ {
				if len(mine) > 0 && rng.Float64() < 0.3 {
					k := rng.Intn(len(mine))
					if !sdb.DeletePoint(mine[k]) {
						t.Errorf("writer %d: delete of own point %d failed", wi, mine[k])
						return
					}
					mine = append(mine[:k], mine[k+1:]...)
					continue
				}
				p := Pt(c.X+rng.Float64()*40-20, c.Y+rng.Float64()*40-20)
				pid, err := sdb.InsertPoint(p)
				if err != nil {
					t.Errorf("writer %d: %v", wi, err)
					return
				}
				mine = append(mine, pid)
			}
		}(wi)
	}

	const readers = 3
	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + ri)))
			for i := 0; i < 80; i++ {
				switch rng.Intn(3) {
				case 0: // cross-shard spanning read
					if _, err := sdb.Exec(ctx, CONNRequest{Seg: Seg(Pt(10, 45), Pt(90, 55))}); err != nil {
						t.Errorf("reader %d: %v", ri, err)
						return
					}
				case 1: // cell-local read
					q := Pt(rng.Float64()*100, rng.Float64()*100)
					if _, err := sdb.Exec(ctx, ONNRequest{P: q, K: 2}); err != nil {
						t.Errorf("reader %d: %v", ri, err)
						return
					}
				default: // snapshot-pinned read across a consistent cut
					sp := sdb.Snapshot()
					ans, err := sdb.Exec(ctx, ONNRequest{P: Pt(50, 50), K: 3}, sp.At())
					if err != nil {
						t.Errorf("reader %d pinned: %v", ri, err)
						sp.Release()
						return
					}
					if ans.Epoch() != sp.Epoch() {
						t.Errorf("reader %d: pinned answer at rev %d, pin holds %d", ri, ans.Epoch(), sp.Epoch())
					}
					sp.Release()
				}
			}
		}(ri)
	}
	wg.Wait()
	cancel()
	<-watchDone

	// Every writer committed all its ops; the router revision is the sum.
	if got, want := sdb.Version(), uint64(1+4*writerOps); got != want {
		t.Fatalf("router revision %d, want %d", got, want)
	}
	// Per-shard epochs advanced independently by exactly each shard's own
	// mutation count: writers are cell-local and points replicate nowhere.
	perShard := sdb.ShardStats().PerShard
	for i, st := range perShard {
		if st.Epoch != baseEpochs[i]+writerOps {
			t.Fatalf("shard %d epoch %d, want %d (+%d ops)", i, st.Epoch, baseEpochs[i]+writerOps, writerOps)
		}
	}
	t.Logf("watch deliveries under concurrent writers: %d", deliveries)

	// Quiesced, the world must again be bit-identical to a single node built
	// from the surviving objects.
	ref, err := Open(shardedAlivePoints(sdb), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ref.NumPoints() != sdb.NumPoints() {
		t.Fatalf("alive point count: single %d, sharded %d", ref.NumPoints(), sdb.NumPoints())
	}
}

// TestShardedLiveReadEpochAgreement pins the live single-shard read
// invariant: an answer stamped with router revision E reflects exactly the
// mutations committed at or before E — never a later one that a concurrent
// writer had applied to the shard DB but not yet (or only just) sequenced.
// A writer streams inserts into one cell while a reader runs cell-local
// range queries over it; every answer's visible insert set must be exactly
// the prefix its stamp promises.
func TestShardedLiveReadEpochAgreement(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(100, 100), Pt(100, 0), Pt(0, 100),
		Pt(25, 25), Pt(75, 25), Pt(25, 75), Pt(75, 75),
	}
	const nInit = 8
	sdb, err := OpenSharded(pts, nil, 4)
	if err != nil {
		t.Fatal(err)
	}

	// The writer streams inserts for the reader's whole run (capped so a
	// stalled reader cannot grow the world unboundedly), keeping commits
	// landing inside the reader's cut-capture windows throughout.
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50000; i++ {
			select {
			case <-done:
				return
			default:
			}
			// All inserts land in cell (0,0), within radius 15 of (25,25).
			a := float64(i) * 0.37
			r := 1 + 14*float64(i%17)/16
			if _, err := sdb.InsertPoint(Pt(25+r*math.Cos(a), 25+r*math.Sin(a))); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
	}()

	ctx := context.Background()
	req := RangeRequest{Center: Pt(25, 25), Radius: 20}
	for i := 0; i < 2000; i++ {
		ans, err := sdb.Exec(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		// Revision E covers exactly the first E-1 mutations, all of which are
		// the writer's inserts with consecutive global PIDs from nInit.
		want := int(ans.Epoch()) - 1
		got := 0
		for _, n := range ans.Neighbors() {
			if n.PID < nInit {
				continue
			}
			got++
			if n.PID >= int32(nInit+want) {
				t.Fatalf("answer stamped rev %d contains PID %d, committed only at rev %d",
					ans.Epoch(), n.PID, n.PID-nInit+2)
			}
		}
		if got != want {
			t.Fatalf("answer stamped rev %d holds %d inserted points, want %d", ans.Epoch(), got, want)
		}
	}
	close(done)
	wg.Wait()
}

// TestShardedLiveCutOvertakenByCommit pins the same invariant
// deterministically, white-box: a live cut is captured, a commit overtakes
// it, and the routed execution — which can only read the shard's new head —
// must slide its stamp to the revision the data actually reflects instead
// of stamping newer data with the stale cut.
func TestShardedLiveCutOvertakenByCommit(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(100, 100), Pt(100, 0), Pt(0, 100),
		Pt(25, 25), Pt(75, 25), Pt(25, 75), Pt(75, 75),
	}
	sdb, err := OpenSharded(pts, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	cut := sdb.liveCut()
	pid, err := sdb.InsertPoint(Pt(26, 25))
	if err != nil {
		t.Fatal(err)
	}
	var xo execOptions
	ans, _, err := sdb.execRouted(context.Background(), RangeRequest{Center: Pt(25, 25), Radius: 20}, &xo, cut)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range ans.Neighbors() {
		if n.PID == pid {
			found = true
		}
	}
	if !found {
		t.Fatalf("live read missed the committed point %d entirely: %+v", pid, ans.Neighbors())
	}
	if ans.Epoch() != sdb.Version() {
		t.Fatalf("answer contains the rev-%d insert but is stamped rev %d", sdb.Version(), ans.Epoch())
	}
}

// TestShardedWatchRegionShiftLiveness drives the missed-wake race: each
// round deletes the watched query's nearest neighbor (shrinking answer →
// growing wake region) and immediately inserts a replacement that the *new*
// region covers but the old one may not — the exact commit-during-
// re-execution interleaving that must not strand the watcher on a stale
// answer. The watch has to converge to the live answer every round.
func TestShardedWatchRegionShiftLiveness(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(100, 100), Pt(100, 0), Pt(0, 100),
		Pt(25, 25), Pt(75, 25), Pt(25, 75), Pt(75, 75),
	}
	sdb, err := OpenSharded(pts, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := sdb.Watch(ctx, ONNRequest{P: Pt(20, 20), K: 1})
	if err != nil {
		t.Fatal(err)
	}

	// converge drains updates until the payload matches want; a missed wake
	// leaves the watcher asleep forever and trips the deadline instead.
	converge := func(round int, want *Answer) {
		t.Helper()
		deadline := time.After(10 * time.Second)
		for {
			select {
			case u, ok := <-ch:
				if !ok || u.Err != nil {
					t.Fatalf("round %d: watch died: %+v", round, u.Err)
				}
				if u.Epoch != u.Answer.Epoch() {
					t.Fatalf("round %d: update stamped %d, answer stamped %d", round, u.Epoch, u.Answer.Epoch())
				}
				if answersEqual(u.Answer.Value(), want.Value()) {
					return
				}
			case <-deadline:
				t.Fatalf("round %d: watch never converged to the live answer (missed wake?)", round)
			}
		}
	}

	for round := 0; round < 20; round++ {
		// A point almost on the query: the answer's wake region collapses
		// around it. Converge so the collapsed region is installed.
		near, err := sdb.InsertPoint(Pt(20.5, 20))
		if err != nil {
			t.Fatal(err)
		}
		wantNear, err := sdb.Exec(ctx, ONNRequest{P: Pt(20, 20), K: 1})
		if err != nil {
			t.Fatal(err)
		}
		converge(round, wantNear)

		// Delete it: the wake fires, the watcher re-executes the baseline
		// answer (whose region reaches back out to the 7.07-away owner) and
		// then blocks delivering it to us — with the collapsed region still
		// installed, because the new one is only set after delivery. The
		// sleep parks it there; the insert at distance ~2.8 then commits
		// outside the installed region, so it queues no wake of its own and
		// only the post-delivery revision re-check can pick it up.
		sdb.DeletePoint(near)
		time.Sleep(5 * time.Millisecond)
		mid, err := sdb.InsertPoint(Pt(22, 22))
		if err != nil {
			t.Fatal(err)
		}
		want, err := sdb.Exec(ctx, ONNRequest{P: Pt(20, 20), K: 1})
		if err != nil {
			t.Fatal(err)
		}
		converge(round, want)
		sdb.DeletePoint(mid)
	}
}

// shardedAlivePoints reads the router's live point set in global-ID order.
func shardedAlivePoints(s *ShardedDB) []Point {
	s.seqMu.RLock()
	defer s.seqMu.RUnlock()
	var out []Point
	for gid := range s.p2s {
		loc := s.p2s[gid]
		sh := s.shards[loc.shard]
		v := sh.db.current()
		if !v.deletedPts[loc.lid] {
			out = append(out, loc.p)
		}
	}
	return out
}
