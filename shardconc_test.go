package connquery

// Concurrency hygiene of the sharded tier, meant to run under -race:
// writers on distinct shards commit in parallel (they contend only inside
// the short commit sequencer, never on each other's shard writer lock or on
// a global writer mutex), while cross-shard readers, snapshot-pinned
// readers and a live watch race them. Asserts per-shard epochs advance
// independently by exactly each shard's own mutation count, the router
// revision totals all commits, and watch deliveries stay strictly monotone.

import (
	"context"
	"math/rand"
	"sync"
	"testing"
)

func TestShardedConcurrentWriters(t *testing.T) {
	// Corner points pin a 2x2 grid with interior borders at x=50, y=50.
	pts := []Point{
		Pt(0, 0), Pt(100, 100), Pt(100, 0), Pt(0, 100),
		Pt(25, 25), Pt(75, 25), Pt(25, 75), Pt(75, 75),
	}
	sdb, err := OpenSharded(pts, nil, 4, WithAnswerCache(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	baseEpochs := make([]uint64, 4)
	for i, st := range sdb.ShardStats().PerShard {
		baseEpochs[i] = st.Epoch
	}

	const writerOps = 120
	// Quadrant centers, one writer per shard. Writers stay strictly inside
	// their own cell, so no two writers ever touch the same shard lock.
	centers := []Point{Pt(25, 25), Pt(75, 25), Pt(25, 75), Pt(75, 75)}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Live watch across the whole world, collecting deliveries concurrently.
	watchReq := CONNRequest{Seg: Seg(Pt(20, 20), Pt(80, 80))}
	ch, err := sdb.Watch(ctx, watchReq)
	if err != nil {
		t.Fatal(err)
	}
	watchDone := make(chan struct{})
	var deliveries int
	go func() {
		defer close(watchDone)
		var prev uint64
		for u := range ch {
			if u.Err != nil {
				t.Errorf("watch error: %v", u.Err)
				return
			}
			if u.Epoch <= prev && prev != 0 {
				t.Errorf("watch revs not monotone: %d after %d", u.Epoch, prev)
				return
			}
			prev = u.Epoch
			deliveries++
		}
	}()

	var wg sync.WaitGroup
	for wi := 0; wi < 4; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wi)))
			c := centers[wi]
			var mine []int32
			for i := 0; i < writerOps; i++ {
				if len(mine) > 0 && rng.Float64() < 0.3 {
					k := rng.Intn(len(mine))
					if !sdb.DeletePoint(mine[k]) {
						t.Errorf("writer %d: delete of own point %d failed", wi, mine[k])
						return
					}
					mine = append(mine[:k], mine[k+1:]...)
					continue
				}
				p := Pt(c.X+rng.Float64()*40-20, c.Y+rng.Float64()*40-20)
				pid, err := sdb.InsertPoint(p)
				if err != nil {
					t.Errorf("writer %d: %v", wi, err)
					return
				}
				mine = append(mine, pid)
			}
		}(wi)
	}

	const readers = 3
	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + ri)))
			for i := 0; i < 80; i++ {
				switch rng.Intn(3) {
				case 0: // cross-shard spanning read
					if _, err := sdb.Exec(ctx, CONNRequest{Seg: Seg(Pt(10, 45), Pt(90, 55))}); err != nil {
						t.Errorf("reader %d: %v", ri, err)
						return
					}
				case 1: // cell-local read
					q := Pt(rng.Float64()*100, rng.Float64()*100)
					if _, err := sdb.Exec(ctx, ONNRequest{P: q, K: 2}); err != nil {
						t.Errorf("reader %d: %v", ri, err)
						return
					}
				default: // snapshot-pinned read across a consistent cut
					sp := sdb.Snapshot()
					ans, err := sdb.Exec(ctx, ONNRequest{P: Pt(50, 50), K: 3}, sp.At())
					if err != nil {
						t.Errorf("reader %d pinned: %v", ri, err)
						sp.Release()
						return
					}
					if ans.Epoch() != sp.Epoch() {
						t.Errorf("reader %d: pinned answer at rev %d, pin holds %d", ri, ans.Epoch(), sp.Epoch())
					}
					sp.Release()
				}
			}
		}(ri)
	}
	wg.Wait()
	cancel()
	<-watchDone

	// Every writer committed all its ops; the router revision is the sum.
	if got, want := sdb.Version(), uint64(1+4*writerOps); got != want {
		t.Fatalf("router revision %d, want %d", got, want)
	}
	// Per-shard epochs advanced independently by exactly each shard's own
	// mutation count: writers are cell-local and points replicate nowhere.
	perShard := sdb.ShardStats().PerShard
	for i, st := range perShard {
		if st.Epoch != baseEpochs[i]+writerOps {
			t.Fatalf("shard %d epoch %d, want %d (+%d ops)", i, st.Epoch, baseEpochs[i]+writerOps, writerOps)
		}
	}
	t.Logf("watch deliveries under concurrent writers: %d", deliveries)

	// Quiesced, the world must again be bit-identical to a single node built
	// from the surviving objects.
	ref, err := Open(shardedAlivePoints(sdb), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ref.NumPoints() != sdb.NumPoints() {
		t.Fatalf("alive point count: single %d, sharded %d", ref.NumPoints(), sdb.NumPoints())
	}
}

// shardedAlivePoints reads the router's live point set in global-ID order.
func shardedAlivePoints(s *ShardedDB) []Point {
	s.seqMu.RLock()
	defer s.seqMu.RUnlock()
	var out []Point
	for gid := range s.p2s {
		loc := s.p2s[gid]
		sh := s.shards[loc.shard]
		v := sh.db.current()
		if !v.deletedPts[loc.lid] {
			out = append(out, loc.p)
		}
	}
	return out
}
