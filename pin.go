package connquery

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Snapshot is an explicit pin on one immutable MVCC version. While at least
// one unreleased Snapshot holds an epoch, AtVersion(epoch) can resolve it
// and AtSnapshot can query it directly, no matter how far the live version
// chain has advanced. Release drops the pin; once every Snapshot of an
// epoch is released (and the live version has moved on), the version
// becomes collectible and AtVersion for it fails with ErrVersionNotPinned.
//
// A Snapshot is cheap — it copies nothing — and is safe for concurrent use;
// Release is idempotent.
type Snapshot struct {
	db       *DB
	v        *version
	released atomic.Bool
}

// pinSet tracks the versions kept alive by unreleased Snapshots of one DB
// handle, refcounted per epoch.
type pinSet struct {
	mu   sync.Mutex
	byEp map[uint64]*pinEntry
}

type pinEntry struct {
	v    *version
	refs int
}

// Snapshot pins the version that is current at call time and returns its
// handle. The caller owns the pin and should Release it when done; a
// forgotten pin costs only the retained memory of that version's
// copy-on-write deltas.
func (db *DB) Snapshot() *Snapshot {
	v := db.current()
	db.pins.mu.Lock()
	defer db.pins.mu.Unlock()
	if db.pins.byEp == nil {
		db.pins.byEp = make(map[uint64]*pinEntry)
	}
	if e, ok := db.pins.byEp[v.epoch]; ok {
		e.refs++
	} else {
		db.pins.byEp[v.epoch] = &pinEntry{v: v, refs: 1}
	}
	return &Snapshot{db: db, v: v}
}

// Epoch returns the pinned version's epoch.
func (s *Snapshot) Epoch() uint64 { return s.v.epoch }

// Released reports whether Release has run.
func (s *Snapshot) Released() bool { return s.released.Load() }

// Release drops the pin. Idempotent; concurrent calls release exactly once.
// Queries already running against the snapshot are unaffected (they hold
// the version directly); new AtSnapshot/AtVersion calls for it fail once
// the last pin on the epoch is gone.
func (s *Snapshot) Release() {
	if s.released.Swap(true) {
		return
	}
	ps := &s.db.pins
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if e, ok := ps.byEp[s.v.epoch]; ok {
		if e.refs--; e.refs <= 0 {
			delete(ps.byEp, s.v.epoch)
		}
	}
}

// pinned resolves the snapshot for a query on db, rejecting released and
// foreign handles.
func (s *Snapshot) pinned(db *DB) (*version, error) {
	if s == nil {
		return nil, errors.New("connquery: AtSnapshot(nil)")
	}
	if s.db != db {
		return nil, ErrForeignSnapshot
	}
	if s.released.Load() {
		return nil, ErrSnapshotReleased
	}
	return s.v, nil
}

// versionAt resolves an epoch to a pinned-alive version: the current
// version always qualifies, and any epoch held by an unreleased Snapshot of
// this handle does too.
func (db *DB) versionAt(epoch uint64) (*version, error) {
	cur := db.current()
	if epoch == cur.epoch {
		return cur, nil
	}
	db.pins.mu.Lock()
	defer db.pins.mu.Unlock()
	if e, ok := db.pins.byEp[epoch]; ok {
		return e.v, nil
	}
	return nil, fmt.Errorf("%w: epoch %d (current %d; pin versions with DB.Snapshot)", ErrVersionNotPinned, epoch, cur.epoch)
}
