//go:build race

package connquery

// raceEnabled reports whether this test binary was built with the race
// detector (see race_off_test.go for the other half). Storm-style tests use
// it to shrink their op volume: the race detector multiplies every exec's
// cost roughly tenfold, and the properties the storms prove (per-answer
// bit-identity, monotone epochs) are per-op invariants that sheer volume
// does not strengthen.
const raceEnabled = true
