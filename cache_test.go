package connquery

import (
	"context"
	"math"
	"testing"
)

// cacheTestDB builds a small database with the answer cache enabled: a
// cluster of points around (10..30, 10) with one obstacle between them and
// everything else, far from the "remote" corner used for unrelated
// mutations.
func cacheTestDB(t *testing.T) *DB {
	t.Helper()
	points := []Point{Pt(10, 10), Pt(20, 10), Pt(30, 10), Pt(18, 30)}
	obstacles := []Rect{R(14, 14, 16, 18)}
	db, err := Open(points, obstacles)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestExecCacheHit(t *testing.T) {
	db := cacheTestDB(t)
	ctx := context.Background()
	req := CONNRequest{Seg: Seg(Pt(12, 12), Pt(28, 12))}

	first, err := db.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached() {
		t.Fatal("first execution must miss")
	}
	second, err := db.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached() {
		t.Fatal("repeat execution must hit the cache")
	}
	if second.Value() != first.Value() {
		t.Fatal("hit must return the stored payload")
	}
	if second.Epoch() != first.Epoch() {
		t.Fatalf("hit epoch %d != %d", second.Epoch(), first.Epoch())
	}
	if second.Metrics() != first.Metrics() {
		t.Fatal("hit must replay the original metrics")
	}
	st := db.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWithNoCacheBypasses(t *testing.T) {
	db := cacheTestDB(t)
	ctx := context.Background()
	req := CONNRequest{Seg: Seg(Pt(12, 12), Pt(28, 12))}
	for i := 0; i < 2; i++ {
		ans, err := db.Exec(ctx, req, WithNoCache())
		if err != nil {
			t.Fatal(err)
		}
		if ans.Cached() {
			t.Fatal("WithNoCache must never hit")
		}
	}
	if st := db.CacheStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("WithNoCache must not touch the cache: %+v", st)
	}
}

func TestCacheDisabledByOption(t *testing.T) {
	db, err := Open([]Point{Pt(1, 1), Pt(2, 2)}, nil, WithAnswerCache(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := ONNRequest{P: Pt(0, 0), K: 1}
	for i := 0; i < 2; i++ {
		ans, err := db.Exec(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Cached() {
			t.Fatal("disabled cache must never hit")
		}
	}
	if st := db.CacheStats(); st != (CacheStats{}) {
		t.Fatalf("disabled cache stats = %+v", st)
	}
}

func TestMutationPromotesUnaffectedEntries(t *testing.T) {
	db := cacheTestDB(t)
	ctx := context.Background()
	req := CONNRequest{Seg: Seg(Pt(12, 12), Pt(28, 12))}
	first, err := db.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	// A far-away insertion cannot affect the answer: the entry is promoted.
	if _, err := db.InsertPoint(Pt(900, 900)); err != nil {
		t.Fatal(err)
	}
	promoted, err := db.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !promoted.Cached() {
		t.Fatal("entry must survive an unrelated mutation")
	}
	if promoted.Epoch() != first.Epoch()+1 {
		t.Fatalf("promoted answer must carry the new epoch: %d vs %d", promoted.Epoch(), first.Epoch())
	}
	if promoted.Value() != first.Value() {
		t.Fatal("promoted answer must be the stored payload")
	}
	st := db.CacheStats()
	if st.Promotions == 0 || st.PromotedHits == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The promoted entry also still serves a pin of the original epoch.
	pinned, err := db.Exec(ctx, req, AtVersion(first.Epoch()))
	if err == nil { // the old epoch must be pinned to be queryable
		t.Fatalf("AtVersion on an unpinned old epoch must fail, got %v", pinned)
	}
}

func TestMutationInvalidatesAffectedEntries(t *testing.T) {
	db := cacheTestDB(t)
	ctx := context.Background()
	req := CONNRequest{Seg: Seg(Pt(12, 12), Pt(28, 12))}
	if _, err := db.Exec(ctx, req); err != nil {
		t.Fatal(err)
	}
	// A point dropped right on the segment takes over part of the answer.
	if _, err := db.InsertPoint(Pt(22, 12.5)); err != nil {
		t.Fatal(err)
	}
	fresh, err := db.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Cached() {
		t.Fatal("an intersecting mutation must invalidate the entry")
	}
	want, err := db.Exec(ctx, req, WithNoCache())
	if err != nil {
		t.Fatal(err)
	}
	if !answersEqual(fresh.Value(), want.Value()) {
		t.Fatal("post-invalidation answer differs from uncached execution")
	}
	if st := db.CacheStats(); st.Invalidations == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPromotedEntryServesPinnedSnapshot(t *testing.T) {
	db := cacheTestDB(t)
	ctx := context.Background()
	req := COkNNRequest{Seg: Seg(Pt(12, 12), Pt(28, 12)), K: 2}
	snap := db.Snapshot()
	defer snap.Release()
	first, err := db.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertPoint(Pt(900, 900)); err != nil {
		t.Fatal(err)
	}
	// The promoted entry's validity range covers both the pinned old epoch
	// and the current one.
	old, err := db.Exec(ctx, req, AtSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	if !old.Cached() || old.Epoch() != first.Epoch() {
		t.Fatalf("pinned query: cached=%v epoch=%d", old.Cached(), old.Epoch())
	}
	cur, err := db.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Cached() || cur.Epoch() != first.Epoch()+1 {
		t.Fatalf("live query: cached=%v epoch=%d", cur.Cached(), cur.Epoch())
	}
}

func TestCNNEntrySurvivesObstacleMutations(t *testing.T) {
	db := cacheTestDB(t)
	ctx := context.Background()
	req := CNNRequest{Seg: Seg(Pt(12, 12), Pt(28, 12))}
	if _, err := db.Exec(ctx, req); err != nil {
		t.Fatal(err)
	}
	// CNN ignores obstacles entirely: even an obstacle dropped right on the
	// query segment leaves the entry valid.
	if _, err := db.InsertObstacle(R(18, 11, 19, 13)); err != nil {
		t.Fatal(err)
	}
	ans, err := db.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Cached() {
		t.Fatal("CNN entry must survive obstacle mutations")
	}
	// A point mutation inside the region does invalidate it.
	if _, err := db.InsertPoint(Pt(20, 12)); err != nil {
		t.Fatal(err)
	}
	if ans, err = db.Exec(ctx, req); err != nil || ans.Cached() {
		t.Fatalf("CNN entry must be invalidated by a nearby point: cached=%v err=%v", ans.Cached(), err)
	}
}

func TestDistanceEntrySurvivesPointMutations(t *testing.T) {
	db := cacheTestDB(t)
	ctx := context.Background()
	req := DistanceRequest{A: Pt(10, 12), B: Pt(20, 12)}
	first, err := db.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	// Data points never enter an obstructed-distance computation.
	if _, err := db.InsertPoint(Pt(12, 12)); err != nil {
		t.Fatal(err)
	}
	ans, err := db.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Cached() {
		t.Fatal("distance entry must survive point mutations")
	}
	// The symmetric request shares the canonical fingerprint.
	sym, err := db.Exec(ctx, DistanceRequest{A: Pt(20, 12), B: Pt(10, 12)})
	if err != nil {
		t.Fatal(err)
	}
	if !sym.Cached() || sym.Distance() != first.Distance() {
		t.Fatalf("swapped endpoints must hit the same entry: cached=%v", sym.Cached())
	}
	// An obstacle across the straight line invalidates.
	if _, err := db.InsertObstacle(R(14, 11.5, 16, 12.5)); err != nil {
		t.Fatal(err)
	}
	ans, err = db.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Cached() {
		t.Fatal("distance entry must be invalidated by a blocking obstacle")
	}
	if ans.Distance() <= first.Distance() {
		t.Fatalf("detour must be longer: %v vs %v", ans.Distance(), first.Distance())
	}
}

func TestTuningAndWorkersKeepSeparateEntries(t *testing.T) {
	db := cacheTestDB(t)
	ctx := context.Background()
	seg := Seg(Pt(12, 12), Pt(28, 12))

	if _, err := db.Exec(ctx, CONNRequest{Seg: seg}); err != nil {
		t.Fatal(err)
	}
	tuned, err := db.Exec(ctx, CONNRequest{Seg: seg}, WithQueryTuning(Tuning{DisableLemma7: true}))
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Cached() {
		t.Fatal("a tuned call must not hit the untuned entry")
	}

	batch := CONNBatchRequest{Segs: []Segment{seg}}
	if _, err := db.Exec(ctx, batch); err != nil {
		t.Fatal(err)
	}
	pooled, err := db.Exec(ctx, batch, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if pooled.Cached() {
		t.Fatal("a pooled call must not hit the unpooled entry")
	}
	again, err := db.Exec(ctx, batch, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached() || len(again.ItemMetrics()) != 1 {
		t.Fatalf("pooled repeat: cached=%v items=%d", again.Cached(), len(again.ItemMetrics()))
	}
}

func TestCloneStartsWithEmptyCache(t *testing.T) {
	db := cacheTestDB(t)
	ctx := context.Background()
	req := CONNRequest{Seg: Seg(Pt(12, 12), Pt(28, 12))}
	if _, err := db.Exec(ctx, req); err != nil {
		t.Fatal(err)
	}
	clone := db.Clone()
	ans, err := clone.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Cached() {
		t.Fatal("a clone must not inherit the parent's entries")
	}
	if st := clone.CacheStats(); st.Entries != 1 {
		t.Fatalf("the clone caches independently: %+v", st)
	}
}

func TestUnreachableAnswerUsesBlanketRegion(t *testing.T) {
	// One point sealed inside a box of obstacles: the ONN answer at k=1 from
	// outside is empty, so the impact region must be unbounded — any far
	// mutation invalidates instead of promoting a possibly-stale answer.
	// The bars overlap at the corners: a path cannot slide through a seam
	// between merely touching rectangles.
	points := []Point{Pt(50, 50)}
	obstacles := []Rect{
		R(38, 38, 62, 45), R(38, 55, 62, 62), // bottom and top bars
		R(38, 38, 45, 62), R(55, 38, 62, 62), // left and right bars
	}
	db, err := Open(points, obstacles)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := ONNRequest{P: Pt(5, 5), K: 1}
	ans, err := db.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Neighbors()) != 0 {
		t.Skip("point unexpectedly reachable; dataset assumption broken")
	}
	if _, err := db.InsertPoint(Pt(900, 900)); err != nil {
		t.Fatal(err)
	}
	fresh, err := db.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Cached() {
		t.Fatal("an empty k-NN answer must not be promoted across any mutation")
	}
	if len(fresh.Neighbors()) != 1 || math.IsInf(fresh.Neighbors()[0].Dist, 1) {
		t.Fatalf("fresh answer must see the new point: %+v", fresh.Neighbors())
	}
}
