package connquery

import (
	"math/rand"
	"sync"
	"testing"
)

// batchFixture builds a mid-size database plus a set of valid query
// segments for the batch tests.
func batchFixture(t *testing.T, nQueries int) (*DB, []Segment) {
	t.Helper()
	r := rand.New(rand.NewSource(701))
	points := make([]Point, 600)
	for i := range points {
		points[i] = Pt(r.Float64()*5000, r.Float64()*5000)
	}
	obstacles := make([]Rect, 100)
	for i := range obstacles {
		lo := Pt(r.Float64()*5000, r.Float64()*5000)
		obstacles[i] = R(lo.X, lo.Y, lo.X+40, lo.Y+30)
	}
	pts := points[:0]
	for _, p := range points {
		free := true
		for _, o := range obstacles {
			if o.ContainsOpen(p) {
				free = false
			}
		}
		if free {
			pts = append(pts, p)
		}
	}
	db, err := Open(pts, obstacles, WithBufferPages(16))
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]Segment, nQueries)
	for i := range queries {
		a := Pt(r.Float64()*5000, r.Float64()*5000)
		queries[i] = Seg(a, Pt(a.X+150+r.Float64()*100, a.Y+100))
	}
	return db, queries
}

// TestCONNBatchMatchesSequential races a CONNBatch worker pool (under the
// race detector in CI) and requires exact agreement with the sequential
// answers at every worker count.
func TestCONNBatchMatchesSequential(t *testing.T) {
	db, queries := batchFixture(t, 12)
	want := make([]*Result, len(queries))
	wantM := make([]Metrics, len(queries))
	for i, q := range queries {
		res, m, err := db.CONN(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i], wantM[i] = res, m
	}
	for _, workers := range []int{0, 1, 2, 4, 16} {
		got, ms, err := db.CONNBatch(queries, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(queries) || len(ms) != len(queries) {
			t.Fatalf("workers=%d: %d results, %d metrics, want %d", workers, len(got), len(ms), len(queries))
		}
		for i := range queries {
			if len(got[i].Tuples) != len(want[i].Tuples) {
				t.Fatalf("workers=%d query %d: %d tuples, want %d", workers, i, len(got[i].Tuples), len(want[i].Tuples))
			}
			for j, tu := range got[i].Tuples {
				w := want[i].Tuples[j]
				if tu.PID != w.PID || tu.Span != w.Span {
					t.Fatalf("workers=%d query %d tuple %d: got {%d %v}, want {%d %v}",
						workers, i, j, tu.PID, tu.Span, w.PID, w.Span)
				}
			}
			// The algorithmic metrics are deterministic per query, so batch
			// workers must report exactly the sequential values (page faults
			// depend on per-worker buffer state and are not compared).
			if ms[i].NPE != wantM[i].NPE || ms[i].NOE != wantM[i].NOE || ms[i].SVG != wantM[i].SVG {
				t.Fatalf("workers=%d query %d: metrics NPE/NOE/SVG = %d/%d/%d, want %d/%d/%d",
					workers, i, ms[i].NPE, ms[i].NOE, ms[i].SVG, wantM[i].NPE, wantM[i].NOE, wantM[i].SVG)
			}
		}
	}
}

// TestCONNBatchEdgeCases covers the empty batch and validation failures.
func TestCONNBatchEdgeCases(t *testing.T) {
	db, queries := batchFixture(t, 2)
	res, ms, err := db.CONNBatch(nil, 4)
	if err != nil || len(res) != 0 || len(ms) != 0 {
		t.Fatalf("empty batch: res=%v ms=%v err=%v", res, ms, err)
	}
	bad := append([]Segment{}, queries...)
	bad = append(bad, Seg(Pt(1, 1), Pt(1, 1))) // degenerate
	if _, _, err := db.CONNBatch(bad, 4); err == nil {
		t.Fatal("degenerate query in batch must fail validation")
	}
}

func TestCloneProducesSameAnswers(t *testing.T) {
	db := smallDB(t)
	clone := db.Clone()
	q := Seg(Pt(0, 0), Pt(100, 0))
	a, _, err := db.CONN(q)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := clone.CONN(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tuples) != len(b.Tuples) {
		t.Fatalf("clone tuples %d vs %d", len(b.Tuples), len(a.Tuples))
	}
	for i := range a.Tuples {
		if a.Tuples[i].PID != b.Tuples[i].PID {
			t.Fatalf("tuple %d: %d vs %d", i, a.Tuples[i].PID, b.Tuples[i].PID)
		}
	}
}

func TestConcurrentClones(t *testing.T) {
	r := rand.New(rand.NewSource(901))
	points := make([]Point, 800)
	for i := range points {
		points[i] = Pt(r.Float64()*5000, r.Float64()*5000)
	}
	obstacles := make([]Rect, 120)
	for i := range obstacles {
		lo := Pt(r.Float64()*5000, r.Float64()*5000)
		obstacles[i] = R(lo.X, lo.Y, lo.X+40, lo.Y+30)
	}
	pts := points[:0]
	for _, p := range points {
		free := true
		for _, o := range obstacles {
			if o.ContainsOpen(p) {
				free = false
			}
		}
		if free {
			pts = append(pts, p)
		}
	}
	db, err := Open(pts, obstacles, WithBufferPages(32))
	if err != nil {
		t.Fatal(err)
	}

	// A reference answer per query, computed serially.
	queries := make([]Segment, 8)
	rq := rand.New(rand.NewSource(902))
	for i := range queries {
		for {
			a := Pt(rq.Float64()*5000, rq.Float64()*5000)
			b := Pt(a.X+200, a.Y+130)
			q := Seg(a, b)
			blocked := false
			for _, o := range obstacles {
				if o.BlocksSegment(q) {
					blocked = true
					break
				}
			}
			if !blocked {
				queries[i] = q
				break
			}
		}
	}
	want := make([][]int32, len(queries))
	for i, q := range queries {
		res, _, err := db.CONN(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, tu := range res.Tuples {
			want[i] = append(want[i], tu.PID)
		}
	}

	// 8 goroutines, each with its own clone, race over all queries.
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			clone := db.Clone()
			for i, q := range queries {
				res, _, err := clone.CONN(q)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Tuples) != len(want[i]) {
					t.Errorf("query %d: %d tuples, want %d", i, len(res.Tuples), len(want[i]))
					return
				}
				for j, tu := range res.Tuples {
					if tu.PID != want[i][j] {
						t.Errorf("query %d tuple %d: %d vs %d", i, j, tu.PID, want[i][j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
