package connquery

import (
	"math/rand"
	"sync"
	"testing"
)

func TestCloneProducesSameAnswers(t *testing.T) {
	db := smallDB(t)
	clone := db.Clone()
	q := Seg(Pt(0, 0), Pt(100, 0))
	a, _, err := db.CONN(q)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := clone.CONN(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tuples) != len(b.Tuples) {
		t.Fatalf("clone tuples %d vs %d", len(b.Tuples), len(a.Tuples))
	}
	for i := range a.Tuples {
		if a.Tuples[i].PID != b.Tuples[i].PID {
			t.Fatalf("tuple %d: %d vs %d", i, a.Tuples[i].PID, b.Tuples[i].PID)
		}
	}
}

func TestConcurrentClones(t *testing.T) {
	r := rand.New(rand.NewSource(901))
	points := make([]Point, 800)
	for i := range points {
		points[i] = Pt(r.Float64()*5000, r.Float64()*5000)
	}
	obstacles := make([]Rect, 120)
	for i := range obstacles {
		lo := Pt(r.Float64()*5000, r.Float64()*5000)
		obstacles[i] = R(lo.X, lo.Y, lo.X+40, lo.Y+30)
	}
	pts := points[:0]
	for _, p := range points {
		free := true
		for _, o := range obstacles {
			if o.ContainsOpen(p) {
				free = false
			}
		}
		if free {
			pts = append(pts, p)
		}
	}
	db, err := Open(pts, obstacles, WithBufferPages(32))
	if err != nil {
		t.Fatal(err)
	}

	// A reference answer per query, computed serially.
	queries := make([]Segment, 8)
	rq := rand.New(rand.NewSource(902))
	for i := range queries {
		for {
			a := Pt(rq.Float64()*5000, rq.Float64()*5000)
			b := Pt(a.X+200, a.Y+130)
			q := Seg(a, b)
			blocked := false
			for _, o := range obstacles {
				if o.BlocksSegment(q) {
					blocked = true
					break
				}
			}
			if !blocked {
				queries[i] = q
				break
			}
		}
	}
	want := make([][]int32, len(queries))
	for i, q := range queries {
		res, _, err := db.CONN(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, tu := range res.Tuples {
			want[i] = append(want[i], tu.PID)
		}
	}

	// 8 goroutines, each with its own clone, race over all queries.
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			clone := db.Clone()
			for i, q := range queries {
				res, _, err := clone.CONN(q)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Tuples) != len(want[i]) {
					t.Errorf("query %d: %d tuples, want %d", i, len(res.Tuples), len(want[i]))
					return
				}
				for j, tu := range res.Tuples {
					if tu.PID != want[i][j] {
						t.Errorf("query %d tuple %d: %d vs %d", i, j, tu.PID, want[i][j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
