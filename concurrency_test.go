package connquery

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// batchFixture builds a mid-size database plus a set of valid query
// segments for the batch tests.
func batchFixture(t *testing.T, nQueries int) (*DB, []Segment) {
	t.Helper()
	r := rand.New(rand.NewSource(701))
	points := make([]Point, 600)
	for i := range points {
		points[i] = Pt(r.Float64()*5000, r.Float64()*5000)
	}
	obstacles := make([]Rect, 100)
	for i := range obstacles {
		lo := Pt(r.Float64()*5000, r.Float64()*5000)
		obstacles[i] = R(lo.X, lo.Y, lo.X+40, lo.Y+30)
	}
	pts := points[:0]
	for _, p := range points {
		free := true
		for _, o := range obstacles {
			if o.ContainsOpen(p) {
				free = false
			}
		}
		if free {
			pts = append(pts, p)
		}
	}
	db, err := Open(pts, obstacles, WithBufferPages(16))
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]Segment, nQueries)
	for i := range queries {
		a := Pt(r.Float64()*5000, r.Float64()*5000)
		queries[i] = Seg(a, Pt(a.X+150+r.Float64()*100, a.Y+100))
	}
	return db, queries
}

// TestCONNBatchMatchesSequential races a CONNBatch worker pool (under the
// race detector in CI) and requires exact agreement with the sequential
// answers at every worker count.
func TestCONNBatchMatchesSequential(t *testing.T) {
	db, queries := batchFixture(t, 12)
	want := make([]*Result, len(queries))
	wantM := make([]Metrics, len(queries))
	for i, q := range queries {
		res, m, err := Run(context.Background(), db, CONNRequest{Seg: q})
		if err != nil {
			t.Fatal(err)
		}
		want[i], wantM[i] = res, m
	}
	for _, workers := range []int{0, 1, 2, 4, 16} {
		ans, err := db.Exec(context.Background(), CONNBatchRequest{Segs: queries}, WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, ms := ans.Results(), ans.ItemMetrics()
		if len(got) != len(queries) || len(ms) != len(queries) {
			t.Fatalf("workers=%d: %d results, %d metrics, want %d", workers, len(got), len(ms), len(queries))
		}
		for i := range queries {
			if len(got[i].Tuples) != len(want[i].Tuples) {
				t.Fatalf("workers=%d query %d: %d tuples, want %d", workers, i, len(got[i].Tuples), len(want[i].Tuples))
			}
			for j, tu := range got[i].Tuples {
				w := want[i].Tuples[j]
				if tu.PID != w.PID || tu.Span != w.Span {
					t.Fatalf("workers=%d query %d tuple %d: got {%d %v}, want {%d %v}",
						workers, i, j, tu.PID, tu.Span, w.PID, w.Span)
				}
			}
			// The algorithmic metrics are deterministic per query, so batch
			// workers must report exactly the sequential values (page faults
			// depend on per-worker buffer state and are not compared).
			if ms[i].NPE != wantM[i].NPE || ms[i].NOE != wantM[i].NOE || ms[i].SVG != wantM[i].SVG {
				t.Fatalf("workers=%d query %d: metrics NPE/NOE/SVG = %d/%d/%d, want %d/%d/%d",
					workers, i, ms[i].NPE, ms[i].NOE, ms[i].SVG, wantM[i].NPE, wantM[i].NOE, wantM[i].SVG)
			}
		}
	}
}

// TestCONNBatchEdgeCases covers the empty batch and validation failures.
func TestCONNBatchEdgeCases(t *testing.T) {
	db, queries := batchFixture(t, 2)
	ans, err := db.Exec(context.Background(), CONNBatchRequest{}, WithWorkers(4))
	if err != nil || len(ans.Results()) != 0 || len(ans.ItemMetrics()) != 0 {
		t.Fatalf("empty batch: ans=%v err=%v", ans, err)
	}
	bad := append([]Segment{}, queries...)
	bad = append(bad, Seg(Pt(1, 1), Pt(1, 1))) // degenerate
	if _, err := db.Exec(context.Background(), CONNBatchRequest{Segs: bad}, WithWorkers(4)); err == nil {
		t.Fatal("degenerate query in batch must fail validation")
	}
}

func TestCloneProducesSameAnswers(t *testing.T) {
	db := smallDB(t)
	clone := db.Clone()
	q := Seg(Pt(0, 0), Pt(100, 0))
	a, _, err := Run(context.Background(), db, CONNRequest{Seg: q})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run(context.Background(), clone, CONNRequest{Seg: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tuples) != len(b.Tuples) {
		t.Fatalf("clone tuples %d vs %d", len(b.Tuples), len(a.Tuples))
	}
	for i := range a.Tuples {
		if a.Tuples[i].PID != b.Tuples[i].PID {
			t.Fatalf("tuple %d: %d vs %d", i, a.Tuples[i].PID, b.Tuples[i].PID)
		}
	}
}

func TestConcurrentClones(t *testing.T) {
	r := rand.New(rand.NewSource(901))
	points := make([]Point, 800)
	for i := range points {
		points[i] = Pt(r.Float64()*5000, r.Float64()*5000)
	}
	obstacles := make([]Rect, 120)
	for i := range obstacles {
		lo := Pt(r.Float64()*5000, r.Float64()*5000)
		obstacles[i] = R(lo.X, lo.Y, lo.X+40, lo.Y+30)
	}
	pts := points[:0]
	for _, p := range points {
		free := true
		for _, o := range obstacles {
			if o.ContainsOpen(p) {
				free = false
			}
		}
		if free {
			pts = append(pts, p)
		}
	}
	db, err := Open(pts, obstacles, WithBufferPages(32))
	if err != nil {
		t.Fatal(err)
	}

	// A reference answer per query, computed serially.
	queries := make([]Segment, 8)
	rq := rand.New(rand.NewSource(902))
	for i := range queries {
		for {
			a := Pt(rq.Float64()*5000, rq.Float64()*5000)
			b := Pt(a.X+200, a.Y+130)
			q := Seg(a, b)
			blocked := false
			for _, o := range obstacles {
				if o.BlocksSegment(q) {
					blocked = true
					break
				}
			}
			if !blocked {
				queries[i] = q
				break
			}
		}
	}
	want := make([][]int32, len(queries))
	for i, q := range queries {
		res, _, err := Run(context.Background(), db, CONNRequest{Seg: q})
		if err != nil {
			t.Fatal(err)
		}
		for _, tu := range res.Tuples {
			want[i] = append(want[i], tu.PID)
		}
	}

	// 8 goroutines, each with its own clone, race over all queries.
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			clone := db.Clone()
			for i, q := range queries {
				res, _, err := Run(context.Background(), clone, CONNRequest{Seg: q})
				if err != nil {
					errs <- err
					return
				}
				if len(res.Tuples) != len(want[i]) {
					t.Errorf("query %d: %d tuples, want %d", i, len(res.Tuples), len(want[i]))
					return
				}
				for j, tu := range res.Tuples {
					if tu.PID != want[i][j] {
						t.Errorf("query %d tuple %d: %d vs %d", i, j, tu.PID, want[i][j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// --- MVCC stress: mutations racing live queries -------------------------

// checkPartition asserts a CONN answer is a contiguous partition of [0,1].
func checkPartition(t *testing.T, res *Result) bool {
	t.Helper()
	if len(res.Tuples) == 0 {
		t.Error("empty result")
		return false
	}
	if res.Tuples[0].Span.Lo != 0 || res.Tuples[len(res.Tuples)-1].Span.Hi != 1 {
		t.Errorf("result does not span [0,1]: %+v", res.Tuples)
		return false
	}
	for i := 1; i < len(res.Tuples); i++ {
		if res.Tuples[i].Span.Lo != res.Tuples[i-1].Span.Hi {
			t.Errorf("gap between tuples %d and %d: %+v", i-1, i, res.Tuples)
			return false
		}
	}
	return true
}

// sameAnswer compares two CONN answers structurally: identical owner
// coordinates (PIDs differ after compaction) and split positions up to a
// tiny numeric tolerance.
func sameAnswer(t *testing.T, label string, got, want *Result) bool {
	t.Helper()
	if len(got.Tuples) != len(want.Tuples) {
		t.Errorf("%s: %d tuples, want %d\n got: %+v\nwant: %+v", label, len(got.Tuples), len(want.Tuples), got.Tuples, want.Tuples)
		return false
	}
	const tol = 1e-9
	for i := range got.Tuples {
		g, w := got.Tuples[i], want.Tuples[i]
		if (g.PID == NoOwner) != (w.PID == NoOwner) {
			t.Errorf("%s tuple %d: owner/no-owner mismatch: %+v vs %+v", label, i, g, w)
			return false
		}
		if g.PID != NoOwner && g.P != w.P {
			t.Errorf("%s tuple %d: owner %v, want %v", label, i, g.P, w.P)
			return false
		}
		if math.Abs(g.Span.Lo-w.Span.Lo) > tol || math.Abs(g.Span.Hi-w.Span.Hi) > tol {
			t.Errorf("%s tuple %d: span %+v, want %+v", label, i, g.Span, w.Span)
			return false
		}
	}
	return true
}

// TestMutateUnderConcurrentQueries drives a single writer through a few
// hundred random mutations while (a) readers hammer CONN on the live handle
// and (b) snapshot verifiers pin a clone, query it, and require the answers
// to be identical to a fresh Open of exactly the point/obstacle sets that
// clone observed. Run with -race in CI, this is the proof of the MVCC
// contract: queries never see a half-applied mutation and every snapshot is
// a real, reconstructible version of the database.
func TestMutateUnderConcurrentQueries(t *testing.T) {
	r := rand.New(rand.NewSource(1701))
	points := make([]Point, 0, 150)
	obstacles := make([]Rect, 0, 25)
	for i := 0; i < 25; i++ {
		lo := Pt(r.Float64()*950, r.Float64()*950)
		obstacles = append(obstacles, R(lo.X, lo.Y, lo.X+10+r.Float64()*30, lo.Y+8+r.Float64()*20))
	}
free:
	for len(points) < 150 {
		p := Pt(r.Float64()*1000, r.Float64()*1000)
		for _, o := range obstacles {
			if o.ContainsOpen(p) {
				continue free
			}
		}
		points = append(points, p)
	}
	db, err := Open(points, obstacles)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]Segment, 5)
	for i := range queries {
		a := Pt(r.Float64()*800, r.Float64()*800)
		queries[i] = Seg(a, Pt(a.X+120+r.Float64()*80, a.Y+90))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// The single writer: every kind of mutation, validation failures ignored.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		wr := rand.New(rand.NewSource(1702))
		for i := 0; i < 250; i++ {
			switch wr.Intn(4) {
			case 0:
				db.InsertPoint(Pt(wr.Float64()*1000, wr.Float64()*1000))
			case 1:
				lo := Pt(wr.Float64()*950, wr.Float64()*950)
				db.InsertObstacle(R(lo.X, lo.Y, lo.X+5+wr.Float64()*25, lo.Y+5+wr.Float64()*15))
			case 2:
				db.DeletePoint(int32(wr.Intn(250)))
			case 3:
				db.DeleteObstacle(int32(wr.Intn(60)))
			}
		}
	}()

	// Live readers on the mutating handle: every answer must still be a
	// well-formed partition (and, under -race, data-race free).
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, q := range queries {
					res, _, err := Run(context.Background(), db, CONNRequest{Seg: q})
					if err != nil {
						t.Error(err)
						return
					}
					if !checkPartition(t, res) {
						return
					}
				}
			}
		}()
	}

	// Snapshot verifiers: pin a clone mid-mutation, then rebuild that exact
	// version from scratch and demand identical answers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				c := db.Clone()
				fresh, err := Open(c.Points(), c.Obstacles())
				if err != nil {
					t.Errorf("verifier %d round %d: reopen version %d: %v", g, round, c.Version(), err)
					return
				}
				for qi, q := range queries {
					a, _, err := Run(context.Background(), c, CONNRequest{Seg: q})
					if err != nil {
						t.Error(err)
						return
					}
					b, _, err := Run(context.Background(), fresh, CONNRequest{Seg: q})
					if err != nil {
						t.Error(err)
						return
					}
					if !sameAnswer(t, fmt.Sprintf("verifier %d round %d version %d query %d", g, round, c.Version(), qi), a, b) {
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Batches pin one version for all workers: a batch racing the writer
	// must agree with a sequential pass over a clone taken at the same time
	// whenever the version did not change mid-setup (cheap final check, run
	// after the writer is done so it is deterministic).
	want := make([]*Result, len(queries))
	for i, q := range queries {
		if want[i], _, err = Run(context.Background(), db, CONNRequest{Seg: q}); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := db.Exec(context.Background(), CONNBatchRequest{Segs: queries}, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	got := batch.Results()
	for i := range queries {
		if !sameAnswer(t, fmt.Sprintf("final batch query %d", i), got[i], want[i]) {
			return
		}
	}
}

// TestBufferedHandleConcurrentQueries pins the LRU-footgun fix: a buffered
// handle may serve concurrent queries — and ResetBufferStats may race them —
// without corrupting the buffer or the hit/miss counters (run under -race
// in CI; before the buffer was internally locked this was documented as
// unsupported and corrupted metrics silently).
func TestBufferedHandleConcurrentQueries(t *testing.T) {
	db, queries := batchFixture(t, 6) // WithBufferPages(16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, _, err := Run(context.Background(), db, CONNRequest{Seg: queries[(g+i)%len(queries)]}); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					db.ResetBufferStats()
				}
			}
		}(g)
	}
	wg.Wait()
	// The buffer still answers sanely after the storm.
	if _, _, err := Run(context.Background(), db, CONNRequest{Seg: queries[0]}); err != nil {
		t.Fatal(err)
	}
}
