// Package wal implements the write-ahead log under the durable storage
// tier: a CRC-framed record codec for the four mutation kinds, an
// append-only segment writer with a configurable group-commit window, and a
// sequential directory scanner that recovers the longest valid record
// prefix after a crash.
//
// Framing. Each record is one frame
//
//	length  uint32  payload byte count
//	crc     uint32  CRC-32C (Castagnoli) of the payload
//	payload         op(1) + id(4) + epoch(8) + coords (2 or 4 float64)
//
// all little-endian. The length prefix bounds the read, the checksum
// detects torn or bit-rotted tails: a scanner that hits a frame whose
// length is implausible, whose bytes are short, or whose checksum
// mismatches stops and reports everything before it as the durable prefix.
//
// Segments. Records append to files named wal-%016x.log, the hex field
// being the epoch of the segment's first record, so the lexicographic file
// order is the epoch order and recovery is one sequential prefix scan of
// the sorted directory. Epochs within and across segments are strictly
// increasing; a replayer skips records at or below its current epoch,
// which makes replay idempotent against the duplicate frames a crashed
// compaction can leave behind.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Record ops. The zero value is invalid, so a zeroed frame never decodes.
const (
	OpInsertPoint uint8 = iota + 1
	OpDeletePoint
	OpInsertObstacle
	OpDeleteObstacle
)

// Record is one logged mutation. For point ops Coords[0:2] hold x, y; for
// obstacle ops Coords hold minX, minY, maxX, maxY. ID is the object's
// ID in the logging domain (PID/OID single-node, global ID in the sharded
// sequencer log, shard-local ID in a shard's own log) and Epoch is the
// epoch (or router revision) the mutation committed as.
type Record struct {
	Op     uint8
	ID     int32
	Epoch  uint64
	Coords [4]float64
}

func (r Record) pointOp() bool { return r.Op == OpInsertPoint || r.Op == OpDeletePoint }

func (r Record) payloadLen() int {
	if r.pointOp() {
		return 1 + 4 + 8 + 2*8
	}
	return 1 + 4 + 8 + 4*8
}

const (
	frameHeader   = 8 // length + crc
	maxPayloadLen = 1 + 4 + 8 + 4*8
	minPayloadLen = 1 + 4 + 8 + 2*8
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame encodes r as one frame at the end of dst.
func AppendFrame(dst []byte, r Record) []byte {
	n := r.payloadLen()
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	crcAt := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, 0) // checksum patched below
	payloadAt := len(dst)
	dst = append(dst, r.Op)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.ID))
	dst = binary.LittleEndian.AppendUint64(dst, r.Epoch)
	nc := 2
	if !r.pointOp() {
		nc = 4
	}
	for i := 0; i < nc; i++ {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Coords[i]))
	}
	binary.LittleEndian.PutUint32(dst[crcAt:], crc32.Checksum(dst[payloadAt:], castagnoli))
	return dst
}

// DecodeFrame decodes the frame at the start of b. It returns the record
// and the frame's total byte length, or ok=false when b does not begin
// with a complete, checksum-valid frame of a known op — the torn-tail
// verdict that ends a recovery scan.
func DecodeFrame(b []byte) (r Record, n int, ok bool) {
	if len(b) < frameHeader {
		return Record{}, 0, false
	}
	plen := int(binary.LittleEndian.Uint32(b))
	if plen < minPayloadLen || plen > maxPayloadLen || len(b) < frameHeader+plen {
		return Record{}, 0, false
	}
	payload := b[frameHeader : frameHeader+plen]
	if binary.LittleEndian.Uint32(b[4:]) != crc32.Checksum(payload, castagnoli) {
		return Record{}, 0, false
	}
	r.Op = payload[0]
	if r.Op < OpInsertPoint || r.Op > OpDeleteObstacle {
		return Record{}, 0, false
	}
	if r.payloadLen() != plen {
		return Record{}, 0, false
	}
	r.ID = int32(binary.LittleEndian.Uint32(payload[1:]))
	r.Epoch = binary.LittleEndian.Uint64(payload[5:])
	nc := 2
	if !r.pointOp() {
		nc = 4
	}
	for i := 0; i < nc; i++ {
		r.Coords[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[13+8*i:]))
	}
	return r, frameHeader + plen, true
}

const (
	segPrefix = "wal-"
	segSuffix = ".log"
)

func segmentName(firstEpoch uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstEpoch, segSuffix)
}

func isSegment(name string) bool {
	return strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix) &&
		len(name) == len(segPrefix)+16+len(segSuffix)
}

// listSegments returns the directory's segment file names in epoch order.
func listSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && isSegment(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// ScanResult is the outcome of a recovery scan: the longest valid record
// prefix of the directory, plus I/O accounting for the recovery cost model.
type ScanResult struct {
	Records   []Record
	Segments  int   // segment files visited
	Bytes     int64 // bytes read
	TornBytes int64 // trailing bytes discarded as a torn or corrupt tail
}

// ScanDir reads every segment in epoch order and accumulates the valid
// record prefix. An invalid frame in the last segment is a torn tail (the
// crash the log exists to survive): the scan stops and reports the bytes
// dropped. An invalid frame in an earlier segment is corruption that a
// clean append stream cannot produce, and is an error — silently skipping
// it could mis-replay history. onPage, when non-nil, is invoked once per
// distinct pageSize-aligned file page read, for real-I/O accounting.
func ScanDir(dir string, pageSize int, onPage func(pageID int64)) (ScanResult, error) {
	names, err := listSegments(dir)
	if err != nil {
		return ScanResult{}, err
	}
	var res ScanResult
	for i, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return ScanResult{}, err
		}
		res.Segments++
		res.Bytes += int64(len(data))
		if onPage != nil && pageSize > 0 {
			for off := 0; off < len(data); off += pageSize {
				onPage(int64(i)<<32 | int64(off/pageSize))
			}
		}
		off := 0
		for off < len(data) {
			rec, n, ok := DecodeFrame(data[off:])
			if !ok {
				if i != len(names)-1 {
					return ScanResult{}, fmt.Errorf("wal: segment %s: invalid frame at offset %d in a non-final segment", name, off)
				}
				res.TornBytes = int64(len(data) - off)
				return res, nil
			}
			res.Records = append(res.Records, rec)
			off += n
		}
	}
	return res, nil
}

// Rewrite replaces the directory's segments with a single freshly synced
// segment holding exactly recs (or with nothing when recs is empty). Boot
// runs it after recovery bounds the durable prefix: torn tails and records
// beyond the recovered cut vanish, so later scans — and later appenders —
// start from a clean log. The new segment is written and synced before any
// old segment is removed; a crash in between leaves duplicate records,
// which replay's epoch skip tolerates.
func Rewrite(dir string, recs []Record) error {
	old, err := listSegments(dir)
	if err != nil {
		return err
	}
	var fresh string
	if len(recs) > 0 {
		var buf []byte
		for _, r := range recs {
			buf = AppendFrame(buf, r)
		}
		fresh = segmentName(recs[0].Epoch)
		if err := atomicWrite(filepath.Join(dir, fresh), buf); err != nil {
			return err
		}
	}
	for _, name := range old {
		if name == fresh {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return syncDir(dir)
}

// atomicWrite writes data to path via a temp file, fsync and rename, then
// syncs the directory so the name itself is durable.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-wal-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	} else {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Options configures a Writer.
type Options struct {
	// SyncWindow is the group-commit window. Zero (the default) is strict
	// durability: Append fsyncs before returning, so a record is on disk
	// before its mutation publishes. A positive window batches fsyncs in a
	// background syncer: Append buffers and returns immediately, and a
	// crash can lose up to the window's worth of log tail — recovery still
	// lands on a consistent earlier epoch, because the on-disk log is
	// always a prefix of the committed stream.
	SyncWindow time.Duration

	// SegmentBytes rolls the log to a new segment once the current one
	// exceeds this size. Zero means the 64 MiB default.
	SegmentBytes int64
}

const defaultSegmentBytes = 64 << 20

// Writer appends records to the directory's newest segment. One Writer
// owns a directory; the durable tier serializes appends under its writer
// lock, and the Writer's own mutex covers the background syncer.
type Writer struct {
	dir  string
	opts Options

	mu        sync.Mutex
	f         *os.File
	size      int64
	lastEpoch uint64
	dirty     bool // buffered bytes not yet fsynced (group mode)
	err       error

	syncReq chan struct{}
	closed  chan struct{}
	done    sync.WaitGroup
}

// Create opens a Writer on dir, starting a fresh segment for records from
// nextEpoch on. Existing segments are left untouched (boot compacts them
// with Rewrite first); a leftover segment with the same name is truncated,
// which is safe exactly because Rewrite already persisted its contents.
func Create(dir string, nextEpoch uint64, opts Options) (*Writer, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	w := &Writer{dir: dir, opts: opts, lastEpoch: nextEpoch - 1}
	f, err := os.OpenFile(filepath.Join(dir, segmentName(nextEpoch)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	w.f = f
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	if opts.SyncWindow > 0 {
		w.syncReq = make(chan struct{}, 1)
		w.closed = make(chan struct{})
		w.done.Add(1)
		go w.syncLoop()
	}
	return w, nil
}

// Append logs one record. In strict mode (zero SyncWindow) the record is
// durable when Append returns; in group mode it is durable within one
// window. Errors are sticky: once an append or sync fails, the log refuses
// further records, and the durable tier above fails its writer the same way.
func (w *Writer) Append(r Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if r.Epoch <= w.lastEpoch {
		return w.fail(fmt.Errorf("wal: non-monotonic epoch %d after %d", r.Epoch, w.lastEpoch))
	}
	if w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(r.Epoch); err != nil {
			return w.fail(err)
		}
	}
	buf := AppendFrame(nil, r)
	if _, err := w.f.Write(buf); err != nil {
		return w.fail(err)
	}
	w.size += int64(len(buf))
	w.lastEpoch = r.Epoch
	if w.opts.SyncWindow == 0 {
		if err := w.f.Sync(); err != nil {
			return w.fail(err)
		}
		return nil
	}
	w.dirty = true
	select {
	case w.syncReq <- struct{}{}:
	default:
	}
	return nil
}

// AppendBatch logs a group of records as one physical write and — in strict
// mode — one fsync, the durability half of a batched commit: either the
// whole group is durable when AppendBatch returns, or the writer failed and
// nothing published. Epochs must be strictly increasing across the group
// and past the writer's last epoch, exactly as if each record had been
// Appended individually; recovery cannot tell the difference. In group-
// commit mode the frames buffer like any other append and the window syncer
// covers them. An empty batch is a no-op.
func (w *Writer) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	last := w.lastEpoch
	for _, r := range recs {
		if r.Epoch <= last {
			return w.fail(fmt.Errorf("wal: non-monotonic epoch %d after %d in batch", r.Epoch, last))
		}
		last = r.Epoch
	}
	if w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(recs[0].Epoch); err != nil {
			return w.fail(err)
		}
	}
	var buf []byte
	for _, r := range recs {
		buf = AppendFrame(buf, r)
	}
	if _, err := w.f.Write(buf); err != nil {
		return w.fail(err)
	}
	w.size += int64(len(buf))
	w.lastEpoch = last
	if w.opts.SyncWindow == 0 {
		if err := w.f.Sync(); err != nil {
			return w.fail(err)
		}
		return nil
	}
	w.dirty = true
	select {
	case w.syncReq <- struct{}{}:
	default:
	}
	return nil
}

// fail latches err. Caller holds w.mu.
func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

// rotateLocked syncs and closes the current segment and opens a new one
// whose name carries the epoch of its first record. Caller holds w.mu.
func (w *Writer) rotateLocked(nextEpoch uint64) error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(nextEpoch)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w.f, w.size, w.dirty = f, 0, false
	return syncDir(w.dir)
}

// syncLoop is the group-commit syncer: it sleeps one window after the
// first append of a batch, then fsyncs everything buffered since.
func (w *Writer) syncLoop() {
	defer w.done.Done()
	for {
		select {
		case <-w.closed:
			return
		case <-w.syncReq:
		}
		timer := time.NewTimer(w.opts.SyncWindow)
		select {
		case <-w.closed:
			timer.Stop()
			return
		case <-timer.C:
		}
		w.mu.Lock()
		if w.err == nil && w.dirty {
			if err := w.f.Sync(); err != nil {
				w.fail(err)
			} else {
				w.dirty = false
			}
		}
		w.mu.Unlock()
	}
}

// Dirty reports whether appended records are still awaiting an fsync — the
// group-commit relaxed window. Strict mode and a sync-acked commit always
// leave the writer clean.
func (w *Writer) Dirty() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dirty
}

// Sync forces buffered records to disk (a no-op in strict mode, where
// Append already synced). Checkpoints call it before cutting the log.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		return w.fail(err)
	}
	w.dirty = false
	return nil
}

// Truncate discards every segment after syncing: the caller has just made
// a checkpoint at the writer's last epoch durable, so the whole log is
// covered. A fresh segment for the next epoch replaces the old files.
func (w *Writer) Truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		return w.fail(err)
	}
	if err := w.f.Close(); err != nil {
		return w.fail(err)
	}
	names, err := listSegments(w.dir)
	if err != nil {
		return w.fail(err)
	}
	for _, name := range names {
		if err := os.Remove(filepath.Join(w.dir, name)); err != nil {
			return w.fail(err)
		}
	}
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(w.lastEpoch+1)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return w.fail(err)
	}
	w.f, w.size, w.dirty = f, 0, false
	if err := syncDir(w.dir); err != nil {
		return w.fail(err)
	}
	return nil
}

// Close syncs outstanding records and closes the segment. The Writer is
// unusable afterwards.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed != nil {
		select {
		case <-w.closed:
		default:
			close(w.closed)
		}
	}
	w.mu.Unlock()
	w.done.Wait()

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		w.f.Close()
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return w.fail(err)
	}
	if err := w.f.Close(); err != nil {
		return w.fail(err)
	}
	w.err = fmt.Errorf("wal: writer closed")
	return nil
}
