package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func rec(op uint8, id int32, epoch uint64, coords ...float64) Record {
	r := Record{Op: op, ID: id, Epoch: epoch}
	copy(r.Coords[:], coords)
	return r
}

func writeAll(t *testing.T, dir string, opts Options, recs []Record) {
	t.Helper()
	w, err := Create(dir, recs[0].Epoch, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func someRecords(n int, fromEpoch uint64) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		e := fromEpoch + uint64(i)
		switch i % 4 {
		case 0:
			recs = append(recs, rec(OpInsertPoint, int32(i), e, float64(i), -float64(i)))
		case 1:
			recs = append(recs, rec(OpInsertObstacle, int32(i), e, 1, 2, 3, 4))
		case 2:
			recs = append(recs, rec(OpDeletePoint, int32(i-2), e, float64(i-2), -float64(i-2)))
		default:
			recs = append(recs, rec(OpDeleteObstacle, int32(i-2), e, 1, 2, 3, 4))
		}
	}
	return recs
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := someRecords(64, 7)
	writeAll(t, dir, Options{}, recs)
	res, err := ScanDir(dir, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(recs) {
		t.Fatalf("scanned %d records, want %d", len(res.Records), len(recs))
	}
	for i, r := range res.Records {
		if r != recs[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, r, recs[i])
		}
	}
	if res.TornBytes != 0 {
		t.Fatalf("clean log reported %d torn bytes", res.TornBytes)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	recs := someRecords(100, 1)
	writeAll(t, dir, Options{SegmentBytes: 256}, recs)
	names, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 2 {
		t.Fatalf("expected multiple segments with a 256-byte roll threshold, got %v", names)
	}
	res, err := ScanDir(dir, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(recs) {
		t.Fatalf("scanned %d records across %d segments, want %d", len(res.Records), res.Segments, len(recs))
	}
	for i, r := range res.Records {
		if r != recs[i] {
			t.Fatalf("record %d mismatch after rotation", i)
		}
	}
}

// A torn tail in the final segment ends the scan with the valid prefix; the
// same damage in a non-final segment is corruption and must error.
func TestTornTail(t *testing.T) {
	for _, cut := range []int{1, 3, 7} {
		dir := t.TempDir()
		recs := someRecords(8, 1)
		writeAll(t, dir, Options{}, recs)
		names, _ := listSegments(dir)
		path := filepath.Join(dir, names[0])
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := ScanDir(dir, 4096, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != len(recs)-1 {
			t.Fatalf("cut %d: got %d records, want %d", cut, len(res.Records), len(recs)-1)
		}
		if res.TornBytes == 0 {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
	}
}

func TestCorruptMiddleSegmentErrors(t *testing.T) {
	dir := t.TempDir()
	writeAll(t, dir, Options{SegmentBytes: 128}, someRecords(40, 1))
	names, err := listSegments(dir)
	if err != nil || len(names) < 2 {
		t.Fatalf("need >= 2 segments, got %v (%v)", names, err)
	}
	path := filepath.Join(dir, names[0])
	data, _ := os.ReadFile(path)
	data[len(data)-5] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanDir(dir, 4096, nil); err == nil {
		t.Fatal("corrupt non-final segment scanned without error")
	}
}

func TestBadCRCStopsScan(t *testing.T) {
	dir := t.TempDir()
	recs := someRecords(4, 1)
	writeAll(t, dir, Options{}, recs)
	names, _ := listSegments(dir)
	path := filepath.Join(dir, names[0])
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0x01 // flip a payload bit of the last record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := ScanDir(dir, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(recs)-1 {
		t.Fatalf("got %d records, want %d valid before the bad CRC", len(res.Records), len(recs)-1)
	}
}

func TestGroupCommitSyncs(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1, Options{SyncWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range someRecords(10, 1) {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// The background syncer must land the batch within a few windows.
	deadline := time.Now().Add(2 * time.Second)
	for {
		w.mu.Lock()
		dirty := w.dirty
		w.mu.Unlock()
		if !dirty {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("group-commit syncer never flushed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ScanDir(dir, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 10 {
		t.Fatalf("got %d records, want 10", len(res.Records))
	}
}

func TestTruncateStartsFresh(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range someRecords(6, 1) {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rec(OpInsertPoint, 99, 7, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ScanDir(dir, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || res.Records[0].ID != 99 {
		t.Fatalf("after truncate want only the post-truncate record, got %+v", res.Records)
	}
}

func TestRewrite(t *testing.T) {
	dir := t.TempDir()
	recs := someRecords(20, 5)
	writeAll(t, dir, Options{SegmentBytes: 128}, recs)
	// Tear the final segment, then rewrite to the first 11 records.
	names, _ := listSegments(dir)
	last := filepath.Join(dir, names[len(names)-1])
	data, _ := os.ReadFile(last)
	os.WriteFile(last, data[:len(data)-2], 0o644)
	if err := Rewrite(dir, recs[:11]); err != nil {
		t.Fatal(err)
	}
	res, err := ScanDir(dir, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 11 || res.TornBytes != 0 || res.Segments != 1 {
		t.Fatalf("rewrite left %d records, %d torn bytes, %d segments", len(res.Records), res.TornBytes, res.Segments)
	}
	for i, r := range res.Records {
		if r != recs[i] {
			t.Fatalf("record %d mismatch after rewrite", i)
		}
	}
	// Rewriting to nothing empties the directory.
	if err := Rewrite(dir, nil); err != nil {
		t.Fatal(err)
	}
	res, err = ScanDir(dir, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Fatalf("empty rewrite left %d records", len(res.Records))
	}
}

func TestNonMonotonicEpochRejected(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(rec(OpInsertPoint, 1, 5, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rec(OpInsertPoint, 2, 5, 0, 0)); err == nil {
		t.Fatal("duplicate epoch accepted")
	}
}

func TestScanPageAccounting(t *testing.T) {
	dir := t.TempDir()
	writeAll(t, dir, Options{}, someRecords(200, 1))
	pages := map[int64]int{}
	res, err := ScanDir(dir, 512, func(id int64) { pages[id]++ })
	if err != nil {
		t.Fatal(err)
	}
	want := int((res.Bytes + 511) / 512)
	if len(pages) != want {
		t.Fatalf("charged %d distinct pages, want %d for %d bytes", len(pages), want, res.Bytes)
	}
}

// batches splits recs into groups of batchLen for AppendBatch tests.
func batches(recs []Record, batchLen int) [][]Record {
	var out [][]Record
	for len(recs) > 0 {
		n := batchLen
		if n > len(recs) {
			n = len(recs)
		}
		out = append(out, recs[:n])
		recs = recs[n:]
	}
	return out
}

// TestAppendBatchRoundTrip proves a scan cannot tell batched appends from
// individual ones: groups of records written through AppendBatch (mixed with
// single Appends and empty batches) read back as the identical record
// sequence.
func TestAppendBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := someRecords(30, 3)
	w, err := Create(dir, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := w.AppendBatch(recs[:7]); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs[7]); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(recs[8:8]); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(recs[8:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ScanDir(dir, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(recs) {
		t.Fatalf("scanned %d records, want %d", len(res.Records), len(recs))
	}
	for i, r := range res.Records {
		if r != recs[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, r, recs[i])
		}
	}
}

// TestAppendBatchMonotonicRejected pins the epoch discipline: a batch that
// repeats an epoch internally, or that starts at or below the writer's last
// epoch, is rejected whole and latches the writer.
func TestAppendBatchMonotonicRejected(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AppendBatch([]Record{rec(OpInsertPoint, 1, 1, 0, 0), rec(OpInsertPoint, 2, 1, 1, 1)}); err == nil {
		t.Fatal("internally duplicate epochs accepted")
	}
	if err := w.Append(rec(OpInsertPoint, 3, 2, 0, 0)); err == nil {
		t.Fatal("writer did not latch after the rejected batch")
	}

	dir2 := t.TempDir()
	w2, err := Create(dir2, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if err := w2.Append(rec(OpInsertPoint, 1, 5, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w2.AppendBatch([]Record{rec(OpInsertPoint, 2, 5, 0, 0)}); err == nil {
		t.Fatal("batch starting at the writer's last epoch accepted")
	}
}

// TestAppendBatchRotation proves a batch never splits across segments: the
// roll happens before the group's single write, so every group lands whole
// in one segment even when it overshoots the threshold.
func TestAppendBatchRotation(t *testing.T) {
	dir := t.TempDir()
	recs := someRecords(60, 1)
	w, err := Create(dir, 1, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	groups := batches(recs, 6)
	for _, g := range groups {
		if err := w.AppendBatch(g); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 2 {
		t.Fatalf("expected multiple segments with a 128-byte roll threshold, got %v", names)
	}
	// Each segment must begin exactly at a group boundary: its name carries
	// the epoch of its first record, and every group starts at epochs
	// 1, 7, 13, ... for groups of 6.
	for _, name := range names {
		var first uint64
		if _, err := fmt.Sscanf(name, "wal-%x.log", &first); err != nil {
			t.Fatalf("unparseable segment name %q", name)
		}
		if (first-1)%6 != 0 {
			t.Fatalf("segment %q starts mid-batch at epoch %d", name, first)
		}
	}
	res, err := ScanDir(dir, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(recs) {
		t.Fatalf("scanned %d records, want %d", len(res.Records), len(recs))
	}
	for i, r := range res.Records {
		if r != recs[i] {
			t.Fatalf("record %d mismatch after batched rotation", i)
		}
	}
}

// TestAppendBatchTornTail tears bytes off a batched log: the scan must
// surface the longest valid record prefix, exactly as for individual
// appends.
func TestAppendBatchTornTail(t *testing.T) {
	dir := t.TempDir()
	recs := someRecords(12, 1)
	w, err := Create(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range batches(recs, 4) {
		if err := w.AppendBatch(g); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := listSegments(dir)
	path := filepath.Join(dir, names[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := ScanDir(dir, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(recs)-1 || res.TornBytes == 0 {
		t.Fatalf("torn batched log scanned %d records (%d torn bytes), want %d", len(res.Records), res.TornBytes, len(recs)-1)
	}
}

// TestAppendBatchDirty pins the Dirty observability: strict mode syncs
// within AppendBatch (clean on return), group mode leaves the group dirty
// until a Sync.
func TestAppendBatchDirty(t *testing.T) {
	strict, err := Create(t.TempDir(), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer strict.Close()
	if err := strict.AppendBatch(someRecords(4, 1)); err != nil {
		t.Fatal(err)
	}
	if strict.Dirty() {
		t.Fatal("strict-mode AppendBatch returned with the log dirty")
	}

	grouped, err := Create(t.TempDir(), 1, Options{SyncWindow: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer grouped.Close()
	if err := grouped.AppendBatch(someRecords(4, 1)); err != nil {
		t.Fatal(err)
	}
	if !grouped.Dirty() {
		t.Fatal("group-mode AppendBatch left the log clean without a sync")
	}
	if err := grouped.Sync(); err != nil {
		t.Fatal(err)
	}
	if grouped.Dirty() {
		t.Fatal("Sync left the log dirty")
	}
}
