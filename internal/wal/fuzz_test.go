package wal

import (
	"bytes"
	"math"
	"testing"
)

// FuzzWALRecord drives the frame codec both ways. The encode direction
// checks that any representable record round-trips exactly; the decode
// direction feeds the raw fuzzed bytes to the scanner-side decoder and
// checks the safety contract: it never panics, never accepts a frame whose
// re-encoding differs (so a corrupt frame can never be mis-replayed), and
// rejects every truncation of a valid frame — the torn-tail cases.
func FuzzWALRecord(f *testing.F) {
	seedRecs := []Record{
		{Op: OpInsertPoint, ID: 0, Epoch: 1, Coords: [4]float64{0, 0}},
		{Op: OpDeletePoint, ID: 42, Epoch: 1 << 40, Coords: [4]float64{-1.5, 2.25}},
		{Op: OpInsertObstacle, ID: 7, Epoch: 2, Coords: [4]float64{1, 2, 3, 4}},
		{Op: OpDeleteObstacle, ID: -1, Epoch: 99, Coords: [4]float64{math.Pi, -math.E, 1e300, 5e-324}},
	}
	for _, r := range seedRecs {
		f.Add(AppendFrame(nil, r))
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, 64))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, ok := DecodeFrame(data)
		if !ok {
			// Rejected input must not hide a frame the writer could have
			// produced: re-encoding of anything is irrelevant here, but the
			// decoder's verdict must at least be stable.
			if _, _, again := DecodeFrame(data); again {
				t.Fatal("decoder verdict not deterministic")
			}
			return
		}
		if n < frameHeader+minPayloadLen || n > len(data) {
			t.Fatalf("accepted frame with implausible length %d (input %d bytes)", n, len(data))
		}
		// An accepted frame must be exactly what the encoder produces for the
		// decoded record — the no-mis-replay property. NaN coordinate bit
		// patterns survive the trip because the codec moves raw float bits.
		enc := AppendFrame(nil, rec)
		if !bytes.Equal(enc, data[:n]) {
			t.Fatalf("accepted frame is not canonical: % x vs % x", data[:n], enc)
		}
		// Every strict prefix of the frame is a torn tail and must be
		// rejected, along with any single corrupted byte inside it.
		for cut := n - 1; cut >= 0; cut-- {
			if _, _, ok := DecodeFrame(data[:cut]); ok {
				t.Fatalf("truncated frame of %d/%d bytes accepted", cut, n)
			}
		}
		for i := 0; i < n; i++ {
			mut := append([]byte(nil), data[:n]...)
			mut[i] ^= 0x5a
			if r2, _, ok := DecodeFrame(mut); ok {
				// A flipped byte may still decode if it only toggled bits the
				// checksum covers... it cannot: CRC-32C detects all single-byte
				// errors within a frame this short. Length-prefix flips that
				// still frame a valid shorter/longer payload would need the
				// checksum to match by chance; treat any acceptance that
				// changes the record as mis-replay.
				if r2 != rec {
					t.Fatalf("byte %d flip decoded to a different record: %+v vs %+v", i, r2, rec)
				}
			}
		}
	})
}
