// Package rtree implements the R*-tree of Beckmann, Kriegel, Schneider and
// Seeger (SIGMOD 1990), the disk-based spatial index the paper uses for both
// the data set P and the obstacle set O. The implementation is in-memory but
// models disk behaviour the way the paper's experiments do: nodes have a
// page-size-derived fanout (4 KB pages by default) and every node visit is
// counted as one page access, optionally filtered through an LRU buffer.
//
// Supported operations: one-by-one R*-insertion with forced reinsertion,
// deletion with tree condensation, window search, incremental best-first
// nearest-neighbour traversal ordered by mindist to a query segment or
// point (Hjaltason & Samet style), and STR bulk loading.
package rtree

import (
	"fmt"

	"connquery/internal/geom"
)

// Kind distinguishes what a leaf item represents. The single-R-tree variant
// of the CONN algorithm (paper §4.5) stores data points and obstacles in one
// tree and dispatches on this tag.
type Kind uint8

const (
	// KindPoint marks a data point of P.
	KindPoint Kind = iota
	// KindObstacle marks an obstacle of O.
	KindObstacle
)

// Item is one spatial object stored at the leaf level.
type Item struct {
	Rect geom.Rect
	ID   int32
	Kind Kind
}

// PointItem builds an Item for a data point.
func PointItem(id int32, p geom.Point) Item {
	return Item{Rect: geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}, ID: id, Kind: KindPoint}
}

// ObstacleItem builds an Item for a rectangular obstacle.
func ObstacleItem(id int32, r geom.Rect) Item {
	return Item{Rect: r, ID: id, Kind: KindObstacle}
}

// Point returns the point an Item of KindPoint represents.
func (it Item) Point() geom.Point { return geom.Point{X: it.Rect.MinX, Y: it.Rect.MinY} }

// entrySize is the modelled on-disk footprint of one node entry:
// an MBR (4 float64 = 32 bytes) plus a child pointer or object ID (8 bytes).
const entrySize = 40

// DefaultPageSize is the paper's experimental page size.
const DefaultPageSize = 4096

// reinsertFraction is the R*-tree forced-reinsertion share (30%).
const reinsertFraction = 0.3

// Options configures a Tree.
type Options struct {
	// PageSize in bytes; determines the fanout. Defaults to DefaultPageSize.
	PageSize int
	// Access receives every simulated page (node) access. May be nil.
	Access AccessRecorder
}

// AccessRecorder observes node accesses. Implementations count I/O and/or
// run an LRU buffer in front of the "disk".
type AccessRecorder interface {
	// RecordAccess is invoked with the node's stable page ID.
	RecordAccess(pageID int64)
}

// Tree is an R*-tree. Not safe for concurrent mutation; concurrent readers
// are safe once loading is complete.
type Tree struct {
	root       *node
	height     int // number of levels; 1 = root is a leaf
	size       int
	maxEntries int
	minEntries int
	access     AccessRecorder
	nextPageID int64
}

type node struct {
	pageID  int64
	leaf    bool
	entries []entry
}

type entry struct {
	rect  geom.Rect
	child *node // nil at leaf level
	item  Item  // valid at leaf level
}

// New creates an empty tree.
func New(opts Options) *Tree {
	ps := opts.PageSize
	if ps <= 0 {
		ps = DefaultPageSize
	}
	m := ps / entrySize
	if m < 4 {
		m = 4
	}
	t := &Tree{
		maxEntries: m,
		minEntries: maxInt(2, int(float64(m)*0.4)),
		access:     opts.Access,
	}
	t.root = t.newNode(true)
	t.height = 1
	return t
}

// SetAccessRecorder replaces the access recorder (e.g. to attach an LRU
// buffer after bulk loading so the load itself is not charged).
func (t *Tree) SetAccessRecorder(a AccessRecorder) { t.access = a }

// View returns a read-only handle over the same nodes with its own access
// recorder. Views let concurrent readers keep independent I/O accounting
// while sharing the index. Mutating a view (Insert/Delete/BulkLoad) is a
// programming error: the underlying nodes are shared.
func (t *Tree) View(a AccessRecorder) *Tree {
	cp := *t
	cp.access = a
	return &cp
}

// Size returns the number of stored items.
func (t *Tree) Size() int { return t.size }

// Height returns the number of levels (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// Fanout returns the maximum number of entries per node.
func (t *Tree) Fanout() int { return t.maxEntries }

// NumNodes returns the number of allocated nodes (pages).
func (t *Tree) NumNodes() int { return int(t.nextPageID) }

// Bounds returns the MBR of all stored items (empty rect when empty).
func (t *Tree) Bounds() geom.Rect {
	if t.size == 0 {
		return geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}
	}
	return t.root.mbr()
}

func (t *Tree) newNode(leaf bool) *node {
	n := &node{pageID: t.nextPageID, leaf: leaf}
	t.nextPageID++
	return n
}

func (t *Tree) visit(n *node) {
	if t.access != nil {
		t.access.RecordAccess(n.pageID)
	}
}

func (n *node) mbr() geom.Rect {
	r := geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0} // canonical empty
	for _, e := range n.entries {
		r = r.Union(e.rect)
	}
	return r
}

// CheckInvariants validates structural invariants; it is used by tests and
// returns a descriptive error on the first violation found.
func (t *Tree) CheckInvariants() error {
	count, err := t.check(t.root, t.height, true)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size mismatch: counted %d, recorded %d", count, t.size)
	}
	return nil
}

func (t *Tree) check(n *node, levelsLeft int, isRoot bool) (int, error) {
	if n.leaf != (levelsLeft == 1) {
		return 0, fmt.Errorf("leaf flag inconsistent with height at page %d", n.pageID)
	}
	if len(n.entries) > t.maxEntries {
		return 0, fmt.Errorf("page %d overflows: %d entries", n.pageID, len(n.entries))
	}
	if !isRoot && len(n.entries) < t.minEntries {
		return 0, fmt.Errorf("page %d underflows: %d entries", n.pageID, len(n.entries))
	}
	if n.leaf {
		return len(n.entries), nil
	}
	total := 0
	for _, e := range n.entries {
		if e.child == nil {
			return 0, fmt.Errorf("nil child in internal page %d", n.pageID)
		}
		if !e.rect.ContainsRect(e.child.mbr()) {
			return 0, fmt.Errorf("entry MBR %v does not cover child MBR %v", e.rect, e.child.mbr())
		}
		c, err := t.check(e.child, levelsLeft-1, false)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
