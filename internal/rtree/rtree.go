package rtree

import (
	"fmt"

	"connquery/internal/geom"
)

// Kind distinguishes what a leaf item represents. The single-R-tree variant
// of the CONN algorithm (paper §4.5) stores data points and obstacles in one
// tree and dispatches on this tag.
type Kind uint8

const (
	// KindPoint marks a data point of P.
	KindPoint Kind = iota
	// KindObstacle marks an obstacle of O.
	KindObstacle
)

// Item is one spatial object stored at the leaf level.
type Item struct {
	Rect geom.Rect
	ID   int32
	Kind Kind
}

// PointItem builds an Item for a data point.
func PointItem(id int32, p geom.Point) Item {
	return Item{Rect: geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}, ID: id, Kind: KindPoint}
}

// ObstacleItem builds an Item for a rectangular obstacle.
func ObstacleItem(id int32, r geom.Rect) Item {
	return Item{Rect: r, ID: id, Kind: KindObstacle}
}

// Point returns the point an Item of KindPoint represents.
func (it Item) Point() geom.Point { return geom.Point{X: it.Rect.MinX, Y: it.Rect.MinY} }

// TieKey returns the item's heap tie key for distance-ordered traversals:
// a strictly positive value ordering items by (Kind, ID). Internal tree
// nodes use tie key 0, so at equal distance every node expands before any
// item is emitted and equal-distance items surface in (Kind, ID) order —
// making the NearestIter emission sequence a pure function of the stored
// item set, independent of how the tree was built (bulk load vs incremental
// insert/delete history). Sharded execution relies on this to reproduce a
// single-node trace bit-identically from differently-shaped trees.
func (it Item) TieKey() uint64 {
	return (uint64(it.Kind)+1)<<32 | uint64(uint32(it.ID))
}

// entrySize is the modelled on-disk footprint of one node entry:
// an MBR (4 float64 = 32 bytes) plus a child pointer or object ID (8 bytes).
const entrySize = 40

// DefaultPageSize is the paper's experimental page size.
const DefaultPageSize = 4096

// reinsertFraction is the R*-tree forced-reinsertion share (30%).
const reinsertFraction = 0.3

// Options configures a Tree.
type Options struct {
	// PageSize in bytes; determines the fanout. Defaults to DefaultPageSize.
	PageSize int
	// Access receives every simulated page (node) access. May be nil.
	Access AccessRecorder
}

// AccessRecorder observes node accesses. Implementations count I/O and/or
// run an LRU buffer in front of the "disk".
type AccessRecorder interface {
	// RecordAccess is invoked with the node's stable page ID.
	RecordAccess(pageID int64)
}

// Tree is an R*-tree. Not safe for concurrent mutation; concurrent readers
// are safe once loading is complete. For readers that must stay consistent
// while a writer advances the index, mutate a CloneCOW handle instead of the
// shared tree: the clone path-copies every node it would modify, so the
// original handle keeps answering from an unchanged snapshot.
type Tree struct {
	root       *node
	height     int // number of levels; 1 = root is a leaf
	size       int
	maxEntries int
	minEntries int
	access     AccessRecorder
	nextPageID int64
	// cowEpoch is the shadowing generation of this handle. Nodes whose epoch
	// differs are owned by an ancestor (or published) version and are copied
	// before any modification; nodes with a matching epoch were created by
	// this handle and may be written in place. A freshly built tree has
	// epoch 0 everywhere, so plain Insert/Delete stay fully in place.
	cowEpoch uint64
}

type node struct {
	pageID  int64
	leaf    bool
	epoch   uint64
	entries []entry
}

type entry struct {
	rect  geom.Rect
	child *node // nil at leaf level
	item  Item  // valid at leaf level
}

// New creates an empty tree.
func New(opts Options) *Tree {
	ps := opts.PageSize
	if ps <= 0 {
		ps = DefaultPageSize
	}
	m := ps / entrySize
	if m < 4 {
		m = 4
	}
	t := &Tree{
		maxEntries: m,
		minEntries: maxInt(2, int(float64(m)*0.4)),
		access:     opts.Access,
	}
	t.root = t.newNode(true)
	t.height = 1
	return t
}

// SetAccessRecorder replaces the access recorder (e.g. to attach an LRU
// buffer after bulk loading so the load itself is not charged).
func (t *Tree) SetAccessRecorder(a AccessRecorder) { t.access = a }

// View returns a read-only handle over the same nodes with its own access
// recorder (nil suppresses accounting entirely). Views let concurrent
// readers keep independent I/O accounting while sharing the index.
// Mutating a view in place (Insert/Delete/BulkLoad) is a programming
// error — the underlying nodes are shared; take a CloneCOW of the view to
// mutate safely.
func (t *Tree) View(a AccessRecorder) *Tree {
	cp := *t
	cp.access = a
	return &cp
}

// Size returns the number of stored items.
func (t *Tree) Size() int { return t.size }

// Height returns the number of levels (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// Fanout returns the maximum number of entries per node.
func (t *Tree) Fanout() int { return t.maxEntries }

// NumNodes returns the number of allocated nodes (pages).
func (t *Tree) NumNodes() int { return int(t.nextPageID) }

// Bounds returns the MBR of all stored items (empty rect when empty).
func (t *Tree) Bounds() geom.Rect {
	if t.size == 0 {
		return geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}
	}
	return t.root.mbr()
}

func (t *Tree) newNode(leaf bool) *node {
	n := &node{pageID: t.nextPageID, leaf: leaf, epoch: t.cowEpoch}
	t.nextPageID++
	return n
}

// CloneCOW returns a mutable copy-on-write handle over the same nodes.
// Insert and Delete on the clone shadow-copy (path-copy) every node they
// would modify, so the receiver — and every older handle in the chain —
// keeps reading its own unchanged snapshot. Untouched subtrees stay shared.
//
// Contract: once a CloneCOW handle has been taken, the receiver must be
// treated as immutable (mutate only the newest handle in a chain). Clones of
// the same tree may diverge independently; their private nodes are never
// reachable from one another. Shadow copies are charged to the access
// recorder like any other node write and receive fresh page IDs, so NumNodes
// counts historical (shadowed-out) pages too on mutated lineages.
func (t *Tree) CloneCOW() *Tree {
	cp := *t
	cp.cowEpoch = t.cowEpoch + 1
	return &cp
}

// shadow returns a node guaranteed writable by this handle: n itself when
// this handle created it, otherwise a fresh copy with this handle's epoch.
// The caller must re-link the copy into its (already writable) parent.
func (t *Tree) shadow(n *node) *node {
	if n.epoch == t.cowEpoch {
		return n
	}
	cp := t.newNode(n.leaf)
	cp.entries = append(make([]entry, 0, len(n.entries)+1), n.entries...)
	return cp
}

// shadowRoot makes the root writable, re-rooting the tree at the copy.
func (t *Tree) shadowRoot() *node {
	if t.root.epoch != t.cowEpoch {
		t.root = t.shadow(t.root)
	}
	return t.root
}

// shadowChild makes parent's idx-th child writable and re-links it. The
// parent must already be writable.
func (t *Tree) shadowChild(parent *node, idx int) *node {
	c := parent.entries[idx].child
	if c.epoch != t.cowEpoch {
		c = t.shadow(c)
		parent.entries[idx].child = c
	}
	return c
}

// shadowPath rewrites a root-to-node path (as returned by findLeaf) so every
// node on it is writable, re-linking copies top-down. Entry indexes into the
// path's nodes remain valid because shadowing preserves entry order.
func (t *Tree) shadowPath(path []*node) []*node {
	allOwned := true
	for _, n := range path {
		if n.epoch != t.cowEpoch {
			allOwned = false
			break
		}
	}
	if allOwned {
		return path
	}
	out := make([]*node, len(path))
	out[0] = t.shadowRoot()
	for i := 1; i < len(path); i++ {
		parent := out[i-1]
		for j := range parent.entries {
			if parent.entries[j].child == path[i] {
				out[i] = t.shadowChild(parent, j)
				break
			}
		}
		if out[i] == nil {
			// path[i] was already shadowed earlier in this walk (identical
			// pointer replaced); find the copy by position is impossible, so
			// this indicates a caller bug.
			panic("rtree: shadowPath lost track of a path node")
		}
	}
	return out
}

func (t *Tree) visit(n *node) {
	if t.access != nil {
		t.access.RecordAccess(n.pageID)
	}
}

func (n *node) mbr() geom.Rect {
	r := geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0} // canonical empty
	for _, e := range n.entries {
		r = r.Union(e.rect)
	}
	return r
}

// CheckInvariants validates structural invariants; it is used by tests and
// returns a descriptive error on the first violation found.
func (t *Tree) CheckInvariants() error {
	count, err := t.check(t.root, t.height, true)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size mismatch: counted %d, recorded %d", count, t.size)
	}
	return nil
}

func (t *Tree) check(n *node, levelsLeft int, isRoot bool) (int, error) {
	if n.leaf != (levelsLeft == 1) {
		return 0, fmt.Errorf("leaf flag inconsistent with height at page %d", n.pageID)
	}
	if len(n.entries) > t.maxEntries {
		return 0, fmt.Errorf("page %d overflows: %d entries", n.pageID, len(n.entries))
	}
	if !isRoot && len(n.entries) < t.minEntries {
		return 0, fmt.Errorf("page %d underflows: %d entries", n.pageID, len(n.entries))
	}
	if n.leaf {
		return len(n.entries), nil
	}
	total := 0
	for _, e := range n.entries {
		if e.child == nil {
			return 0, fmt.Errorf("nil child in internal page %d", n.pageID)
		}
		if !e.rect.ContainsRect(e.child.mbr()) {
			return 0, fmt.Errorf("entry MBR %v does not cover child MBR %v", e.rect, e.child.mbr())
		}
		c, err := t.check(e.child, levelsLeft-1, false)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
