package rtree

import (
	"connquery/internal/geom"
	"connquery/internal/minheap"
)

// Search invokes fn for every stored item whose rectangle intersects w.
// Traversal stops early when fn returns false.
func (t *Tree) Search(w geom.Rect, fn func(Item) bool) {
	if t.size == 0 {
		return
	}
	t.searchNode(t.root, w, fn)
}

func (t *Tree) searchNode(n *node, w geom.Rect, fn func(Item) bool) bool {
	t.visit(n)
	for i := range n.entries {
		e := &n.entries[i]
		if !e.rect.Intersects(w) {
			continue
		}
		if n.leaf {
			if !fn(e.item) {
				return false
			}
		} else if !t.searchNode(e.child, w, fn) {
			return false
		}
	}
	return true
}

// SearchSegment invokes fn for every stored item whose rectangle intersects
// the segment s (exact, not just MBR-of-segment). Used by the visibility
// graph to find obstacles blocking a candidate sight line.
func (t *Tree) SearchSegment(s geom.Segment, fn func(Item) bool) {
	if t.size == 0 {
		return
	}
	t.searchSegNode(t.root, s, fn)
}

func (t *Tree) searchSegNode(n *node, s geom.Segment, fn func(Item) bool) bool {
	t.visit(n)
	for i := range n.entries {
		e := &n.entries[i]
		if !e.rect.IntersectsSegment(s) {
			continue
		}
		if n.leaf {
			if !fn(e.item) {
				return false
			}
		} else if !t.searchSegNode(e.child, s, fn) {
			return false
		}
	}
	return true
}

// All invokes fn for every stored item.
func (t *Tree) All(fn func(Item) bool) {
	if t.size == 0 {
		return
	}
	t.searchNode(t.root, t.root.mbr(), fn)
}

// DistanceTarget is anything entries can be distance-ordered against.
// The paper orders candidates by mindist to the query line segment; point
// queries (the ONN baseline) use a degenerate target.
type DistanceTarget interface {
	// DistToRect returns the minimum distance from the target to r.
	DistToRect(r geom.Rect) float64
}

// SegmentTarget orders by mindist(rect, segment) — the paper's metric.
type SegmentTarget struct{ Seg geom.Segment }

// DistToRect implements DistanceTarget.
func (s SegmentTarget) DistToRect(r geom.Rect) float64 { return r.DistToSegment(s.Seg) }

// PointTarget orders by mindist(rect, point).
type PointTarget struct{ P geom.Point }

// DistToRect implements DistanceTarget.
func (p PointTarget) DistToRect(r geom.Rect) float64 { return r.DistToPoint(p.P) }

// NearestIter is an incremental best-first traversal (Hjaltason & Samet,
// TODS 1999) producing stored items in non-decreasing distance order from a
// target. It is the engine behind Algorithm 4's data-point ordering and
// Algorithm 1's obstacle heap Ho.
type NearestIter struct {
	t      *Tree
	target DistanceTarget
	heap   minheap.Heap[entry]
}

// NewNearestIter starts a best-first traversal of t ordered by distance to
// target.
func (t *Tree) NewNearestIter(target DistanceTarget) *NearestIter {
	it := &NearestIter{t: t, target: target}
	if t.size > 0 {
		it.heap.Push(target.DistToRect(t.root.mbr()), entry{child: t.root})
	}
	return it
}

// pushChild enqueues one node entry: internal nodes with tie key 0, items
// with their (Kind, ID) tie key. A node's mindist lower-bounds every item it
// contains, so expanding nodes first at equal distance surfaces all
// equal-distance items before any is emitted; the item tie key then fixes
// their order. See Item.TieKey.
func (it *NearestIter) pushChild(n *node, ce *entry) {
	cd := it.target.DistToRect(ce.rect)
	if n.leaf {
		it.heap.PushTie(cd, ce.item.TieKey(), *ce)
	} else {
		it.heap.PushTie(cd, 0, *ce)
	}
}

// Next returns the next item in distance order. ok is false when the tree is
// exhausted.
func (it *NearestIter) Next() (item Item, dist float64, ok bool) {
	for !it.heap.Empty() {
		d, e := it.heap.Pop()
		if e.child == nil {
			return e.item, d, true
		}
		n := e.child
		it.t.visit(n)
		for i := range n.entries {
			it.pushChild(n, &n.entries[i])
		}
	}
	return Item{}, 0, false
}

// PeekDist returns the lower bound on the distance of the next item, or
// ok=false when exhausted. Algorithm 4's Lemma 2 check compares this bound
// against RLMAX without popping.
func (it *NearestIter) PeekDist() (float64, bool) {
	for !it.heap.Empty() {
		d, e := it.heap.Peek()
		if e.child == nil {
			return d, true
		}
		// Expand internal nodes until an item is at the top; the popped
		// bound is still valid because children are pushed with their own
		// (>=) distances.
		it.heap.Pop()
		n := e.child
		it.t.visit(n)
		for i := range n.entries {
			it.pushChild(n, &n.entries[i])
		}
		_ = d
	}
	return 0, false
}
