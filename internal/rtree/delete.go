package rtree

import "connquery/internal/geom"

// Delete removes the item with the given ID and rectangle. It reports
// whether a matching item was found. Underflowing nodes are dissolved and
// their remaining entries reinserted (the classic condense-tree step).
func (t *Tree) Delete(it Item) bool {
	path, idx := t.findLeaf(t.root, nil, it)
	if path == nil {
		return false
	}
	// The search may have traversed shared nodes; make the whole path
	// writable before condensation mutates it (no-op on in-place trees).
	path = t.shadowPath(path)
	leaf := path[len(path)-1]
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.condense(path)
	// Shrink the root when it has a single child and is not a leaf.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.height--
	}
	return true
}

func (t *Tree) findLeaf(n *node, path []*node, it Item) ([]*node, int) {
	t.visit(n)
	path = append(path, n)
	if n.leaf {
		for i, e := range n.entries {
			if e.item.ID == it.ID && e.item.Kind == it.Kind && rectsEq(e.rect, it.Rect) {
				return path, i
			}
		}
		return nil, 0
	}
	for _, e := range n.entries {
		if e.rect.ContainsRect(it.Rect) {
			if p, i := t.findLeaf(e.child, path, it); p != nil {
				return p, i
			}
		}
	}
	return nil, 0
}

func rectsEq(a, b geom.Rect) bool {
	return a.MinX == b.MinX && a.MinY == b.MinY && a.MaxX == b.MaxX && a.MaxY == b.MaxY
}

// condense walks the deletion path bottom-up, removing underflowing nodes
// and collecting their entries for reinsertion at the appropriate level.
func (t *Tree) condense(path []*node) {
	type orphan struct {
		e     entry
		level int
	}
	var orphans []orphan
	for i := len(path) - 1; i >= 1; i-- {
		n, parent := path[i], path[i-1]
		if len(n.entries) < t.minEntries {
			// Remove n from its parent and orphan its entries.
			for j := range parent.entries {
				if parent.entries[j].child == n {
					parent.entries = append(parent.entries[:j], parent.entries[j+1:]...)
					break
				}
			}
			lvl := t.height - i
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e, lvl})
			}
		} else {
			// Tighten the parent's MBR for n.
			for j := range parent.entries {
				if parent.entries[j].child == n {
					parent.entries[j].rect = n.mbr()
					break
				}
			}
		}
	}
	for _, o := range orphans {
		reinserted := make([]bool, t.height+1)
		if o.level == 1 {
			t.insertAtLevel(o.e, 1, reinserted)
		} else {
			// Subtree reinsertion at its original level; if the tree has
			// shrunk below that level, reinsert the subtree's items.
			if o.level < t.height {
				t.insertAtLevel(o.e, o.level, reinserted)
			} else {
				t.reinsertSubtreeItems(o.e.child)
			}
		}
	}
}

func (t *Tree) reinsertSubtreeItems(n *node) {
	if n.leaf {
		for _, e := range n.entries {
			reinserted := make([]bool, t.height+1)
			t.insertAtLevel(entry{rect: e.rect, item: e.item}, 1, reinserted)
		}
		return
	}
	for _, e := range n.entries {
		t.reinsertSubtreeItems(e.child)
	}
}
