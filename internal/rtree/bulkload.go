package rtree

import (
	"math"
	"slices"
)

// BulkLoad builds the tree from scratch using Sort-Tile-Recursive (STR)
// packing (Leutenegger, Lopez & Edgington, ICDE 1997). Existing contents are
// discarded. STR yields near-full leaves and low overlap, which is how the
// experiment harness builds the large P and O indexes quickly; subsequent
// Insert/Delete calls maintain R*-tree semantics.
func (t *Tree) BulkLoad(items []Item) {
	t.root = t.newNode(true)
	t.height = 1
	t.size = 0
	if len(items) == 0 {
		return
	}

	entries := make([]entry, len(items))
	for i, it := range items {
		entries[i] = entry{rect: it.Rect, item: it}
	}
	level := t.packLevel(entries, true)
	for len(level) > 1 {
		parentEntries := make([]entry, len(level))
		for i, n := range level {
			parentEntries[i] = entry{rect: n.mbr(), child: n}
		}
		level = t.packLevel(parentEntries, false)
		t.height++
	}
	t.root = level[0]
	t.size = len(items)
}

// packLevel tiles entries into nodes of up to maxEntries each using STR.
func (t *Tree) packLevel(entries []entry, leaf bool) []*node {
	cap := t.maxEntries
	n := len(entries)
	nodeCount := int(math.Ceil(float64(n) / float64(cap)))
	sliceCount := int(math.Ceil(math.Sqrt(float64(nodeCount))))
	sliceSize := sliceCount * cap

	slices.SortStableFunc(entries, func(a, b entry) int {
		switch ax, bx := a.rect.Center().X, b.rect.Center().X; {
		case ax < bx:
			return -1
		case ax > bx:
			return 1
		}
		return 0
	})

	var nodes []*node
	for start := 0; start < n; start += sliceSize {
		end := start + sliceSize
		if end > n {
			end = n
		}
		slice := entries[start:end]
		slices.SortStableFunc(slice, func(a, b entry) int {
			switch ay, by := a.rect.Center().Y, b.rect.Center().Y; {
			case ay < by:
				return -1
			case ay > by:
				return 1
			}
			return 0
		})
		for s := 0; s < len(slice); s += cap {
			e := s + cap
			if e > len(slice) {
				e = len(slice)
			}
			nd := t.newNode(leaf)
			nd.entries = append([]entry(nil), slice[s:e]...)
			nodes = append(nodes, nd)
		}
	}
	// Every node except the level's last is packed to exactly cap entries
	// (non-final slices have sliceCount*cap entries, and within a slice only
	// the trailing node can be short). When the last node underflows, steal
	// from its predecessor so the R*-tree minimum-fill invariant holds for
	// every non-root node; a lone node is fine — it becomes the root.
	if last := len(nodes) - 1; last > 0 && len(nodes[last].entries) < t.minEntries {
		prev, tail := nodes[last-1], nodes[last]
		need := t.minEntries - len(tail.entries)
		moveFrom := len(prev.entries) - need
		tail.entries = append(append([]entry(nil), prev.entries[moveFrom:]...), tail.entries...)
		prev.entries = prev.entries[:moveFrom]
	}
	return nodes
}
