package rtree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"connquery/internal/geom"
)

// genItems is a quick.Generator producing a random item batch in the
// paper's coordinate domain.
type genItems []Item

// Generate implements quick.Generator.
func (genItems) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(400)
	items := make([]Item, n)
	for i := range items {
		if r.Intn(2) == 0 {
			items[i] = PointItem(int32(i), geom.Pt(r.Float64()*10000, r.Float64()*10000))
		} else {
			lo := geom.Pt(r.Float64()*10000, r.Float64()*10000)
			items[i] = ObstacleItem(int32(i), geom.R(lo.X, lo.Y, lo.X+r.Float64()*300, lo.Y+r.Float64()*300))
		}
	}
	return reflect.ValueOf(genItems(items))
}

type genWindow geom.Rect

// Generate implements quick.Generator.
func (genWindow) Generate(r *rand.Rand, size int) reflect.Value {
	lo := geom.Pt(r.Float64()*10000, r.Float64()*10000)
	return reflect.ValueOf(genWindow(geom.R(lo.X, lo.Y, lo.X+r.Float64()*4000, lo.Y+r.Float64()*4000)))
}

func qcfg() *quick.Config {
	return &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(83))}
}

// Window search over a bulk-loaded tree must equal a linear scan.
func TestQuickSearchEqualsLinearScan(t *testing.T) {
	f := func(items genItems, w genWindow) bool {
		tr := New(Options{PageSize: 512})
		tr.BulkLoad(items)
		got := map[int32]Kind{}
		tr.Search(geom.Rect(w), func(it Item) bool {
			got[it.ID] = it.Kind
			return true
		})
		for _, it := range items {
			_, in := got[it.ID]
			if in != it.Rect.Intersects(geom.Rect(w)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

// The nearest iterator must produce exactly the stored items, in
// non-decreasing distance order, regardless of the input batch.
func TestQuickNearestIterTotalOrder(t *testing.T) {
	f := func(items genItems) bool {
		tr := New(Options{PageSize: 512})
		tr.BulkLoad(items)
		q := geom.Seg(geom.Pt(2500, 2500), geom.Pt(7500, 6000))
		it := tr.NewNearestIter(SegmentTarget{q})
		prev := -1.0
		count := 0
		for {
			_, d, ok := it.Next()
			if !ok {
				break
			}
			if d < prev-1e-9 {
				return false
			}
			prev = d
			count++
		}
		return count == len(items)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

// Insert-built and bulk-loaded trees must hold invariants for any batch.
func TestQuickInvariantsBothBuilds(t *testing.T) {
	f := func(items genItems) bool {
		bulk := New(Options{PageSize: 512})
		bulk.BulkLoad(items)
		if err := bulk.CheckInvariants(); err != nil {
			t.Logf("bulk: %v", err)
			return false
		}
		incr := New(Options{PageSize: 512})
		for _, it := range items {
			incr.Insert(it)
		}
		if err := incr.CheckInvariants(); err != nil {
			t.Logf("incr: %v", err)
			return false
		}
		return bulk.Size() == incr.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(89))}); err != nil {
		t.Error(err)
	}
}
