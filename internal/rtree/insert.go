package rtree

import (
	"math"
	"slices"

	"connquery/internal/geom"
)

// Insert adds one item using the R*-tree insertion algorithm (ChooseSubtree,
// forced reinsertion on first overflow per level, R*-split otherwise).
func (t *Tree) Insert(it Item) {
	// reinserted[level] records whether forced reinsertion already ran at
	// that level during this insertion (the R* "first overflow" rule).
	reinserted := make([]bool, t.height+1)
	t.insertAtLevel(entry{rect: it.Rect, item: it}, 1, reinserted)
	t.size++
}

// insertAtLevel places e so that it ends up at the given level
// (1 = leaf level). Reinsertion uses higher levels for orphaned subtrees.
func (t *Tree) insertAtLevel(e entry, level int, reinserted []bool) {
	leafPath := t.choosePath(e.rect, level)
	n := leafPath[len(leafPath)-1]
	n.entries = append(n.entries, e)
	t.adjustPath(leafPath, e.rect)
	if len(n.entries) > t.maxEntries {
		t.overflowTreatment(leafPath, level, reinserted)
	}
}

// choosePath descends from the root to the node at the target level
// (counted from the leaves, leaf = 1), returning the visited path. Every
// node on the path is made writable (shadow-copied under a CloneCOW handle)
// up front: the caller will at minimum grow its MBR via adjustPath.
func (t *Tree) choosePath(r geom.Rect, level int) []*node {
	path := make([]*node, 0, t.height)
	n := t.shadowRoot()
	depth := t.height
	for {
		t.visit(n)
		path = append(path, n)
		if depth == level {
			return path
		}
		var idx int
		if depth == level+1 {
			// Children are at the target level: minimize overlap enlargement
			// (the R* leaf-level rule).
			idx = chooseLeastOverlap(n.entries, r)
		} else {
			idx = chooseLeastEnlargement(n.entries, r)
		}
		n = t.shadowChild(n, idx)
		depth--
	}
}

// adjustPath grows the parent entries' MBRs along the insertion path.
func (t *Tree) adjustPath(path []*node, r geom.Rect) {
	for i := len(path) - 2; i >= 0; i-- {
		parent, child := path[i], path[i+1]
		for j := range parent.entries {
			if parent.entries[j].child == child {
				parent.entries[j].rect = parent.entries[j].rect.Union(r)
				break
			}
		}
	}
}

// recomputePathMBRs recomputes exact MBRs bottom-up along a path (needed
// after removals during reinsert/split).
func (t *Tree) recomputePathMBRs(path []*node) {
	for i := len(path) - 2; i >= 0; i-- {
		parent, child := path[i], path[i+1]
		for j := range parent.entries {
			if parent.entries[j].child == child {
				parent.entries[j].rect = child.mbr()
				break
			}
		}
	}
}

func (t *Tree) overflowTreatment(path []*node, level int, reinserted []bool) {
	n := path[len(path)-1]
	isRoot := n == t.root
	if !isRoot && level < len(reinserted) && !reinserted[level] {
		reinserted[level] = true
		t.reinsert(path, level, reinserted)
		return
	}
	t.splitNode(path, level, reinserted)
}

// reinsert removes the p entries whose centers are farthest from the node's
// MBR center and re-inserts them (far-first, the R* "close reinsert" uses
// near-first; far-first empirically performs similarly and matches the
// original paper's alternative; we keep far-first for determinism).
func (t *Tree) reinsert(path []*node, level int, reinserted []bool) {
	n := path[len(path)-1]
	center := n.mbr().Center()
	type distEntry struct {
		d float64
		e entry
	}
	des := make([]distEntry, len(n.entries))
	for i, e := range n.entries {
		des[i] = distEntry{geom.Dist2(e.rect.Center(), center), e}
	}
	slices.SortStableFunc(des, func(a, b distEntry) int {
		switch {
		case a.d > b.d:
			return -1
		case a.d < b.d:
			return 1
		}
		return 0
	})
	p := int(math.Ceil(reinsertFraction * float64(len(des))))
	if p < 1 {
		p = 1
	}
	removed := make([]entry, p)
	for i := 0; i < p; i++ {
		removed[i] = des[i].e
	}
	n.entries = n.entries[:0]
	for i := p; i < len(des); i++ {
		n.entries = append(n.entries, des[i].e)
	}
	t.recomputePathMBRs(path)
	for _, e := range removed {
		t.insertAtLevel(e, level, reinserted)
	}
}

// splitNode splits the overflowing node at the end of path using the
// R*-split (axis by minimum margin sum, distribution by minimum overlap).
func (t *Tree) splitNode(path []*node, level int, reinserted []bool) {
	n := path[len(path)-1]
	left, right := t.rstarSplit(n)

	if n == t.root {
		newRoot := t.newNode(false)
		newRoot.entries = []entry{
			{rect: left.mbr(), child: left},
			{rect: right.mbr(), child: right},
		}
		t.root = newRoot
		t.height++
		return
	}

	parent := path[len(path)-2]
	// Replace the parent entry for n with left; append right.
	for j := range parent.entries {
		if parent.entries[j].child == n {
			parent.entries[j] = entry{rect: left.mbr(), child: left}
			break
		}
	}
	parent.entries = append(parent.entries, entry{rect: right.mbr(), child: right})
	t.recomputePathMBRs(path[:len(path)-1])
	if len(parent.entries) > t.maxEntries {
		t.overflowTreatment(path[:len(path)-1], level+1, reinserted)
	}
}

// rstarSplit distributes n's entries into two new nodes per the R*-split.
// n's page is reused as the left node to keep page IDs stable.
func (t *Tree) rstarSplit(n *node) (left, right *node) {
	entries := n.entries
	axis := chooseSplitAxis(entries, t.minEntries)
	k := chooseSplitIndex(entries, axis, t.minEntries)

	sortEntriesByAxis(entries, axis)
	leftEntries := append([]entry(nil), entries[:k]...)
	rightEntries := append([]entry(nil), entries[k:]...)

	n.entries = leftEntries
	right = t.newNode(n.leaf)
	right.entries = rightEntries
	return n, right
}

// chooseSplitAxis returns 0..3 encoding (axis, sort-by-lower/upper) with the
// minimal margin sum over all legal distributions.
func chooseSplitAxis(entries []entry, minEntries int) int {
	best, bestMargin := 0, math.Inf(1)
	tmp := append([]entry(nil), entries...)
	for axis := 0; axis < 4; axis++ {
		sortEntriesByAxis(tmp, axis)
		margin := 0.0
		for k := minEntries; k <= len(tmp)-minEntries; k++ {
			margin += mbrOf(tmp[:k]).Margin() + mbrOf(tmp[k:]).Margin()
		}
		if margin < bestMargin {
			bestMargin = margin
			best = axis
		}
	}
	return best
}

// chooseSplitIndex returns the split position k minimizing overlap area
// (ties by combined area) along the chosen axis.
func chooseSplitIndex(entries []entry, axis, minEntries int) int {
	tmp := append([]entry(nil), entries...)
	sortEntriesByAxis(tmp, axis)
	bestK, bestOverlap, bestArea := minEntries, math.Inf(1), math.Inf(1)
	for k := minEntries; k <= len(tmp)-minEntries; k++ {
		l, r := mbrOf(tmp[:k]), mbrOf(tmp[k:])
		ov := l.OverlapArea(r)
		area := l.Area() + r.Area()
		if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, ov, area
		}
	}
	return bestK
}

func sortEntriesByAxis(entries []entry, axis int) {
	slices.SortStableFunc(entries, func(ea, eb entry) int {
		a, b := ea.rect, eb.rect
		var p, s float64 // primary and secondary keys (a - b)
		switch axis {
		case 0:
			p, s = a.MinX-b.MinX, a.MaxX-b.MaxX
		case 1:
			p, s = a.MaxX-b.MaxX, a.MinX-b.MinX
		case 2:
			p, s = a.MinY-b.MinY, a.MaxY-b.MaxY
		default:
			p, s = a.MaxY-b.MaxY, a.MinY-b.MinY
		}
		if p == 0 {
			p = s
		}
		switch {
		case p < 0:
			return -1
		case p > 0:
			return 1
		}
		return 0
	})
}

func mbrOf(entries []entry) geom.Rect {
	r := geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}
	for _, e := range entries {
		r = r.Union(e.rect)
	}
	return r
}

// chooseLeastEnlargement picks the entry needing minimal area enlargement to
// include r (ties by smaller area).
func chooseLeastEnlargement(entries []entry, r geom.Rect) int {
	best, bestEnl, bestArea := 0, math.Inf(1), math.Inf(1)
	for i, e := range entries {
		area := e.rect.Area()
		enl := e.rect.Union(r).Area() - area
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// chooseLeastOverlap picks the entry whose enlargement to include r causes
// the minimal increase of overlap with sibling entries (ties by enlargement,
// then area) — the R* rule for the level above the leaves.
func chooseLeastOverlap(entries []entry, r geom.Rect) int {
	best := 0
	bestOv, bestEnl, bestArea := math.Inf(1), math.Inf(1), math.Inf(1)
	for i, e := range entries {
		grown := e.rect.Union(r)
		var ovBefore, ovAfter float64
		for j, s := range entries {
			if i == j {
				continue
			}
			ovBefore += e.rect.OverlapArea(s.rect)
			ovAfter += grown.OverlapArea(s.rect)
		}
		dOv := ovAfter - ovBefore
		enl := grown.Area() - e.rect.Area()
		area := e.rect.Area()
		if dOv < bestOv || (dOv == bestOv && (enl < bestEnl || (enl == bestEnl && area < bestArea))) {
			best, bestOv, bestEnl, bestArea = i, dOv, enl, area
		}
	}
	return best
}
