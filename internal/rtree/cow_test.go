package rtree

import (
	"fmt"
	"math/rand"
	"testing"

	"connquery/internal/geom"
)

// collect returns every stored item keyed by "kind/id" for set comparison.
func collect(t *testing.T, tr *Tree) map[string]Item {
	t.Helper()
	out := make(map[string]Item, tr.Size())
	tr.All(func(it Item) bool {
		out[fmt.Sprintf("%d/%d", it.Kind, it.ID)] = it
		return true
	})
	if len(out) != tr.Size() {
		t.Fatalf("All visited %d items, Size reports %d", len(out), tr.Size())
	}
	return out
}

func sameItems(t *testing.T, got, want map[string]Item, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d items, want %d", label, len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok || g.Rect != w.Rect {
			t.Fatalf("%s: item %s = %+v, want %+v", label, k, g, w)
		}
	}
}

// TestCloneCOWIsolation mutates a COW clone heavily and checks that the
// original tree is bit-for-bit unaffected while the clone matches an
// identically mutated in-place reference tree.
func TestCloneCOWIsolation(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	base := New(Options{PageSize: 256}) // small fanout: deep tree, many splits
	ref := New(Options{PageSize: 256})
	items := make([]Item, 400)
	for i := range items {
		p := geom.Pt(r.Float64()*1000, r.Float64()*1000)
		items[i] = PointItem(int32(i), p)
		base.Insert(items[i])
		ref.Insert(items[i])
	}
	before := collect(t, base)

	cow := base.CloneCOW()
	// Interleave inserts and deletes on the clone and the reference.
	next := int32(len(items))
	for i := 0; i < 300; i++ {
		if i%3 != 0 {
			it := PointItem(next, geom.Pt(r.Float64()*1000, r.Float64()*1000))
			next++
			cow.Insert(it)
			ref.Insert(it)
		} else {
			victim := items[r.Intn(len(items))]
			if cow.Delete(victim) != ref.Delete(victim) {
				t.Fatalf("delete divergence on %+v", victim)
			}
		}
	}

	if err := base.CheckInvariants(); err != nil {
		t.Fatalf("original invariants after COW mutations: %v", err)
	}
	if err := cow.CheckInvariants(); err != nil {
		t.Fatalf("clone invariants: %v", err)
	}
	sameItems(t, collect(t, base), before, "original after clone mutations")
	sameItems(t, collect(t, cow), collect(t, ref), "clone vs in-place reference")
	if cow.Size() != ref.Size() || cow.Height() != ref.Height() {
		t.Fatalf("clone size/height %d/%d, reference %d/%d", cow.Size(), cow.Height(), ref.Size(), ref.Height())
	}
}

// TestCloneCOWChainAndFork advances a chain of versions and forks it,
// verifying every retained version still answers window queries exactly.
func TestCloneCOWChainAndFork(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cur := New(Options{PageSize: 256})
	for i := 0; i < 120; i++ {
		cur.Insert(PointItem(int32(i), geom.Pt(r.Float64()*100, r.Float64()*100)))
	}
	type snap struct {
		tree *Tree
		want map[string]Item
	}
	snaps := []snap{{cur, collect(t, cur)}}
	next := int32(120)
	for v := 0; v < 8; v++ {
		cur = cur.CloneCOW()
		for i := 0; i < 25; i++ {
			cur.Insert(PointItem(next, geom.Pt(r.Float64()*100, r.Float64()*100)))
			next++
		}
		// Delete a few known survivors.
		var victims []Item
		cur.All(func(it Item) bool {
			if it.ID%7 == int32(v) {
				victims = append(victims, it)
			}
			return len(victims) < 5
		})
		for _, it := range victims {
			if !cur.Delete(it) {
				t.Fatalf("version %d: failed to delete live item %+v", v, it)
			}
		}
		snaps = append(snaps, snap{cur, collect(t, cur)})
	}
	// Fork the middle version twice and mutate both forks differently.
	mid := snaps[4].tree
	fa, fb := mid.CloneCOW(), mid.CloneCOW()
	for i := 0; i < 40; i++ {
		fa.Insert(PointItem(next, geom.Pt(r.Float64()*100, r.Float64()*100)))
		next++
		fb.Insert(ObstacleItem(next, geom.R(r.Float64()*90, r.Float64()*90, r.Float64()*90+5, r.Float64()*90+5)))
		next++
	}
	if err := fa.CheckInvariants(); err != nil {
		t.Fatalf("fork A invariants: %v", err)
	}
	if err := fb.CheckInvariants(); err != nil {
		t.Fatalf("fork B invariants: %v", err)
	}
	// Every snapshot must be unchanged by all later mutations and forks.
	for i, s := range snaps {
		if err := s.tree.CheckInvariants(); err != nil {
			t.Fatalf("version %d invariants: %v", i, err)
		}
		sameItems(t, collect(t, s.tree), s.want, fmt.Sprintf("version %d", i))
	}
}

// TestCloneCOWConcurrentReads mutates a clone while readers traverse the
// original from other goroutines; run under -race this proves writers never
// touch shared nodes.
func TestCloneCOWConcurrentReads(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	base := New(Options{PageSize: 512})
	for i := 0; i < 500; i++ {
		base.Insert(PointItem(int32(i), geom.Pt(r.Float64()*1000, r.Float64()*1000)))
	}
	want := base.Size()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				n := 0
				base.Search(geom.R(0, 0, 1000, 1000), func(Item) bool { n++; return true })
				if n != want {
					t.Errorf("reader saw %d items, want %d", n, want)
					return
				}
			}
		}()
	}
	cow := base.CloneCOW()
	next := int32(500)
	for i := 0; i < 400; i++ {
		cow.Insert(PointItem(next, geom.Pt(r.Float64()*1000, r.Float64()*1000)))
		next++
		if i%4 == 0 {
			cow.Delete(PointItem(int32(i), geom.Pt(0, 0))) // mostly misses; exercises findLeaf on shared nodes
		}
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
