package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"connquery/internal/geom"
)

func randPoints(r *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(r.Float64()*10000, r.Float64()*10000)
	}
	return pts
}

func buildPointTree(t *testing.T, pts []geom.Point, bulk bool) *Tree {
	t.Helper()
	tr := New(Options{})
	if bulk {
		items := make([]Item, len(pts))
		for i, p := range pts {
			items[i] = PointItem(int32(i), p)
		}
		tr.BulkLoad(items)
	} else {
		for i, p := range pts {
			tr.Insert(PointItem(int32(i), p))
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	return tr
}

func TestEmptyTree(t *testing.T) {
	tr := New(Options{})
	if tr.Size() != 0 || tr.Height() != 1 {
		t.Fatalf("size=%d height=%d", tr.Size(), tr.Height())
	}
	tr.Search(geom.R(0, 0, 1, 1), func(Item) bool { t.Fatal("item in empty tree"); return true })
	it := tr.NewNearestIter(PointTarget{geom.Pt(0, 0)})
	if _, _, ok := it.Next(); ok {
		t.Fatal("Next on empty tree returned an item")
	}
	if _, ok := it.PeekDist(); ok {
		t.Fatal("PeekDist on empty tree returned a bound")
	}
}

func TestFanoutFromPageSize(t *testing.T) {
	tr := New(Options{PageSize: 4096})
	if got := tr.Fanout(); got != 4096/entrySize {
		t.Fatalf("fanout = %d, want %d", got, 4096/entrySize)
	}
	small := New(Options{PageSize: 64})
	if small.Fanout() < 4 {
		t.Fatalf("tiny page fanout = %d, want >= 4", small.Fanout())
	}
}

func TestInsertSearchRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := randPoints(r, 2000)
	tr := buildPointTree(t, pts, false)
	if tr.Size() != 2000 {
		t.Fatalf("Size = %d", tr.Size())
	}
	w := geom.R(2000, 2000, 5000, 5000)
	got := map[int32]bool{}
	tr.Search(w, func(it Item) bool { got[it.ID] = true; return true })
	for i, p := range pts {
		want := w.Contains(p)
		if got[int32(i)] != want {
			t.Fatalf("point %d (%v): in result %v, want %v", i, p, got[int32(i)], want)
		}
	}
}

func TestBulkLoadMatchesInsertResults(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randPoints(r, 3000)
	bulk := buildPointTree(t, pts, true)
	incr := buildPointTree(t, pts, false)
	for trial := 0; trial < 20; trial++ {
		c := geom.Pt(r.Float64()*10000, r.Float64()*10000)
		w := geom.R(c.X, c.Y, c.X+r.Float64()*2000, c.Y+r.Float64()*2000)
		a, b := map[int32]bool{}, map[int32]bool{}
		bulk.Search(w, func(it Item) bool { a[it.ID] = true; return true })
		incr.Search(w, func(it Item) bool { b[it.ID] = true; return true })
		if len(a) != len(b) {
			t.Fatalf("window %v: bulk %d vs incr %d results", w, len(a), len(b))
		}
		for id := range a {
			if !b[id] {
				t.Fatalf("window %v: id %d only in bulk tree", w, id)
			}
		}
	}
}

func TestBulkLoadSmall(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 50, 102, 103, 500} {
		r := rand.New(rand.NewSource(int64(n)))
		pts := randPoints(r, n)
		tr := buildPointTree(t, pts, true)
		if tr.Size() != n {
			t.Fatalf("n=%d: Size = %d", n, tr.Size())
		}
		count := 0
		tr.All(func(Item) bool { count++; return true })
		if count != n {
			t.Fatalf("n=%d: All visited %d", n, count)
		}
	}
}

func TestNearestIterOrderedAndComplete(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randPoints(r, 1500)
	tr := buildPointTree(t, pts, true)
	q := geom.Seg(geom.Pt(1000, 1000), geom.Pt(4000, 2500))

	// Ground truth: sort by exact distance to the segment.
	type pd struct {
		id int32
		d  float64
	}
	want := make([]pd, len(pts))
	for i, p := range pts {
		want[i] = pd{int32(i), q.DistToPoint(p)}
	}
	sort.Slice(want, func(i, j int) bool { return want[i].d < want[j].d })

	it := tr.NewNearestIter(SegmentTarget{q})
	prev := -1.0
	n := 0
	for {
		item, d, ok := it.Next()
		if !ok {
			break
		}
		if d < prev-1e-9 {
			t.Fatalf("distance order violated: %v after %v", d, prev)
		}
		prev = d
		if got := q.DistToPoint(item.Point()); got != d {
			// Leaf entries are points, so mindist(rect, q) == dist(point, q).
			if diff := got - d; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("distance mismatch for %d: %v vs %v", item.ID, got, d)
			}
		}
		if diff := d - want[n].d; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("rank %d: dist %v, want %v", n, d, want[n].d)
		}
		n++
	}
	if n != len(pts) {
		t.Fatalf("iterator yielded %d of %d items", n, len(pts))
	}
}

func TestPeekDistLowerBound(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randPoints(r, 800)
	tr := buildPointTree(t, pts, true)
	target := PointTarget{geom.Pt(5000, 5000)}
	it := tr.NewNearestIter(target)
	for {
		bound, ok := it.PeekDist()
		if !ok {
			break
		}
		_, d, ok2 := it.Next()
		if !ok2 {
			t.Fatal("PeekDist said more items but Next disagreed")
		}
		if d < bound-1e-9 {
			t.Fatalf("PeekDist %v exceeded actual next dist %v", bound, d)
		}
	}
}

func TestDelete(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := randPoints(r, 1200)
	tr := buildPointTree(t, pts, false)

	// Delete a random half.
	perm := r.Perm(len(pts))
	deleted := map[int32]bool{}
	for _, i := range perm[:600] {
		if !tr.Delete(PointItem(int32(i), pts[i])) {
			t.Fatalf("Delete(%d) not found", i)
		}
		deleted[int32(i)] = true
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after delete: %v", err)
	}
	if tr.Size() != 600 {
		t.Fatalf("Size = %d", tr.Size())
	}
	// Deleting again fails.
	if tr.Delete(PointItem(int32(perm[0]), pts[perm[0]])) {
		t.Fatal("double delete succeeded")
	}
	// Remaining points all present.
	found := map[int32]bool{}
	tr.All(func(it Item) bool { found[it.ID] = true; return true })
	for i := range pts {
		want := !deleted[int32(i)]
		if found[int32(i)] != want {
			t.Fatalf("point %d presence = %v, want %v", i, found[int32(i)], want)
		}
	}
}

func TestDeleteAll(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	pts := randPoints(r, 300)
	tr := buildPointTree(t, pts, false)
	for i, p := range pts {
		if !tr.Delete(PointItem(int32(i), p)) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Size() != 0 {
		t.Fatalf("Size = %d after deleting all", tr.Size())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestRectangleItemsAndSegmentSearch(t *testing.T) {
	tr := New(Options{})
	rects := []geom.Rect{
		geom.R(0, 0, 10, 10),
		geom.R(20, 20, 30, 30),
		geom.R(50, 0, 60, 100),
		geom.R(5, 40, 15, 50),
	}
	for i, rc := range rects {
		tr.Insert(ObstacleItem(int32(i), rc))
	}
	// Segment passing through rects 0 and 2 only.
	s := geom.Seg(geom.Pt(-5, 5), geom.Pt(70, 5))
	got := map[int32]bool{}
	tr.SearchSegment(s, func(it Item) bool { got[it.ID] = true; return true })
	if !got[0] || !got[2] || got[1] || got[3] {
		t.Fatalf("SearchSegment hit set = %v", got)
	}
}

func TestAccessCounting(t *testing.T) {
	counter := &countRecorder{}
	tr := New(Options{Access: counter})
	r := rand.New(rand.NewSource(7))
	for i, p := range randPoints(r, 500) {
		tr.Insert(PointItem(int32(i), p))
	}
	insertAccesses := counter.n
	if insertAccesses == 0 {
		t.Fatal("inserts recorded no page accesses")
	}
	counter.n = 0
	tr.Search(geom.R(0, 0, 10000, 10000), func(Item) bool { return true })
	if counter.n != int64(tr.NumNodes())-int64(deadNodes(tr)) && counter.n <= 0 {
		t.Fatalf("full search accesses = %d", counter.n)
	}
	counter.n = 0
	tr.Search(geom.R(0, 0, 1, 1), func(Item) bool { return true })
	if counter.n < 1 || counter.n > int64(tr.Height()*4) {
		t.Fatalf("tiny window accesses = %d, expected around tree height", counter.n)
	}
}

// deadNodes estimates nodes allocated but no longer referenced (after
// splits the old pages are reused, so this is 0; kept for clarity).
func deadNodes(*Tree) int { return 0 }

type countRecorder struct{ n int64 }

func (c *countRecorder) RecordAccess(int64) { c.n++ }

func TestPropInsertManyInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 5; trial++ {
		tr := New(Options{PageSize: 256}) // small fanout stresses splits
		n := 200 + r.Intn(800)
		pts := randPoints(r, n)
		for i, p := range pts {
			tr.Insert(PointItem(int32(i), p))
			if i%97 == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("trial %d after %d inserts: %v", trial, i+1, err)
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPropMixedInsertDelete(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	tr := New(Options{PageSize: 256})
	live := map[int32]geom.Point{}
	next := int32(0)
	for step := 0; step < 3000; step++ {
		if len(live) == 0 || r.Float64() < 0.6 {
			p := geom.Pt(r.Float64()*10000, r.Float64()*10000)
			tr.Insert(PointItem(next, p))
			live[next] = p
			next++
		} else {
			// Delete a random live point.
			var id int32
			for k := range live {
				id = k
				break
			}
			if !tr.Delete(PointItem(id, live[id])) {
				t.Fatalf("step %d: delete %d failed", step, id)
			}
			delete(live, id)
		}
		if step%211 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if tr.Size() != len(live) {
				t.Fatalf("step %d: size %d vs model %d", step, tr.Size(), len(live))
			}
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	r := rand.New(rand.NewSource(10))
	pts := randPoints(r, b.N+1)
	tr := New(Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(PointItem(int32(i), pts[i]))
	}
}

func BenchmarkBulkLoad10k(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	pts := randPoints(r, 10000)
	items := make([]Item, len(pts))
	for i, p := range pts {
		items[i] = PointItem(int32(i), p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New(Options{})
		tr.BulkLoad(items)
	}
}

func BenchmarkNearestIterSegment(b *testing.B) {
	r := rand.New(rand.NewSource(12))
	pts := randPoints(r, 50000)
	items := make([]Item, len(pts))
	for i, p := range pts {
		items[i] = PointItem(int32(i), p)
	}
	tr := New(Options{})
	tr.BulkLoad(items)
	q := geom.Seg(geom.Pt(3000, 3000), geom.Pt(3450, 3000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := tr.NewNearestIter(SegmentTarget{q})
		for k := 0; k < 20; k++ {
			it.Next()
		}
	}
}
