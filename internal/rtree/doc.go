// Package rtree implements the R*-tree of Beckmann, Kriegel, Schneider and
// Seeger (SIGMOD 1990), the disk-based spatial index the paper uses for
// both the data set P and the obstacle set O. The implementation is
// in-memory but models disk behaviour the way the paper's experiments do:
// nodes have a page-size-derived fanout (4 KB pages by default) and every
// node visit is counted as one page access through an AccessRecorder,
// optionally filtered through an LRU buffer.
//
// Supported operations: one-by-one R*-insertion with forced reinsertion,
// deletion with tree condensation, window search, incremental best-first
// nearest-neighbour traversal ordered by mindist to a query segment or
// point (Hjaltason & Samet style), and STR bulk loading. Items carry a
// Kind tag (point vs obstacle) so a single unified tree can serve the
// paper's §4.5 one-tree variant.
//
// Two handle variants matter to the layers above:
//
//   - View returns a read-only handle over the same nodes with its own
//     AccessRecorder, giving concurrent readers private page accounting.
//   - CloneCOW returns a copy-on-write handle: Insert/Delete shadow-copy
//     (path-copy) every node they would modify, so older handles keep
//     reading immutable snapshots. This is the substrate for the public
//     API's MVCC versioning; epochs on nodes make in-place mutation safe
//     when a node already belongs to the writing clone.
package rtree
