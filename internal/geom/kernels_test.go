package geom

import (
	"math/rand"
	"testing"
)

// randKernelRect biases toward degenerate and sliver rectangles so the
// equivalence checks exercise the tolerance branches.
func randKernelRect(rng *rand.Rand) Rect {
	x, y := rng.Float64()*100-50, rng.Float64()*100-50
	var w, h float64
	switch rng.Intn(4) {
	case 0:
		w, h = rng.Float64()*40, rng.Float64()*40
	case 1:
		w, h = rng.Float64()*1e-8, rng.Float64()*40
	case 2:
		w, h = rng.Float64()*40, rng.Float64()*1e-8
	default:
		w, h = 0, 0
	}
	return Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
}

func randKernelSegment(rng *rand.Rand, r Rect) Segment {
	pt := func() Point {
		switch rng.Intn(3) {
		case 0: // near or on the rectangle boundary
			v := r.Vertices()[rng.Intn(4)]
			return Point{v.X + (rng.Float64()-0.5)*1e-8, v.Y + (rng.Float64()-0.5)*1e-8}
		case 1: // inside-ish
			return Point{r.MinX + rng.Float64()*(r.Width()+1e-12), r.MinY + rng.Float64()*(r.Height()+1e-12)}
		default:
			return Point{rng.Float64()*120 - 60, rng.Float64()*120 - 60}
		}
	}
	return Segment{A: pt(), B: pt()}
}

// TestScalarKernelsMatchRectMethods proves the flat-argument kernels return
// bit-identical verdicts to the Rect methods they were extracted from; the
// SoA geometry paths rely on this equivalence for exactness.
func TestScalarKernelsMatchRectMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200000; i++ {
		r := randKernelRect(rng)
		s := randKernelSegment(rng, r)

		t0m, t1m, okm := r.ClipSegment(s)
		t0k, t1k, okk := ClipSeg(r.MinX, r.MinY, r.MaxX, r.MaxY, s.A.X, s.A.Y, s.B.X, s.B.Y)
		if okm != okk || t0m != t0k || t1m != t1k {
			t.Fatalf("ClipSeg diverges from ClipSegment for r=%v s=%v: (%v,%v,%v) vs (%v,%v,%v)",
				r, s, t0m, t1m, okm, t0k, t1k, okk)
		}

		want := r.BlocksSegment(s)
		got := BlocksSegLen(r.MinX, r.MinY, r.MaxX, r.MaxY, s.A.X, s.A.Y, s.B.X, s.B.Y, s.Length())
		if want != got {
			t.Fatalf("BlocksSegLen diverges from BlocksSegment for r=%v s=%v: %v vs %v", r, s, want, got)
		}
	}
}
