package geom

import (
	"math"
	"sort"
)

// Visible reports whether points a and b are visible to each other under the
// given rectangular obstacles (Definition 1): the open segment between them
// must not cross any obstacle's open interior.
func Visible(a, b Point, obstacles []Rect) bool {
	s := Segment{a, b}
	for _, o := range obstacles {
		if o.BlocksSegment(s) {
			return false
		}
	}
	return true
}

// Span is a closed sub-interval [Lo, Hi] of the query-segment parameter
// space t in [0, 1].
type Span struct {
	Lo, Hi float64
}

// Len returns the parametric length of the span.
func (sp Span) Len() float64 { return sp.Hi - sp.Lo }

// Empty reports whether the span has (numerically) zero or negative length.
func (sp Span) Empty() bool { return sp.Hi-sp.Lo <= Eps }

// Mid returns the span midpoint parameter.
func (sp Span) Mid() float64 { return (sp.Lo + sp.Hi) / 2 }

// Contains reports whether t lies in the closed span.
func (sp Span) Contains(t float64) bool { return sp.Lo-Eps <= t && t <= sp.Hi+Eps }

// VisibleSpans computes the visible region VR(v, q) of viewpoint v over the
// query segment q under the given obstacles (Definition 2), as a sorted list
// of disjoint parameter spans.
//
// Method: the visibility of q's points from v changes only where the sight
// line grazes an obstacle vertex or where q itself crosses an obstacle
// boundary. We collect those candidate parameters, subdivide [0,1], and
// decide each cell by an exact midpoint visibility test. This is exact and
// O(V log V + V*C) for V vertices and C candidate cells, which is fast for
// the small local visibility graphs the algorithm maintains.
func VisibleSpans(v Point, q Segment, obstacles []Rect) []Span {
	spans, _ := VisibleSpansInto(nil, nil, v, q, obstacles)
	return spans
}

// VisibleSpansInto is VisibleSpans with caller-provided scratch: the result
// is built in spans (aliasing its storage) and cuts holds the intermediate
// candidate parameters. It returns the result and the possibly grown cuts
// buffer so callers can recycle both across calls.
func VisibleSpansInto(spans []Span, cuts []float64, v Point, q Segment, obstacles []Rect) ([]Span, []float64) {
	spans = spans[:0]
	if q.Degenerate() {
		if Visible(v, q.A, obstacles) {
			return append(spans, Span{0, 1}), cuts
		}
		return spans, cuts
	}
	cuts = append(cuts[:0], 0, 1)
	for _, o := range obstacles {
		for _, w := range o.Vertices() {
			// Sight ray from v through the obstacle corner w, extended to the
			// supporting line of q.
			ray := Segment{v, w}
			if ray.Degenerate() {
				continue
			}
			tRay, tQ, ok := LineLineIntersect(ray, q)
			if !ok {
				continue
			}
			// Only forward intersections can shadow q.
			if tRay < -Eps {
				continue
			}
			if tQ > -Eps && tQ < 1+Eps {
				cuts = append(cuts, clamp01(tQ))
			}
		}
		// Where q itself enters/leaves the obstacle, visibility flips too.
		if t0, t1, ok := o.ClipSegment(q); ok {
			cuts = append(cuts, clamp01(t0), clamp01(t1))
		}
	}
	sort.Float64s(cuts)
	prev := cuts[0]
	for _, c := range cuts[1:] {
		if c-prev <= Eps {
			continue
		}
		cell := Span{prev, c}
		if Visible(v, q.At(cell.Mid()), obstacles) {
			if n := len(spans); n > 0 && cell.Lo-spans[n-1].Hi <= Eps {
				spans[n-1].Hi = cell.Hi
			} else {
				spans = append(spans, cell)
			}
		}
		prev = c
	}
	return spans, cuts
}

func clamp01(t float64) float64 { return math.Max(0, math.Min(1, t)) }
