package geom

import (
	"math"
	"sort"
)

// Visible reports whether points a and b are visible to each other under the
// given rectangular obstacles (Definition 1): the open segment between them
// must not cross any obstacle's open interior.
func Visible(a, b Point, obstacles []Rect) bool {
	s := Segment{a, b}
	for _, o := range obstacles {
		if o.BlocksSegment(s) {
			return false
		}
	}
	return true
}

// Span is a closed sub-interval [Lo, Hi] of the query-segment parameter
// space t in [0, 1].
type Span struct {
	Lo, Hi float64
}

// Len returns the parametric length of the span.
func (sp Span) Len() float64 { return sp.Hi - sp.Lo }

// Empty reports whether the span has (numerically) zero or negative length.
func (sp Span) Empty() bool { return sp.Hi-sp.Lo <= Eps }

// Mid returns the span midpoint parameter.
func (sp Span) Mid() float64 { return (sp.Lo + sp.Hi) / 2 }

// Contains reports whether t lies in the closed span.
func (sp Span) Contains(t float64) bool { return sp.Lo-Eps <= t && t <= sp.Hi+Eps }

// VisibleSpans computes the visible region VR(v, q) of viewpoint v over the
// query segment q under the given obstacles (Definition 2), as a sorted list
// of disjoint parameter spans.
//
// Method: the visibility of q's points from v changes only where the sight
// line grazes an obstacle vertex or where q itself crosses an obstacle
// boundary. We collect those candidate parameters, subdivide [0,1], and
// decide each cell by an exact midpoint visibility test. This is exact and
// O(V log V + V*C) for V vertices and C candidate cells, which is fast for
// the small local visibility graphs the algorithm maintains.
func VisibleSpans(v Point, q Segment, obstacles []Rect) []Span {
	spans, _ := VisibleSpansInto(nil, nil, v, q, obstacles)
	return spans
}

// VisibleSpansInto is VisibleSpans with caller-provided scratch: the result
// is built in spans (aliasing its storage) and cuts holds the intermediate
// candidate parameters. It returns the result and the possibly grown cuts
// buffer so callers can recycle both across calls.
func VisibleSpansInto(spans []Span, cuts []float64, v Point, q Segment, obstacles []Rect) ([]Span, []float64) {
	spans = spans[:0]
	if q.Degenerate() {
		if Visible(v, q.A, obstacles) {
			return append(spans, Span{0, 1}), cuts
		}
		return spans, cuts
	}
	cuts = append(cuts[:0], 0, 1)
	// The sight-ray intersections below are LineLineIntersect(ray, q) with
	// the q-dependent factors hoisted out of the vertex loop; every
	// intermediate is computed with the same operations in the same order,
	// so the cut parameters are bit-identical to the method calls.
	qdx, qdy := q.B.X-q.A.X, q.B.Y-q.A.Y
	qNorm := math.Hypot(qdx, qdy)
	wvx, wvy := q.A.X-v.X, q.A.Y-v.Y
	for _, o := range obstacles {
		for _, w := range o.Vertices() {
			// Sight ray from v through the obstacle corner w, extended to the
			// supporting line of q.
			rdx, rdy := w.X-v.X, w.Y-v.Y
			if rdx*rdx+rdy*rdy <= Eps*Eps {
				continue // degenerate ray
			}
			den := rdx*qdy - rdy*qdx
			// Parallel pre-screen without the Hypot: |rdx|+|rdy| >= hypot
			// in real arithmetic, and scaling it up by 1e-6 absorbs the few
			// ulps of rounding slack in either computation, so the padded
			// threshold dominates the exact one (FP add/mul are monotone).
			// A denominator above it can never be classified parallel; only
			// the rare near-parallel ray pays the exact check below.
			if ad := math.Abs(den); ad <= Eps*(1+(math.Abs(rdx)+math.Abs(rdy))*1.000001*qNorm) {
				scale := math.Hypot(rdx, rdy) * qNorm
				if ad <= Eps*(1+scale) {
					continue // (numerically) parallel
				}
			}
			// Only forward intersections can shadow q.
			if tRay := (wvx*qdy - wvy*qdx) / den; tRay < -Eps {
				continue
			}
			if tQ := (wvx*rdy - wvy*rdx) / den; tQ > -Eps && tQ < 1+Eps {
				cuts = append(cuts, clamp01(tQ))
			}
		}
		// Where q itself enters/leaves the obstacle, visibility flips too.
		if t0, t1, ok := o.ClipSegment(q); ok {
			cuts = append(cuts, clamp01(t0), clamp01(t1))
		}
	}
	sort.Float64s(cuts)
	prev := cuts[0]
	for _, c := range cuts[1:] {
		if c-prev <= Eps {
			continue
		}
		cell := Span{prev, c}
		// Exact midpoint visibility test, with the sight line's length
		// computed once per cell instead of once per obstacle inside
		// BlocksSegment (geom.SegLen is bit-identical to Segment.Length).
		m := q.At(cell.Mid())
		mdx, mdy := m.X-v.X, m.Y-v.Y
		segLen := SegLen(mdx, mdy, mdx*mdx+mdy*mdy)
		vis := true
		for _, o := range obstacles {
			if BlocksSegLen(o.MinX, o.MinY, o.MaxX, o.MaxY, v.X, v.Y, m.X, m.Y, segLen) {
				vis = false
				break
			}
		}
		if vis {
			if n := len(spans); n > 0 && cell.Lo-spans[n-1].Hi <= Eps {
				spans[n-1].Hi = cell.Hi
			} else {
				spans = append(spans, cell)
			}
		}
		prev = c
	}
	return spans, cuts
}

func clamp01(t float64) float64 { return math.Max(0, math.Min(1, t)) }
