package geom

import (
	"math"
	"testing"
)

// FuzzClipSegment cross-checks the Liang-Barsky clipper against dense
// sampling: every sampled point inside the clip range must be inside the
// rectangle, every point clearly outside the range must be outside.
func FuzzClipSegment(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 10.0, -5.0, 5.0, 15.0, 5.0)
	f.Add(2.0, 2.0, 4.0, 4.0, 0.0, 0.0, 6.0, 6.0)
	f.Add(0.0, 0.0, 1.0, 1.0, 5.0, 5.0, 6.0, 6.0)
	f.Add(1.0, 1.0, 1.0, 5.0, 1.0, 0.0, 1.0, 6.0) // degenerate width
	f.Fuzz(func(t *testing.T, minX, minY, w, h, ax, ay, bx, by float64) {
		for _, v := range []float64{minX, minY, w, h, ax, ay, bx, by} {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				t.Skip()
			}
		}
		r := Rect{MinX: minX, MinY: minY, MaxX: minX + math.Abs(w), MaxY: minY + math.Abs(h)}
		s := Seg(Pt(ax, ay), Pt(bx, by))
		t0, t1, ok := r.ClipSegment(s)
		if !ok {
			// No part inside: sampled points must all be outside (with a
			// tolerance shell for boundary grazing).
			for k := 0; k <= 40; k++ {
				p := s.At(float64(k) / 40)
				if r.Buffer(-1e-6).Valid() && r.Buffer(-1e-6).ContainsOpen(p) {
					t.Fatalf("ClipSegment missed interior point %v (r=%v s=%v)", p, r, s)
				}
			}
			return
		}
		if t0 > t1 || t0 < -Eps || t1 > 1+Eps {
			t.Fatalf("bad clip range [%v, %v]", t0, t1)
		}
		// Points within the clipped range are inside (closed, with slack).
		for k := 0; k <= 20; k++ {
			tt := t0 + (t1-t0)*float64(k)/20
			p := s.At(tt)
			if !r.Buffer(1e-6 * (1 + math.Abs(p.X) + math.Abs(p.Y))).Contains(p) {
				t.Fatalf("clipped point %v outside rect %v (t=%v)", p, r, tt)
			}
		}
	})
}

// FuzzBlocksVsVisible: Visible must be the negation of any obstacle
// blocking, and blocking must imply a strictly interior sample exists
// somewhere near the chord.
func FuzzBlocksVsVisible(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 10.0, -5.0, 5.0, 15.0, 5.0)
	f.Add(0.0, 0.0, 10.0, 10.0, 0.0, 0.0, 10.0, 0.0) // along edge
	f.Fuzz(func(t *testing.T, minX, minY, w, h, ax, ay, bx, by float64) {
		for _, v := range []float64{minX, minY, w, h, ax, ay, bx, by} {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				t.Skip()
			}
		}
		r := Rect{MinX: minX, MinY: minY, MaxX: minX + math.Abs(w), MaxY: minY + math.Abs(h)}
		a, b := Pt(ax, ay), Pt(bx, by)
		if Visible(a, b, []Rect{r}) == r.BlocksSegment(Seg(a, b)) {
			t.Fatalf("Visible must be the negation of BlocksSegment: r=%v a=%v b=%v", r, a, b)
		}
	})
}
