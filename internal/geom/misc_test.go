package geom

import (
	"strings"
	"testing"
)

func TestStringers(t *testing.T) {
	if s := Pt(1.5, -2).String(); !strings.Contains(s, "1.5") || !strings.Contains(s, "-2") {
		t.Errorf("Point.String = %q", s)
	}
	if s := Seg(Pt(0, 0), Pt(1, 1)).String(); !strings.Contains(s, "->") {
		t.Errorf("Segment.String = %q", s)
	}
	if s := R(0, 1, 2, 3).String(); !strings.Contains(s, "x") {
		t.Errorf("Rect.String = %q", s)
	}
}

func TestSubSegment(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	sub := s.SubSegment(0.2, 0.7)
	if !sub.A.Eq(Pt(2, 0)) || !sub.B.Eq(Pt(7, 0)) {
		t.Errorf("SubSegment = %v", sub)
	}
}

func TestMarginAndUnionDegenerate(t *testing.T) {
	empty := Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}
	if empty.Margin() != 0 {
		t.Errorf("empty Margin = %v", empty.Margin())
	}
	a := R(0, 0, 1, 1)
	if got := empty.Union(a); got != a {
		t.Errorf("empty.Union = %v", got)
	}
	if got := a.Union(empty); got != a {
		t.Errorf("Union(empty) = %v", got)
	}
}

func TestProjectDegenerate(t *testing.T) {
	s := Seg(Pt(3, 3), Pt(3, 3))
	if got := s.Project(Pt(10, 10)); got != 0 {
		t.Errorf("degenerate Project = %v", got)
	}
	if got := s.DistPerp(Pt(0, 4)); !almostEq(got, 3.1622776601683795, 1e-9) {
		t.Errorf("degenerate DistPerp = %v (falls back to point distance)", got)
	}
}

func TestBufferGrowShrink(t *testing.T) {
	r := R(2, 2, 4, 4)
	if got := r.Buffer(1); got != R(1, 1, 5, 5) {
		t.Errorf("Buffer(1) = %v", got)
	}
	if got := r.Buffer(-2); !got.Empty() {
		t.Errorf("over-shrunk Buffer should be empty: %v", got)
	}
}
