package geom

import (
	"fmt"
	"math"
)

// Eps is the absolute tolerance used by geometric predicates. The search
// space in the paper is [0, 10000]^2, so 1e-9 is far below one unit of
// coordinate resolution while staying well above float64 noise for the
// magnitudes involved.
const Eps = 1e-9

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Add returns p + o.
func (p Point) Add(o Point) Point { return Point{p.X + o.X, p.Y + o.Y} }

// Sub returns p - o.
func (p Point) Sub(o Point) Point { return Point{p.X - o.X, p.Y - o.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dot returns the dot product p . o.
func (p Point) Dot(o Point) float64 { return p.X*o.X + p.Y*o.Y }

// Cross returns the z component of the cross product p x o.
func (p Point) Cross(o Point) float64 { return p.X*o.Y - p.Y*o.X }

// Norm returns the Euclidean length of the vector p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean length of the vector p.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Eq reports whether p and o coincide within Eps.
func (p Point) Eq(o Point) bool {
	return math.Abs(p.X-o.X) <= Eps && math.Abs(p.Y-o.Y) <= Eps
}

// Dist returns the Euclidean distance between a and b. The straightforward
// sqrt-of-squares is substantially cheaper than math.Hypot on this package's
// hottest call; the overflow Hypot guards against (coordinates beyond
// ~1e154, far outside any workspace) is detected and routed to Hypot.
func Dist(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	d2 := dx*dx + dy*dy
	if math.IsInf(d2, 1) {
		return math.Hypot(dx, dy)
	}
	return math.Sqrt(d2)
}

// SegLen returns the length of the vector (dx, dy) given d2 = dx*dx + dy*dy.
// It is bit-identical to Dist between the endpoints that produced (dx, dy),
// including the overflow fallback, so hot paths that already hold d2 can
// share one square root with code that calls Dist.
func SegLen(dx, dy, d2 float64) float64 {
	if math.IsInf(d2, 1) {
		return math.Hypot(dx, dy)
	}
	return math.Sqrt(d2)
}

// Dist2 returns the squared Euclidean distance between a and b.
func Dist2(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// Orientation classifies the turn a->b->c: +1 for a counter-clockwise turn,
// -1 for clockwise, 0 for (numerically) collinear.
func Orientation(a, b, c Point) int {
	v := (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
	// Scale the tolerance by the magnitude of the operands so the predicate
	// remains meaningful both near the origin and at coordinates ~1e4.
	scale := math.Abs(b.X-a.X) + math.Abs(b.Y-a.Y) + math.Abs(c.X-a.X) + math.Abs(c.Y-a.Y)
	tol := Eps * (1 + scale)
	switch {
	case v > tol:
		return 1
	case v < -tol:
		return -1
	default:
		return 0
	}
}

// Collinear reports whether a, b, c lie on one line within tolerance.
func Collinear(a, b, c Point) bool { return Orientation(a, b, c) == 0 }

// onSegment reports whether c, known to be collinear with [a,b], lies within
// the segment's bounding box (inclusive).
func onSegment(a, b, c Point) bool {
	return math.Min(a.X, b.X)-Eps <= c.X && c.X <= math.Max(a.X, b.X)+Eps &&
		math.Min(a.Y, b.Y)-Eps <= c.Y && c.Y <= math.Max(a.Y, b.Y)+Eps
}
