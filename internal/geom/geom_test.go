package geom

import (
	"math"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointArithmetic(t *testing.T) {
	a, b := Pt(1, 2), Pt(3, -4)
	if got := a.Add(b); !got.Eq(Pt(4, -2)) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); !got.Eq(Pt(-2, 6)) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); !got.Eq(Pt(2, 4)) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 1*3+2*(-4) {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != 1*(-4)-2*3 {
		t.Errorf("Cross = %v", got)
	}
}

func TestDist(t *testing.T) {
	if d := Dist(Pt(0, 0), Pt(3, 4)); !almostEq(d, 5, 1e-12) {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := Dist2(Pt(0, 0), Pt(3, 4)); !almostEq(d, 25, 1e-12) {
		t.Errorf("Dist2 = %v, want 25", d)
	}
	if d := Dist(Pt(1, 1), Pt(1, 1)); d != 0 {
		t.Errorf("Dist same point = %v", d)
	}
}

func TestOrientation(t *testing.T) {
	a, b := Pt(0, 0), Pt(1, 0)
	if got := Orientation(a, b, Pt(0.5, 1)); got != 1 {
		t.Errorf("left turn = %d, want 1", got)
	}
	if got := Orientation(a, b, Pt(0.5, -1)); got != -1 {
		t.Errorf("right turn = %d, want -1", got)
	}
	if got := Orientation(a, b, Pt(2, 0)); got != 0 {
		t.Errorf("collinear = %d, want 0", got)
	}
	if !Collinear(Pt(0, 0), Pt(5000, 5000), Pt(10000, 10000)) {
		t.Error("large-coordinate collinear not detected")
	}
}

func TestSegmentBasics(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	if l := s.Length(); l != 10 {
		t.Errorf("Length = %v", l)
	}
	if p := s.At(0.25); !p.Eq(Pt(2.5, 0)) {
		t.Errorf("At(0.25) = %v", p)
	}
	if m := s.Midpoint(); !m.Eq(Pt(5, 0)) {
		t.Errorf("Midpoint = %v", m)
	}
	if s.Degenerate() {
		t.Error("non-degenerate reported degenerate")
	}
	if !Seg(Pt(1, 1), Pt(1, 1)).Degenerate() {
		t.Error("degenerate not reported")
	}
	b := s.Bounds()
	if b.MinX != 0 || b.MaxX != 10 || b.MinY != 0 || b.MaxY != 0 {
		t.Errorf("Bounds = %v", b)
	}
}

func TestSegmentProjectAndClosest(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	if tt := s.Project(Pt(3, 7)); !almostEq(tt, 0.3, 1e-12) {
		t.Errorf("Project = %v", tt)
	}
	// Beyond the end: projection is unclamped, ClosestT clamps.
	if tt := s.Project(Pt(15, 2)); !almostEq(tt, 1.5, 1e-12) {
		t.Errorf("Project beyond = %v", tt)
	}
	if tt := s.ClosestT(Pt(15, 2)); tt != 1 {
		t.Errorf("ClosestT beyond = %v", tt)
	}
	if d := s.DistToPoint(Pt(5, 3)); !almostEq(d, 3, 1e-12) {
		t.Errorf("DistToPoint above = %v", d)
	}
	if d := s.DistToPoint(Pt(13, 4)); !almostEq(d, 5, 1e-12) {
		t.Errorf("DistToPoint diagonal = %v", d)
	}
	if d := s.DistPerp(Pt(13, 4)); !almostEq(d, 4, 1e-12) {
		t.Errorf("DistPerp = %v (perpendicular ignores segment extent)", d)
	}
}

func TestSegSegIntersect(t *testing.T) {
	cases := []struct {
		name   string
		s1, s2 Segment
		any    bool // SegSegIntersect
		proper bool // SegSegProperCross
	}{
		{"crossing X", Seg(Pt(0, 0), Pt(2, 2)), Seg(Pt(0, 2), Pt(2, 0)), true, true},
		{"disjoint", Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(0, 1), Pt(1, 1)), false, false},
		{"touching endpoint", Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(1, 1), Pt(2, 0)), true, false},
		{"T junction", Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(1, 0), Pt(1, 1)), true, false},
		{"collinear overlap", Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(1, 0), Pt(3, 0)), true, false},
		{"collinear disjoint", Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(2, 0), Pt(3, 0)), false, false},
		{"parallel", Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(0, 0.5), Pt(1, 0.5)), false, false},
	}
	for _, c := range cases {
		if got := SegSegIntersect(c.s1, c.s2); got != c.any {
			t.Errorf("%s: SegSegIntersect = %v, want %v", c.name, got, c.any)
		}
		if got := SegSegProperCross(c.s1, c.s2); got != c.proper {
			t.Errorf("%s: SegSegProperCross = %v, want %v", c.name, got, c.proper)
		}
	}
}

func TestLineLineIntersect(t *testing.T) {
	t1, t2, ok := LineLineIntersect(Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(1, -1), Pt(1, 1)))
	if !ok || !almostEq(t1, 0.5, 1e-12) || !almostEq(t2, 0.5, 1e-12) {
		t.Errorf("cross: t1=%v t2=%v ok=%v", t1, t2, ok)
	}
	if _, _, ok := LineLineIntersect(Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(0, 1), Pt(1, 1))); ok {
		t.Error("parallel lines reported intersecting")
	}
	// Intersection outside the segments still resolves on supporting lines.
	t1, _, ok = LineLineIntersect(Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(5, -1), Pt(5, 1)))
	if !ok || !almostEq(t1, 5, 1e-12) {
		t.Errorf("extended: t1=%v ok=%v", t1, ok)
	}
}

func TestSegSegDist(t *testing.T) {
	if d := SegSegDist(Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(0, 2), Pt(1, 2))); !almostEq(d, 2, 1e-12) {
		t.Errorf("parallel dist = %v", d)
	}
	if d := SegSegDist(Seg(Pt(0, 0), Pt(2, 2)), Seg(Pt(0, 2), Pt(2, 0))); d != 0 {
		t.Errorf("crossing dist = %v", d)
	}
	if d := SegSegDist(Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(4, 4), Pt(4, 5))); !almostEq(d, 5, 1e-12) {
		t.Errorf("endpoint-to-endpoint dist = %v", d)
	}
}

func TestRectBasics(t *testing.T) {
	r := R(1, 2, 5, 6)
	if r.Width() != 4 || r.Height() != 4 || r.Area() != 16 || r.Margin() != 8 {
		t.Errorf("geometry: w=%v h=%v a=%v m=%v", r.Width(), r.Height(), r.Area(), r.Margin())
	}
	if !r.Center().Eq(Pt(3, 4)) {
		t.Errorf("Center = %v", r.Center())
	}
	if !r.Contains(Pt(1, 2)) || !r.Contains(Pt(3, 4)) || r.Contains(Pt(0, 0)) {
		t.Error("Contains misbehaves")
	}
	if r.ContainsOpen(Pt(1, 2)) || !r.ContainsOpen(Pt(3, 4)) {
		t.Error("ContainsOpen misbehaves on boundary/interior")
	}
	e := Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}
	if !e.Empty() || e.Area() != 0 {
		t.Error("empty rect misreported")
	}
}

func TestRectSetOps(t *testing.T) {
	a, b := R(0, 0, 2, 2), R(1, 1, 3, 3)
	if got := a.OverlapArea(b); !almostEq(got, 1, 1e-12) {
		t.Errorf("OverlapArea = %v", got)
	}
	if got := a.Union(b); got != R(0, 0, 3, 3) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersection(b); got != R(1, 1, 2, 2) {
		t.Errorf("Intersection = %v", got)
	}
	if a.OverlapArea(R(5, 5, 6, 6)) != 0 {
		t.Error("disjoint OverlapArea != 0")
	}
	if !a.Intersects(b) || a.Intersects(R(5, 5, 6, 6)) {
		t.Error("Intersects misbehaves")
	}
	if !R(0, 0, 10, 10).ContainsRect(a) || a.ContainsRect(R(0, 0, 10, 10)) {
		t.Error("ContainsRect misbehaves")
	}
	if got := a.ExpandPoint(Pt(-1, 5)); got != R(-1, 0, 2, 5) {
		t.Errorf("ExpandPoint = %v", got)
	}
	if got := RectFromPoints(Pt(1, 5), Pt(-2, 0), Pt(3, 3)); got != R(-2, 0, 3, 5) {
		t.Errorf("RectFromPoints = %v", got)
	}
}

func TestRectDistances(t *testing.T) {
	r := R(0, 0, 2, 2)
	if d := r.DistToPoint(Pt(1, 1)); d != 0 {
		t.Errorf("inside DistToPoint = %v", d)
	}
	if d := r.DistToPoint(Pt(5, 2)); !almostEq(d, 3, 1e-12) {
		t.Errorf("side DistToPoint = %v", d)
	}
	if d := r.DistToPoint(Pt(5, 6)); !almostEq(d, 5, 1e-12) {
		t.Errorf("corner DistToPoint = %v", d)
	}
	if d := r.DistToRect(R(5, 0, 6, 2)); !almostEq(d, 3, 1e-12) {
		t.Errorf("DistToRect = %v", d)
	}
	if d := r.DistToRect(R(1, 1, 3, 3)); d != 0 {
		t.Errorf("overlapping DistToRect = %v", d)
	}
	if d := r.DistToSegment(Seg(Pt(4, -1), Pt(4, 5))); !almostEq(d, 2, 1e-12) {
		t.Errorf("DistToSegment = %v", d)
	}
	if d := r.DistToSegment(Seg(Pt(-1, 1), Pt(3, 1))); d != 0 {
		t.Errorf("piercing DistToSegment = %v", d)
	}
	if d := r.DistToSegment(Seg(Pt(0.5, 0.5), Pt(1, 1))); d != 0 {
		t.Errorf("contained DistToSegment = %v", d)
	}
}

func TestClipSegment(t *testing.T) {
	r := R(0, 0, 10, 10)
	t0, t1, ok := r.ClipSegment(Seg(Pt(-10, 5), Pt(20, 5)))
	if !ok || !almostEq(t0, 1.0/3, 1e-9) || !almostEq(t1, 2.0/3, 1e-9) {
		t.Errorf("clip through: t0=%v t1=%v ok=%v", t0, t1, ok)
	}
	if _, _, ok := r.ClipSegment(Seg(Pt(-5, 20), Pt(15, 20))); ok {
		t.Error("miss reported as clip")
	}
	t0, t1, ok = r.ClipSegment(Seg(Pt(2, 2), Pt(8, 8)))
	if !ok || t0 != 0 || t1 != 1 {
		t.Errorf("fully inside: t0=%v t1=%v ok=%v", t0, t1, ok)
	}
	// Vertical segment.
	t0, t1, ok = r.ClipSegment(Seg(Pt(5, -10), Pt(5, 30)))
	if !ok || !almostEq(t0, 0.25, 1e-9) || !almostEq(t1, 0.5, 1e-9) {
		t.Errorf("vertical: t0=%v t1=%v ok=%v", t0, t1, ok)
	}
}

func TestBlocksSegment(t *testing.T) {
	r := R(2, 2, 4, 4)
	cases := []struct {
		name string
		s    Segment
		want bool
	}{
		{"through interior", Seg(Pt(0, 3), Pt(6, 3)), true},
		{"misses", Seg(Pt(0, 0), Pt(6, 0)), false},
		{"along bottom edge", Seg(Pt(0, 2), Pt(6, 2)), false},
		{"along left edge", Seg(Pt(2, 0), Pt(2, 6)), false},
		{"corner graze", Seg(Pt(0, 0), Pt(4.0, 4.0).Add(Pt(4, 4))), false}, // diagonal through (2,2)-(4,4) corners is ON the diagonal, passes interior
		{"touch corner only", Seg(Pt(0, 4), Pt(4, 8)), false},
		{"ends on boundary from outside", Seg(Pt(0, 3), Pt(2, 3)), false},
		{"chord between two edges", Seg(Pt(2, 1), Pt(5, 4)), true},
	}
	for _, c := range cases {
		// The diagonal case passes through the interior diagonally: expected true.
		want := c.want
		if c.name == "corner graze" {
			want = true
		}
		if got := r.BlocksSegment(c.s); got != want {
			t.Errorf("%s: BlocksSegment = %v, want %v", c.name, got, want)
		}
	}
}

func TestVisible(t *testing.T) {
	obs := []Rect{R(2, 2, 4, 4)}
	if Visible(Pt(0, 3), Pt(6, 3), obs) {
		t.Error("blocked pair reported visible")
	}
	if !Visible(Pt(0, 0), Pt(6, 0), obs) {
		t.Error("clear pair reported blocked")
	}
	// Sight line along an obstacle edge is visible.
	if !Visible(Pt(0, 2), Pt(6, 2), obs) {
		t.Error("edge-sliding sight line reported blocked")
	}
	// Through a corner point only.
	if !Visible(Pt(0, 4), Pt(4, 8), obs) {
		t.Error("corner-touching sight line reported blocked")
	}
	if !Visible(Pt(1, 1), Pt(1.5, 1.5), nil) {
		t.Error("no obstacles should always be visible")
	}
}

func TestVisibleSpansSimple(t *testing.T) {
	// Viewpoint below, one obstacle casting a shadow on the middle of q.
	q := Seg(Pt(0, 10), Pt(10, 10))
	v := Pt(5, 0)
	obs := []Rect{R(4, 4, 6, 6)}
	spans := VisibleSpans(v, q, obs)
	if len(spans) != 2 {
		t.Fatalf("spans = %v, want two visible spans around a central shadow", spans)
	}
	// The viewpoint is below the obstacle, so the shadow is cast by the
	// bottom corners (4,4) and (6,4): rays from (5,0) through them hit y=10
	// at x = 5 + (10/4)*(4-5) = 2.5 and x = 7.5, i.e. t = 0.25 and 0.75.
	if !almostEq(spans[0].Lo, 0, 1e-9) || !almostEq(spans[0].Hi, 0.25, 1e-6) {
		t.Errorf("left span = %+v", spans[0])
	}
	if !almostEq(spans[1].Lo, 0.75, 1e-6) || !almostEq(spans[1].Hi, 1, 1e-9) {
		t.Errorf("right span = %+v", spans[1])
	}
}

func TestVisibleSpansNoObstacles(t *testing.T) {
	spans := VisibleSpans(Pt(3, -2), Seg(Pt(0, 0), Pt(10, 0)), nil)
	if len(spans) != 1 || spans[0].Lo != 0 || spans[0].Hi != 1 {
		t.Errorf("spans = %v, want full [0,1]", spans)
	}
}

func TestVisibleSpansFullyBlocked(t *testing.T) {
	// Wall between viewpoint and the whole of q.
	q := Seg(Pt(0, 10), Pt(10, 10))
	v := Pt(5, 0)
	obs := []Rect{R(-100, 4, 100, 6)}
	if spans := VisibleSpans(v, q, obs); len(spans) != 0 {
		t.Errorf("spans = %v, want none", spans)
	}
}

func TestVisibleSpansViewpointOnQ(t *testing.T) {
	// Degenerate sight lines: viewpoint is one endpoint of q.
	q := Seg(Pt(0, 0), Pt(10, 0))
	obs := []Rect{R(4, -1, 6, 1)} // straddles q
	spans := VisibleSpans(q.A, q, obs)
	// From S, everything up to the obstacle's near edge (x=4 -> t=0.4) is
	// visible; the far part is blocked by the straddling obstacle.
	if len(spans) != 1 {
		t.Fatalf("spans = %v, want a single prefix span", spans)
	}
	if !almostEq(spans[0].Lo, 0, 1e-9) || !almostEq(spans[0].Hi, 0.4, 1e-6) {
		t.Errorf("span = %+v, want [0, 0.4]", spans[0])
	}
}

func TestVisibleSpansDegenerateQ(t *testing.T) {
	q := Seg(Pt(5, 5), Pt(5, 5))
	if spans := VisibleSpans(Pt(0, 0), q, nil); len(spans) != 1 {
		t.Errorf("visible degenerate q: %v", spans)
	}
	obs := []Rect{R(1, 1, 4, 9)}
	if spans := VisibleSpans(Pt(0, 0), q, obs); len(spans) != 0 {
		t.Errorf("blocked degenerate q: %v", spans)
	}
}

func TestSpanHelpers(t *testing.T) {
	sp := Span{0.2, 0.6}
	if !almostEq(sp.Len(), 0.4, 1e-12) || !almostEq(sp.Mid(), 0.4, 1e-12) {
		t.Errorf("Len/Mid = %v/%v", sp.Len(), sp.Mid())
	}
	if sp.Empty() || !(Span{0.3, 0.3}).Empty() {
		t.Error("Empty misbehaves")
	}
	if !sp.Contains(0.2) || !sp.Contains(0.6) || sp.Contains(0.7) {
		t.Error("Contains misbehaves")
	}
}
