package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randPoint draws a point in the paper's [0, 10000]^2 search space.
func randPoint(r *rand.Rand) Point {
	return Pt(r.Float64()*10000, r.Float64()*10000)
}

func randRect(r *rand.Rand) Rect {
	p := randPoint(r)
	return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X + r.Float64()*500, MaxY: p.Y + r.Float64()*500}
}

func quickCfg() *quick.Config {
	r := rand.New(rand.NewSource(42))
	return &quick.Config{MaxCount: 300, Rand: r}
}

func TestPropDistSymmetricAndTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		if Dist(a, b) != Dist(b, a) {
			return false
		}
		// Triangle inequality with float slack.
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-9*(1+Dist(a, c))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropSegmentAtEndpoints(t *testing.T) {
	// Domain-constrained rather than quick-generated: at coordinates near
	// ±1e308 an absolute Eps equality test is meaningless.
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		s := Seg(randPoint(r), randPoint(r))
		if !s.At(0).Eq(s.A) || !s.At(1).Eq(s.B) {
			t.Fatalf("At endpoints drift: %v", s)
		}
	}
}

func TestPropClosestPointIsMinimal(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		s := Seg(randPoint(r), randPoint(r))
		p := randPoint(r)
		d := s.DistToPoint(p)
		for k := 0; k <= 20; k++ {
			tt := float64(k) / 20
			if Dist(p, s.At(tt)) < d-1e-9 {
				t.Fatalf("closer sample than DistToPoint: s=%v p=%v t=%v", s, p, tt)
			}
		}
	}
}

func TestPropRectUnionContains(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		a, b := randRect(r), randRect(r)
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			t.Fatalf("union %v does not contain %v and %v", u, a, b)
		}
		if u.Area()+1e-9 < a.Area() || u.Area()+1e-9 < b.Area() {
			t.Fatalf("union area shrank")
		}
	}
}

func TestPropOverlapSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		a, b := randRect(r), randRect(r)
		if math.Abs(a.OverlapArea(b)-b.OverlapArea(a)) > 1e-9 {
			t.Fatalf("overlap asymmetric for %v, %v", a, b)
		}
		if a.Intersects(b) != b.Intersects(a) {
			t.Fatalf("Intersects asymmetric")
		}
	}
}

func TestPropVisibilitySymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		obs := make([]Rect, 1+r.Intn(5))
		for j := range obs {
			obs[j] = randRect(r)
		}
		a, b := randPoint(r), randPoint(r)
		if Visible(a, b, obs) != Visible(b, a, obs) {
			t.Fatalf("visibility asymmetric: a=%v b=%v obs=%v", a, b, obs)
		}
	}
}

func TestPropBlocksSegmentConsistentWithSampling(t *testing.T) {
	// BlocksSegment must agree with dense sampling of strict interior hits.
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 400; i++ {
		o := randRect(r)
		if o.Degenerate() {
			continue
		}
		s := Seg(randPoint(r), randPoint(r))
		got := o.BlocksSegment(s)
		sampled := false
		for k := 1; k < 400; k++ {
			if o.ContainsOpen(s.At(float64(k) / 400)) {
				sampled = true
				break
			}
		}
		// Sampling can miss a sliver crossing; it can never produce a false
		// positive. So sampled => got must hold.
		if sampled && !got {
			t.Fatalf("sampling found interior point but BlocksSegment=false: o=%v s=%v", o, s)
		}
		// And if the predicate says blocked, the clip midpoint must be interior.
		if got {
			t0, t1, ok := o.ClipSegment(s)
			if !ok || !o.ContainsOpen(s.At((t0+t1)/2)) {
				t.Fatalf("BlocksSegment=true but clip midpoint not interior: o=%v s=%v", o, s)
			}
		}
	}
}

func TestPropVisibleSpansMatchSampling(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for i := 0; i < 120; i++ {
		q := Seg(randPoint(r), randPoint(r))
		if q.Degenerate() {
			continue
		}
		v := randPoint(r)
		obs := make([]Rect, 1+r.Intn(6))
		for j := range obs {
			obs[j] = randRect(r)
		}
		spans := VisibleSpans(v, q, obs)
		for k := 0; k <= 100; k++ {
			tt := float64(k) / 100
			vis := Visible(v, q.At(tt), obs)
			in := false
			for _, sp := range spans {
				if sp.Contains(tt) {
					in = true
					break
				}
			}
			// Boundary parameters may legitimately disagree by Eps; nudge
			// strictly interior samples only.
			boundary := false
			for _, sp := range spans {
				if math.Abs(tt-sp.Lo) < 1e-6 || math.Abs(tt-sp.Hi) < 1e-6 {
					boundary = true
				}
			}
			if !boundary && vis != in {
				t.Fatalf("visible-span mismatch at t=%v: vis=%v in=%v (v=%v q=%v obs=%v)", tt, vis, in, v, q, obs)
			}
		}
	}
}

func TestPropSpansSortedDisjoint(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		q := Seg(randPoint(r), randPoint(r))
		if q.Degenerate() {
			continue
		}
		v := randPoint(r)
		obs := make([]Rect, 1+r.Intn(6))
		for j := range obs {
			obs[j] = randRect(r)
		}
		spans := VisibleSpans(v, q, obs)
		for j, sp := range spans {
			if sp.Empty() {
				t.Fatalf("empty span emitted: %v", spans)
			}
			if sp.Lo < -Eps || sp.Hi > 1+Eps {
				t.Fatalf("span out of [0,1]: %v", sp)
			}
			if j > 0 && spans[j-1].Hi >= sp.Lo-Eps {
				t.Fatalf("spans not disjoint/sorted: %v", spans)
			}
		}
	}
}
