package geom

import (
	"fmt"
	"math"
)

// Segment is the closed line segment between A and B. Query segments and
// sight lines are both represented as Segments.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{a, b} }

// String implements fmt.Stringer.
func (s Segment) String() string { return fmt.Sprintf("[%v -> %v]", s.A, s.B) }

// Length returns the Euclidean length of s.
func (s Segment) Length() float64 { return Dist(s.A, s.B) }

// Dir returns the direction vector B - A (not normalized).
func (s Segment) Dir() Point { return s.B.Sub(s.A) }

// At returns the point s(t) = A + t*(B-A). t is not clamped.
func (s Segment) At(t float64) Point {
	return Point{s.A.X + t*(s.B.X-s.A.X), s.A.Y + t*(s.B.Y-s.A.Y)}
}

// Degenerate reports whether the segment has (numerically) zero length.
func (s Segment) Degenerate() bool { return Dist2(s.A, s.B) <= Eps*Eps }

// Midpoint returns the midpoint of s.
func (s Segment) Midpoint() Point { return s.At(0.5) }

// Bounds returns the bounding rectangle of s.
func (s Segment) Bounds() Rect {
	return Rect{
		MinX: math.Min(s.A.X, s.B.X), MinY: math.Min(s.A.Y, s.B.Y),
		MaxX: math.Max(s.A.X, s.B.X), MaxY: math.Max(s.A.Y, s.B.Y),
	}
}

// Project returns the parameter t of the orthogonal projection of p onto the
// supporting line of s. For a degenerate segment it returns 0.
func (s Segment) Project(p Point) float64 {
	d := s.Dir()
	den := d.Norm2()
	if den <= Eps*Eps {
		return 0
	}
	return p.Sub(s.A).Dot(d) / den
}

// ClosestT returns the parameter t in [0,1] of the point of s closest to p.
func (s Segment) ClosestT(p Point) float64 {
	return math.Max(0, math.Min(1, s.Project(p)))
}

// ClosestPoint returns the point of s closest to p.
func (s Segment) ClosestPoint(p Point) Point { return s.At(s.ClosestT(p)) }

// DistToPoint returns the minimum distance from p to the segment s.
func (s Segment) DistToPoint(p Point) float64 {
	return Dist(p, s.ClosestPoint(p))
}

// DistPerp returns the perpendicular distance from p to the supporting line
// of s (used by the paper's Lemma 1 precondition dist_perp(cp, q)).
func (s Segment) DistPerp(p Point) float64 {
	d := s.Dir()
	n := d.Norm()
	if n <= Eps {
		return Dist(p, s.A)
	}
	return math.Abs(d.Cross(p.Sub(s.A))) / n
}

// SubSegment returns the sub-segment of s between parameters lo and hi.
func (s Segment) SubSegment(lo, hi float64) Segment {
	return Segment{s.At(lo), s.At(hi)}
}

// SegSegIntersect reports whether segments s1 and s2 intersect (including
// touching at endpoints or overlapping collinearly).
func SegSegIntersect(s1, s2 Segment) bool {
	o1 := Orientation(s1.A, s1.B, s2.A)
	o2 := Orientation(s1.A, s1.B, s2.B)
	o3 := Orientation(s2.A, s2.B, s1.A)
	o4 := Orientation(s2.A, s2.B, s1.B)
	if o1 != o2 && o3 != o4 {
		return true
	}
	if o1 == 0 && onSegment(s1.A, s1.B, s2.A) {
		return true
	}
	if o2 == 0 && onSegment(s1.A, s1.B, s2.B) {
		return true
	}
	if o3 == 0 && onSegment(s2.A, s2.B, s1.A) {
		return true
	}
	if o4 == 0 && onSegment(s2.A, s2.B, s1.B) {
		return true
	}
	return false
}

// SegSegProperCross reports whether s1 and s2 cross at a single interior
// point of both segments (a "proper" crossing). Touching at an endpoint or
// collinear overlap is not a proper crossing.
func SegSegProperCross(s1, s2 Segment) bool {
	o1 := Orientation(s1.A, s1.B, s2.A)
	o2 := Orientation(s1.A, s1.B, s2.B)
	o3 := Orientation(s2.A, s2.B, s1.A)
	o4 := Orientation(s2.A, s2.B, s1.B)
	return o1*o2 < 0 && o3*o4 < 0
}

// LineLineIntersect computes the intersection of the supporting lines of s1
// and s2. It returns parameters t1 (along s1) and t2 (along s2) with
// ok=false when the lines are (numerically) parallel.
func LineLineIntersect(s1, s2 Segment) (t1, t2 float64, ok bool) {
	d1, d2 := s1.Dir(), s2.Dir()
	den := d1.Cross(d2)
	scale := d1.Norm() * d2.Norm()
	if math.Abs(den) <= Eps*(1+scale) {
		return 0, 0, false
	}
	w := s2.A.Sub(s1.A)
	t1 = w.Cross(d2) / den
	t2 = w.Cross(d1) / den
	return t1, t2, true
}

// SegSegDist returns the minimum distance between segments s1 and s2
// (0 when they intersect).
func SegSegDist(s1, s2 Segment) float64 {
	if SegSegIntersect(s1, s2) {
		return 0
	}
	d := math.Min(s1.DistToPoint(s2.A), s1.DistToPoint(s2.B))
	d = math.Min(d, s2.DistToPoint(s1.A))
	return math.Min(d, s2.DistToPoint(s1.B))
}
