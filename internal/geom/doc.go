// Package geom provides the 2D computational-geometry substrate used by the
// CONN query processor: points, line segments, axis-aligned rectangles,
// distance functions, intersection predicates, and visibility computations
// under rectangular obstacles.
//
// Conventions:
//
//   - Obstacles are closed axis-aligned rectangles. A path or sight line is
//     blocked only when it crosses an obstacle's open interior; travelling
//     along an obstacle boundary or through a corner is permitted. This
//     matches the paper's model, in which data points may lie on obstacle
//     boundaries and shortest paths turn at obstacle vertices.
//   - Query segments are parametrized as s(t) = A + t*(B-A), t in [0, 1].
//     Span values are sub-intervals of that parameter range; every answer
//     interval the engine reports is a Span.
//   - Predicates use the absolute tolerance Eps (1e-9), chosen for the
//     paper's [0, 10000]^2 search space: far below one unit of coordinate
//     resolution, far above float64 noise at those magnitudes.
//
// The layers above rely on the exactness guarantees here: BlocksSegment is
// the single source of truth for "does this obstacle occlude this sight
// line", and VisibleSpan computes the portion of a query segment a point
// can see, which CPLC turns into control regions.
package geom
