package geom

import (
	"fmt"
	"math"
)

// Rect is a closed axis-aligned rectangle. Obstacles in the paper are
// rectangles (footnote 1), and R-tree minimum bounding rectangles use the
// same representation.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// R is shorthand for a Rect from its four coordinates.
func R(minX, minY, maxX, maxY float64) Rect {
	return Rect{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
}

// RectFromPoints returns the minimal Rect containing all of the given points.
func RectFromPoints(pts ...Point) Rect {
	r := Rect{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1)}
	for _, p := range pts {
		r = r.ExpandPoint(p)
	}
	return r
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.6g,%.6g x %.6g,%.6g]", r.MinX, r.MinY, r.MaxX, r.MaxY)
}

// Valid reports whether r is a well-formed (possibly degenerate) rectangle.
func (r Rect) Valid() bool { return r.MinX <= r.MaxX && r.MinY <= r.MaxY }

// Empty reports whether r is the canonical empty rectangle (inverted bounds).
func (r Rect) Empty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Width returns the X extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the Y extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r (0 for degenerate rectangles).
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.Width() * r.Height()
}

// Margin returns half the perimeter of r (the R*-tree split metric).
func (r Rect) Margin() float64 {
	if r.Empty() {
		return 0
	}
	return r.Width() + r.Height()
}

// Center returns the center point of r.
func (r Rect) Center() Point { return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// Degenerate reports whether r has (numerically) zero area, i.e. it is a
// point or an axis-aligned segment.
func (r Rect) Degenerate() bool { return r.Width() <= Eps || r.Height() <= Eps }

// Contains reports whether p lies in the closed rectangle r.
func (r Rect) Contains(p Point) bool {
	return r.MinX-Eps <= p.X && p.X <= r.MaxX+Eps &&
		r.MinY-Eps <= p.Y && p.Y <= r.MaxY+Eps
}

// ContainsOpen reports whether p lies strictly inside the open interior of r.
func (r Rect) ContainsOpen(p Point) bool {
	return r.MinX+Eps < p.X && p.X < r.MaxX-Eps &&
		r.MinY+Eps < p.Y && p.Y < r.MaxY-Eps
}

// ContainsRect reports whether r fully contains o (closed containment).
func (r Rect) ContainsRect(o Rect) bool {
	return r.MinX-Eps <= o.MinX && o.MaxX <= r.MaxX+Eps &&
		r.MinY-Eps <= o.MinY && o.MaxY <= r.MaxY+Eps
}

// Intersects reports whether the closed rectangles r and o overlap.
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX+Eps && o.MinX <= r.MaxX+Eps &&
		r.MinY <= o.MaxY+Eps && o.MinY <= r.MaxY+Eps
}

// Intersection returns the intersection of r and o. The result may be empty.
func (r Rect) Intersection(o Rect) Rect {
	return Rect{
		MinX: math.Max(r.MinX, o.MinX), MinY: math.Max(r.MinY, o.MinY),
		MaxX: math.Min(r.MaxX, o.MaxX), MaxY: math.Min(r.MaxY, o.MaxY),
	}
}

// OverlapArea returns the area of the intersection of r and o.
func (r Rect) OverlapArea(o Rect) float64 {
	w := math.Min(r.MaxX, o.MaxX) - math.Max(r.MinX, o.MinX)
	if w <= 0 {
		return 0
	}
	h := math.Min(r.MaxY, o.MaxY) - math.Max(r.MinY, o.MinY)
	if h <= 0 {
		return 0
	}
	return w * h
}

// Union returns the minimal rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, o.MinX), MinY: math.Min(r.MinY, o.MinY),
		MaxX: math.Max(r.MaxX, o.MaxX), MaxY: math.Max(r.MaxY, o.MaxY),
	}
}

// ExpandPoint returns the minimal rectangle containing r and p.
func (r Rect) ExpandPoint(p Point) Rect {
	if r.Empty() {
		return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
	}
	return Rect{
		MinX: math.Min(r.MinX, p.X), MinY: math.Min(r.MinY, p.Y),
		MaxX: math.Max(r.MaxX, p.X), MaxY: math.Max(r.MaxY, p.Y),
	}
}

// Buffer returns r grown by d on every side.
func (r Rect) Buffer(d float64) Rect {
	return Rect{MinX: r.MinX - d, MinY: r.MinY - d, MaxX: r.MaxX + d, MaxY: r.MaxY + d}
}

// Vertices returns the four corners of r in counter-clockwise order starting
// at (MinX, MinY). These are the visibility-graph nodes an obstacle
// contributes.
func (r Rect) Vertices() [4]Point {
	return [4]Point{
		{r.MinX, r.MinY}, {r.MaxX, r.MinY}, {r.MaxX, r.MaxY}, {r.MinX, r.MaxY},
	}
}

// Edges returns the four boundary edges of r in counter-clockwise order.
func (r Rect) Edges() [4]Segment {
	v := r.Vertices()
	return [4]Segment{{v[0], v[1]}, {v[1], v[2]}, {v[2], v[3]}, {v[3], v[0]}}
}

// DistToPoint returns the minimum distance from p to the closed rectangle r
// (0 when p is inside).
func (r Rect) DistToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.MinX-p.X, p.X-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-p.Y, p.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

// DistToRect returns the minimum distance between the closed rectangles r
// and o (0 when they overlap). This is the R-tree mindist metric for
// rectangle queries.
func (r Rect) DistToRect(o Rect) float64 {
	dx := math.Max(0, math.Max(r.MinX-o.MaxX, o.MinX-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-o.MaxY, o.MinY-r.MaxY))
	return math.Hypot(dx, dy)
}

// DistToSegment returns the minimum distance between the closed rectangle r
// and the segment s (0 when they intersect). This is the mindist(e, q)
// metric the paper uses to order R-tree entries against the query segment.
func (r Rect) DistToSegment(s Segment) float64 {
	if r.IntersectsSegment(s) {
		return 0
	}
	d := math.Inf(1)
	for _, e := range r.Edges() {
		d = math.Min(d, SegSegDist(e, s))
	}
	return d
}

// IntersectsSegment reports whether s intersects the closed rectangle r.
// It clips the segment against the rectangle's slabs (Liang-Barsky), which
// covers containment, crossing and boundary touching in one pass; this is
// the hottest predicate of the visibility-graph maintenance.
func (r Rect) IntersectsSegment(s Segment) bool {
	_, _, ok := r.ClipSegment(s)
	return ok
}

// ClipSegment computes the parameter range [t0, t1] of s that lies inside
// the closed rectangle r (Liang-Barsky). ok is false when s misses r.
func (r Rect) ClipSegment(s Segment) (t0, t1 float64, ok bool) {
	return ClipSeg(r.MinX, r.MinY, r.MaxX, r.MaxY, s.A.X, s.A.Y, s.B.X, s.B.Y)
}

// ClipSeg is the scalar kernel behind Rect.ClipSegment: it clips the segment
// (ax, ay)-(bx, by) against the closed rectangle [minX, maxX] x [minY, maxY]
// (Liang-Barsky). This predicate dominates visibility-graph maintenance, so
// flat-memory callers (the occlusion index, the obstacle BVH) invoke it on
// raw coordinates without materializing Rect or Segment values; the slab
// updates are written out inline.
func ClipSeg(minX, minY, maxX, maxY, ax, ay, bx, by float64) (t0, t1 float64, ok bool) {
	// Box-separation fast reject, division-free. It never changes the
	// verdict: with both endpoints beyond a slab by more than Eps, the slab
	// pass below either rejects outright (degenerate axis) or drives t0
	// strictly past 1 while t1 never exceeds 1, so the final t0 > t1 check
	// rejects. Most sight lines tested against an obstacle set miss most
	// obstacles, making this the common path.
	if (ax < minX-Eps && bx < minX-Eps) || (ax > maxX+Eps && bx > maxX+Eps) ||
		(ay < minY-Eps && by < minY-Eps) || (ay > maxY+Eps && by > maxY+Eps) {
		return 0, 0, false
	}
	t0, t1 = 0, 1
	d := bx - ax
	if d > Eps || d < -Eps {
		ta := (minX - ax) / d
		tb := (maxX - ax) / d
		if ta > tb {
			ta, tb = tb, ta
		}
		if ta > t0 {
			t0 = ta
		}
		if tb < t1 {
			t1 = tb
		}
		if t0 > t1+Eps {
			return 0, 0, false
		}
	} else if ax < minX-Eps || ax > maxX+Eps {
		return 0, 0, false
	}
	d = by - ay
	if d > Eps || d < -Eps {
		ta := (minY - ay) / d
		tb := (maxY - ay) / d
		if ta > tb {
			ta, tb = tb, ta
		}
		if ta > t0 {
			t0 = ta
		}
		if tb < t1 {
			t1 = tb
		}
		if t0 > t1+Eps {
			return 0, 0, false
		}
	} else if ay < minY-Eps || ay > maxY+Eps {
		return 0, 0, false
	}
	if t0 > t1 {
		return 0, 0, false
	}
	return t0, t1, true
}

// BlocksSegment reports whether the segment s crosses the open interior of
// the obstacle r, i.e. whether r blocks the sight line s. Touching the
// boundary, running along an edge, or passing through a corner does not
// block (Definition 1's visibility semantics).
func (r Rect) BlocksSegment(s Segment) bool {
	t0, t1, ok := r.ClipSegment(s)
	if !ok {
		return false
	}
	// The clipped chord must have positive length to pass through the
	// interior; a corner touch yields t0 ~= t1.
	if (t1-t0)*s.Length() <= Eps*10 {
		return false
	}
	// The chord of a convex region lies inside it; its midpoint is strictly
	// interior unless the chord runs along the boundary.
	return r.ContainsOpen(s.At((t0 + t1) / 2))
}

// BlocksSegLen is the scalar kernel behind Rect.BlocksSegment for callers
// that already know the segment's length: segLen must equal
// Dist((ax,ay), (bx,by)). Hot loops test one sight line against many
// obstacles, so hoisting the square root out of the per-obstacle test is
// worth the extra parameter. The verdict is bit-identical to BlocksSegment
// because every arithmetic step below mirrors it exactly.
func BlocksSegLen(minX, minY, maxX, maxY, ax, ay, bx, by, segLen float64) bool {
	t0, t1, ok := ClipSeg(minX, minY, maxX, maxY, ax, ay, bx, by)
	if !ok {
		return false
	}
	if (t1-t0)*segLen <= Eps*10 {
		return false
	}
	tm := (t0 + t1) / 2
	mx := ax + tm*(bx-ax)
	my := ay + tm*(by-ay)
	return minX+Eps < mx && mx < maxX-Eps &&
		minY+Eps < my && my < maxY-Eps
}
