// Package minheap provides a typed binary min-heap keyed by float64.
// It backs the best-first R-tree traversals (entries ordered by mindist to
// the query segment) and Dijkstra's algorithm over the local visibility
// graph. Ties are broken by insertion order so traversals are
// deterministic — a property the paper-figure regression tests and the
// bit-identical serving tests depend on.
package minheap
