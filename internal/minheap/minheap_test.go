package minheap

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHeapOrder(t *testing.T) {
	var h Heap[string]
	h.Push(3, "c")
	h.Push(1, "a")
	h.Push(2, "b")
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	if k, v := h.Peek(); k != 1 || v != "a" {
		t.Fatalf("Peek = %v %q", k, v)
	}
	want := []string{"a", "b", "c"}
	for _, w := range want {
		if _, v := h.Pop(); v != w {
			t.Fatalf("Pop = %q, want %q", v, w)
		}
	}
	if !h.Empty() {
		t.Fatal("heap not empty after draining")
	}
}

func TestHeapTieBreakFIFO(t *testing.T) {
	var h Heap[int]
	for i := 0; i < 10; i++ {
		h.Push(7, i)
	}
	for i := 0; i < 10; i++ {
		if _, v := h.Pop(); v != i {
			t.Fatalf("tie-break order broken: got %d want %d", v, i)
		}
	}
}

func TestHeapReset(t *testing.T) {
	var h Heap[int]
	h.Push(1, 1)
	h.Push(2, 2)
	h.Reset()
	if !h.Empty() {
		t.Fatal("Reset did not empty heap")
	}
	h.Push(5, 50)
	if k, v := h.Pop(); k != 5 || v != 50 {
		t.Fatalf("heap unusable after Reset: %v %v", k, v)
	}
}

func TestHeapRandomAgainstSort(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(500)
		keys := make([]float64, n)
		var h Heap[int]
		for i := range keys {
			keys[i] = float64(r.Intn(100)) // duplicates likely
			h.Push(keys[i], i)
		}
		sort.Float64s(keys)
		for i := 0; i < n; i++ {
			k, _ := h.Pop()
			if k != keys[i] {
				t.Fatalf("trial %d: pop %d = %v, want %v", trial, i, k, keys[i])
			}
		}
	}
}

func TestHeapInterleavedPushPop(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var h Heap[float64]
	last := -1.0
	live := 0
	for i := 0; i < 5000; i++ {
		if h.Empty() || r.Float64() < 0.6 {
			k := r.Float64() * 100
			h.Push(k, k)
			live++
		} else {
			k, v := h.Pop()
			live--
			if k != v {
				t.Fatal("key/value mismatch")
			}
			_ = last
			last = k
		}
		if h.Len() != live {
			t.Fatalf("Len = %d, want %d", h.Len(), live)
		}
	}
}

func BenchmarkHeapPushPop(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	keys := make([]float64, 1024)
	for i := range keys {
		keys[i] = r.Float64()
	}
	b.ResetTimer()
	var h Heap[int]
	for i := 0; i < b.N; i++ {
		h.Push(keys[i%1024], i)
		if h.Len() > 512 {
			h.Pop()
		}
	}
}
