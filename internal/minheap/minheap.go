package minheap

// Heap is a binary min-heap of values of type T ordered by a float64 key,
// then by an optional caller-supplied tie key, then by insertion order.
// The zero value is an empty heap ready to use.
type Heap[T any] struct {
	keys []float64
	ties []uint64
	seqs []uint64
	vals []T
	seq  uint64
}

// Len returns the number of elements in the heap.
func (h *Heap[T]) Len() int { return len(h.keys) }

// Empty reports whether the heap has no elements.
func (h *Heap[T]) Empty() bool { return len(h.keys) == 0 }

// Push inserts v with the given key and tie key 0.
func (h *Heap[T]) Push(key float64, v T) { h.PushTie(key, 0, v) }

// PushTie inserts v with the given key and tie key. Elements with equal
// float keys pop in ascending tie order; equal (key, tie) pairs pop in
// insertion order. Tie keys make the pop order a pure function of the pushed
// (key, tie) multiset whenever ties are distinct, independent of push order —
// the property the R-tree nearest iterator needs for structure-independent
// emission.
func (h *Heap[T]) PushTie(key float64, tie uint64, v T) {
	h.keys = append(h.keys, key)
	h.ties = append(h.ties, tie)
	h.seqs = append(h.seqs, h.seq)
	h.vals = append(h.vals, v)
	h.seq++
	h.up(len(h.keys) - 1)
}

// Peek returns the minimum element without removing it.
// It panics when the heap is empty.
func (h *Heap[T]) Peek() (key float64, v T) {
	return h.keys[0], h.vals[0]
}

// PeekKey returns the minimum key without removing it.
// It panics when the heap is empty.
func (h *Heap[T]) PeekKey() float64 { return h.keys[0] }

// Pop removes and returns the minimum element.
// It panics when the heap is empty.
func (h *Heap[T]) Pop() (key float64, v T) {
	key, v = h.keys[0], h.vals[0]
	n := len(h.keys) - 1
	h.keys[0], h.ties[0], h.seqs[0], h.vals[0] = h.keys[n], h.ties[n], h.seqs[n], h.vals[n]
	var zero T
	h.vals[n] = zero // release reference for GC
	h.keys, h.ties, h.seqs, h.vals = h.keys[:n], h.ties[:n], h.seqs[:n], h.vals[:n]
	if n > 0 {
		h.down(0)
	}
	return key, v
}

// Reset empties the heap, retaining allocated capacity.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.vals {
		h.vals[i] = zero
	}
	h.keys, h.ties, h.seqs, h.vals = h.keys[:0], h.ties[:0], h.seqs[:0], h.vals[:0]
	h.seq = 0
}

func (h *Heap[T]) less(i, j int) bool {
	if h.keys[i] != h.keys[j] {
		return h.keys[i] < h.keys[j]
	}
	if h.ties[i] != h.ties[j] {
		return h.ties[i] < h.ties[j]
	}
	return h.seqs[i] < h.seqs[j]
}

func (h *Heap[T]) swap(i, j int) {
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.ties[i], h.ties[j] = h.ties[j], h.ties[i]
	h.seqs[i], h.seqs[j] = h.seqs[j], h.seqs[i]
	h.vals[i], h.vals[j] = h.vals[j], h.vals[i]
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.keys)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
