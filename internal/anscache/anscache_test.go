package anscache

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"connquery/internal/geom"
)

func region(r geom.Rect) Region { return Region{Rect: r, Points: true, Obstacles: true} }

func TestDisabledCache(t *testing.T) {
	if New(0) != nil || New(-5) != nil {
		t.Fatal("New with a non-positive budget must return the disabled cache")
	}
	var c *Cache
	c.Put("k", 1, "v", Nothing(), 8)
	if _, ok := c.Get("k", 1); ok {
		t.Fatal("nil cache must miss")
	}
	c.Invalidate(1, 2, geom.R(0, 0, 1, 1), true)
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
	if c.Len() != 0 {
		t.Fatal("nil cache Len != 0")
	}
}

func TestGetPutEpochRange(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get("a", 1); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 3, "v3", region(geom.R(0, 0, 1, 1)), 8)
	if v, ok := c.Get("a", 3); !ok || v != "v3" {
		t.Fatalf("hit at the insertion epoch: %v %v", v, ok)
	}
	if _, ok := c.Get("a", 2); ok {
		t.Fatal("hit below the validity range")
	}
	if _, ok := c.Get("a", 4); ok {
		t.Fatal("hit above the validity range")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.PromotedHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("contents = %+v", st)
	}
}

func TestPromotionAndInvalidation(t *testing.T) {
	c := New(1 << 20)
	c.Put("near", 1, "near", region(geom.R(0, 0, 10, 10)), 8)
	c.Put("far", 1, "far", region(geom.R(100, 100, 110, 110)), 8)

	// A mutation touching only "near"'s region: "far" is promoted.
	c.Invalidate(1, 2, geom.R(5, 5, 6, 6), true)
	if _, ok := c.Get("near", 2); ok {
		t.Fatal("intersecting entry must be invalidated")
	}
	if v, ok := c.Get("far", 2); !ok || v != "far" {
		t.Fatal("non-intersecting entry must be promoted")
	}
	// The promoted entry still serves the old epoch.
	if _, ok := c.Get("far", 1); !ok {
		t.Fatal("promoted entry must keep serving its original epoch")
	}
	st := c.Stats()
	if st.Promotions != 1 || st.Invalidations != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PromotedHits != 1 {
		t.Fatalf("hit at epoch 2 of an entry from epoch 1 must count as promoted: %+v", st)
	}
}

func TestSensitivity(t *testing.T) {
	c := New(1 << 20)
	r := geom.R(0, 0, 10, 10)
	c.Put("pts", 1, "pts", Region{Rect: r, Points: true}, 8)
	c.Put("obs", 1, "obs", Region{Rect: r, Obstacles: true}, 8)

	// An obstacle mutation inside both rects: only "obs" is sensitive.
	c.Invalidate(1, 2, geom.R(1, 1, 2, 2), false)
	if _, ok := c.Get("pts", 2); !ok {
		t.Fatal("point-only entry must survive an obstacle mutation")
	}
	if _, ok := c.Get("obs", 2); ok {
		t.Fatal("obstacle-sensitive entry must be invalidated")
	}
	// A point mutation now kills the survivor.
	c.Invalidate(2, 3, geom.R(1, 1, 2, 2), true)
	if _, ok := c.Get("pts", 3); ok {
		t.Fatal("point-sensitive entry must be invalidated by a point mutation")
	}
}

func TestEverywhereAndNothing(t *testing.T) {
	c := New(1 << 20)
	c.Put("all", 1, "all", Everywhere(), 8)
	c.Put("none", 1, "none", Nothing(), 8)
	c.Invalidate(1, 2, geom.R(1e12, 1e12, 1e12+1, 1e12+1), false)
	if _, ok := c.Get("all", 2); ok {
		t.Fatal("Everywhere region must be invalidated by any mutation")
	}
	if _, ok := c.Get("none", 2); !ok {
		t.Fatal("Nothing region must survive every mutation")
	}
	if !Everywhere().Rect.Intersects(geom.R(-1e300, -1e300, -1e299, -1e299)) {
		t.Fatal("infinite rect must intersect everything")
	}
	if math.IsInf(Everywhere().Rect.MinX, -1) != true {
		t.Fatal("Everywhere rect must be unbounded")
	}
}

func TestStaleSweep(t *testing.T) {
	c := New(1 << 20)
	c.Put("stale", 1, "stale", Nothing(), 8)
	// The chain has already advanced 2 -> 3; the entry's range ends at 1, so
	// no change box was observed for epoch 1 -> 2 and it must be swept even
	// though its region is empty.
	c.Invalidate(2, 3, geom.R(0, 0, 1, 1), true)
	if _, ok := c.Get("stale", 1); ok {
		t.Fatal("stale entry must be swept, not promoted")
	}
	if st := c.Stats(); st.Sweeps != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutReplaceRules(t *testing.T) {
	c := New(1 << 20)
	c.Put("k", 1, "old", Nothing(), 8)
	c.Invalidate(1, 2, geom.R(0, 0, 1, 1), true) // old promoted to [1,2]
	// A query pinned to epoch 1 misses nothing here, but a put from a pinned
	// epoch must not clobber the wider entry.
	c.Put("k", 1, "pinned", Nothing(), 8)
	if v, _ := c.Get("k", 2); v != "old" {
		t.Fatal("a narrower pinned-epoch put must not replace the promoted entry")
	}
	// A put at the current frontier replaces.
	c.Put("k", 2, "new", Nothing(), 8)
	if v, _ := c.Get("k", 2); v != "new" {
		t.Fatal("a put at the entry's last epoch must replace it")
	}
	if _, ok := c.Get("k", 1); ok {
		t.Fatal("the replacement starts a fresh validity range")
	}
}

func TestEviction(t *testing.T) {
	// Budget small enough that each shard holds roughly two entries.
	c := New(numShards * 400)
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("key-%d", i), 1, i, Nothing(), 64)
	}
	// An answer bigger than a whole shard's budget is not cached at all.
	c.Put("huge", 1, "huge", Nothing(), 4000)
	if _, ok := c.Get("huge", 1); ok {
		t.Fatal("oversized entry must be rejected")
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions, stats = %+v", st)
	}
	if st.Entries >= 200 {
		t.Fatalf("size bound not enforced: %+v", st)
	}
	if c.Len() != st.Entries {
		t.Fatalf("Len %d != Stats.Entries %d", c.Len(), st.Entries)
	}
	for i := range c.shards {
		s := &c.shards[i]
		if s.bytes > c.maxShard {
			t.Fatalf("shard %d over budget: %d > %d", i, s.bytes, c.maxShard)
		}
	}
}

func TestLRUOrder(t *testing.T) {
	c := New(1 << 20)
	s := &c.shards[0]
	var es []*entry
	for i := 0; i < 3; i++ {
		e := &entry{key: fmt.Sprint(i), size: 1}
		s.byKey[e.key] = e
		s.pushFront(e)
		es = append(es, e)
	}
	// Head is 2, tail is 0; touching 0 moves it to the head.
	s.moveToFront(es[0])
	if s.head != es[0] || s.tail != es[1] {
		t.Fatalf("LRU order wrong: head %v tail %v", s.head.key, s.tail.key)
	}
	s.moveToFront(es[0]) // already at head: no-op
	if s.head != es[0] {
		t.Fatal("moveToFront of the head must be a no-op")
	}
	s.remove(es[2]) // middle removal keeps the list linked
	if s.head != es[0] || s.head.next != es[1] || s.tail != es[1] {
		t.Fatal("middle removal broke the list")
	}
	s.remove(es[0])
	s.remove(es[1])
	if s.head != nil || s.tail != nil || len(s.byKey) != 0 {
		t.Fatal("emptied shard must have a nil list")
	}
}

func TestConcurrentUse(t *testing.T) {
	c := New(1 << 18)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k-%d", i%37)
				c.Put(key, uint64(1+i%3), i, region(geom.R(0, 0, float64(i%50), 10)), 32)
				c.Get(key, uint64(1+i%3))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for e := uint64(1); e < 100; e++ {
			c.Invalidate(e, e+1, geom.R(5, 5, 6, 6), e%2 == 0)
		}
	}()
	wg.Wait()
	c.Stats() // must not race with anything above
}

// TestInvalidateBatch pins the batched sweep: one call covers a whole tick's
// union change boxes, entries must survive BOTH applicable boxes to be
// promoted across the full epoch span, and stale entries sweep exactly as
// under per-mutation invalidation.
func TestInvalidateBatch(t *testing.T) {
	c := New(1 << 20)
	r := geom.R(0, 0, 10, 10)
	c.Put("both-far", 1, "both-far", region(geom.R(100, 100, 110, 110)), 8)
	c.Put("pt-hit", 1, "pt-hit", region(r), 8)
	c.Put("obs-hit", 1, "obs-hit", region(geom.R(40, 40, 50, 50)), 8)
	c.Put("pt-only-obs-box", 1, "v", Region{Rect: geom.R(40, 40, 50, 50), Points: true}, 8)
	c.Put("stale", 0, "stale", Nothing(), 8)

	// One batch spanning epochs 1 -> 4: point mutations with union box
	// around (5,5), obstacle mutations with union box around (45,45).
	c.InvalidateBatch(1, 4, geom.R(5, 5, 6, 6), geom.R(45, 45, 46, 46), true, true)

	if v, ok := c.Get("both-far", 4); !ok || v != "both-far" {
		t.Fatal("entry far from both union boxes must be promoted across the whole batch")
	}
	if _, ok := c.Get("both-far", 2); !ok {
		t.Fatal("batch promotion must cover the intermediate epochs")
	}
	if _, ok := c.Get("pt-hit", 4); ok {
		t.Fatal("entry intersecting the point union box must drop")
	}
	if _, ok := c.Get("obs-hit", 4); ok {
		t.Fatal("entry intersecting the obstacle union box must drop")
	}
	if v, ok := c.Get("pt-only-obs-box", 4); !ok || v != "v" {
		t.Fatal("point-only entry must ignore the obstacle union box")
	}
	if _, ok := c.Get("stale", 0); ok {
		t.Fatal("stale entry must be swept by the batched invalidation")
	}
	st := c.Stats()
	if st.Promotions != 2 || st.Invalidations != 2 || st.Sweeps != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// A point-only batch must leave obstacle-only entries alone even when
	// the (meaningless) obstacle box would cover them.
	c.Put("obs-only", 4, "obs-only", Region{Rect: r, Obstacles: true}, 8)
	c.InvalidateBatch(4, 6, geom.R(1, 1, 2, 2), r, true, false)
	if _, ok := c.Get("obs-only", 6); !ok {
		t.Fatal("obstacle-only entry must survive a point-only batch")
	}

	// Nil cache: no-op.
	var nc *Cache
	nc.InvalidateBatch(1, 2, r, r, true, true)
}
