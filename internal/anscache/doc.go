// Package anscache is the answer cache behind the public query surface: a
// sharded, size-bounded map from canonical request fingerprints to answer
// payloads, keyed by the MVCC epoch range the payload is valid for.
//
// Every entry carries a conservative spatial impact Region — the bounding
// box of the query span inflated by the maximum relevant obstructed
// distance, plus flags for which mutation kinds (point vs obstacle) can
// affect the answer at all. A shortest obstructed path of length d starting
// on the query span lies entirely within Euclidean distance d of it, so a
// mutation whose own bounding box does not intersect the inflated region
// can neither shorten nor lengthen any path that the answer depends on:
// the answer is bit-identical across that mutation.
//
// The MVCC writer calls Invalidate with each mutation's change box before
// publishing the new version. Entries valid at the pre-mutation epoch whose
// region intersects the change (and is sensitive to the mutation kind) are
// dropped; every other such entry is promoted — its validity range is
// extended to the new epoch — so hot requests keep hitting across unrelated
// writes, and a Watch subscription whose entry survives delivers the
// promoted answer without re-executing the engine. Answers whose region is
// unbounded (an unreachable interval makes any mutation anywhere relevant)
// use an infinite rectangle, degrading gracefully to blanket invalidation.
//
// Entries are evicted per shard in LRU order once the shard's share of the
// byte budget is exceeded, and entries that fall behind the invalidation
// frontier (their range no longer reaches the pre-mutation epoch, which can
// only happen to answers cached for explicitly pinned old versions) are
// swept out rather than promoted: the cache never guesses about epochs it
// did not observe a change box for.
//
// The package is deliberately value-agnostic: it stores opaque payloads and
// leaves fingerprinting and region computation to the caller. Invalidation
// sweeps every entry (O(cache size) per mutation, a few ns per entry); a
// spatial index over entry regions is the upgrade path if caches grow to
// the point where the sweep shows up next to the mutation's own tree work.
package anscache
