package anscache

import (
	"hash/maphash"
	"math"
	"sync"
	"sync/atomic"

	"connquery/internal/geom"
)

// Region is the conservative spatial impact region of one cached answer:
// a mutation can change the answer only if it is of a kind the answer is
// sensitive to and its change box intersects Rect.
type Region struct {
	// Rect bounds every path the answer depends on (query span bbox inflated
	// by the maximum relevant obstructed distance). May be infinite.
	Rect geom.Rect
	// Points reports sensitivity to data-point insertions and deletions.
	Points bool
	// Obstacles reports sensitivity to obstacle insertions and deletions.
	Obstacles bool
}

// InfiniteRect is the unbounded rectangle: it intersects every change box.
// Callers that are sensitive to only one mutation kind pair it with the
// matching flag; Everywhere is the both-sensitive blanket.
func InfiniteRect() geom.Rect {
	inf := math.Inf(1)
	return geom.Rect{MinX: -inf, MinY: -inf, MaxX: inf, MaxY: inf}
}

// Everywhere is the blanket region: any mutation anywhere invalidates. It is
// the fallback for answers with an unreachable interval, whose validity no
// finite radius can bound.
func Everywhere() Region {
	return Region{Rect: InfiniteRect(), Points: true, Obstacles: true}
}

// Nothing is the empty region: no mutation can ever change the answer
// (e.g. a join over zero query points). Such entries are promoted across
// every mutation.
func Nothing() Region { return Region{} }

// survives reports whether an answer with this region is unaffected by a
// mutation of the given kind with the given change box.
func (rg Region) survives(change geom.Rect, points bool) bool {
	if points && !rg.Points {
		return true
	}
	if !points && !rg.Obstacles {
		return true
	}
	return !rg.Rect.Intersects(change)
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits counts lookups served from the cache; PromotedHits is the subset
	// whose entry was computed at an earlier epoch and survived at least the
	// mutations up to the queried one.
	Hits         int64
	PromotedHits int64
	// Misses counts lookups that fell through to execution.
	Misses int64
	// Promotions counts entry validity-range extensions across mutations;
	// Invalidations counts entries dropped because a mutation's change box
	// intersected their impact region.
	Promotions    int64
	Invalidations int64
	// Evictions counts entries dropped by the size bound, Sweeps the stale
	// entries removed for falling behind the invalidation frontier.
	Evictions int64
	Sweeps    int64
	// Entries and Bytes describe the current cache contents.
	Entries int
	Bytes   int64
}

const numShards = 16

// entry is one cached answer with its validity range [first, last]: the
// payload is bit-identical to an execution at any epoch in the range.
type entry struct {
	key    string
	value  any
	region Region
	first  uint64
	last   uint64
	size   int64

	// LRU list links within the shard; newer towards head.
	prev, next *entry
}

// shard is one lock domain: a map plus an intrusive LRU list.
type shard struct {
	mu    sync.Mutex
	byKey map[string]*entry
	head  *entry // most recently used
	tail  *entry // least recently used
	bytes int64
}

// Cache is a sharded, size-bounded answer cache. The zero value is not
// usable; construct with New. A nil *Cache is valid and behaves as a
// disabled cache (all lookups miss, writes are dropped).
type Cache struct {
	shards   [numShards]shard
	seed     maphash.Seed
	maxShard int64 // per-shard byte budget

	hits          atomic.Int64
	promotedHits  atomic.Int64
	misses        atomic.Int64
	promotions    atomic.Int64
	invalidations atomic.Int64
	evictions     atomic.Int64
	sweeps        atomic.Int64
}

// New builds a cache bounded to roughly maxBytes of payload. maxBytes <= 0
// returns nil — the disabled cache.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	c := &Cache{seed: maphash.MakeSeed()}
	c.maxShard = maxBytes / numShards
	if c.maxShard < 1 {
		c.maxShard = 1
	}
	for i := range c.shards {
		c.shards[i].byKey = make(map[string]*entry)
	}
	return c
}

func (c *Cache) shardOf(key string) *shard {
	return &c.shards[maphash.String(c.seed, key)%numShards]
}

// Get returns the payload cached under key if its validity range covers
// epoch, bumping the entry's recency.
func (c *Cache) Get(key string, epoch uint64) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardOf(key)
	s.mu.Lock()
	e, ok := s.byKey[key]
	if !ok || epoch < e.first || epoch > e.last {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.moveToFront(e)
	v := e.value
	promoted := epoch > e.first
	s.mu.Unlock()
	c.hits.Add(1)
	if promoted {
		c.promotedHits.Add(1)
	}
	return v, true
}

// Put caches value under key as valid at exactly epoch; invalidation sweeps
// extend the range as the entry survives mutations. An existing entry whose
// range reaches a later epoch wins over the new one (it can only have been
// produced by a query pinned to an older version, and replacing the wider
// entry would throw away its accumulated promotions).
func (c *Cache) Put(key string, epoch uint64, value any, region Region, size int64) {
	if c == nil {
		return
	}
	size += int64(len(key)) + 96 // entry bookkeeping overhead
	if size > c.maxShard {
		return // an oversized answer would wipe its whole shard for one entry
	}
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.byKey[key]; ok {
		if old.last > epoch {
			return
		}
		s.remove(old)
	}
	e := &entry{key: key, value: value, region: region, first: epoch, last: epoch, size: size}
	s.byKey[key] = e
	s.pushFront(e)
	s.bytes += size
	for s.bytes > c.maxShard && s.tail != nil && s.tail != e {
		c.evictions.Add(1)
		s.remove(s.tail)
	}
}

// Invalidate applies one committed mutation to the cache: entries valid at
// the pre-mutation epoch `from` either survive (their region is insensitive
// to the mutation, or does not intersect its change box) and are promoted
// to the post-mutation epoch `to`, or are dropped. Entries whose range ends
// before `from` were cached for a pinned old version after the chain had
// already moved on; they are swept, since no change box was observed for
// the epochs between. The caller must invoke Invalidate for every committed
// mutation, in commit order, before publishing the new version.
func (c *Cache) Invalidate(from, to uint64, change geom.Rect, points bool) {
	if points {
		c.InvalidateBatch(from, to, change, geom.Rect{}, true, false)
	} else {
		c.InvalidateBatch(from, to, geom.Rect{}, change, false, true)
	}
}

// InvalidateBatch applies one committed batch of mutations in a single
// sweep: ptBox is the union change box of the batch's point mutations
// (meaningful only when points is set), obsBox the union box of its obstacle
// mutations (meaningful only when obstacles is set). An entry survives only
// if it survives both union boxes; the union is conservative — strictly more
// entries drop than under per-mutation invalidation — so promoted entries
// stay bit-identical to re-execution. Epoch semantics match Invalidate:
// entries valid at `from` are promoted to `to` or dropped, everything else
// is swept.
func (c *Cache) InvalidateBatch(from, to uint64, ptBox, obsBox geom.Rect, points, obstacles bool) {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, e := range s.byKey {
			switch {
			case e.last != from:
				c.sweeps.Add(1)
				s.remove(e)
			case (!points || e.region.survives(ptBox, true)) &&
				(!obstacles || e.region.survives(obsBox, false)):
				e.last = to
				c.promotions.Add(1)
			default:
				c.invalidations.Add(1)
				s.remove(e)
			}
		}
		s.mu.Unlock()
	}
}

// Stats returns a snapshot of the counters and current contents.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:          c.hits.Load(),
		PromotedHits:  c.promotedHits.Load(),
		Misses:        c.misses.Load(),
		Promotions:    c.promotions.Load(),
		Invalidations: c.invalidations.Load(),
		Evictions:     c.evictions.Load(),
		Sweeps:        c.sweeps.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.byKey)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.byKey)
		s.mu.Unlock()
	}
	return n
}

// ---------------------------------------------------------------------------
// Intrusive per-shard LRU list. Callers hold the shard lock.

func (s *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *shard) remove(e *entry) {
	s.unlink(e)
	delete(s.byKey, e.key)
	s.bytes -= e.size
}
