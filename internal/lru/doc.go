// Package lru implements the least-recently-used page buffer the paper's
// buffer-size experiment (Figure 12) places in front of the R-trees. A page
// access that hits the buffer is free; a miss is a page fault charged at
// the paper's 10 ms I/O cost.
//
// Buffer locks internally, so one buffer may be shared by concurrent
// queries and by ResetStats (the warm-up/measurement boundary) without
// external synchronization; hit/miss counters are part of the same
// critical section, so their sums stay consistent with residency.
package lru
