package lru

import "sync"

// Buffer is a fixed-capacity LRU cache of page IDs. A zero-capacity buffer
// misses on every access (the paper's default "no buffer" configuration).
//
// A Buffer is safe for concurrent use: every operation takes an internal
// mutex, so buffered query handles can serve concurrent queries (and
// ResetStats can run concurrently with them) without corrupting the
// recency list or the hit/miss counters. The lock is uncontended in the
// single-goroutine benchmark harness and costs nanoseconds per page access
// against the paper's simulated 10 ms fault charge.
type Buffer struct {
	mu       sync.Mutex
	capacity int
	nodes    map[int64]*node
	head     *node // most recently used
	tail     *node // least recently used
	hits     int64
	misses   int64
}

type node struct {
	key        int64
	prev, next *node
}

// New creates a buffer holding up to capacity pages.
func New(capacity int) *Buffer {
	if capacity < 0 {
		capacity = 0
	}
	return &Buffer{capacity: capacity, nodes: make(map[int64]*node, capacity)}
}

// Capacity returns the buffer's page capacity.
func (b *Buffer) Capacity() int { return b.capacity }

// Len returns the number of resident pages.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.nodes)
}

// Hits returns the number of accesses served from the buffer.
func (b *Buffer) Hits() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hits
}

// Misses returns the number of page faults.
func (b *Buffer) Misses() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.misses
}

// ResetStats zeroes the hit/miss counters, keeping resident pages. The
// paper's Figure 12 methodology warms the buffer with 50 queries and reports
// only the remaining 50; ResetStats is the boundary between the two phases.
// It may run concurrently with accesses; in-flight queries simply split
// their counts across the two phases.
func (b *Buffer) ResetStats() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.hits, b.misses = 0, 0
}

// Access touches a page, returning true on a hit and false on a fault.
// On a fault the page is loaded, evicting the LRU page when full.
func (b *Buffer) Access(key int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.capacity == 0 {
		b.misses++
		return false
	}
	if n, ok := b.nodes[key]; ok {
		b.hits++
		b.moveToFront(n)
		return true
	}
	b.misses++
	n := &node{key: key}
	b.nodes[key] = n
	b.pushFront(n)
	if len(b.nodes) > b.capacity {
		lru := b.tail
		b.unlink(lru)
		delete(b.nodes, lru.key)
	}
	return false
}

// Contains reports whether the page is resident without touching it.
func (b *Buffer) Contains(key int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.nodes[key]
	return ok
}

func (b *Buffer) pushFront(n *node) {
	n.prev = nil
	n.next = b.head
	if b.head != nil {
		b.head.prev = n
	}
	b.head = n
	if b.tail == nil {
		b.tail = n
	}
}

func (b *Buffer) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		b.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		b.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (b *Buffer) moveToFront(n *node) {
	if b.head == n {
		return
	}
	b.unlink(n)
	b.pushFront(n)
}
