package lru

import (
	"math/rand"
	"testing"
)

func TestZeroCapacityAlwaysMisses(t *testing.T) {
	b := New(0)
	for i := 0; i < 10; i++ {
		if b.Access(1) {
			t.Fatal("zero-capacity buffer reported a hit")
		}
	}
	if b.Misses() != 10 || b.Hits() != 0 {
		t.Fatalf("hits=%d misses=%d", b.Hits(), b.Misses())
	}
}

func TestHitMissEviction(t *testing.T) {
	b := New(2)
	if b.Access(1) {
		t.Fatal("cold access hit")
	}
	if b.Access(2) {
		t.Fatal("cold access hit")
	}
	if !b.Access(1) {
		t.Fatal("warm access missed")
	}
	// Insert 3: evicts 2 (LRU), not 1 (recently touched).
	if b.Access(3) {
		t.Fatal("cold access hit")
	}
	if b.Contains(2) {
		t.Fatal("LRU page 2 not evicted")
	}
	if !b.Contains(1) || !b.Contains(3) {
		t.Fatal("resident set wrong")
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestResetStatsKeepsResidency(t *testing.T) {
	b := New(4)
	b.Access(1)
	b.Access(2)
	b.ResetStats()
	if b.Hits() != 0 || b.Misses() != 0 {
		t.Fatal("counters not reset")
	}
	if !b.Access(1) {
		t.Fatal("page 1 lost residency across ResetStats")
	}
}

func TestNegativeCapacity(t *testing.T) {
	b := New(-5)
	if b.Capacity() != 0 {
		t.Fatalf("Capacity = %d", b.Capacity())
	}
}

// Reference model: LRU implemented with a slice; cross-check random traces.
func TestLRUMatchesReferenceModel(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		capN := 1 + r.Intn(8)
		b := New(capN)
		var model []int64 // model[0] = MRU
		for step := 0; step < 2000; step++ {
			key := int64(r.Intn(20))
			// Model lookup.
			hitIdx := -1
			for i, k := range model {
				if k == key {
					hitIdx = i
					break
				}
			}
			wantHit := hitIdx >= 0
			if got := b.Access(key); got != wantHit {
				t.Fatalf("trial %d step %d key %d: hit=%v want %v", trial, step, key, got, wantHit)
			}
			if wantHit {
				model = append(model[:hitIdx], model[hitIdx+1:]...)
			}
			model = append([]int64{key}, model...)
			if len(model) > capN {
				model = model[:capN]
			}
			if b.Len() != len(model) {
				t.Fatalf("Len mismatch: %d vs %d", b.Len(), len(model))
			}
		}
	}
}
