// Package flatgeom is the flat-memory geometry kernel behind the query
// engine's visibility tests. It stores the obstacle set of one MVCC version
// as struct-of-arrays data — obstacle rectangles flattened into []float64
// quads, reordered so that each BVH leaf scans a contiguous slab — and
// serves the two obstacle-set queries the visibility graph issues on its
// hot path: "does any loaded obstacle block this sight line?" and "which
// loaded obstacles intersect this window?".
//
// A Kernel is immutable and shared read-only by every query (and every
// batch worker) running against its version: per-query state is reduced to
// a Marks array recording which obstacles the query has loaded so far,
// giving O(1) per-query setup where the previous design built and filled a
// fresh R-tree per query. Obstacle insertions extend a kernel by appending
// to a small linear tail; the BVH is only rebuilt when the tail outgrows
// rebuildTail, so mutation-heavy workloads amortize the build.
//
// Exactness: BVH traversal prunes with the same Eps-padded predicates as
// the R-tree it replaces (geom.ClipSeg for sight lines, geom.Rect
// .Intersects for windows), and leaves decide with the exact
// geom.BlocksSegLen / Intersects kernels, so verdicts and result sets are
// identical to a linear scan over the loaded obstacles.
package flatgeom

// Marks is a generation-stamped membership set over obstacle IDs. Reset is
// O(1) (a generation bump), so a pooled query can clear its loaded set once
// per query without touching the array.
type Marks struct {
	gen []uint32
	cur uint32
}

// Reset empties the set and sizes it for obstacle IDs [0, n).
func (m *Marks) Reset(n int) {
	if cap(m.gen) < n {
		m.gen = make([]uint32, n)
		m.cur = 1
		return
	}
	m.gen = m.gen[:n]
	m.cur++
	if m.cur == 0 { // generation wrap: invalidate every stale stamp
		clear(m.gen)
		m.cur = 1
	}
}

// Set adds id to the set.
func (m *Marks) Set(id int32) { m.gen[id] = m.cur }

// Has reports whether id is in the set.
func (m *Marks) Has(id int32) bool { return m.gen[id] == m.cur }

// Len returns the capacity of the ID space (not the number of set marks).
func (m *Marks) Len() int { return len(m.gen) }
