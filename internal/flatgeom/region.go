package flatgeom

import "connquery/internal/geom"

// This file is the region-scoped extension of the corner-pair certificate
// table (corners.go): a table covering only the corners of the obstacles
// intersecting one build region, so large worlds — whose full quadratic
// table is gated off by cornerTableMaxCorners — can still share precomputed
// sight-line verdicts across the concurrent queries of a spatial hot spot.
// Each covered pair's blocker list is computed over the FULL obstacle set
// (Kernel.AppendBlockers searches the whole BVH plus the linear tail), so
// subset verdicts stay exact no matter where a query's retrieval wanders;
// the region only chooses WHICH pairs are tabulated, never weakens a
// verdict. Pairs outside the covered set report "uncovered" through
// CornerTable.PairVerdict and fall back to the caller's exact geometry.

// Bounds returns the bounding box of the kernel's whole obstacle set (BVH
// root box united with the linear tail), or an inverted empty rectangle for
// an obstacle-free kernel.
func (k *Kernel) Bounds() geom.Rect {
	out := geom.RectFromPoints() // inverted empty
	if len(k.bvh.nodes) > 0 {
		nd := &k.bvh.nodes[0]
		out = geom.Rect{MinX: nd.minX, MinY: nd.minY, MaxX: nd.maxX, MaxY: nd.maxY}
	}
	for id := k.base; id < len(k.all); id++ {
		out = out.Union(k.all[id])
	}
	return out
}

// AppendIntersectingIDs appends the ID of every obstacle in the kernel —
// marked or not, including deleted IDs — whose rectangle intersects w
// (geom.Rect.Intersects semantics) and returns dst. Order follows the BVH
// leaf layout, then the tail.
func (k *Kernel) AppendIntersectingIDs(dst []int32, w geom.Rect) []int32 {
	dst = k.bvh.AppendIntersectingIDs(dst, w)
	for id := k.base; id < len(k.all); id++ {
		if k.all[id].Intersects(w) {
			dst = append(dst, int32(id))
		}
	}
	return dst
}

// AppendIntersectingIDs is the unfiltered form of AppendIntersecting: every
// obstacle ID whose rectangle intersects w, regardless of marks.
func (b *BVH) AppendIntersectingIDs(dst []int32, w geom.Rect) []int32 {
	if len(b.nodes) == 0 {
		return dst
	}
	var stack [64]int32
	top := 0
	stack[0] = 0
	for top >= 0 {
		idx := stack[top]
		top--
		nd := &b.nodes[idx]
		if !(nd.minX <= w.MaxX+geom.Eps && w.MinX <= nd.maxX+geom.Eps &&
			nd.minY <= w.MaxY+geom.Eps && w.MinY <= nd.maxY+geom.Eps) {
			continue
		}
		if nd.b < 0 {
			top++
			stack[top] = nd.a
			top++
			stack[top] = idx + 1
			continue
		}
		qs := b.quads[4*nd.a : 4*(nd.a+nd.b)]
		ids := b.ids[nd.a : nd.a+nd.b]
		for i, id := range ids {
			q := qs[4*i : 4*i+4 : 4*i+4]
			if q[0] <= w.MaxX+geom.Eps && w.MinX <= q[2]+geom.Eps &&
				q[1] <= w.MaxY+geom.Eps && w.MinY <= q[3]+geom.Eps {
				dst = append(dst, id)
			}
		}
	}
	return dst
}

// RegionTable builds a corner-pair certificate table covering the corners of
// every obstacle intersecting region, with full-set blocker lists (the same
// AppendBlockers calls buildCornerTable makes, so covered verdicts are
// bit-identical to the full table's). It returns nil when the region covers
// no obstacle or contributes more than maxCorners corners — the quadratic
// build would then cost more than it amortizes. The returned table is
// immutable and safe for concurrent use, like the kernel itself; it must
// only be consulted with Marks sized for this kernel's ID space.
func (k *Kernel) RegionTable(region geom.Rect, maxCorners int) *CornerTable {
	idsIn := k.AppendIntersectingIDs(nil, region)
	n := 4 * len(idsIn)
	if n == 0 || n > maxCorners {
		return nil
	}
	local := make([]int32, 4*len(k.all))
	for i := range local {
		local[i] = -1
	}
	pts := make([]geom.Point, n)
	for li, id := range idsIn {
		v := k.all[id].Vertices()
		copy(pts[4*li:], v[:])
		for g := 0; g < 4; g++ {
			local[4*int(id)+g] = int32(4*li + g)
		}
	}
	t := &CornerTable{n: n, local: local, offsets: make([]int32, n*n+1)}
	ids := make([]int32, 0, 4*n)
	for i := 0; i < n; i++ {
		pi := pts[i]
		row := i * n
		for j := 0; j < n; j++ {
			if j != i {
				pj := pts[j]
				dx, dy := pj.X-pi.X, pj.Y-pi.Y
				ids = k.AppendBlockers(ids, pi.X, pi.Y, pj.X, pj.Y,
					geom.SegLen(dx, dy, dx*dx+dy*dy))
			}
			t.offsets[row+j+1] = int32(len(ids))
		}
	}
	t.ids = ids
	return t
}
