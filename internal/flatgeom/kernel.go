package flatgeom

import (
	"sync"

	"connquery/internal/geom"
)

// rebuildTail caps the linear overflow tail of a Kernel: obstacle
// insertions extend a kernel by sharing the parent version's BVH and
// scanning the appended obstacles linearly, and only when the tail outgrows
// this bound is the BVH rebuilt over the full set. Visibility queries touch
// every tail obstacle, so the bound keeps the linear part a few cache lines
// while insert-heavy version chains amortize the O(n log n) build.
const rebuildTail = 64

// Kernel is the immutable per-version view of the obstacle set: a BVH over
// the first base obstacles plus a linear tail for obstacles appended since
// the BVH was built. Obstacle IDs are indexes into all, matching the
// engine's R-tree item IDs; deleted obstacles stay in the kernel harmlessly
// because queries only ever test obstacles they marked as loaded.
type Kernel struct {
	bvh  *BVH
	all  []geom.Rect // full ID-indexed obstacle slice, aliased not copied
	base int         // obstacles [0, base) are in the BVH; [base, len) are the tail

	// corners is the lazily built corner-pair certificate table (see
	// corners.go); Extend starts a fresh table because the pair lists must
	// cover the appended tail.
	cornersOnce sync.Once
	corners     *CornerTable
}

// NewKernel builds a kernel over the full obstacle slice. The slice is
// aliased: callers must treat the first len(obstacles) entries as immutable
// (the MVCC store is append-only, so this holds by construction).
func NewKernel(obstacles []geom.Rect) *Kernel {
	return &Kernel{bvh: NewBVH(obstacles), all: obstacles, base: len(obstacles)}
}

// Extend returns a kernel over the grown obstacle slice: it shares the
// receiver's BVH while the appended tail stays under rebuildTail and
// rebuilds otherwise. obstacles must be the receiver's slice plus appended
// entries (MVCC append-only growth).
func (k *Kernel) Extend(obstacles []geom.Rect) *Kernel {
	if len(obstacles)-k.base > rebuildTail {
		return NewKernel(obstacles)
	}
	return &Kernel{bvh: k.bvh, all: obstacles, base: k.base}
}

// NumObstacles returns the size of the ID space (including deleted IDs).
func (k *Kernel) NumObstacles() int { return len(k.all) }

// Rect returns the obstacle with the given ID.
func (k *Kernel) Rect(id int32) geom.Rect { return k.all[id] }

// Blocked reports whether any marked obstacle blocks the sight line
// (ax, ay)-(bx, by) of length segLen. Exact: identical to testing
// geom.BlocksSegment against every marked obstacle.
func (k *Kernel) Blocked(m *Marks, ax, ay, bx, by, segLen float64) bool {
	if k.bvh.Blocked(m, ax, ay, bx, by, segLen) {
		return true
	}
	for id := k.base; id < len(k.all); id++ {
		if !m.Has(int32(id)) {
			continue
		}
		r := k.all[id]
		if geom.BlocksSegLen(r.MinX, r.MinY, r.MaxX, r.MaxY, ax, ay, bx, by, segLen) {
			return true
		}
	}
	return false
}

// AppendBlockers appends the ID of every obstacle in the kernel — marked or
// not, including deleted IDs — that blocks the sight line of length segLen,
// and returns dst. See BVH.AppendBlockers for the caching contract.
func (k *Kernel) AppendBlockers(dst []int32, ax, ay, bx, by, segLen float64) []int32 {
	dst = k.bvh.AppendBlockers(dst, ax, ay, bx, by, segLen)
	for id := k.base; id < len(k.all); id++ {
		r := &k.all[id]
		if geom.BlocksSegLen(r.MinX, r.MinY, r.MaxX, r.MaxY, ax, ay, bx, by, segLen) {
			dst = append(dst, int32(id))
		}
	}
	return dst
}

// AppendIntersecting appends every marked obstacle intersecting w to dst
// (geom.Rect.Intersects semantics) and returns it.
func (k *Kernel) AppendIntersecting(dst []geom.Rect, m *Marks, w geom.Rect) []geom.Rect {
	dst = k.bvh.AppendIntersecting(dst, m, w)
	for id := k.base; id < len(k.all); id++ {
		if m.Has(int32(id)) && k.all[id].Intersects(w) {
			dst = append(dst, k.all[id])
		}
	}
	return dst
}
