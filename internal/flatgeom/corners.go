package flatgeom

import "connquery/internal/geom"

// cornerTableMaxCorners gates the quadratic corner-pair table: a kernel
// whose obstacle set contributes more corners than this serves visibility
// from the BVH alone. 600 corners (150 obstacles) bounds the table at
// ~360k cells — a few MB and well under 100ms to build once per version —
// while covering the workload sizes where per-query graph rebuilds dominate.
const cornerTableMaxCorners = 600

// CornerTable is the precomputed corner-pair visibility certificate of one
// kernel version: for every ordered pair (i, j) of obstacle corners it
// stores the IDs of every obstacle in the kernel that blocks the sight
// line corner(i) -> corner(j), computed over the FULL obstacle set with
// geom.BlocksSegLen. Corner g of obstacle id has index 4*id + g, matching
// geom.Rect.Vertices order.
//
// Because blocking is monotone in the obstacle set (the AppendBlockers
// contract), the visibility verdict for any loaded subset is "some listed
// ID is loaded" — a handful of membership tests against the query's Marks,
// with no geometry at all. The lists are directed: cell (i, j) is built
// from the segment corner(i) -> corner(j) with exactly the arguments the
// sequential BlocksSegLen scan would use in that direction, so subset
// verdicts are bit-identical to the scan they replace, including any
// ulp-level direction asymmetry of the underlying predicate.
type CornerTable struct {
	n       int
	offsets []int32 // n*n+1 prefix offsets into ids; cell (i,j) = i*n+j
	ids     []int32 // concatenated full-set blocker lists
	// local, when non-nil, marks this a region-scoped table (see
	// Kernel.RegionTable): it maps a kernel corner index to its row in the
	// table, -1 for corners outside the covered set. A nil local is the full
	// table, where kernel corner indexes are rows directly.
	local []int32
}

// BlockedPair reports whether any obstacle in m blocks the sight line from
// corner gi to corner gj. Bit-identical to testing geom.BlocksSegLen for
// every obstacle in m against that segment. Only valid on a full table; use
// PairVerdict when the table may be region-scoped.
func (t *CornerTable) BlockedPair(m *Marks, gi, gj int32) bool {
	c := int(gi)*t.n + int(gj)
	for _, id := range t.ids[t.offsets[c]:t.offsets[c+1]] {
		if m.Has(id) {
			return true
		}
	}
	return false
}

// row maps a kernel corner index to its table row, -1 when the table does
// not cover it.
func (t *CornerTable) row(g int32) int32 {
	if t.local == nil {
		return g
	}
	if int(g) >= len(t.local) {
		return -1
	}
	return t.local[g]
}

// Covers reports whether the table has rows for corner g's pairs.
func (t *CornerTable) Covers(g int32) bool { return t.row(g) >= 0 }

// PairVerdict is BlockedPair for tables that may be region-scoped: ok
// reports whether the table covers the ordered corner pair (gi, gj), and a
// covered pair's blocked verdict is bit-identical to testing
// geom.BlocksSegLen for every obstacle in m against the directed segment
// corner(gi) -> corner(gj). Uncovered pairs must be decided by the caller's
// exact geometric path.
func (t *CornerTable) PairVerdict(m *Marks, gi, gj int32) (blocked, ok bool) {
	li, lj := t.row(gi), t.row(gj)
	if li < 0 || lj < 0 {
		return false, false
	}
	c := int(li)*t.n + int(lj)
	for _, id := range t.ids[t.offsets[c]:t.offsets[c+1]] {
		if m.Has(id) {
			return true, true
		}
	}
	return false, true
}

// Corners returns the kernel's corner-pair table, building it on first use,
// or nil when the obstacle set is too large for the quadratic table (see
// cornerTableMaxCorners). Safe for concurrent use; the table is immutable
// once built, like the kernel itself.
func (k *Kernel) Corners() *CornerTable {
	k.cornersOnce.Do(func() {
		if n := 4 * len(k.all); n > 0 && n <= cornerTableMaxCorners {
			k.corners = buildCornerTable(k)
		}
	})
	return k.corners
}

func buildCornerTable(k *Kernel) *CornerTable {
	n := 4 * len(k.all)
	pts := make([]geom.Point, n)
	for id := range k.all {
		v := k.all[id].Vertices()
		copy(pts[4*id:], v[:])
	}
	t := &CornerTable{n: n, offsets: make([]int32, n*n+1)}
	ids := make([]int32, 0, 4*n)
	for i := 0; i < n; i++ {
		pi := pts[i]
		row := i * n
		for j := 0; j < n; j++ {
			if j != i {
				pj := pts[j]
				dx, dy := pj.X-pi.X, pj.Y-pi.Y
				ids = k.AppendBlockers(ids, pi.X, pi.Y, pj.X, pj.Y,
					geom.SegLen(dx, dy, dx*dx+dy*dy))
			}
			t.offsets[row+j+1] = int32(len(ids))
		}
	}
	t.ids = ids
	return t
}
