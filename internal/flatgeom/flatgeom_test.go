package flatgeom

import (
	"math/rand"
	"testing"

	"connquery/internal/geom"
)

func randRects(rng *rand.Rand, n int) []geom.Rect {
	out := make([]geom.Rect, n)
	for i := range out {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		out[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*40 + 0.01, MaxY: y + rng.Float64()*40 + 0.01}
	}
	return out
}

// markSubset marks a random subset and returns the marked obstacles (brute
// reference set).
func markSubset(rng *rand.Rand, m *Marks, obstacles []geom.Rect) []geom.Rect {
	m.Reset(len(obstacles))
	var loaded []geom.Rect
	for i, r := range obstacles {
		if rng.Intn(3) != 0 {
			m.Set(int32(i))
			loaded = append(loaded, r)
		}
	}
	return loaded
}

func TestKernelBlockedMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 30; round++ {
		obstacles := randRects(rng, rng.Intn(300))
		base := obstacles
		if round%3 == 1 && len(obstacles) > 10 { // exercise the linear tail
			base = obstacles[:len(obstacles)-10]
		}
		k := NewKernel(base)
		if len(base) < len(obstacles) {
			k = k.Extend(obstacles)
		}
		var m Marks
		loaded := markSubset(rng, &m, obstacles)
		for i := 0; i < 300; i++ {
			a := geom.Pt(rng.Float64()*1100-50, rng.Float64()*1100-50)
			b := geom.Pt(rng.Float64()*1100-50, rng.Float64()*1100-50)
			s := geom.Seg(a, b)
			want := false
			for _, r := range loaded {
				if r.BlocksSegment(s) {
					want = true
					break
				}
			}
			got := k.Blocked(&m, a.X, a.Y, b.X, b.Y, s.Length())
			if got != want {
				t.Fatalf("round %d: Blocked(%v)=%v, brute=%v (|O|=%d, tail=%d)",
					round, s, got, want, len(obstacles), len(obstacles)-k.base)
			}
		}
	}
}

func TestKernelAppendIntersectingMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for round := 0; round < 30; round++ {
		obstacles := randRects(rng, rng.Intn(300))
		k := NewKernel(obstacles)
		var m Marks
		loaded := markSubset(rng, &m, obstacles)
		for i := 0; i < 200; i++ {
			x, y := rng.Float64()*1000, rng.Float64()*1000
			w := geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*200, MaxY: y + rng.Float64()*200}
			want := map[geom.Rect]int{}
			for _, r := range loaded {
				if r.Intersects(w) {
					want[r]++
				}
			}
			got := k.AppendIntersecting(nil, &m, w)
			gotSet := map[geom.Rect]int{}
			for _, r := range got {
				gotSet[r]++
			}
			if len(gotSet) != len(want) {
				t.Fatalf("round %d: AppendIntersecting(%v) returned %d distinct rects, brute %d",
					round, w, len(gotSet), len(want))
			}
			for r, c := range want {
				if gotSet[r] != c {
					t.Fatalf("round %d: rect %v count %d vs brute %d", round, r, gotSet[r], c)
				}
			}
		}
	}
}

func TestMarksGenerationReset(t *testing.T) {
	var m Marks
	m.Reset(4)
	m.Set(2)
	if !m.Has(2) || m.Has(1) {
		t.Fatal("basic set/has broken")
	}
	m.Reset(4)
	if m.Has(2) {
		t.Fatal("Reset did not clear marks")
	}
	// Force a generation wrap and confirm stale stamps do not resurrect.
	m.Set(1)
	m.cur = ^uint32(0)
	m.gen[3] = m.cur // stale stamp that would collide after wrap
	m.Reset(4)
	if m.Has(1) || m.Has(3) {
		t.Fatal("generation wrap resurrected stale marks")
	}
}

func TestKernelExtendShares(t *testing.T) {
	obstacles := randRects(rand.New(rand.NewSource(9)), 500)
	k := NewKernel(obstacles[:400])
	small := k.Extend(obstacles[:420])
	if small.bvh != k.bvh || small.base != 400 {
		t.Fatal("small extension should share the BVH")
	}
	big := small.Extend(obstacles)
	if big.bvh == k.bvh || big.base != 500 {
		t.Fatal("large extension should rebuild the BVH")
	}
}

// TestBVHBuildAllocBudget pins the allocation cost of a per-version BVH
// build: a handful of slab allocations, independent of obstacle count.
func TestBVHBuildAllocBudget(t *testing.T) {
	obstacles := randRects(rand.New(rand.NewSource(10)), 2000)
	allocs := testing.AllocsPerRun(10, func() {
		NewKernel(obstacles)
	})
	// quads + ids + nodes + the Kernel itself; anything beyond ~16 means a
	// per-obstacle or per-split allocation crept in.
	if allocs > 16 {
		t.Fatalf("kernel build allocates %v times; budget is 16", allocs)
	}
}
