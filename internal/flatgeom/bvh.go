package flatgeom

import "connquery/internal/geom"

// bvhLeafSize bounds the number of obstacles per leaf. Leaves scan their
// quads linearly from one contiguous slab, so a moderately large leaf beats
// a deeper tree: 8 quads are 4 cache lines.
const bvhLeafSize = 8

// bvhNode is one node of the static obstacle BVH, stored in preorder: an
// internal node's left child is the next node in the array and its right
// child index is A (B < 0); a leaf covers the quad range [A, A+B).
type bvhNode struct {
	minX, minY, maxX, maxY float64
	a, b                   int32
}

// BVH is a static bounding-volume hierarchy over an obstacle set, built
// once per MVCC version and shared read-only across queries and workers.
// Leaf obstacles live in quads — the flat x0,y0,x1,y1 struct-of-arrays
// store — reordered so every leaf reads one contiguous slab; ids maps a
// quad back to the obstacle ID the engine and Marks use.
type BVH struct {
	nodes []bvhNode
	quads []float64 // 4 floats per obstacle, leaf-contiguous order
	ids   []int32   // ids[i] owns quads[4i : 4i+4]
}

// NewBVH builds a BVH over obstacles; IDs are the slice indexes.
func NewBVH(obstacles []geom.Rect) *BVH {
	n := len(obstacles)
	b := &BVH{
		quads: make([]float64, 0, 4*n),
		ids:   make([]int32, n),
		nodes: make([]bvhNode, 0, 2*max(n/bvhLeafSize, 1)),
	}
	if n == 0 {
		return b
	}
	for i := range b.ids {
		b.ids[i] = int32(i)
	}
	b.build(obstacles, 0, n)
	for _, id := range b.ids {
		r := obstacles[id]
		b.quads = append(b.quads, r.MinX, r.MinY, r.MaxX, r.MaxY)
	}
	return b
}

// build partitions ids[lo:hi] by median split on the longer axis of the
// subset's bounding box and emits nodes in preorder.
func (b *BVH) build(obstacles []geom.Rect, lo, hi int) int32 {
	box := obstacles[b.ids[lo]]
	for _, id := range b.ids[lo+1 : hi] {
		r := obstacles[id]
		if r.MinX < box.MinX {
			box.MinX = r.MinX
		}
		if r.MinY < box.MinY {
			box.MinY = r.MinY
		}
		if r.MaxX > box.MaxX {
			box.MaxX = r.MaxX
		}
		if r.MaxY > box.MaxY {
			box.MaxY = r.MaxY
		}
	}
	self := int32(len(b.nodes))
	b.nodes = append(b.nodes, bvhNode{box.MinX, box.MinY, box.MaxX, box.MaxY, 0, 0})
	if hi-lo <= bvhLeafSize {
		b.nodes[self].a = int32(lo)
		b.nodes[self].b = int32(hi - lo)
		return self
	}
	mid := (lo + hi) / 2
	byX := box.MaxX-box.MinX >= box.MaxY-box.MinY
	selectNth(obstacles, b.ids[lo:hi], mid-lo, byX)
	b.build(obstacles, lo, mid)
	right := b.build(obstacles, mid, hi)
	b.nodes[self].a = right
	b.nodes[self].b = -1
	return self
}

// centerKey orders obstacles by center coordinate along one axis (doubled,
// to avoid the halving).
func centerKey(r geom.Rect, byX bool) float64 {
	if byX {
		return r.MinX + r.MaxX
	}
	return r.MinY + r.MaxY
}

// selectNth partially orders ids so ids[:k] hold the k smallest center keys
// (Hoare quickselect with median-of-three pivots). Allocation-free, which
// keeps a per-version BVH build at a handful of slab allocations.
func selectNth(obstacles []geom.Rect, ids []int32, k int, byX bool) {
	lo, hi := 0, len(ids)-1
	for lo < hi {
		// Median-of-three pivot, moved to lo.
		m := int(uint(lo+hi) >> 1)
		a, bb, c := centerKey(obstacles[ids[lo]], byX), centerKey(obstacles[ids[m]], byX), centerKey(obstacles[ids[hi]], byX)
		pi := lo
		if (a <= bb) == (bb <= c) {
			pi = m
		} else if (a <= c) == (c <= bb) {
			pi = hi
		}
		ids[lo], ids[pi] = ids[pi], ids[lo]
		pivot := centerKey(obstacles[ids[lo]], byX)
		i, j := lo, hi+1
		for {
			for {
				i++
				if i > hi || centerKey(obstacles[ids[i]], byX) >= pivot {
					break
				}
			}
			for {
				j--
				if centerKey(obstacles[ids[j]], byX) <= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			ids[i], ids[j] = ids[j], ids[i]
		}
		ids[lo], ids[j] = ids[j], ids[lo]
		switch {
		case j == k:
			return
		case j < k:
			lo = j + 1
		default:
			hi = j - 1
		}
	}
}

// Blocked reports whether any marked obstacle blocks the sight line
// (ax, ay)-(bx, by) of length segLen, with geom.BlocksSegLen deciding at
// the leaves — the verdict is identical to a linear scan over the marked
// obstacles.
func (b *BVH) Blocked(m *Marks, ax, ay, bx, by, segLen float64) bool {
	if len(b.nodes) == 0 {
		return false
	}
	var stack [64]int32
	top := 0
	stack[0] = 0
	for top >= 0 {
		idx := stack[top]
		top--
		nd := &b.nodes[idx]
		if _, _, ok := geom.ClipSeg(nd.minX, nd.minY, nd.maxX, nd.maxY, ax, ay, bx, by); !ok {
			continue
		}
		if nd.b < 0 {
			top++
			stack[top] = nd.a
			top++
			stack[top] = idx + 1 // left child follows its parent in preorder
			continue
		}
		qs := b.quads[4*nd.a : 4*(nd.a+nd.b)]
		ids := b.ids[nd.a : nd.a+nd.b]
		for i, id := range ids {
			if !m.Has(id) {
				continue
			}
			q := qs[4*i : 4*i+4 : 4*i+4]
			if geom.BlocksSegLen(q[0], q[1], q[2], q[3], ax, ay, bx, by, segLen) {
				return true
			}
		}
	}
	return false
}

// AppendBlockers appends the ID of every obstacle in the tree — marked or
// not — that blocks the sight line (ax, ay)-(bx, by) of length segLen, and
// returns dst. The set is exactly {id : geom.BlocksSegment verdict true};
// order follows the BVH leaf layout. Callers cache these full-set lists:
// because blocking is monotone in the obstacle set, the verdict for any
// loaded subset is "some listed ID is loaded", no matter which obstacles
// load later.
func (b *BVH) AppendBlockers(dst []int32, ax, ay, bx, by, segLen float64) []int32 {
	if len(b.nodes) == 0 {
		return dst
	}
	var stack [64]int32
	top := 0
	stack[0] = 0
	for top >= 0 {
		idx := stack[top]
		top--
		nd := &b.nodes[idx]
		if _, _, ok := geom.ClipSeg(nd.minX, nd.minY, nd.maxX, nd.maxY, ax, ay, bx, by); !ok {
			continue
		}
		if nd.b < 0 {
			top++
			stack[top] = nd.a
			top++
			stack[top] = idx + 1
			continue
		}
		qs := b.quads[4*nd.a : 4*(nd.a+nd.b)]
		ids := b.ids[nd.a : nd.a+nd.b]
		for i, id := range ids {
			q := qs[4*i : 4*i+4 : 4*i+4]
			if geom.BlocksSegLen(q[0], q[1], q[2], q[3], ax, ay, bx, by, segLen) {
				dst = append(dst, id)
			}
		}
	}
	return dst
}

// AppendIntersecting appends every marked obstacle whose rectangle
// intersects w (geom.Rect.Intersects semantics, Eps slack included) to dst
// and returns it. The result set is identical to filtering the marked
// obstacles linearly; order follows the BVH leaf layout.
func (b *BVH) AppendIntersecting(dst []geom.Rect, m *Marks, w geom.Rect) []geom.Rect {
	if len(b.nodes) == 0 {
		return dst
	}
	var stack [64]int32
	top := 0
	stack[0] = 0
	for top >= 0 {
		idx := stack[top]
		top--
		nd := &b.nodes[idx]
		if !(nd.minX <= w.MaxX+geom.Eps && w.MinX <= nd.maxX+geom.Eps &&
			nd.minY <= w.MaxY+geom.Eps && w.MinY <= nd.maxY+geom.Eps) {
			continue
		}
		if nd.b < 0 {
			top++
			stack[top] = nd.a
			top++
			stack[top] = idx + 1
			continue
		}
		qs := b.quads[4*nd.a : 4*(nd.a+nd.b)]
		ids := b.ids[nd.a : nd.a+nd.b]
		for i, id := range ids {
			if !m.Has(id) {
				continue
			}
			q := qs[4*i : 4*i+4 : 4*i+4]
			if q[0] <= w.MaxX+geom.Eps && w.MinX <= q[2]+geom.Eps &&
				q[1] <= w.MaxY+geom.Eps && w.MinY <= q[3]+geom.Eps {
				dst = append(dst, geom.Rect{MinX: q[0], MinY: q[1], MaxX: q[2], MaxY: q[3]})
			}
		}
	}
	return dst
}
