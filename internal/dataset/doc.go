// Package dataset generates the experimental workloads of the paper's
// §5.1 and reads/writes their CSV interchange format.
//
// The paper evaluates on two real datasets from rtreeportal.org — CA
// (60,344 California location points) and LA (131,461 MBRs of Los Angeles
// streets) — plus Uniform and Zipf(α=0.8) synthetic point sets, all
// normalized to a [0, 10000] x [0, 10000] space. The real files are not
// redistributable and the portal is unreachable offline, so CA and LA are
// replaced by synthetic surrogates that preserve the properties the
// experiments exercise: CA's clustered, non-uniform point distribution
// (Clustered) and LA's dense field of small, thin, axis-aligned street
// rectangles (Streets).
//
// All generators are deterministic in their seed. FilterPoints drops
// points that fall strictly inside an obstacle (the library rejects such
// inputs); the CSV helpers (ReadPointsCSV, WriteRectsCSV, ...) define the
// format cmd/conngen writes and cmd/connquery/connserve read.
package dataset
