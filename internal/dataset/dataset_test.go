package dataset

import (
	"math"
	"math/rand"
	"testing"

	"connquery/internal/geom"
)

func TestUniformDeterministicAndInSpace(t *testing.T) {
	a := Uniform(1000, 7)
	b := Uniform(1000, 7)
	c := Uniform(1000, 8)
	if len(a) != 1000 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different data")
		}
		if !Space().Contains(a[i]) {
			t.Fatalf("point %v outside space", a[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestZipfSkew(t *testing.T) {
	pts := Zipf(20000, 0.8, 11)
	// With α = 0.8 the mass concentrates near the origin: far more points in
	// the lowest decile than the highest.
	lo, hi := 0, 0
	for _, p := range pts {
		if p.X < Side/10 {
			lo++
		}
		if p.X > Side*9/10 {
			hi++
		}
		if !Space().Contains(p) {
			t.Fatalf("point %v outside space", p)
		}
	}
	if lo < 5*hi {
		t.Fatalf("zipf not skewed: lo decile %d vs hi decile %d", lo, hi)
	}
}

func TestClusteredIsNonUniform(t *testing.T) {
	pts := Clustered(20000, 16, Side*0.03, 0.1, 13)
	// Chi-square-style check: occupancy of a 10x10 grid should be far from
	// uniform (some cells nearly empty, some dense).
	var cells [100]int
	for _, p := range pts {
		x := int(p.X / Side * 10)
		y := int(p.Y / Side * 10)
		if x > 9 {
			x = 9
		}
		if y > 9 {
			y = 9
		}
		cells[y*10+x]++
	}
	mean := float64(len(pts)) / 100
	var chi2 float64
	for _, c := range cells {
		d := float64(c) - mean
		chi2 += d * d / mean
	}
	// Uniform data gives chi2 ~ 99 (df); clustered data is wildly larger.
	if chi2 < 500 {
		t.Fatalf("clustered data too uniform: chi2 = %v", chi2)
	}
}

func TestCAandLASizes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size dataset generation")
	}
	ca := CA(1)
	if len(ca) != CASize {
		t.Fatalf("CA size = %d, want %d", len(ca), CASize)
	}
	la := LA(1)
	if len(la) != LASize {
		t.Fatalf("LA size = %d, want %d", len(la), LASize)
	}
	for _, o := range la[:1000] {
		if !o.Valid() || o.Empty() {
			t.Fatalf("invalid obstacle %v", o)
		}
		if !Space().ContainsRect(o) {
			t.Fatalf("obstacle %v outside space", o)
		}
		if math.Min(o.Width(), o.Height()) > 10 {
			t.Fatalf("street MBR %v not thin", o)
		}
	}
}

func TestStreetsDeterministic(t *testing.T) {
	a := Streets(500, 3)
	b := Streets(500, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streets")
		}
	}
}

func TestFilterPoints(t *testing.T) {
	obs := []geom.Rect{geom.R(100, 100, 200, 200)}
	pts := []geom.Point{
		geom.Pt(150, 150), // interior: dropped
		geom.Pt(100, 150), // boundary: kept
		geom.Pt(50, 50),   // outside: kept
	}
	got := FilterPoints(pts, obs)
	if len(got) != 2 {
		t.Fatalf("FilterPoints kept %d, want 2: %v", len(got), got)
	}
}

func TestQuerySegmentProperties(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	obs := Streets(2000, 19)
	for i := 0; i < 50; i++ {
		q := QuerySegment(r, 0.045, obs)
		if math.Abs(q.Length()-0.045*Side) > 1e-6 {
			t.Fatalf("length = %v, want %v", q.Length(), 0.045*Side)
		}
		if !Space().Contains(q.A) || !Space().Contains(q.B) {
			t.Fatalf("segment endpoints outside space: %v", q)
		}
		for _, o := range obs {
			if o.BlocksSegment(q) {
				t.Fatalf("query segment %v crosses obstacle %v", q, o)
			}
		}
	}
}

func TestGridBlocksMatchesLinear(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	obs := Streets(3000, 29)
	g := newGrid(obs, 128)
	for i := 0; i < 200; i++ {
		a := geom.Pt(r.Float64()*Side, r.Float64()*Side)
		b := geom.Pt(a.X+(r.Float64()-0.5)*800, a.Y+(r.Float64()-0.5)*800)
		s := geom.Seg(a, b)
		want := false
		for _, o := range obs {
			if o.BlocksSegment(s) {
				want = true
				break
			}
		}
		if got := g.blocks(s); got != want {
			t.Fatalf("grid.blocks(%v) = %v, want %v", s, got, want)
		}
	}
}
