package dataset

import (
	"bytes"
	"strings"
	"testing"

	"connquery/internal/geom"
)

func TestPointsCSVRoundTrip(t *testing.T) {
	in := Uniform(500, 3)
	var buf bytes.Buffer
	if err := WritePointsCSV(&buf, in); err != nil {
		t.Fatalf("write: %v", err)
	}
	out, err := ReadPointsCSV(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("len %d vs %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("point %d: %v vs %v", i, in[i], out[i])
		}
	}
}

func TestRectsCSVRoundTrip(t *testing.T) {
	in := Streets(300, 5)
	var buf bytes.Buffer
	if err := WriteRectsCSV(&buf, in); err != nil {
		t.Fatalf("write: %v", err)
	}
	out, err := ReadRectsCSV(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("len %d vs %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("rect %d: %v vs %v", i, in[i], out[i])
		}
	}
}

func TestCSVRejectsMalformed(t *testing.T) {
	if _, err := ReadPointsCSV(strings.NewReader("1,2,3\n")); err == nil {
		t.Fatal("wrong field count accepted")
	}
	if _, err := ReadPointsCSV(strings.NewReader("a,b\n")); err == nil {
		t.Fatal("non-numeric accepted")
	}
	if _, err := ReadRectsCSV(strings.NewReader("5,5,1,1\n")); err == nil {
		t.Fatal("inverted rectangle accepted")
	}
	if _, err := ReadRectsCSV(strings.NewReader("1,1,2,x\n")); err == nil {
		t.Fatal("non-numeric rect accepted")
	}
	// Empty input is fine.
	if pts, err := ReadPointsCSV(strings.NewReader("")); err != nil || len(pts) != 0 {
		t.Fatalf("empty input: %v %v", pts, err)
	}
}

func TestCSVEmptySlices(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePointsCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteRectsCSV(&buf, []geom.Rect{}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty writes produced %d bytes", buf.Len())
	}
}
