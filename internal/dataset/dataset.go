package dataset

import (
	"math"
	"math/rand"

	"connquery/internal/geom"
)

// Side is the extent of the square search space used throughout the paper.
const Side = 10000.0

// CASize is the cardinality of the CA dataset (paper §5.1).
const CASize = 60344

// LASize is the cardinality of the LA dataset (paper §5.1).
const LASize = 131461

// Space is the search-space rectangle.
func Space() geom.Rect { return geom.R(0, 0, Side, Side) }

// Uniform draws n points uniformly over the search space.
func Uniform(n int, seed int64) []geom.Point {
	r := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(r.Float64()*Side, r.Float64()*Side)
	}
	return pts
}

// Zipf draws n points whose per-dimension coordinates follow a zipf-like
// power-law with skew coefficient alpha (the paper uses α = 0.8, dimensions
// independent): coordinate = Side * u^(1/(1-alpha)) concentrates mass near
// the origin with a heavy tail, the standard inverse-CDF construction for
// bounded zipf-distributed coordinates.
func Zipf(n int, alpha float64, seed int64) []geom.Point {
	r := rand.New(rand.NewSource(seed))
	exp := 1 / (1 - alpha)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(
			Side*math.Pow(r.Float64(), exp),
			Side*math.Pow(r.Float64(), exp),
		)
	}
	return pts
}

// CA is the surrogate for the paper's California locations dataset: a
// mixture of Gaussian population clusters strung along a diagonal
// "coastline" corridor plus a uniform rural background, clipped to the
// search space. It has the same cardinality and the clustered non-uniform
// structure that drives the CL experiments.
func CA(seed int64) []geom.Point {
	return Clustered(CASize, 24, Side*0.035, 0.15, seed)
}

// Clustered draws n points from a Gaussian-mixture: clusters centers lie
// along a noisy diagonal corridor (mimicking a coastline/highway
// settlement pattern), sigma is the cluster spread and background is the
// fraction of uniformly scattered points.
func Clustered(n, clusters int, sigma, background float64, seed int64) []geom.Point {
	r := rand.New(rand.NewSource(seed))
	centers := make([]geom.Point, clusters)
	weights := make([]float64, clusters)
	totalW := 0.0
	for i := range centers {
		// Corridor: t along the diagonal with lateral noise.
		t := r.Float64()
		lateral := (r.Float64() - 0.5) * Side * 0.35
		centers[i] = clampToSpace(geom.Pt(
			t*Side+lateral*0.3,
			t*Side-lateral,
		))
		w := math.Pow(r.Float64(), 2) + 0.05 // few big cities, many towns
		weights[i] = w
		totalW += w
	}
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		if r.Float64() < background {
			pts = append(pts, geom.Pt(r.Float64()*Side, r.Float64()*Side))
			continue
		}
		// Weighted cluster choice.
		x := r.Float64() * totalW
		ci := 0
		for ; ci < clusters-1; ci++ {
			if x < weights[ci] {
				break
			}
			x -= weights[ci]
		}
		p := geom.Pt(
			centers[ci].X+r.NormFloat64()*sigma,
			centers[ci].Y+r.NormFloat64()*sigma,
		)
		if Space().Contains(p) {
			pts = append(pts, p)
		}
	}
	return pts
}

// LA is the surrogate for the paper's Los Angeles street-MBR dataset: a
// jittered street grid whose block size is calibrated so that LASize thin
// rectangles tile the space, with random segment lengths and occasional
// diagonal streets. Rectangles are thin (streets have small width), small
// relative to the space, and axis-aligned — the properties that govern
// |SVG|, NOE and IOR behaviour.
func LA(seed int64) []geom.Rect {
	return Streets(LASize, seed)
}

// Streets generates n street-like MBRs.
func Streets(n int, seed int64) []geom.Rect {
	r := rand.New(rand.NewSource(seed))
	// Street segment length distribution: mostly short blocks. The target
	// density reproduces LA's ~1.3 obstacles per unit^2 at full scale.
	out := make([]geom.Rect, 0, n)
	for len(out) < n {
		cx, cy := r.Float64()*Side, r.Float64()*Side
		length := 20 + r.ExpFloat64()*40 // block-scale segments
		if length > 400 {
			length = 400
		}
		width := 1 + r.Float64()*6 // street width -> thin MBR
		var rc geom.Rect
		if r.Intn(2) == 0 { // horizontal street
			rc = geom.R(cx-length/2, cy-width/2, cx+length/2, cy+width/2)
		} else { // vertical street
			rc = geom.R(cx-width/2, cy-length/2, cx+width/2, cy+length/2)
		}
		rc = clipRect(rc)
		if rc.Width() > geom.Eps && rc.Height() > geom.Eps {
			out = append(out, rc)
		}
	}
	return out
}

// FilterPoints drops points lying strictly inside any obstacle (the paper
// allows boundary points but not interior points). The obstacle list is
// scanned via a coarse grid for speed.
func FilterPoints(pts []geom.Point, obstacles []geom.Rect) []geom.Point {
	g := newGrid(obstacles, 128)
	out := pts[:0]
	for _, p := range pts {
		if !g.containsOpen(p) {
			out = append(out, p)
		}
	}
	return out
}

// QuerySegment draws a random query segment per the paper's methodology:
// random start point, random orientation in [0, 2π), length = frac*Side,
// clipped to the space. When avoid is non-nil, segments crossing an
// obstacle interior are rejected and redrawn (the paper's trajectories are
// travelable routes).
func QuerySegment(r *rand.Rand, frac float64, avoid []geom.Rect) geom.Segment {
	g := newGrid(avoid, 128)
	length := frac * Side
	for {
		a := geom.Pt(r.Float64()*Side, r.Float64()*Side)
		theta := r.Float64() * 2 * math.Pi
		b := geom.Pt(a.X+length*math.Cos(theta), a.Y+length*math.Sin(theta))
		if !Space().Contains(b) {
			continue
		}
		s := geom.Seg(a, b)
		if g.blocks(s) {
			continue
		}
		return s
	}
}

// QuerySegmentIn is QuerySegment with the start point drawn from within box
// instead of the whole space — the generator for hot-region workloads where
// many concurrent trajectories overlap. The same travelability rule
// applies: segments crossing an obstacle interior are rejected and redrawn,
// so the caller must pass a box with open space (a box sealed by obstacles
// would never yield).
func QuerySegmentIn(r *rand.Rand, frac float64, avoid []geom.Rect, box geom.Rect) geom.Segment {
	g := newGrid(avoid, 128)
	length := frac * Side
	for {
		a := geom.Pt(box.MinX+r.Float64()*(box.MaxX-box.MinX), box.MinY+r.Float64()*(box.MaxY-box.MinY))
		theta := r.Float64() * 2 * math.Pi
		b := geom.Pt(a.X+length*math.Cos(theta), a.Y+length*math.Sin(theta))
		if !Space().Contains(b) {
			continue
		}
		s := geom.Seg(a, b)
		if g.blocks(s) {
			continue
		}
		return s
	}
}

func clampToSpace(p geom.Point) geom.Point {
	return geom.Pt(math.Max(0, math.Min(Side, p.X)), math.Max(0, math.Min(Side, p.Y)))
}

func clipRect(rc geom.Rect) geom.Rect { return rc.Intersection(Space()) }

// grid is a uniform spatial hash over obstacles for fast rejection tests
// during generation (the R-trees are not built yet at that stage).
type grid struct {
	cells [][]int32
	n     int
	obs   []geom.Rect
}

func newGrid(obs []geom.Rect, n int) *grid {
	g := &grid{cells: make([][]int32, n*n), n: n, obs: obs}
	for i, o := range obs {
		x0, y0 := g.cellOf(o.MinX), g.cellOf(o.MinY)
		x1, y1 := g.cellOf(o.MaxX), g.cellOf(o.MaxY)
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				g.cells[y*n+x] = append(g.cells[y*n+x], int32(i))
			}
		}
	}
	return g
}

func (g *grid) cellOf(v float64) int {
	c := int(v / Side * float64(g.n))
	if c < 0 {
		c = 0
	}
	if c >= g.n {
		c = g.n - 1
	}
	return c
}

func (g *grid) containsOpen(p geom.Point) bool {
	for _, i := range g.cells[g.cellOf(p.Y)*g.n+g.cellOf(p.X)] {
		if g.obs[i].ContainsOpen(p) {
			return true
		}
	}
	return false
}

func (g *grid) blocks(s geom.Segment) bool {
	b := s.Bounds()
	x0, y0 := g.cellOf(b.MinX), g.cellOf(b.MinY)
	x1, y1 := g.cellOf(b.MaxX), g.cellOf(b.MaxY)
	seen := map[int32]bool{}
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			for _, i := range g.cells[y*g.n+x] {
				if seen[i] {
					continue
				}
				seen[i] = true
				if g.obs[i].BlocksSegment(s) {
					return true
				}
			}
		}
	}
	return false
}
