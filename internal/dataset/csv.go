package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"connquery/internal/geom"
)

// WritePointsCSV writes points as "x,y" rows.
func WritePointsCSV(w io.Writer, pts []geom.Point) error {
	cw := csv.NewWriter(w)
	rec := make([]string, 2)
	for _, p := range pts {
		rec[0] = strconv.FormatFloat(p.X, 'g', -1, 64)
		rec[1] = strconv.FormatFloat(p.Y, 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write points: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: write points: %w", err)
	}
	return nil
}

// ReadPointsCSV reads "x,y" rows.
func ReadPointsCSV(r io.Reader) ([]geom.Point, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	var out []geom.Point
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read points: %w", err)
		}
		x, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: read points line %d: %w", line, err)
		}
		y, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: read points line %d: %w", line, err)
		}
		out = append(out, geom.Pt(x, y))
	}
}

// WriteRectsCSV writes rectangles as "minx,miny,maxx,maxy" rows.
func WriteRectsCSV(w io.Writer, rects []geom.Rect) error {
	cw := csv.NewWriter(w)
	rec := make([]string, 4)
	for _, rc := range rects {
		rec[0] = strconv.FormatFloat(rc.MinX, 'g', -1, 64)
		rec[1] = strconv.FormatFloat(rc.MinY, 'g', -1, 64)
		rec[2] = strconv.FormatFloat(rc.MaxX, 'g', -1, 64)
		rec[3] = strconv.FormatFloat(rc.MaxY, 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write rects: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: write rects: %w", err)
	}
	return nil
}

// ReadRectsCSV reads "minx,miny,maxx,maxy" rows, validating each rectangle.
func ReadRectsCSV(r io.Reader) ([]geom.Rect, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	var out []geom.Rect
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read rects: %w", err)
		}
		var vals [4]float64
		for i, f := range rec {
			vals[i], err = strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: read rects line %d: %w", line, err)
			}
		}
		rc := geom.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
		if !rc.Valid() {
			return nil, fmt.Errorf("dataset: read rects line %d: inverted rectangle %v", line, rc)
		}
		out = append(out, rc)
	}
}
