// Package interval implements one-dimensional interval-set algebra over the
// query-segment parameter t in [0, 1]. Control point lists (the paper's
// Definition 9) and result lists (Definition 6) are both maintained as sets
// of disjoint spans, and the CPLC/RLU algorithms constantly intersect,
// subtract and merge them; this package supplies those primitives with the
// same Eps tolerance the geometric predicates use, so degenerate slivers
// collapse instead of accumulating.
package interval
