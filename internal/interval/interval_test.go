package interval

import (
	"math/rand"
	"testing"

	"connquery/internal/geom"
)

func sp(lo, hi float64) geom.Span { return geom.Span{Lo: lo, Hi: hi} }

func TestFromSpansNormalizes(t *testing.T) {
	s := FromSpans([]geom.Span{sp(0.5, 0.7), sp(0.1, 0.3), sp(0.3, 0.4), sp(0.65, 0.9), sp(0.2, 0.2)})
	want := Set{sp(0.1, 0.4), sp(0.5, 0.9)}
	if !s.Equal(want) {
		t.Errorf("got %v, want %v", s, want)
	}
}

func TestFromSpansEmpty(t *testing.T) {
	if s := FromSpans(nil); !s.Empty() {
		t.Errorf("nil input: %v", s)
	}
	if s := FromSpans([]geom.Span{sp(0.5, 0.5)}); !s.Empty() {
		t.Errorf("zero-length span kept: %v", s)
	}
}

func TestSetOps(t *testing.T) {
	a := Set{sp(0.0, 0.4), sp(0.6, 1.0)}
	b := Set{sp(0.3, 0.7)}

	if got, want := a.Union(b), Full(); !got.Equal(want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got, want := a.Intersect(b), (Set{sp(0.3, 0.4), sp(0.6, 0.7)}); !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got, want := a.Subtract(b), (Set{sp(0.0, 0.3), sp(0.7, 1.0)}); !got.Equal(want) {
		t.Errorf("Subtract = %v, want %v", got, want)
	}
	if got, want := b.Subtract(a), (Set{sp(0.4, 0.6)}); !got.Equal(want) {
		t.Errorf("Subtract rev = %v, want %v", got, want)
	}
	if got, want := a.Complement(), (Set{sp(0.4, 0.6)}); !got.Equal(want) {
		t.Errorf("Complement = %v, want %v", got, want)
	}
}

func TestSubtractAll(t *testing.T) {
	a := Set{sp(0.2, 0.8)}
	if got := a.Subtract(Full()); !got.Empty() {
		t.Errorf("subtracting everything left %v", got)
	}
	if got := a.Subtract(nil); !got.Equal(a) {
		t.Errorf("subtracting nothing changed the set: %v", got)
	}
}

func TestIntersectSpanAndContains(t *testing.T) {
	a := Set{sp(0.0, 0.4), sp(0.6, 1.0)}
	if got, want := a.IntersectSpan(sp(0.3, 0.8)), (Set{sp(0.3, 0.4), sp(0.6, 0.8)}); !got.Equal(want) {
		t.Errorf("IntersectSpan = %v, want %v", got, want)
	}
	if !a.Contains(0.2) || a.Contains(0.5) || !a.Contains(1.0) {
		t.Error("Contains misbehaves")
	}
}

func TestCoversAndLength(t *testing.T) {
	if !Full().Covers() {
		t.Error("Full does not cover")
	}
	if (Set{sp(0, 0.5), sp(0.5, 1)}).Covers() {
		t.Error("unmerged set should not exist; FromSpans would merge it")
	}
	if FromSpans([]geom.Span{sp(0, 0.5), sp(0.5, 1)}).Covers() != true {
		t.Error("merged full set should cover")
	}
	got := (Set{sp(0.1, 0.2), sp(0.5, 0.9)}).Length()
	if diff := got - 0.5; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("Length = %v", got)
	}
}

// Property: for random sets, (A ∪ B) == complement(complement(A) ∩ complement(B))
// (De Morgan), and subtract/intersect partition A.
func TestPropSetAlgebra(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	randSet := func() Set {
		n := 1 + r.Intn(4)
		spans := make([]geom.Span, n)
		for i := range spans {
			lo := r.Float64()
			spans[i] = sp(lo, lo+r.Float64()*(1-lo))
		}
		return FromSpans(spans)
	}
	for i := 0; i < 500; i++ {
		a, b := randSet(), randSet()
		deMorgan := a.Complement().Intersect(b.Complement()).Complement()
		union := a.Union(b)
		if !setsEquivalent(union, deMorgan) {
			t.Fatalf("De Morgan failed:\n a=%v\n b=%v\n got %v vs %v", a, b, union, deMorgan)
		}
		// A = (A ∩ B) ∪ (A − B), up to tolerance.
		rebuilt := a.Intersect(b).Union(a.Subtract(b))
		if !setsEquivalent(a, rebuilt) {
			t.Fatalf("partition failed:\n a=%v\n b=%v\n rebuilt %v", a, b, rebuilt)
		}
	}
}

// setsEquivalent compares by dense sampling, tolerant of Eps boundary noise.
func setsEquivalent(a, b Set) bool {
	for k := 0; k <= 1000; k++ {
		t := float64(k) / 1000
		if a.Contains(t) != b.Contains(t) {
			// Allow disagreement within 2 Eps-scaled gap of any boundary.
			nearBoundary := false
			for _, s := range append(append(Set{}, a...), b...) {
				if abs64(t-s.Lo) < 1e-6 || abs64(t-s.Hi) < 1e-6 {
					nearBoundary = true
				}
			}
			if !nearBoundary {
				return false
			}
		}
	}
	return true
}

func TestPropNormalizedInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for i := 0; i < 500; i++ {
		n := 1 + r.Intn(6)
		spans := make([]geom.Span, n)
		for j := range spans {
			lo := r.Float64()
			spans[j] = sp(lo, lo+r.Float64()*0.3)
		}
		s := FromSpans(spans)
		for j, x := range s {
			if x.Hi-x.Lo <= Eps {
				t.Fatalf("empty span in normalized set %v", s)
			}
			if j > 0 && s[j-1].Hi+Eps >= x.Lo {
				t.Fatalf("overlapping/adjacent spans in normalized set %v", s)
			}
		}
	}
}

func TestStringAndEqual(t *testing.T) {
	s := Set{sp(0.1, 0.2), sp(0.5, 0.9)}
	if got := s.String(); got != "{[0.1, 0.2], [0.5, 0.9]}" {
		t.Errorf("String = %q", got)
	}
	if s.Equal(Set{sp(0.1, 0.2)}) {
		t.Error("Equal with different lengths")
	}
	if s.Equal(Set{sp(0.1, 0.2), sp(0.5, 0.8)}) {
		t.Error("Equal with different bounds")
	}
	if !s.Equal(Set{sp(0.1, 0.2), sp(0.5, 0.9)}) {
		t.Error("Equal with identical sets failed")
	}
}
