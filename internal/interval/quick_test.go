package interval

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"connquery/internal/geom"
)

// genSet is a quick.Generator producing normalized interval sets.
type genSet Set

// Generate implements quick.Generator.
func (genSet) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(5)
	spans := make([]geom.Span, n)
	for i := range spans {
		lo := r.Float64()
		spans[i] = geom.Span{Lo: lo, Hi: lo + r.Float64()*(1-lo)}
	}
	return reflect.ValueOf(genSet(FromSpans(spans)))
}

func qcfg() *quick.Config {
	return &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(71))}
}

func TestQuickUnionCommutative(t *testing.T) {
	f := func(a, b genSet) bool {
		return Set(a).Union(Set(b)).Equal(Set(b).Union(Set(a)))
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectCommutative(t *testing.T) {
	f := func(a, b genSet) bool {
		return Set(a).Intersect(Set(b)).Equal(Set(b).Intersect(Set(a)))
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickSubtractDisjointFromIntersect(t *testing.T) {
	// (A − B) ∩ (A ∩ B) = ∅
	f := func(a, b genSet) bool {
		diff := Set(a).Subtract(Set(b))
		inter := Set(a).Intersect(Set(b))
		return diff.Intersect(inter).Length() < 1e-6
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickComplementInvolution(t *testing.T) {
	f := func(a genSet) bool {
		return setsEquivalent(Set(a), Set(a).Complement().Complement())
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickLengthAdditive(t *testing.T) {
	// |A| = |A ∩ B| + |A − B| up to tolerance.
	f := func(a, b genSet) bool {
		total := Set(a).Intersect(Set(b)).Length() + Set(a).Subtract(Set(b)).Length()
		d := total - Set(a).Length()
		return d < 1e-6 && d > -1e-6
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionUpperBound(t *testing.T) {
	f := func(a, b genSet) bool {
		u := Set(a).Union(Set(b)).Length()
		return u <= Set(a).Length()+Set(b).Length()+1e-9 &&
			u >= Set(a).Length()-1e-9 && u >= Set(b).Length()-1e-9
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}
