package interval

import (
	"fmt"
	"slices"

	"connquery/internal/geom"
)

// Eps is the parametric tolerance: spans shorter than Eps are treated as
// empty. It is looser than geom.Eps because t values come out of quadratic
// root finding.
const Eps = 1e-9

// Set is a normalized set of disjoint, sorted, non-empty spans.
type Set []geom.Span

// FromSpans normalizes an arbitrary span list into a Set: empty spans are
// dropped, overlapping or adjacent spans merge, and the result is sorted.
func FromSpans(spans []geom.Span) Set {
	if len(spans) == 0 {
		return nil
	}
	cp := make([]geom.Span, 0, len(spans))
	for _, sp := range spans {
		if sp.Hi-sp.Lo > Eps {
			cp = append(cp, sp)
		}
	}
	slices.SortFunc(cp, func(a, b geom.Span) int {
		switch {
		case a.Lo < b.Lo:
			return -1
		case a.Lo > b.Lo:
			return 1
		}
		return 0
	})
	out := cp[:0]
	for _, sp := range cp {
		if n := len(out); n > 0 && sp.Lo <= out[n-1].Hi+Eps {
			if sp.Hi > out[n-1].Hi {
				out[n-1].Hi = sp.Hi
			}
		} else {
			out = append(out, sp)
		}
	}
	return Set(out)
}

// Full returns the set covering all of [0, 1].
func Full() Set { return Set{{Lo: 0, Hi: 1}} }

// String implements fmt.Stringer.
func (s Set) String() string {
	out := "{"
	for i, sp := range s {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("[%.6g, %.6g]", sp.Lo, sp.Hi)
	}
	return out + "}"
}

// Empty reports whether the set contains no spans.
func (s Set) Empty() bool { return len(s) == 0 }

// Length returns the total parametric length of the set.
func (s Set) Length() float64 {
	var l float64
	for _, sp := range s {
		l += sp.Hi - sp.Lo
	}
	return l
}

// Contains reports whether t lies in some span of the set.
func (s Set) Contains(t float64) bool {
	for _, sp := range s {
		if sp.Lo-Eps <= t && t <= sp.Hi+Eps {
			return true
		}
	}
	return false
}

// Union returns the union of s and o.
func (s Set) Union(o Set) Set {
	all := make([]geom.Span, 0, len(s)+len(o))
	all = append(all, s...)
	all = append(all, o...)
	return FromSpans(all)
}

// Intersect returns the intersection of s and o.
func (s Set) Intersect(o Set) Set {
	var out []geom.Span
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		lo := max64(s[i].Lo, o[j].Lo)
		hi := min64(s[i].Hi, o[j].Hi)
		if hi-lo > Eps {
			out = append(out, geom.Span{Lo: lo, Hi: hi})
		}
		if s[i].Hi < o[j].Hi {
			i++
		} else {
			j++
		}
	}
	return Set(out)
}

// Subtract returns s minus o.
func (s Set) Subtract(o Set) Set {
	if len(o) == 0 {
		return append(Set(nil), s...)
	}
	var out []geom.Span
	for _, sp := range s {
		lo := sp.Lo
		for _, cut := range o {
			if cut.Hi <= lo+Eps {
				continue
			}
			if cut.Lo >= sp.Hi-Eps {
				break
			}
			if cut.Lo-lo > Eps {
				out = append(out, geom.Span{Lo: lo, Hi: cut.Lo})
			}
			if cut.Hi > lo {
				lo = cut.Hi
			}
		}
		if sp.Hi-lo > Eps {
			out = append(out, geom.Span{Lo: lo, Hi: sp.Hi})
		}
	}
	return Set(out)
}

// Complement returns [0,1] minus s.
func (s Set) Complement() Set { return Full().Subtract(s) }

// IntersectSpan returns the intersection of s with a single span.
func (s Set) IntersectSpan(sp geom.Span) Set {
	return s.Intersect(Set{sp})
}

// Covers reports whether s covers the whole of [0, 1] up to tolerance.
func (s Set) Covers() bool {
	return len(s) == 1 && s[0].Lo <= Eps && s[0].Hi >= 1-Eps
}

// Equal reports whether the two sets are identical within tolerance.
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if abs64(s[i].Lo-o[i].Lo) > 10*Eps || abs64(s[i].Hi-o[i].Hi) > 10*Eps {
			return false
		}
	}
	return true
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func abs64(a float64) float64 {
	if a < 0 {
		return -a
	}
	return a
}
