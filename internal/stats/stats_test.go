package stats

import (
	"strings"
	"testing"
	"time"

	"connquery/internal/lru"
)

func TestPageCounterNoBuffer(t *testing.T) {
	c := &PageCounter{}
	for i := 0; i < 5; i++ {
		c.RecordAccess(1) // same page every time: still all faults
	}
	if c.Accesses() != 5 || c.Faults() != 5 {
		t.Fatalf("accesses=%d faults=%d", c.Accesses(), c.Faults())
	}
	c.Reset()
	if c.Accesses() != 0 || c.Faults() != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestPageCounterWithBuffer(t *testing.T) {
	c := &PageCounter{Buffer: lru.New(2)}
	c.RecordAccess(1) // fault
	c.RecordAccess(1) // hit
	c.RecordAccess(2) // fault
	c.RecordAccess(1) // hit
	if c.Accesses() != 4 || c.Faults() != 2 {
		t.Fatalf("accesses=%d faults=%d", c.Accesses(), c.Faults())
	}
}

func TestQueryMetricsCostModel(t *testing.T) {
	m := QueryMetrics{FaultsData: 3, FaultsObst: 2, CPU: 7 * time.Millisecond}
	if m.Faults() != 5 {
		t.Fatalf("Faults = %d", m.Faults())
	}
	if m.IOTime() != 50*time.Millisecond {
		t.Fatalf("IOTime = %v (10ms per fault)", m.IOTime())
	}
	if m.TotalCost() != 57*time.Millisecond {
		t.Fatalf("TotalCost = %v", m.TotalCost())
	}
	s := m.String()
	if !strings.Contains(s, "io=50ms") || !strings.Contains(s, "cpu=7ms") {
		t.Fatalf("String = %q", s)
	}
}

func TestAggregateMean(t *testing.T) {
	var a Aggregate
	a.Add(QueryMetrics{FaultsData: 2, FaultsObst: 4, NPE: 10, NOE: 20, SVG: 100, CPU: 10 * time.Millisecond})
	a.Add(QueryMetrics{FaultsData: 4, FaultsObst: 8, NPE: 30, NOE: 40, SVG: 300, CPU: 30 * time.Millisecond})
	m := a.Mean()
	if m.N != 2 {
		t.Fatalf("N = %d", m.N)
	}
	if m.FaultsData != 3 || m.FaultsObst != 6 || m.Faults() != 9 {
		t.Fatalf("fault means: %v %v", m.FaultsData, m.FaultsObst)
	}
	if m.NPE != 20 || m.NOE != 30 || m.SVG != 200 {
		t.Fatalf("NPE/NOE/SVG means: %v %v %v", m.NPE, m.NOE, m.SVG)
	}
	if m.CPU != 20*time.Millisecond {
		t.Fatalf("CPU mean = %v", m.CPU)
	}
	if m.IOTime() != 90*time.Millisecond || m.TotalCost() != 110*time.Millisecond {
		t.Fatalf("IOTime=%v TotalCost=%v", m.IOTime(), m.TotalCost())
	}
	if s := m.String(); !strings.Contains(s, "n=2") {
		t.Fatalf("String = %q", s)
	}
}
