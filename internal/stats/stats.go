package stats

import (
	"fmt"
	"sync/atomic"
	"time"

	"connquery/internal/lru"
)

// IOChargePerFault is the paper's simulated I/O cost per page fault.
const IOChargePerFault = 10 * time.Millisecond

// PageCounter counts page accesses and faults; it implements
// rtree.AccessRecorder. With a nil Buffer every access faults (the paper's
// default zero-buffer configuration). The counters are atomic and the
// optional LRU Buffer locks internally, so queries can run concurrently
// with an MVCC writer (or with each other) without data races; concurrent
// queries sharing one counter still contaminate each other's *per-query*
// fault deltas, so callers wanting clean per-query metrics should use a
// private counter (a clone or batch-worker view).
type PageCounter struct {
	accesses atomic.Int64
	faults   atomic.Int64
	Buffer   *lru.Buffer
}

// RecordAccess registers one page access.
func (c *PageCounter) RecordAccess(pageID int64) {
	c.accesses.Add(1)
	if c.Buffer != nil {
		if !c.Buffer.Access(pageID) {
			c.faults.Add(1)
		}
		return
	}
	c.faults.Add(1)
}

// Accesses returns the number of page accesses recorded so far.
func (c *PageCounter) Accesses() int64 { return c.accesses.Load() }

// Faults returns the number of page faults recorded so far.
func (c *PageCounter) Faults() int64 { return c.faults.Load() }

// Reset zeroes the counters (buffer residency is left untouched).
func (c *PageCounter) Reset() {
	c.accesses.Store(0)
	c.faults.Store(0)
}

// QueryMetrics captures one query's cost profile.
type QueryMetrics struct {
	FaultsData int64         // page faults on the data R-tree
	FaultsObst int64         // page faults on the obstacle R-tree
	NPE        int           // number of data points evaluated
	NOE        int           // number of obstacles evaluated (inserted into VG)
	SVG        int           // visibility graph size (corner vertices)
	CPU        time.Duration // wall-clock compute time
	// Reach is the query's observed retrieval radius: the maximum Euclidean
	// distance (from the query geometry) at which the execution consulted its
	// index streams — every popped candidate key and every termination
	// threshold the scan compared against. Any object strictly farther than
	// Reach from the query geometry provably did not, and could not, enter
	// this execution's trace, so re-running the query on any sub-world that
	// contains every object within Reach reproduces the answer AND the
	// NPE/NOE/SVG trace bit-identically. +Inf when a stream was exhausted
	// under an unbounded threshold (e.g. an unreachable interval), in which
	// case only the full world reproduces the trace. Multi-item requests
	// report the maximum over their items.
	Reach float64
}

// Faults returns the total page faults across both trees.
func (m QueryMetrics) Faults() int64 { return m.FaultsData + m.FaultsObst }

// IOTime returns the simulated I/O time.
func (m QueryMetrics) IOTime() time.Duration {
	return time.Duration(m.Faults()) * IOChargePerFault
}

// TotalCost returns the paper's "query cost": I/O time plus CPU time.
func (m QueryMetrics) TotalCost() time.Duration { return m.IOTime() + m.CPU }

// String implements fmt.Stringer.
func (m QueryMetrics) String() string {
	return fmt.Sprintf("io=%v cpu=%v total=%v npe=%d noe=%d svg=%d",
		m.IOTime(), m.CPU, m.TotalCost(), m.NPE, m.NOE, m.SVG)
}

// Aggregate accumulates metrics over a query workload and reports means,
// matching the paper's "run 100 queries, report the average" methodology.
type Aggregate struct {
	N          int
	FaultsData int64
	FaultsObst int64
	NPE        int64
	NOE        int64
	SVG        int64
	CPU        time.Duration
}

// Add accumulates one query's metrics.
func (a *Aggregate) Add(m QueryMetrics) {
	a.N++
	a.FaultsData += m.FaultsData
	a.FaultsObst += m.FaultsObst
	a.NPE += int64(m.NPE)
	a.NOE += int64(m.NOE)
	a.SVG += int64(m.SVG)
	a.CPU += m.CPU
}

// Mean returns the per-query average metrics. N must be > 0.
func (a *Aggregate) Mean() MeanMetrics {
	n := float64(a.N)
	return MeanMetrics{
		N:          a.N,
		FaultsData: float64(a.FaultsData) / n,
		FaultsObst: float64(a.FaultsObst) / n,
		NPE:        float64(a.NPE) / n,
		NOE:        float64(a.NOE) / n,
		SVG:        float64(a.SVG) / n,
		CPU:        time.Duration(float64(a.CPU) / n),
	}
}

// MeanMetrics is the per-query average of an Aggregate.
type MeanMetrics struct {
	N          int
	FaultsData float64
	FaultsObst float64
	NPE        float64
	NOE        float64
	SVG        float64
	CPU        time.Duration
}

// Faults returns mean total page faults.
func (m MeanMetrics) Faults() float64 { return m.FaultsData + m.FaultsObst }

// IOTime returns mean simulated I/O time.
func (m MeanMetrics) IOTime() time.Duration {
	return time.Duration(m.Faults() * float64(IOChargePerFault))
}

// TotalCost returns mean query cost (I/O + CPU).
func (m MeanMetrics) TotalCost() time.Duration { return m.IOTime() + m.CPU }

// String implements fmt.Stringer.
func (m MeanMetrics) String() string {
	return fmt.Sprintf("n=%d io=%v cpu=%v total=%v npe=%.1f noe=%.1f svg=%.1f",
		m.N, m.IOTime(), m.CPU, m.TotalCost(), m.NPE, m.NOE, m.SVG)
}
