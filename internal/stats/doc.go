// Package stats collects the performance metrics the paper reports in §5:
// I/O cost (page accesses, optionally filtered through an LRU buffer), CPU
// time, total query cost with the paper's 10 ms-per-page-fault charge, the
// number of data points evaluated (NPE), the number of obstacles evaluated
// (NOE), and the visibility-graph size |SVG|.
//
// PageCounter implements rtree.AccessRecorder with atomic counters, so an
// MVCC writer and any number of concurrent readers can share one counter
// without races; per-query metrics are deltas around a query, so callers
// wanting uncontaminated fault numbers use a private counter (a clone or
// batch-worker view). QueryMetrics is the per-query record the public API
// re-exports as connquery.Metrics; Aggregate implements the paper's
// "run 100 queries, report the average" methodology.
package stats
