// Package planner is the shared-subcomputation admission layer in front of
// query execution: concurrent, spatially overlapping requests are grouped by
// an (epoch, quantized region) key, and each group that actually has
// concurrency builds ONE region-scoped sight-line certificate table
// (flatgeom.CornerTable over the group's merged build region) that every
// member — and every later request hitting the same group — runs its
// visibility-graph phase against. Requests without a concurrent partner run
// the private path untouched, so isolated queries pay nothing beyond a map
// lookup; only storms amortize the build.
//
// The planner never changes what a query computes: the shared table holds
// full-obstacle-set blocker certificates, whose subset verdicts are exact by
// blocking monotonicity, and pairs the region does not cover fall back to
// the private geometric test. Answers, epochs and the machine-independent
// NPE/NOE/|SVG|/Reach metrics are bit-identical with the planner on or off
// (plandiff_test.go proves it differentially).
package planner

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"connquery/internal/flatgeom"
	"connquery/internal/geom"
)

// Stats is a snapshot of the planner's cumulative counters.
type Stats struct {
	// GroupsFormed counts groups that built a shared table (a group forms
	// only when at least two requests were in flight on its key, or a later
	// request found the table already built).
	GroupsFormed uint64
	// Adoptions counts requests that ran against a table another request
	// built (including waiters that arrived during the build).
	Adoptions uint64
	// Fallbacks counts requests that consulted the planner but ran the
	// private path: no concurrent partner, an ungroupable query box, a
	// declined build (region too dense), or cancellation while waiting.
	Fallbacks uint64
	// BuildNs is the total wall time spent building shared tables.
	BuildNs int64
	// SavedNs estimates the build work adoptions avoided: each adoption
	// credits the build time of the table it reused.
	SavedNs int64
}

// Key identifies one admission group: an MVCC epoch plus a cell of the
// power-of-two quantization grid. Distinct epochs never share a key, so a
// shared table always matches the adopter's snapshot geometry exactly.
type Key struct {
	Epoch  uint64
	Exp    int // cell side = 2^Exp
	CX, CY int64
}

// GroupKey quantizes a request's query box onto the power-of-two grid: the
// cell side is the smallest power of two >= max(longest box side, minSide),
// the cell is the one containing the box center, and the build region is
// the cell inflated by one cell on every side (3x3 cells). ok is false when
// the box is empty or non-finite, or the required cell side exceeds maxSide
// (the request is too large to group profitably).
//
// Containment invariant (FuzzPlannerGroupKey): every box mapped to a key is
// contained in that key's build region — the box's half-extent per axis is
// at most side/2 <= s/2, and its center lies inside the center cell, so the
// one-cell inflation covers it with s/2 slack per side.
func GroupKey(epoch uint64, box geom.Rect, minSide, maxSide float64) (Key, geom.Rect, bool) {
	if box.Empty() || !(minSide > 0) || !(maxSide >= minSide) {
		return Key{}, geom.Rect{}, false
	}
	if math.IsInf(box.MinX, 0) || math.IsInf(box.MinY, 0) ||
		math.IsInf(box.MaxX, 0) || math.IsInf(box.MaxY, 0) {
		return Key{}, geom.Rect{}, false
	}
	side := math.Max(box.MaxX-box.MinX, box.MaxY-box.MinY)
	side = math.Max(side, minSide)
	if !(side <= maxSide) { // also rejects NaN
		return Key{}, geom.Rect{}, false
	}
	exp := int(math.Ceil(math.Log2(side)))
	s := math.Ldexp(1, exp)
	if s < side { // Log2 rounding slack
		exp++
		s = math.Ldexp(1, exp)
	}
	cxf := math.Floor((box.MinX + box.MaxX) / 2 / s)
	cyf := math.Floor((box.MinY + box.MaxY) / 2 / s)
	if math.Abs(cxf) > 1e15 || math.Abs(cyf) > 1e15 {
		return Key{}, geom.Rect{}, false // cell index would not be exact
	}
	key := Key{Epoch: epoch, Exp: exp, CX: int64(cxf), CY: int64(cyf)}
	region := geom.Rect{
		MinX: (cxf - 1) * s, MinY: (cyf - 1) * s,
		MaxX: (cxf + 2) * s, MaxY: (cyf + 2) * s,
	}
	return key, region, true
}

// Planner tracks in-flight admission groups and their shared tables. Safe
// for concurrent use. Groups are evicted in insertion order once the map
// exceeds the configured capacity, which bounds memory across the epoch
// churn of a mutating workload (every mutation starts a fresh key space).
type Planner struct {
	max int

	mu     sync.Mutex
	groups map[Key]*group
	order  []Key

	groupsFormed atomic.Uint64
	adoptions    atomic.Uint64
	fallbacks    atomic.Uint64
	buildNs      atomic.Int64
	savedNs      atomic.Int64
}

// New returns a planner retaining at most maxGroups admission groups
// (minimum 1).
func New(maxGroups int) *Planner {
	if maxGroups < 1 {
		maxGroups = 1
	}
	return &Planner{max: maxGroups, groups: make(map[Key]*group)}
}

// Stats returns a snapshot of the cumulative counters.
func (p *Planner) Stats() Stats {
	return Stats{
		GroupsFormed: p.groupsFormed.Load(),
		Adoptions:    p.adoptions.Load(),
		Fallbacks:    p.fallbacks.Load(),
		BuildNs:      p.buildNs.Load(),
		SavedNs:      p.savedNs.Load(),
	}
}

const (
	stateIdle = iota
	stateBuilding
	stateBuilt
)

// group is one (epoch, cell) admission group: the in-flight membership
// count, the build-state machine and the shared table once built.
type group struct {
	p      *Planner
	region geom.Rect

	mu       sync.Mutex
	inflight int
	state    int
	table    *flatgeom.CornerTable
	buildNs  int64
	done     chan struct{}
}

// Ticket is one admitted request's membership in a group. The holder must
// call Done exactly once when its execution finishes.
type Ticket struct{ g *group }

// Region returns the group's merged build region.
func (t *Ticket) Region() geom.Rect { return t.g.region }

// Admit registers an in-flight request whose query box is box at the given
// epoch and returns its group ticket, or nil (counting a fallback) when the
// box cannot be grouped. minSide/maxSide are the grid clamps (see GroupKey).
func (p *Planner) Admit(epoch uint64, box geom.Rect, minSide, maxSide float64) *Ticket {
	key, region, ok := GroupKey(epoch, box, minSide, maxSide)
	if !ok {
		p.fallbacks.Add(1)
		return nil
	}
	p.mu.Lock()
	g := p.groups[key]
	if g == nil {
		g = &group{p: p, region: region, done: make(chan struct{})}
		p.groups[key] = g
		p.order = append(p.order, key)
		for len(p.order) > p.max {
			delete(p.groups, p.order[0])
			p.order = p.order[1:]
		}
	}
	p.mu.Unlock()
	g.mu.Lock()
	g.inflight++
	g.mu.Unlock()
	return &Ticket{g: g}
}

// Done releases the ticket's in-flight membership.
func (t *Ticket) Done() {
	t.g.mu.Lock()
	t.g.inflight--
	t.g.mu.Unlock()
}

// Table resolves the group's shared table for this member: the first member
// that observes real concurrency (>= 2 in flight) builds it via build —
// which may decline by returning nil — later members adopt it (waiting out
// an in-progress build), and a member alone on its key returns nil
// immediately, keeping isolated queries on the private path. A nil return
// always means "run privately" and counts a fallback; a non-nil return is
// safe to share read-only across every member.
func (t *Ticket) Table(ctx context.Context, build func(region geom.Rect) *flatgeom.CornerTable) *flatgeom.CornerTable {
	g := t.g
	p := g.p
	g.mu.Lock()
	switch g.state {
	case stateIdle:
		if g.inflight < 2 {
			g.mu.Unlock()
			p.fallbacks.Add(1)
			return nil
		}
		g.state = stateBuilding
		g.mu.Unlock()
		var tbl *flatgeom.CornerTable
		start := time.Now()
		func() {
			// Publish the terminal state even if build panics, so waiters
			// are never stranded on the done channel.
			defer func() {
				ns := time.Since(start).Nanoseconds()
				g.mu.Lock()
				g.table, g.buildNs, g.state = tbl, ns, stateBuilt
				g.mu.Unlock()
				close(g.done)
				p.groupsFormed.Add(1)
				p.buildNs.Add(ns)
			}()
			tbl = build(g.region)
		}()
		if tbl == nil {
			p.fallbacks.Add(1)
		}
		return tbl
	case stateBuilding:
		g.mu.Unlock()
		select {
		case <-g.done:
		case <-ctx.Done():
			p.fallbacks.Add(1)
			return nil
		}
	default:
		g.mu.Unlock()
	}
	g.mu.Lock()
	tbl, ns := g.table, g.buildNs
	g.mu.Unlock()
	if tbl == nil {
		p.fallbacks.Add(1)
		return nil
	}
	p.adoptions.Add(1)
	p.savedNs.Add(ns)
	return tbl
}
