package planner

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"connquery/internal/flatgeom"
	"connquery/internal/geom"
)

const (
	minSide = 100.0 / 32
	maxSide = 100.0 / 4
)

func box(cx, cy, side float64) geom.Rect {
	h := side / 2
	return geom.Rect{MinX: cx - h, MinY: cy - h, MaxX: cx + h, MaxY: cy + h}
}

// table returns a distinct non-nil CornerTable sentinel for build closures.
func table() *flatgeom.CornerTable { return new(flatgeom.CornerTable) }

func TestGroupKeyRejects(t *testing.T) {
	inf := geom.Rect{MinX: -1e308, MinY: 0, MaxX: 1e308, MaxY: 1}
	cases := []struct {
		name             string
		box              geom.Rect
		minSide, maxSide float64
	}{
		{"empty box", geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}, minSide, maxSide},
		{"zero minSide", box(50, 50, 1), 0, maxSide},
		{"negative minSide", box(50, 50, 1), -1, maxSide},
		{"maxSide below minSide", box(50, 50, 1), 4, 2},
		{"box larger than maxSide", box(50, 50, maxSide*2), minSide, maxSide},
		{"infinite box", geom.Rect{MinX: math.Inf(-1), MinY: 0, MaxX: math.Inf(1), MaxY: 1}, minSide, maxSide},
		{"overflowing cell index", box(1e300, 0, 1), minSide, maxSide},
		{"huge finite box", inf, minSide, maxSide},
	}
	for _, c := range cases {
		if _, _, ok := GroupKey(1, c.box, c.minSide, c.maxSide); ok {
			t.Errorf("%s: GroupKey accepted %+v", c.name, c.box)
		}
	}
}

func TestGroupKeyQuantization(t *testing.T) {
	// Two nearby small boxes must share a key; the build region must contain
	// both; distinct epochs must never share a key.
	b1, b2 := box(50, 50, 2), box(50.5, 49.5, 1)
	k1, r1, ok1 := GroupKey(7, b1, minSide, maxSide)
	k2, r2, ok2 := GroupKey(7, b2, minSide, maxSide)
	if !ok1 || !ok2 {
		t.Fatalf("small boxes rejected: %v %v", ok1, ok2)
	}
	if k1 != k2 || r1 != r2 {
		t.Fatalf("nearby boxes split groups: %+v/%+v vs %+v/%+v", k1, r1, k2, r2)
	}
	for _, b := range []geom.Rect{b1, b2} {
		if b.MinX < r1.MinX || b.MinY < r1.MinY || b.MaxX > r1.MaxX || b.MaxY > r1.MaxY {
			t.Fatalf("box %+v escapes build region %+v", b, r1)
		}
	}
	if k3, _, _ := GroupKey(8, b1, minSide, maxSide); k3 == k1 {
		t.Fatal("distinct epochs shared a key")
	}
	if k1.Epoch != 7 {
		t.Fatalf("key epoch %d, want 7", k1.Epoch)
	}
	// A zero-extent box (point query) is clamped up to minSide, not rejected.
	if _, _, ok := GroupKey(1, box(10, 10, 0), minSide, maxSide); !ok {
		t.Fatal("point box rejected")
	}
}

func TestNewClampsCapacity(t *testing.T) {
	p := New(0)
	if p.max != 1 {
		t.Fatalf("max = %d, want clamp to 1", p.max)
	}
}

func TestAdmitUngroupableCountsFallback(t *testing.T) {
	p := New(4)
	if tk := p.Admit(1, box(50, 50, maxSide*2), minSide, maxSide); tk != nil {
		t.Fatal("oversized box admitted")
	}
	if st := p.Stats(); st.Fallbacks != 1 {
		t.Fatalf("stats = %+v, want 1 fallback", st)
	}
}

func TestSoloMemberRunsPrivately(t *testing.T) {
	p := New(4)
	tk := p.Admit(1, box(50, 50, 2), minSide, maxSide)
	if tk == nil {
		t.Fatal("admit failed")
	}
	built := false
	if tbl := tk.Table(context.Background(), func(geom.Rect) *flatgeom.CornerTable {
		built = true
		return table()
	}); tbl != nil {
		t.Fatal("solo member got a shared table")
	}
	tk.Done()
	if built {
		t.Fatal("solo member triggered a build")
	}
	st := p.Stats()
	if st.GroupsFormed != 0 || st.Fallbacks != 1 {
		t.Fatalf("stats = %+v, want no groups, 1 fallback", st)
	}
}

func TestConcurrentMembersShareOneBuild(t *testing.T) {
	p := New(4)
	b := box(50, 50, 2)
	t1 := p.Admit(3, b, minSide, maxSide)
	t2 := p.Admit(3, b, minSide, maxSide)
	if t1 == nil || t2 == nil {
		t.Fatal("admit failed")
	}
	if t1.Region() != t2.Region() {
		t.Fatalf("regions differ: %+v vs %+v", t1.Region(), t2.Region())
	}
	builds := 0
	build := func(region geom.Rect) *flatgeom.CornerTable {
		if region != t1.Region() {
			t.Errorf("build region %+v, want %+v", region, t1.Region())
		}
		builds++
		return table()
	}
	tbl1 := t1.Table(context.Background(), build)
	if tbl1 == nil {
		t.Fatal("first member with concurrency did not build")
	}
	tbl2 := t2.Table(context.Background(), build)
	if tbl2 != tbl1 {
		t.Fatal("second member did not adopt the shared table")
	}
	t1.Done()
	t2.Done()
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	st := p.Stats()
	if st.GroupsFormed != 1 || st.Adoptions != 1 || st.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want 1 group, 1 adoption", st)
	}
	if st.SavedNs != st.BuildNs {
		t.Fatalf("one adoption must credit exactly the build time: %+v", st)
	}

	// A third, late member (its partners already Done) still adopts.
	t3 := p.Admit(3, b, minSide, maxSide)
	if tbl3 := t3.Table(context.Background(), build); tbl3 != tbl1 {
		t.Fatal("late member did not adopt the built table")
	}
	t3.Done()
	if st := p.Stats(); st.Adoptions != 2 {
		t.Fatalf("stats = %+v, want 2 adoptions", st)
	}
}

func TestDeclinedBuildFallsBackEveryone(t *testing.T) {
	p := New(4)
	b := box(50, 50, 2)
	t1 := p.Admit(1, b, minSide, maxSide)
	t2 := p.Admit(1, b, minSide, maxSide)
	decline := func(geom.Rect) *flatgeom.CornerTable { return nil }
	if tbl := t1.Table(context.Background(), decline); tbl != nil {
		t.Fatal("declined build returned a table")
	}
	if tbl := t2.Table(context.Background(), decline); tbl != nil {
		t.Fatal("member adopted a declined build")
	}
	t1.Done()
	t2.Done()
	st := p.Stats()
	// The build still publishes (GroupsFormed counts the attempt) but every
	// member runs privately.
	if st.GroupsFormed != 1 || st.Adoptions != 0 || st.Fallbacks != 2 {
		t.Fatalf("stats = %+v, want 1 group, 0 adoptions, 2 fallbacks", st)
	}
}

func TestWaiterAdoptsInProgressBuild(t *testing.T) {
	p := New(4)
	b := box(50, 50, 2)
	t1 := p.Admit(1, b, minSide, maxSide)
	t2 := p.Admit(1, b, minSide, maxSide)
	started := make(chan struct{})
	finish := make(chan struct{})
	var wg sync.WaitGroup
	var tbl1 *flatgeom.CornerTable
	wg.Add(1)
	go func() {
		defer wg.Done()
		tbl1 = t1.Table(context.Background(), func(geom.Rect) *flatgeom.CornerTable {
			close(started)
			<-finish
			return table()
		})
	}()
	<-started // the build is in flight; t2 must wait it out, not build again
	var tbl2 *flatgeom.CornerTable
	wg.Add(1)
	go func() {
		defer wg.Done()
		tbl2 = t2.Table(context.Background(), func(geom.Rect) *flatgeom.CornerTable {
			t.Error("second build started during first")
			return nil
		})
	}()
	time.Sleep(10 * time.Millisecond) // let t2 reach the wait
	close(finish)
	wg.Wait()
	t1.Done()
	t2.Done()
	if tbl1 == nil || tbl2 != tbl1 {
		t.Fatalf("waiter got %p, builder %p", tbl2, tbl1)
	}
}

func TestWaiterCancellation(t *testing.T) {
	p := New(4)
	b := box(50, 50, 2)
	t1 := p.Admit(1, b, minSide, maxSide)
	t2 := p.Admit(1, b, minSide, maxSide)
	started := make(chan struct{})
	finish := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t1.Table(context.Background(), func(geom.Rect) *flatgeom.CornerTable {
			close(started)
			<-finish
			return table()
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if tbl := t2.Table(ctx, nil); tbl != nil {
		t.Fatal("cancelled waiter got a table")
	}
	if st := p.Stats(); st.Fallbacks != 1 {
		t.Fatalf("stats = %+v, want the cancelled waiter as 1 fallback", st)
	}
	close(finish)
	<-done
	t1.Done()
	t2.Done()
}

func TestEvictionBoundsGroups(t *testing.T) {
	p := New(2)
	for i := 0; i < 5; i++ {
		tk := p.Admit(1, box(float64(10+20*i), 50, 2), minSide, maxSide)
		if tk == nil {
			t.Fatalf("admit %d failed", i)
		}
		tk.Done()
	}
	p.mu.Lock()
	n, o := len(p.groups), len(p.order)
	p.mu.Unlock()
	if n != 2 || o != 2 {
		t.Fatalf("retained %d groups / %d order entries, want 2", n, o)
	}
	// An evicted key readmits as a fresh group (same box as the first admit).
	tk := p.Admit(1, box(10, 50, 2), minSide, maxSide)
	if tk == nil {
		t.Fatal("readmit after eviction failed")
	}
	tk.Done()
}
