package planner

import (
	"math"
	"testing"

	"connquery/internal/geom"
)

// FuzzPlannerGroupKey fuzzes the quantization invariants the planner's
// soundness rests on:
//
//  1. Containment: every box GroupKey accepts is contained in the build
//     region it returns — so a member's query geometry (and with it the
//     corners its visibility phase starts from) lies inside the region the
//     shared table was built over.
//  2. Key determinism: the build region is a pure function of the key, so
//     two boxes in the same group always share one build region.
//  3. Epoch separation: distinct epochs never share a key — a shared table
//     can never serve a snapshot it was not built from.
func FuzzPlannerGroupKey(f *testing.F) {
	f.Add(uint64(1), uint64(2), 48.0, 48.0, 2.0, 1.0, 49.0, 47.5, 0.5, 0.5, 100.0/32, 100.0/4)
	f.Add(uint64(7), uint64(7), -3.0, 9.0, 0.0, 0.0, 1000.0, -1000.0, 30.0, 5.0, 3.125, 25.0)
	f.Add(uint64(0), uint64(1), 1e9, -1e9, 100.0, 250.0, 1e9, -1e9, 100.0, 250.0, 10.0, 1000.0)
	f.Fuzz(func(t *testing.T, e1, e2 uint64, ax, ay, aw, ah, bx, by, bw, bh, minSide, maxSide float64) {
		boxA := geom.Rect{MinX: ax, MinY: ay, MaxX: ax + aw, MaxY: ay + ah}
		boxB := geom.Rect{MinX: bx, MinY: by, MaxX: bx + bw, MaxY: by + bh}
		keyA, regA, okA := GroupKey(e1, boxA, minSide, maxSide)
		if !okA {
			return
		}
		if keyA.Epoch != e1 {
			t.Fatalf("key epoch %d, want %d", keyA.Epoch, e1)
		}
		contains := func(r, b geom.Rect) bool {
			return b.MinX >= r.MinX && b.MinY >= r.MinY && b.MaxX <= r.MaxX && b.MaxY <= r.MaxY
		}
		if !contains(regA, boxA) {
			t.Fatalf("box %+v escapes its build region %+v (key %+v)", boxA, regA, keyA)
		}
		// Determinism: the same inputs must quantize identically.
		keyA2, regA2, okA2 := GroupKey(e1, boxA, minSide, maxSide)
		if !okA2 || keyA2 != keyA || regA2 != regA {
			t.Fatalf("GroupKey not deterministic: (%+v,%+v,%v) vs (%+v,%+v,%v)",
				keyA, regA, okA, keyA2, regA2, okA2)
		}
		// The region is a function of the key alone.
		s := math.Ldexp(1, keyA.Exp)
		want := geom.Rect{
			MinX: (float64(keyA.CX) - 1) * s, MinY: (float64(keyA.CY) - 1) * s,
			MaxX: (float64(keyA.CX) + 2) * s, MaxY: (float64(keyA.CY) + 2) * s,
		}
		if regA != want {
			t.Fatalf("region %+v is not determined by key %+v (want %+v)", regA, keyA, want)
		}
		if keyB, regB, okB := GroupKey(e1, boxB, minSide, maxSide); okB && keyB == keyA {
			// Same group: both boxes must sit inside the one merged region.
			if regB != regA {
				t.Fatalf("same key %+v, different regions %+v vs %+v", keyA, regA, regB)
			}
			if !contains(regA, boxB) {
				t.Fatalf("groupmate %+v escapes shared region %+v", boxB, regA)
			}
		}
		// Epoch separation.
		if keyE, _, okE := GroupKey(e2, boxA, minSide, maxSide); okE && e2 != e1 && keyE == keyA {
			t.Fatalf("epochs %d and %d shared key %+v", e1, e2, keyA)
		}
	})
}
