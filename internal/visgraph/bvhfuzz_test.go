package visgraph

import (
	"math/rand"
	"sort"
	"testing"

	"connquery/internal/flatgeom"
	"connquery/internal/geom"
)

// FuzzBVHBlocksSegment is the differential gate on the flat-geometry
// kernel's screened visibility tests: for randomized obstacle sets, mark
// subsets and sight lines — grid-snapped often enough that corner touches,
// edge-running segments and degenerate (zero-length) sight lines occur —
// the BVH-screened verdicts must agree with the brute per-obstacle
// geom.Rect.BlocksSegment loop, the same predicate brute.go's ground-truth
// oracle applies through geom.Visible. Both kernel regimes are exercised:
// a fresh BVH over the full set, and an Extend-grown kernel whose linear
// tail (or rebuilt BVH, past the rebuild bound) must not change a verdict.
func FuzzBVHBlocksSegment(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(8))  // empty obstacle set
	f.Add(int64(2), uint8(1), uint8(16)) // single obstacle
	f.Add(int64(2009), uint8(40), uint8(24))
	f.Add(int64(42), uint8(120), uint8(24)) // tail past the rebuild bound
	f.Add(int64(7), uint8(255), uint8(32))
	f.Fuzz(func(t *testing.T, seed int64, nObs, nSegs uint8) {
		r := rand.New(rand.NewSource(seed))
		// Grid-snapped coordinates make touching configurations (segment
		// along an edge, endpoint on a corner, abutting rectangles) likely
		// instead of measure-zero.
		coord := func() float64 {
			if r.Intn(2) == 0 {
				return float64(r.Intn(40) * 10)
			}
			return r.Float64() * 400
		}
		obstacles := make([]geom.Rect, nObs)
		for i := range obstacles {
			x, y := coord(), coord()
			w, h := 1+float64(r.Intn(8))*5, 1+float64(r.Intn(8))*5
			obstacles[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
		}

		full := flatgeom.NewKernel(obstacles)
		// Extend-grown twin: BVH over a prefix, the rest as linear tail
		// (rebuilt wholesale when the tail exceeds the rebuild bound).
		grown := flatgeom.NewKernel(obstacles[:len(obstacles)/2]).Extend(obstacles)

		var marks flatgeom.Marks
		marks.Reset(len(obstacles))
		marked := make([]geom.Rect, 0, len(obstacles))
		for i := range obstacles {
			if r.Intn(3) > 0 {
				marks.Set(int32(i))
				marked = append(marked, obstacles[i])
			}
		}

		for s := 0; s < int(nSegs); s++ {
			a := geom.Point{X: coord(), Y: coord()}
			b := geom.Point{X: coord(), Y: coord()}
			if s%8 == 7 {
				b = a // degenerate sight line
			}
			segLen := geom.Dist(a, b)
			seg := geom.Segment{A: a, B: b}

			want := false
			for _, o := range marked {
				if o.BlocksSegment(seg) {
					want = true
					break
				}
			}
			if got := full.Blocked(&marks, a.X, a.Y, b.X, b.Y, segLen); got != want {
				t.Fatalf("seed %d seg %d: Blocked=%v, brute=%v (a=%v b=%v)", seed, s, got, want, a, b)
			}
			if got := grown.Blocked(&marks, a.X, a.Y, b.X, b.Y, segLen); got != want {
				t.Fatalf("seed %d seg %d: Extend-grown Blocked=%v, brute=%v (a=%v b=%v)", seed, s, got, want, a, b)
			}

			// AppendBlockers covers the whole ID space, marked or not; the
			// BVH emits in traversal order, so compare as sets.
			var wantIDs []int32
			for i, o := range obstacles {
				if o.BlocksSegment(seg) {
					wantIDs = append(wantIDs, int32(i))
				}
			}
			for _, k := range []*flatgeom.Kernel{full, grown} {
				got := k.AppendBlockers(nil, a.X, a.Y, b.X, b.Y, segLen)
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if len(got) != len(wantIDs) {
					t.Fatalf("seed %d seg %d: AppendBlockers returned %d IDs, brute %d", seed, s, len(got), len(wantIDs))
				}
				for i := range got {
					if got[i] != wantIDs[i] {
						t.Fatalf("seed %d seg %d: AppendBlockers[%d]=%d, brute %d", seed, s, i, got[i], wantIDs[i])
					}
				}
			}
		}
	})
}
