package visgraph

import (
	"math"
	"math/rand"
	"testing"

	"connquery/internal/geom"
)

func TestEmptyGraphDirectVisibility(t *testing.T) {
	g := New()
	a := g.AddPoint(geom.Pt(0, 0), KindAnchor)
	b := g.AddPoint(geom.Pt(3, 4), KindAnchor)
	if d := g.Distance(a, b); math.Abs(d-5) > 1e-9 {
		t.Fatalf("Distance = %v, want 5", d)
	}
	dist, prev := g.ShortestPaths(a)
	if math.Abs(dist[b]-5) > 1e-9 {
		t.Fatalf("ShortestPaths dist = %v", dist[b])
	}
	if path := PathTo(prev, a, b); len(path) != 2 || path[0] != a || path[1] != b {
		t.Fatalf("path = %v", path)
	}
}

func TestSingleObstacleDetour(t *testing.T) {
	// Wall between (0,5) and (10,5): must route around a corner.
	g := New()
	a := g.AddPoint(geom.Pt(5, 0), KindAnchor)
	b := g.AddPoint(geom.Pt(5, 10), KindAnchor)
	g.AddObstacle(geom.R(2, 4, 8, 6))
	got := g.Distance(a, b)
	// Shortest detour goes around x=2 or x=8 corner: via (2,4),(2,6) (or 8,*).
	want := geom.Dist(geom.Pt(5, 0), geom.Pt(2, 4)) + 2 + geom.Dist(geom.Pt(2, 6), geom.Pt(5, 10))
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Distance = %v, want %v", got, want)
	}
	// And it must exceed the Euclidean distance.
	if got <= 10 {
		t.Fatalf("detour %v not longer than straight line", got)
	}
}

func TestAddObstacleInvalidatesEdges(t *testing.T) {
	g := New()
	a := g.AddPoint(geom.Pt(0, 5), KindAnchor)
	b := g.AddPoint(geom.Pt(10, 5), KindAnchor)
	if d := g.Distance(a, b); math.Abs(d-10) > 1e-9 {
		t.Fatalf("pre-obstacle Distance = %v", d)
	}
	g.AddObstacle(geom.R(4, 0, 6, 10))
	d := g.Distance(a, b)
	want := geom.Dist(geom.Pt(0, 5), geom.Pt(4, 0)) + 2 + geom.Dist(geom.Pt(6, 0), geom.Pt(10, 5))
	if math.Abs(d-want) > 1e-9 {
		t.Fatalf("post-obstacle Distance = %v, want %v", d, want)
	}
}

func TestTransientPointLifecycle(t *testing.T) {
	g := New()
	g.AddPoint(geom.Pt(0, 0), KindAnchor)
	g.AddObstacle(geom.R(3, 3, 5, 5))
	before := g.NumNodes()
	p := g.AddPoint(geom.Pt(9, 9), KindTransient)
	if g.NumNodes() != before+1 {
		t.Fatalf("NumNodes after add = %d", g.NumNodes())
	}
	g.RemovePoint(p)
	if g.NumNodes() != before {
		t.Fatalf("NumNodes after remove = %d", g.NumNodes())
	}
	// No dangling edges referencing the removed node.
	for u, edges := range g.adj {
		if !g.alive[u] {
			continue
		}
		for _, e := range edges {
			if e.to == p {
				t.Fatalf("dangling edge %d -> removed %d", u, p)
			}
		}
	}
	// Slot is recycled.
	p2 := g.AddPoint(geom.Pt(1, 1), KindTransient)
	if p2 != p {
		t.Fatalf("slot not recycled: got %d want %d", p2, p)
	}
}

func TestVersionBumpsOnObstacle(t *testing.T) {
	g := New()
	v0 := g.Version()
	g.AddPoint(geom.Pt(0, 0), KindAnchor)
	if g.Version() != v0 {
		t.Fatal("AddPoint changed version")
	}
	g.AddObstacle(geom.R(1, 1, 2, 2))
	if g.Version() != v0+1 {
		t.Fatal("AddObstacle did not bump version")
	}
}

func TestCornerCounting(t *testing.T) {
	g := New()
	g.AddPoint(geom.Pt(0, 0), KindAnchor)
	g.AddPoint(geom.Pt(1, 1), KindTransient)
	g.AddObstacle(geom.R(2, 2, 3, 3))
	g.AddObstacle(geom.R(5, 5, 6, 6))
	if got := g.NumCornerNodes(); got != 8 {
		t.Fatalf("NumCornerNodes = %d, want 8", got)
	}
	if got := g.NumObstacles(); got != 2 {
		t.Fatalf("NumObstacles = %d", got)
	}
}

func TestObstaclesNear(t *testing.T) {
	g := New()
	g.AddObstacle(geom.R(0, 0, 1, 1))
	g.AddObstacle(geom.R(100, 100, 101, 101))
	near := g.ObstaclesNear(geom.R(-1, -1, 2, 2))
	if len(near) != 1 || near[0] != geom.R(0, 0, 1, 1) {
		t.Fatalf("ObstaclesNear = %v", near)
	}
}

func TestUnreachableNode(t *testing.T) {
	g := New()
	a := g.AddPoint(geom.Pt(0, 0), KindAnchor)
	// Fully enclose point b inside a box of four wall obstacles. The walls
	// must overlap (not merely touch): travelling along shared boundaries is
	// legal under the open-interior blocking semantics, so abutting walls
	// would leave a walkable seam.
	b := g.AddPoint(geom.Pt(50, 50), KindAnchor)
	g.AddObstacle(geom.R(40, 40, 60, 43)) // bottom
	g.AddObstacle(geom.R(40, 57, 60, 60)) // top
	g.AddObstacle(geom.R(40, 40, 43, 60)) // left
	g.AddObstacle(geom.R(57, 40, 60, 60)) // right
	if d := g.Distance(a, b); !math.IsInf(d, 1) {
		t.Fatalf("enclosed point reachable: %v", d)
	}
	dist, prev := g.ShortestPaths(a)
	if !math.IsInf(dist[b], 1) || PathTo(prev, a, b) != nil {
		t.Fatal("ShortestPaths disagrees about unreachability")
	}
}

// The incremental graph must agree with the brute-force oracle on random
// obstacle fields.
func TestIncrementalMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		nObs := 1 + r.Intn(8)
		obstacles := make([]geom.Rect, 0, nObs)
		g := New()
		a := geom.Pt(r.Float64()*100, r.Float64()*100)
		b := geom.Pt(r.Float64()*100, r.Float64()*100)
		na := g.AddPoint(a, KindAnchor)
		nb := g.AddPoint(b, KindAnchor)
		for i := 0; i < nObs; i++ {
			lo := geom.Pt(r.Float64()*100, r.Float64()*100)
			o := geom.R(lo.X, lo.Y, lo.X+1+r.Float64()*20, lo.Y+1+r.Float64()*20)
			// Keep endpoints outside obstacle interiors so distances exist.
			if o.ContainsOpen(a) || o.ContainsOpen(b) {
				continue
			}
			obstacles = append(obstacles, o)
			g.AddObstacle(o)
		}
		got := g.Distance(na, nb)
		want := BruteObstructedDist(a, b, obstacles)
		if math.IsInf(want, 1) != math.IsInf(got, 1) {
			t.Fatalf("trial %d: reachability mismatch got=%v want=%v", trial, got, want)
		}
		if !math.IsInf(want, 1) && math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("trial %d: dist %v, want %v (a=%v b=%v obs=%v)", trial, got, want, a, b, obstacles)
		}
	}
}

// Obstructed distance is always >= Euclidean (paper's mindist lower bound).
func TestPropObstructedAtLeastEuclidean(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	for trial := 0; trial < 60; trial++ {
		g := New()
		a := geom.Pt(r.Float64()*100, r.Float64()*100)
		b := geom.Pt(r.Float64()*100, r.Float64()*100)
		na := g.AddPoint(a, KindAnchor)
		nb := g.AddPoint(b, KindAnchor)
		for i := 0; i < 5; i++ {
			lo := geom.Pt(r.Float64()*100, r.Float64()*100)
			o := geom.R(lo.X, lo.Y, lo.X+r.Float64()*15, lo.Y+r.Float64()*15)
			if o.ContainsOpen(a) || o.ContainsOpen(b) {
				continue
			}
			g.AddObstacle(o)
		}
		d := g.Distance(na, nb)
		if d < geom.Dist(a, b)-1e-9 {
			t.Fatalf("obstructed %v < euclidean %v", d, geom.Dist(a, b))
		}
	}
}

// Path reconstruction: consecutive path nodes must be mutually visible and
// the summed length must equal the reported distance.
func TestPathConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(107))
	for trial := 0; trial < 30; trial++ {
		g := New()
		a := geom.Pt(r.Float64()*100, r.Float64()*100)
		b := geom.Pt(r.Float64()*100, r.Float64()*100)
		na := g.AddPoint(a, KindAnchor)
		nb := g.AddPoint(b, KindAnchor)
		for i := 0; i < 6; i++ {
			lo := geom.Pt(r.Float64()*100, r.Float64()*100)
			o := geom.R(lo.X, lo.Y, lo.X+r.Float64()*18, lo.Y+r.Float64()*18)
			if o.ContainsOpen(a) || o.ContainsOpen(b) {
				continue
			}
			g.AddObstacle(o)
		}
		dist, prev := g.ShortestPaths(na)
		if math.IsInf(dist[nb], 1) {
			continue
		}
		path := PathTo(prev, na, nb)
		if path == nil {
			t.Fatalf("trial %d: nil path for reachable node", trial)
		}
		total := 0.0
		for i := 1; i < len(path); i++ {
			p0, p1 := g.Point(path[i-1]), g.Point(path[i])
			if !g.Visible(p0, p1) {
				t.Fatalf("trial %d: path hop %v-%v not visible", trial, p0, p1)
			}
			total += geom.Dist(p0, p1)
		}
		if math.Abs(total-dist[nb]) > 1e-6*(1+total) {
			t.Fatalf("trial %d: path length %v != dist %v", trial, total, dist[nb])
		}
	}
}

func BenchmarkAddObstacle(b *testing.B) {
	r := rand.New(rand.NewSource(109))
	rects := make([]geom.Rect, 256)
	for i := range rects {
		lo := geom.Pt(r.Float64()*10000, r.Float64()*10000)
		rects[i] = geom.R(lo.X, lo.Y, lo.X+50, lo.Y+50)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New()
		g.AddPoint(geom.Pt(0, 0), KindAnchor)
		g.AddPoint(geom.Pt(10000, 10000), KindAnchor)
		for _, rc := range rects[:64] {
			g.AddObstacle(rc)
		}
	}
}

func BenchmarkDijkstra256Obstacles(b *testing.B) {
	r := rand.New(rand.NewSource(111))
	g := New()
	src := g.AddPoint(geom.Pt(0, 0), KindAnchor)
	g.AddPoint(geom.Pt(10000, 10000), KindAnchor)
	for i := 0; i < 256; i++ {
		lo := geom.Pt(r.Float64()*10000, r.Float64()*10000)
		g.AddObstacle(geom.R(lo.X, lo.Y, lo.X+40, lo.Y+40))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShortestPaths(src)
	}
}
