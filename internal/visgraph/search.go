package visgraph

import (
	"math"
	"slices"

	"connquery/internal/minheap"
)

// Search is a resumable Dijkstra traversal of the graph from a fixed source.
// Unlike ShortestPaths, which settles every reachable node, a Search settles
// nodes lazily: SettleTargets stops as soon as a requested set of nodes has
// final distances (the IOR loop only ever reads the two anchor distances),
// and SettleBatch hands out further nodes in ascending-distance order one
// equivalence class at a time (CPLC consumes exactly that order and usually
// stops early via Lemma 7). Because the heap is kept between calls, resuming
// a search performs the identical pop/relax sequence a full Dijkstra would,
// so distances and predecessors are bit-for-bit the same.
//
// A Search is owned by its Graph (NewSearch recycles one shared instance and
// its buffers) and is invalidated by any graph mutation; use Valid to check.
type Search struct {
	g         *Graph
	src       NodeID
	mutations uint64

	h    minheap.Heap[NodeID]
	dist []float64
	prev []NodeID
	done []bool

	settled  []NodeID // nodes in settle order (non-decreasing distance)
	consumed int      // prefix of settled already handed out by SettleBatch
	polls    int      // settles since the last cancellation poll
}

// NewSearch starts a Dijkstra traversal from src. The returned Search is the
// graph's single recycled instance: starting a new search (or calling
// ShortestPaths) invalidates the previous one.
func (g *Graph) NewSearch(src NodeID) *Search {
	s := &g.search
	s.g = g
	s.src = src
	s.mutations = g.mutations
	n := len(g.pts)
	if cap(s.dist) < n {
		s.dist = make([]float64, n)
		s.prev = make([]NodeID, n)
		s.done = make([]bool, n)
	}
	s.dist, s.prev, s.done = s.dist[:n], s.prev[:n], s.done[:n]
	for i := 0; i < n; i++ {
		s.dist[i] = math.Inf(1)
		s.prev[i] = Invalid
		s.done[i] = false
	}
	s.h.Reset()
	s.settled = s.settled[:0]
	s.consumed = 0
	s.dist[src] = 0
	s.h.Push(0, src)
	return s
}

// Valid reports whether the graph is unchanged since the search started.
// Any AddPoint, RemovePoint, AddObstacle or Reset invalidates the search.
func (s *Search) Valid() bool { return s.g != nil && s.mutations == s.g.mutations }

// Src returns the source node of the search.
func (s *Search) Src() NodeID { return s.src }

// Dist returns the distance of id from the source. It is final (the true
// shortest distance) once id has been settled; +Inf otherwise.
func (s *Search) Dist(id NodeID) float64 { return s.dist[id] }

// Prev returns the Dijkstra predecessor of id (final once id is settled).
func (s *Search) Prev(id NodeID) NodeID { return s.prev[id] }

// Settled reports whether id has been settled (its distance is final).
func (s *Search) Settled(id NodeID) bool { return s.done[id] }

// settleOne settles the next-nearest unsettled node. ok is false when the
// reachable component is exhausted.
func (s *Search) settleOne() (u NodeID, d float64, ok bool) {
	if s.g.check != nil {
		if s.polls++; s.polls >= pollInterval {
			s.polls = 0
			s.g.Poll()
		}
	}
	for !s.h.Empty() {
		d, u = s.h.Pop()
		if s.done[u] || d > s.dist[u] {
			continue // stale heap entry
		}
		s.done[u] = true
		s.settled = append(s.settled, u)
		for _, e := range s.g.adj[u] {
			if nd := d + e.w; nd < s.dist[e.to] {
				s.dist[e.to] = nd
				s.prev[e.to] = u
				s.h.Push(nd, e.to)
			}
		}
		return u, d, true
	}
	return Invalid, 0, false
}

// peekFresh returns the key of the next non-stale heap entry, discarding
// stale ones. ok is false when the heap is effectively empty.
func (s *Search) peekFresh() (float64, bool) {
	for !s.h.Empty() {
		k, u := s.h.Peek()
		if s.done[u] || k > s.dist[u] {
			s.h.Pop()
			continue
		}
		return k, true
	}
	return 0, false
}

// SettleTargets runs the search until every target is settled, then stops.
// Targets disconnected from the source keep +Inf distance (the search runs
// the whole component before concluding that, exactly like a full Dijkstra).
func (s *Search) SettleTargets(targets ...NodeID) {
	for _, t := range targets {
		for !s.done[t] {
			if _, _, ok := s.settleOne(); !ok {
				return // component exhausted; t is unreachable
			}
		}
	}
}

// SettleAll settles every reachable node, making the search equivalent to a
// completed ShortestPaths run.
func (s *Search) SettleAll() {
	for {
		if _, _, ok := s.settleOne(); !ok {
			return
		}
	}
}

// SettleBatch settles and returns the next group of nodes that share the
// same exact distance, sorted by NodeID, resuming where the previous batch
// (or SettleTargets) left off. It returns nil when the reachable component
// is exhausted. Consuming batches yields every reachable node exactly once
// in ascending (distance, NodeID) order — the deterministic order CPLC's
// candidate scan requires — without settling nodes beyond the ones consumed.
// The returned slice aliases internal storage and is valid until the next
// SettleBatch call.
func (s *Search) SettleBatch() []NodeID {
	if s.consumed == len(s.settled) {
		if _, _, ok := s.settleOne(); !ok {
			return nil
		}
	}
	d := s.dist[s.settled[s.consumed]]
	// The settle sequence is non-decreasing in distance, so the equivalence
	// class of d is contiguous: extend over already-settled ties, then drain
	// any remaining ties still in the heap.
	j := s.consumed + 1
	for j < len(s.settled) && s.dist[s.settled[j]] == d {
		j++
	}
	if j == len(s.settled) {
		for {
			k, ok := s.peekFresh()
			if !ok || k != d {
				break
			}
			s.settleOne()
			j++
		}
	}
	batch := s.settled[s.consumed:j]
	s.consumed = j
	if len(batch) > 1 {
		slices.Sort(batch)
	}
	return batch
}
