package visgraph

// Aborted is the panic payload that carries a cancellation out of the query
// machinery. The hot paths (the Dijkstra settle loop here, the IOR/CPLC
// loops in internal/core) poll an installed check function and panic with
// Aborted when it reports an error; the public query entry point recovers
// the panic and returns the carried error. Using a panic keeps every
// intermediate signature free of error plumbing while still unwinding
// promptly from arbitrarily deep in the algorithms.
type Aborted struct{ Err error }

// SetCheck installs (or, with nil, removes) the cancellation poll consulted
// by Poll and by the Dijkstra settle loop. The check must be cheap — it runs
// every pollInterval settled nodes — and must return a non-nil error exactly
// when the current query should abort.
func (g *Graph) SetCheck(check func() error) { g.check = check }

// Poll consults the installed cancellation check, panicking with Aborted
// when it reports an error. With no check installed it is a single nil
// comparison, so callers can poll unconditionally in loops.
func (g *Graph) Poll() {
	if g.check == nil {
		return
	}
	if err := g.check(); err != nil {
		panic(Aborted{Err: err})
	}
}

// pollInterval is how many settled nodes the Dijkstra loop processes between
// cancellation polls: small enough that even adversarial graphs abort within
// microseconds of cancellation, large enough that the check never shows up
// in profiles.
const pollInterval = 64
