package visgraph

import (
	"math"
	"math/rand"
	"testing"

	"connquery/internal/geom"
)

// randomGraph builds a graph with nObs random obstacles and nPts extra
// random free nodes, returning the graph and every live node ID.
func randomGraph(rng *rand.Rand, nObs, nPts int) (*Graph, []NodeID) {
	g := New()
	for i := 0; i < nObs; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		g.AddObstacle(geom.R(x, y, x+5+rng.Float64()*60, y+5+rng.Float64()*40))
	}
	for i := 0; i < nPts; i++ {
		g.AddPoint(geom.Pt(rng.Float64()*1000, rng.Float64()*1000), KindAnchor)
	}
	var ids []NodeID
	for i := range g.pts {
		if g.alive[i] {
			ids = append(ids, NodeID(i))
		}
	}
	return g, ids
}

// naiveDijkstra is an independent O(n^2) reference implementation over the
// graph's adjacency (no heap, no early exit).
func naiveDijkstra(g *Graph, src NodeID) []float64 {
	n := len(g.pts)
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for {
		u, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u < 0 {
			return dist
		}
		done[u] = true
		for _, e := range g.adj[u] {
			if nd := best + e.w; nd < dist[e.to] {
				dist[e.to] = nd
			}
		}
	}
}

// TestSearchMatchesNaiveDijkstra checks SettleAll against an independent
// O(n^2) Dijkstra on randomized graphs.
func TestSearchMatchesNaiveDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		g, ids := randomGraph(rng, 3+rng.Intn(8), 2+rng.Intn(4))
		src := ids[rng.Intn(len(ids))]
		want := naiveDijkstra(g, src)
		s := g.NewSearch(src)
		s.SettleAll()
		for _, id := range ids {
			if got := s.Dist(id); math.Abs(got-want[id]) > 1e-9 &&
				!(math.IsInf(got, 1) && math.IsInf(want[id], 1)) {
				t.Fatalf("trial %d: dist[%d] = %v, want %v", trial, id, got, want[id])
			}
		}
	}
}

// TestSettleTargetsEarlyExit checks that the multi-target early exit leaves
// the target distances identical to a full run, settles the targets, and
// that resuming the same search later still completes correctly.
func TestSettleTargetsEarlyExit(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		g, ids := randomGraph(rng, 3+rng.Intn(8), 3+rng.Intn(4))
		src := ids[rng.Intn(len(ids))]
		t1 := ids[rng.Intn(len(ids))]
		t2 := ids[rng.Intn(len(ids))]
		want := naiveDijkstra(g, src)

		s := g.NewSearch(src)
		s.SettleTargets(t1, t2)
		for _, tgt := range []NodeID{t1, t2} {
			got := s.Dist(tgt)
			if math.IsInf(want[tgt], 1) {
				if !math.IsInf(got, 1) {
					t.Fatalf("trial %d: target %d reachable (%v), want unreachable", trial, tgt, got)
				}
				continue
			}
			if !s.Settled(tgt) {
				t.Fatalf("trial %d: target %d not settled", trial, tgt)
			}
			if math.Abs(got-want[tgt]) > 1e-9 {
				t.Fatalf("trial %d: target %d dist %v, want %v", trial, tgt, got, want[tgt])
			}
		}
		// Resuming must produce the same distances as a from-scratch run.
		s.SettleAll()
		for _, id := range ids {
			if got := s.Dist(id); math.Abs(got-want[id]) > 1e-9 &&
				!(math.IsInf(got, 1) && math.IsInf(want[id], 1)) {
				t.Fatalf("trial %d: after resume dist[%d] = %v, want %v", trial, id, got, want[id])
			}
		}
	}
}

// TestSettleBatchOrder checks that consuming batches yields every reachable
// node exactly once in ascending (distance, NodeID) order — the order CPLC
// relies on — including when a SettleTargets call already ran first.
func TestSettleBatchOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 20; trial++ {
		g, ids := randomGraph(rng, 3+rng.Intn(8), 3+rng.Intn(4))
		src := ids[rng.Intn(len(ids))]
		s := g.NewSearch(src)
		if trial%2 == 0 { // half the trials resume after a targeted phase
			s.SettleTargets(ids[rng.Intn(len(ids))])
		}
		seen := map[NodeID]bool{}
		lastD := math.Inf(-1)
		lastID := NodeID(-1)
		count := 0
		for {
			batch := s.SettleBatch()
			if batch == nil {
				break
			}
			for _, id := range batch {
				d := s.Dist(id)
				if d < lastD {
					t.Fatalf("trial %d: distance went backwards: %v after %v", trial, d, lastD)
				}
				if d == lastD && id <= lastID {
					t.Fatalf("trial %d: tie not in id order: %d after %d", trial, id, lastID)
				}
				if seen[id] {
					t.Fatalf("trial %d: node %d settled twice", trial, id)
				}
				seen[id] = true
				lastD, lastID = d, id
				count++
			}
		}
		want := naiveDijkstra(g, src)
		reachable := 0
		for _, id := range ids {
			if !math.IsInf(want[id], 1) {
				reachable++
				if !seen[id] {
					t.Fatalf("trial %d: reachable node %d never surfaced", trial, id)
				}
			}
		}
		if count != reachable {
			t.Fatalf("trial %d: surfaced %d nodes, want %d", trial, count, reachable)
		}
	}
}

// TestSearchInvalidation checks that any mutation invalidates a search.
func TestSearchInvalidation(t *testing.T) {
	g := New()
	a := g.AddPoint(geom.Pt(0, 0), KindAnchor)
	g.AddPoint(geom.Pt(10, 0), KindAnchor)
	s := g.NewSearch(a)
	if !s.Valid() {
		t.Fatal("fresh search invalid")
	}
	p := g.AddPoint(geom.Pt(5, 5), KindTransient)
	if s.Valid() {
		t.Fatal("search still valid after AddPoint")
	}
	s = g.NewSearch(a)
	g.RemovePoint(p)
	if s.Valid() {
		t.Fatal("search still valid after RemovePoint")
	}
	s = g.NewSearch(a)
	g.AddObstacle(geom.R(2, 2, 4, 4))
	if s.Valid() {
		t.Fatal("search still valid after AddObstacle")
	}
	s = g.NewSearch(a)
	g.Reset()
	if s.Valid() {
		t.Fatal("search still valid after Reset")
	}
}

// TestAddPointMatchesBruteVisibility cross-checks the occlusion-index
// candidate pruning in AddPoint: the inserted node's edge set must be
// exactly the brute-force visibility set.
func TestAddPointMatchesBruteVisibility(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		g, ids := randomGraph(rng, 2+rng.Intn(10), 1+rng.Intn(3))
		var p geom.Point
		switch trial % 3 {
		case 0: // free point
			p = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		case 1: // on an obstacle boundary (points may sit on boundaries)
			o := g.obstacles[rng.Intn(len(g.obstacles))]
			p = geom.Pt(o.MinX+rng.Float64()*(o.MaxX-o.MinX), o.MinY)
		default: // coincident with an existing corner
			p = g.pts[ids[rng.Intn(len(ids))]]
		}
		id := g.AddPoint(p, KindTransient)
		got := map[NodeID]bool{}
		for _, e := range g.adj[id] {
			got[e.to] = true
		}
		for _, other := range ids {
			want := geom.Visible(p, g.pts[other], g.obstacles)
			if got[other] != want {
				t.Fatalf("trial %d: edge %v->%v = %v, want %v (p=%v, q=%v)",
					trial, id, other, got[other], want, p, g.pts[other])
			}
		}
		g.RemovePoint(id)
	}
}

// TestGraphReset checks that a Reset graph behaves like a fresh one while
// recycling storage.
func TestGraphReset(t *testing.T) {
	g := New()
	g.AddObstacle(geom.R(10, 10, 20, 20))
	a := g.AddPoint(geom.Pt(0, 15), KindAnchor)
	b := g.AddPoint(geom.Pt(30, 15), KindAnchor)
	dBlocked := g.Distance(a, b)
	if dBlocked <= 30 {
		t.Fatalf("expected detour > 30, got %v", dBlocked)
	}
	v := g.Version()
	g.Reset()
	if g.NumNodes() != 0 || g.NumObstacles() != 0 {
		t.Fatalf("reset graph not empty: %d nodes, %d obstacles", g.NumNodes(), g.NumObstacles())
	}
	if g.Version() == v {
		t.Fatal("Reset must change the version")
	}
	a = g.AddPoint(geom.Pt(0, 15), KindAnchor)
	b = g.AddPoint(geom.Pt(30, 15), KindAnchor)
	if d := g.Distance(a, b); math.Abs(d-30) > 1e-9 {
		t.Fatalf("distance after reset = %v, want 30", d)
	}
	g.AddObstacle(geom.R(10, 10, 20, 20))
	if d := g.Distance(a, b); math.Abs(d-dBlocked) > 1e-9 {
		t.Fatalf("distance after reset+re-add = %v, want %v", d, dBlocked)
	}
}
