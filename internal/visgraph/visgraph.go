package visgraph

import (
	"connquery/internal/flatgeom"
	"connquery/internal/geom"
	"connquery/internal/rtree"
)

// NodeID identifies a graph node. IDs of removed transient nodes are
// recycled.
type NodeID int32

// Invalid is the NodeID returned for "no node" (e.g. Dijkstra predecessors
// of unreachable nodes).
const Invalid NodeID = -1

// NodeKind classifies graph nodes.
type NodeKind uint8

const (
	// KindCorner is an obstacle corner vertex.
	KindCorner NodeKind = iota
	// KindAnchor is a persistent query-segment endpoint (S or E).
	KindAnchor
	// KindTransient is a temporarily inserted data point.
	KindTransient
)

type edgeTo struct {
	to NodeID
	w  float64
	// vx, vy inline the target node's coordinates so obstacle-insertion
	// invalidation scans the adjacency list without a random pts gather per
	// edge; w doubles as the exact segment length for the blocking test.
	vx, vy float64
	// gto inlines the target node's kernel corner index (gidx[to], -1 for
	// non-corner targets) so batch invalidation can consult the kernel's
	// corner-pair table without a gather.
	gto int32
}

// Graph is a local visibility graph. Not safe for concurrent use.
type Graph struct {
	pts   []geom.Point
	kinds []NodeKind
	alive []bool
	// gidx[u] is node u's kernel corner index (4*obstacleID + vertex, per
	// geom.Rect.Vertices order) when u is a corner loaded through a kernel,
	// else -1. It keys the kernel's precomputed corner-pair table.
	gidx []int32
	adj  [][]edgeTo
	// adjBox[u] is a conservative bounding box of u and every neighbor it has
	// (ever had, until recomputed): the MBR of every edge segment incident to
	// u is contained in it, so AddObstacle can skip u's whole adjacency list
	// when the box misses the new obstacle.
	adjBox []geom.Rect
	free   []NodeID

	obstacles []geom.Rect
	// obsIndex is the per-graph obstacle R-tree, built lazily on the first
	// obstacle insertion. It stays nil when a shared flat kernel serves the
	// obstacle-set queries instead (see SetKernel).
	obsIndex *rtree.Tree
	// kern, when non-nil, is the immutable per-version geometry kernel;
	// marks records which of its obstacle IDs this graph has loaded.
	kern  *flatgeom.Kernel
	marks flatgeom.Marks
	// shared, when non-nil, is a region-scoped corner-pair certificate table
	// built over kern by the execution planner and shared read-only across
	// concurrent queries (see SetShared). Consulted only when the kernel's
	// own full table is absent; pairs it does not cover fall back to the
	// exact kernel test, so verdicts never change — only their cost.
	shared  *flatgeom.CornerTable
	version int
	// mutations counts every structural change (nodes, edges, obstacles,
	// resets); a Search snapshot is valid only while it is unchanged.
	mutations uint64

	// check, when set, is the cancellation poll consulted by Poll and by the
	// Dijkstra settle loop (see cancel.go).
	check func() error

	// search is the recycled Dijkstra state handed out by NewSearch.
	search Search
	// occ is the recycled angular occlusion index used by AddPoint.
	occ occIndex
	// obsScratch backs ObstaclesNear results between calls.
	obsScratch []geom.Rect
	// batchScratch backs AddObstacleIDs' rectangle batch between calls.
	batchScratch []geom.Rect
	// batchMarks holds just the current AddObstacleIDs batch so the
	// corner-table invalidation tests membership against the batch alone.
	batchMarks flatgeom.Marks

	// par, when non-nil, is the intra-query worker pool AddObstacleIDs fans
	// its corner sight-line batches across (see parallel.go); the remaining
	// fields are its recycled scratch. The graph stays single-writer: pool
	// lanes only read it and write disjoint verdict slabs.
	par     *WorkerPool
	parSegs [][]float64 // per-corner verdict slabs, indexed by candidate ID
	parOcc  []*occIndex // per-lane occlusion indexes
	parIDs  []NodeID    // predicted batch-corner node IDs
	parPts  []geom.Point
}

// New creates an empty graph.
func New() *Graph { return &Graph{} }

// SetKernel hands the graph a shared, immutable flat-geometry kernel for the
// obstacle set of the version it is about to query. With a kernel set,
// obstacles must be inserted via AddObstacleID; Visible and ObstaclesNear
// then answer from the kernel's BVH filtered by this graph's loaded-obstacle
// marks, and no per-query R-tree is ever built. Call after Reset (Reset
// detaches the kernel).
func (g *Graph) SetKernel(k *flatgeom.Kernel) {
	g.kern = k
	g.marks.Reset(k.NumObstacles())
}

// SetShared attaches a region-scoped corner-pair table built over the
// attached kernel (same version, same obstacle ID space). Call after
// SetKernel; Reset detaches it. The table is read-only and may be shared by
// any number of concurrent graphs. When the kernel has its own full table
// the shared one is ignored (the full table already answers every pair).
func (g *Graph) SetShared(t *flatgeom.CornerTable) { g.shared = t }

// cornerTable resolves the table serving corner-pair sight-line verdicts:
// the kernel's full table when the scene is small enough for one, else the
// planner-shared region table, else nil.
func (g *Graph) cornerTable() *flatgeom.CornerTable {
	if g.kern == nil {
		return nil
	}
	if t := g.kern.Corners(); t != nil {
		return t
	}
	return g.shared
}

// Reset empties the graph for reuse, retaining node, adjacency and search
// buffer capacity so a pooled graph answers subsequent queries with few
// allocations. All node IDs and outstanding Searches are invalidated.
func (g *Graph) Reset() {
	g.pts = g.pts[:0]
	g.kinds = g.kinds[:0]
	g.alive = g.alive[:0]
	g.gidx = g.gidx[:0]
	g.adjBox = g.adjBox[:0]
	g.free = g.free[:0]
	g.obstacles = g.obstacles[:0]
	g.obsIndex = nil
	g.kern = nil
	g.shared = nil
	// Shrink the outer adjacency slice but keep both its backing array and
	// every inner slice's capacity: allocNode re-extends within capacity and
	// reuses the retired per-node edge storage.
	g.adj = g.adj[:0]
	g.version++
	g.mutations++
}

// NumNodes returns the number of live nodes (the paper's |SVG| metric when
// only corner and anchor nodes are present).
func (g *Graph) NumNodes() int {
	n := 0
	for _, a := range g.alive {
		if a {
			n++
		}
	}
	return n
}

// NumCornerNodes returns the number of obstacle-corner nodes, the |SVG|
// figure reported by the paper (4 x number of obstacles inserted).
func (g *Graph) NumCornerNodes() int {
	n := 0
	for i, a := range g.alive {
		if a && g.kinds[i] == KindCorner {
			n++
		}
	}
	return n
}

// NumObstacles returns the number of inserted obstacles.
func (g *Graph) NumObstacles() int { return len(g.obstacles) }

// Obstacles returns the inserted obstacle rectangles. The slice is shared;
// callers must not modify it.
func (g *Graph) Obstacles() []geom.Rect { return g.obstacles }

// Version increments whenever the obstacle set changes; callers use it to
// invalidate cached visibility regions.
func (g *Graph) Version() int { return g.version }

// Point returns the location of node id.
func (g *Graph) Point(id NodeID) geom.Point { return g.pts[id] }

// Kind returns the node classification of id.
func (g *Graph) Kind(id NodeID) NodeKind { return g.kinds[id] }

// Visible reports whether the segment a-b is unobstructed by any inserted
// obstacle. The kernel BVH (or, without a kernel, the obstacle R-tree)
// prunes the candidate set; the verdict matches a linear BlocksSegment scan.
func (g *Graph) Visible(a, b geom.Point) bool {
	if g.kern != nil {
		dx, dy := b.X-a.X, b.Y-a.Y
		d2 := dx*dx + dy*dy
		return !g.kern.Blocked(&g.marks, a.X, a.Y, b.X, b.Y, geom.SegLen(dx, dy, d2))
	}
	if g.obsIndex == nil {
		return true
	}
	s := geom.Seg(a, b)
	ok := true
	g.obsIndex.SearchSegment(s, func(it rtree.Item) bool {
		if g.obstacles[it.ID].BlocksSegment(s) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// ObstaclesNear returns the inserted obstacles whose rectangles intersect w.
// The core algorithm uses this to bound the obstacle set passed to
// visible-region computation. The returned slice is a scratch buffer owned
// by the graph and is overwritten by the next call.
func (g *Graph) ObstaclesNear(w geom.Rect) []geom.Rect {
	out := g.AppendObstaclesNear(g.obsScratch[:0], w)
	g.obsScratch = out
	return out
}

// AddPoint inserts a node at p with the given kind and connects it to every
// visible live node. It returns the new node's ID.
//
// Candidate pruning: instead of running an obstacle-index search per
// candidate node, AddPoint builds an angular occlusion index of the current
// obstacle set around p once, and each candidate first consults it — only
// obstacles whose angular interval contains the candidate's direction and
// whose minimum distance does not exceed the candidate's are ever tested
// exactly. Candidates outside every occluder's cone connect with no exact
// test at all. The index is conservative, so the resulting edge set is
// identical to the brute-force scan.
func (g *Graph) AddPoint(p geom.Point, kind NodeKind) NodeID {
	return g.addPoint(p, kind, -1)
}

// addPoint is AddPoint with the node's kernel corner index (-1 for
// non-corner nodes). Corner insertions on a table-backed kernel skip the
// occlusion index entirely: each corner-corner candidate is decided by a
// few Marks membership tests against the precomputed full-set blocker list
// for exactly the directed segment (p -> candidate) the occlusion path
// would test, so the edge set — and its append order — is identical.
func (g *Graph) addPoint(p geom.Point, kind NodeKind, gi int32) NodeID {
	id := g.allocNode(p, kind, gi)
	g.mutations++
	var tbl *flatgeom.CornerTable
	if gi >= 0 {
		// A table that does not cover this corner at all (a region-scoped
		// shared table, with the corner outside the build region) answers no
		// pair, so take the occlusion path as if no table existed.
		if tbl = g.cornerTable(); tbl != nil && !tbl.Covers(gi) {
			tbl = nil
		}
	}
	if tbl == nil {
		g.occ.build(p, g.obstacles)
		if g.par != nil && len(g.pts) >= parMinCandidates {
			g.addPointParallel(id, p, gi)
			return id
		}
	}
	for other := range g.pts {
		oid := NodeID(other)
		if oid == id || !g.alive[other] {
			continue
		}
		q := g.pts[other]
		dx, dy := q.X-p.X, q.Y-p.Y
		d2 := dx*dx + dy*dy
		segLen := -1.0
		if tbl != nil {
			if blocked, ok := g.pairBlocked(tbl, gi, g.gidx[other]); ok {
				if blocked {
					continue
				}
			} else {
				// Anchor/transient candidates (a handful per corner) and
				// corner pairs a region-scoped table leaves uncovered take the
				// exact kernel test, which matches the occlusion-path verdict.
				segLen = geom.SegLen(dx, dy, d2)
				if g.kern.Blocked(&g.marks, p.X, p.Y, q.X, q.Y, segLen) {
					continue
				}
			}
		} else if g.occ.blocked(q, dx, dy, d2, &segLen, g.obstacles) {
			continue
		}
		// One square root per surviving candidate, shared with the exact
		// tests: geom.SegLen(dx, dy, d2) is bit-identical to geom.Dist(p, q).
		if segLen < 0 {
			segLen = geom.SegLen(dx, dy, d2)
		}
		w := segLen
		g.adj[id] = append(g.adj[id], edgeTo{to: oid, w: w, vx: q.X, vy: q.Y, gto: g.gidx[other]})
		g.adj[other] = append(g.adj[other], edgeTo{to: id, w: w, vx: p.X, vy: p.Y, gto: gi})
		g.adjBox[id] = expandRect(g.adjBox[id], q)
		g.adjBox[other] = expandRect(g.adjBox[other], p)
	}
	return id
}

// pairBlocked consults tbl for the directed corner pair (gi, gj): ok is
// false when gj is not a corner or a region-scoped table leaves the pair
// uncovered, and the caller must decide the pair geometrically.
func (g *Graph) pairBlocked(tbl *flatgeom.CornerTable, gi, gj int32) (blocked, ok bool) {
	if gj < 0 {
		return false, false
	}
	return tbl.PairVerdict(&g.marks, gi, gj)
}

// RemovePoint deletes a transient node and all its edges; the slot is
// recycled. Removing anchors or corner nodes is a programming error.
func (g *Graph) RemovePoint(id NodeID) {
	if g.kinds[id] != KindTransient {
		panic("visgraph: RemovePoint on non-transient node")
	}
	g.mutations++
	for _, e := range g.adj[id] {
		nbr := g.adj[e.to]
		for i := range nbr {
			if nbr[i].to == id {
				nbr[i] = nbr[len(nbr)-1]
				g.adj[e.to] = nbr[:len(nbr)-1]
				break
			}
		}
	}
	g.adj[id] = g.adj[id][:0]
	g.alive[id] = false
	g.free = append(g.free, id)
}

// AddObstacle inserts a rectangular obstacle: existing edges crossing its
// interior are removed, then its four corners join the graph. Corner nodes
// are permanent for the life of the graph. With a kernel attached, use
// AddObstacleID instead so the loaded set is tracked by kernel ID.
func (g *Graph) AddObstacle(r geom.Rect) {
	if g.kern != nil {
		panic("visgraph: AddObstacle on a kernel-backed graph; use AddObstacleID")
	}
	g.addObstacle(r, -1)
}

// AddObstacleID inserts the obstacle with the given kernel ID (its rectangle
// is read from the kernel) and marks it loaded for the kernel-backed Visible
// and ObstaclesNear paths.
func (g *Graph) AddObstacleID(id int32) {
	g.addObstacle(g.kern.Rect(id), id)
}

// AddObstacleIDs inserts a batch of obstacles by kernel ID. The resulting
// graph — adjacency content and per-node edge order included — is identical
// to calling AddObstacleID for each ID in order, but the edge-invalidation
// scan over every node's adjacency list runs once per batch instead of once
// per obstacle.
//
// Why the collapsed pass is exact: between the sequential insertions of a
// batch no reads of the graph happen, so only the final state matters. An
// existing edge survives the sequence iff no batch rectangle blocks it —
// exactly what the single pass tests — and in-place compaction preserves
// survivor order either way. An edge that sequential insertion would create
// from an early obstacle's corner and a later obstacle would then delete is
// instead never created: here every corner is linked after the whole batch
// is registered, so AddPoint's candidate test against the full set returns
// the edge's final verdict directly. Corners are linked in batch order, so
// surviving edges append in the same chronological order as sequentially.
func (g *Graph) AddObstacleIDs(ids []int32) {
	if len(ids) == 0 {
		return
	}
	rects := g.batchScratch[:0]
	for _, id := range ids {
		rects = append(rects, g.kern.Rect(id))
	}
	g.batchScratch = rects

	// 1. Invalidate blocked edges, all before any corner is linked. An edge
	// dies iff some batch rectangle blocks it — the union of per-rectangle
	// removals no matter the order, with survivor order preserved by
	// in-place compaction either way. With a corner-pair table, one pass
	// over the adjacency lists decides each corner-corner edge by
	// membership of its precomputed blocker list in the batch —
	// bit-identical to testing every batch rectangle geometrically, since
	// the lists were built with exactly those BlocksSegLen calls. Without a
	// table, one gated geometric pass per rectangle: the per-rectangle
	// adjacency-box gate skips most nodes outright, which a batch-union box
	// would be too large to do. A region-scoped shared table serves the same
	// pass; pairs it leaves uncovered are decided geometrically in place.
	if tbl := g.cornerTable(); tbl != nil {
		g.batchMarks.Reset(g.kern.NumObstacles())
		for _, id := range ids {
			g.batchMarks.Set(id)
		}
		g.invalidateEdgesBatch(tbl, rects)
	} else if g.par != nil && len(g.adj) >= parMinNodes {
		// Node-major parallel form of the per-rectangle passes below: each
		// node's (gate, scan, compact, box-recompute) sequence touches only
		// that node's state, so running nodes on pool lanes — each lane
		// walking the batch rectangles in order for its nodes — produces
		// bit-identical lists and boxes (see invalidateEdgesParallel).
		g.invalidateEdgesParallel(rects)
	} else {
		for _, r := range rects {
			g.invalidateEdges(r)
		}
	}
	// 2. Register the whole batch before linking any corner, bumping the
	// counters once per obstacle as the sequential insertions would.
	for i, r := range rects {
		g.mutations++
		g.obstacles = append(g.obstacles, r)
		g.marks.Set(ids[i])
		g.version++
	}
	// 3. Link the corners in batch order. With a worker pool attached (and
	// no corner table, which already answers per pair in a few loads), the
	// sight-line verdicts for the whole batch are computed concurrently and
	// applied serially — bit-identical to this loop (see parallel.go).
	if g.par != nil && g.cornerTable() == nil && len(rects) > 1 {
		g.linkCornersParallel(ids, rects)
		return
	}
	for i, r := range rects {
		gBase := 4 * ids[i]
		for k, c := range r.Vertices() {
			g.addPoint(c, KindCorner, gBase+int32(k))
		}
	}
}

func (g *Graph) addObstacle(r geom.Rect, id int32) {
	g.mutations++
	// 1. Invalidate blocked edges.
	g.invalidateEdges(r)
	// 2. Register the obstacle before linking corners so corner-corner
	// visibility accounts for the new interior too.
	oid := int32(len(g.obstacles))
	g.obstacles = append(g.obstacles, r)
	if id >= 0 {
		g.marks.Set(id)
	} else {
		if g.obsIndex == nil {
			g.obsIndex = rtree.New(rtree.Options{})
		}
		g.obsIndex.Insert(rtree.ObstacleItem(oid, r))
	}
	g.version++
	// 3. Link the corners.
	for k, c := range r.Vertices() {
		gi := int32(-1)
		if id >= 0 {
			gi = 4*id + int32(k)
		}
		g.addPoint(c, KindCorner, gi)
	}
}

// invalidateEdges removes every edge that crosses r's open interior. Nodes
// whose adjacency bounding box misses the obstacle are skipped wholesale;
// for the rest, the per-edge bounding-box reject handles most surviving
// edges without divisions, and lists that lose no edge are left untouched
// (no writes at all).
func (g *Graph) invalidateEdges(r geom.Rect) {
	for u := range g.adj {
		list := g.adj[u]
		if len(list) == 0 || !g.alive[u] || !g.adjBox[u].Intersects(r) {
			continue
		}
		pu := g.pts[u]
		w := 0
		removed := false
		for _, e := range list {
			// The inlined e.vx/e.vy spare a pts gather, and the stored weight
			// is the exact segment length, so the blocking test runs with no
			// square root (bit-identical to BlocksSegment on the segment).
			if (pu.X <= r.MinX && e.vx <= r.MinX) || (pu.X >= r.MaxX && e.vx >= r.MaxX) ||
				(pu.Y <= r.MinY && e.vy <= r.MinY) || (pu.Y >= r.MaxY && e.vy >= r.MaxY) {
				// Edge cannot enter the open interior.
			} else if geom.BlocksSegLen(r.MinX, r.MinY, r.MaxX, r.MaxY, pu.X, pu.Y, e.vx, e.vy, e.w) {
				removed = true
				continue
			}
			if removed {
				list[w] = e
			}
			w++
		}
		if removed {
			g.adj[u] = list[:w]
			// Shrunk lists get an exact adjacency box again.
			box := geom.Rect{MinX: pu.X, MinY: pu.Y, MaxX: pu.X, MaxY: pu.Y}
			for _, e := range list[:w] {
				box = expandRect(box, geom.Point{X: e.vx, Y: e.vy})
			}
			g.adjBox[u] = box
		}
	}
}

// invalidateEdgesBatch removes every edge blocked by some rectangle of the
// current batch (held in g.batchMarks), in one pass over the adjacency
// lists. Corner-corner edges are decided by the table: edge (u, v) is
// blocked by batch rectangle r exactly when r's ID is on the precomputed
// full-set blocker list for the directed segment u -> v — the list entry
// was produced by the very BlocksSegLen(r, pu, pv, w) call the geometric
// pass would make, with w equal to the stored weight (SegLen is sign-
// insensitive in its deltas), so the kill set is bit-identical. Edges with
// a non-corner endpoint — and corner pairs a region-scoped shared table
// leaves uncovered — fall back to the geometric per-rectangle test. The
// union-box screens are conservative exactly as in invalidateEdges: a
// segment on one side of the union box's slab is on that side of every
// batch rectangle's slab.
func (g *Graph) invalidateEdgesBatch(tbl *flatgeom.CornerTable, rects []geom.Rect) {
	ub := rects[0]
	for _, r := range rects[1:] {
		ub = ub.Union(r)
	}
	for u := range g.adj {
		list := g.adj[u]
		if len(list) == 0 || !g.alive[u] || !g.adjBox[u].Intersects(ub) {
			continue
		}
		pu := g.pts[u]
		gu := g.gidx[u]
		w := 0
		removed := false
		for _, e := range list {
			dead := false
			decided := false
			if (pu.X <= ub.MinX && e.vx <= ub.MinX) || (pu.X >= ub.MaxX && e.vx >= ub.MaxX) ||
				(pu.Y <= ub.MinY && e.vy <= ub.MinY) || (pu.Y >= ub.MaxY && e.vy >= ub.MaxY) {
				// Edge cannot enter any batch rectangle's open interior.
				decided = true
			} else if tbl != nil && gu >= 0 && e.gto >= 0 {
				dead, decided = tbl.PairVerdict(&g.batchMarks, gu, e.gto)
			}
			if !decided {
				for _, r := range rects {
					if (pu.X <= r.MinX && e.vx <= r.MinX) || (pu.X >= r.MaxX && e.vx >= r.MaxX) ||
						(pu.Y <= r.MinY && e.vy <= r.MinY) || (pu.Y >= r.MaxY && e.vy >= r.MaxY) {
						continue
					}
					if geom.BlocksSegLen(r.MinX, r.MinY, r.MaxX, r.MaxY, pu.X, pu.Y, e.vx, e.vy, e.w) {
						dead = true
						break
					}
				}
			}
			if dead {
				removed = true
				continue
			}
			if removed {
				list[w] = e
			}
			w++
		}
		if removed {
			g.adj[u] = list[:w]
			box := geom.Rect{MinX: pu.X, MinY: pu.Y, MaxX: pu.X, MaxY: pu.Y}
			for _, e := range list[:w] {
				box = expandRect(box, geom.Point{X: e.vx, Y: e.vy})
			}
			g.adjBox[u] = box
		}
	}
}

// expandRect grows r to cover p. Unlike geom.Rect.ExpandPoint it assumes r
// is non-empty and compiles to four branches — it runs once per visibility
// edge.
func expandRect(r geom.Rect, p geom.Point) geom.Rect {
	if p.X < r.MinX {
		r.MinX = p.X
	}
	if p.X > r.MaxX {
		r.MaxX = p.X
	}
	if p.Y < r.MinY {
		r.MinY = p.Y
	}
	if p.Y > r.MaxY {
		r.MaxY = p.Y
	}
	return r
}

// allocNode reserves a node slot (recycling freed ones).
func (g *Graph) allocNode(p geom.Point, kind NodeKind, gi int32) NodeID {
	if n := len(g.free); n > 0 {
		id := g.free[n-1]
		g.free = g.free[:n-1]
		g.pts[id] = p
		g.kinds[id] = kind
		g.alive[id] = true
		g.gidx[id] = gi
		g.adj[id] = g.adj[id][:0]
		g.adjBox[id] = geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
		return id
	}
	id := NodeID(len(g.pts))
	g.pts = append(g.pts, p)
	g.kinds = append(g.kinds, kind)
	g.alive = append(g.alive, true)
	g.gidx = append(g.gidx, gi)
	g.adjBox = append(g.adjBox, geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y})
	if len(g.adj) < cap(g.adj) {
		// Re-extend over a slot retired by Reset, reusing its edge storage.
		g.adj = g.adj[:len(g.adj)+1]
		g.adj[id] = g.adj[id][:0]
	} else {
		g.adj = append(g.adj, nil)
	}
	return id
}

// ShortestPaths runs Dijkstra from src and returns distance and predecessor
// slices indexed by NodeID. Unreachable nodes have +Inf distance and Invalid
// predecessor. The returned slices are scratch buffers owned by the graph
// and are overwritten by the next call (or the next NewSearch).
func (g *Graph) ShortestPaths(src NodeID) (dist []float64, prev []NodeID) {
	s := g.NewSearch(src)
	s.SettleAll()
	return s.dist, s.prev
}

// PathTo reconstructs the node sequence src..dst from a predecessor slice
// returned by ShortestPaths(src). It returns nil when dst is unreachable.
func PathTo(prev []NodeID, src, dst NodeID) []NodeID {
	if src == dst {
		return []NodeID{src}
	}
	if prev[dst] == Invalid {
		return nil
	}
	var rev []NodeID
	for at := dst; at != Invalid; at = prev[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Distance runs a targeted Dijkstra from src that stops as soon as dst is
// settled and returns the shortest obstructed distance (+Inf if
// unreachable). It reuses the graph's search scratch, so it allocates only
// on graph growth.
func (g *Graph) Distance(src, dst NodeID) float64 {
	s := g.NewSearch(src)
	s.SettleTargets(dst)
	return s.dist[dst]
}
