package visgraph

import (
	"connquery/internal/geom"
	"connquery/internal/rtree"
)

// NodeID identifies a graph node. IDs of removed transient nodes are
// recycled.
type NodeID int32

// Invalid is the NodeID returned for "no node" (e.g. Dijkstra predecessors
// of unreachable nodes).
const Invalid NodeID = -1

// NodeKind classifies graph nodes.
type NodeKind uint8

const (
	// KindCorner is an obstacle corner vertex.
	KindCorner NodeKind = iota
	// KindAnchor is a persistent query-segment endpoint (S or E).
	KindAnchor
	// KindTransient is a temporarily inserted data point.
	KindTransient
)

type edgeTo struct {
	to NodeID
	w  float64
}

// Graph is a local visibility graph. Not safe for concurrent use.
type Graph struct {
	pts   []geom.Point
	kinds []NodeKind
	alive []bool
	adj   [][]edgeTo
	// adjBox[u] is a conservative bounding box of u and every neighbor it has
	// (ever had, until recomputed): the MBR of every edge segment incident to
	// u is contained in it, so AddObstacle can skip u's whole adjacency list
	// when the box misses the new obstacle.
	adjBox []geom.Rect
	free   []NodeID

	obstacles []geom.Rect
	obsIndex  *rtree.Tree
	version   int
	// mutations counts every structural change (nodes, edges, obstacles,
	// resets); a Search snapshot is valid only while it is unchanged.
	mutations uint64

	// check, when set, is the cancellation poll consulted by Poll and by the
	// Dijkstra settle loop (see cancel.go).
	check func() error

	// search is the recycled Dijkstra state handed out by NewSearch.
	search Search
	// occ is the recycled angular occlusion index used by AddPoint.
	occ occIndex
	// obsScratch backs ObstaclesNear results between calls.
	obsScratch []geom.Rect
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{obsIndex: rtree.New(rtree.Options{})}
}

// Reset empties the graph for reuse, retaining node, adjacency and search
// buffer capacity so a pooled graph answers subsequent queries with few
// allocations. All node IDs and outstanding Searches are invalidated.
func (g *Graph) Reset() {
	g.pts = g.pts[:0]
	g.kinds = g.kinds[:0]
	g.alive = g.alive[:0]
	g.adjBox = g.adjBox[:0]
	g.free = g.free[:0]
	g.obstacles = g.obstacles[:0]
	g.obsIndex = rtree.New(rtree.Options{})
	// Shrink the outer adjacency slice but keep both its backing array and
	// every inner slice's capacity: allocNode re-extends within capacity and
	// reuses the retired per-node edge storage.
	g.adj = g.adj[:0]
	g.version++
	g.mutations++
}

// NumNodes returns the number of live nodes (the paper's |SVG| metric when
// only corner and anchor nodes are present).
func (g *Graph) NumNodes() int {
	n := 0
	for _, a := range g.alive {
		if a {
			n++
		}
	}
	return n
}

// NumCornerNodes returns the number of obstacle-corner nodes, the |SVG|
// figure reported by the paper (4 x number of obstacles inserted).
func (g *Graph) NumCornerNodes() int {
	n := 0
	for i, a := range g.alive {
		if a && g.kinds[i] == KindCorner {
			n++
		}
	}
	return n
}

// NumObstacles returns the number of inserted obstacles.
func (g *Graph) NumObstacles() int { return len(g.obstacles) }

// Obstacles returns the inserted obstacle rectangles. The slice is shared;
// callers must not modify it.
func (g *Graph) Obstacles() []geom.Rect { return g.obstacles }

// Version increments whenever the obstacle set changes; callers use it to
// invalidate cached visibility regions.
func (g *Graph) Version() int { return g.version }

// Point returns the location of node id.
func (g *Graph) Point(id NodeID) geom.Point { return g.pts[id] }

// Kind returns the node classification of id.
func (g *Graph) Kind(id NodeID) NodeKind { return g.kinds[id] }

// Visible reports whether the segment a-b is unobstructed by any inserted
// obstacle. The obstacle R-tree prunes the candidate set.
func (g *Graph) Visible(a, b geom.Point) bool {
	s := geom.Seg(a, b)
	ok := true
	g.obsIndex.SearchSegment(s, func(it rtree.Item) bool {
		if g.obstacles[it.ID].BlocksSegment(s) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// ObstaclesNear returns the inserted obstacles whose rectangles intersect w.
// The core algorithm uses this to bound the obstacle set passed to
// visible-region computation. The returned slice is a scratch buffer owned
// by the graph and is overwritten by the next call.
func (g *Graph) ObstaclesNear(w geom.Rect) []geom.Rect {
	out := g.obsScratch[:0]
	g.obsIndex.Search(w, func(it rtree.Item) bool {
		out = append(out, g.obstacles[it.ID])
		return true
	})
	g.obsScratch = out
	return out
}

// AddPoint inserts a node at p with the given kind and connects it to every
// visible live node. It returns the new node's ID.
//
// Candidate pruning: instead of running an obstacle-index search per
// candidate node, AddPoint builds an angular occlusion index of the current
// obstacle set around p once, and each candidate first consults it — only
// obstacles whose angular interval contains the candidate's direction and
// whose minimum distance does not exceed the candidate's are ever tested
// exactly. Candidates outside every occluder's cone connect with no exact
// test at all. The index is conservative, so the resulting edge set is
// identical to the brute-force scan.
func (g *Graph) AddPoint(p geom.Point, kind NodeKind) NodeID {
	id := g.allocNode(p, kind)
	g.mutations++
	g.occ.build(p, g.obstacles)
	s := geom.Segment{A: p}
	for other := range g.pts {
		oid := NodeID(other)
		if oid == id || !g.alive[other] {
			continue
		}
		q := g.pts[other]
		s.B = q
		if g.occ.blocked(s, g.obstacles) {
			continue
		}
		w := geom.Dist(p, q)
		g.adj[id] = append(g.adj[id], edgeTo{oid, w})
		g.adj[other] = append(g.adj[other], edgeTo{id, w})
		g.adjBox[id] = expandRect(g.adjBox[id], q)
		g.adjBox[other] = expandRect(g.adjBox[other], p)
	}
	return id
}

// RemovePoint deletes a transient node and all its edges; the slot is
// recycled. Removing anchors or corner nodes is a programming error.
func (g *Graph) RemovePoint(id NodeID) {
	if g.kinds[id] != KindTransient {
		panic("visgraph: RemovePoint on non-transient node")
	}
	g.mutations++
	for _, e := range g.adj[id] {
		nbr := g.adj[e.to]
		for i := range nbr {
			if nbr[i].to == id {
				nbr[i] = nbr[len(nbr)-1]
				g.adj[e.to] = nbr[:len(nbr)-1]
				break
			}
		}
	}
	g.adj[id] = g.adj[id][:0]
	g.alive[id] = false
	g.free = append(g.free, id)
}

// AddObstacle inserts a rectangular obstacle: existing edges crossing its
// interior are removed, then its four corners join the graph. Corner nodes
// are permanent for the life of the graph.
func (g *Graph) AddObstacle(r geom.Rect) {
	g.mutations++
	// 1. Invalidate blocked edges. Nodes whose adjacency bounding box misses
	// the obstacle are skipped wholesale; for the rest, the per-edge
	// bounding-box reject handles most surviving edges without divisions,
	// and lists that lose no edge are left untouched (no writes at all).
	for u := range g.adj {
		list := g.adj[u]
		if len(list) == 0 || !g.alive[u] || !g.adjBox[u].Intersects(r) {
			continue
		}
		pu := g.pts[u]
		w := 0
		removed := false
		for _, e := range list {
			pv := g.pts[e.to]
			if (pu.X <= r.MinX && pv.X <= r.MinX) || (pu.X >= r.MaxX && pv.X >= r.MaxX) ||
				(pu.Y <= r.MinY && pv.Y <= r.MinY) || (pu.Y >= r.MaxY && pv.Y >= r.MaxY) {
				// Edge cannot enter the open interior.
			} else if r.BlocksSegment(geom.Segment{A: pu, B: pv}) {
				removed = true
				continue
			}
			if removed {
				list[w] = e
			}
			w++
		}
		if removed {
			g.adj[u] = list[:w]
			// Shrunk lists get an exact adjacency box again.
			box := geom.Rect{MinX: pu.X, MinY: pu.Y, MaxX: pu.X, MaxY: pu.Y}
			for _, e := range list[:w] {
				box = expandRect(box, g.pts[e.to])
			}
			g.adjBox[u] = box
		}
	}
	// 2. Register the obstacle before linking corners so corner-corner
	// visibility accounts for the new interior too.
	oid := int32(len(g.obstacles))
	g.obstacles = append(g.obstacles, r)
	g.obsIndex.Insert(rtree.ObstacleItem(oid, r))
	g.version++
	// 3. Link the corners.
	for _, c := range r.Vertices() {
		g.AddPoint(c, KindCorner)
	}
}

// expandRect grows r to cover p. Unlike geom.Rect.ExpandPoint it assumes r
// is non-empty and compiles to four branches — it runs once per visibility
// edge.
func expandRect(r geom.Rect, p geom.Point) geom.Rect {
	if p.X < r.MinX {
		r.MinX = p.X
	}
	if p.X > r.MaxX {
		r.MaxX = p.X
	}
	if p.Y < r.MinY {
		r.MinY = p.Y
	}
	if p.Y > r.MaxY {
		r.MaxY = p.Y
	}
	return r
}

// allocNode reserves a node slot (recycling freed ones).
func (g *Graph) allocNode(p geom.Point, kind NodeKind) NodeID {
	if n := len(g.free); n > 0 {
		id := g.free[n-1]
		g.free = g.free[:n-1]
		g.pts[id] = p
		g.kinds[id] = kind
		g.alive[id] = true
		g.adj[id] = g.adj[id][:0]
		g.adjBox[id] = geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
		return id
	}
	id := NodeID(len(g.pts))
	g.pts = append(g.pts, p)
	g.kinds = append(g.kinds, kind)
	g.alive = append(g.alive, true)
	g.adjBox = append(g.adjBox, geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y})
	if len(g.adj) < cap(g.adj) {
		// Re-extend over a slot retired by Reset, reusing its edge storage.
		g.adj = g.adj[:len(g.adj)+1]
		g.adj[id] = g.adj[id][:0]
	} else {
		g.adj = append(g.adj, nil)
	}
	return id
}

// ShortestPaths runs Dijkstra from src and returns distance and predecessor
// slices indexed by NodeID. Unreachable nodes have +Inf distance and Invalid
// predecessor. The returned slices are scratch buffers owned by the graph
// and are overwritten by the next call (or the next NewSearch).
func (g *Graph) ShortestPaths(src NodeID) (dist []float64, prev []NodeID) {
	s := g.NewSearch(src)
	s.SettleAll()
	return s.dist, s.prev
}

// PathTo reconstructs the node sequence src..dst from a predecessor slice
// returned by ShortestPaths(src). It returns nil when dst is unreachable.
func PathTo(prev []NodeID, src, dst NodeID) []NodeID {
	if src == dst {
		return []NodeID{src}
	}
	if prev[dst] == Invalid {
		return nil
	}
	var rev []NodeID
	for at := dst; at != Invalid; at = prev[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Distance runs a targeted Dijkstra from src that stops as soon as dst is
// settled and returns the shortest obstructed distance (+Inf if
// unreachable). It reuses the graph's search scratch, so it allocates only
// on graph growth.
func (g *Graph) Distance(src, dst NodeID) float64 {
	s := g.NewSearch(src)
	s.SettleTargets(dst)
	return s.dist[dst]
}
