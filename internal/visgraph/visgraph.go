// Package visgraph implements the *local* visibility graph at the heart of
// the paper's obstructed-distance machinery (§2.4, §4.1). Nodes are obstacle
// corners plus transient query/data points; two nodes share an edge iff the
// straight segment between them does not cross any inserted obstacle's open
// interior. The graph is built incrementally: the IOR algorithm inserts
// obstacles in ascending mindist-to-q order, and each insertion both
// invalidates the existing edges it blocks and links its four corners into
// the graph. Obstructed distances are shortest paths in this graph
// (Dijkstra), which de Berg et al. prove contain only visibility edges.
package visgraph

import (
	"math"

	"connquery/internal/geom"
	"connquery/internal/minheap"
	"connquery/internal/rtree"
)

// NodeID identifies a graph node. IDs of removed transient nodes are
// recycled.
type NodeID int32

// Invalid is the NodeID returned for "no node" (e.g. Dijkstra predecessors
// of unreachable nodes).
const Invalid NodeID = -1

// NodeKind classifies graph nodes.
type NodeKind uint8

const (
	// KindCorner is an obstacle corner vertex.
	KindCorner NodeKind = iota
	// KindAnchor is a persistent query-segment endpoint (S or E).
	KindAnchor
	// KindTransient is a temporarily inserted data point.
	KindTransient
)

type edgeTo struct {
	to NodeID
	w  float64
}

// Graph is a local visibility graph. Not safe for concurrent use.
type Graph struct {
	pts   []geom.Point
	kinds []NodeKind
	alive []bool
	adj   [][]edgeTo
	free  []NodeID

	obstacles []geom.Rect
	obsIndex  *rtree.Tree
	version   int

	// scratch buffers reused across Dijkstra runs
	dist []float64
	prev []NodeID
	seen []bool
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{obsIndex: rtree.New(rtree.Options{})}
}

// NumNodes returns the number of live nodes (the paper's |SVG| metric when
// only corner and anchor nodes are present).
func (g *Graph) NumNodes() int {
	n := 0
	for _, a := range g.alive {
		if a {
			n++
		}
	}
	return n
}

// NumCornerNodes returns the number of obstacle-corner nodes, the |SVG|
// figure reported by the paper (4 x number of obstacles inserted).
func (g *Graph) NumCornerNodes() int {
	n := 0
	for i, a := range g.alive {
		if a && g.kinds[i] == KindCorner {
			n++
		}
	}
	return n
}

// NumObstacles returns the number of inserted obstacles.
func (g *Graph) NumObstacles() int { return len(g.obstacles) }

// Obstacles returns the inserted obstacle rectangles. The slice is shared;
// callers must not modify it.
func (g *Graph) Obstacles() []geom.Rect { return g.obstacles }

// Version increments whenever the obstacle set changes; callers use it to
// invalidate cached visibility regions.
func (g *Graph) Version() int { return g.version }

// Point returns the location of node id.
func (g *Graph) Point(id NodeID) geom.Point { return g.pts[id] }

// Kind returns the node classification of id.
func (g *Graph) Kind(id NodeID) NodeKind { return g.kinds[id] }

// Visible reports whether the segment a-b is unobstructed by any inserted
// obstacle. The obstacle R-tree prunes the candidate set.
func (g *Graph) Visible(a, b geom.Point) bool {
	s := geom.Seg(a, b)
	ok := true
	g.obsIndex.SearchSegment(s, func(it rtree.Item) bool {
		if g.obstacles[it.ID].BlocksSegment(s) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// ObstaclesNear returns the inserted obstacles whose rectangles intersect w.
// The core algorithm uses this to bound the obstacle set passed to
// visible-region computation.
func (g *Graph) ObstaclesNear(w geom.Rect) []geom.Rect {
	var out []geom.Rect
	g.obsIndex.Search(w, func(it rtree.Item) bool {
		out = append(out, g.obstacles[it.ID])
		return true
	})
	return out
}

// AddPoint inserts a node at p with the given kind and connects it to every
// visible live node. It returns the new node's ID.
func (g *Graph) AddPoint(p geom.Point, kind NodeKind) NodeID {
	id := g.allocNode(p, kind)
	for other := range g.pts {
		oid := NodeID(other)
		if oid == id || !g.alive[other] {
			continue
		}
		if g.Visible(p, g.pts[other]) {
			w := geom.Dist(p, g.pts[other])
			g.adj[id] = append(g.adj[id], edgeTo{oid, w})
			g.adj[other] = append(g.adj[other], edgeTo{id, w})
		}
	}
	return id
}

// RemovePoint deletes a transient node and all its edges; the slot is
// recycled. Removing anchors or corner nodes is a programming error.
func (g *Graph) RemovePoint(id NodeID) {
	if g.kinds[id] != KindTransient {
		panic("visgraph: RemovePoint on non-transient node")
	}
	for _, e := range g.adj[id] {
		nbr := g.adj[e.to]
		for i := range nbr {
			if nbr[i].to == id {
				nbr[i] = nbr[len(nbr)-1]
				g.adj[e.to] = nbr[:len(nbr)-1]
				break
			}
		}
	}
	g.adj[id] = g.adj[id][:0]
	g.alive[id] = false
	g.free = append(g.free, id)
}

// AddObstacle inserts a rectangular obstacle: existing edges crossing its
// interior are removed, then its four corners join the graph. Corner nodes
// are permanent for the life of the graph.
func (g *Graph) AddObstacle(r geom.Rect) {
	// 1. Invalidate blocked edges. The bounding-box reject handles the vast
	// majority of edges (far from the new obstacle) without divisions.
	for u := range g.adj {
		if !g.alive[u] {
			continue
		}
		pu := g.pts[u]
		kept := g.adj[u][:0]
		for _, e := range g.adj[u] {
			pv := g.pts[e.to]
			if (pu.X <= r.MinX && pv.X <= r.MinX) || (pu.X >= r.MaxX && pv.X >= r.MaxX) ||
				(pu.Y <= r.MinY && pv.Y <= r.MinY) || (pu.Y >= r.MaxY && pv.Y >= r.MaxY) {
				kept = append(kept, e) // edge cannot enter the open interior
				continue
			}
			if r.BlocksSegment(geom.Segment{A: pu, B: pv}) {
				continue
			}
			kept = append(kept, e)
		}
		g.adj[u] = kept
	}
	// 2. Register the obstacle before linking corners so corner-corner
	// visibility accounts for the new interior too.
	oid := int32(len(g.obstacles))
	g.obstacles = append(g.obstacles, r)
	g.obsIndex.Insert(rtree.ObstacleItem(oid, r))
	g.version++
	// 3. Link the corners.
	for _, c := range r.Vertices() {
		g.AddPoint(c, KindCorner)
	}
}

// allocNode reserves a node slot (recycling freed ones).
func (g *Graph) allocNode(p geom.Point, kind NodeKind) NodeID {
	if n := len(g.free); n > 0 {
		id := g.free[n-1]
		g.free = g.free[:n-1]
		g.pts[id] = p
		g.kinds[id] = kind
		g.alive[id] = true
		g.adj[id] = g.adj[id][:0]
		return id
	}
	id := NodeID(len(g.pts))
	g.pts = append(g.pts, p)
	g.kinds = append(g.kinds, kind)
	g.alive = append(g.alive, true)
	g.adj = append(g.adj, nil)
	return id
}

// ShortestPaths runs Dijkstra from src and returns distance and predecessor
// slices indexed by NodeID. Unreachable nodes have +Inf distance and Invalid
// predecessor. The returned slices are scratch buffers owned by the graph
// and are overwritten by the next call.
func (g *Graph) ShortestPaths(src NodeID) (dist []float64, prev []NodeID) {
	n := len(g.pts)
	if cap(g.dist) < n {
		g.dist = make([]float64, n)
		g.prev = make([]NodeID, n)
		g.seen = make([]bool, n)
	}
	g.dist, g.prev, g.seen = g.dist[:n], g.prev[:n], g.seen[:n]
	for i := 0; i < n; i++ {
		g.dist[i] = math.Inf(1)
		g.prev[i] = Invalid
		g.seen[i] = false
	}
	var h minheap.Heap[NodeID]
	g.dist[src] = 0
	h.Push(0, src)
	for !h.Empty() {
		d, u := h.Pop()
		if g.seen[u] || d > g.dist[u] {
			continue
		}
		g.seen[u] = true
		for _, e := range g.adj[u] {
			if nd := d + e.w; nd < g.dist[e.to] {
				g.dist[e.to] = nd
				g.prev[e.to] = u
				h.Push(nd, e.to)
			}
		}
	}
	return g.dist, g.prev
}

// PathTo reconstructs the node sequence src..dst from a predecessor slice
// returned by ShortestPaths(src). It returns nil when dst is unreachable.
func PathTo(prev []NodeID, src, dst NodeID) []NodeID {
	if src == dst {
		return []NodeID{src}
	}
	if prev[dst] == Invalid {
		return nil
	}
	var rev []NodeID
	for at := dst; at != Invalid; at = prev[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Distance runs a targeted Dijkstra from src with early exit at dst and
// returns the shortest obstructed distance (+Inf if unreachable).
func (g *Graph) Distance(src, dst NodeID) float64 {
	n := len(g.pts)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	var h minheap.Heap[NodeID]
	dist[src] = 0
	h.Push(0, src)
	for !h.Empty() {
		d, u := h.Pop()
		if d > dist[u] {
			continue
		}
		if u == dst {
			return d
		}
		for _, e := range g.adj[u] {
			if nd := d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				h.Push(nd, e.to)
			}
		}
	}
	return math.Inf(1)
}
