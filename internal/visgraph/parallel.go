package visgraph

import (
	"connquery/internal/geom"
	"connquery/internal/rtree"
)

// SetPool attaches a worker pool for intra-query parallelism; nil detaches.
// With a pool attached, AddObstacleIDs computes its corner sight-line
// verdicts on the pool (see linkCornersParallel); the graph remains
// single-writer — only the calling goroutine ever mutates it.
func (g *Graph) SetPool(p *WorkerPool) { g.par = p }

// Pool returns the attached worker pool, nil when sequential.
func (g *Graph) Pool() *WorkerPool { return g.par }

// linkCornersParallel is AddObstacleIDs step 3 on the worker pool: the
// sight-line verdict of every (new corner, candidate node) pair is a pure
// function of state that is frozen for the whole step — node positions
// (every batch corner's position is known before any is linked), liveness
// at step entry, and the fully registered obstacle set — so the verdicts
// for all corners are computed concurrently up front, and the graph
// mutations (node allocation, edge appends) then replay serially in exact
// batch order. The result is bit-identical to the sequential corner loop:
// each verdict comes from the same occlusion-index screen and exact tests
// over the same inputs, and the serial apply preserves node IDs, edge
// order, and adjacency-box growth.
//
// Candidate sets match the sequential loop by construction. When corner m
// is linked sequentially its candidates are the nodes alive at that moment:
// the nodes alive at step entry plus batch corners 0..m-1. Free-list
// recycling makes the IDs the corners will claim fully deterministic
// (allocNode pops the tail, then appends), so the IDs are predicted up
// front and each worker writes corner m's verdicts into a slab indexed by
// candidate node ID: -1 for blocked or not-a-candidate, else the exact
// segment length (bit-identical to geom.SegLen on the same deltas, shared
// with the screen exactly as in addPoint). The apply loop then walks the
// live nodes exactly like addPoint and reads the verdict instead of
// recomputing it.
func (g *Graph) linkCornersParallel(ids []int32, rects []geom.Rect) {
	nc := 4 * len(rects)
	// Predict the node IDs the batch corners will claim.
	base := len(g.pts)
	nFree := len(g.free)
	cids := g.parIDs[:0]
	for m := 0; m < nc; m++ {
		if m < nFree {
			cids = append(cids, g.free[nFree-1-m])
		} else {
			cids = append(cids, NodeID(base+m-nFree))
		}
	}
	g.parIDs = cids
	maxID := base + nc // upper bound on len(g.pts) during apply
	// Corner positions and kernel corner indexes, in link order.
	pts := g.parPts[:0]
	for _, r := range rects {
		v := r.Vertices()
		pts = append(pts, v[:]...)
	}
	g.parPts = pts

	// Per-corner verdict slabs and per-lane occlusion indexes.
	for len(g.parSegs) < nc {
		g.parSegs = append(g.parSegs, nil)
	}
	segs := g.parSegs[:nc]
	for m := range segs {
		if cap(segs[m]) < maxID {
			segs[m] = make([]float64, maxID)
		} else {
			segs[m] = segs[m][:maxID]
		}
	}
	for len(g.parOcc) < g.par.Workers() {
		g.parOcc = append(g.parOcc, &occIndex{})
	}

	g.par.Run(nc, func(w, m int) {
		p := pts[m]
		oi := g.parOcc[w]
		oi.build(p, g.obstacles)
		out := segs[m]
		// Nodes alive at step entry. Slots that are dead here — including
		// every free slot a batch corner will recycle — get the no-edge
		// sentinel; slots belonging to earlier batch corners are overwritten
		// below, and later corners' slots are never read while corner m is
		// applied (they are still dead then).
		for s := 0; s < base; s++ {
			if !g.alive[s] {
				out[s] = -1
				continue
			}
			out[s] = cornerVerdict(oi, p, g.pts[s], g.obstacles)
		}
		// Batch corners linked before m are candidates too.
		for k := 0; k < m; k++ {
			out[cids[k]] = cornerVerdict(oi, p, pts[k], g.obstacles)
		}
		if int(cids[m]) < base {
			out[cids[m]] = -1 // own recycled slot; addPoint's id check skips it
		}
	})

	// Serial apply in batch order: exactly addPoint with the verdict loop
	// replaced by the precomputed slab.
	for i := range rects {
		gBase := 4 * ids[i]
		for k := 0; k < 4; k++ {
			m := 4*i + k
			p := pts[m]
			gi := gBase + int32(k)
			out := segs[m]
			id := g.allocNode(p, KindCorner, gi)
			if id != cids[m] {
				panic("visgraph: parallel corner link ID prediction diverged")
			}
			g.mutations++
			for other := range g.pts {
				oid := NodeID(other)
				if oid == id || !g.alive[other] {
					continue
				}
				w := out[other]
				if w < 0 {
					continue
				}
				q := g.pts[other]
				g.adj[id] = append(g.adj[id], edgeTo{to: oid, w: w, vx: q.X, vy: q.Y, gto: g.gidx[other]})
				g.adj[other] = append(g.adj[other], edgeTo{to: id, w: w, vx: p.X, vy: p.Y, gto: gi})
				g.adjBox[id] = expandRect(g.adjBox[id], q)
				g.adjBox[other] = expandRect(g.adjBox[other], p)
			}
		}
	}
}

const (
	// parMinCandidates gates the parallel AddPoint verdict pass: below this
	// many node slots the fan-out overhead outweighs the work.
	parMinCandidates = 64
	// parMinNodes gates the parallel edge-invalidation pass likewise.
	parMinNodes = 128
	// parChunk is the slot-range claim size for both passes.
	parChunk = 64
)

// addPointParallel is addPoint's candidate loop on the worker pool: the
// freshly built occlusion index is shared read-only across the lanes, each
// lane decides the verdicts for a claimed range of node slots into a shared
// slab (disjoint ranges, so no two lanes touch a slot), and the edges are
// then appended serially in slot order — the exact sequence the sequential
// loop produces. The new node id and dead slots take the no-edge sentinel,
// mirroring the sequential loop's skip tests.
func (g *Graph) addPointParallel(id NodeID, p geom.Point, gi int32) {
	n := len(g.pts)
	if len(g.parSegs) == 0 {
		g.parSegs = append(g.parSegs, nil)
	}
	if cap(g.parSegs[0]) < n {
		g.parSegs[0] = make([]float64, n)
	} else {
		g.parSegs[0] = g.parSegs[0][:n]
	}
	out := g.parSegs[0]
	chunks := (n + parChunk - 1) / parChunk
	g.par.Run(chunks, func(_, c int) {
		lo := c * parChunk
		hi := min(lo+parChunk, n)
		for s := lo; s < hi; s++ {
			if NodeID(s) == id || !g.alive[s] {
				out[s] = -1
				continue
			}
			out[s] = cornerVerdict(&g.occ, p, g.pts[s], g.obstacles)
		}
	})
	for other := 0; other < n; other++ {
		w := out[other]
		if w < 0 {
			continue
		}
		oid := NodeID(other)
		q := g.pts[other]
		g.adj[id] = append(g.adj[id], edgeTo{to: oid, w: w, vx: q.X, vy: q.Y, gto: g.gidx[other]})
		g.adj[other] = append(g.adj[other], edgeTo{to: id, w: w, vx: p.X, vy: p.Y, gto: gi})
		g.adjBox[id] = expandRect(g.adjBox[id], q)
		g.adjBox[other] = expandRect(g.adjBox[other], p)
	}
}

// invalidateEdgesParallel runs AddObstacleIDs' per-rectangle geometric
// invalidation passes node-major on the worker pool. Every (node, rect)
// step of invalidateEdges — adjacency-box gate, side-screened scan,
// compaction, exact box recompute — reads and writes only that node's
// state, so walking the batch rectangles in order for each node yields
// bit-identical lists and boxes to walking the nodes for each rectangle,
// and distinct nodes can run on distinct lanes. An edge appears in both
// endpoints' lists and each copy is killed independently, exactly as in
// the sequential passes.
func (g *Graph) invalidateEdgesParallel(rects []geom.Rect) {
	n := len(g.adj)
	chunks := (n + parChunk - 1) / parChunk
	g.par.Run(chunks, func(_, c int) {
		lo := c * parChunk
		hi := min(lo+parChunk, n)
		for u := lo; u < hi; u++ {
			if !g.alive[u] {
				continue
			}
			pu := g.pts[u]
			for _, r := range rects {
				list := g.adj[u]
				if len(list) == 0 || !g.adjBox[u].Intersects(r) {
					continue
				}
				w := 0
				removed := false
				for _, e := range list {
					if (pu.X <= r.MinX && e.vx <= r.MinX) || (pu.X >= r.MaxX && e.vx >= r.MaxX) ||
						(pu.Y <= r.MinY && e.vy <= r.MinY) || (pu.Y >= r.MaxY && e.vy >= r.MaxY) {
						// Edge cannot enter the open interior.
					} else if geom.BlocksSegLen(r.MinX, r.MinY, r.MaxX, r.MaxY, pu.X, pu.Y, e.vx, e.vy, e.w) {
						removed = true
						continue
					}
					if removed {
						list[w] = e
					}
					w++
				}
				if removed {
					g.adj[u] = list[:w]
					box := geom.Rect{MinX: pu.X, MinY: pu.Y, MaxX: pu.X, MaxY: pu.Y}
					for _, e := range list[:w] {
						box = expandRect(box, geom.Point{X: e.vx, Y: e.vy})
					}
					g.adjBox[u] = box
				}
			}
		}
	})
}

// cornerVerdict decides the sight line p -> q with corner p's occlusion
// index, mirroring addPoint's screen-then-exact path operation for
// operation: it returns -1 when blocked, else the exact segment length
// (geom.SegLen over the same deltas, computed by the screen when it already
// had to). Read-only on the graph; safe from pool lanes.
func cornerVerdict(oi *occIndex, p, q geom.Point, obstacles []geom.Rect) float64 {
	dx, dy := q.X-p.X, q.Y-p.Y
	d2 := dx*dx + dy*dy
	segLen := -1.0
	if oi.blocked(q, dx, dy, d2, &segLen, obstacles) {
		return -1
	}
	if segLen < 0 {
		segLen = geom.SegLen(dx, dy, d2)
	}
	return segLen
}

// AppendObstaclesNear is ObstaclesNear into a caller-provided buffer. It is
// read-only on the graph (no scratch sharing), so concurrent pool lanes may
// call it while the graph is otherwise quiescent; the append order matches
// ObstaclesNear exactly.
func (g *Graph) AppendObstaclesNear(dst []geom.Rect, w geom.Rect) []geom.Rect {
	if g.kern != nil {
		return g.kern.AppendIntersecting(dst, &g.marks, w)
	}
	if g.obsIndex == nil {
		return dst
	}
	g.obsIndex.Search(w, func(it rtree.Item) bool {
		dst = append(dst, g.obstacles[it.ID])
		return true
	})
	return dst
}
