// Package visgraph implements the *local* visibility graph at the heart of
// the paper's obstructed-distance machinery (§2.4, §4.1). Nodes are
// obstacle corners plus transient query/data points; two nodes share an
// edge iff the straight segment between them does not cross any inserted
// obstacle's open interior. The graph is built incrementally: the IOR
// algorithm inserts obstacles in ascending mindist-to-q order, and each
// insertion both invalidates the existing edges it blocks and links its
// four corners into the graph. Obstructed distances are shortest paths in
// this graph (Dijkstra), which de Berg et al. prove contain only
// visibility edges.
//
// The hot-path machinery the core engine drives:
//
//   - AddPoint prunes candidate edges by angular occlusion (pseudo-angle
//     interval + mindist screen) before the exact BlocksSegment test.
//   - Search is a resumable multi-target Dijkstra: CONN's IOR phase exits
//     early at the query's two anchor nodes, and CPLC resumes the same
//     search, consuming settle batches in (dist, id) order so nodes pruned
//     by Lemma 7 are never settled at all.
//   - The search polls an installed cancellation hook every few dozen
//     settles and aborts by panicking with Aborted, which only the public
//     Exec layer recovers.
//   - Reset retains allocated capacity so pooled query states stay
//     allocation-free across queries.
package visgraph
