package visgraph

import (
	"math"

	"connquery/internal/geom"
)

// occIndex is an angular occlusion index over the inserted obstacle set as
// seen from one viewpoint p. AddPoint rebuilds it once per insertion and
// then screens every candidate node v against it: an obstacle o can block
// the sight line p-v only if
//
//  1. the direction of v from p lies inside o's angular extent from p (any
//     interior crossing point is a point of o on the ray to v, so its angle
//     is the ray's angle and falls inside the extent of o's corners), and
//  2. mindist(p, o) <= |pv| (the crossing point lies on the segment, so it
//     is no farther than v).
//
// Both conditions are evaluated with a widening epsilon, so the surviving
// candidate set is a superset of the true blockers and the exact
// BlocksSegment test still decides; the screened-out obstacles provably
// cannot block. Obstacles whose closed rectangle contains p (where the
// angular extent is undefined or spans the whole circle) are kept in an
// always-test list. All storage is recycled between builds.
//
// Directions are measured with a pseudo-angle — a cheap monotone bijection
// of atan2 onto (-2, 2] — so containment tests are exact in pseudo space
// and no trigonometry runs on the hot path.
//
// Two layout choices keep the per-candidate screen at a few cache lines.
// Entries are stored struct-of-records inside each bucket (one contiguous
// slab per bucket), so a bucket scan streams sequentially instead of
// gathering from three parallel arrays. And every bucket whose whole arc
// lies strictly inside some obstacle's angular interval records the
// nearest such cover: a candidate farther than the cover's farthest corner
// is provably behind it, so one exact test against the cover usually
// answers "blocked" without scanning the bucket at all (if that test comes
// back false — possible only in epsilon-grazing cases — the scan still
// runs, so the verdict stays exact).
type occIndex struct {
	buckets [occBuckets][]occEntry
	far     [occBuckets]occFar
	always  []occAlways
	entries int // total bucket entries; 0 means only the always list matters
	p       geom.Point
}

// occEntry is one obstacle's screening record, replicated into every bucket
// its padded angular interval overlaps.
type occEntry struct {
	minDist2  float64 // squared mindist(p, obstacle), clamped per axis
	center    float64 // pseudo-angle interval center
	halfWidth float64 // pseudo-angle interval half-width (padded)
	obs       int32   // obstacle index for the exact test
	_         int32
}

// occFar is a bucket's nearest full cover: an obstacle whose angular
// interval contains the bucket's whole arc. dist2 is the squared distance
// to its farthest corner (+Inf when no obstacle covers the bucket).
type occFar struct {
	dist2                  float64
	minX, minY, maxX, maxY float64
}

// occAlways is an always-test obstacle (its closed rectangle contains p)
// with the rectangle inlined and p's boundary sides precomputed: when p
// lies on a boundary line of the rectangle — corner viewpoints always do —
// any candidate in the same closed half-plane yields a segment that cannot
// enter the open interior, so the side compare rejects it exactly.
type occAlways struct {
	minX, minY, maxX, maxY float64
	obs                    int32
	onMinX, onMaxX         bool
	onMinY, onMaxY         bool
}

// occBuckets partitions the pseudo-angle range into equal arcs; each bucket
// lists the entries whose (padded) interval overlaps the arc, so a candidate
// consults exactly one bucket.
const occBuckets = 128

// occAngEps widens every pseudo-angle interval. Corner and candidate
// directions use the same exact float map, so only a few ulps of slack are
// needed; this is many orders of magnitude more generous.
const occAngEps = 1e-9

// pseudoAngle maps direction (dx, dy) to (-2, 2], strictly increasing in the
// true angle atan2(dy, dx). (dx, dy) == (0, 0) is the caller's problem.
func pseudoAngle(dx, dy float64) float64 {
	p := dx / (math.Abs(dx) + math.Abs(dy))
	if dy < 0 {
		return p - 1 // (-2, 0)
	}
	return 1 - p // [0, 2]
}

// normPseudo wraps a pseudo-angle difference into (-2, 2]. Inputs are
// bounded by one wrap, so at most one correction applies.
func normPseudo(a float64) float64 {
	if a > 2 {
		return a - 4
	}
	if a <= -2 {
		return a + 4
	}
	return a
}

// bucketOf maps a pseudo-angle to its bucket index.
func bucketOf(a float64) int {
	b := int((normPseudo(a) + 2) * (occBuckets / 4.0))
	if b < 0 {
		b = 0
	} else if b >= occBuckets {
		b = occBuckets - 1
	}
	return b
}

// build indexes the obstacle set as seen from p.
func (oi *occIndex) build(p geom.Point, obstacles []geom.Rect) {
	oi.p = p
	oi.always = oi.always[:0]
	oi.entries = 0
	for b := range oi.buckets {
		oi.buckets[b] = oi.buckets[b][:0]
		oi.far[b].dist2 = math.Inf(1)
	}
	for i, r := range obstacles {
		if r.Contains(p) {
			oi.appendAlways(p, r, int32(i))
			continue
		}
		// p lies strictly outside the closed rectangle, so a separating axis
		// exists and the corner directions span less than half the circle.
		// The extent's two extreme corners (the silhouette) are determined by
		// which of the nine plane regions p falls in — edge regions see the
		// near face's corners, diagonal regions the two corners adjacent to
		// the nearest one — so only two pseudo-angles are computed per
		// obstacle. Float rounding can misorder directions within an ulp;
		// occAngEps dwarfs that, keeping the padded interval conservative.
		x0, x1 := r.MinX-p.X, r.MaxX-p.X
		y0, y1 := r.MinY-p.Y, r.MaxY-p.Y
		var c1x, c1y, c2x, c2y float64
		switch {
		case x0 > 0: // p strictly left of the rectangle
			switch {
			case y0 > 0: // below
				c1x, c1y, c2x, c2y = x0, y1, x1, y0
			case y1 < 0: // above
				c1x, c1y, c2x, c2y = x0, y0, x1, y1
			default:
				c1x, c1y, c2x, c2y = x0, y0, x0, y1
			}
		case x1 < 0: // p strictly right
			switch {
			case y0 > 0:
				c1x, c1y, c2x, c2y = x0, y0, x1, y1
			case y1 < 0:
				c1x, c1y, c2x, c2y = x0, y1, x1, y0
			default:
				c1x, c1y, c2x, c2y = x1, y0, x1, y1
			}
		default: // p horizontally within the rectangle's x-range
			switch {
			case y0 > 0:
				c1x, c1y, c2x, c2y = x0, y0, x1, y0
			case y1 < 0:
				c1x, c1y, c2x, c2y = x0, y1, x1, y1
			default:
				// Numerically on the boundary despite the Contains check.
				oi.appendAlways(p, r, int32(i))
				continue
			}
		}
		a1 := pseudoAngle(c1x, c1y)
		d := normPseudo(pseudoAngle(c2x, c2y) - a1)
		if d >= 2-1e-9 || d <= -(2-1e-9) { // defensive: p numerically on the boundary
			oi.appendAlways(p, r, int32(i))
			continue
		}
		lo, hi := a1, a1+d
		if d < 0 {
			lo, hi = a1+d, a1
		}
		lo -= occAngEps
		hi += occAngEps
		// Squared mindist(p, r), clamped per axis. This is dx*dx+dy*dy rather
		// than DistToPoint's Hypot squared — they differ by ulps at most,
		// absorbed by the 1e-9 relative slack in blocked's distance screen, and
		// the screen stays conservative because the exact test still decides.
		var ddx, ddy float64
		if x1 < 0 {
			ddx = -x1
		} else if x0 > 0 {
			ddx = x0
		}
		if y1 < 0 {
			ddy = -y1
		} else if y0 > 0 {
			ddy = y0
		}
		e := occEntry{
			minDist2:  ddx*ddx + ddy*ddy,
			center:    normPseudo((lo + hi) / 2),
			halfWidth: (hi - lo) / 2,
			obs:       int32(i),
		}
		oi.entries++
		// The farthest corner maximizes each axis delta independently.
		maxDist2 := math.Max(x0*x0, x1*x1) + math.Max(y0*y0, y1*y1)
		b0 := bucketOf(lo)
		steps := (bucketOf(hi) - b0 + occBuckets) % occBuckets
		for s := 0; s <= steps; s++ {
			b := (b0 + s) % occBuckets
			oi.buckets[b] = append(oi.buckets[b], e)
			// Strictly interior buckets have their whole arc inside [lo, hi]:
			// the interval fully covers them, so record the nearest cover.
			if s > 0 && s < steps && maxDist2 < oi.far[b].dist2 {
				oi.far[b] = occFar{maxDist2, r.MinX, r.MinY, r.MaxX, r.MaxY}
			}
		}
	}
}

func (oi *occIndex) appendAlways(p geom.Point, r geom.Rect, id int32) {
	oi.always = append(oi.always, occAlways{
		minX: r.MinX, minY: r.MinY, maxX: r.MaxX, maxY: r.MaxY,
		obs:    id,
		onMinX: p.X <= r.MinX, onMaxX: p.X >= r.MaxX,
		onMinY: p.Y <= r.MinY, onMaxY: p.Y >= r.MaxY,
	})
}

// blocked reports whether any obstacle blocks the sight line from the build
// viewpoint to q, where (dx, dy) = q - viewpoint and d2 = dx*dx + dy*dy.
// Exact: it returns BlocksSegment's verdict for every obstacle that survives
// the conservative angular and distance screens.
//
// segLen caches the sight line's length across exact tests: callers pass a
// negative value, the first exact test that needs the length fills in
// geom.SegLen(dx, dy, d2) — bit-identical to Segment.Length — and callers
// that go on to need the length (as an edge weight) reuse it, so one square
// root per candidate is shared between screening and edge construction.
func (oi *occIndex) blocked(q geom.Point, dx, dy, d2 float64, segLen *float64, obstacles []geom.Rect) bool {
	p := oi.p
	for i := range oi.always {
		a := &oi.always[i]
		// Same closed half-plane as p along a boundary p sits on: the whole
		// segment stays on that side, so it cannot enter the open interior.
		if (a.onMinX && q.X <= a.minX) || (a.onMaxX && q.X >= a.maxX) ||
			(a.onMinY && q.Y <= a.minY) || (a.onMaxY && q.Y >= a.maxY) {
			continue
		}
		if blocksLazy(a.minX, a.minY, a.maxX, a.maxY, p, q, dx, dy, d2, segLen) {
			return true
		}
	}
	if oi.entries == 0 {
		return false
	}
	if d2 == 0 {
		// Coincident endpoints: only an obstacle containing the point could
		// "block", and those are all in the always list.
		return false
	}
	theta := pseudoAngle(dx, dy)
	b := bucketOf(theta)
	if far := &oi.far[b]; d2 > far.dist2 {
		// The candidate lies strictly beyond every corner of an obstacle whose
		// angular interval covers this whole bucket, so the sight line crosses
		// its interior: one exact test almost always settles it. A false here
		// (epsilon-grazing chord) just falls through to the full scan.
		if blocksLazy(far.minX, far.minY, far.maxX, far.maxY, p, q, dx, dy, d2, segLen) {
			return true
		}
	}
	limit := d2*(1+1e-9) + 1e-18
	bucket := oi.buckets[b]
	for i := range bucket {
		e := &bucket[i]
		// A blocker's crossing point lies on the segment, so its distance —
		// at least mindist(p, o) — cannot exceed |pv|. The relative slack
		// keeps borderline (grazing) obstacles in the exact test.
		if e.minDist2 > limit {
			continue
		}
		if math.Abs(normPseudo(theta-e.center)) > e.halfWidth {
			continue
		}
		r := &obstacles[e.obs]
		if blocksLazy(r.MinX, r.MinY, r.MaxX, r.MaxY, p, q, dx, dy, d2, segLen) {
			return true
		}
	}
	return false
}

// blocksLazy is Rect.BlocksSegment for the sight line p-q with the square
// root deferred: most tests reject at the clip stage and never pay for the
// length. The verdict is bit-identical to BlocksSegment (the midpoint uses
// p + t*(q-p) with the same deltas, and geom.SegLen equals Segment.Length).
func blocksLazy(minX, minY, maxX, maxY float64, p, q geom.Point, dx, dy, d2 float64, segLen *float64) bool {
	t0, t1, ok := geom.ClipSeg(minX, minY, maxX, maxY, p.X, p.Y, q.X, q.Y)
	if !ok {
		return false
	}
	if *segLen < 0 {
		*segLen = geom.SegLen(dx, dy, d2)
	}
	if (t1-t0)*(*segLen) <= geom.Eps*10 {
		return false
	}
	tm := (t0 + t1) / 2
	mx := p.X + tm*dx
	my := p.Y + tm*dy
	return minX+geom.Eps < mx && mx < maxX-geom.Eps &&
		minY+geom.Eps < my && my < maxY-geom.Eps
}
