package visgraph

import (
	"math"

	"connquery/internal/geom"
)

// occIndex is an angular occlusion index over the inserted obstacle set as
// seen from one viewpoint p. AddPoint rebuilds it once per insertion and
// then screens every candidate node v against it: an obstacle o can block
// the sight line p-v only if
//
//  1. the direction of v from p lies inside o's angular extent from p (any
//     interior crossing point is a point of o on the ray to v, so its angle
//     is the ray's angle and falls inside the extent of o's corners), and
//  2. mindist(p, o) <= |pv| (the crossing point lies on the segment, so it
//     is no farther than v).
//
// Both conditions are evaluated with a widening epsilon, so the surviving
// candidate set is a superset of the true blockers and the exact
// BlocksSegment test still decides; the screened-out obstacles provably
// cannot block. Obstacles whose closed rectangle contains p (where the
// angular extent is undefined or spans the whole circle) are kept in an
// always-test list. All storage is recycled between builds.
//
// Directions are measured with a pseudo-angle — a cheap monotone bijection
// of atan2 onto (-2, 2] — so containment tests are exact in pseudo space
// and no trigonometry runs on the hot path.
type occIndex struct {
	centers    []float64 // pseudo-angle interval center per entry
	halfWidths []float64 // pseudo-angle interval half-width (padded) per entry
	minDist2   []float64 // squared mindist(p, obstacle) per entry
	obs        []int32   // obstacle index per entry
	always     []int32   // obstacles tested unconditionally
	buckets    [occBuckets][]int32
	p          geom.Point
}

// occBuckets partitions the pseudo-angle range into equal arcs; each bucket
// lists the entries whose (padded) interval overlaps the arc, so a candidate
// consults exactly one bucket.
const occBuckets = 64

// occAngEps widens every pseudo-angle interval. Corner and candidate
// directions use the same exact float map, so only a few ulps of slack are
// needed; this is many orders of magnitude more generous.
const occAngEps = 1e-9

// pseudoAngle maps direction (dx, dy) to (-2, 2], strictly increasing in the
// true angle atan2(dy, dx). (dx, dy) == (0, 0) is the caller's problem.
func pseudoAngle(dx, dy float64) float64 {
	p := dx / (math.Abs(dx) + math.Abs(dy))
	if dy < 0 {
		return p - 1 // (-2, 0)
	}
	return 1 - p // [0, 2]
}

// normPseudo wraps a pseudo-angle difference into (-2, 2]. Inputs are
// bounded by one wrap, so at most one correction applies.
func normPseudo(a float64) float64 {
	if a > 2 {
		return a - 4
	}
	if a <= -2 {
		return a + 4
	}
	return a
}

// bucketOf maps a pseudo-angle to its bucket index.
func bucketOf(a float64) int {
	b := int((normPseudo(a) + 2) * (occBuckets / 4.0))
	if b < 0 {
		b = 0
	} else if b >= occBuckets {
		b = occBuckets - 1
	}
	return b
}

// build indexes the obstacle set as seen from p.
func (oi *occIndex) build(p geom.Point, obstacles []geom.Rect) {
	oi.p = p
	oi.centers = oi.centers[:0]
	oi.halfWidths = oi.halfWidths[:0]
	oi.minDist2 = oi.minDist2[:0]
	oi.obs = oi.obs[:0]
	oi.always = oi.always[:0]
	for b := range oi.buckets {
		oi.buckets[b] = oi.buckets[b][:0]
	}
	for i, r := range obstacles {
		if r.Contains(p) {
			oi.always = append(oi.always, int32(i))
			continue
		}
		// p lies strictly outside the closed rectangle, so a separating axis
		// exists and the corner directions span less than half the circle.
		// Map them into a window centered on the direction to the rectangle's
		// center; no wraparound is possible inside that window.
		ref := pseudoAngle((r.MinX+r.MaxX)/2-p.X, (r.MinY+r.MaxY)/2-p.Y)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, c := range r.Vertices() {
			a := pseudoAngle(c.X-p.X, c.Y-p.Y)
			// Shift a into (ref-2, ref+2].
			if a-ref > 2 {
				a -= 4
			} else if a-ref <= -2 {
				a += 4
			}
			lo = math.Min(lo, a)
			hi = math.Max(hi, a)
		}
		if hi-lo >= 2-1e-9 { // defensive: p numerically on the boundary
			oi.always = append(oi.always, int32(i))
			continue
		}
		lo -= occAngEps
		hi += occAngEps
		entry := int32(len(oi.obs))
		oi.centers = append(oi.centers, normPseudo((lo+hi)/2))
		oi.halfWidths = append(oi.halfWidths, (hi-lo)/2)
		md := r.DistToPoint(p)
		oi.minDist2 = append(oi.minDist2, md*md)
		oi.obs = append(oi.obs, int32(i))
		b0 := bucketOf(lo)
		steps := (bucketOf(hi) - b0 + occBuckets) % occBuckets
		for s := 0; s <= steps; s++ {
			b := (b0 + s) % occBuckets
			oi.buckets[b] = append(oi.buckets[b], entry)
		}
	}
}

// blocked reports whether any obstacle blocks the sight line s (s.A must be
// the build viewpoint). Exact: it returns BlocksSegment's verdict for every
// obstacle that survives the conservative angular and distance screens.
func (oi *occIndex) blocked(s geom.Segment, obstacles []geom.Rect) bool {
	for _, i := range oi.always {
		if obstacles[i].BlocksSegment(s) {
			return true
		}
	}
	if len(oi.obs) == 0 {
		return false
	}
	dx, dy := s.B.X-s.A.X, s.B.Y-s.A.Y
	d2 := dx*dx + dy*dy
	if d2 == 0 {
		// Coincident endpoints: only an obstacle containing the point could
		// "block", and those are all in the always list.
		return false
	}
	theta := pseudoAngle(dx, dy)
	for _, e := range oi.buckets[bucketOf(theta)] {
		// A blocker's crossing point lies on the segment, so its distance —
		// at least mindist(p, o) — cannot exceed |pv|. The relative slack
		// keeps borderline (grazing) obstacles in the exact test.
		if oi.minDist2[e] > d2*(1+1e-9)+1e-18 {
			continue
		}
		if math.Abs(normPseudo(theta-oi.centers[e])) > oi.halfWidths[e] {
			continue
		}
		if obstacles[oi.obs[e]].BlocksSegment(s) {
			return true
		}
	}
	return false
}
