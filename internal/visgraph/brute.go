package visgraph

import (
	"math"

	"connquery/internal/geom"
	"connquery/internal/minheap"
)

// BruteObstructedDist computes the exact obstructed distance between a and b
// over the full obstacle set by building the complete visibility graph and
// running Dijkstra. It is O(n^2 * m) and exists as the ground-truth oracle
// for tests and the naive baseline — the CONN algorithms never call it.
func BruteObstructedDist(a, b geom.Point, obstacles []geom.Rect) float64 {
	if geom.Visible(a, b, obstacles) {
		return geom.Dist(a, b)
	}
	pts := make([]geom.Point, 0, 4*len(obstacles)+2)
	pts = append(pts, a, b)
	for _, o := range obstacles {
		v := o.Vertices()
		pts = append(pts, v[0], v[1], v[2], v[3])
	}
	n := len(pts)
	adj := make([][]edgeTo, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if geom.Visible(pts[i], pts[j], obstacles) {
				w := geom.Dist(pts[i], pts[j])
				adj[i] = append(adj[i], edgeTo{to: NodeID(j), w: w})
				adj[j] = append(adj[j], edgeTo{to: NodeID(i), w: w})
			}
		}
	}
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	var h minheap.Heap[NodeID]
	dist[0] = 0
	h.Push(0, 0)
	for !h.Empty() {
		d, u := h.Pop()
		if d > dist[u] {
			continue
		}
		if u == 1 {
			return d
		}
		for _, e := range adj[u] {
			if nd := d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				h.Push(nd, e.to)
			}
		}
	}
	return math.Inf(1)
}
