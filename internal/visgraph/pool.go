package visgraph

import (
	"sync"
	"sync/atomic"
)

// WorkerPool fans the embarrassingly parallel inner loops of one query —
// candidate sight-line batches in AddObstacleIDs and visible-region
// prefetch in CPLC — across a fixed set of goroutines. The calling
// goroutine participates as worker 0, so a pool of n keeps n-1 background
// goroutines; they block on a job channel between Run calls and exit on
// Close. A pool serves one query at a time: Run calls must not overlap, and
// the job callback must confine its writes to per-item result slots and
// per-worker scratch (the pool provides the indexes, the caller the
// storage), which is what makes the fan-out race-free by construction.
type WorkerPool struct {
	n    int
	jobs chan *poolJob
	wg   sync.WaitGroup
}

// poolJob is one Run invocation: items [0, n) are handed out by an atomic
// cursor so the lanes stay busy regardless of per-item cost skew.
type poolJob struct {
	fn       func(worker, item int)
	n        int
	next     atomic.Int64
	done     sync.WaitGroup
	panicked atomic.Value // holds a panicValue
}

// panicValue wraps a recovered panic payload so every atomic.Value store
// uses one concrete type regardless of what the lanes panicked with.
type panicValue struct{ v any }

// NewWorkerPool starts a pool of n lanes (n-1 goroutines plus the caller).
// n must be at least 2 — a 1-lane pool is the sequential path, which
// callers select by not building a pool at all.
func NewWorkerPool(n int) *WorkerPool {
	if n < 2 {
		panic("visgraph: NewWorkerPool needs at least 2 workers")
	}
	p := &WorkerPool{n: n, jobs: make(chan *poolJob, n-1)}
	for w := 1; w < n; w++ {
		p.wg.Add(1)
		go func(w int) {
			defer p.wg.Done()
			for j := range p.jobs {
				j.run(w)
				j.done.Done()
			}
		}(w)
	}
	return p
}

// Workers returns the pool width, including the calling goroutine's lane.
func (p *WorkerPool) Workers() int { return p.n }

// Run invokes fn(worker, item) for every item in [0, n) across the pool and
// returns when all items are done. worker identifies the executing lane for
// per-worker scratch selection; the caller runs as worker 0. A panic in any
// lane is re-raised here after the job drains.
func (p *WorkerPool) Run(n int, fn func(worker, item int)) {
	if n <= 0 {
		return
	}
	j := &poolJob{fn: fn, n: n}
	helpers := p.n - 1
	if helpers > n-1 {
		helpers = n - 1 // never wake more lanes than there are items beyond ours
	}
	j.done.Add(helpers)
	for i := 0; i < helpers; i++ {
		p.jobs <- j
	}
	j.run(0)
	j.done.Wait()
	if r := j.panicked.Load(); r != nil {
		panic(r.(panicValue).v)
	}
}

func (j *poolJob) run(w int) {
	defer func() {
		if r := recover(); r != nil {
			// First panic wins — one is enough to report.
			j.panicked.CompareAndSwap(nil, panicValue{r})
			// Drain the cursor so sibling lanes (and Run) finish promptly.
			j.next.Store(int64(j.n))
		}
	}()
	for {
		i := int(j.next.Add(1)) - 1
		if i >= j.n {
			return
		}
		j.fn(w, i)
	}
}

// Close shuts the background lanes down and waits for them to exit. The
// pool must be idle (no Run in flight).
func (p *WorkerPool) Close() {
	close(p.jobs)
	p.wg.Wait()
}
