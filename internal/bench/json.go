package bench

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"connquery/internal/dataset"
	"connquery/internal/geom"
	"connquery/internal/stats"
)

// BenchResult is one machine-readable benchmark record, emitted as
// BENCH_<name>.json. The repository tracks the query hot path's trajectory
// through these files: BENCH_baseline.json pins the numbers before the
// targeted-search overhaul, and `connbench -json` regenerates a current
// measurement in the same schema.
type BenchResult struct {
	Name        string  `json:"name"`
	Tool        string  `json:"tool"` // what produced the numbers and how
	Scale       float64 `json:"scale"`
	Queries     int     `json:"queries"`
	K           int     `json:"k"`
	QL          float64 `json:"ql"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	NPE         float64 `json:"npe"`
	NOE         float64 `json:"noe"`
	SVG         float64 `json:"svg"`
	Timestamp   string  `json:"timestamp"`
}

// MeasureTable2Defaults times the paper's default parameter cell (CL, k = 5,
// ql = 4.5%, |P|/|O| = 1, no buffer). One op is one COkNN query against a
// prebuilt engine — index construction is excluded, so the number isolates
// the query hot path this schema exists to track.
func MeasureTable2Defaults(cfg Config) BenchResult {
	cfg = cfg.norm()
	w := BuildWorkload("CL", cfg.Scale, DefaultRatio, cfg.Seed)
	eng, _ := buildEngine(w, RunConfig{}.withDefaults())
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	queries := make([]geom.Segment, cfg.Queries)
	for i := range queries {
		queries[i] = dataset.QuerySegment(rng, DefaultQL, w.Obstacles)
	}
	// Warm the engine's pooled query state so steady-state costs are
	// measured, then snapshot allocator counters around the timed loop.
	eng.COKNN(queries[0], DefaultK)

	var agg stats.Aggregate
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for _, q := range queries {
		_, m := eng.COKNN(q, DefaultK)
		agg.Add(m)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	mean := agg.Mean()
	ops := float64(len(queries))
	return BenchResult{
		Name:        "table2_defaults",
		Tool:        "connbench -json (one op = one COkNN query, index build excluded)",
		Scale:       cfg.Scale,
		Queries:     cfg.Queries,
		K:           DefaultK,
		QL:          DefaultQL,
		NsPerOp:     float64(elapsed.Nanoseconds()) / ops,
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / ops,
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / ops,
		NPE:         mean.NPE,
		NOE:         mean.NOE,
		SVG:         mean.SVG,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
	}
}

// WriteJSON writes r to dir/BENCH_<name>.json and returns the path.
func WriteJSON(dir string, r BenchResult) (string, error) {
	path := filepath.Join(dir, "BENCH_"+r.Name+".json")
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
