package bench

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"connquery/internal/dataset"
	"connquery/internal/geom"
	"connquery/internal/stats"
)

// BenchResult is one machine-readable benchmark record, emitted as
// BENCH_<name>.json. The repository tracks the query hot path's trajectory
// through these files: BENCH_baseline.json pins the numbers before the
// targeted-search overhaul, and `connbench -json` regenerates a current
// measurement in the same schema.
type BenchResult struct {
	Name        string  `json:"name"`
	Tool        string  `json:"tool"` // what produced the numbers and how
	Scale       float64 `json:"scale"`
	Queries     int     `json:"queries"`
	Seed        int64   `json:"seed"`
	K           int     `json:"k"`
	QL          float64 `json:"ql"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	NPE         float64 `json:"npe"`
	NOE         float64 `json:"noe"`
	SVG         float64 `json:"svg"`
	Timestamp   string  `json:"timestamp"`
}

// MeasureTable2Defaults times the paper's default parameter cell (CL, k = 5,
// ql = 4.5%, |P|/|O| = 1, no buffer). One op is one COkNN query against a
// prebuilt engine — index construction is excluded, so the number isolates
// the query hot path this schema exists to track.
func MeasureTable2Defaults(cfg Config) BenchResult {
	return MeasureTable2With(cfg,
		"connbench -json (one op = one COkNN query, index build excluded)",
		func(w Workload) func(q geom.Segment) stats.QueryMetrics {
			eng, _ := buildEngine(w, RunConfig{}.withDefaults())
			return func(q geom.Segment) stats.QueryMetrics {
				_, m := eng.COkNN(q, DefaultK)
				return m
			}
		})
}

// MeasureTable2With measures the Table 2 default cell's query workload
// through an arbitrary runner: open builds the query executor over the
// prepared workload (an engine, a public DB, a request pipeline, ...), and
// the returned closure answers one COkNN-cell query and reports its
// metrics. The workload, query stream, warm-up and allocator accounting are
// identical to MeasureTable2Defaults, so records produced through different
// runners are directly comparable — cmd/connbench uses this to measure the
// public Exec path against the engine-level pinned record.
func MeasureTable2With(cfg Config, tool string, open func(w Workload) func(q geom.Segment) stats.QueryMetrics) BenchResult {
	w, queries, cfg := Table2Stream(cfg)
	run := open(w)
	// Warm the pooled query state so steady-state costs are measured, then
	// snapshot allocator counters around the timed loop.
	run(queries[0])

	var agg stats.Aggregate
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for _, q := range queries {
		agg.Add(run(q))
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	mean := agg.Mean()
	ops := float64(len(queries))
	return BenchResult{
		Name:        "table2_defaults",
		Tool:        tool,
		Scale:       cfg.Scale,
		Queries:     cfg.Queries,
		Seed:        cfg.Seed,
		K:           DefaultK,
		QL:          DefaultQL,
		NsPerOp:     float64(elapsed.Nanoseconds()) / ops,
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / ops,
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / ops,
		NPE:         mean.NPE,
		NOE:         mean.NOE,
		SVG:         mean.SVG,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
	}
}

// Table2Stream prepares the Table 2 default cell's measurement inputs: the
// CL workload and the cell's query stream, with cfg's zero fields filled
// the way every Table 2 record fills them. MeasureTable2With and the
// cache-effectiveness bench (connbench -cache-json) share this one
// builder, so their records measure the same query stream by construction
// and stay comparable. The normalized cfg is returned for the record's
// parameter fields.
func Table2Stream(cfg Config) (Workload, []geom.Segment, Config) {
	cfg = cfg.norm()
	w := BuildWorkload("CL", cfg.Scale, DefaultRatio, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	queries := make([]geom.Segment, cfg.Queries)
	for i := range queries {
		queries[i] = dataset.QuerySegment(rng, DefaultQL, w.Obstacles)
	}
	return w, queries, cfg
}

// ReadJSON loads a BenchResult record (e.g. a pinned baseline) from path.
func ReadJSON(path string) (BenchResult, error) {
	var r BenchResult
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, err
	}
	return r, nil
}

// WriteJSON writes r to dir/BENCH_<name>.json and returns the path.
func WriteJSON(dir string, r BenchResult) (string, error) {
	path := filepath.Join(dir, "BENCH_"+r.Name+".json")
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
