// Package bench is the experiment harness that regenerates every figure of
// the paper's evaluation (§5). It builds the CL/UL/ZL workloads, sweeps
// the Table 2 parameters (query length ql, k, |P|/|O| ratio, buffer size
// bs, one-vs-two R-trees), runs the COkNN algorithm over seeded random
// query workloads, and reports the paper's metrics: total query cost (I/O
// charged at 10 ms per page fault + CPU), NPE, NOE and |SVG|.
//
// The cardinalities scale linearly with the Scale parameter: Scale = 1
// reproduces the paper's full |CA| = 60,344 and |LA| = 131,461; the
// default harness scale of 0.1 keeps a full figure sweep within
// laptop-minutes. The shape of every reported curve is preserved across
// scales.
//
// Machine-readable hot-path measurements are emitted as BENCH_*.json (see
// json.go and `connbench -json`): MeasureTable2With times the Table 2
// default cell through the public DB.Exec path, and cmd/connbench's
// -baseline/-max-regress flags gate CI on the resulting record — ns/op
// may drift within a budget, the machine-independent NPE/NOE/|SVG| may
// not drift at all.
package bench
