package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// StreamBenchResult is the machine-readable record of the batched-ingest
// bench (BENCH_stream.json): the same seeded mutation stream committed
// one public call per mutation versus batched through DB.Apply at Batch
// mutations per tick. Produced by `connbench -stream`; the
// -stream-baseline flag gates the batched per-mutation cost against the
// pinned in-memory mutation record (BENCH_mutation.json) — batching
// amortizes the clone/log/invalidate/publish commit overhead across the
// tick, so one mutation inside a batch=64 tick must cost at most
// MaxStreamFactor times the pinned one-call-per-mutation ns/op.
type StreamBenchResult struct {
	Name  string  `json:"name"`
	Tool  string  `json:"tool"`
	Scale float64 `json:"scale"`
	Ops   int     `json:"ops"`
	Batch int     `json:"batch"`
	Seed  int64   `json:"seed"`
	// SeqNsPerOp is one mutation committed through its own public call
	// (one COW pass, one published epoch each); BatchNsPerOp is one
	// mutation's share of a Batch-sized Apply tick. Speedup is their
	// ratio.
	SeqNsPerOp   float64 `json:"seq_ns_per_op"`
	BatchNsPerOp float64 `json:"batch_ns_per_op"`
	Speedup      float64 `json:"speedup"`
	Timestamp    string  `json:"timestamp"`
}

// MaxStreamFactor is the acceptance ceiling for batched-ingest mutation
// cost relative to the pinned per-mutation baseline: one mutation inside
// a batched tick may cost at most this fraction of a one-call-per-mutation
// commit, or the batching amortization has regressed.
const MaxStreamFactor = 0.25

// ReadStreamJSON loads a pinned StreamBenchResult record.
func ReadStreamJSON(path string) (StreamBenchResult, error) {
	var r StreamBenchResult
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, err
	}
	return r, nil
}

// WriteStreamJSON writes r to dir/BENCH_<name>.json and returns the path.
func WriteStreamJSON(dir string, r StreamBenchResult) (string, error) {
	path := filepath.Join(dir, "BENCH_"+r.Name+".json")
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
