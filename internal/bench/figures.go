package bench

import (
	"fmt"
	"io"
)

// Sweep grids from the paper's Table 2.
var (
	QLGrid     = []float64{0.015, 0.03, 0.045, 0.06, 0.075}
	KGrid      = []int{1, 3, 5, 7, 9}
	RatioGrid  = []float64{0.1, 0.2, 0.5, 1, 2, 5, 10}
	BufferGrid = []float64{0.01, 0.02, 0.04, 0.08, 0.16, 0.32}
)

// Config bundles the global harness knobs shared by every figure.
type Config struct {
	Scale   float64 // dataset cardinality scale (1 = the paper's sizes)
	Queries int     // queries per cell (paper: 100)
	Seed    int64
}

func (c Config) norm() Config {
	if c.Scale == 0 {
		c.Scale = 0.1
	}
	if c.Queries == 0 {
		c.Queries = DefaultQueries
	}
	return c
}

// Fig9 regenerates Figure 9: COkNN performance and |SVG| versus query
// length ql on CL with k = 5. One table serves both subfigures — 9(a)'s
// time/NPE/NOE columns and 9(b)'s |SVG| vs FULL columns.
func Fig9(out io.Writer, cfg Config) {
	cfg = cfg.norm()
	fmt.Fprintf(out, "Figure 9: CL, k=5 — performance vs query length (scale %.2f, %d queries/cell)\n", cfg.Scale, cfg.Queries)
	w := BuildWorkload("CL", cfg.Scale, DefaultRatio, cfg.Seed)
	header(out, "ql")
	for _, ql := range QLGrid {
		c := Run(w, RunConfig{QL: ql, K: 5, Queries: cfg.Queries, Seed: cfg.Seed})
		row(out, fmt.Sprintf("%.1f%%", ql*100), c)
	}
	fmt.Fprintln(out)
}

// Fig10 regenerates Figure 10: performance and |SVG| versus k on CL with
// ql = 4.5%.
func Fig10(out io.Writer, cfg Config) {
	cfg = cfg.norm()
	fmt.Fprintf(out, "Figure 10: CL, ql=4.5%% — performance vs k (scale %.2f, %d queries/cell)\n", cfg.Scale, cfg.Queries)
	w := BuildWorkload("CL", cfg.Scale, DefaultRatio, cfg.Seed)
	header(out, "k")
	for _, k := range KGrid {
		c := Run(w, RunConfig{QL: DefaultQL, K: k, Queries: cfg.Queries, Seed: cfg.Seed})
		row(out, fmt.Sprintf("%d", k), c)
	}
	fmt.Fprintln(out)
}

// Fig11 regenerates Figure 11: performance and |SVG| versus the |P|/|O|
// cardinality ratio on UL (subfigures a, b) and ZL (subfigures c, d), with
// k = 5 and ql = 4.5%.
func Fig11(out io.Writer, cfg Config) {
	cfg = cfg.norm()
	for _, name := range []string{"UL", "ZL"} {
		fmt.Fprintf(out, "Figure 11 (%s): k=5, ql=4.5%% — performance vs |P|/|O| (scale %.2f, %d queries/cell)\n", name, cfg.Scale, cfg.Queries)
		header(out, "|P|/|O|")
		for _, ratio := range RatioGrid {
			w := BuildWorkload(name, cfg.Scale, ratio, cfg.Seed)
			c := Run(w, RunConfig{QL: DefaultQL, K: 5, Queries: cfg.Queries, Seed: cfg.Seed})
			row(out, fmt.Sprintf("%.1f", ratio), c)
		}
		fmt.Fprintln(out)
	}
}

// Fig12 regenerates Figure 12: performance versus LRU buffer size (as a
// fraction of each tree's size) on CL (a, b) and UL (c, d). Following the
// paper, half of the queries warm the buffer and only the second half is
// reported, so only the I/O column should respond to the buffer.
func Fig12(out io.Writer, cfg Config) {
	cfg = cfg.norm()
	warm := cfg.Queries / 2
	report := cfg.Queries - warm
	for _, name := range []string{"CL", "UL"} {
		fmt.Fprintf(out, "Figure 12 (%s): k=5, ql=4.5%% — performance vs buffer size (warm-up %d, report %d)\n", name, warm, report)
		w := BuildWorkload(name, cfg.Scale, DefaultRatio, cfg.Seed)
		header(out, "buffer")
		base := Run(w, RunConfig{QL: DefaultQL, K: 5, Queries: report, WarmUp: warm, Seed: cfg.Seed})
		row(out, "0%", base)
		for _, bs := range BufferGrid {
			c := Run(w, RunConfig{QL: DefaultQL, K: 5, Queries: report, WarmUp: warm, BufferFrac: bs, Seed: cfg.Seed})
			row(out, fmt.Sprintf("%.0f%%", bs*100), c)
		}
		fmt.Fprintln(out)
	}
}

// Fig13 regenerates Figure 13: COkNN on two R-trees (2T) versus one unified
// R-tree (1T), across query length (a: CL, b: UL), k (c: CL, d: UL) and
// |P|/|O| (e: UL, f: ZL). Reported as paired total-cost columns.
func Fig13(out io.Writer, cfg Config) {
	cfg = cfg.norm()
	pair := func(w Workload, rc RunConfig) (Cell, Cell) {
		two := Run(w, rc)
		rc.OneTree = true
		one := Run(w, rc)
		return one, two
	}
	prt := func(label string, one, two Cell) {
		fmt.Fprintf(out, "%-10s %14.1f %14.1f\n", label,
			float64(one.Mean.TotalCost().Microseconds())/1000,
			float64(two.Mean.TotalCost().Microseconds())/1000)
	}

	for _, name := range []string{"CL", "UL"} {
		fmt.Fprintf(out, "Figure 13 (%s): total cost vs ql — 1T vs 2T\n", name)
		fmt.Fprintf(out, "%-10s %14s %14s\n", "ql", "1T total(ms)", "2T total(ms)")
		w := BuildWorkload(name, cfg.Scale, DefaultRatio, cfg.Seed)
		for _, ql := range QLGrid {
			one, two := pair(w, RunConfig{QL: ql, K: 5, Queries: cfg.Queries, Seed: cfg.Seed})
			prt(fmt.Sprintf("%.1f%%", ql*100), one, two)
		}
		fmt.Fprintln(out)
	}
	for _, name := range []string{"CL", "UL"} {
		fmt.Fprintf(out, "Figure 13 (%s): total cost vs k — 1T vs 2T\n", name)
		fmt.Fprintf(out, "%-10s %14s %14s\n", "k", "1T total(ms)", "2T total(ms)")
		w := BuildWorkload(name, cfg.Scale, DefaultRatio, cfg.Seed)
		for _, k := range KGrid {
			one, two := pair(w, RunConfig{QL: DefaultQL, K: k, Queries: cfg.Queries, Seed: cfg.Seed})
			prt(fmt.Sprintf("%d", k), one, two)
		}
		fmt.Fprintln(out)
	}
	for _, name := range []string{"UL", "ZL"} {
		fmt.Fprintf(out, "Figure 13 (%s): total cost vs |P|/|O| — 1T vs 2T\n", name)
		fmt.Fprintf(out, "%-10s %14s %14s\n", "|P|/|O|", "1T total(ms)", "2T total(ms)")
		for _, ratio := range RatioGrid {
			w := BuildWorkload(name, cfg.Scale, ratio, cfg.Seed)
			one, two := pair(w, RunConfig{QL: DefaultQL, K: 5, Queries: cfg.Queries, Seed: cfg.Seed})
			prt(fmt.Sprintf("%.1f", ratio), one, two)
		}
		fmt.Fprintln(out)
	}
}

// Ablations benchmarks the paper's individual design choices (DESIGN.md §7):
// Lemma 1's endpoint shortcut, Lemma 7's CPLC termination, local-VG reuse,
// and the quadratic solver, each against its disabled variant on CL.
func Ablations(out io.Writer, cfg Config) {
	cfg = cfg.norm()
	w := BuildWorkload("CL", cfg.Scale, DefaultRatio, cfg.Seed)
	fmt.Fprintf(out, "Ablations: CL (CONN, k=1), ql=4.5%% (scale %.2f, %d queries/cell)\n", cfg.Scale, cfg.Queries)
	header(out, "variant")
	base := RunConfig{QL: DefaultQL, K: 5, Queries: cfg.Queries, Seed: cfg.Seed, UseCONN: true}
	row(out, "full", Run(w, base))

	v := base
	v.Tuning.DisableLemma1 = true
	row(out, "-lemma1", Run(w, v))

	v = base
	v.Tuning.DisableLemma7 = true
	row(out, "-lemma7", Run(w, v))

	v = base
	v.Tuning.UseBisectionSolver = true
	row(out, "-quad", Run(w, v))

	v = base
	v.Tuning.DisableVGReuse = true
	row(out, "-vgreuse", Run(w, v))
	fmt.Fprintln(out)
}
