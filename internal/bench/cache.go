package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// CacheBenchResult is the machine-readable record of the answer-cache
// effectiveness bench (BENCH_cache.json): the Table 2 default cell measured
// uncached and again with a warm cache, the speedup between the two, and
// the warm pass's hit rate. Produced by `connbench -cache-json`; the
// -cache-baseline flag gates regressions against a pinned record the same
// way -baseline gates the uncached cell. HitRate is machine-independent
// (every warm-pass op repeats a cached request and must hit) and is
// compared exactly; Speedup has a hard floor of MinCacheSpeedup and its
// ns/op halves obey -max-regress.
type CacheBenchResult struct {
	Name    string  `json:"name"`
	Tool    string  `json:"tool"`
	Scale   float64 `json:"scale"`
	Queries int     `json:"queries"`
	Seed    int64   `json:"seed"`
	K       int     `json:"k"`
	QL      float64 `json:"ql"`
	// UncachedNsPerOp is one COkNN-cell query via Exec with the cache
	// bypassed; WarmNsPerOp is the same query stream answered entirely from
	// the cache (measured over WarmRounds passes).
	UncachedNsPerOp float64 `json:"uncached_ns_per_op"`
	WarmNsPerOp     float64 `json:"warm_ns_per_op"`
	Speedup         float64 `json:"speedup"`
	HitRate         float64 `json:"hit_rate"`
	WarmRounds      int     `json:"warm_rounds"`
	Timestamp       string  `json:"timestamp"`
}

// MinCacheSpeedup is the hard acceptance floor for warm-cache speedup on
// the repeated Table 2 cell: whatever the hardware, serving a repeat from
// the cache must beat re-executing the engine by at least this factor.
const MinCacheSpeedup = 10.0

// ReadCacheJSON loads a pinned CacheBenchResult record.
func ReadCacheJSON(path string) (CacheBenchResult, error) {
	var r CacheBenchResult
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, err
	}
	return r, nil
}

// WriteCacheJSON writes r to dir/BENCH_<name>.json and returns the path.
func WriteCacheJSON(dir string, r CacheBenchResult) (string, error) {
	path := filepath.Join(dir, "BENCH_"+r.Name+".json")
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
