package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// StormBenchResult is the machine-readable record of the execution-planner
// storm bench (BENCH_planner.json): Readers concurrent goroutines each
// answer OpsPerReader overlapping hot-region obstructed-distance queries —
// the same precomputed streams — once on a planner-enabled handle and once
// on a WithNoPlanner twin, with answer caches disabled on both so every op
// is a real execution. Obstructed distance is the SVG-construction-bound
// request kind (no top-k retrieval loop diluting the visibility phase), so
// the speedup between the two runs is what the shared region-scoped
// sight-line certificate table buys under real concurrency. Produced by
// `connbench -storm`; the gate always enforces the MinStormSpeedup floor,
// and -storm-baseline additionally gates the planner-on ns/op against a
// pinned record.
type StormBenchResult struct {
	Name         string  `json:"name"`
	Tool         string  `json:"tool"`
	Kind         string  `json:"kind"`
	Scale        float64 `json:"scale"`
	Readers      int     `json:"readers"`
	OpsPerReader int     `json:"ops_per_reader"`
	Seed         int64   `json:"seed"`
	QL           float64 `json:"ql"`
	// HotFrac is the hot sub-square's side as a fraction of the world side:
	// small enough that concurrent queries collide on quantized planner
	// group keys, which is the regime the planner exists for.
	HotFrac          float64 `json:"hot_frac"`
	PlannerNsPerOp   float64 `json:"planner_ns_per_op"`
	NoPlannerNsPerOp float64 `json:"no_planner_ns_per_op"`
	Speedup          float64 `json:"speedup"`
	// The planner-on run's own counters, recorded so the pinned record
	// proves the measured speedup came from real group formation and table
	// adoption rather than noise.
	GroupsFormed uint64 `json:"groups_formed"`
	Adoptions    uint64 `json:"adoptions"`
	Fallbacks    uint64 `json:"fallbacks"`
	Timestamp    string `json:"timestamp"`
}

// MinStormSpeedup is the hard acceptance floor for the planner's speedup on
// the concurrent overlapping storm: whatever the hardware, sharing one
// sight-line certificate table across the storm must beat every query
// re-deriving its verdicts privately by at least this factor.
const MinStormSpeedup = 1.5

// ReadStormJSON loads a pinned StormBenchResult record.
func ReadStormJSON(path string) (StormBenchResult, error) {
	var r StormBenchResult
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, err
	}
	return r, nil
}

// WriteStormJSON writes r to dir/BENCH_<name>.json and returns the path.
func WriteStormJSON(dir string, r StormBenchResult) (string, error) {
	path := filepath.Join(dir, "BENCH_"+r.Name+".json")
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
