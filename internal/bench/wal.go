package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// WALBenchResult is the machine-readable record of the durability-cost
// bench (BENCH_wal.json): the same mutation stream measured against an
// in-memory database, a durable one in group-commit mode, and a durable one
// in strict per-mutation fsync mode. Produced by `connbench -wal`; the
// -mutation-baseline flag gates the group-commit cost against the pinned
// in-memory mutation record (BENCH_mutation.json) — group commit is the
// deployment default the README recommends, so its per-mutation cost may
// not exceed MaxGroupCommitFactor times the pinned in-memory ns/op. Strict
// mode is reported, not gated: its cost is the device's fsync latency, not
// a property of this code.
type WALBenchResult struct {
	Name  string  `json:"name"`
	Tool  string  `json:"tool"`
	Scale float64 `json:"scale"`
	Ops   int     `json:"ops"`
	Seed  int64   `json:"seed"`
	// MemNsPerOp is one mutation on a plain in-memory handle; GroupNsPerOp
	// adds the WAL append under a GroupWindowMs sync window; FsyncNsPerOp
	// adds a synchronous fsync to every mutation.
	MemNsPerOp    float64 `json:"mem_ns_per_op"`
	GroupNsPerOp  float64 `json:"group_ns_per_op"`
	FsyncNsPerOp  float64 `json:"fsync_ns_per_op"`
	GroupWindowMs float64 `json:"group_window_ms"`
	Timestamp     string  `json:"timestamp"`
}

// MaxGroupCommitFactor is the acceptance ceiling for group-commit mutation
// cost relative to the pinned in-memory mutation baseline: logging a
// mutation under a sync window may slow the write path by at most this
// factor.
const MaxGroupCommitFactor = 3.0

// ReadWALJSON loads a pinned WALBenchResult record.
func ReadWALJSON(path string) (WALBenchResult, error) {
	var r WALBenchResult
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, err
	}
	return r, nil
}

// WriteWALJSON writes r to dir/BENCH_<name>.json and returns the path.
func WriteWALJSON(dir string, r WALBenchResult) (string, error) {
	path := filepath.Join(dir, "BENCH_"+r.Name+".json")
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
