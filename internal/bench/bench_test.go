package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestBuildWorkloadShapes(t *testing.T) {
	for _, name := range []string{"CL", "UL", "ZL"} {
		w := BuildWorkload(name, 0.005, 2, 7)
		if w.Name != name {
			t.Fatalf("name = %q", w.Name)
		}
		if len(w.Obstacles) == 0 || len(w.Points) == 0 {
			t.Fatalf("%s: empty workload", name)
		}
		// UL/ZL respect the ratio (up to interior-point filtering).
		if name != "CL" {
			want := float64(len(w.Obstacles)) * 2
			if f := float64(len(w.Points)); f < want*0.9 || f > want*1.01 {
				t.Fatalf("%s: |P| = %d for |O| = %d at ratio 2", name, len(w.Points), len(w.Obstacles))
			}
		}
	}
}

func TestBuildWorkloadUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown workload did not panic")
		}
	}()
	BuildWorkload("XX", 0.01, 1, 1)
}

func TestRunProducesMetrics(t *testing.T) {
	w := BuildWorkload("UL", 0.005, 1, 11)
	c := Run(w, RunConfig{QL: 0.02, K: 2, Queries: 3, Seed: 11})
	m := c.Mean
	if m.N != 3 {
		t.Fatalf("N = %d", m.N)
	}
	if m.NPE <= 0 || m.NOE < 0 || m.SVG < 0 || m.CPU <= 0 {
		t.Fatalf("degenerate metrics: %+v", m)
	}
	if m.Faults() <= 0 {
		t.Fatal("no page faults recorded")
	}
	if c.Full != 4*len(w.Obstacles) {
		t.Fatalf("Full = %d, want %d", c.Full, 4*len(w.Obstacles))
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	w := BuildWorkload("UL", 0.005, 1, 13)
	a := Run(w, RunConfig{QL: 0.02, K: 1, Queries: 3, Seed: 5})
	b := Run(w, RunConfig{QL: 0.02, K: 1, Queries: 3, Seed: 5})
	if a.Mean.NPE != b.Mean.NPE || a.Mean.NOE != b.Mean.NOE || a.Mean.SVG != b.Mean.SVG {
		t.Fatalf("same seed, different workload metrics: %+v vs %+v", a.Mean, b.Mean)
	}
}

func TestBufferOnlyAffectsIO(t *testing.T) {
	w := BuildWorkload("UL", 0.005, 1, 17)
	cfg := RunConfig{QL: 0.02, K: 2, Queries: 4, WarmUp: 4, Seed: 17}
	none := Run(w, cfg)
	cfg.BufferFrac = 0.32
	buffered := Run(w, cfg)
	if buffered.Mean.Faults() >= none.Mean.Faults() {
		t.Fatalf("buffer did not cut faults: %v vs %v", buffered.Mean.Faults(), none.Mean.Faults())
	}
	// The paper's Figure 12 observation: NPE/NOE/|SVG| are buffer-invariant.
	if buffered.Mean.NPE != none.Mean.NPE || buffered.Mean.NOE != none.Mean.NOE || buffered.Mean.SVG != none.Mean.SVG {
		t.Fatalf("buffer changed non-I/O metrics: %+v vs %+v", buffered.Mean, none.Mean)
	}
}

func TestOneTreeRunWorks(t *testing.T) {
	w := BuildWorkload("UL", 0.005, 1, 19)
	c := Run(w, RunConfig{QL: 0.02, K: 1, Queries: 2, OneTree: true, Seed: 19})
	if c.Mean.NPE <= 0 {
		t.Fatalf("one-tree run produced no work: %+v", c.Mean)
	}
}

func TestFigureWritersEmitTables(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps are slow")
	}
	var buf bytes.Buffer
	cfg := Config{Scale: 0.002, Queries: 2, Seed: 3}
	Fig9(&buf, cfg)
	if !strings.Contains(buf.String(), "Figure 9") || !strings.Contains(buf.String(), "ql") {
		t.Fatalf("Fig9 output malformed:\n%s", buf.String())
	}
	buf.Reset()
	Fig10(&buf, cfg)
	if !strings.Contains(buf.String(), "Figure 10") {
		t.Fatalf("Fig10 output malformed:\n%s", buf.String())
	}
	buf.Reset()
	Ablations(&buf, cfg)
	out := buf.String()
	for _, want := range []string{"full", "-lemma1", "-lemma7", "-quad", "-vgreuse"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Ablations output missing %q:\n%s", want, out)
		}
	}
}
