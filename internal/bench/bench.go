package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"connquery/internal/core"
	"connquery/internal/dataset"
	"connquery/internal/flatgeom"
	"connquery/internal/geom"
	"connquery/internal/lru"
	"connquery/internal/rtree"
	"connquery/internal/stats"
)

// Defaults from the paper's Table 2 (bold entries).
const (
	DefaultQL      = 0.045 // query length: 4.5% of the space side
	DefaultK       = 5
	DefaultRatio   = 1.0 // |P|/|O|
	DefaultQueries = 100
)

// Workload is a prepared dataset combination.
type Workload struct {
	Name      string // "CL", "UL" or "ZL"
	Points    []geom.Point
	Obstacles []geom.Rect
}

// BuildWorkload constructs one of the paper's dataset combinations at the
// given scale. ratio sets |P|/|O| for the synthetic point sets (UL, ZL); CL
// uses the CA surrogate's own cardinality, as in the paper.
func BuildWorkload(name string, scale, ratio float64, seed int64) Workload {
	nObs := int(float64(dataset.LASize) * scale)
	obstacles := dataset.Streets(nObs, seed)
	var points []geom.Point
	switch name {
	case "CL":
		nPts := int(float64(dataset.CASize) * scale)
		points = dataset.Clustered(nPts, 24, dataset.Side*0.035, 0.15, seed+1)
	case "UL":
		points = dataset.Uniform(int(float64(nObs)*ratio), seed+1)
	case "ZL":
		points = dataset.Zipf(int(float64(nObs)*ratio), 0.8, seed+1)
	default:
		panic("bench: unknown workload " + name)
	}
	points = dataset.FilterPoints(points, obstacles)
	return Workload{Name: name, Points: points, Obstacles: obstacles}
}

// RunConfig parametrizes one experiment cell.
type RunConfig struct {
	QL         float64 // query segment length as a fraction of the side
	K          int
	Queries    int
	BufferFrac float64 // LRU capacity as a fraction of each tree's pages
	WarmUp     int     // queries executed before counters reset (Figure 12)
	OneTree    bool
	// UseCONN runs the k=1 CONN algorithm (Algorithm 4 with RLU) instead of
	// the COkNN generalization; the Lemma 1 shortcut only exists on that
	// path, so the ablation sweep uses it.
	UseCONN bool
	Seed    int64
	Tuning  core.Options
}

func (c RunConfig) withDefaults() RunConfig {
	if c.QL == 0 {
		c.QL = DefaultQL
	}
	if c.K == 0 {
		c.K = DefaultK
	}
	if c.Queries == 0 {
		c.Queries = DefaultQueries
	}
	return c
}

// Cell is the measured outcome of one experiment cell.
type Cell struct {
	Mean stats.MeanMetrics
	Full int // 4 * |O|: the global visibility graph size, Figure 9(b)'s FULL
}

// Run executes cfg.Queries random COkNN queries over the workload and
// returns mean metrics, reproducing the paper's methodology (random start
// and orientation, length ql, metrics averaged; with WarmUp > 0 the first
// WarmUp queries only populate the buffer).
func Run(w Workload, cfg RunConfig) Cell {
	cfg = cfg.withDefaults()
	eng, bufs := buildEngine(w, cfg)
	rng := rand.New(rand.NewSource(cfg.Seed + 7))

	var agg stats.Aggregate
	total := cfg.WarmUp + cfg.Queries
	for i := 0; i < total; i++ {
		q := dataset.QuerySegment(rng, cfg.QL, w.Obstacles)
		if i == cfg.WarmUp {
			for _, b := range bufs {
				b.ResetStats()
			}
		}
		var m stats.QueryMetrics
		if cfg.UseCONN {
			_, m = eng.CONN(q)
		} else {
			_, m = eng.COkNN(q, cfg.K)
		}
		if i >= cfg.WarmUp {
			agg.Add(m)
		}
	}
	return Cell{Mean: agg.Mean(), Full: 4 * len(w.Obstacles)}
}

// buildEngine assembles the engine with page counters and optional buffers.
func buildEngine(w Workload, cfg RunConfig) (*core.Engine, []*lru.Buffer) {
	pointItems := make([]rtree.Item, len(w.Points))
	for i, p := range w.Points {
		pointItems[i] = rtree.PointItem(int32(i), p)
	}
	obstItems := make([]rtree.Item, len(w.Obstacles))
	for i, o := range w.Obstacles {
		obstItems[i] = rtree.ObstacleItem(int32(i), o)
	}
	eng := &core.Engine{Obstacles: w.Obstacles, Kernel: flatgeom.NewKernel(w.Obstacles), Opts: cfg.Tuning}
	var bufs []*lru.Buffer
	if cfg.OneTree {
		uni := rtree.New(rtree.Options{})
		uni.BulkLoad(append(pointItems, obstItems...))
		c := &stats.PageCounter{}
		if cfg.BufferFrac > 0 {
			b := lru.New(bufferPages(cfg.BufferFrac, uni.NumNodes()))
			c.Buffer = b
			bufs = append(bufs, b)
		}
		uni.SetAccessRecorder(c)
		eng.Unified, eng.DataCounter = uni, c
		return eng, bufs
	}
	data := rtree.New(rtree.Options{})
	data.BulkLoad(pointItems)
	obst := rtree.New(rtree.Options{})
	obst.BulkLoad(obstItems)
	dc, oc := &stats.PageCounter{}, &stats.PageCounter{}
	if cfg.BufferFrac > 0 {
		db := lru.New(bufferPages(cfg.BufferFrac, data.NumNodes()))
		ob := lru.New(bufferPages(cfg.BufferFrac, obst.NumNodes()))
		dc.Buffer, oc.Buffer = db, ob
		bufs = append(bufs, db, ob)
	}
	data.SetAccessRecorder(dc)
	obst.SetAccessRecorder(oc)
	eng.Data, eng.Obst, eng.DataCounter, eng.ObstCounter = data, obst, dc, oc
	return eng, bufs
}

// bufferPages converts a buffer fraction into a page capacity, rounding up
// so that small fractions of small (scaled-down) trees still buffer at
// least the root page, mirroring how a real buffer pool would pin the root.
func bufferPages(frac float64, nodes int) int {
	p := int(math.Ceil(frac * float64(nodes)))
	if p < 1 {
		p = 1
	}
	return p
}

// header prints the standard table header.
func header(out io.Writer, param string) {
	fmt.Fprintf(out, "%-10s %12s %12s %12s %8s %8s %8s %10s\n",
		param, "io(ms)", "cpu(ms)", "total(ms)", "NPE", "NOE", "|SVG|", "FULL")
}

func row(out io.Writer, label string, c Cell) {
	m := c.Mean
	fmt.Fprintf(out, "%-10s %12.1f %12.3f %12.1f %8.1f %8.1f %8.1f %10d\n",
		label,
		float64(m.IOTime().Microseconds())/1000,
		float64(m.CPU.Microseconds())/1000,
		float64(m.TotalCost().Microseconds())/1000,
		m.NPE, m.NOE, m.SVG, c.Full)
}
