package core

import "connquery/internal/geom"

// NoOwner is the PID of the empty (∅) result-list owner.
const NoOwner int32 = -1

// distFn is an obstructed-distance function over a sub-interval of the query
// segment where the control point is fixed (Definition 8):
// f(t) = Base + dist(CP, q(t)), with Base = ||p, CP||.
type distFn struct {
	CP   geom.Point
	Base float64
}

func (f distFn) eval(q geom.Segment, t float64) float64 {
	return f.Base + geom.Dist(f.CP, q.At(t))
}

// CPLEntry is one tuple of a control point list (Definition 9): over Span,
// the shortest paths from the data point pass through Fn.CP.
type CPLEntry struct {
	Span  geom.Span
	Fn    distFn
	Valid bool // false for the ∅ control point (region unreachable so far)
}

// CPL is a control point list: a sorted partition of [0,1] into CPLEntries.
type CPL []CPLEntry

// ResultEntry is one tuple ⟨p, cp, R⟩ of the decomposed result list (§3):
// point PID is the ONN of every point in Span and its shortest paths pass
// through Fn.CP.
type ResultEntry struct {
	PID  int32
	P    geom.Point
	Fn   distFn
	Span geom.Span
}

// Tuple is one element of the user-facing CONN answer: P is the obstructed
// nearest neighbor of every point of q in Span.
type Tuple struct {
	PID  int32
	P    geom.Point
	Span geom.Span
}

// Result is a CONN answer: Tuples partition [0,1] and the interior
// boundaries between consecutive tuples are the split points (Definition 7).
type Result struct {
	Q      geom.Segment
	Tuples []Tuple
	// MaxDist is the maximum over the query segment of the answer's
	// obstructed distance (Lemma 2's final RLMAX; the plain Euclidean
	// maximum for CNN, the worst sample for NaiveCONN), +Inf when any
	// interval has no reachable owner. A mutation farther than MaxDist from
	// the segment cannot change this answer — any path it could block or
	// open is too long to matter — which is what lets the answer cache
	// derive a conservative spatial impact region from the payload alone.
	MaxDist float64
}

// SplitPoints returns the parameters where the ONN changes.
func (r *Result) SplitPoints() []float64 {
	var out []float64
	for i := 1; i < len(r.Tuples); i++ {
		out = append(out, r.Tuples[i].Span.Lo)
	}
	return out
}

// OwnerAt returns the tuple covering parameter t.
func (r *Result) OwnerAt(t float64) (Tuple, bool) {
	for _, tu := range r.Tuples {
		if tu.Span.Contains(t) {
			return tu, true
		}
	}
	return Tuple{}, false
}

// Owner is one member of a COkNN answer set, with its distance function on
// the enclosing interval.
type Owner struct {
	PID int32
	P   geom.Point
	Fn  distFn
}

// KTuple is one element of a COkNN answer: Owners are the k obstructed
// nearest neighbors of every point of q in Span. Owners are sorted by
// distance at the span midpoint.
type KTuple struct {
	Span   geom.Span
	Owners []Owner
}

// KResult is a COkNN answer.
type KResult struct {
	Q      geom.Segment
	K      int
	Tuples []KTuple
	// MaxDist is the maximum over the query segment of the k-th owner's
	// obstructed distance (the §4.5 RLMAX_k bound at termination), +Inf
	// when any interval has fewer than K owners. See Result.MaxDist.
	MaxDist float64
}

// OwnerSetAt returns the owner PIDs covering parameter t.
func (r *KResult) OwnerSetAt(t float64) ([]int32, bool) {
	for _, tu := range r.Tuples {
		if tu.Span.Contains(t) {
			ids := make([]int32, len(tu.Owners))
			for i, o := range tu.Owners {
				ids[i] = o.PID
			}
			return ids, true
		}
	}
	return nil, false
}

// Options toggles the paper's individual optimizations, primarily for the
// ablation benchmarks; all default to enabled (false = use the paper's
// algorithm as published).
type Options struct {
	// DisableLemma1 turns off the endpoint-dominance shortcut in RLU
	// (Algorithm 3 line 7).
	DisableLemma1 bool
	// DisableLemma6 turns off the triangle refinement of candidate control
	// regions in CPLC (Lemma 6).
	DisableLemma6 bool
	// DisableLemma7 turns off CPLC's early termination bound CPLMAX.
	DisableLemma7 bool
	// DisableVGReuse rebuilds the local visibility graph for every data
	// point instead of sharing it across the query (paper §4.1 notes the
	// shared graph means O is traversed at most once).
	DisableVGReuse bool
	// UseBisectionSolver replaces the quadratic split-point solver with a
	// numeric grid-plus-bisection root finder (ablation).
	UseBisectionSolver bool
	// Workers, when above 1, fans each query's embarrassingly parallel
	// inner work — candidate sight-line batches in visibility-graph
	// obstacle insertion and per-candidate visible-region computation in
	// CPLC — across that many lanes of a per-query worker pool. Results
	// (payload and NPE/NOE/|SVG| metrics) are bit-identical to the
	// sequential path: verdicts are computed by the same code over the same
	// frozen inputs and applied in the sequential order. 0 or 1 runs
	// sequentially.
	Workers int
}
