package core

import (
	"math"
	"slices"

	"connquery/internal/geom"
	"connquery/internal/interval"
)

// rlu is Algorithm 3 (Result List Update). It merges a freshly computed
// control point list for data point (pid, p) into the current result list.
// Both inputs partition [0, 1], so a two-pointer sweep produces the atomic
// cells on which exactly one RL entry and one CPL entry apply; each cell is
// then resolved by the Lemma 1 endpoint-dominance shortcut or the quadratic
// Split function.
func (qs *queryState) rlu(rl []ResultEntry, pid int32, p geom.Point, cpl CPL) []ResultEntry {
	q := qs.q
	out := make([]ResultEntry, 0, len(rl)+len(cpl))
	i, j := 0, 0
	cursor := 0.0
	for i < len(rl) && j < len(cpl) {
		hi := math.Min(rl[i].Span.Hi, cpl[j].Span.Hi)
		cell := geom.Span{Lo: cursor, Hi: hi}
		if !cell.Empty() {
			out = append(out, qs.resolveCell(q, cell, rl[i], pid, p, cpl[j])...)
		}
		cursor = hi
		if rl[i].Span.Hi <= hi+interval.Eps {
			i++
		}
		if cpl[j].Span.Hi <= hi+interval.Eps {
			j++
		}
	}
	// Either list may end fractionally early from span arithmetic; keep any
	// residual old entries untouched.
	for ; i < len(rl); i++ {
		cell := geom.Span{Lo: cursor, Hi: rl[i].Span.Hi}
		if !cell.Empty() {
			e := rl[i]
			e.Span = cell
			out = append(out, e)
		}
		cursor = rl[i].Span.Hi
	}
	return normalizeRL(out)
}

// resolveCell decides ownership of one atomic cell between the incumbent RL
// entry and the candidate's CPL entry.
func (qs *queryState) resolveCell(q geom.Segment, cell geom.Span, old ResultEntry, pid int32, p geom.Point, ce CPLEntry) []ResultEntry {
	// Candidate unreachable here: incumbent survives (even ∅).
	if !ce.Valid {
		old.Span = cell
		return []ResultEntry{old}
	}
	cand := ResultEntry{PID: pid, P: p, Fn: ce.Fn, Span: cell}
	// Empty incumbent: the candidate takes the cell outright.
	if old.PID == NoOwner {
		return []ResultEntry{cand}
	}
	// Lemma 1 shortcut: when the incumbent's control point is no farther
	// from q's supporting line than the candidate's and the incumbent wins
	// at both cell endpoints, it wins the whole cell (the superlevel set
	// {Y >= d} of the unimodal difference function is an interval).
	if !qs.eng.Opts.DisableLemma1 {
		if q.DistPerp(ce.Fn.CP) >= q.DistPerp(old.Fn.CP)-geom.Eps &&
			old.Fn.eval(q, cell.Lo) <= cand.Fn.eval(q, cell.Lo) &&
			old.Fn.eval(q, cell.Hi) <= cand.Fn.eval(q, cell.Hi) {
			old.Span = cell
			return []ResultEntry{old}
		}
	}
	var out []ResultEntry
	pieces := appendSplitPieces(qs.pieceScratch[:0], q, cell, old.Fn, cand.Fn, qs.eng.Opts.UseBisectionSolver)
	qs.pieceScratch = pieces[:0]
	for _, pc := range pieces {
		if pc.FirstWins {
			out = append(out, ResultEntry{PID: old.PID, P: old.P, Fn: old.Fn, Span: pc.Span})
		} else {
			out = append(out, ResultEntry{PID: pid, P: p, Fn: ce.Fn, Span: pc.Span})
		}
	}
	return out
}

// normalizeRL sorts by span start and merges adjacent entries with the same
// owner and control point (footnote 6).
func normalizeRL(rl []ResultEntry) []ResultEntry {
	slices.SortFunc(rl, func(a, b ResultEntry) int {
		switch {
		case a.Span.Lo < b.Span.Lo:
			return -1
		case a.Span.Lo > b.Span.Lo:
			return 1
		}
		return 0
	})
	out := rl[:0]
	for _, e := range rl {
		if e.Span.Empty() {
			continue
		}
		if n := len(out); n > 0 && sameRLOwner(out[n-1], e) && e.Span.Lo-out[n-1].Span.Hi <= interval.Eps {
			out[n-1].Span.Hi = e.Span.Hi
		} else {
			out = append(out, e)
		}
	}
	return out
}

func sameRLOwner(a, b ResultEntry) bool {
	if a.PID != b.PID {
		return false
	}
	if a.PID == NoOwner {
		return true
	}
	return a.Fn.CP.Eq(b.Fn.CP) && math.Abs(a.Fn.Base-b.Fn.Base) <= geom.Eps
}

// rlMax is Lemma 2's pruning distance RLMAX: the maximum over RL entries of
// the owner's obstructed distance at the entry's endpoints, +Inf while any
// interval is still unowned.
func rlMax(q geom.Segment, rl []ResultEntry) float64 {
	m := 0.0
	for _, e := range rl {
		if e.PID == NoOwner {
			return math.Inf(1)
		}
		m = math.Max(m, math.Max(e.Fn.eval(q, e.Span.Lo), e.Fn.eval(q, e.Span.Hi)))
	}
	return m
}
