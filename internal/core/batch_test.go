package core

import (
	"math/rand"
	"testing"

	"connquery/internal/geom"
)

// TestEngineCONNBatchMatchesSequential exercises the engine-level batch API
// (including cloneView) in both tree modes against sequential CONN.
func TestEngineCONNBatchMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	sc := randScene(r, 60, 25, 1000)
	queries := make([]geom.Segment, 10)
	for i := range queries {
		s2 := randScene(r, 1, 0, 1000) // reuse the generator's segment logic
		queries[i] = s2.q
	}
	for _, oneTree := range []bool{false, true} {
		eng := sc.engine(Options{}, oneTree)
		want := make([]*Result, len(queries))
		for i, q := range queries {
			want[i], _ = eng.CONN(q)
		}
		for _, workers := range []int{0, 1, 3} {
			res, ms := eng.CONNBatch(queries, workers)
			if len(res) != len(queries) || len(ms) != len(queries) {
				t.Fatalf("oneTree=%v workers=%d: %d results, %d metrics", oneTree, workers, len(res), len(ms))
			}
			for i := range queries {
				if len(res[i].Tuples) != len(want[i].Tuples) {
					t.Fatalf("oneTree=%v workers=%d query %d: %d tuples, want %d",
						oneTree, workers, i, len(res[i].Tuples), len(want[i].Tuples))
				}
				for j := range res[i].Tuples {
					if res[i].Tuples[j].PID != want[i].Tuples[j].PID ||
						res[i].Tuples[j].Span != want[i].Tuples[j].Span {
						t.Fatalf("oneTree=%v workers=%d query %d tuple %d differs",
							oneTree, workers, i, j)
					}
				}
			}
		}
	}
}
