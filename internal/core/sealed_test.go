package core

import (
	"math"
	"testing"

	"connquery/internal/geom"
	"connquery/internal/visgraph"
)

// sealedScene walls one point into a box of overlapping obstacles far from
// the query segment, leaving a second free point as the answer.
func sealedScene() scene {
	return scene{
		points: []geom.Point{
			geom.Pt(50, 50), // sealed inside the box below
			geom.Pt(5, 5),   // free
		},
		obstacles: []geom.Rect{
			geom.R(40, 40, 60, 43), // bottom
			geom.R(40, 57, 60, 60), // top
			geom.R(40, 40, 43, 60), // left
			geom.R(57, 40, 60, 60), // right
		},
		q: geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0)),
	}
}

// IOR must force-load obstacles beyond its usual bound when the current
// graph leaves the endpoints unreachable, and report +Inf once the obstacle
// source is exhausted (the loadAnyObstacle path).
func TestIORSealedPoint(t *testing.T) {
	sc := sealedScene()
	e := sc.engine(Options{}, false)
	qs := e.newQueryState(sc.q)
	pNode := qs.vg.AddPoint(sc.points[0], visgraph.KindTransient)
	dS, dE := qs.ior(pNode)
	if !math.IsInf(dS, 1) || !math.IsInf(dE, 1) {
		t.Fatalf("sealed point reachable: dS=%v dE=%v", dS, dE)
	}
	// The force-load path must have pulled obstacles despite their
	// mindist(o, q) exceeding any finite shortest-path bound.
	if qs.noe == 0 {
		t.Fatal("no obstacles loaded while trying to unseal the point")
	}
}

// CONN over a scene with a sealed point: the free point wins everywhere and
// the sealed one contributes nothing.
func TestCONNSealedPointSkipped(t *testing.T) {
	sc := sealedScene()
	for _, oneTree := range []bool{false, true} {
		e := sc.engine(Options{}, oneTree)
		res, _ := e.CONN(sc.q)
		if len(res.Tuples) != 1 || res.Tuples[0].PID != 1 {
			t.Fatalf("oneTree=%v: tuples = %+v, want only the free point", oneTree, res.Tuples)
		}
	}
}

// ONN at a point that itself is sealed: nothing is reachable.
func TestONNFromSealedRegion(t *testing.T) {
	sc := sealedScene()
	e := sc.engine(Options{}, false)
	nbrs, _ := e.ONN(geom.Pt(50, 50), 1)
	// The only reachable "neighbor" of the sealed center is the sealed
	// point itself (point 0 shares the box).
	if len(nbrs) != 1 || nbrs[0].PID != 0 {
		t.Fatalf("nbrs = %+v, want just the co-sealed point", nbrs)
	}
}
