package core

import (
	"time"

	"connquery/internal/geom"
	"connquery/internal/stats"
	"connquery/internal/visgraph"
)

// CONN is Algorithm 4: it answers a continuous obstructed nearest neighbor
// query for the segment q, returning the result tuples and the paper's cost
// metrics. Data points are consumed in ascending mindist(p, q) order; each
// one runs IOR -> CPLC -> RLU; Lemma 2 terminates the scan once no
// unexamined point can still alter the result list.
func (e *Engine) CONN(q geom.Segment) (*Result, stats.QueryMetrics) {
	start := time.Now()
	var snapD, snapO int64
	if e.DataCounter != nil {
		snapD = e.DataCounter.Faults()
	}
	if e.ObstCounter != nil {
		snapO = e.ObstCounter.Faults()
	}

	qs := e.newQueryState(q)
	defer e.release(qs)
	rl := []ResultEntry{{PID: NoOwner, Span: geom.Span{Lo: 0, Hi: 1}}}

	for {
		qs.poll()
		bound, ok := qs.peekPointBound()
		if thresh := rlMax(q, rl); !ok || bound >= thresh {
			qs.noteStop(thresh, ok)
			break // Lemma 2 (or P exhausted)
		}
		item, _, _ := qs.nextPoint()
		p := item.Point()
		qs.npe++
		rl = qs.evaluatePoint(rl, item.ID, p)
	}

	m := stats.QueryMetrics{
		NPE:   qs.npe,
		NOE:   qs.noe,
		SVG:   qs.svgSize(),
		CPU:   time.Since(start),
		Reach: qs.reachValue(),
	}
	if e.DataCounter != nil {
		m.FaultsData = e.DataCounter.Faults() - snapD
	}
	if e.ObstCounter != nil {
		m.FaultsObst = e.ObstCounter.Faults() - snapO
	}
	return &Result{Q: q, Tuples: finalizeRL(rl), MaxDist: rlMax(q, rl)}, m
}

// maybeResetVG implements the DisableVGReuse ablation: forget everything
// discovered for previous points, forcing the next IOR to re-retrieve its
// obstacles from scratch.
func (qs *queryState) maybeResetVG() {
	if !qs.eng.Opts.DisableVGReuse {
		return
	}
	qs.svgSize() // record peak before discarding
	qs.resetVG()
	qs.loadedUpTo = 0
	qs.rewindObstacleSource()
}

// evaluatePoint runs the per-point pipeline of Algorithm 4 lines 5-10:
// insert p into the local VG, IOR, CPLC, remove p, RLU.
func (qs *queryState) evaluatePoint(rl []ResultEntry, pid int32, p geom.Point) []ResultEntry {
	qs.maybeResetVG()
	pNode := qs.vg.AddPoint(p, visgraph.KindTransient)
	qs.ior(pNode)
	cpl := qs.computeCPL(pNode)
	qs.vg.RemovePoint(pNode)
	return qs.rlu(rl, pid, p, cpl)
}

// rewindObstacleSource restarts the obstacle iterator (only used by the
// DisableVGReuse ablation; the paper's algorithm never rewinds — §4.1 notes
// the shared VG means O is traversed at most once per query).
func (qs *queryState) rewindObstacleSource() {
	if qs.eng.OneTree() {
		// One-tree mode cannot rewind without re-consuming data points; the
		// ablation is only defined for the two-tree configuration.
		panic("core: DisableVGReuse is incompatible with one-tree mode")
	}
	qs.obstIter = qs.eng.Obst.NewNearestIter(rtreeSegTarget(qs.q))
}

// finalizeRL converts the internal ⟨p, cp, R⟩ decomposition into the
// user-facing ⟨p, R⟩ tuples by merging adjacent entries owned by the same
// data point (split points between same-owner control-point changes are
// internal, not answer split points).
func finalizeRL(rl []ResultEntry) []Tuple {
	var out []Tuple
	for _, e := range rl {
		if n := len(out); n > 0 && out[n-1].PID == e.PID {
			out[n-1].Span.Hi = e.Span.Hi
			continue
		}
		out = append(out, Tuple{PID: e.PID, P: e.P, Span: e.Span})
	}
	return out
}
