package core

import (
	"math"
	"testing"

	"connquery/internal/geom"
)

// FuzzSplitPieces feeds arbitrary distance-function pairs to the quadratic
// solver and checks the structural guarantees of Theorem 1: at most three
// pieces, full coverage of the span, and midpoint ownership consistent with
// direct evaluation.
func FuzzSplitPieces(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 0.0, 3.0, 2.0, 0.0, 7.0, 2.0, 0.0)
	f.Add(0.0, 0.0, 10.0, 0.0, 5.0, 1.0, 0.0, 5.0, 9.0, 0.0)
	f.Add(0.0, 0.0, 10.0, 0.0, 5.0, 1.0, 0.0, 5.0, 1000.0, -996.0)
	f.Fuzz(func(t *testing.T, qax, qay, qbx, qby, ux, uy, du, vx, vy, dv float64) {
		for _, v := range []float64{qax, qay, qbx, qby, ux, uy, du, vx, vy, dv} {
			if math.IsNaN(v) || math.Abs(v) > 1e5 {
				t.Skip()
			}
		}
		q := geom.Seg(geom.Pt(qax, qay), geom.Pt(qbx, qby))
		f1 := distFn{CP: geom.Pt(ux, uy), Base: du}
		f2 := distFn{CP: geom.Pt(vx, vy), Base: dv}
		span := geom.Span{Lo: 0, Hi: 1}
		pieces := splitPieces(q, span, f1, f2, false)

		if len(pieces) == 0 || len(pieces) > 3 {
			t.Fatalf("%d pieces (Theorem 1 allows 1..3)", len(pieces))
		}
		if pieces[0].Span.Lo != 0 || pieces[len(pieces)-1].Span.Hi != 1 {
			t.Fatalf("pieces do not cover span: %+v", pieces)
		}
		for i := 1; i < len(pieces); i++ {
			if math.Abs(pieces[i].Span.Lo-pieces[i-1].Span.Hi) > 1e-12 {
				t.Fatalf("gap between pieces: %+v", pieces)
			}
		}
		for _, pc := range pieces {
			mid := pc.Span.Mid()
			g := f1.eval(q, mid) - f2.eval(q, mid)
			scale := 1 + math.Abs(f1.eval(q, mid)) + math.Abs(f2.eval(q, mid))
			if math.Abs(g) < 1e-4*scale {
				continue // genuine near-tie: either owner acceptable
			}
			if (g < 0) != pc.FirstWins {
				t.Fatalf("midpoint ownership wrong at %v: g=%v pieces=%+v", mid, g, pieces)
			}
		}
	})
}
