package core

import (
	"math"
	"math/rand"
	"testing"

	"connquery/internal/geom"
	"connquery/internal/visgraph"
)

// IOR must produce the exact obstructed distances to both query endpoints
// (Lemma 3 / Theorem 2), matching the full-visibility-graph oracle, while
// loading only a subset of the obstacle set.
func TestIORMatchesBruteDistances(t *testing.T) {
	r := rand.New(rand.NewSource(501))
	for trial := 0; trial < 40; trial++ {
		sc := randScene(r, 1, 2+r.Intn(10), 100)
		e := sc.engine(Options{}, false)
		qs := e.newQueryState(sc.q)
		p := sc.points[0]
		pNode := qs.vg.AddPoint(p, visgraph.KindTransient)
		dS, dE := qs.ior(pNode)

		wantS := visgraph.BruteObstructedDist(p, sc.q.A, sc.obstacles)
		wantE := visgraph.BruteObstructedDist(p, sc.q.B, sc.obstacles)
		if math.Abs(dS-wantS) > 1e-6*(1+wantS) || math.Abs(dE-wantE) > 1e-6*(1+wantE) {
			t.Fatalf("trial %d: IOR (%v, %v), oracle (%v, %v)\np=%v q=%v obs=%v",
				trial, dS, dE, wantS, wantE, p, sc.q, sc.obstacles)
		}
	}
}

// IOR must not load obstacles beyond its stabilization bound: with a
// distant obstacle cluster, NOE stays at the near cluster's size.
func TestIORLoadsOnlyRelevantObstacles(t *testing.T) {
	near := []geom.Rect{geom.R(4, 2, 6, 4)}
	var far []geom.Rect
	for i := 0; i < 20; i++ {
		far = append(far, geom.R(900+float64(i)*4, 900, 902+float64(i)*4, 904))
	}
	sc := scene{
		points:    []geom.Point{geom.Pt(5, 8)},
		obstacles: append(append([]geom.Rect{}, near...), far...),
		q:         geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0)),
	}
	e := sc.engine(Options{}, false)
	_, m := e.CONN(sc.q)
	if m.NOE > 3 {
		t.Fatalf("NOE = %d; IOR pulled obstacles from the far cluster", m.NOE)
	}
}

// computeCPL's distance function must equal the exact obstructed distance
// from the point to every sampled query position (after IOR has loaded the
// relevant obstacles).
func TestCPLCDistancesMatchOracle(t *testing.T) {
	r := rand.New(rand.NewSource(503))
	for trial := 0; trial < 40; trial++ {
		sc := randScene(r, 1, 1+r.Intn(8), 100)
		e := sc.engine(Options{}, false)
		qs := e.newQueryState(sc.q)
		p := sc.points[0]
		pNode := qs.vg.AddPoint(p, visgraph.KindTransient)
		qs.ior(pNode)
		cpl := qs.computeCPL(pNode)
		qs.vg.RemovePoint(pNode)

		// Structural invariants (Definition 9): sorted, contiguous, covers q.
		if len(cpl) == 0 || cpl[0].Span.Lo > 1e-9 || cpl[len(cpl)-1].Span.Hi < 1-1e-9 {
			t.Fatalf("trial %d: CPL does not cover q: %+v", trial, cpl)
		}
		for i := 1; i < len(cpl); i++ {
			if math.Abs(cpl[i].Span.Lo-cpl[i-1].Span.Hi) > 1e-9 {
				t.Fatalf("trial %d: CPL not contiguous: %+v", trial, cpl)
			}
		}
		for k := 0; k <= 80; k++ {
			tt := float64(k) / 80
			want := visgraph.BruteObstructedDist(p, sc.q.At(tt), sc.obstacles)
			got := cplDistAt(sc.q, cpl, tt)
			if math.IsInf(want, 1) != math.IsInf(got, 1) {
				t.Fatalf("trial %d t=%v: reachability mismatch got=%v want=%v", trial, tt, got, want)
			}
			nearBoundary := false
			for _, ce := range cpl {
				if math.Abs(tt-ce.Span.Lo) < 1e-4 || math.Abs(tt-ce.Span.Hi) < 1e-4 {
					nearBoundary = true
				}
			}
			if !nearBoundary && !math.IsInf(want, 1) && math.Abs(got-want) > 1e-5*(1+want) {
				t.Fatalf("trial %d t=%v: CPL dist %v, oracle %v\np=%v q=%v obs=%v cpl=%+v",
					trial, tt, got, want, p, sc.q, sc.obstacles, cpl)
			}
		}
	}
}

// Without obstacles, the CPL must collapse to the point itself over all of q.
func TestCPLCNoObstacles(t *testing.T) {
	sc := scene{points: []geom.Point{geom.Pt(5, 7)}, q: geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0))}
	e := sc.engine(Options{}, false)
	qs := e.newQueryState(sc.q)
	pNode := qs.vg.AddPoint(sc.points[0], visgraph.KindTransient)
	qs.ior(pNode)
	cpl := qs.computeCPL(pNode)
	if len(cpl) != 1 || !cpl[0].Valid || !cpl[0].Fn.CP.Eq(sc.points[0]) || cpl[0].Fn.Base != 0 {
		t.Fatalf("CPL = %+v, want the point itself over [0,1]", cpl)
	}
}

// A Figure 3 style configuration: the point sees only a prefix of q
// directly; the rest is served via obstacle corners with positive base
// distances.
func TestCPLCFigure3Structure(t *testing.T) {
	// p above, two obstacles shadowing the right part of q.
	p := geom.Pt(2, 10)
	obstacles := []geom.Rect{geom.R(4, 4, 6, 8), geom.R(7, 2, 9, 6)}
	q := geom.Seg(geom.Pt(0, 0), geom.Pt(12, 0))
	sc := scene{points: []geom.Point{p}, obstacles: obstacles, q: q}
	e := sc.engine(Options{}, false)
	qs := e.newQueryState(q)
	pNode := qs.vg.AddPoint(p, visgraph.KindTransient)
	qs.ior(pNode)
	cpl := qs.computeCPL(pNode)

	if len(cpl) < 2 {
		t.Fatalf("expected a multi-entry CPL, got %+v", cpl)
	}
	// First entry: direct visibility (control point = p, base 0).
	if !cpl[0].Fn.CP.Eq(p) || cpl[0].Fn.Base != 0 {
		t.Fatalf("first entry should be p itself: %+v", cpl[0])
	}
	// Later entries: control points are obstacle corners with positive base.
	foundCorner := false
	for _, ce := range cpl[1:] {
		if !ce.Valid {
			continue
		}
		if ce.Fn.Base <= 0 {
			t.Fatalf("non-direct entry with zero base: %+v", ce)
		}
		for _, o := range obstacles {
			for _, c := range o.Vertices() {
				if ce.Fn.CP.Eq(c) {
					foundCorner = true
				}
			}
		}
	}
	if !foundCorner {
		t.Fatalf("no obstacle-corner control point in CPL: %+v", cpl)
	}
}

// The Lemma 2 termination must actually prune: on a large scene only a
// small fraction of the points may be evaluated.
func TestLemma2Prunes(t *testing.T) {
	r := rand.New(rand.NewSource(507))
	sc := randScene(r, 400, 10, 1000)
	e := sc.engine(Options{}, false)
	_, m := e.CONN(sc.q)
	if m.NPE >= len(sc.points)/2 {
		t.Fatalf("NPE = %d of %d; Lemma 2 pruning ineffective", m.NPE, len(sc.points))
	}
}

// Lemma 7's CPLMAX bound must not change answers but must reduce work: the
// test asserts equal CPLs with and without it on random scenes.
func TestLemma7PreservesCPL(t *testing.T) {
	r := rand.New(rand.NewSource(509))
	for trial := 0; trial < 25; trial++ {
		sc := randScene(r, 1, 1+r.Intn(8), 100)
		p := sc.points[0]
		build := func(opts Options) CPL {
			e := sc.engine(opts, false)
			qs := e.newQueryState(sc.q)
			pNode := qs.vg.AddPoint(p, visgraph.KindTransient)
			qs.ior(pNode)
			return qs.computeCPL(pNode)
		}
		with := build(Options{})
		without := build(Options{DisableLemma7: true})
		for k := 0; k <= 60; k++ {
			tt := float64(k) / 60
			a, b := cplDistAt(sc.q, with, tt), cplDistAt(sc.q, without, tt)
			if math.IsInf(a, 1) != math.IsInf(b, 1) {
				t.Fatalf("trial %d t=%v: reachability differs with Lemma 7", trial, tt)
			}
			if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-6*(1+a) {
				t.Fatalf("trial %d t=%v: %v vs %v", trial, tt, a, b)
			}
		}
	}
}

// The visible-region cache must invalidate when obstacles arrive.
func TestVisibleRegionCacheInvalidation(t *testing.T) {
	sc := scene{
		points:    []geom.Point{geom.Pt(5, 10)},
		obstacles: []geom.Rect{geom.R(4, 4, 6, 6)},
		q:         geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0)),
	}
	e := sc.engine(Options{}, false)
	qs := e.newQueryState(sc.q)
	// Anchor S sees everything initially (no obstacles loaded yet).
	vr0 := qs.visibleRegion(qs.sID)
	if !vr0.Covers() {
		t.Fatalf("pre-obstacle VR = %v", vr0)
	}
	// Load the obstacle; S's region over q is unchanged (obstacle above the
	// segment), but the viewpoint p at (5,10) is now shadowed.
	qs.addObstacleToVG(0)
	pNode := qs.vg.AddPoint(sc.points[0], visgraph.KindTransient)
	vrP := qs.visibleRegion(pNode)
	if vrP.Covers() {
		t.Fatalf("post-obstacle VR of shadowed viewpoint covers q: %v", vrP)
	}
	if got := qs.visibleRegion(qs.sID); !got.Covers() {
		t.Fatalf("anchor VR after invalidation = %v", got)
	}
}

// One-tree point source: points must come out in ascending mindist order
// even when interleaved with obstacle pulls.
func TestOneTreePointOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(511))
	sc := randScene(r, 40, 15, 100)
	e := sc.engine(Options{}, true)
	qs := e.newQueryState(sc.q)
	prev := -1.0
	seen := 0
	for {
		bound, ok := qs.peekPointBound()
		if !ok {
			break
		}
		item, key, ok2 := qs.nextPoint()
		if !ok2 {
			t.Fatal("peek said point available, next disagreed")
		}
		if key < bound-1e-9 || key < prev-1e-9 {
			t.Fatalf("point order violated: key=%v bound=%v prev=%v", key, bound, prev)
		}
		if want := sc.q.DistToPoint(item.Point()); math.Abs(want-key) > 1e-9 {
			t.Fatalf("key %v != exact mindist %v", key, want)
		}
		prev = key
		seen++
	}
	if seen != len(sc.points) {
		t.Fatalf("drained %d of %d points", seen, len(sc.points))
	}
}

// ObstructedDistance: symmetric and matches the oracle.
func TestObstructedDistanceEngine(t *testing.T) {
	r := rand.New(rand.NewSource(513))
	for trial := 0; trial < 30; trial++ {
		sc := randScene(r, 2, 1+r.Intn(8), 100)
		e := sc.engine(Options{}, false)
		a, b := sc.points[0], sc.points[1]
		got, _ := e.ObstructedDistance(a, b)
		rev, _ := e.ObstructedDistance(b, a)
		want := visgraph.BruteObstructedDist(a, b, sc.obstacles)
		if math.Abs(got-want) > 1e-6*(1+want) || math.Abs(got-rev) > 1e-6*(1+got) {
			t.Fatalf("trial %d: dist %v (rev %v), oracle %v", trial, got, rev, want)
		}
	}
}

// A query segment that crosses an obstacle interior: the covered stretch is
// unreachable, the rest still gets exact answers.
func TestCONNQueryThroughObstacle(t *testing.T) {
	sc := scene{
		points:    []geom.Point{geom.Pt(1, 5), geom.Pt(9, 5)},
		obstacles: []geom.Rect{geom.R(4, -1, 6, 1)},
		q:         geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0)),
	}
	e := sc.engine(Options{}, false)
	res, _ := e.CONN(sc.q)
	mid, ok := res.OwnerAt(0.5)
	if !ok || mid.PID != NoOwner {
		t.Fatalf("interior stretch should be unreachable: %+v", res.Tuples)
	}
	l, _ := res.OwnerAt(0.1)
	rr, _ := res.OwnerAt(0.9)
	if l.PID != 0 || rr.PID != 1 {
		t.Fatalf("outer owners wrong: %+v", res.Tuples)
	}
}

// DisableVGReuse cannot rewind the shared heap in one-tree mode; the
// combination must panic loudly rather than compute wrong answers.
func TestVGReuseAblationOneTreePanics(t *testing.T) {
	sc := scene{
		points: []geom.Point{geom.Pt(5, 5), geom.Pt(8, 8)},
		q:      geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0)),
	}
	e := sc.engine(Options{DisableVGReuse: true}, true)
	defer func() {
		if recover() == nil {
			t.Fatal("one-tree + DisableVGReuse did not panic")
		}
	}()
	e.CONN(sc.q)
}
