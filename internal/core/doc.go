// Package core implements the paper's query-processing algorithms:
// the quadratic split-point computation (§3, Theorem 1), incremental
// obstacle retrieval IOR (Algorithm 1), control-point-list computation
// CPLC (Algorithm 2), result-list update RLU (Algorithm 3), the CONN
// search (Algorithm 4), its COkNN generalization and single-R-tree variant
// (§4.5), and the baselines used for verification and comparison
// (Euclidean CNN, point ONN, naive sampling CONN), plus the related-work
// extensions (trajectory CONN, obstructed range, distance joins, visible
// kNN).
//
// Engine is the execution context: the R-trees over P and O (or one
// unified tree), the obstacle storage, the ablation Options, the MVCC
// epoch it reads, an optional cross-version StatePool of warm per-query
// scratch (visibility graph, Dijkstra state, CPL/split buffers), and an
// optional Cancel hook polled from the hot loops. Engines are cheap
// views: the public layer builds per-call and per-worker views sharing
// the immutable trees while isolating counters, tuning and cancellation.
//
// Every query method returns its answer together with the paper's
// stats.QueryMetrics (page faults, NPE, NOE, |SVG|, CPU). Aborted is the
// cancellation panic payload; it crosses this package untouched and only
// the public Exec layer recovers it.
package core
