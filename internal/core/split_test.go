package core

import (
	"math"
	"math/rand"
	"testing"

	"connquery/internal/geom"
)

// evalDiff computes f1 - f2 at t.
func evalDiff(q geom.Segment, f1, f2 distFn, t float64) float64 {
	return f1.eval(q, t) - f2.eval(q, t)
}

func TestQuadraticCrossingsSymmetricCase(t *testing.T) {
	// Two plain points equidistant setup: crossing at the bisector.
	q := geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0))
	f1 := distFn{CP: geom.Pt(2, 3), Base: 0}
	f2 := distFn{CP: geom.Pt(8, 3), Base: 0}
	roots := quadraticCrossings(q, geom.Span{Lo: 0, Hi: 1}, f1, f2)
	if len(roots) != 1 || math.Abs(roots[0]-0.5) > 1e-9 {
		t.Fatalf("roots = %v, want [0.5]", roots)
	}
}

func TestQuadraticCrossingsWithBases(t *testing.T) {
	// Base offsets shift the crossing: f1 = 2 + dist((0,4), s),
	// f2 = 0 + dist((10,4), s). Crossing where dist difference = 2.
	q := geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0))
	f1 := distFn{CP: geom.Pt(0, 4), Base: 2}
	f2 := distFn{CP: geom.Pt(10, 4), Base: 0}
	roots := quadraticCrossings(q, geom.Span{Lo: 0, Hi: 1}, f1, f2)
	if len(roots) != 1 {
		t.Fatalf("roots = %v, want exactly 1", roots)
	}
	if g := evalDiff(q, f1, f2, roots[0]); math.Abs(g) > 1e-6 {
		t.Fatalf("g(root) = %v", g)
	}
}

func TestQuadraticCrossingsTwoRoots(t *testing.T) {
	// Theorem 1's Case 2: the incumbent keeps a middle stretch, the
	// candidate wins both ends -> two crossings. Candidate with a small
	// base advantage but control point far to the side.
	q := geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0))
	f1 := distFn{CP: geom.Pt(5, 1), Base: 0}    // near the middle of q
	f2 := distFn{CP: geom.Pt(5, 8), Base: -3.5} // effectively closer at the ends
	// Sanity: f2 wins at t=0 and t=1, f1 wins in the middle.
	if !(evalDiff(q, f1, f2, 0.5) < 0) {
		t.Skip("fixture drifted: f1 should win the middle")
	}
	roots := quadraticCrossings(q, geom.Span{Lo: 0, Hi: 1}, f1, f2)
	for _, r := range roots {
		if g := evalDiff(q, f1, f2, r); math.Abs(g) > 1e-6 {
			t.Fatalf("g(%v) = %v, not a crossing", r, g)
		}
	}
}

func TestSplitPiecesPartition(t *testing.T) {
	q := geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0))
	span := geom.Span{Lo: 0.1, Hi: 0.9}
	f1 := distFn{CP: geom.Pt(3, 2), Base: 1}
	f2 := distFn{CP: geom.Pt(7, 2), Base: 0.5}
	pieces := splitPieces(q, span, f1, f2, false)
	if pieces[0].Span.Lo != span.Lo || pieces[len(pieces)-1].Span.Hi != span.Hi {
		t.Fatalf("pieces do not span the input: %+v", pieces)
	}
	for i := 1; i < len(pieces); i++ {
		if math.Abs(pieces[i].Span.Lo-pieces[i-1].Span.Hi) > 1e-12 {
			t.Fatalf("gap between pieces: %+v", pieces)
		}
		if pieces[i].FirstWins == pieces[i-1].FirstWins {
			t.Fatalf("unmerged same-winner pieces: %+v", pieces)
		}
	}
}

// Property: splitPieces must agree with dense sampling of the sign of
// f1 - f2 for random configurations — this is the paper's Cases 1-4 in one
// randomized sweep (the quadratic has at most two valid roots, so a piece
// list has at most three pieces).
func TestPropSplitPiecesMatchSampling(t *testing.T) {
	r := rand.New(rand.NewSource(201))
	for trial := 0; trial < 3000; trial++ {
		q := geom.Seg(
			geom.Pt(r.Float64()*100, r.Float64()*100),
			geom.Pt(r.Float64()*100, r.Float64()*100),
		)
		if q.Degenerate() {
			continue
		}
		f1 := distFn{CP: geom.Pt(r.Float64()*100, r.Float64()*100), Base: r.Float64() * 40}
		f2 := distFn{CP: geom.Pt(r.Float64()*100, r.Float64()*100), Base: r.Float64() * 40}
		span := geom.Span{Lo: 0, Hi: 1}
		pieces := splitPieces(q, span, f1, f2, false)

		if len(pieces) > 3 {
			t.Fatalf("trial %d: %d pieces violates Theorem 1 (max two split points)", trial, len(pieces))
		}
		for k := 0; k <= 200; k++ {
			tt := float64(k) / 200
			g := evalDiff(q, f1, f2, tt)
			// Skip near-tie samples: ownership there is legitimately
			// decided by tolerance.
			if math.Abs(g) < 1e-5*(1+f1.eval(q, tt)) {
				continue
			}
			wantFirst := g < 0
			var got *piece
			for i := range pieces {
				if pieces[i].Span.Contains(tt) {
					got = &pieces[i]
					break
				}
			}
			if got == nil {
				t.Fatalf("trial %d: t=%v not covered by pieces %+v", trial, tt, pieces)
			}
			// Near piece boundaries the winner flips by construction.
			nearBoundary := false
			for _, pc := range pieces {
				if math.Abs(tt-pc.Span.Lo) < 1e-4 || math.Abs(tt-pc.Span.Hi) < 1e-4 {
					nearBoundary = true
				}
			}
			if !nearBoundary && got.FirstWins != wantFirst {
				t.Fatalf("trial %d t=%v: FirstWins=%v want %v (g=%v)\nq=%v f1=%+v f2=%+v pieces=%+v",
					trial, tt, got.FirstWins, wantFirst, g, q, f1, f2, pieces)
			}
		}
	}
}

// The quadratic solver and the bisection fallback must agree.
func TestPropQuadraticMatchesBisection(t *testing.T) {
	r := rand.New(rand.NewSource(207))
	for trial := 0; trial < 1500; trial++ {
		q := geom.Seg(
			geom.Pt(r.Float64()*100, r.Float64()*100),
			geom.Pt(r.Float64()*100, r.Float64()*100),
		)
		if q.Degenerate() {
			continue
		}
		f1 := distFn{CP: geom.Pt(r.Float64()*100, r.Float64()*100), Base: r.Float64() * 30}
		f2 := distFn{CP: geom.Pt(r.Float64()*100, r.Float64()*100), Base: r.Float64() * 30}
		span := geom.Span{Lo: 0, Hi: 1}
		qr := splitPieces(q, span, f1, f2, false)
		br := splitPieces(q, span, f1, f2, true)
		// Compare ownership at sample points (piece boundaries may differ
		// by the bisection's grid resolution).
		for k := 0; k <= 50; k++ {
			tt := float64(k) / 50
			g := evalDiff(q, f1, f2, tt)
			if math.Abs(g) < 1e-3*(1+f1.eval(q, tt)) {
				continue
			}
			if ownerAt(qr, tt) != ownerAt(br, tt) {
				t.Fatalf("trial %d t=%v: quadratic and bisection disagree\nq=%v f1=%+v f2=%+v\nquad=%+v\nbis=%+v",
					trial, tt, q, f1, f2, qr, br)
			}
		}
	}
}

func ownerAt(pieces []piece, t float64) bool {
	for _, pc := range pieces {
		if pc.Span.Contains(t) {
			return pc.FirstWins
		}
	}
	return false
}

func TestSolveQuadratic(t *testing.T) {
	cases := []struct {
		a, b, c float64
		want    []float64
	}{
		{1, -3, 2, []float64{1, 2}},
		{1, 0, -4, []float64{-2, 2}},
		{0, 2, -4, []float64{2}},    // linear
		{1, 0, 4, nil},              // no real roots
		{1, -2, 1, []float64{1, 1}}, // double root (grazing)
		{0, 0, 1, nil},              // inconsistent
		{0, 0, 0, nil},              // degenerate zero
	}
	for _, c := range cases {
		rr, n := solveQuadratic(c.a, c.b, c.c)
		got := rr[:n]
		if len(got) != len(c.want) {
			t.Errorf("solveQuadratic(%v,%v,%v) = %v, want %v", c.a, c.b, c.c, got, c.want)
			continue
		}
		for i := range got {
			if math.Abs(got[i]-c.want[i]) > 1e-9 {
				t.Errorf("solveQuadratic(%v,%v,%v) = %v, want %v", c.a, c.b, c.c, got, c.want)
			}
		}
	}
}

func TestDegenerateSegmentNoCrossings(t *testing.T) {
	q := geom.Seg(geom.Pt(5, 5), geom.Pt(5, 5))
	f1 := distFn{CP: geom.Pt(0, 0), Base: 0}
	f2 := distFn{CP: geom.Pt(10, 10), Base: 0}
	if roots := quadraticCrossings(q, geom.Span{Lo: 0, Hi: 1}, f1, f2); len(roots) != 0 {
		t.Fatalf("degenerate segment produced roots %v", roots)
	}
	pieces := splitPieces(q, geom.Span{Lo: 0, Hi: 1}, f1, f2, false)
	if len(pieces) != 1 || !pieces[0].FirstWins {
		t.Fatalf("degenerate ownership wrong: %+v", pieces)
	}
}

func TestIdenticalFunctions(t *testing.T) {
	q := geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0))
	f := distFn{CP: geom.Pt(5, 5), Base: 3}
	pieces := splitPieces(q, geom.Span{Lo: 0, Hi: 1}, f, f, false)
	if len(pieces) != 1 || !pieces[0].FirstWins {
		t.Fatalf("identical functions: %+v (first should win ties)", pieces)
	}
}
